// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// targets (the full 22-workload sweep lives in cmd/pasgal-bench; these use
// a representative subset — one graph per diameter class per category — so
// `go test -bench=.` completes in reasonable time):
//
//	BenchmarkTab4BFS        — appendix BFS table (PASGAL, GBBS, GAPBS, queue)
//	BenchmarkTab3SCC        — appendix SCC table (PASGAL, GBBS, Multistep, Tarjan)
//	BenchmarkTab2BCC        — appendix BCC table (PASGAL, GBBS, TV, Hopcroft–Tarjan)
//	BenchmarkSSSP           — §2.2 SSSP shape claim (ρ/Δ-stepping vs baselines)
//	BenchmarkFig1SCCScaling — Figure 1: SCC vs worker count
//	BenchmarkAblationTau    — VGC budget sweep
//	BenchmarkHashBag        — hash bag vs flat frontier
package pasgal

import (
	"fmt"
	"sync"
	"testing"

	"pasgal/internal/baseline"
	"pasgal/internal/bench"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// benchScale keeps `go test -bench=.` tractable on small machines; the cmd
// harness defaults to scale 1.0.
const benchScale = 0.15

// benchGraphNames is the representative subset: low-diameter social (TW),
// web with tendrils (CW), road (NA), k-NN (CH5), extreme-diameter grid
// (REC).
var benchGraphNames = []string{"TW", "CW", "NA", "CH5", "REC"}

var benchCache sync.Map

func benchGraph(name string) *graph.Graph {
	if g, ok := benchCache.Load(name); ok {
		return g.(*graph.Graph)
	}
	s := bench.LookupSpec(name)
	if s == nil {
		panic("unknown bench graph " + name)
	}
	g := s.Build(benchScale)
	benchCache.Store(name, g)
	return g
}

func benchSym(name string) *graph.Graph {
	key := name + "/sym"
	if g, ok := benchCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := benchGraph(name).Symmetrized()
	benchCache.Store(key, g)
	return g
}

func benchWeighted(name string) *graph.Graph {
	key := name + "/w"
	if g, ok := benchCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := gen.AddUniformWeights(benchGraph(name), 1, 1<<16, 40400)
	benchCache.Store(key, g)
	return g
}

// BenchmarkTab4BFS regenerates the BFS running-time table rows.
func BenchmarkTab4BFS(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(name)
		src := bench.PickSource(g)
		b.Run(name+"/PASGAL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BFS(g, src, core.Options{})
			}
		})
		b.Run(name+"/GBBS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.GBBSBFS(g, src)
			}
		})
		b.Run(name+"/GAPBS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.GAPBSBFS(g, src)
			}
		})
		b.Run(name+"/SeqQueue", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.BFS(g, src)
			}
		})
	}
}

// BenchmarkTab3SCC regenerates the SCC running-time table rows.
func BenchmarkTab3SCC(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchGraph(name)
		if !g.Directed {
			continue
		}
		b.Run(name+"/PASGAL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SCC(g, core.Options{})
			}
		})
		b.Run(name+"/GBBS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.GBBSSCC(g)
			}
		})
		b.Run(name+"/Multistep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.MultistepSCC(g)
			}
		})
		b.Run(name+"/Tarjan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.TarjanSCC(g)
			}
		})
	}
}

// BenchmarkTab2BCC regenerates the BCC running-time table rows (on
// symmetrized graphs, as in the paper).
func BenchmarkTab2BCC(b *testing.B) {
	for _, name := range benchGraphNames {
		g := benchSym(name)
		b.Run(name+"/PASGAL", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BCC(g, core.Options{})
			}
		})
		b.Run(name+"/GBBS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.GBBSBCC(g)
			}
		})
		b.Run(name+"/TV", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.TarjanVishkinBCC(g)
			}
		})
		b.Run(name+"/HopcroftTarjan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.HopcroftTarjanBCC(g)
			}
		})
	}
}

// BenchmarkSSSP documents the stepping-framework comparison (no paper
// table; §2.2 claims the shape).
func BenchmarkSSSP(b *testing.B) {
	for _, name := range []string{"TW", "NA", "REC"} {
		g := benchWeighted(name)
		src := bench.PickSource(g)
		b.Run(name+"/PASGAL-rho", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SSSP(g, src, core.RhoStepping{}, core.Options{})
			}
		})
		b.Run(name+"/PASGAL-delta", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SSSP(g, src, core.DeltaStepping{Delta: 1 << 15}, core.Options{})
			}
		})
		b.Run(name+"/DeltaStep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.DeltaSteppingSSSP(g, src, 1<<15)
			}
		})
		b.Run(name+"/Dijkstra", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.Dijkstra(g, src)
			}
		})
	}
}

// BenchmarkFig1SCCScaling regenerates Figure 1: SCC per worker count on a
// low-diameter (TW) and a large-diameter (REC) graph.
func BenchmarkFig1SCCScaling(b *testing.B) {
	for _, name := range []string{"TW", "REC"} {
		g := benchGraph(name)
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/PASGAL/p%d", name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				for i := 0; i < b.N; i++ {
					core.SCC(g, core.Options{})
				}
			})
			b.Run(fmt.Sprintf("%s/GBBS/p%d", name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				for i := 0; i < b.N; i++ {
					baseline.GBBSSCC(g)
				}
			})
		}
		b.Run(name+"/Tarjan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.TarjanSCC(g)
			}
		})
	}
}

// BenchmarkAblationTau sweeps the VGC budget on the extreme-diameter grid.
func BenchmarkAblationTau(b *testing.B) {
	g := benchGraph("REC")
	src := bench.PickSource(g)
	for _, tau := range []int{1, 32, 512, 4096} {
		b.Run(fmt.Sprintf("tau%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.BFS(g, src, core.Options{Tau: tau, DisableDirectionOpt: true})
			}
		})
	}
}

// BenchmarkHashBag contrasts hash-bag frontiers with flat dense frontiers.
func BenchmarkHashBag(b *testing.B) {
	g := benchGraph("REC")
	src := bench.PickSource(g)
	b.Run("hashbag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BFS(g, src, core.Options{})
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BFS(g, src, core.Options{DisableHashBag: true})
		}
	})
}
