package pasgal

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// buildTools compiles every command once per test binary run and returns
// the directory holding them.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"pasgal", "pasgal-gen", "pasgal-stats",
		"pasgal-bench", "pasgal-convert", "pasgal-vet", "pasgal-serve",
		"pasgal-loadgen"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds five binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	// pasgal-gen: write a workload in two formats.
	adj := filepath.Join(work, "na.adj")
	gr := filepath.Join(work, "na.gr")
	run(t, filepath.Join(bins, "pasgal-gen"), "-workload", "NA", "-scale", "0.05", "-o", adj)
	run(t, filepath.Join(bins, "pasgal-gen"), "-workload", "NA", "-scale", "0.05",
		"-weights", "-o", gr)

	// pasgal-convert: adj -> gzipped bin, with stats.
	binGz := filepath.Join(work, "na.bin.gz")
	out := run(t, filepath.Join(bins, "pasgal-convert"), "-in", adj, "-out", binGz, "-stats")
	if !strings.Contains(out, "n=") {
		t.Fatalf("convert stats missing: %s", out)
	}

	// pasgal-stats on the file.
	out = run(t, filepath.Join(bins, "pasgal-stats"), "-graph", binGz)
	if !strings.Contains(out, "directed graph") {
		t.Fatalf("stats output: %s", out)
	}

	// pasgal: run and verify each algorithm.
	for _, algo := range []string{"bfs", "scc", "sssp"} {
		out = run(t, filepath.Join(bins, "pasgal"), "-algo", algo, "-graph", binGz, "-verify")
		if !strings.Contains(out, "verified against") {
			t.Fatalf("%s verify missing: %s", algo, out)
		}
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "bcc", "-graph", adj, "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("bcc verify missing: %s", out)
	}
	// Loading a directed arc set as undirected must fail loudly rather
	// than feed asymmetric data to undirected algorithms.
	if err := exec.Command(filepath.Join(bins, "pasgal"), "-algo", "bcc",
		"-graph", adj, "-directed=false").Run(); err == nil {
		t.Fatal("expected failure loading a directed .adj as undirected")
	}
	// SSSP from a DIMACS file (weighted input path).
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "sssp", "-graph", gr, "-policy", "delta")
	if !strings.Contains(out, "sssp(delta)") {
		t.Fatalf("sssp output: %s", out)
	}
	// Extension algorithms.
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "kcore", "-graph", binGz, "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("kcore verify missing: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "ptp", "-graph", gr,
		"-dst", "3", "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("ptp verify missing: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "cc", "-graph", binGz)
	if !strings.Contains(out, "connected components") {
		t.Fatalf("cc output: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "reach", "-graph", binGz)
	if !strings.Contains(out, "reachable from") {
		t.Fatalf("reach output: %s", out)
	}

	// pasgal-bench: a tiny experiment run.
	out = run(t, filepath.Join(bins, "pasgal-bench"), "-exp", "frontier", "-scale", "0.05")
	if !strings.Contains(out, "Frontier growth") {
		t.Fatalf("bench output: %s", out)
	}
}

// TestCLIConvertPZ covers the compressed on-disk path end to end through
// the convert tool: .adj -> .pz (with -stats reporting bytes/edge), a
// mmap read back, and a decompressed comparison against the original.
func TestCLIConvertPZ(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	adj := filepath.Join(work, "tw.adj")
	run(t, filepath.Join(bins, "pasgal-gen"), "-workload", "TW", "-scale", "0.05", "-o", adj)
	g, err := LoadGraph(adj, true)
	if err != nil {
		t.Fatal(err)
	}

	// Plain conversion: write -> mmap-read -> compare.
	pz := filepath.Join(work, "tw.pz")
	out := run(t, filepath.Join(bins, "pasgal-convert"), "-in", adj, "-out", pz, "-stats")
	if !strings.Contains(out, "bytes/edge") {
		t.Fatalf("convert -stats did not report bytes/edge:\n%s", out)
	}
	c, closeMap, err := MapCompressed(pz)
	if err != nil {
		t.Fatal(err)
	}
	defer closeMap()
	back := c.Decompress()
	if back.N != g.N || back.M() != g.M() {
		t.Fatalf("mmap round trip: n=%d m=%d, want n=%d m=%d", back.N, back.M(), g.N, g.M())
	}
	for v := 0; v <= g.N; v++ {
		if back.Offsets[v] != g.Offsets[v] {
			t.Fatalf("offsets[%d] differ after round trip", v)
		}
	}
	for i := range g.Edges {
		if back.Edges[i] != g.Edges[i] {
			t.Fatalf("edges[%d] differ after round trip", i)
		}
	}

	// Relabeled conversion permutes ids, so only the shape is compared;
	// the BFS reach count from the relabeled image of vertex 0's image is
	// checked against the original through the library relabel.
	pzr := filepath.Join(work, "tw-relabel.pz")
	run(t, filepath.Join(bins, "pasgal-convert"), "-in", adj, "-out", pzr, "-relabel")
	cr, closeR, err := MapCompressed(pzr)
	if err != nil {
		t.Fatal(err)
	}
	defer closeR()
	if cr.NumVertices() != g.N || cr.NumArcs() != len(g.Edges) {
		t.Fatalf("relabeled .pz shape: n=%d m=%d, want n=%d m=%d",
			cr.NumVertices(), cr.NumArcs(), g.N, len(g.Edges))
	}
	rg, perm := RelabelByDegree(g)
	want, _, err := BFS(rg, perm[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := BFS(cr, perm[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("relabeled compressed BFS differs at vertex %d: %d vs %d", v, got[v], want[v])
		}
	}

	// LoadGraph's generic dispatcher also understands .pz (decompressing).
	lg, err := LoadGraph(pz, true)
	if err != nil {
		t.Fatal(err)
	}
	if lg.N != g.N || lg.M() != g.M() {
		t.Fatalf("LoadGraph(.pz): n=%d m=%d, want n=%d m=%d", lg.N, lg.M(), g.N, g.M())
	}
}

// TestCLITraceAndCompare covers the acceptance path of the tracing +
// regression-gate work: `-trace` must emit a loadable Chrome trace, and
// `-compare` must exit non-zero exactly when a result file regressed.
func TestCLITraceAndCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()
	benchBin := filepath.Join(bins, "pasgal-bench")

	traceDir := filepath.Join(work, "trace")
	newJSON := filepath.Join(work, "new.json")
	out := run(t, benchBin, "-exp", "bfs", "-scale", "0.02", "-reps", "1",
		"-graphs", "REC,TW", "-trace", traceDir, "-json", newJSON,
		"-cpuprofile", filepath.Join(work, "cpu.pprof"),
		"-memprofile", filepath.Join(work, "mem.pprof"))
	for _, want := range []string{"rounds.log", "events.jsonl", "chrome_trace.json"} {
		if !strings.Contains(out, want) {
			t.Fatalf("bench did not report writing %s:\n%s", want, out)
		}
	}

	// The Chrome trace must be valid JSON with a traceEvents array holding
	// complete ("X") round slices — the shape chrome://tracing loads.
	raw, err := os.ReadFile(filepath.Join(traceDir, "chrome_trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var chromeTrace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chromeTrace); err != nil {
		t.Fatalf("chrome_trace.json is not valid JSON: %v", err)
	}
	slices := 0
	for _, ev := range chromeTrace.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Fatalf("chrome trace has no round slices among %d events", len(chromeTrace.TraceEvents))
	}
	for _, prof := range []string{"cpu.pprof", "mem.pprof"} {
		if st, err := os.Stat(filepath.Join(work, prof)); err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty (err=%v)", prof, err)
		}
	}

	// Self-compare: no regression, exit 0.
	out = run(t, benchBin, "-compare", newJSON, newJSON)
	if !strings.Contains(out, "0 regression(s)") {
		t.Fatalf("self-compare reported regressions:\n%s", out)
	}

	// Doctor an "old" file with faster times: comparing old -> new must
	// flag regressions and exit 1.
	var records []map[string]any
	if err := json.Unmarshal(mustRead(t, newJSON), &records); err != nil {
		t.Fatal(err)
	}
	for _, rec := range records {
		for _, res := range rec["results"].([]any) {
			times := res.(map[string]any)["Times"].(map[string]any)
			for impl, v := range times {
				times[impl] = v.(float64) / 10
			}
		}
	}
	doctored, err := json.Marshal(records)
	if err != nil {
		t.Fatal(err)
	}
	oldJSON := filepath.Join(work, "old.json")
	if err := os.WriteFile(oldJSON, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(benchBin, "-compare", oldJSON, newJSON)
	msg, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("compare against 10x-faster old file exited 0:\n%s", msg)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("compare exit = %v, want exit code 1:\n%s", err, msg)
	}
	if !strings.Contains(string(msg), "REGRESSION") {
		t.Fatalf("compare output does not mark regressions:\n%s", msg)
	}

	// A huge threshold swallows the same delta.
	run(t, benchBin, "-compare", "-threshold", "100", oldJSON, newJSON)

	// Bad usage exits non-zero.
	if err := exec.Command(benchBin, "-compare", oldJSON).Run(); err == nil {
		t.Fatal("compare with one file did not fail")
	}
	if err := exec.Command(benchBin, "-compare", oldJSON, filepath.Join(work, "nope.json")).Run(); err == nil {
		t.Fatal("compare with missing file did not fail")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	for _, c := range [][]string{
		{filepath.Join(bins, "pasgal")}, // no input
		{filepath.Join(bins, "pasgal"), "-algo", "nope", "-workload", "NA"},
		{filepath.Join(bins, "pasgal-gen"), "-workload", "NOPE", "-o", "x.adj"},
		{filepath.Join(bins, "pasgal-convert"), "-in", "missing.adj", "-out", "x.bin"},
		{filepath.Join(bins, "pasgal-bench"), "-exp", "nope"},
		{filepath.Join(bins, "pasgal-stats")},
	} {
		if err := exec.Command(c[0], c[1:]...).Run(); err == nil {
			t.Fatalf("%v: expected non-zero exit", c)
		}
	}
}

// TestCLIVetJSON is the golden-output test for pasgal-vet -json: the
// machine-readable findings for the xa/xb cross-package fixture must match
// exactly — rule, position, message, and function are a stable contract
// for editor and CI integrations. A second run over the escape fixture
// checks the callPath field renders the multi-hop chain.
func TestCLIVetJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	vet := filepath.Join(bins, "pasgal-vet")

	runVet := func(pattern string) []map[string]any {
		t.Helper()
		cmd := exec.Command(vet, "-json", pattern)
		out, err := cmd.Output()
		// Findings are expected: exit status 1, not 0 and not 2.
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Fatalf("pasgal-vet -json %s: err=%v, want exit 1\n%s", pattern, err, out)
		}
		var findings []map[string]any
		if err := json.Unmarshal(out, &findings); err != nil {
			t.Fatalf("invalid JSON from pasgal-vet: %v\n%s", err, out)
		}
		return findings
	}

	got := runVet("./internal/lint/testdata/src/xa")
	want := []map[string]any{
		{
			"file":     "internal/lint/testdata/src/xa/xa.go",
			"line":     float64(12),
			"col":      float64(2),
			"rule":     "xpkg-mixed-access",
			"message":  "N is accessed atomically in pasgal/internal/lint/testdata/src/xb (internal/lint/testdata/src/xb/xb.go:12) but plainly written here; the packages race through the shared object",
			"function": "lint/testdata/src/xa.badReset",
		},
		{
			"file":     "internal/lint/testdata/src/xa/xa.go",
			"line":     float64(18),
			"col":      float64(7),
			"rule":     "xpkg-mixed-access",
			"message":  "N is accessed atomically in pasgal/internal/lint/testdata/src/xb (internal/lint/testdata/src/xb/xb.go:12) but plainly read here inside a goroutine/parallel closure",
			"function": "lint/testdata/src/xa.badPeek",
		},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		for k, v := range want[i] {
			if got[i][k] != v {
				t.Errorf("finding %d %s = %v, want %v", i, k, got[i][k], v)
			}
		}
	}

	// The escape fixture's chained case must carry a two-hop call path:
	// closure -> relay -> escapedep.Bump.
	var chained map[string]any
	for _, f := range runVet("./internal/lint/testdata/src/escape") {
		if f["function"] == "badChained" {
			chained = f
		}
	}
	if chained == nil {
		t.Fatal("no finding for badChained in the escape fixture")
	}
	path, _ := chained["callPath"].([]any)
	if len(path) != 2 {
		t.Fatalf("badChained callPath = %v, want 2 hops", chained["callPath"])
	}
	if s, _ := path[0].(string); !strings.Contains(s, "escape.relay") {
		t.Errorf("hop 0 = %v, want the relay helper", path[0])
	}
	if s, _ := path[1].(string); !strings.Contains(s, "escapedep.Bump") {
		t.Errorf("hop 1 = %v, want the cross-package writer", path[1])
	}
}

// TestCLIServeEndToEnd exercises the serving binaries as a pair: boot
// pasgal-serve on an ephemeral port, drive it with pasgal-loadgen (JSON
// report), query it directly, then SIGTERM and watch the graceful drain.
func TestCLIServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	srv := exec.Command(filepath.Join(bins, "pasgal-serve"),
		"-listen", "127.0.0.1:0", "-workload", "TW", "-scale", "0.1")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = srv.Stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Process.Kill(); srv.Wait() })

	// The daemon prints its bound address once the listener is up.
	var addr string
	var bootLog strings.Builder
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		bootLog.WriteString(line + "\n")
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening line from pasgal-serve:\n%s", bootLog.String())
	}

	report := filepath.Join(work, "load.json")
	out := run(t, filepath.Join(bins, "pasgal-loadgen"),
		"-url", "http://"+addr, "-clients", "4", "-requests", "40",
		"-seed", "1", "-json", report)
	if !strings.Contains(out, "queries/sec") || !strings.Contains(out, "0 errors") {
		t.Fatalf("loadgen output: %s", out)
	}
	var rep struct {
		Requests int     `json:"requests"`
		Errors   int     `json:"errors"`
		QPS      float64 `json:"qps"`
		P99      float64 `json:"p99"`
	}
	if err := json.Unmarshal(mustRead(t, report), &rep); err != nil {
		t.Fatalf("load report: %v", err)
	}
	if rep.Requests != 40 || rep.Errors != 0 || rep.QPS <= 0 || rep.P99 <= 0 {
		t.Fatalf("implausible load report: %+v", rep)
	}

	// One direct query round-trip, as a client without the harness.
	resp, err := http.Get("http://" + addr + "/query/bfs?graph=TW&src=1")
	if err != nil {
		t.Fatal(err)
	}
	var bfs struct {
		Reached int `json:"reached"`
	}
	err = json.NewDecoder(resp.Body).Decode(&bfs)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || bfs.Reached <= 0 {
		t.Fatalf("direct query: status %d err %v reached %d",
			resp.StatusCode, err, bfs.Reached)
	}

	// Graceful drain on SIGTERM: process exits 0 and says goodbye.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained := bootLog.String()
	for sc.Scan() {
		drained += sc.Text() + "\n"
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("pasgal-serve exit after SIGTERM: %v\n%s", err, drained)
	}
	if !strings.Contains(drained, "draining") || !strings.Contains(drained, "bye") {
		t.Fatalf("drain messages missing:\n%s", drained)
	}
}
