package pasgal

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles every command once per test binary run and returns
// the directory holding them.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"pasgal", "pasgal-gen", "pasgal-stats",
		"pasgal-bench", "pasgal-convert"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds five binaries")
	}
	bins := buildTools(t)
	work := t.TempDir()

	// pasgal-gen: write a workload in two formats.
	adj := filepath.Join(work, "na.adj")
	gr := filepath.Join(work, "na.gr")
	run(t, filepath.Join(bins, "pasgal-gen"), "-workload", "NA", "-scale", "0.05", "-o", adj)
	run(t, filepath.Join(bins, "pasgal-gen"), "-workload", "NA", "-scale", "0.05",
		"-weights", "-o", gr)

	// pasgal-convert: adj -> gzipped bin, with stats.
	binGz := filepath.Join(work, "na.bin.gz")
	out := run(t, filepath.Join(bins, "pasgal-convert"), "-in", adj, "-out", binGz, "-stats")
	if !strings.Contains(out, "n=") {
		t.Fatalf("convert stats missing: %s", out)
	}

	// pasgal-stats on the file.
	out = run(t, filepath.Join(bins, "pasgal-stats"), "-graph", binGz)
	if !strings.Contains(out, "directed graph") {
		t.Fatalf("stats output: %s", out)
	}

	// pasgal: run and verify each algorithm.
	for _, algo := range []string{"bfs", "scc", "sssp"} {
		out = run(t, filepath.Join(bins, "pasgal"), "-algo", algo, "-graph", binGz, "-verify")
		if !strings.Contains(out, "verified against") {
			t.Fatalf("%s verify missing: %s", algo, out)
		}
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "bcc", "-graph", adj, "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("bcc verify missing: %s", out)
	}
	// Loading a directed arc set as undirected must fail loudly rather
	// than feed asymmetric data to undirected algorithms.
	if err := exec.Command(filepath.Join(bins, "pasgal"), "-algo", "bcc",
		"-graph", adj, "-directed=false").Run(); err == nil {
		t.Fatal("expected failure loading a directed .adj as undirected")
	}
	// SSSP from a DIMACS file (weighted input path).
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "sssp", "-graph", gr, "-policy", "delta")
	if !strings.Contains(out, "sssp(delta)") {
		t.Fatalf("sssp output: %s", out)
	}
	// Extension algorithms.
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "kcore", "-graph", binGz, "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("kcore verify missing: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "ptp", "-graph", gr,
		"-dst", "3", "-verify")
	if !strings.Contains(out, "verified against") {
		t.Fatalf("ptp verify missing: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "cc", "-graph", binGz)
	if !strings.Contains(out, "connected components") {
		t.Fatalf("cc output: %s", out)
	}
	out = run(t, filepath.Join(bins, "pasgal"), "-algo", "reach", "-graph", binGz)
	if !strings.Contains(out, "reachable from") {
		t.Fatalf("reach output: %s", out)
	}

	// pasgal-bench: a tiny experiment run.
	out = run(t, filepath.Join(bins, "pasgal-bench"), "-exp", "frontier", "-scale", "0.05")
	if !strings.Contains(out, "Frontier growth") {
		t.Fatalf("bench output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildTools(t)
	for _, c := range [][]string{
		{filepath.Join(bins, "pasgal")}, // no input
		{filepath.Join(bins, "pasgal"), "-algo", "nope", "-workload", "NA"},
		{filepath.Join(bins, "pasgal-gen"), "-workload", "NOPE", "-o", "x.adj"},
		{filepath.Join(bins, "pasgal-convert"), "-in", "missing.adj", "-out", "x.bin"},
		{filepath.Join(bins, "pasgal-bench"), "-exp", "nope"},
		{filepath.Join(bins, "pasgal-stats")},
	} {
		if err := exec.Command(c[0], c[1:]...).Run(); err == nil {
			t.Fatalf("%v: expected non-zero exit", c)
		}
	}
}
