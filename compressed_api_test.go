package pasgal

import (
	"path/filepath"
	"testing"
)

// TestCompressedPublicAPI drives the compressed-representation public
// surface end to end: compress, relabel, save/load/map .pz, and run the
// compressed-capable algorithms through the exported wrappers.
func TestCompressedPublicAPI(t *testing.T) {
	g := GenerateRMAT(9, 8, true, 5)
	c := CompressGraph(g)
	if c.NumVertices() != g.N || c.NumArcs() != g.M() {
		t.Fatalf("compressed shape %d/%d, want %d/%d",
			c.NumVertices(), c.NumArcs(), g.N, g.M())
	}

	// The widened algorithm entry points accept both representations.
	want, _, err := BFS(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := BFS(c, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d compressed, %d plain", v, got[v], want[v])
		}
	}
	reach, _, err := Reachable(c, []uint32{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range reach {
		if reach[v] != (want[v] != InfDist) {
			t.Fatalf("reach[%d] = %v, bfs says %v", v, reach[v], want[v] != InfDist)
		}
	}
	rows, _, err := BatchedBFS(c, []uint32{0, 1, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if rows[0][v] != want[v] || rows[2][v] != want[v] {
			t.Fatal("batched rows disagree with single-source BFS")
		}
	}
	if brows, _, err := BatchedReachable(c, []uint32{0}, Options{}); err != nil {
		t.Fatal(err)
	} else {
		for v := range reach {
			if brows[0][v] != reach[v] {
				t.Fatal("batched reachability disagrees with Reachable")
			}
		}
	}

	// Degree relabeling: a permutation, and distances commute with it.
	rg, perm := RelabelByDegree(g)
	if rg.N != g.N || rg.M() != g.M() {
		t.Fatal("relabeled shape differs")
	}
	rdist, _, err := BFS(rg, perm[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if rdist[perm[v]] != want[v] {
			t.Fatalf("relabeled dist[perm[%d]] = %d, want %d", v, rdist[perm[v]], want[v])
		}
	}

	// .pz persistence: verified read and mmap view both reproduce the graph.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.pz")
	if err := SaveCompressed(path, c); err != nil {
		t.Fatal(err)
	}
	lc, err := LoadCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	mc, closeMap, err := MapCompressed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeMap()
	for name, cc := range map[string]*CompressedGraph{"read": lc, "mmap": mc} {
		d := cc.Decompress()
		if d.N != g.N || d.M() != g.M() {
			t.Fatalf("%s: decompressed shape differs", name)
		}
		for e := range g.Edges {
			if d.Edges[e] != g.Edges[e] {
				t.Fatalf("%s: edge %d differs", name, e)
			}
		}
	}

	// Generic dispatchers: SaveGraph compresses, LoadGraph decompresses.
	gpath := filepath.Join(dir, "generic.pz")
	if err := SaveGraph(gpath, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraph(gpath, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || back.M() != g.M() {
		t.Fatal(".pz dispatch round trip differs")
	}

	// Weighted graphs keep weights through the compressed wrappers.
	wg := AddUniformWeights(g, 1, 100, 9)
	wc := CompressGraph(wg)
	wantW, _, err := SSSP(wg, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotW, _, err := SSSP(wc, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range wantW {
		if gotW[v] != wantW[v] {
			t.Fatalf("sssp dist[%d] = %d compressed, %d plain", v, gotW[v], wantW[v])
		}
	}
	dst := uint32(g.N - 1)
	pw, _, err := PointToPoint(wc, 0, dst, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pw != wantW[dst] {
		t.Fatalf("p2p = %d, sssp row says %d", pw, wantW[dst])
	}
}

// TestCompressedCoalescerAPI routes coalesced queries through a
// compressed graph, matching the serving daemon's mmap configuration.
func TestCompressedCoalescerAPI(t *testing.T) {
	g := GenerateChain(500, true)
	c := CompressGraph(g)
	coal := NewCoalescer(c, CoalescerOptions{})
	defer coal.Close()
	dist, err := coal.Submit(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := BFS(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("coalesced dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}
