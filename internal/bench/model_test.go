package bench

import (
	"encoding/xml"
	"os"
	"strings"
	"testing"
	"time"
)

func TestMeasureSyncCost(t *testing.T) {
	d := MeasureSyncCost(2)
	if d <= 0 || d > 50*time.Millisecond {
		t.Fatalf("implausible barrier cost %v", d)
	}
}

func TestProjectedSpeedup(t *testing.T) {
	// With zero sync cost the model is pure work law.
	if got := ProjectedSpeedup(1.0, 1000, 1000, 10, 0, 4); got != 4 {
		t.Fatalf("work law: %v", got)
	}
	// Sync cost caps speedup: huge rounds -> below 1.
	got := ProjectedSpeedup(1.0, 1000, 1000, 1_000_000, 1e-5, 96)
	if got >= 1 {
		t.Fatalf("sync-bound case should be < 1, got %v", got)
	}
	// More rounds always means less projected speedup.
	a := ProjectedSpeedup(1.0, 1000, 1000, 10, 1e-6, 96)
	b := ProjectedSpeedup(1.0, 1000, 1000, 10000, 1e-6, 96)
	if b >= a {
		t.Fatalf("monotonicity violated: %v vs %v", a, b)
	}
}

func TestFig1ModelSmoke(t *testing.T) {
	var buf strings.Builder
	Fig1Model(Config{Scale: 0.02, Reps: 1, Out: &buf, Graphs: []string{"TW", "NA"}})
	out := buf.String()
	for _, want := range []string{"analytic projection", "tSync", "PASGAL", "@96"} {
		if !strings.Contains(out, want) {
			t.Fatalf("model output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.json"
	recs := []Record{{
		Experiment: "bfs", Scale: 0.1, Reps: 1, Workers: 1,
		Results: []Result{{Graph: "NA", Category: "Road",
			Times: map[string]float64{"PASGAL": 0.01}}},
	}}
	if err := WriteJSON(path, recs); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	data, err := readAll(path)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(data)
	for _, want := range []string{`"experiment": "bfs"`, `"Graph": "NA"`, `"PASGAL": 0.01`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("json missing %q: %s", want, buf.String())
		}
	}
	if err := WriteJSON("/nonexistent-dir/x.json", recs); err == nil {
		t.Fatal("expected write error")
	}
}

func readAll(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func TestWriteSpeedupSVG(t *testing.T) {
	dir := t.TempDir()
	results := []Result{
		{Graph: "NA", Category: "Road",
			Times: map[string]float64{"PASGAL": 0.02, "GBBS": 0.08, "SeqQueue*": 0.01}},
		{Graph: "TW", Category: "Social",
			Times: map[string]float64{"PASGAL": 0.004, "GBBS": 0.002, "SeqQueue*": 0.003}},
	}
	path := dir + "/f.svg"
	if err := WriteSpeedupSVG(path, "test", []string{"PASGAL", "GBBS", "SeqQueue*"}, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var node struct{}
	if err := xml.Unmarshal(data, &node); err != nil {
		t.Fatalf("not well-formed XML: %v", err)
	}
	s := string(data)
	for _, want := range []string{"<svg", "PASGAL", "GBBS", "NA", "TW", "stroke-dasharray"} {
		if !strings.Contains(s, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Error paths: no sequential baseline / no results.
	if err := WriteSpeedupSVG(path, "t", []string{"PASGAL"}, results); err == nil {
		t.Fatal("expected error without a sequential baseline")
	}
	if err := WriteSpeedupSVG(path, "t", []string{"PASGAL", "X*"}, nil); err == nil {
		t.Fatal("expected error without results")
	}
}
