package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pasgal/internal/core"
)

func mkRecord(exp, graph string, times map[string]float64, rounds map[string]int64) Record {
	res := Result{Graph: graph, Category: "test", Times: times,
		Metrics: map[string]*core.Metrics{}, Extra: map[string]string{}}
	for impl, r := range rounds {
		res.Metrics[impl] = &core.Metrics{Rounds: r}
	}
	return Record{Experiment: exp, Scale: 1, Reps: 1, Workers: 1, Results: []Result{res}}
}

func TestCompareDetectsRegression(t *testing.T) {
	oldRecs := []Record{mkRecord("bfs", "REC",
		map[string]float64{"PASGAL": 1.0, "GBBS": 2.0},
		map[string]int64{"PASGAL": 40, "GBBS": 5000})}
	newRecs := []Record{mkRecord("bfs", "REC",
		map[string]float64{"PASGAL": 1.6, "GBBS": 2.0},
		map[string]int64{"PASGAL": 41, "GBBS": 5000})}

	deltas := Compare(oldRecs, newRecs)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	// Sorted worst-first: the 1.6x PASGAL slowdown leads.
	if deltas[0].Impl != "PASGAL" || !deltas[0].Regressed(0.5) {
		t.Fatalf("worst delta = %+v, want PASGAL regression", deltas[0])
	}
	if deltas[0].RoundsOld != 40 || deltas[0].RoundsNew != 41 {
		t.Fatalf("rounds not carried: %+v", deltas[0])
	}
	if deltas[1].Regressed(0.5) {
		t.Fatalf("GBBS at 1.0x flagged as regression: %+v", deltas[1])
	}

	var buf bytes.Buffer
	if n := PrintDeltas(&buf, deltas, 0.5); n != 1 {
		t.Fatalf("PrintDeltas counted %d regressions, want 1", n)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("report does not mark the regression:\n%s", buf.String())
	}

	// Below threshold: same deltas, zero regressions.
	if n := PrintDeltas(&buf, deltas, 0.7); n != 0 {
		t.Fatalf("threshold 0.7 counted %d regressions, want 0", n)
	}
}

func TestCompareSkipsUnmatchedCells(t *testing.T) {
	oldRecs := []Record{mkRecord("bfs", "REC", map[string]float64{"PASGAL": 1}, nil)}
	newRecs := []Record{
		mkRecord("bfs", "TW", map[string]float64{"PASGAL": 1}, nil),   // new graph
		mkRecord("scc", "REC", map[string]float64{"PASGAL": 1}, nil),  // new experiment
		mkRecord("bfs", "REC", map[string]float64{"NewImpl": 1}, nil), // new impl
	}
	if deltas := Compare(oldRecs, newRecs); len(deltas) != 0 {
		t.Fatalf("unmatched cells produced deltas: %+v", deltas)
	}
}

// TestCompareFilesRoundTrip drives the file-level entry point through
// WriteJSON/ReadJSON — the exact path pasgal-bench -compare takes.
func TestCompareFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	oldRecs := []Record{mkRecord("bfs", "REC", map[string]float64{"PASGAL": 1.0}, nil)}
	newRecs := []Record{mkRecord("bfs", "REC", map[string]float64{"PASGAL": 3.0}, nil)}
	if err := WriteJSON(oldPath, oldRecs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(newPath, newRecs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := CompareFiles(&buf, oldPath, newPath, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("CompareFiles found %d regressions, want 1:\n%s", n, buf.String())
	}
	// Identical files: no regressions.
	n, err = CompareFiles(&buf, oldPath, oldPath, 0.25)
	if err != nil || n != 0 {
		t.Fatalf("self-compare: n=%d err=%v", n, err)
	}
	if _, err := CompareFiles(&buf, filepath.Join(dir, "absent.json"), newPath, 0.25); err == nil {
		t.Fatal("missing old file did not error")
	}
}
