package bench

import (
	"strings"
	"testing"

	"pasgal/internal/graph"
)

func smallConfig(buf *strings.Builder, graphs ...string) Config {
	return Config{Scale: 0.03, Reps: 1, Out: buf, Graphs: graphs}
}

func TestRegistryCoversPaperWorkloads(t *testing.T) {
	specs := Registry()
	if len(specs) != 22 {
		t.Fatalf("registry has %d workloads, want 22", len(specs))
	}
	wantDirected := map[string]bool{
		"LJ": true, "FB": false, "OK": false, "TW": true, "FS": false,
		"WK": true, "SD": true, "CW": true, "HL14": true, "HL12": true,
		"AF": true, "NA": true, "AS": true, "EU": true,
		"CH5": true, "GL5": true, "GL10": true, "COS5": true,
		"REC": true, "SREC": true, "TRCE": false, "BBL": false,
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate workload %s", s.Name)
		}
		seen[s.Name] = true
		if d, ok := wantDirected[s.Name]; !ok || d != s.Directed {
			t.Fatalf("%s: directedness %v unexpected", s.Name, s.Directed)
		}
		g := s.Build(0.02)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if g.Directed != s.Directed {
			t.Fatalf("%s: built graph directedness mismatch", s.Name)
		}
		if g.N < 100 {
			t.Fatalf("%s: suspiciously small (n=%d)", s.Name, g.N)
		}
	}
	for name := range wantDirected {
		if !seen[name] {
			t.Fatalf("workload %s missing", name)
		}
	}
}

func TestDiameterClasses(t *testing.T) {
	// The registry must reproduce the paper's diameter split: road/kNN/
	// synthetic large, social small (on the symmetrized graph).
	for _, name := range []string{"NA", "REC", "CH5"} {
		s := LookupSpec(name)
		g := s.Build(0.1)
		if d := graph.EstimateDiameter(g.Symmetrized(), 2, 1); d < 50 {
			t.Fatalf("%s: diameter %d too small for its class", name, d)
		}
	}
	for _, name := range []string{"LJ", "OK", "TW"} {
		s := LookupSpec(name)
		g := s.Build(0.1)
		if d := graph.EstimateDiameter(g.Symmetrized(), 2, 1); d > 30 {
			t.Fatalf("%s: diameter %d too large for its class", name, d)
		}
	}
}

func TestLookupSpec(t *testing.T) {
	if LookupSpec("REC") == nil || LookupSpec("nope") != nil {
		t.Fatal("LookupSpec broken")
	}
}

func TestRunnersProduceResults(t *testing.T) {
	s := LookupSpec("NA")
	g := s.Build(0.03)
	for _, check := range []struct {
		name  string
		impls []string
		run   func() Result
	}{
		{"bfs", BFSImpls, func() Result { return RunBFS("NA", "Road", g, 1) }},
		{"scc", SCCImpls, func() Result { return RunSCC("NA", "Road", g, 1) }},
		{"bcc", BCCImpls, func() Result { return RunBCC("NA", "Road", g, 1) }},
		{"sssp", SSSPImpls, func() Result { return RunSSSP("NA", "Road", g, 1) }},
	} {
		r := check.run()
		for _, impl := range check.impls {
			if r.Times[impl] <= 0 {
				t.Fatalf("%s: no time recorded for %s", check.name, impl)
			}
		}
	}
}

func TestExperimentsSmoke(t *testing.T) {
	var buf strings.Builder
	Tab1(smallConfig(&buf, "LJ", "NA"))
	TableBFS(smallConfig(&buf, "NA"))
	TableSCC(smallConfig(&buf, "LJ", "FB")) // FB undirected: must be skipped
	TableBCC(smallConfig(&buf, "TRCE"))
	TableSSSP(smallConfig(&buf, "NA"))
	AblationBag(smallConfig(&buf))
	out := buf.String()
	for _, want := range []string{
		"Table 1", "BFS running times", "SCC running times",
		"BCC running times", "SSSP running times", "geomean",
		"undirected graph (SCC n/a)", "hash bag",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment output missing %q\n%s", want, out)
		}
	}
}

func TestFig1Smoke(t *testing.T) {
	var buf strings.Builder
	Fig1(smallConfig(&buf, "TW"))
	if !strings.Contains(buf.String(), "Figure 1") ||
		!strings.Contains(buf.String(), "PASGAL@1") {
		t.Fatalf("fig1 output wrong:\n%s", buf.String())
	}
}

func TestPickSource(t *testing.T) {
	s := LookupSpec("TW")
	g := s.Build(0.05)
	src := PickSource(g)
	if g.Degree(src) != g.MaxDegree() {
		t.Fatal("PickSource did not pick a max-degree vertex")
	}
}
