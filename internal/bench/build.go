package bench

import (
	"fmt"
	"math/rand/v2"

	"pasgal/internal/graph"
)

// BuildImpls names the graph-construction stages measured by TableBuild.
// None are sequential baselines; the regression gate compares each cell
// against its own history.
var BuildImpls = []string{"FromEdges", "Transpose", "Symmetrized"}

// buildWorkload is one edge-list shape for the construction benchmark.
type buildWorkload struct {
	Name   string
	Powlaw bool
}

// buildEdgeList generates a deterministic edge list with n vertices and m
// arcs. Power-law lists concentrate sources on the low vertex ids (f^4
// skew), producing the hub-heavy degree distributions where per-list
// sorting used to go superlinear.
func buildEdgeList(n, m int, powlaw bool, seed uint64) []graph.Edge {
	rng := rand.New(rand.NewPCG(seed, 7))
	edges := make([]graph.Edge, m)
	for i := range edges {
		var u uint32
		if powlaw {
			f := rng.Float64()
			f = f * f * f * f
			u = uint32(f * float64(n-1))
		} else {
			u = uint32(rng.IntN(n))
		}
		edges[i] = graph.Edge{U: u, V: uint32(rng.IntN(n)), W: 1 + rng.Uint32N(1<<16)}
	}
	return edges
}

// freshView returns a graph sharing g's CSR arrays but with its own (unset)
// transpose cache, so Transpose() can be timed more than once.
func freshView(g *graph.Graph) *graph.Graph {
	return &graph.Graph{
		N: g.N, Offsets: g.Offsets, Edges: g.Edges,
		Weights: g.Weights, Directed: g.Directed,
	}
}

// TableBuild measures the CSR construction pipeline: FromEdges on a
// directed weighted list, Transpose of the result, and the symmetrized
// build. The uniform and power-law workloads share n and m so the skew is
// the only variable.
func TableBuild(c Config) []Result {
	n := sc(65536, c.Scale)
	m := 8 * n
	workloads := []buildWorkload{{"UNI-build", false}, {"POW-build", true}}
	var results []Result
	fmt.Fprintf(c.Out, "\n== Graph construction: n=%s m=%s ==\n", fmtCount(n), fmtCount(m))
	rows := [][]string{append([]string{"Graph"}, BuildImpls...)}
	for i, w := range workloads {
		if len(c.Graphs) > 0 && !containsName(c.Graphs, w.Name) {
			continue
		}
		edges := buildEdgeList(n, m, w.Powlaw, uint64(601+i))
		g := graph.FromEdges(n, edges, true, graph.BuildOptions{Weighted: true})
		res := Result{
			Graph: w.Name, Category: "Build", N: n, M: len(g.Edges),
			Times:   map[string]float64{},
			Metrics: nil,
			Extra:   map[string]string{},
		}
		res.Times["FromEdges"] = timed(c.Reps, func() {
			graph.FromEdges(n, edges, true, graph.BuildOptions{Weighted: true})
		})
		// Transpose memoizes per graph, so each rep gets a fresh view that
		// shares the CSR arrays but not the cache.
		reps := c.Reps
		if reps < 1 {
			reps = 1
		}
		views := make([]*graph.Graph, reps)
		for r := range views {
			views[r] = freshView(g)
		}
		next := 0
		res.Times["Transpose"] = timed(c.Reps, func() {
			views[next].Transpose()
			next++
		})
		res.Times["Symmetrized"] = timed(c.Reps, func() {
			graph.FromEdges(n, edges, false, graph.BuildOptions{Weighted: true, Symmetrize: true})
		})
		results = append(results, res)
		rows = append(rows, []string{w.Name,
			fmtTime(res.Times["FromEdges"]),
			fmtTime(res.Times["Transpose"]),
			fmtTime(res.Times["Symmetrized"])})
	}
	printAligned(c.Out, rows)
	return results
}

func containsName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
