package bench

import (
	"fmt"
	"runtime"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/seq"
)

// allocDelta runs fn and returns the bytes allocated during the call
// (TotalAlloc delta after a GC fence) — allocation volume, not peak
// residency, but a faithful proxy for the auxiliary-space story.
func allocDelta(fn func()) int64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

// Memory reports the allocation volume of the BCC implementations — the
// paper's space argument: Tarjan–Vishkin's Θ(m) auxiliary graph is what
// makes it run out of memory on billion-edge inputs while FAST-BCC's O(n)
// auxiliary space survives.
func Memory(c Config) {
	fmt.Fprintf(c.Out, "\n== Memory: BCC allocation volume (paper's o.o.m. argument) ==\n")
	rows := [][]string{{"Graph", "n", "m", "PASGAL(FAST-BCC)", "TV", "TV/PASGAL",
		"HopcroftTarjan*"}}
	for _, s := range c.registry() {
		g := c.build(s).Symmetrized()
		aP := allocDelta(func() { core.BCC(g, core.Options{}) })
		aT := allocDelta(func() { baseline.TarjanVishkinBCC(g) })
		aH := allocDelta(func() { seq.HopcroftTarjanBCC(g) })
		ratio := "-"
		if aP > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(aT)/float64(aP))
		}
		rows = append(rows, []string{s.Name, fmtCount(g.N), fmtCount(len(g.Edges)),
			byteSize(aP), byteSize(aT), ratio, byteSize(aH)})
	}
	printAligned(c.Out, rows)
}
