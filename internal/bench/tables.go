package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// byteSize renders a byte count human-readably.
func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtTime(s float64) string {
	switch {
	case s == 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// PrintTimeTable prints a paper-style running-time table: one row per
// graph grouped by category, one column per implementation, plus geometric
// means per category. Sequential baselines are suffixed "*".
func PrintTimeTable(w io.Writer, title string, impls []string, results []Result) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	header := []string{"Cat", "Graph", "n", "m"}
	header = append(header, impls...)
	header = append(header, "Rounds(PASGAL)", "Rounds(best-lvlsync)")
	rows := [][]string{header}
	for _, cat := range Categories() {
		for _, r := range results {
			if r.Category != cat {
				continue
			}
			row := []string{r.Category, r.Graph, fmtCount(r.N), fmtCount(r.M)}
			for _, impl := range impls {
				row = append(row, fmtTime(r.Times[impl]))
			}
			row = append(row, fmtRounds(r, pasgalOf(impls)), fmtRounds(r, levelSyncOf(impls)))
			rows = append(rows, row)
		}
	}
	// Geometric means per category.
	rows = append(rows, []string{"--"})
	for _, cat := range Categories() {
		times := map[string][]float64{}
		for _, r := range results {
			if r.Category != cat {
				continue
			}
			for _, impl := range impls {
				if t := r.Times[impl]; t > 0 {
					times[impl] = append(times[impl], t)
				}
			}
		}
		if len(times) == 0 {
			continue
		}
		row := []string{"geomean", cat, "", ""}
		for _, impl := range impls {
			row = append(row, fmtTime(geomean(times[impl])))
		}
		rows = append(rows, row)
	}
	printAligned(w, rows)
	// Extras (e.g. TV aux memory).
	for _, r := range results {
		for k, v := range r.Extra {
			fmt.Fprintf(w, "   %-6s %s: %s\n", r.Graph, k, v)
		}
	}
}

// PrintSpeedupTable prints Figure 2's content: speedup of each parallel
// implementation over the sequential baseline (values < 1 mean slower than
// sequential, the paper's headline failure mode for level-synchronous
// systems on large-diameter graphs).
func PrintSpeedupTable(w io.Writer, title string, impls []string, results []Result) {
	seqImpl := ""
	for _, impl := range impls {
		if strings.HasSuffix(impl, "*") {
			seqImpl = impl
		}
	}
	fmt.Fprintf(w, "\n== %s (speedup over %s; <1 = slower than sequential) ==\n", title, seqImpl)
	header := []string{"Cat", "Graph"}
	for _, impl := range impls {
		if impl != seqImpl {
			header = append(header, impl)
		}
	}
	rows := [][]string{header}
	for _, cat := range Categories() {
		for _, r := range results {
			if r.Category != cat {
				continue
			}
			base := r.Times[seqImpl]
			row := []string{r.Category, r.Graph}
			for _, impl := range impls {
				if impl == seqImpl {
					continue
				}
				if t := r.Times[impl]; t > 0 && base > 0 {
					row = append(row, fmt.Sprintf("%.2fx", base/t))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	printAligned(w, rows)
}

// pasgalOf returns the PASGAL implementation name in an impl set (exact
// "PASGAL" or the first "PASGAL-*" variant).
func pasgalOf(impls []string) string {
	for _, impl := range impls {
		if impl == "PASGAL" || strings.HasPrefix(impl, "PASGAL-") {
			return impl
		}
	}
	return impls[0]
}

// levelSyncOf returns the representative level-synchronous baseline of an
// impl set.
func levelSyncOf(impls []string) string {
	for _, impl := range impls {
		if impl == "GBBS" || impl == "GBBS-BF" {
			return impl
		}
	}
	return impls[0]
}

func fmtRounds(r Result, impl string) string {
	if m := r.Metrics[impl]; m != nil {
		return fmtCount(int(m.Rounds))
	}
	return "-"
}

func fmtCount(n int) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// printAligned renders rows with per-column padding.
func printAligned(w io.Writer, rows [][]string) {
	widths := map[int]int{}
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[c], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

// SortResults orders results by the registry's category then name order.
func SortResults(results []Result) {
	order := map[string]int{}
	for i, s := range Registry() {
		order[s.Name] = i
	}
	sort.SliceStable(results, func(i, j int) bool {
		return order[results[i].Graph] < order[results[j].Graph]
	})
}
