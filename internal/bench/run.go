package bench

import (
	"time"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// Result holds one (graph x problem) measurement: per-implementation
// median seconds and metrics. The map keys are implementation names; names
// ending in "*" are sequential baselines (the paper's convention).
type Result struct {
	Graph    string
	Category string
	N, M     int
	Times    map[string]float64
	Metrics  map[string]*core.Metrics
	Extra    map[string]string // e.g. Tarjan–Vishkin aux bytes
}

// timed runs fn reps times and returns the median duration in seconds.
func timed(reps int, fn func()) float64 {
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start).Seconds()
	}
	// Median by insertion (reps is tiny).
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j-1] > times[j]; j-- {
			times[j-1], times[j] = times[j], times[j-1]
		}
	}
	return times[len(times)/2]
}

// PickSource returns a good BFS/SSSP source: the maximum-degree vertex,
// which sits inside the giant component on every workload in the registry.
func PickSource(g *graph.Graph) uint32 {
	best, bestDeg := uint32(0), -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(uint32(v)); d > bestDeg {
			best, bestDeg = uint32(v), d
		}
	}
	return best
}

// BFSImpls names the implementations in the paper's BFS table.
var BFSImpls = []string{"PASGAL", "GBBS", "GAPBS", "SeqQueue*"}

// RunBFS measures every BFS implementation on g.
func RunBFS(name, category string, g *graph.Graph, reps int) Result {
	return RunBFSOpt(name, category, g, reps, core.Options{})
}

// RunBFSOpt is RunBFS with Options (tracer, knobs) threaded through PASGAL
// and every baseline.
func RunBFSOpt(name, category string, g *graph.Graph, reps int, opt core.Options) Result {
	src := PickSource(g)
	res := newResult(name, category, g)
	var met *core.Metrics
	res.Times["PASGAL"] = timed(reps, func() { _, met, _ = core.BFS(g, src, opt) })
	res.Metrics["PASGAL"] = met
	res.Times["GBBS"] = timed(reps, func() { _, met, _ = baseline.GBBSBFSOpt(g, src, opt) })
	res.Metrics["GBBS"] = met
	res.Times["GAPBS"] = timed(reps, func() { _, met, _ = baseline.GAPBSBFSOpt(g, src, opt) })
	res.Metrics["GAPBS"] = met
	res.Times["SeqQueue*"] = timed(reps, func() { seq.BFS(g, src) })
	return res
}

// SCCImpls names the implementations in the paper's SCC table.
var SCCImpls = []string{"PASGAL", "GBBS", "Multistep", "Tarjan*"}

// RunSCC measures every SCC implementation on a directed g.
func RunSCC(name, category string, g *graph.Graph, reps int) Result {
	return RunSCCOpt(name, category, g, reps, core.Options{})
}

// RunSCCOpt is RunSCC with Options threaded through every implementation.
func RunSCCOpt(name, category string, g *graph.Graph, reps int, opt core.Options) Result {
	res := newResult(name, category, g)
	var met *core.Metrics
	res.Times["PASGAL"] = timed(reps, func() { _, _, met, _ = core.SCC(g, opt) })
	res.Metrics["PASGAL"] = met
	res.Times["GBBS"] = timed(reps, func() { _, _, met, _ = baseline.GBBSSCCOpt(g, opt) })
	res.Metrics["GBBS"] = met
	res.Times["Multistep"] = timed(reps, func() { _, _, met, _ = baseline.MultistepSCCOpt(g, opt) })
	res.Metrics["Multistep"] = met
	res.Times["Tarjan*"] = timed(reps, func() { seq.TarjanSCC(g) })
	return res
}

// BCCImpls names the implementations in the paper's BCC table.
var BCCImpls = []string{"PASGAL", "GBBS", "TV", "HopcroftTarjan*"}

// RunBCC measures every BCC implementation on g (symmetrized if directed,
// as the paper does).
func RunBCC(name, category string, g *graph.Graph, reps int) Result {
	return RunBCCOpt(name, category, g, reps, core.Options{})
}

// RunBCCOpt is RunBCC with Options threaded through every implementation.
func RunBCCOpt(name, category string, g *graph.Graph, reps int, opt core.Options) Result {
	sym := g.Symmetrized()
	res := newResult(name, category, sym)
	var met *core.Metrics
	res.Times["PASGAL"] = timed(reps, func() { _, met, _ = core.BCC(sym, opt) })
	res.Metrics["PASGAL"] = met
	res.Times["GBBS"] = timed(reps, func() { _, met, _ = baseline.GBBSBCCOpt(sym, opt) })
	res.Metrics["GBBS"] = met
	var auxBytes int64
	res.Times["TV"] = timed(reps, func() { _, met, auxBytes, _ = baseline.TarjanVishkinBCCOpt(sym, opt) })
	res.Metrics["TV"] = met
	res.Extra["TV aux"] = byteSize(auxBytes)
	res.Times["HopcroftTarjan*"] = timed(reps, func() { seq.HopcroftTarjanBCC(sym) })
	return res
}

// SSSPImpls names the SSSP implementations (no paper table exists; the
// paper's shape claim is PASGAL's stepping+VGC vs plain Δ-stepping,
// GBBS-style Bellman–Ford, and sequential Dijkstra).
var SSSPImpls = []string{"PASGAL-rho", "PASGAL-delta", "DeltaStep", "GBBS-BF", "Dijkstra*"}

// RunSSSP measures SSSP implementations on a weighted version of g.
func RunSSSP(name, category string, g *graph.Graph, reps int) Result {
	return RunSSSPOpt(name, category, g, reps, core.Options{})
}

// RunSSSPOpt is RunSSSP with Options threaded through every implementation.
func RunSSSPOpt(name, category string, g *graph.Graph, reps int, opt core.Options) Result {
	wg := gen.AddUniformWeights(g, 1, 1<<16, 40400)
	src := PickSource(wg)
	res := newResult(name, category, wg)
	var met *core.Metrics
	res.Times["PASGAL-rho"] = timed(reps, func() {
		_, met, _ = core.SSSP(wg, src, core.RhoStepping{}, opt)
	})
	res.Metrics["PASGAL-rho"] = met
	res.Times["PASGAL-delta"] = timed(reps, func() {
		_, met, _ = core.SSSP(wg, src, core.DeltaStepping{Delta: 1 << 15}, opt)
	})
	res.Metrics["PASGAL-delta"] = met
	res.Times["DeltaStep"] = timed(reps, func() {
		_, met, _ = baseline.DeltaSteppingSSSPOpt(wg, src, 1<<15, opt)
	})
	res.Metrics["DeltaStep"] = met
	res.Times["GBBS-BF"] = timed(reps, func() {
		_, met, _ = baseline.GBBSBellmanFordSSSPOpt(wg, src, opt)
	})
	res.Metrics["GBBS-BF"] = met
	res.Times["Dijkstra*"] = timed(reps, func() { seq.Dijkstra(wg, src) })
	return res
}

func newResult(name, category string, g *graph.Graph) Result {
	return Result{
		Graph:    name,
		Category: category,
		N:        g.N,
		M:        len(g.Edges),
		Times:    map[string]float64{},
		Metrics:  map[string]*core.Metrics{},
		Extra:    map[string]string{},
	}
}
