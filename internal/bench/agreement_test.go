package bench

import (
	"testing"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// TestAllImplementationsAgree is the repo's broadest integration test:
// on every one of the 22 registry workloads (at tiny scale), every
// implementation of every problem must produce results equivalent to the
// sequential reference.
func TestAllImplementationsAgree(t *testing.T) {
	for _, s := range Registry() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			g := s.Build(0.02)
			src := PickSource(g)

			// BFS: all four implementations agree.
			want := seq.BFS(g, src)
			for name, run := range map[string]func() []uint32{
				"pasgal": func() []uint32 { d, _, _ := core.BFS(g, src, core.Options{}); return d },
				"gbbs":   func() []uint32 { d, _ := baseline.GBBSBFS(g, src); return d },
				"gapbs":  func() []uint32 { d, _ := baseline.GAPBSBFS(g, src); return d },
			} {
				got := run()
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("BFS %s: dist[%d] = %d, want %d", name, v, got[v], want[v])
					}
				}
			}

			// SCC (directed workloads): three parallel implementations and
			// two independent sequential algorithms must all agree.
			if g.Directed {
				wantC, wantN := seq.TarjanSCC(g)
				for name, run := range map[string]func() ([]uint32, int){
					"pasgal":   func() ([]uint32, int) { c, n, _, _ := core.SCC(g, core.Options{}); return c, n },
					"gbbs":     func() ([]uint32, int) { c, n, _ := baseline.GBBSSCC(g); return c, n },
					"multi":    func() ([]uint32, int) { c, n, _ := baseline.MultistepSCC(g); return c, n },
					"kosaraju": func() ([]uint32, int) { return seq.KosarajuSCC(g) },
				} {
					gotC, gotN := run()
					if gotN != wantN {
						t.Fatalf("SCC %s: count %d, want %d", name, gotN, wantN)
					}
					if !partitionsMatch(gotC, wantC) {
						t.Fatalf("SCC %s: partition mismatch", name)
					}
				}
			}

			// BCC on the symmetrized graph.
			sym := g.Symmetrized()
			wantB := seq.HopcroftTarjanBCC(sym)
			for name, run := range map[string]func() core.BCCResult{
				"pasgal": func() core.BCCResult { r, _, _ := core.BCC(sym, core.Options{}); return r },
				"gbbs":   func() core.BCCResult { r, _ := baseline.GBBSBCC(sym); return r },
				"tv":     func() core.BCCResult { r, _, _ := baseline.TarjanVishkinBCC(sym); return r },
			} {
				got := run()
				if got.NumBCC != wantB.NumBCC {
					t.Fatalf("BCC %s: %d components, want %d", name, got.NumBCC, wantB.NumBCC)
				}
				if !partitionsMatch(got.ArcLabel, wantB.ArcLabel) {
					t.Fatalf("BCC %s: arc partition mismatch", name)
				}
			}

			// SSSP.
			wg := gen.AddUniformWeights(g, 1, 1000, 99)
			wantD := seq.Dijkstra(wg, src)
			for name, run := range map[string]func() []uint64{
				"rho": func() []uint64 {
					d, _, _ := core.SSSP(wg, src, core.RhoStepping{}, core.Options{})
					return d
				},
				"delta": func() []uint64 {
					d, _, _ := core.SSSP(wg, src, core.DeltaStepping{Delta: 500}, core.Options{})
					return d
				},
				"base": func() []uint64 { d, _ := baseline.DeltaSteppingSSSP(wg, src, 500); return d },
			} {
				got := run()
				for v := range wantD {
					if got[v] != wantD[v] {
						t.Fatalf("SSSP %s: dist[%d] = %d, want %d", name, v, got[v], wantD[v])
					}
				}
			}

			// k-core on the symmetrized graph.
			wantK, wantDg := seq.KCore(sym)
			gotK, gotDg, _, _ := core.KCore(sym, core.Options{})
			if gotDg != wantDg {
				t.Fatalf("KCore: degeneracy %d, want %d", gotDg, wantDg)
			}
			for v := range wantK {
				if gotK[v] != wantK[v] {
					t.Fatalf("KCore: coreness[%d] = %d, want %d", v, gotK[v], wantK[v])
				}
			}
		})
	}
}

// partitionsMatch checks two labelings induce the same partition (None
// labels must coincide).
func partitionsMatch(a, b []uint32) bool {
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for i := range a {
		if (a[i] == graph.None) != (b[i] == graph.None) {
			return false
		}
		if a[i] == graph.None {
			continue
		}
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// TestRegistryDeterminism: building a workload twice yields identical
// graphs (bit-for-bit CSR equality).
func TestRegistryDeterminism(t *testing.T) {
	for _, s := range Registry() {
		a := s.Build(0.02)
		b := s.Build(0.02)
		if a.N != b.N || len(a.Edges) != len(b.Edges) {
			t.Fatalf("%s: shape differs across builds", s.Name)
		}
		for i := range a.Offsets {
			if a.Offsets[i] != b.Offsets[i] {
				t.Fatalf("%s: offsets differ", s.Name)
			}
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edges differ", s.Name)
			}
		}
	}
}
