package bench

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// WriteSpeedupSVG renders Figure 2-style grouped bars — speedup of each
// parallel implementation over the sequential baseline, log-scale y axis,
// a reference line at 1.0 (bars below it are slower than sequential, the
// paper's headline failure mode) — and writes a standalone SVG file.
func WriteSpeedupSVG(path, title string, impls []string, results []Result) error {
	seqImpl := ""
	var parImpls []string
	for _, impl := range impls {
		if strings.HasSuffix(impl, "*") {
			seqImpl = impl
		} else {
			parImpls = append(parImpls, impl)
		}
	}
	if seqImpl == "" || len(results) == 0 {
		return fmt.Errorf("bench: need a sequential baseline and results")
	}
	ordered := append([]Result(nil), results...)
	SortResults(ordered)

	const (
		barW      = 14
		groupPad  = 18
		marginL   = 70
		marginR   = 20
		marginTop = 50
		marginBot = 90
		plotH     = 280
	)
	groupW := len(parImpls)*barW + groupPad
	width := marginL + len(ordered)*groupW + marginR
	height := marginTop + plotH + marginBot

	// Log-scale y over the observed speedup range, padded to include 1.0.
	minV, maxV := 1.0, 1.0
	for _, r := range ordered {
		base := r.Times[seqImpl]
		for _, impl := range parImpls {
			if t := r.Times[impl]; t > 0 && base > 0 {
				s := base / t
				minV = math.Min(minV, s)
				maxV = math.Max(maxV, s)
			}
		}
	}
	logMin, logMax := math.Log10(minV/1.5), math.Log10(maxV*1.5)
	y := func(speedup float64) float64 {
		frac := (math.Log10(speedup) - logMin) / (logMax - logMin)
		return marginTop + plotH - frac*plotH
	}

	palette := []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd"}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginL, title)
	// Axis ticks at powers of ten.
	for p := math.Floor(logMin); p <= math.Ceil(logMax); p++ {
		v := math.Pow(10, p)
		yy := y(v)
		if yy < marginTop || yy > marginTop+plotH {
			continue
		}
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yy, width-marginR, yy)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%g</text>`+"\n",
			marginL-6, yy+4, v)
	}
	// Reference line at speedup 1.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#000" stroke-dasharray="4 3"/>`+"\n",
		marginL, y(1), width-marginR, y(1))
	// Bars.
	for gi, r := range ordered {
		gx := marginL + gi*groupW
		for ii, impl := range parImpls {
			base, t := r.Times[seqImpl], r.Times[impl]
			if base <= 0 || t <= 0 {
				continue
			}
			s := base / t
			yTop := math.Min(y(s), y(1))
			h := math.Abs(y(s) - y(1))
			fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"><title>%s %s: %.2fx</title></rect>`+"\n",
				gx+ii*barW, yTop, barW-2, h, palette[ii%len(palette)], r.Graph, impl, s)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="end" transform="rotate(-45 %d %d)">%s</text>`+"\n",
			gx+groupW/2, marginTop+plotH+16, gx+groupW/2, marginTop+plotH+16, r.Graph)
	}
	// Legend.
	lx := marginL
	ly := height - 24
	for ii, impl := range parImpls {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n",
			lx, ly, palette[ii%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+16, ly+10, impl)
		lx += 16 + 9*len(impl) + 24
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">speedup over %s (log scale); bars below the dashed line are slower than sequential</text>`+"\n",
		marginL, marginTop-8, seqImpl)
	b.WriteString("</svg>\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
