package bench

import (
	"fmt"
	"math/rand"

	"pasgal/internal/core"
	"pasgal/internal/delta"
	"pasgal/internal/graph"
)

// UpdatesImpls names the incremental-update configurations measured by
// TableUpdates: batched Apply throughput into the delta store, BFS on
// the patched overlay snapshot, and the same queries after compaction
// folds the patch back into a plain CSR.
var UpdatesImpls = []string{"Apply", "Overlay", "Compacted"}

// updatesBatch is the Apply granularity — the size a serving client
// would reasonably buffer before posting to /update.
const updatesBatch = 64

// updateStream builds a deterministic mixed update stream on g: deletes
// of existing edges interleaved with inserts of fresh random pairs, in
// roughly equal measure, so canonicalization sees real work on both the
// tombstone and the add side.
func updateStream(g *graph.Graph, count int, seed int64) []delta.Update {
	rng := rand.New(rand.NewSource(seed))
	ups := make([]delta.Update, 0, count)
	for len(ups) < count {
		u := uint32(rng.Intn(g.N))
		if deg := g.Degree(u); deg > 0 && rng.Intn(2) == 0 {
			v := g.Neighbors(u)[rng.Intn(deg)]
			ups = append(ups, delta.Update{U: u, V: v, Op: delta.Delete})
		} else {
			v := uint32(rng.Intn(g.N))
			ups = append(ups, delta.Update{U: u, V: v, W: uint32(rng.Intn(1 << 8)), Op: delta.Insert})
		}
	}
	return ups
}

// TableUpdates measures the incremental-update path end to end at the
// store level: how fast mixed insert/delete batches flow through
// canonicalization + patch merge (updates/sec), what the patched
// overlay costs a BFS relative to the same graph compacted back to a
// plain CSR, and how large the patch the stream leaves behind is. The
// Overlay/Compacted ratio is the number that justifies compaction
// existing at all — and bounds what auto-compaction is allowed to cost,
// since a compaction that beat the overlay penalty by less than its own
// build time would be pure overhead.
func TableUpdates(c Config) []Result {
	fmt.Fprintf(c.Out, "\n== Incremental updates (delta store: apply throughput + query overhead) ==\n")
	rows := [][]string{{"Graph", "updates", "Apply", "upd/s", "Overlay", "Compacted", "ovl cost", "patch"}}
	var results []Result
	opt := c.options()
	for _, s := range queriesSpecs() {
		g := c.build(s)
		nUpd := sc(1<<13, c.Scale)
		stream := updateStream(g, nUpd, 7001)
		res := newResult(s.Name, s.Category, g)

		// Apply throughput: a fresh store per rep, because re-applying
		// the stream to an already-mutated store canonicalizes every
		// batch to a no-op and measures nothing.
		applyFailed := false
		res.Times["Apply"] = timed(c.Reps, func() {
			st := delta.NewStore(g, delta.Options{CompactFraction: -1})
			for lo := 0; lo < len(stream); lo += updatesBatch {
				if _, err := st.Apply(stream[lo:min(lo+updatesBatch, len(stream))]); err != nil {
					applyFailed = true
					return
				}
			}
			st.Close()
		})
		if applyFailed {
			fmt.Fprintf(c.Out, "updates %s: apply failed\n", s.Name)
			continue
		}

		// Query cost: the whole stream applied once, then BFS from a
		// deterministic source set — first on the patched overlay
		// snapshot, then again after an explicit compaction.
		st := delta.NewStore(g, delta.Options{CompactFraction: -1})
		for lo := 0; lo < len(stream); lo += updatesBatch {
			if _, err := st.Apply(stream[lo:min(lo+updatesBatch, len(stream))]); err != nil {
				fmt.Fprintf(c.Out, "updates %s: apply: %v\n", s.Name, err)
				break
			}
		}
		srcs := QuerySources(g, 8)
		patchArcs := st.Stats().PatchArcs
		queryAll := func(a graph.Adjacency) {
			for _, src := range srcs {
				_, _, _ = core.BFS(a, src, opt)
			}
		}
		sn := st.Snapshot()
		res.Times["Overlay"] = timed(c.Reps, func() { queryAll(sn.Adj()) })
		sn.Release()
		if _, err := st.Compact(); err != nil {
			fmt.Fprintf(c.Out, "updates %s: compact: %v\n", s.Name, err)
			st.Close()
			continue
		}
		sn = st.Snapshot()
		res.Times["Compacted"] = timed(c.Reps, func() { queryAll(sn.Adj()) })
		sn.Release()
		st.Close()

		rows = append(rows, []string{s.Name, fmtCount(len(stream)),
			fmtTime(res.Times["Apply"]),
			fmt.Sprintf("%.0f", float64(len(stream))/res.Times["Apply"]),
			fmtTime(res.Times["Overlay"]), fmtTime(res.Times["Compacted"]),
			fmt.Sprintf("%.2fx", res.Times["Overlay"]/res.Times["Compacted"]),
			fmtCount(patchArcs)})
		results = append(results, res)
	}
	printAligned(c.Out, rows)
	return results
}
