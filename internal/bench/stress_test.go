package bench

import (
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// TestStressDifferential is a randomized soak test: it keeps generating
// graphs with random shapes and options and cross-checks every parallel
// implementation against the sequential references. Off by default; enable
// with PASGAL_STRESS=<iterations>, e.g.
//
//	PASGAL_STRESS=500 go test ./internal/bench -run Stress -v
func TestStressDifferential(t *testing.T) {
	itersStr := os.Getenv("PASGAL_STRESS")
	if itersStr == "" {
		t.Skip("set PASGAL_STRESS=<iters> to run the soak test")
	}
	iters, err := strconv.Atoi(itersStr)
	if err != nil || iters < 1 {
		t.Fatalf("bad PASGAL_STRESS value %q", itersStr)
	}
	rng := rand.New(rand.NewPCG(0xdead, 0xbeef))
	for it := 0; it < iters; it++ {
		seed := rng.Uint64()
		n := 2 + rng.IntN(800)
		var g *graph.Graph
		switch rng.IntN(5) {
		case 0:
			g = gen.ER(n, rng.IntN(5*n+1), true, seed)
		case 1:
			g = gen.SocialRMAT(rmatScale(n), 1+rng.IntN(12), true, seed)
		case 2:
			g = gen.WebLike(max(n, 200), 1+rng.IntN(8), 0.3, 1+rng.IntN(40), seed)
		case 3:
			k := 1 + isqrt(n)
			g = gen.SampledGrid(k, k, 0.5+rng.Float64()/2, true, seed)
		default:
			g = gen.KNN(max(n, 20), 1+rng.IntN(6), 1+rng.IntN(8), true, seed)
		}
		opt := core.Options{Tau: 1 + rng.IntN(1024), TrimRounds: rng.IntN(4) - 1}
		src := uint32(rng.IntN(g.N))

		// BFS family.
		want := seq.BFS(g, src)
		for name, got := range map[string][]uint32{
			"core":  first3(core.BFS(g, src, opt)),
			"gbbs":  first2(baseline.GBBSBFS(g, src)),
			"gapbs": first2(baseline.GAPBSBFS(g, src)),
		} {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("iter %d seed %x: BFS %s dist[%d]=%d want %d",
						it, seed, name, v, got[v], want[v])
				}
			}
		}
		// SCC family (count check; partition checked in non-stress tests).
		_, wantN := seq.TarjanSCC(g)
		if _, gotN, _, _ := core.SCC(g, opt); gotN != wantN {
			t.Fatalf("iter %d seed %x: SCC count %d want %d", it, seed, gotN, wantN)
		}
		// BCC on the symmetrized graph.
		sym := g.Symmetrized()
		wantB := seq.HopcroftTarjanBCC(sym)
		if res, _, _ := core.BCC(sym, opt); res.NumBCC != wantB.NumBCC {
			t.Fatalf("iter %d seed %x: BCC %d want %d", it, seed, res.NumBCC, wantB.NumBCC)
		}
		// SSSP.
		wg := gen.AddUniformWeights(g, 1, 1+uint32(rng.IntN(1<<16)), seed^1)
		wantD := seq.Dijkstra(wg, src)
		gotD, _, _ := core.SSSP(wg, src, core.RhoStepping{Rho: 1 + rng.IntN(4096)}, opt)
		for v := range wantD {
			if gotD[v] != wantD[v] {
				t.Fatalf("iter %d seed %x: SSSP dist[%d]=%d want %d",
					it, seed, v, gotD[v], wantD[v])
			}
		}
		if it%50 == 49 {
			t.Logf("stress: %d/%d iterations clean", it+1, iters)
		}
	}
}

func first2[A, B any](a A, _ B) A { return a }

func first3[A, B, C any](a A, _ B, _ C) A { return a }
