package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"pasgal/internal/graph"
	"pasgal/internal/serve"
)

// ServeImpls names the serving-throughput configurations: the coalesced
// single-source BFS path (group-commit into shared MS-BFS runs) and the
// same traffic with ?coalesce=off (one dedicated traversal per query).
var ServeImpls = []string{"Coalesced", "Direct", "Mixed"}

// ServeClients is the concurrency of the serving experiment — the batch
// pressure the coalescer needs to fill lanes.
const ServeClients = 64

// serveRequests is the fixed request budget per measured cell.
const serveRequests = 512

// TableServe measures end-to-end serving throughput through the full
// daemon stack — HTTP, admission control, result cache off — driven by
// the load generator at ServeClients concurrent clients. The headline
// cell is single-source BFS on the power-law graph with coalescing on
// vs off: group-committing concurrent queries into shared MS-BFS lane
// runs must multiply queries/sec, because each flushed batch charges one
// admission slot and one set of edge scans for up to 64 queries.
func TableServe(c Config) []Result {
	fmt.Fprintf(c.Out, "\n== Serving throughput (pasgal-serve + loadgen, %d clients) ==\n", ServeClients)
	rows := [][]string{{"Graph", "Impl", "Time", "q/s", "p50", "p99", "batches"}}
	var results []Result
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	for _, s := range queriesSpecs() {
		g := c.build(s)
		// A 10ms flush window (vs the 2ms serving default) lets staggered
		// arrivals fill lane groups during engine-idle gaps; the bench
		// measures throughput under saturation, where that latency bound
		// is far below the queueing delay anyway.
		srv, err := serve.New(map[string]*graph.Graph{s.Name: g},
			serve.Config{Opt: c.options(), CoalesceWait: 10 * time.Millisecond})
		if err != nil {
			fmt.Fprintf(c.Out, "serve: %v\n", err)
			continue
		}
		hs := httptest.NewServer(srv.Handler())
		res := newResult(fmt.Sprintf("%s-C%d", s.Name, ServeClients), s.Category, g)
		cells := []struct {
			impl     string
			mix      map[string]int
			coalesce bool
		}{
			// Pure single-source BFS traffic: the coalescing A/B the
			// acceptance gate reads.
			{"Coalesced", map[string]int{"bfs": 1}, true},
			{"Direct", map[string]int{"bfs": 1}, false},
			// The standard mixed workload, for the serving regression gate.
			{"Mixed", nil, true},
		}
		for _, cell := range cells {
			var rep *serve.Report
			secs := timed(c.Reps, func() {
				r, lerr := serve.RunLoad(ctx, serve.LoadConfig{
					BaseURL:  hs.URL,
					Graph:    s.Name,
					Clients:  ServeClients,
					Requests: serveRequests,
					Mix:      cell.mix,
					Coalesce: cell.coalesce,
					Cache:    false, // measure compute, not cache replay
					Summary:  true,  // measure compute, not array encoding
					Seed:     1,
				})
				if lerr == nil {
					rep = r
				} else {
					fmt.Fprintf(c.Out, "serve %s/%s: %v\n", s.Name, cell.impl, lerr)
				}
			})
			if rep == nil || rep.Errors > 0 {
				fmt.Fprintf(c.Out, "serve %s/%s: load run failed\n", s.Name, cell.impl)
				continue
			}
			res.Times[cell.impl] = secs
			rows = append(rows, []string{res.Graph, cell.impl, fmtTime(secs),
				fmt.Sprintf("%.0f", rep.QPS),
				fmt.Sprintf("%.2fms", rep.P50*1e3),
				fmt.Sprintf("%.2fms", rep.P99*1e3),
				fmt.Sprintf("%d", rep.CoalescedBatches)})
		}
		hs.Close()
		srv.Close()
		if tc, td := res.Times["Coalesced"], res.Times["Direct"]; tc > 0 && td > 0 {
			fmt.Fprintf(c.Out, "%s: coalesced BFS serves %.2fx the qps of dedicated traversals\n",
				res.Graph, td/tc)
		}
		results = append(results, res)
	}
	printAligned(c.Out, rows)
	return results
}
