package bench

import (
	"fmt"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// CompressImpls names the measured cells in the compression experiment:
// BFS on the plain CSR, the compressed graph, and the degree-relabeled
// compressed graph, each at 1 and 8 workers. The p1/p8 pair exposes
// whether decode overhead is hidden by memory latency once scans go
// parallel, which is the claim the compressed representation rides on.
var CompressImpls = []string{"CSR-p1", "CSR-p8", "PZ-p1", "PZ-p8", "PZR-p1", "PZR-p8"}

// compressWorkers is the p1/p8 sweep for the scan-overhead columns.
var compressWorkers = [2]int{1, 8}

// csrBytesPerArc is the plain in-memory CSR footprint per arc: 8-byte
// offsets plus 4-byte targets (plus 4-byte weights), the same accounting
// Compressed.BytesPerArc uses (its restart array is charged there too).
func csrBytesPerArc(g *graph.Graph) float64 {
	m := len(g.Edges)
	if m == 0 {
		return 0
	}
	bytes := 8*(g.N+1) + 4*m
	if g.Weighted() {
		bytes += 4 * m
	}
	return float64(bytes) / float64(m)
}

// TableCompress measures the compressed representation against the plain
// CSR on the uniform and power-law query graphs: bytes per edge (with and
// without degree relabeling) and the BFS scan overhead at 1 and 8 workers.
// The check.sh compare gate diffs the six time cells per graph.
func TableCompress(c Config) []Result {
	fmt.Fprintf(c.Out, "\n== Compression: bytes/edge and BFS scan overhead (p1/p8) ==\n")
	rows := [][]string{{"Graph", "CSR B/e", "PZ B/e", "PZR B/e", "ratio",
		"CSR-p1", "PZ-p1", "CSR-p8", "PZ-p8", "PZR-p8", "ovh-p8"}}
	var results []Result
	opt := c.options()
	for _, s := range queriesSpecs() {
		g := c.build(s)
		comp := graph.Compress(g)
		rg, perm := graph.RelabelByDegree(g)
		rcomp := graph.Compress(rg)
		src := PickSource(g)
		rsrc := perm[src]

		res := newResult(s.Name, s.Category, g)
		csrBe, pzBe, pzrBe := csrBytesPerArc(g), comp.BytesPerArc(), rcomp.BytesPerArc()
		res.Extra["CSR B/e"] = fmt.Sprintf("%.2f", csrBe)
		res.Extra["PZ B/e"] = fmt.Sprintf("%.2f", pzBe)
		res.Extra["PZR B/e"] = fmt.Sprintf("%.2f", pzrBe)

		// Warm every representation outside the timed region so lazy
		// transpose construction (the pull direction) doesn't pollute the
		// first timing cell.
		_, _, _ = core.BFS(g, src, opt)
		_, _, _ = core.BFS(comp, src, opt)
		_, _, _ = core.BFS(rcomp, rsrc, opt)

		for _, p := range compressWorkers {
			old := parallel.SetWorkers(p)
			res.Times[fmt.Sprintf("CSR-p%d", p)] = timed(c.Reps, func() { _, _, _ = core.BFS(g, src, opt) })
			res.Times[fmt.Sprintf("PZ-p%d", p)] = timed(c.Reps, func() { _, _, _ = core.BFS(comp, src, opt) })
			res.Times[fmt.Sprintf("PZR-p%d", p)] = timed(c.Reps, func() { _, _, _ = core.BFS(rcomp, rsrc, opt) })
			parallel.SetWorkers(old)
		}

		rows = append(rows, []string{s.Name,
			fmt.Sprintf("%.2f", csrBe), fmt.Sprintf("%.2f", pzBe), fmt.Sprintf("%.2f", pzrBe),
			fmt.Sprintf("%.0f%%", 100*pzrBe/csrBe),
			fmtTime(res.Times["CSR-p1"]), fmtTime(res.Times["PZ-p1"]),
			fmtTime(res.Times["CSR-p8"]), fmtTime(res.Times["PZ-p8"]), fmtTime(res.Times["PZR-p8"]),
			fmt.Sprintf("%.2fx", res.Times["PZ-p8"]/res.Times["CSR-p8"])})
		results = append(results, res)
	}
	printAligned(c.Out, rows)
	return results
}
