// Package bench is the experiment harness: it owns the registry of the 22
// evaluation workloads (scaled synthetic analogues of the paper's graphs;
// see DESIGN.md §3), runs every implementation of every problem over them,
// and prints the paper's tables and figures (Tables 2–4 running times,
// Table 1 graph statistics, Figure 1 scalability, Figure 2 speedups).
package bench

import (
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// Spec describes one evaluation workload: a named, seeded generator plus
// the category and directedness the paper assigns it.
type Spec struct {
	Name     string
	Category string // Social, Web, Road, kNN, Synthetic
	Directed bool
	// Paper is the real dataset this stands in for, for reports.
	Paper string
	// Build generates the graph at a size multiplier (1.0 = harness
	// default, far below the paper's billion-edge originals).
	Build func(scale float64) *graph.Graph
}

// sc scales a base size, keeping a sane floor.
func sc(base int, s float64) int {
	n := int(float64(base) * s)
	if n < 512 {
		n = 512
	}
	return n
}

// rmatScale returns the RMAT scale whose 2^scale is closest to n from
// above.
func rmatScale(n int) int {
	s := 9
	for 1<<s < n {
		s++
	}
	return s
}

// Registry returns the 22 workloads in the paper's order. All are
// deterministic in (name, scale).
func Registry() []Spec {
	return []Spec{
		// --- Social (low diameter, power law) ---
		{"LJ", "Social", true, "soc-LiveJournal1", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(32000, s)), 14, true, 101)
		}},
		{"FB", "Social", false, "socfb-konect", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(64000, s)), 3, false, 102)
		}},
		{"OK", "Social", false, "com-orkut", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(16000, s)), 24, false, 103)
		}},
		{"TW", "Social", true, "Twitter", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(32000, s)), 28, true, 104)
		}},
		{"FS", "Social", false, "Friendster", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(64000, s)), 16, false, 105)
		}},
		// --- Web (bow-tie, moderate diameter from tendrils) ---
		{"WK", "Web", true, "enwiki-2023", func(s float64) *graph.Graph {
			return gen.WebLike(sc(48000, s), 12, 0.15, 30, 201)
		}},
		{"SD", "Web", true, "sd-arc", func(s float64) *graph.Graph {
			return gen.WebLike(sc(90000, s), 14, 0.20, 60, 202)
		}},
		{"CW", "Web", true, "ClueWeb", func(s float64) *graph.Graph {
			return gen.WebLike(sc(100000, s), 10, 0.30, 120, 203)
		}},
		{"HL14", "Web", true, "Hyperlink14", func(s float64) *graph.Graph {
			return gen.WebLike(sc(120000, s), 8, 0.30, 180, 204)
		}},
		{"HL12", "Web", true, "Hyperlink12", func(s float64) *graph.Graph {
			return gen.WebLike(sc(130000, s), 8, 0.35, 400, 205)
		}},
		// --- Road (sparse, huge diameter) ---
		{"AF", "Road", true, "OSM Africa", func(s float64) *graph.Graph {
			k := isqrt(sc(40000, s))
			return gen.SampledGrid(k, k, 0.95, true, 301)
		}},
		{"NA", "Road", true, "OSM North America", func(s float64) *graph.Graph {
			k := isqrt(sc(90000, s))
			return gen.SampledGrid(k, k, 0.94, true, 302)
		}},
		{"AS", "Road", true, "OSM Asia", func(s float64) *graph.Graph {
			k := isqrt(sc(100000, s))
			return gen.SampledGrid(k*2, k/2, 0.95, true, 303)
		}},
		{"EU", "Road", true, "OSM Europe", func(s float64) *graph.Graph {
			k := isqrt(sc(130000, s))
			return gen.SampledGrid(k, k, 0.96, true, 304)
		}},
		// --- kNN (sparse, huge diameter, clustered) ---
		{"CH5", "kNN", true, "Chem k=5", func(s float64) *graph.Graph {
			return gen.KNN(sc(42000, s), 5, 24, true, 401)
		}},
		{"GL5", "kNN", true, "GeoLife k=5", func(s float64) *graph.Graph {
			return gen.KNN(sc(50000, s), 5, 48, true, 402)
		}},
		{"GL10", "kNN", true, "GeoLife k=10", func(s float64) *graph.Graph {
			return gen.KNN(sc(50000, s), 10, 48, true, 403)
		}},
		{"COS5", "kNN", true, "Cosmo50 k=5", func(s float64) *graph.Graph {
			return gen.KNN(sc(80000, s), 5, 96, true, 404)
		}},
		// --- Synthetic ---
		{"REC", "Synthetic", true, "10^3 x 10^5 grid", func(s float64) *graph.Graph {
			n := sc(100000, s)
			rows := isqrt(n / 100)
			return gen.Grid2D(rows, n/rows, true, 501)
		}},
		{"SREC", "Synthetic", true, "sampled REC", func(s float64) *graph.Graph {
			n := sc(100000, s)
			rows := isqrt(n / 100)
			return gen.SampledGrid(rows, n/rows, 0.72, true, 502)
		}},
		{"TRCE", "Synthetic", false, "huge traces", func(s float64) *graph.Graph {
			k := isqrt(sc(40000, s))
			return gen.TriGrid(k, k)
		}},
		{"BBL", "Synthetic", false, "huge bubbles", func(s float64) *graph.Graph {
			k := isqrt(sc(45000, s))
			return gen.PerforatedGrid(k, k, 16, 6, 503)
		}},
	}
}

// LookupSpec finds a workload by name (nil if unknown).
func LookupSpec(name string) *Spec {
	for _, s := range Registry() {
		if s.Name == name {
			s := s
			return &s
		}
	}
	return nil
}

// Categories in the paper's presentation order.
func Categories() []string {
	return []string{"Social", "Web", "Road", "kNN", "Synthetic"}
}

func isqrt(n int) int {
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}
