package bench

import (
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/msbfs"
	"pasgal/internal/seq"
)

// The compressed-representation differential suite: every algorithm with
// a compressed adjacency-scan specialization runs over the full shape
// matrix against its plain-CSR twin (which the per-algorithm suites
// already pin against the sequential oracles). The compressed graph is
// built from the same plain graph, so any disagreement is a decode or
// scan-specialization bug, not a generator artifact.

// compressedShapes pairs every differential shape with its compressed
// form plus a degree-relabeled + compressed variant (the layout
// pasgal-convert -relabel produces), with the permutation needed to map
// results back.
type compressedShape struct {
	diffShape
	c *graph.Compressed

	rg   *graph.Graph      // degree-relabeled plain graph
	rc   *graph.Compressed // its compressed form
	perm []uint32          // old id -> new id under the relabeling
}

func compressedShapes(seed uint64) []compressedShape {
	shapes := diffShapes(seed)
	out := make([]compressedShape, 0, len(shapes))
	for _, sh := range shapes {
		rg, perm := graph.RelabelByDegree(sh.g)
		out = append(out, compressedShape{
			diffShape: sh,
			c:         graph.Compress(sh.g),
			rg:        rg,
			rc:        graph.Compress(rg),
			perm:      perm,
		})
	}
	return out
}

// TestCompressedLossless pins the foundation the rest of the suite rests
// on: compress → decompress is the identity over every shape, and every
// compressed graph passes full validation.
func TestCompressedLossless(t *testing.T) {
	for _, sh := range compressedShapes(0xC0DE) {
		for name, c := range map[string]*graph.Compressed{"plain": sh.c, "relabeled": sh.rc} {
			if err := c.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", sh.name, name, err)
			}
		}
		d := sh.c.Decompress()
		if d.N != sh.g.N || d.M() != sh.g.M() || d.Directed != sh.g.Directed {
			t.Fatalf("%s: decompressed header differs", sh.name)
		}
		for v := 0; v < d.N; v++ {
			for e := d.Offsets[v]; e < d.Offsets[v+1]; e++ {
				if d.Edges[e] != sh.g.Edges[e] {
					t.Fatalf("%s: edge %d differs after round-trip", sh.name, e)
				}
			}
		}
	}
}

// TestCompressedDifferentialBFS cross-checks compressed BFS — in the
// default, push-only, and pull-favoring routings, so both the bulk-decode
// push scan and the cursor pull scan execute — against the sequential
// oracle from multiple sources, on both the direct and the relabeled
// compressed layouts.
func TestCompressedDifferentialBFS(t *testing.T) {
	opts := map[string]core.Options{
		"default":    {},
		"push-only":  {DisableDirectionOpt: true},
		"pull-eager": {DenseFrac: 0.01},
	}
	for _, sh := range compressedShapes(0xC1FF) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, src := range diffSources(sh.g) {
				want := seq.BFS(sh.g, src)
				for oname, opt := range opts {
					got, _, err := core.BFS(sh.c, src, opt)
					if err != nil {
						t.Fatalf("%s src=%d: %v", oname, src, err)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s src=%d: dist[%d] = %d, oracle %d",
								oname, src, v, got[v], want[v])
						}
					}
				}
				// Relabeled layout: distances commute with the permutation.
				rgot, _, err := core.BFS(sh.rc, sh.perm[src], core.Options{})
				if err != nil {
					t.Fatalf("relabeled src=%d: %v", src, err)
				}
				for v := range want {
					if rgot[sh.perm[v]] != want[v] {
						t.Fatalf("relabeled src=%d: dist[perm[%d]] = %d, oracle %d",
							src, v, rgot[sh.perm[v]], want[v])
					}
				}
			}
		})
	}
}

// TestCompressedDifferentialReachable covers the multi-source boolean
// engine on compressed graphs, including a duplicated source.
func TestCompressedDifferentialReachable(t *testing.T) {
	for _, sh := range compressedShapes(0xC2EA) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			srcs := diffSources(sh.g)
			srcs = append(srcs, srcs[0]) // duplicate
			got, _, err := core.Reachable(sh.c, srcs, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := make([]bool, sh.g.N)
			for _, s := range srcs {
				for v, d := range seq.BFS(sh.g, s) {
					want[v] = want[v] || d != graph.InfDist
				}
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("reach[%d] = %v, oracle %v", v, got[v], want[v])
				}
			}
		})
	}
}

// TestCompressedDifferentialSSSP cross-checks weighted compressed graphs
// (the only place the interleaved weight decoding executes under a
// frontier algorithm) against Dijkstra, for both stepping policies and
// point-to-point queries.
func TestCompressedDifferentialSSSP(t *testing.T) {
	for _, sh := range diffShapes(0xC555) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			wg := gen.AddUniformWeights(sh.g, 1, 1000, 0xAB)
			wc := graph.Compress(wg)
			if !wc.HasWeights() {
				t.Fatal("compressed weighted graph lost its weights")
			}
			for _, src := range diffSources(wg) {
				want := seq.Dijkstra(wg, src)
				for pname, policy := range map[string]core.StepPolicy{
					"rho":   core.RhoStepping{},
					"delta": core.DeltaStepping{Delta: 512},
				} {
					got, _, err := core.SSSP(wc, src, policy, core.Options{})
					if err != nil {
						t.Fatalf("%s src=%d: %v", pname, src, err)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s src=%d: dist[%d] = %d, oracle %d",
								pname, src, v, got[v], want[v])
						}
					}
				}
				dst := uint32(wg.N-1) - src%uint32(wg.N)
				d, _, err := core.PointToPoint(wc, src, dst, nil, core.Options{})
				if err != nil {
					t.Fatalf("p2p %d->%d: %v", src, dst, err)
				}
				if d != want[dst] {
					t.Fatalf("p2p %d->%d: dist %d, oracle %d", src, dst, d, want[dst])
				}
			}
		})
	}
}

// TestCompressedDifferentialConnectivity cross-checks Components and
// SpanningForest between representations on every undirected shape: same
// partition, same forest size, forest edges valid.
func TestCompressedDifferentialConnectivity(t *testing.T) {
	for _, sh := range compressedShapes(0xC0CC) {
		if sh.g.Directed {
			continue
		}
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			wantL, wantN := conn.Components(sh.g)
			gotL, gotN := conn.Components(sh.c)
			if gotN != wantN {
				t.Fatalf("components: %d, plain %d", gotN, wantN)
			}
			if !partitionsMatch(gotL, wantL) {
				t.Fatal("component partition differs between representations")
			}
			wantF, _, _ := conn.SpanningForest(sh.g)
			gotF, fl, fn := conn.SpanningForest(sh.c)
			if len(gotF) != len(wantF) || fn != wantN {
				t.Fatalf("forest: %d edges / %d comps, plain %d / %d",
					len(gotF), fn, len(wantF), wantN)
			}
			uf := conn.NewUnionFind(sh.g.N)
			for _, e := range gotF {
				if !uf.Union(e.U, e.V) {
					t.Fatalf("forest edge (%d,%d) closes a cycle", e.U, e.V)
				}
			}
			if !partitionsMatch(fl, wantL) {
				t.Fatal("forest labels differ from component labels")
			}
		})
	}
}

// TestCompressedDifferentialBatchedBFS runs the MS-BFS engine on
// compressed graphs at every lane-boundary batch width in both routings,
// lane-by-lane against the oracle.
func TestCompressedDifferentialBatchedBFS(t *testing.T) {
	opts := map[string]core.Options{
		"default":   {},
		"push-only": {DisableDirectionOpt: true},
	}
	for _, sh := range compressedShapes(0xCBA7) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			oracle := map[uint32][]uint32{}
			for _, b := range batchWidths {
				srcs := batchSources(sh.g, b)
				for oname, opt := range opts {
					rows, _, err := msbfs.Run(sh.c, srcs, opt)
					if err != nil {
						t.Fatalf("B=%d %s: %v", b, oname, err)
					}
					for i, s := range srcs {
						want, ok := oracle[s]
						if !ok {
							want = seq.BFS(sh.g, s)
							oracle[s] = want
						}
						for v := range want {
							if rows[i][v] != want[v] {
								t.Fatalf("B=%d %s lane %d (src %d): dist[%d] = %d, oracle %d",
									b, oname, i, s, v, rows[i][v], want[v])
							}
						}
					}
				}
			}
			// The boolean variant shares the engine; one width suffices.
			srcs := batchSources(sh.g, 65)
			rows, _, err := msbfs.RunReachable(sh.c, srcs, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range srcs {
				want := oracle[s]
				for v := range want {
					if rows[i][v] != (want[v] != graph.InfDist) {
						t.Fatalf("reachable lane %d (src %d): reach[%d] = %v, oracle %v",
							i, s, v, rows[i][v], want[v] != graph.InfDist)
					}
				}
			}
		})
	}
}
