package bench

import (
	"fmt"
	"time"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// The analytic scaling model projects parallel running time from measured
// machine-independent quantities:
//
//	T(P) ≈ (edgesVisited · tEdge) / P  +  rounds · tSync(P)
//
// where tEdge is calibrated from the sequential baseline on the same graph
// (its time divided by its edge inspections, m) and tSync(P) is the
// measured cost of one fork-join barrier at team size P. The first term is
// the work law, the second the synchronization bill — the quantity VGC
// exists to shrink. The model deliberately ignores memory effects and load
// imbalance; it is not a simulator, just the paper's own asymptotic
// argument with measured constants, and the honest way to discuss scaling
// *shape* on a host without many cores.

// MeasureSyncCost times an empty fork-join barrier at team size p.
func MeasureSyncCost(p int) time.Duration {
	old := parallel.SetWorkers(p)
	defer parallel.SetWorkers(old)
	// Warm up, then measure many barriers. Each ForRange below spawns p
	// goroutines over p chunks and joins them.
	dummy := make([]int64, p)
	barrier := func() {
		parallel.ForRange(p, 1, func(lo, hi int) { dummy[lo]++ })
	}
	for i := 0; i < 100; i++ {
		barrier()
	}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		barrier()
	}
	return time.Since(start) / iters
}

// ProjectedSpeedup evaluates the model for a run that visited `edges`
// edges over `rounds` barriers, against a sequential time seqT that
// inspected seqEdges edges.
func ProjectedSpeedup(seqT float64, seqEdges int64, edges, rounds int64,
	tSync float64, p int) float64 {
	tEdge := seqT / float64(seqEdges)
	tp := float64(edges)*tEdge/float64(p) + float64(rounds)*tSync
	return seqT / tp
}

// Fig1Model prints projected SCC speedups at growing core counts for the
// Figure 1 graphs, from measured work/rounds and the calibrated constants.
func Fig1Model(c Config) {
	graphs := []string{"TW", "OK", "NA", "REC"}
	if len(c.Graphs) > 0 {
		graphs = c.Graphs
	}
	ps := []int{1, 4, 16, 96, 192}
	fmt.Fprintf(c.Out, "\n== Figure 1 (analytic projection): SCC speedup over Tarjan at P cores ==\n")
	fmt.Fprintf(c.Out, "model: T(P) = work·tEdge/P + rounds·tSync(P); constants measured on this host\n")
	tSync := make(map[int]float64)
	for _, p := range ps {
		tSync[p] = MeasureSyncCost(p).Seconds()
	}
	fmt.Fprintf(c.Out, "measured barrier cost: tSync(1)=%s tSync(%d)=%s\n",
		fmtTime(tSync[1]), ps[len(ps)-1], fmtTime(tSync[ps[len(ps)-1]]))
	header := []string{"Graph", "impl", "work", "rounds"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("@%d", p))
	}
	rows := [][]string{header}
	for _, name := range graphs {
		s := LookupSpec(name)
		if s == nil || !s.Directed {
			continue
		}
		g := c.build(*s)
		seqT := timed(c.Reps, func() { seq.TarjanSCC(g) })
		seqEdges := int64(len(g.Edges) + g.N)
		type impl struct {
			name string
			run  func() *core.Metrics
		}
		for _, im := range []impl{
			{"PASGAL", func() *core.Metrics { _, _, m, _ := core.SCC(g, core.Options{}); return m }},
			{"GBBS", func() *core.Metrics { _, _, m := baseline.GBBSSCC(g); return m }},
			{"Multistep", func() *core.Metrics { _, _, m := baseline.MultistepSCC(g); return m }},
		} {
			met := im.run()
			row := []string{name, im.name, fmtCount(int(met.EdgesVisited)),
				fmtCount(int(met.Rounds))}
			for _, p := range ps {
				sp := ProjectedSpeedup(seqT, seqEdges, met.EdgesVisited, met.Rounds,
					tSync[p], p)
				row = append(row, fmt.Sprintf("%.1fx", sp))
			}
			rows = append(rows, row)
		}
	}
	printAligned(c.Out, rows)
}
