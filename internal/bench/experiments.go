package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"pasgal/internal/baseline"
	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/ldd"
	"pasgal/internal/msbfs"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
	"pasgal/internal/trace"
)

// Config controls an experiment run.
type Config struct {
	Scale  float64 // workload size multiplier (1.0 = default)
	Reps   int     // timing repetitions (median reported)
	Out    io.Writer
	Graphs []string // subset of workload names; empty = all

	// Tracer, when non-nil, is threaded through every timed algorithm run
	// (PASGAL and baselines) of the table experiments.
	Tracer *trace.Tracer

	// Ctx, when non-nil, is threaded through every timed algorithm run so a
	// deadline or SIGINT aborts the sweep instead of hanging the process.
	// Canceled runs report whatever timing they got; timed() keeps going, so
	// the caller should check Ctx between experiments.
	Ctx context.Context
}

// options returns the core.Options the tables thread into each run.
func (c Config) options() core.Options { return core.Options{Ctx: c.Ctx, Tracer: c.Tracer} }

func (c Config) registry() []Spec {
	specs := Registry()
	if len(c.Graphs) == 0 {
		return specs
	}
	var out []Spec
	for _, name := range c.Graphs {
		if s := LookupSpec(name); s != nil {
			out = append(out, *s)
		}
	}
	return out
}

func (c Config) build(s Spec) *graph.Graph {
	start := time.Now()
	g := s.Build(c.Scale)
	fmt.Fprintf(c.Out, "  built %-5s (%s analog): n=%s m=%s in %s\n",
		s.Name, s.Paper, fmtCount(g.N), fmtCount(len(g.Edges)),
		time.Since(start).Round(time.Millisecond))
	return g
}

// Tab1 prints the graph-statistics table (paper Table 1 / appendix
// Table 5): n, m', m, D', D per workload, with D as sampled lower bounds.
func Tab1(c Config) {
	fmt.Fprintf(c.Out, "\n== Table 1: workload statistics (sampled diameter lower bounds) ==\n")
	rows := [][]string{{"Cat", "Graph", "Analog of", "n", "m'", "m", "D'", "D"}}
	for _, s := range c.registry() {
		g := s.Build(c.Scale)
		st := graph.ComputeStats(g, 3, 12345)
		dirM, dirD := "N/A", "N/A"
		if g.Directed {
			dirM = fmtCount(st.MDirected)
			dirD = fmt.Sprintf("%d", st.DiamLBDir)
		}
		rows = append(rows, []string{
			s.Category, s.Name, s.Paper, fmtCount(st.N), dirM,
			fmtCount(st.MSymmetric), dirD, fmt.Sprintf("%d", st.DiamLB),
		})
	}
	printAligned(c.Out, rows)
}

// TableBFS regenerates the BFS running-time table (paper appendix Table 4)
// and its Figure 2 speedup panel.
func TableBFS(c Config) []Result {
	var results []Result
	for _, s := range c.registry() {
		g := c.build(s)
		results = append(results, RunBFSOpt(s.Name, s.Category, g, c.Reps, c.options()))
	}
	SortResults(results)
	PrintTimeTable(c.Out, "BFS running times", BFSImpls, results)
	PrintSpeedupTable(c.Out, "BFS", BFSImpls, results)
	return results
}

// TableSCC regenerates the SCC running-time table (paper appendix Table 3)
// and its Figure 2 speedup panel. Undirected workloads are skipped, as in
// the paper.
func TableSCC(c Config) []Result {
	var results []Result
	for _, s := range c.registry() {
		if !s.Directed {
			fmt.Fprintf(c.Out, "  %-5s: undirected graph (SCC n/a)\n", s.Name)
			continue
		}
		g := c.build(s)
		results = append(results, RunSCCOpt(s.Name, s.Category, g, c.Reps, c.options()))
	}
	SortResults(results)
	PrintTimeTable(c.Out, "SCC running times", SCCImpls, results)
	PrintSpeedupTable(c.Out, "SCC", SCCImpls, results)
	return results
}

// TableBCC regenerates the BCC running-time table (paper appendix Table 2)
// and its Figure 2 speedup panel. Directed graphs are symmetrized, as in
// the paper.
func TableBCC(c Config) []Result {
	var results []Result
	for _, s := range c.registry() {
		g := c.build(s)
		results = append(results, RunBCCOpt(s.Name, s.Category, g, c.Reps, c.options()))
	}
	SortResults(results)
	PrintTimeTable(c.Out, "BCC running times", BCCImpls, results)
	PrintSpeedupTable(c.Out, "BCC", BCCImpls, results)
	return results
}

// TableSSSP measures the SSSP implementations (the paper shows no SSSP
// table; this documents the §2.2 shape claim).
func TableSSSP(c Config) []Result {
	var results []Result
	for _, s := range c.registry() {
		g := c.build(s)
		results = append(results, RunSSSPOpt(s.Name, s.Category, g, c.Reps, c.options()))
	}
	SortResults(results)
	PrintTimeTable(c.Out, "SSSP running times", SSSPImpls, results)
	PrintSpeedupTable(c.Out, "SSSP", SSSPImpls, results)
	return results
}

// Fig1 reproduces Figure 1: SCC speedup over sequential Tarjan as the
// worker count grows, on two low-diameter graphs (OK, TW analogues) and two
// large-diameter graphs (NA, REC analogues).
func Fig1(c Config) {
	graphs := []string{"TW", "OK", "NA", "REC"}
	if len(c.Graphs) > 0 {
		graphs = c.Graphs
	}
	maxP := runtime.GOMAXPROCS(0)
	var workerCounts []int
	for p := 1; p < maxP; p *= 2 {
		workerCounts = append(workerCounts, p)
	}
	workerCounts = append(workerCounts, maxP)
	fmt.Fprintf(c.Out, "\n== Figure 1: SCC speedup vs #workers (over sequential Tarjan) ==\n")
	if maxP == 1 {
		fmt.Fprintf(c.Out, "(host has 1 CPU: parallel speedups cannot exceed 1; the\n"+
			" machine-independent signal is the Rounds column — see EXPERIMENTS.md)\n")
	}
	rows := [][]string{append([]string{"Graph", "Tarjan*"},
		func() []string {
			var hs []string
			for _, p := range workerCounts {
				hs = append(hs, fmt.Sprintf("PASGAL@%d", p), fmt.Sprintf("GBBS@%d", p),
					fmt.Sprintf("MS@%d", p))
			}
			return hs
		}()...)}
	for _, name := range graphs {
		s := LookupSpec(name)
		if s == nil || !s.Directed {
			continue
		}
		g := c.build(*s)
		seqT := timed(c.Reps, func() { seq.TarjanSCC(g) })
		row := []string{name, fmtTime(seqT)}
		for _, p := range workerCounts {
			old := parallel.SetWorkers(p)
			tp := timed(c.Reps, func() { core.SCC(g, core.Options{}) })
			tg := timed(c.Reps, func() { gbbsSCCForFig(g) })
			tm := timed(c.Reps, func() { multistepForFig(g) })
			parallel.SetWorkers(old)
			row = append(row,
				fmt.Sprintf("%.2fx", seqT/tp),
				fmt.Sprintf("%.2fx", seqT/tg),
				fmt.Sprintf("%.2fx", seqT/tm))
		}
		rows = append(rows, row)
	}
	printAligned(c.Out, rows)
}

// AblationTau sweeps the VGC budget τ on a large-diameter and a
// low-diameter workload: the design-choice study behind §2.1's claim that
// τ trades redundant work for fewer synchronizations.
func AblationTau(c Config) {
	fmt.Fprintf(c.Out, "\n== Ablation: VGC budget τ (BFS) ==\n")
	taus := []int{1, 8, 32, 128, 512, 2048, 8192}
	rows := [][]string{{"Graph", "tau", "time", "rounds", "edges visited", "max frontier"}}
	for _, name := range []string{"REC", "NA", "TW"} {
		s := LookupSpec(name)
		g := c.build(*s)
		src := PickSource(g)
		for _, tau := range taus {
			var met *core.Metrics
			t := timed(c.Reps, func() {
				_, met, _ = core.BFS(g, src, core.Options{Tau: tau, DisableDirectionOpt: true})
			})
			rows = append(rows, []string{name, fmt.Sprintf("%d", tau), fmtTime(t),
				fmtCount(int(met.Rounds)), fmtCount(int(met.EdgesVisited)),
				fmtCount(int(met.MaxFrontier))})
		}
	}
	printAligned(c.Out, rows)
}

// AblationTauSCC sweeps the VGC budget τ for SCC's reachability searches
// on a large-diameter workload.
func AblationTauSCC(c Config) {
	fmt.Fprintf(c.Out, "\n== Ablation: VGC budget τ (SCC reachability) ==\n")
	rows := [][]string{{"Graph", "tau", "time", "rounds", "edges visited"}}
	for _, name := range []string{"REC", "NA"} {
		s := LookupSpec(name)
		g := c.build(*s)
		for _, tau := range []int{1, 32, 512, 4096} {
			var met *core.Metrics
			t := timed(c.Reps, func() {
				_, _, met, _ = core.SCC(g, core.Options{Tau: tau})
			})
			rows = append(rows, []string{name, fmt.Sprintf("%d", tau), fmtTime(t),
				fmtCount(int(met.Rounds)), fmtCount(int(met.EdgesVisited))})
		}
	}
	printAligned(c.Out, rows)
}

// AblationBag compares hash-bag frontiers with flat dense frontiers on a
// large-diameter workload, where per-round O(n) frontier scans dominate.
func AblationBag(c Config) {
	fmt.Fprintf(c.Out, "\n== Ablation: hash bag vs flat dense frontier (BFS) ==\n")
	rows := [][]string{{"Graph", "frontier", "time", "rounds"}}
	for _, name := range []string{"REC", "SREC", "NA"} {
		s := LookupSpec(name)
		g := c.build(*s)
		src := PickSource(g)
		for _, flat := range []bool{false, true} {
			label := "hashbag"
			if flat {
				label = "flat"
			}
			var met *core.Metrics
			t := timed(c.Reps, func() {
				_, met, _ = core.BFS(g, src, core.Options{DisableHashBag: flat})
			})
			rows = append(rows, []string{name, label, fmtTime(t), fmtCount(int(met.Rounds))})
		}
	}
	printAligned(c.Out, rows)
}

// AblationDirOpt compares BFS with and without direction optimization on
// low-diameter social workloads.
func AblationDirOpt(c Config) {
	fmt.Fprintf(c.Out, "\n== Ablation: direction optimization (BFS) ==\n")
	rows := [][]string{{"Graph", "dir-opt", "time", "rounds", "bottom-up", "edges visited"}}
	for _, name := range []string{"TW", "OK", "LJ", "REC"} {
		s := LookupSpec(name)
		g := c.build(*s)
		src := PickSource(g)
		for _, off := range []bool{false, true} {
			label := "on"
			if off {
				label = "off"
			}
			var met *core.Metrics
			t := timed(c.Reps, func() {
				_, met, _ = core.BFS(g, src, core.Options{DisableDirectionOpt: off})
			})
			rows = append(rows, []string{name, label, fmtTime(t), fmtCount(int(met.Rounds)),
				fmtCount(int(met.BottomUp)), fmtCount(int(met.EdgesVisited))})
		}
	}
	printAligned(c.Out, rows)
}

// AblationSSSPPolicy sweeps the stepping policies (ρ-stepping vs
// Δ-stepping vs Bellman–Ford) across diameter classes.
func AblationSSSPPolicy(c Config) {
	fmt.Fprintf(c.Out, "\n== Ablation: SSSP stepping policies ==\n")
	rows := [][]string{{"Graph", "policy", "time", "rounds", "phases", "edges visited"}}
	policies := []core.StepPolicy{
		core.RhoStepping{Rho: 1 << 10}, core.RhoStepping{Rho: 1 << 16},
		core.DeltaStepping{Delta: 1 << 12}, core.DeltaStepping{Delta: 1 << 17},
		core.BellmanFordPolicy{},
	}
	labels := []string{"rho=1K", "rho=64K", "delta=4K", "delta=128K", "bellman-ford"}
	for _, name := range []string{"NA", "TW"} {
		s := LookupSpec(name)
		wg := gen.AddUniformWeights(s.Build(c.Scale), 1, 1<<16, 40400)
		src := PickSource(wg)
		for i, pol := range policies {
			var met *core.Metrics
			t := timed(c.Reps, func() { _, met, _ = core.SSSP(wg, src, pol, core.Options{}) })
			rows = append(rows, []string{name, labels[i], fmtTime(t),
				fmtCount(int(met.Rounds)), fmtCount(int(met.Phases)),
				fmtCount(int(met.EdgesVisited))})
		}
	}
	printAligned(c.Out, rows)
}

// FrontierGrowth prints the frontier-size series of the first rounds of
// BFS with and without VGC on a large-diameter graph — direct evidence for
// §2.1's claim that VGC "quickly accumulates a large frontier size ...
// and thus yields sufficient parallel tasks throughout the algorithm".
func FrontierGrowth(c Config) {
	fmt.Fprintf(c.Out, "\n== Frontier growth: first 12 rounds of BFS (REC analog) ==\n")
	s := LookupSpec("REC")
	g := c.build(*s)
	src := bench0Source(g)
	rows := [][]string{{"config", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8",
		"r9", "r10", "r11", "r12", "total rounds"}}
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"tau=1 (no VGC)", core.Options{Tau: 1, DisableDirectionOpt: true, RecordFrontiers: true}},
		{"tau=512 (VGC)", core.Options{Tau: 512, DisableDirectionOpt: true, RecordFrontiers: true}},
	} {
		_, met, _ := core.BFS(g, src, cfg.opt)
		row := []string{cfg.name}
		for r := 0; r < 12; r++ {
			if r < len(met.FrontierSizes) {
				row = append(row, fmt.Sprintf("%d", met.FrontierSizes[r]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, fmt.Sprintf("%d", met.Rounds))
		rows = append(rows, row)
	}
	printAligned(c.Out, rows)
}

func bench0Source(g *graph.Graph) uint32 { return PickSource(g) }

// QueriesImpls names the batched-query implementations: the MS-BFS lane
// engine, a loop of single-source parallel BFS runs, and a loop of
// sequential queue BFS runs (the sequential baseline, "*" suffixed).
var QueriesImpls = []string{"MSBFS", "LoopBFS", "SeqLoop*"}

// QueryBatches are the batch widths of the queries experiment: a single
// query (the engine's overhead floor), one full lane group, and eight
// groups.
var QueryBatches = []int{1, 64, 512}

// queriesSpecs returns the two query-serving workloads: a uniform-degree
// ER graph and a power-law RMAT graph, each with ~2^20 edges at scale 1.
func queriesSpecs() []Spec {
	return []Spec{
		{"UNI", "Synthetic", true, "uniform ER, 2^20 edges", func(s float64) *graph.Graph {
			m := sc(1<<20, s)
			return gen.ER(m/8, m, true, 601)
		}},
		{"PL", "Social", true, "power-law RMAT, 2^20 edges", func(s float64) *graph.Graph {
			return gen.SocialRMAT(rmatScale(sc(1<<16, s)), 16, true, 602)
		}},
	}
}

// QuerySources picks b batched-BFS sources on g: the max-degree vertex
// first, then a fixed multiplicative stride over the vertex space, so
// lanes start in distinct regions but the set is deterministic.
func QuerySources(g *graph.Graph, b int) []uint32 {
	srcs := make([]uint32, b)
	srcs[0] = PickSource(g)
	for i := 1; i < b; i++ {
		srcs[i] = uint32((uint64(srcs[0]) + uint64(i)*2654435761) % uint64(g.N))
	}
	return srcs
}

// TableQueries measures batched BFS query throughput: B concurrent
// single-source queries served by one MS-BFS run vs a loop of
// single-source runs. This is the experiment behind the MS-BFS engine's
// existence — shared edge scans must beat repeated traversals on every
// graph class once B fills a lane group.
func TableQueries(c Config) []Result {
	fmt.Fprintf(c.Out, "\n== Batched BFS query throughput (MS-BFS vs looped single-source) ==\n")
	rows := [][]string{{"Graph", "B", "MSBFS", "LoopBFS", "SeqLoop*", "MSBFS q/s", "vs loop"}}
	var results []Result
	opt := c.options()
	for _, s := range queriesSpecs() {
		g := c.build(s)
		for _, b := range QueryBatches {
			srcs := QuerySources(g, b)
			res := newResult(fmt.Sprintf("%s-B%d", s.Name, b), s.Category, g)
			res.Times["MSBFS"] = timed(c.Reps, func() { _, _, _ = msbfs.Run(g, srcs, opt) })
			res.Times["LoopBFS"] = timed(c.Reps, func() {
				for _, src := range srcs {
					_, _, _ = core.BFS(g, src, opt)
				}
			})
			res.Times["SeqLoop*"] = timed(c.Reps, func() {
				for _, src := range srcs {
					seq.BFS(g, src)
				}
			})
			rows = append(rows, []string{s.Name, fmt.Sprintf("%d", b),
				fmtTime(res.Times["MSBFS"]), fmtTime(res.Times["LoopBFS"]),
				fmtTime(res.Times["SeqLoop*"]),
				fmt.Sprintf("%.0f", float64(b)/res.Times["MSBFS"]),
				fmt.Sprintf("%.2fx", res.Times["LoopBFS"]/res.Times["MSBFS"])})
			results = append(results, res)
		}
	}
	printAligned(c.Out, rows)
	return results
}

// Connectivity contrasts the BFS-free union–find connectivity FAST-BCC is
// built on with the LDD-contraction connectivity a GBBS-style system uses,
// and with sequential DFS labeling — the substrate-level version of the
// paper's synchronization argument.
func Connectivity(c Config) {
	fmt.Fprintf(c.Out, "\n== Connectivity: union-find (PASGAL substrate) vs LDD contraction (GBBS substrate) ==\n")
	rows := [][]string{{"Graph", "UnionFind", "LDD", "SeqDFS*", "LDD rounds"}}
	for _, s := range c.registry() {
		g := c.build(s).Symmetrized()
		var lddRounds int
		tUF := timed(c.Reps, func() { conn.Components(g) })
		tLDD := timed(c.Reps, func() { _, _, lddRounds = ldd.Components(g, 0.2, 42) })
		tSeq := timed(c.Reps, func() { seqComponents(g) })
		rows = append(rows, []string{s.Name, fmtTime(tUF), fmtTime(tLDD), fmtTime(tSeq),
			fmt.Sprintf("%d", lddRounds)})
	}
	printAligned(c.Out, rows)
}

// seqComponents is the sequential DFS baseline for the connectivity
// comparison.
func seqComponents(g *graph.Graph) int {
	vis := make([]bool, g.N)
	count := 0
	stack := make([]uint32, 0, 1024)
	for s := 0; s < g.N; s++ {
		if vis[s] {
			continue
		}
		count++
		vis[s] = true
		stack = append(stack[:0], uint32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if !vis[v] {
					vis[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// gbbsSCCForFig and multistepForFig keep Fig1's timing closures tidy.
func gbbsSCCForFig(g *graph.Graph)   { _, _, _ = baseline.GBBSSCC(g) }
func multistepForFig(g *graph.Graph) { _, _, _ = baseline.MultistepSCC(g) }
