package bench

import (
	"fmt"
	"io"
	"sort"
)

// Delta is one (experiment, graph, implementation) comparison between two
// result files. Ratio is new/old median time; RoundsOld/RoundsNew carry the
// machine-independent synchronization counts when both sides recorded them
// (-1 otherwise).
type Delta struct {
	Experiment string
	Graph      string
	Impl       string
	Old, New   float64 // median seconds
	Ratio      float64
	RoundsOld  int64
	RoundsNew  int64
}

// Regressed reports whether the delta exceeds the given slowdown threshold
// (0.25 = "new is more than 25% slower than old").
func (d Delta) Regressed(threshold float64) bool {
	return d.Ratio > 1+threshold
}

// Compare matches two result sets by (experiment, graph, implementation)
// and returns the per-cell deltas, sorted by descending ratio (worst
// regression first). Cells present on only one side are skipped — a changed
// registry must not masquerade as a perf change.
func Compare(oldRecs, newRecs []Record) []Delta {
	type key struct{ exp, graph, impl string }
	oldIdx := map[key]Result{}
	oldExp := map[key]string{}
	for _, rec := range oldRecs {
		for _, res := range rec.Results {
			for impl := range res.Times {
				k := key{rec.Experiment, res.Graph, impl}
				oldIdx[k] = res
				oldExp[k] = rec.Experiment
			}
		}
	}
	var deltas []Delta
	for _, rec := range newRecs {
		for _, res := range rec.Results {
			for impl, newT := range res.Times {
				k := key{rec.Experiment, res.Graph, impl}
				oldRes, ok := oldIdx[k]
				if !ok {
					continue
				}
				oldT := oldRes.Times[impl]
				d := Delta{
					Experiment: rec.Experiment, Graph: res.Graph, Impl: impl,
					Old: oldT, New: newT, RoundsOld: -1, RoundsNew: -1,
				}
				if oldT > 0 {
					d.Ratio = newT / oldT
				}
				if m := oldRes.Metrics[impl]; m != nil {
					d.RoundsOld = m.Rounds
				}
				if m := res.Metrics[impl]; m != nil {
					d.RoundsNew = m.Rounds
				}
				deltas = append(deltas, d)
			}
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Ratio != deltas[j].Ratio {
			return deltas[i].Ratio > deltas[j].Ratio
		}
		a, b := deltas[i], deltas[j]
		return a.Experiment+a.Graph+a.Impl < b.Experiment+b.Graph+b.Impl
	})
	return deltas
}

// PrintDeltas renders the comparison table and returns the number of
// regressions past the threshold. Every compared cell is printed;
// regressions are marked, so the report is useful even when it gates
// nothing.
func PrintDeltas(w io.Writer, deltas []Delta, threshold float64) int {
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no comparable (experiment, graph, impl) cells")
		return 0
	}
	rows := [][]string{{"Experiment", "Graph", "Impl", "old", "new", "ratio", "rounds", ""}}
	regressions := 0
	for _, d := range deltas {
		mark := ""
		if d.Regressed(threshold) {
			mark = "REGRESSION"
			regressions++
		}
		rounds := "-"
		if d.RoundsOld >= 0 && d.RoundsNew >= 0 {
			rounds = fmt.Sprintf("%d->%d", d.RoundsOld, d.RoundsNew)
		}
		rows = append(rows, []string{
			d.Experiment, d.Graph, d.Impl,
			fmtTime(d.Old), fmtTime(d.New), fmt.Sprintf("%.2fx", d.Ratio),
			rounds, mark,
		})
	}
	printAligned(w, rows)
	fmt.Fprintf(w, "%d cells compared, %d regression(s) past %.0f%%\n",
		len(deltas), regressions, threshold*100)
	return regressions
}

// CompareFiles reads two result files, prints their delta table to w, and
// returns the regression count — the pasgal-bench -compare entry point.
func CompareFiles(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldRecs, err := ReadJSON(oldPath)
	if err != nil {
		return 0, err
	}
	newRecs, err := ReadJSON(newPath)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "comparing %s (old) vs %s (new), threshold %.0f%%\n",
		oldPath, newPath, threshold*100)
	return PrintDeltas(w, Compare(oldRecs, newRecs), threshold), nil
}
