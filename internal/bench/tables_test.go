package bench

import (
	"strings"
	"testing"
)

func TestByteSize(t *testing.T) {
	cases := map[int64]string{
		512:           "512B",
		2048:          "2.00KiB",
		3 << 20:       "3.00MiB",
		5 << 30:       "5.00GiB",
		1<<30 + 1<<29: "1.50GiB",
	}
	for in, want := range cases {
		if got := byteSize(in); got != want {
			t.Fatalf("byteSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtTime(t *testing.T) {
	cases := map[float64]string{
		0:       "-",
		5e-7:    "1µs",
		0.0005:  "500µs",
		0.005:   "5.00ms",
		0.25:    "250.00ms",
		3.14159: "3.142s",
	}
	for in, want := range cases {
		got := fmtTime(in)
		if in == 5e-7 {
			// Rounding of sub-µs values: just require the unit.
			if !strings.HasSuffix(got, "µs") {
				t.Fatalf("fmtTime(%v) = %q", in, got)
			}
			continue
		}
		if got != want {
			t.Fatalf("fmtTime(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[int]string{
		7:             "7",
		9999:          "9999",
		10000:         "10.0K",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00B",
	}
	for in, want := range cases {
		if got := fmtCount(in); got != want {
			t.Fatalf("fmtCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
}

func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	var buf strings.Builder
	cfg := Config{Scale: 0.02, Reps: 1, Out: &buf}
	AblationTau(cfg)
	AblationTauSCC(cfg)
	AblationDirOpt(cfg)
	AblationSSSPPolicy(cfg)
	FrontierGrowth(cfg)
	Connectivity(Config{Scale: 0.02, Reps: 1, Out: &buf, Graphs: []string{"NA", "TRCE"}})
	Memory(Config{Scale: 0.02, Reps: 1, Out: &buf, Graphs: []string{"NA"}})
	out := buf.String()
	for _, want := range []string{"VGC budget", "direction optimization", "stepping policies",
		"tau", "bottom-up", "bellman-ford", "union-find", "LDD rounds",
		"SCC reachability", "Frontier growth", "allocation volume", "TV/PASGAL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

// TestPaperShapeClaims is the regression test for the paper's headline:
// on large-diameter workloads, PASGAL's algorithms need far fewer global
// synchronizations than the level-synchronous baselines.
func TestPaperShapeClaims(t *testing.T) {
	for _, name := range []string{"REC", "NA"} {
		s := LookupSpec(name)
		g := s.Build(0.1)
		r := RunBFS(name, s.Category, g, 1)
		pasgalRounds := r.Metrics["PASGAL"].Rounds
		gbbsRounds := r.Metrics["GBBS"].Rounds
		if pasgalRounds*5 >= gbbsRounds {
			t.Fatalf("%s BFS: PASGAL %d rounds, GBBS %d — VGC advantage lost",
				name, pasgalRounds, gbbsRounds)
		}
		rb := RunBCC(name, s.Category, g, 1)
		if rb.Metrics["PASGAL"].Rounds != 0 {
			t.Fatalf("%s BCC: FAST-BCC should use no frontier rounds, got %d",
				name, rb.Metrics["PASGAL"].Rounds)
		}
		if rb.Metrics["GBBS"].Rounds < 50 {
			t.Fatalf("%s BCC: BFS-based baseline rounds suspiciously low (%d)",
				name, rb.Metrics["GBBS"].Rounds)
		}
	}
}

// TestTableServeSmoke runs the serving-throughput experiment at a tiny
// scale: all three cells must produce timings, the coalesced cell must
// actually batch, and the rows must land in the compare-gate record.
func TestTableServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an httptest daemon per workload")
	}
	var buf strings.Builder
	results := TableServe(Config{Scale: 0.02, Reps: 1, Out: &buf})
	if len(results) != 2 {
		t.Fatalf("TableServe returned %d results, want 2 (UNI + PL)", len(results))
	}
	for _, res := range results {
		for _, impl := range ServeImpls {
			if res.Times[impl] <= 0 {
				t.Fatalf("%s: no timing for %s cell:\n%s", res.Graph, impl, buf.String())
			}
		}
	}
	out := buf.String()
	if !strings.Contains(out, "coalesced BFS serves") {
		t.Fatalf("missing coalescing ratio line:\n%s", out)
	}
	if !strings.Contains(out, "Serving throughput") {
		t.Fatalf("missing table header:\n%s", out)
	}
}

// TestTableCompressSmoke runs the compression experiment at a tiny
// scale: every time cell must fill (the compare gate diffs them), and
// the size columns must report a real reduction over plain CSR.
func TestTableCompressSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compresses + relabels both query graphs")
	}
	var buf strings.Builder
	results := TableCompress(Config{Scale: 0.02, Reps: 1, Out: &buf})
	if len(results) != 2 {
		t.Fatalf("TableCompress returned %d results, want 2 (UNI + PL)", len(results))
	}
	for _, res := range results {
		for _, impl := range CompressImpls {
			if res.Times[impl] <= 0 {
				t.Fatalf("%s: no timing for %s cell:\n%s", res.Graph, impl, buf.String())
			}
		}
		for _, key := range []string{"CSR B/e", "PZ B/e", "PZR B/e"} {
			if res.Extra[key] == "" {
				t.Fatalf("%s: missing size column %s", res.Graph, key)
			}
		}
		if res.Extra["PZ B/e"] >= res.Extra["CSR B/e"] {
			// Numeric width is equal here (both %.2f with one integer
			// digit at this scale), so the string compare is a real one.
			t.Fatalf("%s: compression did not shrink: PZ %s vs CSR %s",
				res.Graph, res.Extra["PZ B/e"], res.Extra["CSR B/e"])
		}
	}
	if !strings.Contains(buf.String(), "bytes/edge and BFS scan overhead") {
		t.Fatalf("missing table header:\n%s", buf.String())
	}
}

// TestTableUpdatesSmoke runs the incremental-update experiment at a
// tiny scale: every time cell must fill (the compare gate diffs them),
// and the update stream must leave a real patch behind before the
// compacted re-measure.
func TestTableUpdatesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("applies an update stream per workload")
	}
	var buf strings.Builder
	results := TableUpdates(Config{Scale: 0.02, Reps: 1, Out: &buf})
	if len(results) != 2 {
		t.Fatalf("TableUpdates returned %d results, want 2 (UNI + PL)", len(results))
	}
	for _, res := range results {
		for _, impl := range UpdatesImpls {
			if res.Times[impl] <= 0 {
				t.Fatalf("%s: no timing for %s cell:\n%s", res.Graph, impl, buf.String())
			}
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Incremental updates") {
		t.Fatalf("missing table header:\n%s", out)
	}
}
