package bench

import (
	"encoding/json"
	"os"
)

// Record is the JSON-serializable form of a set of experiment results.
type Record struct {
	Experiment string   `json:"experiment"`
	Scale      float64  `json:"scale"`
	Reps       int      `json:"reps"`
	Workers    int      `json:"workers"`
	Results    []Result `json:"results"`
}

// WriteJSON appends records to path as a JSON array (the file is
// rewritten whole; callers accumulate records across experiments).
func WriteJSON(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
