package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Record is the JSON-serializable form of a set of experiment results.
type Record struct {
	Experiment string   `json:"experiment"`
	Scale      float64  `json:"scale"`
	Reps       int      `json:"reps"`
	Workers    int      `json:"workers"`
	Results    []Result `json:"results"`
}

// ReadJSON reads a result file written by WriteJSON.
func ReadJSON(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return records, nil
}

// WriteJSON appends records to path as a JSON array (the file is
// rewritten whole; callers accumulate records across experiments).
func WriteJSON(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
