package bench

import (
	"fmt"
	"testing"

	"pasgal/internal/baseline"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/msbfs"
	"pasgal/internal/seq"
)

// diffShape is one entry of the differential-testing table: a graph plus
// the degeneracies it carries. Shapes with self-loops or parallel edges
// violate the sorted/deduplicated adjacency invariant the biconnectivity
// algorithms rely on, so BCC is skipped there (the other problems must
// still agree — extra arcs only add redundant relaxations).
type diffShape struct {
	name    string
	g       *graph.Graph
	skipBCC bool
}

// loopyEdges builds an edge list laced with self-loops and duplicates on
// top of a chain backbone, so the degenerate shapes stay connected enough
// to be interesting.
func loopyEdges(n int, seed uint64, selfLoops, dups bool) []graph.Edge {
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	s := seed
	next := func(mod int) uint32 {
		s = s*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15
		return uint32((s >> 33) % uint64(mod))
	}
	for i := 0; i < n; i++ {
		u, v := next(n), next(n)
		edges = append(edges, graph.Edge{U: u, V: v})
		if selfLoops && i%3 == 0 {
			edges = append(edges, graph.Edge{U: u, V: u})
		}
		if dups && i%2 == 0 {
			edges = append(edges, graph.Edge{U: u, V: v}, graph.Edge{U: u, V: v})
		}
	}
	return edges
}

// diffShapes is the ~20-shape randomized matrix: every structural regime
// the library claims to handle, including the degenerate ones that
// historically break frontier algorithms (empty, single-vertex,
// disconnected, self-loops, parallel edges).
func diffShapes(seed uint64) []diffShape {
	loopOpt := graph.BuildOptions{KeepSelfLoops: true}
	dupOpt := graph.BuildOptions{KeepDuplicates: true}
	bothOpt := graph.BuildOptions{KeepSelfLoops: true, KeepDuplicates: true}
	return []diffShape{
		{name: "single-vertex", g: graph.FromEdges(1, nil, false, graph.BuildOptions{})},
		{name: "two-isolated", g: graph.FromEdges(2, nil, true, graph.BuildOptions{})},
		{name: "isolated-50", g: graph.FromEdges(50, nil, false, graph.BuildOptions{})},
		{name: "chain", g: gen.Chain(300, false)},
		{name: "chain-dir", g: gen.Chain(300, true)},
		{name: "cycle-dir", g: gen.Cycle(256, true)},
		{name: "star", g: gen.Star(200)},
		{name: "binary-tree", g: gen.CompleteBinaryTree(511)},
		{name: "grid", g: gen.Grid2D(18, 23, false, seed)},
		{name: "sampled-grid-dir", g: gen.SampledGrid(20, 20, 0.85, true, seed+1)},
		{name: "trigrid", g: gen.TriGrid(15, 15)},
		{name: "perforated", g: gen.PerforatedGrid(20, 20, 6, 2, seed+2)},
		{name: "er-disconnected", g: gen.ER(400, 200, true, seed+3)},
		{name: "er-dense", g: gen.ER(300, 2400, true, seed+4)},
		{name: "rmat", g: gen.SocialRMAT(8, 8, true, seed+5)},
		{name: "weblike", g: gen.WebLike(500, 5, 0.3, 20, seed+6)},
		{name: "rgg", g: gen.RGG(400, 6, seed+7)},
		{name: "knn", g: gen.KNN(400, 3, 4, false, seed+8)},
		{name: "watts-strogatz", g: gen.WattsStrogatz(300, 6, 0.1, seed+9)},
		{name: "barabasi-albert", g: gen.BarabasiAlbert(300, 3, seed+10)},
		{name: "hypercube", g: gen.Hypercube(8)},
		{name: "random-tree", g: gen.Tree(500, seed+11)},
		{name: "self-loops-dir",
			g:       graph.FromEdges(120, loopyEdges(120, seed+12, true, false), true, loopOpt),
			skipBCC: true},
		{name: "multi-edges-dir",
			g:       graph.FromEdges(120, loopyEdges(120, seed+13, false, true), true, dupOpt),
			skipBCC: true},
		{name: "loops-and-dups",
			g:       graph.FromEdges(150, loopyEdges(150, seed+14, true, true), false, bothOpt),
			skipBCC: true},
	}
}

// diffSources picks the source vertices a shape is tested from: the
// max-degree vertex, vertex 0, and the last vertex (which is isolated or
// peripheral in several shapes).
func diffSources(g *graph.Graph) []uint32 {
	srcs := []uint32{PickSource(g)}
	for _, s := range []uint32{0, uint32(g.N - 1)} {
		if s != srcs[0] {
			srcs = append(srcs, s)
		}
	}
	return srcs
}

// TestDifferentialBFS cross-checks every BFS implementation against the
// sequential queue oracle, element for element, from multiple sources.
func TestDifferentialBFS(t *testing.T) {
	for _, sh := range diffShapes(0xD1FF) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, src := range diffSources(sh.g) {
				want := seq.BFS(sh.g, src)
				impls := map[string]func() []uint32{
					"core": func() []uint32 { d, _, _ := core.BFS(sh.g, src, core.Options{}); return d },
					"core-novgc": func() []uint32 {
						d, _, _ := core.BFS(sh.g, src, core.Options{Tau: 1})
						return d
					},
					"core-flat": func() []uint32 {
						d, _, _ := core.BFS(sh.g, src, core.Options{DisableHashBag: true})
						return d
					},
					"gbbs":  func() []uint32 { d, _ := baseline.GBBSBFS(sh.g, src); return d },
					"gapbs": func() []uint32 { d, _ := baseline.GAPBSBFS(sh.g, src); return d },
				}
				for name, run := range impls {
					got := run()
					if len(got) != len(want) {
						t.Fatalf("%s src=%d: length %d, want %d", name, src, len(got), len(want))
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s src=%d: dist[%d] = %d, oracle %d",
								name, src, v, got[v], want[v])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialSCC cross-checks the three parallel SCC implementations
// against both sequential oracles (Tarjan and Kosaraju) on every directed
// shape: same component count, equivalent partition.
func TestDifferentialSCC(t *testing.T) {
	for _, sh := range diffShapes(0x5CC) {
		if !sh.g.Directed {
			continue
		}
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			wantC, wantN := seq.TarjanSCC(sh.g)
			if kosC, kosN := seq.KosarajuSCC(sh.g); kosN != wantN || !partitionsMatch(kosC, wantC) {
				t.Fatalf("sequential oracles disagree: tarjan %d vs kosaraju %d", wantN, kosN)
			}
			impls := map[string]func() ([]uint32, int){
				"core": func() ([]uint32, int) { c, n, _, _ := core.SCC(sh.g, core.Options{}); return c, n },
				"core-notrim": func() ([]uint32, int) {
					c, n, _, _ := core.SCC(sh.g, core.Options{TrimRounds: -1})
					return c, n
				},
				"gbbs":      func() ([]uint32, int) { c, n, _ := baseline.GBBSSCC(sh.g); return c, n },
				"multistep": func() ([]uint32, int) { c, n, _ := baseline.MultistepSCC(sh.g); return c, n },
			}
			for name, run := range impls {
				gotC, gotN := run()
				if gotN != wantN {
					t.Fatalf("%s: %d components, oracle %d", name, gotN, wantN)
				}
				if !partitionsMatch(gotC, wantC) {
					t.Fatalf("%s: partition differs from oracle", name)
				}
			}
		})
	}
}

// TestDifferentialBCC cross-checks the parallel BCC implementations against
// Hopcroft–Tarjan on every clean shape (symmetrized where directed).
func TestDifferentialBCC(t *testing.T) {
	for _, sh := range diffShapes(0xBCC) {
		if sh.skipBCC {
			continue
		}
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			sym := sh.g.Symmetrized()
			want := seq.HopcroftTarjanBCC(sym)
			impls := map[string]func() core.BCCResult{
				"core": func() core.BCCResult { r, _, _ := core.BCC(sym, core.Options{}); return r },
				"gbbs": func() core.BCCResult { r, _ := baseline.GBBSBCC(sym); return r },
				"tv":   func() core.BCCResult { r, _, _ := baseline.TarjanVishkinBCC(sym); return r },
			}
			for name, run := range impls {
				got := run()
				if got.NumBCC != want.NumBCC {
					t.Fatalf("%s: %d BCCs, oracle %d", name, got.NumBCC, want.NumBCC)
				}
				if !partitionsMatch(got.ArcLabel, want.ArcLabel) {
					t.Fatalf("%s: arc partition differs from oracle", name)
				}
				for v := range got.IsArt {
					if got.IsArt[v] != want.IsArtPort[v] {
						t.Fatalf("%s: articulation[%d] = %v, oracle %v",
							name, v, got.IsArt[v], want.IsArtPort[v])
					}
				}
			}
		})
	}
}

// TestDifferentialSSSP cross-checks every SSSP implementation and stepping
// policy against Dijkstra (and Bellman–Ford as a second oracle) on weighted
// versions of every shape, from multiple sources.
func TestDifferentialSSSP(t *testing.T) {
	for _, sh := range diffShapes(0x555) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			wg := gen.AddUniformWeights(sh.g, 1, 1000, 0xAB)
			for _, src := range diffSources(wg) {
				want := seq.Dijkstra(wg, src)
				if bf := seq.BellmanFord(wg, src); !equalDists(bf, want) {
					t.Fatal("sequential oracles disagree (Dijkstra vs Bellman-Ford)")
				}
				impls := map[string]func() []uint64{
					"rho": func() []uint64 {
						d, _, _ := core.SSSP(wg, src, core.RhoStepping{}, core.Options{})
						return d
					},
					"delta": func() []uint64 {
						d, _, _ := core.SSSP(wg, src, core.DeltaStepping{Delta: 512}, core.Options{})
						return d
					},
					"bf-policy": func() []uint64 {
						d, _, _ := core.SSSP(wg, src, core.BellmanFordPolicy{}, core.Options{})
						return d
					},
					"deltastep": func() []uint64 {
						d, _ := baseline.DeltaSteppingSSSP(wg, src, 512)
						return d
					},
					"gbbs-bf": func() []uint64 {
						d, _ := baseline.GBBSBellmanFordSSSP(wg, src)
						return d
					},
				}
				for name, run := range impls {
					got := run()
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("%s src=%d: dist[%d] = %d, oracle %d",
								name, src, v, got[v], want[v])
						}
					}
				}
			}
		})
	}
}

// batchWidths are the lane-boundary batch sizes the MS-BFS engine must
// get right: one lane, a partial group, exactly one group, one lane past
// it, and two lanes past two groups.
var batchWidths = []int{1, 3, 64, 65, 130}

// batchSources picks b sources on g with a deliberate duplicate (the
// engine must give duplicated sources identical independent rows).
func batchSources(g *graph.Graph, b int) []uint32 {
	srcs := make([]uint32, b)
	for i := range srcs {
		srcs[i] = uint32((i * 41) % g.N)
	}
	if b >= 3 {
		srcs[b-1] = srcs[0]
		srcs[b/2] = srcs[0]
	}
	return srcs
}

// TestDifferentialBatchedBFS cross-checks the batched MS-BFS engine
// lane-by-lane against the sequential queue oracle over the full shape
// matrix, at every lane-boundary batch width, in both push-only and
// pull-favoring routings.
func TestDifferentialBatchedBFS(t *testing.T) {
	opts := map[string]core.Options{
		"default":    {},
		"push-only":  {DisableDirectionOpt: true},
		"pull-eager": {DenseFrac: 0.01},
	}
	for _, sh := range diffShapes(0xBA7C) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			oracle := map[uint32][]uint32{}
			for _, b := range batchWidths {
				srcs := batchSources(sh.g, b)
				for oname, opt := range opts {
					rows, _, err := msbfs.Run(sh.g, srcs, opt)
					if err != nil {
						t.Fatalf("B=%d %s: %v", b, oname, err)
					}
					for i, s := range srcs {
						want, ok := oracle[s]
						if !ok {
							want = seq.BFS(sh.g, s)
							oracle[s] = want
						}
						for v := range want {
							if rows[i][v] != want[v] {
								t.Fatalf("B=%d %s lane %d (src %d): dist[%d] = %d, oracle %d",
									b, oname, i, s, v, rows[i][v], want[v])
							}
						}
					}
				}
			}
		})
	}
}

// TestDifferentialBatchedReachable does the same sweep for the boolean
// reachability variant, which shares the engine but not the sink.
func TestDifferentialBatchedReachable(t *testing.T) {
	for _, sh := range diffShapes(0x2EAC) {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			for _, b := range batchWidths {
				srcs := batchSources(sh.g, b)
				rows, _, err := msbfs.RunReachable(sh.g, srcs, core.Options{})
				if err != nil {
					t.Fatalf("B=%d: %v", b, err)
				}
				for i, s := range srcs {
					want := seq.BFS(sh.g, s)
					for v := range want {
						if rows[i][v] != (want[v] != graph.InfDist) {
							t.Fatalf("B=%d lane %d (src %d): reach[%d] = %v, oracle %v",
								b, i, s, v, rows[i][v], want[v] != graph.InfDist)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialBatchedRejectsBadSources pins the validation contract on
// every shape: one out-of-range source anywhere in the batch fails the
// whole call with a descriptive error and no rows.
func TestDifferentialBatchedRejectsBadSources(t *testing.T) {
	for _, sh := range diffShapes(0xBAD) {
		bad := uint32(sh.g.N) // first out-of-range id
		for _, b := range batchWidths {
			srcs := batchSources(sh.g, b)
			srcs[b-1] = bad
			if rows, _, err := msbfs.Run(sh.g, srcs, core.Options{}); err == nil || rows != nil {
				t.Fatalf("%s B=%d: out-of-range source accepted (rows=%v err=%v)",
					sh.name, b, rows != nil, err)
			}
		}
	}
}

func equalDists(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialShapeInventory pins the size of the shape matrix so a
// careless edit cannot silently shrink the suite's coverage.
func TestDifferentialShapeInventory(t *testing.T) {
	shapes := diffShapes(1)
	if len(shapes) < 20 {
		t.Fatalf("differential matrix has %d shapes, want >= 20", len(shapes))
	}
	seen := map[string]bool{}
	directed, degenerate := 0, 0
	for _, sh := range shapes {
		if seen[sh.name] {
			t.Fatalf("duplicate shape name %q", sh.name)
		}
		seen[sh.name] = true
		if sh.g.Directed {
			directed++
		}
		if sh.skipBCC {
			degenerate++
		}
		if sh.g.N == 0 {
			t.Fatalf("shape %q has no vertices", sh.name)
		}
	}
	if directed < 5 {
		t.Fatalf("only %d directed shapes; SCC coverage too thin", directed)
	}
	if degenerate < 3 {
		t.Fatalf("only %d self-loop/multi-edge shapes", degenerate)
	}
	// Reseeding must actually change the randomized shapes.
	a := diffShapes(1)
	b := diffShapes(2)
	changed := false
	for i := range a {
		if a[i].name == "er-dense" && len(a[i].g.Edges) > 0 {
			ga, gb := a[i].g, b[i].g
			if fmt.Sprint(ga.Edges[:10]) != fmt.Sprint(gb.Edges[:10]) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("seed does not vary the randomized shapes")
	}
}
