package euler

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/graph"
)

// checkForest verifies all structural invariants of a rooted forest built
// from the given tree edges:
//   - Pre is a permutation of [0,n)
//   - roots have Parent == None and Comp == own id
//   - every tree edge connects a child to its Parent
//   - Pre[parent] < Pre[child] and the child interval nests strictly inside
//     the parent interval
//   - Size sums match component sizes; sibling intervals are disjoint
func checkForest(t *testing.T, n int, tree []graph.Edge, f *Forest) {
	t.Helper()
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		p := f.Pre[v]
		if p >= uint32(n) || seen[p] {
			t.Fatalf("Pre not a permutation: Pre[%d]=%d", v, p)
		}
		seen[p] = true
	}
	// Parent relation covers exactly the tree edges.
	edgeSet := map[[2]uint32]bool{}
	for _, e := range tree {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		edgeSet[[2]uint32{a, b}] = true
	}
	nonRoots := 0
	for v := uint32(0); v < uint32(n); v++ {
		par := f.Parent[v]
		if par == graph.None {
			if f.Comp[v] != v {
				t.Fatalf("root %d has comp %d", v, f.Comp[v])
			}
			continue
		}
		nonRoots++
		a, b := v, par
		if a > b {
			a, b = b, a
		}
		if !edgeSet[[2]uint32{a, b}] {
			t.Fatalf("parent edge (%d,%d) not a tree edge", v, par)
		}
		if f.Pre[par] >= f.Pre[v] {
			t.Fatalf("Pre[parent %d]=%d >= Pre[child %d]=%d", par, f.Pre[par], v, f.Pre[v])
		}
		if f.Pre[v] < f.Pre[par] || f.Last(v) > f.Last(par) {
			t.Fatalf("child interval [%d,%d] escapes parent [%d,%d]",
				f.Pre[v], f.Last(v), f.Pre[par], f.Last(par))
		}
		if !f.IsAncestor(par, v) || f.IsAncestor(v, par) {
			t.Fatal("IsAncestor inconsistent with parent relation")
		}
	}
	if nonRoots != len(tree) {
		t.Fatalf("%d non-roots, %d tree edges", nonRoots, len(tree))
	}
	// Subtree sizes: Size[v] = 1 + sum of children sizes.
	childSum := make([]uint32, n)
	for v := uint32(0); v < uint32(n); v++ {
		if p := f.Parent[v]; p != graph.None {
			childSum[p] += f.Size[v]
		}
	}
	for v := uint32(0); v < uint32(n); v++ {
		if f.Size[v] != childSum[v]+1 {
			t.Fatalf("Size[%d]=%d, children sum %d", v, f.Size[v], childSum[v])
		}
	}
	// Ancestor queries vs parent-walking on a sample.
	for v := uint32(0); v < uint32(n); v++ {
		anc := map[uint32]bool{v: true}
		for u := v; f.Parent[u] != graph.None; {
			u = f.Parent[u]
			anc[u] = true
		}
		for u := uint32(0); u < uint32(n); u++ {
			if f.IsAncestor(u, v) != anc[u] {
				t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, f.IsAncestor(u, v), anc[u])
			}
		}
	}
}

func TestPathTree(t *testing.T) {
	n := 50
	tree := make([]graph.Edge, n-1)
	for i := range tree {
		tree[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	f := Build(n, tree)
	checkForest(t, n, tree, f)
	// Rooted at 0, the path's preorder is the identity.
	for v := 0; v < n; v++ {
		if f.Pre[v] != uint32(v) {
			t.Fatalf("Pre[%d]=%d", v, f.Pre[v])
		}
		if f.Size[v] != uint32(n-v) {
			t.Fatalf("Size[%d]=%d", v, f.Size[v])
		}
	}
	if f.Parent[0] != graph.None || f.Parent[7] != 6 {
		t.Fatal("path parents wrong")
	}
}

func TestStarTree(t *testing.T) {
	n := 20
	tree := make([]graph.Edge, n-1)
	for i := range tree {
		tree[i] = graph.Edge{U: 0, V: uint32(i + 1)}
	}
	f := Build(n, tree)
	checkForest(t, n, tree, f)
	if f.Size[0] != uint32(n) || f.Pre[0] != 0 {
		t.Fatal("star root wrong")
	}
	for v := 1; v < n; v++ {
		if f.Parent[v] != 0 || f.Size[v] != 1 {
			t.Fatalf("star leaf %d wrong", v)
		}
	}
}

func TestForestWithIsolatedVertices(t *testing.T) {
	// Vertices 0-2 form a path, 3 is isolated, 4-5 an edge.
	tree := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}}
	f := Build(6, tree)
	checkForest(t, 6, tree, f)
	if len(f.Roots) != 3 {
		t.Fatalf("roots = %v", f.Roots)
	}
	if f.Parent[3] != graph.None || f.Size[3] != 1 {
		t.Fatal("isolated vertex wrong")
	}
	// Component preorder blocks are contiguous: sizes 3,1,2.
	if f.Pre[0] != 0 || f.Pre[3] != 3 || f.Pre[4] != 4 {
		t.Fatalf("component bases wrong: %v %v %v", f.Pre[0], f.Pre[3], f.Pre[4])
	}
}

func TestEmptyAndSingle(t *testing.T) {
	f := Build(0, nil)
	if f.N != 0 {
		t.Fatal("empty forest")
	}
	f = Build(1, nil)
	checkForest(t, 1, nil, f)
	if f.Size[0] != 1 || f.Pre[0] != 0 {
		t.Fatal("single vertex wrong")
	}
}

// randomTree returns a uniform-ish random labeled tree on n vertices with
// shuffled vertex labels (so the min-id root sits anywhere structurally).
func randomTree(rng *rand.Rand, n int) []graph.Edge {
	perm := rng.Perm(n)
	tree := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		j := rng.IntN(i)
		tree = append(tree, graph.Edge{U: uint32(perm[j]), V: uint32(perm[i])})
	}
	return tree
}

func TestRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(200)
		tree := randomTree(rng, n)
		f := Build(n, tree)
		checkForest(t, n, tree, f)
	}
}

func TestRandomForests(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		// Several trees side by side with interleaved labels.
		n := 0
		sizes := []int{}
		for k := 0; k < 2+rng.IntN(4); k++ {
			s := 1 + rng.IntN(60)
			sizes = append(sizes, s)
			n += s
		}
		perm := rng.Perm(n)
		var tree []graph.Edge
		base := 0
		for _, s := range sizes {
			for i := 1; i < s; i++ {
				j := rng.IntN(i)
				tree = append(tree, graph.Edge{
					U: uint32(perm[base+j]), V: uint32(perm[base+i])})
			}
			base += s
		}
		f := Build(n, tree)
		checkForest(t, n, tree, f)
		if len(f.Roots) != len(sizes) {
			t.Fatalf("trial %d: %d roots, want %d", trial, len(f.Roots), len(sizes))
		}
	}
}

func TestDeepTree(t *testing.T) {
	// 100k-vertex path: pointer jumping must handle long lists.
	n := 100000
	tree := make([]graph.Edge, n-1)
	for i := range tree {
		tree[i] = graph.Edge{U: uint32(i), V: uint32(i + 1)}
	}
	f := Build(n, tree)
	if f.Pre[n-1] != uint32(n-1) || f.Size[0] != uint32(n) {
		t.Fatal("deep path wrong")
	}
}

func TestFirstLastAccessors(t *testing.T) {
	tree := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	f := Build(3, tree)
	for v := uint32(0); v < 3; v++ {
		if f.First(v) != f.Pre[v] {
			t.Fatalf("First(%d) = %d, Pre = %d", v, f.First(v), f.Pre[v])
		}
		if f.Last(v) != f.Pre[v]+f.Size[v]-1 {
			t.Fatalf("Last(%d) inconsistent", v)
		}
	}
	if f.First(0) != 0 || f.Last(0) != 2 {
		t.Fatal("root interval wrong")
	}
}
