package euler

import (
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/gen"
)

func benchForest(b *testing.B, rows, cols int) {
	g := gen.Grid2D(rows, cols, false, 1)
	tree, _, _ := conn.SpanningForest(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(g.N, tree)
	}
}

func BenchmarkBuildGridTree(b *testing.B) { benchForest(b, 300, 300) }
func BenchmarkBuildWideTree(b *testing.B) { benchForest(b, 10, 9000) }
func BenchmarkBuildPathTree(b *testing.B) { benchForest(b, 1, 90000) }
