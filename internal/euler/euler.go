// Package euler roots a spanning forest without BFS or DFS: it builds the
// Euler circuit of each tree from arc-adjacency, breaks it at a canonical
// root, and list-ranks the circuit by parallel pointer jumping. From arc
// ranks it derives, for every vertex, its parent, preorder number, and
// subtree size — the ingredients FAST-BCC and Tarjan–Vishkin consume.
//
// Pointer jumping is O(m log m) work (the classic textbook variant rather
// than the work-optimal sampling one); for this library's scales the log
// factor is irrelevant and the implementation stays allocation-lean and
// obviously correct.
package euler

import (
	"sync/atomic"

	"pasgal/internal/conn"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// Forest is a rooted spanning forest with Euler-tour-derived preorder
// numbering. Preorder numbers are globally unique in [0, N): each
// component's vertices occupy a contiguous block.
type Forest struct {
	N      int
	Parent []uint32 // parent vertex, graph.None for roots
	Pre    []uint32 // preorder number
	Size   []uint32 // subtree size
	Comp   []uint32 // component label (minimum vertex id in component)
	Roots  []uint32 // one root per component (the minimum id), ascending
}

// First returns the start of v's preorder interval.
func (f *Forest) First(v uint32) uint32 { return f.Pre[v] }

// Last returns the end (inclusive) of v's preorder interval.
func (f *Forest) Last(v uint32) uint32 { return f.Pre[v] + f.Size[v] - 1 }

// IsAncestor reports whether a is an ancestor of v (inclusive).
func (f *Forest) IsAncestor(a, v uint32) bool {
	return f.Pre[a] <= f.Pre[v] && f.Pre[v] <= f.Last(a)
}

const nilArc = ^uint32(0)

// Build roots the forest given by treeEdges over n vertices. treeEdges must
// be acyclic (a forest); vertices not covered by any edge become singleton
// components.
func Build(n int, treeEdges []graph.Edge) *Forest {
	f := &Forest{
		N:      n,
		Parent: make([]uint32, n),
		Pre:    make([]uint32, n),
		Size:   make([]uint32, n),
		Comp:   make([]uint32, n),
	}
	if n == 0 {
		return f
	}
	nt := len(treeEdges)
	nArcs := 2 * nt

	// Component labels (minimum id per tree) via union-find over the
	// forest edges only.
	uf := conn.NewUnionFind(n)
	parallel.For(nt, 0, func(i int) { uf.Union(treeEdges[i].U, treeEdges[i].V) })
	parallel.For(n, 0, func(v int) { f.Comp[v] = uf.Find(uint32(v)) })

	// Arc 2i is U->V of edge i; arc 2i+1 is its twin V->U.
	arcSrc := func(a uint32) uint32 {
		if a&1 == 0 {
			return treeEdges[a/2].U
		}
		return treeEdges[a/2].V
	}

	// Group arcs by source vertex (CSR over the forest).
	deg := make([]int64, n)
	parallel.For(nArcs, 0, func(a int) {
		atomic.AddInt64(&deg[arcSrc(uint32(a))], 1)
	})
	off := make([]int64, n+1)
	var run int64
	for v := 0; v < n; v++ {
		off[v] = run
		run += deg[v]
	}
	off[n] = run
	bySrc := make([]uint32, nArcs) // arc ids grouped by source
	slot := make([]uint32, nArcs)  // position of each arc in bySrc
	cursor := make([]int64, n)
	parallel.Copy(cursor, off[:n])
	parallel.For(nArcs, 0, func(ai int) {
		a := uint32(ai)
		s := arcSrc(a)
		at := atomic.AddInt64(&cursor[s], 1) - 1
		bySrc[at] = a
		slot[a] = uint32(at)
	})

	// Euler circuit successor: succ(a) = the arc after twin(a) among the
	// arcs leaving head(a) (= src(twin(a))), cyclically.
	succ := make([]uint32, nArcs)
	parallel.For(nArcs, 0, func(ai int) {
		a := uint32(ai)
		t := a ^ 1
		s := arcSrc(t)
		lo, hi := off[s], off[s+1]
		k := int64(slot[t]) + 1
		if k == hi {
			k = lo
		}
		succ[a] = bySrc[k]
	})

	// Choose the canonical root of each tree (its minimum id = component
	// label) and break the circuit at the root's first outgoing arc.
	rootArc := make([]uint32, n) // indexed by component label; nilArc if none
	parallel.Fill(rootArc, nilArc)
	parallel.For(n, 0, func(v int) {
		if f.Comp[v] == uint32(v) && off[v] < off[v+1] {
			rootArc[v] = bySrc[off[v]]
		}
	})
	// Cut: the arc whose successor is the root arc becomes a tail.
	parallel.For(nArcs, 0, func(ai int) {
		a := uint32(ai)
		s := arcSrc(succ[a])
		if f.Comp[s] == s && succ[a] == rootArc[s] {
			succ[a] = nilArc
		}
	})

	// List ranking by pointer jumping: dist(a) = #arcs strictly after a.
	dist := make([]uint32, nArcs)
	parallel.For(nArcs, 0, func(a int) {
		if succ[a] != nilArc {
			dist[a] = 1
		}
	})
	nsucc := make([]uint32, nArcs)
	ndist := make([]uint32, nArcs)
	for span := 1; span < nArcs; span *= 2 {
		parallel.For(nArcs, 0, func(ai int) {
			a := uint32(ai)
			s := succ[a]
			if s == nilArc {
				nsucc[a] = nilArc
				ndist[a] = dist[a]
				return
			}
			ndist[a] = dist[a] + dist[s]
			nsucc[a] = succ[s]
		})
		succ, nsucc = nsucc, succ
		dist, ndist = ndist, dist
	}

	// Tour positions: pos(a) = dist(rootArc of its component) - dist(a).
	// Equivalently tourLen - 1 - dist(a), with tourLen = 2 * (treeSize-1).
	pos := make([]uint32, nArcs)
	parallel.For(nArcs, 0, func(ai int) {
		a := uint32(ai)
		r := rootArc[f.Comp[arcSrc(a)]]
		pos[a] = dist[r] - dist[a]
	})

	// Component ordering: dense index per component in ascending label
	// order, with vertex- and tour-base offsets.
	compRoots := parallel.PackIndex(n, func(v int) bool { return f.Comp[v] == uint32(v) })
	f.Roots = compRoots
	nc := len(compRoots)
	compIdx := make([]uint32, n) // component label -> dense index
	parallel.For(nc, 0, func(i int) { compIdx[compRoots[i]] = uint32(i) })
	compSize := make([]int64, nc) // vertices per component
	tourLen := make([]int64, nc)  // arcs per component tour
	parallel.For(nc, 0, func(i int) {
		r := compRoots[i]
		if rootArc[r] == nilArc {
			compSize[i] = 1
			tourLen[i] = 0
		} else {
			tl := int64(dist[rootArc[r]]) + 1
			tourLen[i] = tl
			compSize[i] = tl/2 + 1
		}
	})
	vertexBase := make([]int64, nc)
	parallel.Copy(vertexBase, compSize)
	parallel.Scan(vertexBase)
	tourBase := make([]int64, nc)
	parallel.Copy(tourBase, tourLen)
	parallel.Scan(tourBase)

	// Parent / subtree size from arc positions: for edge (u,v), the
	// direction with the smaller tour position is the "down" arc.
	down := make([]uint32, nArcs) // per global tour slot: 1 if a down arc
	gpos := func(a uint32) int64 {
		return tourBase[compIdx[f.Comp[arcSrc(a)]]] + int64(pos[a])
	}
	parallel.For(nt, 0, func(i int) {
		a := uint32(2 * i) // U->V
		t := a ^ 1         // V->U
		e := treeEdges[i]
		var downArc uint32
		var child uint32
		if pos[a] < pos[t] {
			downArc, child = a, e.V
		} else {
			downArc, child = t, e.U
		}
		f.Parent[child] = arcParentOf(e, child)
		f.Size[child] = (maxU32(pos[a], pos[t]) - minU32(pos[a], pos[t]) + 1) / 2
		down[gpos(downArc)] = 1
	})

	// Preorder: inclusive scan of down-arc indicators along the global
	// tour; pre(child) = vertexBase + #down arcs at or before its down
	// arc; pre(root) = vertexBase.
	downRank := make([]uint32, nArcs)
	parallel.Copy(downRank, down)
	parallel.ScanInclusive(downRank)
	parallel.For(n, 0, func(vi int) {
		v := uint32(vi)
		ci := compIdx[f.Comp[v]]
		if f.Comp[v] == v {
			// Root (or isolated vertex).
			f.Parent[v] = graph.None
			f.Pre[v] = uint32(vertexBase[ci])
			f.Size[v] = uint32(compSize[ci])
		}
	})
	parallel.For(nt, 0, func(i int) {
		e := treeEdges[i]
		a := uint32(2 * i)
		t := a ^ 1
		downArc, child := a, e.V
		if pos[t] < pos[a] {
			downArc, child = t, e.U
		}
		ci := compIdx[f.Comp[child]]
		base := tourBase[ci]
		var before uint32
		if base == 0 {
			before = downRank[gpos(downArc)]
		} else {
			before = downRank[gpos(downArc)] - downRank[base-1]
		}
		f.Pre[child] = uint32(vertexBase[ci]) + before
	})
	return f
}

func arcParentOf(e graph.Edge, child uint32) uint32 {
	if child == e.V {
		return e.U
	}
	return e.V
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
