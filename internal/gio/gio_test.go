package gio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

func graphsEqual(a, b *graph.Graph) bool {
	if a.N != b.N || len(a.Edges) != len(b.Edges) || a.Directed != b.Directed ||
		a.Weighted() != b.Weighted() {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
		if a.Weighted() && a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return true
}

func TestAdjRoundTrip(t *testing.T) {
	g := gen.SocialRMAT(8, 6, true, 1)
	var buf bytes.Buffer
	if err := WriteAdj(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdj(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("adj round trip mismatch")
	}
}

func TestAdjWeightedRoundTrip(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(15, 15, false, 1), 1, 50, 2)
	var buf bytes.Buffer
	if err := WriteAdj(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "WeightedAdjacencyGraph\n") {
		t.Fatal("missing weighted header")
	}
	got, err := ReadAdj(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("weighted adj round trip mismatch")
	}
}

func TestAdjRejectsGarbage(t *testing.T) {
	if _, err := ReadAdj(strings.NewReader("NotAGraph\n1\n0\n0\n"), false); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := ReadAdj(strings.NewReader("AdjacencyGraph\n2\n1\n0\n0\n9\n"), false); err == nil {
		t.Fatal("expected out-of-range edge error")
	}
	if _, err := ReadAdj(strings.NewReader("AdjacencyGraph\n2\n"), false); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.SocialRMAT(8, 6, true, 3),
		gen.AddUniformWeights(gen.Grid2D(10, 20, false, 4), 1, 9, 5),
		graph.FromEdges(0, nil, true, graph.BuildOptions{}),
	} {
		var buf bytes.Buffer
		if err := WriteBin(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBin(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("bin round trip mismatch for %v", g)
		}
	}
}

func TestBinRejectsBadMagic(t *testing.T) {
	if _, err := ReadBin(bytes.NewReader([]byte("WRONGMAGICxxxxxxxxxxxxxxxxxxxxxx"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(8, 8, false, 1)
	adjPath := filepath.Join(dir, "g.adj")
	binPath := filepath.Join(dir, "g.bin")
	if err := WriteAdjFile(adjPath, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	ga, err := ReadAdjFile(adjPath, false)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := ReadBinFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, ga) || !graphsEqual(g, gb) {
		t.Fatal("file round trip mismatch")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(6, 6, false, 1), 1, 10, 2)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, g.N, false)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := "# comment\n% another\n0 1\n\n1 2\n3 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), -1, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if _, err := ReadEdgeList(strings.NewReader("0\n"), -1, true); err == nil {
		t.Fatal("expected field-count error")
	}
}
