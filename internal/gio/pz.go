package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"pasgal/internal/graph"
)

// Compressed CSR format (.pz): a fixed 64-byte header followed by the two
// arrays of a graph.Compressed, laid out so the whole file can be mapped
// read-only and handed to the traversal kernels without a decode pass
// (see MapPZFile). Everything is little endian.
//
//	magic    [8]byte  "PASGALZ1" (the trailing digit is the format version)
//	flags    uint64   bit0 = directed, bit1 = weighted
//	n        uint64
//	m        uint64
//	dataLen  uint64   byte length of the arc data section
//	checksum uint64   CRC-64/ECMA over the offsets and data sections
//	reserved [16]byte zero
//	voff     (n+1) x uint64   list start offsets into data; voff[n] = dataLen
//	data     dataLen bytes    gzb-encoded adjacency lists
//
// The header is 64 bytes and voff is a multiple of 8 bytes, so both
// sections of a mapped file are 8-aligned and the voff section can be
// viewed in place as a []uint64 on little-endian hosts.
var pzMagic = [8]byte{'P', 'A', 'S', 'G', 'A', 'L', 'Z', '1'}

// pzHeaderSize is the fixed byte length of the .pz header.
const pzHeaderSize = 64

var pzCRCTable = crc64.MakeTable(crc64.ECMA)

// pzChecksum hashes the payload sections (voff then data) the way they
// appear on disk.
func pzChecksum(voff []uint64, data []byte) uint64 {
	h := crc64.New(pzCRCTable)
	buf := make([]byte, 8*ioChunk)
	for len(voff) > 0 {
		k := min(len(voff), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], voff[i])
		}
		h.Write(buf[:8*k])
		voff = voff[k:]
	}
	h.Write(data)
	return h.Sum64()
}

// WritePZ writes c in the .pz compressed CSR format.
func WritePZ(w io.Writer, c *graph.Compressed) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	voff, data := c.VOff(), c.Data()
	hdr := make([]byte, pzHeaderSize)
	copy(hdr, pzMagic[:])
	var flags uint64
	if c.IsDirected() {
		flags |= flagDirected
	}
	if c.HasWeights() {
		flags |= flagWeighted
	}
	binary.LittleEndian.PutUint64(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(c.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(c.NumArcs()))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(data)))
	binary.LittleEndian.PutUint64(hdr[40:], pzChecksum(voff, data))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := writeUint64s(bw, voff); err != nil {
		return err
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return bw.Flush()
}

// pzHeader is the decoded fixed header of a .pz stream.
type pzHeader struct {
	directed, weighted bool
	n, m, dataLen      uint64
	checksum           uint64
}

// parsePZHeader validates a raw 64-byte header. Errors name the byte
// offset of the offending field.
func parsePZHeader(hdr []byte) (pzHeader, error) {
	var h pzHeader
	if [8]byte(hdr[:8]) != pzMagic {
		return h, fmt.Errorf("gio: pz byte 0: bad magic %q", hdr[:8])
	}
	flags := binary.LittleEndian.Uint64(hdr[8:])
	if flags&^uint64(flagDirected|flagWeighted) != 0 {
		return h, fmt.Errorf("gio: pz byte 8: unknown flag bits %#x", flags)
	}
	h.directed = flags&flagDirected != 0
	h.weighted = flags&flagWeighted != 0
	h.n = binary.LittleEndian.Uint64(hdr[16:])
	h.m = binary.LittleEndian.Uint64(hdr[24:])
	h.dataLen = binary.LittleEndian.Uint64(hdr[32:])
	h.checksum = binary.LittleEndian.Uint64(hdr[40:])
	if h.n >= 1<<40 || h.m >= 1<<42 || h.dataLen >= 1<<46 {
		return h, fmt.Errorf("gio: pz byte 16: implausible header (n=%d, m=%d, dataLen=%d)",
			h.n, h.m, h.dataLen)
	}
	if h.dataLen < h.m {
		// Every arc costs at least one encoded byte, so a data section
		// shorter than the arc count cannot be complete.
		return h, fmt.Errorf("gio: pz byte 32: data length %d below arc count %d", h.dataLen, h.m)
	}
	for _, b := range hdr[48:pzHeaderSize] {
		if b != 0 {
			return h, fmt.Errorf("gio: pz byte 48: nonzero reserved bytes")
		}
	}
	return h, nil
}

// ReadPZ reads the .pz compressed CSR format, verifying the checksum and
// fully validating every adjacency list. Errors are annotated with the
// stream byte offset at which reading or verification failed.
func ReadPZ(r io.Reader) (*graph.Compressed, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, pzHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("gio: pz byte 0: reading header: %w", err)
	}
	h, err := parsePZHeader(hdr)
	if err != nil {
		return nil, err
	}
	// Arrays are read incrementally (growing with the data actually
	// present) so a corrupt header cannot force a huge allocation before
	// the stream runs dry; see ReadBin.
	voff, err := readUint64sIncr(br, h.n+1)
	if err != nil {
		return nil, fmt.Errorf("gio: pz byte %d: reading offsets: %w", pzHeaderSize, err)
	}
	dataStart := pzHeaderSize + 8*(h.n+1)
	data, err := readBytesIncr(br, h.dataLen)
	if err != nil {
		return nil, fmt.Errorf("gio: pz byte %d: reading arc data: %w", dataStart, err)
	}
	if sum := pzChecksum(voff, data); sum != h.checksum {
		return nil, fmt.Errorf("gio: pz byte 40: checksum mismatch (header %#x, payload %#x)",
			h.checksum, sum)
	}
	c, err := graph.NewCompressed(int(h.n), int(h.m), h.directed, h.weighted, voff, data)
	if err != nil {
		return nil, fmt.Errorf("gio: pz byte %d: %w", pzHeaderSize, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("gio: pz byte %d: %w", dataStart, err)
	}
	return c, nil
}

// WritePZFile writes c to path in .pz format, atomically: the bytes
// land in a temp file that is fsynced and renamed over path, so an
// interrupted write cannot destroy an existing graph file. This matters
// more for .pz than most formats — the file may be the mmap-serving
// source of a running daemon.
func WritePZFile(path string, c *graph.Compressed) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return WritePZ(w, c) })
}

// ReadPZFile reads a .pz file into memory (checksum verified, lists
// validated). For page-cache-backed loading without the read pass, use
// MapPZFile.
func ReadPZFile(path string) (*graph.Compressed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPZ(f)
}

// readBytesIncr reads exactly count raw bytes, growing the result as data
// arrives so truncated input fails before large allocations.
func readBytesIncr(r io.Reader, count uint64) ([]byte, error) {
	const chunk = 1 << 20
	out := make([]byte, 0, min(count, chunk))
	buf := make([]byte, chunk)
	for remaining := count; remaining > 0; {
		k := min(remaining, chunk)
		if _, err := io.ReadFull(r, buf[:k]); err != nil {
			return nil, err
		}
		out = append(out, buf[:k]...)
		remaining -= k
	}
	return out, nil
}
