package gio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via a temp file in the destination
// directory, fsyncs it, and renames it over path. An interrupted or
// failed write (crash, full disk, encoder error) can therefore never
// leave a truncated or half-written file at path: the destination
// either keeps its previous bytes or receives the complete new ones.
// The temp file is removed on every failure path.
//
// The rename is atomic only within one filesystem, which the
// same-directory temp file guarantees. The directory entry itself is
// fsynced best-effort afterwards: on filesystems that need it, this
// makes the rename durable, and where O_DIRECTORY fsync is unsupported
// the write is still atomic, just not crash-durable.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("gio: sync %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best-effort durability of the rename itself
		d.Close()
	}
	return nil
}
