//go:build unix

package gio

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"

	"pasgal/internal/graph"
)

// MapPZFile maps a .pz file read-only and wraps the mapping in a
// graph.Compressed without copying: the offsets section is viewed in
// place as a []uint64 and the arc data section is served straight from
// the page cache, so load time is O(header + offsets page-in) no matter
// how large the graph is. Only structural checks run — the checksum and
// per-list validation are skipped (use ReadPZFile for untrusted input).
//
// The returned close function unmaps the file; the graph (and anything
// decoded from it, lazily built transposes included) must not be used
// after close. close is idempotent.
//
// On big-endian hosts the in-place uint64 view is impossible and
// MapPZFile falls back to ReadPZFile (close is then a no-op).
func MapPZFile(path string) (*graph.Compressed, func() error, error) {
	if !hostLittleEndian() {
		c, err := ReadPZFile(path)
		if err != nil {
			return nil, nil, err
		}
		return c, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < pzHeaderSize {
		return nil, nil, fmt.Errorf("gio: pz byte 0: file is %d bytes, below the %d-byte header",
			size, pzHeaderSize)
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("gio: mmap %s: %w", path, err)
	}
	c, err := mapPZBytes(raw, size)
	if err != nil {
		syscall.Munmap(raw)
		return nil, nil, err
	}
	closed := false
	closer := func() error {
		if closed {
			return nil
		}
		closed = true
		return syscall.Munmap(raw)
	}
	return c, closer, nil
}

// mapPZBytes builds the zero-copy Compressed view over a mapped .pz
// image, running the same header and structural checks as ReadPZ.
func mapPZBytes(raw []byte, size int64) (*graph.Compressed, error) {
	h, err := parsePZHeader(raw[:pzHeaderSize])
	if err != nil {
		return nil, err
	}
	want := int64(pzHeaderSize) + 8*int64(h.n+1) + int64(h.dataLen)
	if size != want {
		return nil, fmt.Errorf("gio: pz byte %d: file is %d bytes, header implies %d",
			pzHeaderSize, size, want)
	}
	// The header is 64 bytes and mappings are page-aligned, so the voff
	// section is 8-aligned and safe to view in place.
	voff := unsafe.Slice((*uint64)(unsafe.Pointer(&raw[pzHeaderSize])), h.n+1)
	data := raw[pzHeaderSize+8*(h.n+1) : uint64(size)]
	c, err := graph.NewCompressed(int(h.n), int(h.m), h.directed, h.weighted, voff, data)
	if err != nil {
		return nil, fmt.Errorf("gio: pz byte %d: %w", pzHeaderSize, err)
	}
	return c, nil
}

// hostLittleEndian reports whether uint64 loads read mapped
// little-endian sections correctly in place.
func hostLittleEndian() bool {
	var probe [8]byte
	*(*uint64)(unsafe.Pointer(&probe[0])) = 1
	return binary.LittleEndian.Uint64(probe[:]) == 1
}
