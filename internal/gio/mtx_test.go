package gio

import (
	"bytes"
	"strings"
	"testing"

	"pasgal/internal/gen"
)

func TestMTXRoundTripDirected(t *testing.T) {
	g := gen.SocialRMAT(8, 4, true, 1)
	var buf bytes.Buffer
	if err := WriteMTX(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "%%MatrixMarket matrix coordinate pattern general") {
		t.Fatalf("header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	got, err := ReadMTX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("mtx directed round trip mismatch")
	}
}

func TestMTXRoundTripSymmetricWeighted(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(8, 8, false, 1), 1, 9, 2)
	var buf bytes.Buffer
	if err := WriteMTX(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "integer symmetric") {
		t.Fatal("expected integer symmetric header")
	}
	got, err := ReadMTX(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("mtx symmetric round trip mismatch")
	}
}

func TestMTXParsing(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
1 2
3 1
`
	g, err := ReadMTX(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.UndirectedM() != 2 || g.Directed {
		t.Fatalf("parsed %v", g)
	}
}

func TestMTXErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "%%MatrixMarket matrix array real general\n2 2 0\n",
		"not square": "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n",
		"bad range":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n",
		"bad count":  "%%MatrixMarket matrix coordinate pattern general\n2 2 5\n1 2\n",
		"symmetry":   "%%MatrixMarket matrix coordinate pattern hermitian\n2 2 0\n",
	}
	for name, in := range cases {
		if _, err := ReadMTX(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
