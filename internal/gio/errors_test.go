package gio

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// TestTextReadersRejectOutOfRange pins the 32-bit boundary behavior of the
// text readers: vertex counts, vertex ids, and weights that do not fit the
// uint32 storage must produce line-numbered errors, never silent
// truncation (which previously aliased distinct vertices and wrapped
// weights).
func TestTextReadersRejectOutOfRange(t *testing.T) {
	cases := []struct {
		name    string
		read    func(string) error
		input   string
		wantSub string // substring the error must contain ("" = any error)
	}{
		{
			"dimacs n over 2^32-1",
			readDIMACSErr,
			"p sp 4294967296 1\na 1 2 7\n",
			"line 1",
		},
		{
			"dimacs weight over 2^32-1",
			readDIMACSErr,
			"p sp 4 1\na 1 2 4294967296\n",
			"line 2",
		},
		{
			"dimacs weight at limit ok",
			readDIMACSErr,
			"p sp 4 1\na 1 2 4294967295\n",
			"OK",
		},
		{
			"mtx rows over 2^32-1",
			readMTXErr,
			"%%MatrixMarket matrix coordinate pattern general\n4294967296 4294967296 1\n1 2\n",
			"line 2",
		},
		{
			"mtx weight over 2^32-1",
			readMTXErr,
			"%%MatrixMarket matrix coordinate integer general\n4 4 1\n1 2 4294967296\n",
			"line 3",
		},
		{
			"mtx weight at limit ok",
			readMTXErr,
			"%%MatrixMarket matrix coordinate integer general\n4 4 1\n1 2 4294967295\n",
			"OK",
		},
		{
			"edgelist id at None sentinel",
			readELErr,
			"0 4294967295\n",
			"line 1",
		},
		{
			"edgelist id over 2^32-1",
			readELErr,
			"2 4294967296\n",
			"line 1",
		},
		{
			"edgelist weight over 2^32-1",
			readELErr,
			"# c\n0 1 4294967296\n",
			"line 2",
		},
		{
			"edgelist weight at limit ok",
			readELErr,
			"0 1 4294967295\n",
			"OK",
		},
	}
	for _, tc := range cases {
		err := tc.read(tc.input)
		if tc.wantSub == "OK" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

func readDIMACSErr(in string) error {
	_, err := ReadDIMACS(strings.NewReader(in))
	return err
}

func readMTXErr(in string) error {
	_, err := ReadMTX(strings.NewReader(in))
	return err
}

func readELErr(in string) error {
	_, err := ReadEdgeList(strings.NewReader(in), -1, true)
	return err
}

// failingWriter errors after allowing n bytes through — exercising every
// writer's error-propagation branches.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) <= w.remaining {
		w.remaining -= len(p)
		return len(p), nil
	}
	n := w.remaining
	w.remaining = 0
	return n, errors.New("disk full")
}

func TestWritersPropagateErrors(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(20, 20, false, 1), 1, 9, 2)
	writers := map[string]func(*failingWriter) error{
		"adj":    func(w *failingWriter) error { return WriteAdj(w, g) },
		"bin":    func(w *failingWriter) error { return WriteBin(w, g) },
		"mtx":    func(w *failingWriter) error { return WriteMTX(w, g) },
		"el":     func(w *failingWriter) error { return WriteEdgeList(w, g) },
		"dimacs": func(w *failingWriter) error { return WriteDIMACS(w, g) },
	}
	// Fail at several cut points: header, mid-array, near the end — scaled
	// to each format's actual encoded size.
	for name, write := range writers {
		full := &captureWriter{}
		switch name {
		case "adj":
			_ = WriteAdj(full, g)
		case "bin":
			_ = WriteBin(full, g)
		case "mtx":
			_ = WriteMTX(full, g)
		case "el":
			_ = WriteEdgeList(full, g)
		case "dimacs":
			_ = WriteDIMACS(full, g)
		}
		size := len(full.buf)
		for _, allow := range []int{0, 10, size / 2, size - 1} {
			if err := write(&failingWriter{remaining: allow}); err == nil {
				t.Fatalf("%s: expected error with %d-byte budget (full size %d)",
					name, allow, size)
			}
		}
	}
}

func TestFileHelperErrors(t *testing.T) {
	g := gen.Grid2D(4, 4, false, 1)
	for name, fn := range map[string]func() error{
		"adj write": func() error { return WriteAdjFile("/nonexistent-dir/x.adj", g) },
		"bin write": func() error { return WriteBinFile("/nonexistent-dir/x.bin", g) },
	} {
		if fn() == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := ReadAdjFile("/nonexistent-dir/x.adj", false); err == nil {
		t.Fatal("adj read: expected error")
	}
	if _, err := ReadBinFile("/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("bin read: expected error")
	}
	// Reading a directory as a graph errors too.
	dir := t.TempDir()
	if _, err := ReadBinFile(dir); err == nil {
		t.Fatal("reading a directory should fail")
	}
}

func TestReadBinTruncation(t *testing.T) {
	// A valid header followed by truncated arrays must error, not hang or
	// over-allocate.
	g := gen.Grid2D(30, 30, false, 1)
	var full []byte
	{
		w := &captureWriter{}
		if err := WriteBin(w, g); err != nil {
			t.Fatal(err)
		}
		full = w.buf
	}
	for _, cut := range []int{8, 30, 33, len(full) / 2, len(full) - 1} {
		if _, err := readBinBytes(full[:cut]); err == nil {
			t.Fatalf("expected error at cut %d", cut)
		}
	}
	if _, err := readBinBytes(full); err != nil {
		t.Fatalf("full data should parse: %v", err)
	}
}

type captureWriter struct{ buf []byte }

func (w *captureWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func readBinBytes(b []byte) (any, error) {
	g, err := ReadBin(&sliceReader{b: b})
	return g, err
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// TestWritersRejectOversizedN pins the writer half of the 32-bit boundary:
// the text writers used to drive their vertex loops with a uint32 bound,
// so a graph with more than 2^32-1 vertices wrapped the loop and produced
// a silently truncated file. The guard must fire before any output. The
// fake graph never has its arrays touched — the guard is checked first.
func TestWritersRejectOversizedN(t *testing.T) {
	huge := &graph.Graph{
		N:        math.MaxUint32 + 1,
		Offsets:  []uint64{0},
		Weights:  []uint32{}, // non-nil: Weighted() is true for WriteDIMACS
		Directed: true,
	}
	for name, write := range map[string]func() error{
		"el":     func() error { return WriteEdgeList(&captureWriter{}, huge) },
		"dimacs": func() error { return WriteDIMACS(&captureWriter{}, huge) },
		"mtx":    func() error { return WriteMTX(&captureWriter{}, huge) },
	} {
		err := write()
		if err == nil {
			t.Fatalf("%s: oversized graph written without error", name)
		}
		if !strings.Contains(err.Error(), "32-bit vertex-id limit") {
			t.Fatalf("%s: error %q does not name the limit", name, err)
		}
	}
}

// TestReadAdjRejectsOutOfRange extends the 32-bit boundary suite to the
// .adj reader: a vertex count past the id limit and a weight past uint32
// must error instead of aliasing through the casts.
func TestReadAdjRejectsOutOfRange(t *testing.T) {
	if _, err := ReadAdj(strings.NewReader("AdjacencyGraph\n4294967296\n0\n"), true); err == nil ||
		!strings.Contains(err.Error(), "32-bit vertex-id limit") {
		t.Fatalf("oversized n: got %v", err)
	}
	if _, err := ReadAdj(strings.NewReader("WeightedAdjacencyGraph\n1\n1\n0\n0\n4294967296\n"), true); err == nil ||
		!strings.Contains(err.Error(), "32-bit limit") {
		t.Fatalf("oversized weight: got %v", err)
	}
	// At the limit both parse.
	if _, err := ReadAdj(strings.NewReader("WeightedAdjacencyGraph\n1\n1\n0\n0\n4294967295\n"), true); err != nil {
		t.Fatalf("weight at limit rejected: %v", err)
	}
}
