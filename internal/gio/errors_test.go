package gio

import (
	"errors"
	"testing"

	"pasgal/internal/gen"
)

// failingWriter errors after allowing n bytes through — exercising every
// writer's error-propagation branches.
type failingWriter struct{ remaining int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if len(p) <= w.remaining {
		w.remaining -= len(p)
		return len(p), nil
	}
	n := w.remaining
	w.remaining = 0
	return n, errors.New("disk full")
}

func TestWritersPropagateErrors(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(20, 20, false, 1), 1, 9, 2)
	writers := map[string]func(*failingWriter) error{
		"adj":    func(w *failingWriter) error { return WriteAdj(w, g) },
		"bin":    func(w *failingWriter) error { return WriteBin(w, g) },
		"mtx":    func(w *failingWriter) error { return WriteMTX(w, g) },
		"el":     func(w *failingWriter) error { return WriteEdgeList(w, g) },
		"dimacs": func(w *failingWriter) error { return WriteDIMACS(w, g) },
	}
	// Fail at several cut points: header, mid-array, near the end — scaled
	// to each format's actual encoded size.
	for name, write := range writers {
		full := &captureWriter{}
		switch name {
		case "adj":
			_ = WriteAdj(full, g)
		case "bin":
			_ = WriteBin(full, g)
		case "mtx":
			_ = WriteMTX(full, g)
		case "el":
			_ = WriteEdgeList(full, g)
		case "dimacs":
			_ = WriteDIMACS(full, g)
		}
		size := len(full.buf)
		for _, allow := range []int{0, 10, size / 2, size - 1} {
			if err := write(&failingWriter{remaining: allow}); err == nil {
				t.Fatalf("%s: expected error with %d-byte budget (full size %d)",
					name, allow, size)
			}
		}
	}
}

func TestFileHelperErrors(t *testing.T) {
	g := gen.Grid2D(4, 4, false, 1)
	for name, fn := range map[string]func() error{
		"adj write": func() error { return WriteAdjFile("/nonexistent-dir/x.adj", g) },
		"bin write": func() error { return WriteBinFile("/nonexistent-dir/x.bin", g) },
	} {
		if fn() == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	if _, err := ReadAdjFile("/nonexistent-dir/x.adj", false); err == nil {
		t.Fatal("adj read: expected error")
	}
	if _, err := ReadBinFile("/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("bin read: expected error")
	}
	// Reading a directory as a graph errors too.
	dir := t.TempDir()
	if _, err := ReadBinFile(dir); err == nil {
		t.Fatal("reading a directory should fail")
	}
}

func TestReadBinTruncation(t *testing.T) {
	// A valid header followed by truncated arrays must error, not hang or
	// over-allocate.
	g := gen.Grid2D(30, 30, false, 1)
	var full []byte
	{
		w := &captureWriter{}
		if err := WriteBin(w, g); err != nil {
			t.Fatal(err)
		}
		full = w.buf
	}
	for _, cut := range []int{8, 30, 33, len(full) / 2, len(full) - 1} {
		if _, err := readBinBytes(full[:cut]); err == nil {
			t.Fatalf("expected error at cut %d", cut)
		}
	}
	if _, err := readBinBytes(full); err != nil {
		t.Fatalf("full data should parse: %v", err)
	}
}

type captureWriter struct{ buf []byte }

func (w *captureWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func readBinBytes(b []byte) (any, error) {
	g, err := ReadBin(&sliceReader{b: b})
	return g, err
}

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
