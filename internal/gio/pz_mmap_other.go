//go:build !unix

package gio

import "pasgal/internal/graph"

// MapPZFile on platforms without mmap support reads the file into memory
// through ReadPZFile (checksum verified, lists validated); the returned
// close function is a no-op. The unix build provides the zero-copy
// mapping this name promises.
func MapPZFile(path string) (*graph.Compressed, func() error, error) {
	c, err := ReadPZFile(path)
	if err != nil {
		return nil, nil, err
	}
	return c, func() error { return nil }, nil
}
