package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pasgal/internal/graph"
)

// Binary CSR format (GBBS-style: header + raw offset/edge arrays, little
// endian):
//
//	magic   [8]byte  "PASGAL01"
//	flags   uint64   bit0 = directed, bit1 = weighted
//	n       uint64
//	m       uint64
//	offsets (n+1) x uint64
//	edges   m x uint32
//	weights m x uint32   (if weighted)
var binMagic = [8]byte{'P', 'A', 'S', 'G', 'A', 'L', '0', '1'}

const (
	flagDirected = 1 << 0
	flagWeighted = 1 << 1
)

// WriteBin writes g in the binary CSR format.
func WriteBin(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	var flags uint64
	if g.Directed {
		flags |= flagDirected
	}
	if g.Weighted() {
		flags |= flagWeighted
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr[0:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.N))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.Edges)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := writeUint64s(bw, g.Offsets); err != nil {
		return err
	}
	if err := writeUint32s(bw, g.Edges); err != nil {
		return err
	}
	if g.Weighted() {
		if err := writeUint32s(bw, g.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBin reads the binary CSR format.
func ReadBin(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gio: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("gio: bad magic %q", magic[:])
	}
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("gio: reading header: %w", err)
	}
	flags := binary.LittleEndian.Uint64(hdr[0:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if n >= 1<<40 || m >= 1<<42 {
		return nil, fmt.Errorf("gio: implausible header (n=%d, m=%d)", n, m)
	}
	// Arrays are read incrementally (growing with the data actually
	// present) so a corrupt header cannot force a huge allocation before
	// the stream runs dry.
	offsets, err := readUint64sIncr(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("gio: reading offsets: %w", err)
	}
	edges, err := readUint32sIncr(br, m)
	if err != nil {
		return nil, fmt.Errorf("gio: reading edges: %w", err)
	}
	g := &graph.Graph{
		N:        int(n),
		Offsets:  offsets,
		Edges:    edges,
		Directed: flags&flagDirected != 0,
	}
	if flags&flagWeighted != 0 {
		g.Weights, err = readUint32sIncr(br, m)
		if err != nil {
			return nil, fmt.Errorf("gio: reading weights: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gio: %w", err)
	}
	return g, nil
}

// WriteBinFile writes g to path in .bin format, atomically (temp file +
// fsync + rename; see WriteFileAtomic).
func WriteBinFile(path string, g *graph.Graph) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return WriteBin(w, g) })
}

// ReadBinFile reads a .bin file.
func ReadBinFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBin(f)
}

const ioChunk = 1 << 14

func writeUint64s(w io.Writer, vals []uint64) error {
	buf := make([]byte, 8*ioChunk)
	for len(vals) > 0 {
		k := min(len(vals), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], vals[i])
		}
		if _, err := w.Write(buf[:8*k]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

func writeUint32s(w io.Writer, vals []uint32) error {
	buf := make([]byte, 4*ioChunk)
	for len(vals) > 0 {
		k := min(len(vals), ioChunk)
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], vals[i])
		}
		if _, err := w.Write(buf[:4*k]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

// readUint64sIncr reads exactly count values, growing the result slice as
// data arrives so truncated input fails before large allocations.
func readUint64sIncr(r io.Reader, count uint64) ([]uint64, error) {
	out := make([]uint64, 0, min(count, ioChunk))
	buf := make([]byte, 8*ioChunk)
	for remaining := count; remaining > 0; {
		k := min(remaining, ioChunk)
		if _, err := io.ReadFull(r, buf[:8*k]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint64(buf[8*i:]))
		}
		remaining -= k
	}
	return out, nil
}

// readUint32sIncr is readUint64sIncr for uint32 values.
func readUint32sIncr(r io.Reader, count uint64) ([]uint32, error) {
	out := make([]uint32, 0, min(count, ioChunk))
	buf := make([]byte, 4*ioChunk)
	for remaining := count; remaining > 0; {
		k := min(remaining, ioChunk)
		if _, err := io.ReadFull(r, buf[:4*k]); err != nil {
			return nil, err
		}
		for i := uint64(0); i < k; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
		remaining -= k
	}
	return out, nil
}
