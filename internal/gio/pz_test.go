package gio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// compressedEqual compares two compressed graphs through their decompressed
// CSR forms plus their headers.
func compressedEqual(a, b *graph.Compressed) bool {
	if a.NumVertices() != b.NumVertices() || a.NumArcs() != b.NumArcs() ||
		a.IsDirected() != b.IsDirected() || a.HasWeights() != b.HasWeights() {
		return false
	}
	return graphsEqual(a.Decompress(), b.Decompress())
}

// TestPZRoundTripProperty mirrors TestRoundTripProperty for the compressed
// format: write→read is lossless and a second write is byte-identical.
func TestPZRoundTripProperty(t *testing.T) {
	for sname, g := range rtShapes() {
		t.Run(sname, func(t *testing.T) {
			c := graph.Compress(g)
			var first bytes.Buffer
			if err := WritePZ(&first, c); err != nil {
				t.Fatal(err)
			}
			payload := append([]byte(nil), first.Bytes()...)
			got, err := ReadPZ(&first)
			if err != nil {
				t.Fatal(err)
			}
			if !compressedEqual(c, got) {
				t.Fatal("reread compressed graph differs")
			}
			if !graphsEqual(g, got.Decompress()) {
				t.Fatal("decompressed reread differs from the original CSR")
			}
			var second bytes.Buffer
			if err := WritePZ(&second, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(payload, second.Bytes()) {
				t.Fatal("second write is not byte-identical: format is not canonical")
			}
		})
	}
}

// TestPZMmapRoundTrip writes every shape to disk, maps it back, and
// compares against the original — the tentpole's write→mmap-read→compare
// loop. The mapped view must keep working until close and survive a
// decompression (which reads every data byte through the mapping).
func TestPZMmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for sname, g := range rtShapes() {
		t.Run(sname, func(t *testing.T) {
			c := graph.Compress(g)
			path := filepath.Join(dir, sname+".pz")
			if err := WritePZFile(path, c); err != nil {
				t.Fatal(err)
			}
			mc, closeMap, err := MapPZFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := mc.Validate(); err != nil {
				t.Fatalf("mapped graph invalid: %v", err)
			}
			if !compressedEqual(c, mc) {
				t.Fatal("mapped graph differs from written graph")
			}
			if err := closeMap(); err != nil {
				t.Fatalf("unmap: %v", err)
			}
			if err := closeMap(); err != nil {
				t.Fatalf("second close not idempotent: %v", err)
			}
		})
	}
}

// TestPZTruncationExhaustive feeds ReadPZ every strict prefix of a valid
// file: each one must return an error — never panic, and never hand back
// a graph built from a silent short read. MapPZFile gets the same
// treatment (its size check must catch every cut).
func TestPZTruncationExhaustive(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(3, 3, false, 1), 1, 9, 2)
	c := graph.Compress(g)
	var buf bytes.Buffer
	if err := WritePZ(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dir := t.TempDir()
	path := filepath.Join(dir, "cut.pz")
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadPZ(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes read without error", cut, len(full))
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if mc, closeMap, err := MapPZFile(path); err == nil {
			closeMap()
			t.Fatalf("prefix of %d/%d bytes mapped without error (n=%d)",
				cut, len(full), mc.NumVertices())
		}
	}
	if _, err := ReadPZ(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file failed: %v", err)
	}
}

// patchChecksum recomputes the header checksum of a raw .pz image after a
// payload mutation, so corruption tests reach the structural validators
// behind it.
func patchChecksum(t *testing.T, b []byte) {
	t.Helper()
	n := binary.LittleEndian.Uint64(b[16:])
	dataLen := binary.LittleEndian.Uint64(b[32:])
	voffEnd := pzHeaderSize + 8*(n+1)
	voff := make([]uint64, n+1)
	for i := range voff {
		voff[i] = binary.LittleEndian.Uint64(b[pzHeaderSize+8*uint64(i):])
	}
	binary.LittleEndian.PutUint64(b[40:], pzChecksum(voff, b[voffEnd:voffEnd+dataLen]))
}

// TestPZCorruptRejects covers each corruption class with its expected
// error text, for both the streaming reader and the mapper.
func TestPZCorruptRejects(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(4, 4, false, 3), 1, 9, 4)
	c := graph.Compress(g)
	var buf bytes.Buffer
	if err := WritePZ(&buf, c); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	voffStart := uint64(pzHeaderSize)
	dataStart := voffStart + 8*uint64(c.NumVertices()+1)

	cases := []struct {
		name       string
		want       string // error substring; both readers must mention it
		mapAccepts bool   // the structural-checks-only mapper legally accepts
		mutate     func(b []byte) []byte
	}{
		{"bad-magic", "bad magic", false, func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"unknown-flags", "unknown flag", false, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<7)
			return b
		}},
		{"implausible-n", "implausible", false, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<40)
			return b
		}},
		{"implausible-m", "implausible", false, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<42)
			return b
		}},
		{"data-below-arcs", "below arc count", false, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<41)
			binary.LittleEndian.PutUint64(b[32:], 8)
			return b
		}},
		{"nonzero-reserved", "reserved", false, func(b []byte) []byte {
			b[55] = 1
			return b
		}},
		{"checksum-flip", "checksum mismatch", true, func(b []byte) []byte {
			b[dataStart+2] ^= 0x40
			return b
		}},
		{"offsets-nonmonotone", "vertex", false, func(b []byte) []byte {
			// Swap two offsets, then fix the checksum so the structural
			// check (shared by both readers) is what fires.
			v1 := binary.LittleEndian.Uint64(b[voffStart+8:])
			v2 := binary.LittleEndian.Uint64(b[voffStart+16:])
			binary.LittleEndian.PutUint64(b[voffStart+8:], v2)
			binary.LittleEndian.PutUint64(b[voffStart+16:], v1)
			patchChecksum(t, b)
			return b
		}},
		{"trailing-garbage", "", false, func(b []byte) []byte {
			return append(b, 0xee)
		}},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), pristine...))
			_, rerr := ReadPZ(bytes.NewReader(b))
			path := filepath.Join(dir, tc.name+".pz")
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			mc, closeMap, merr := MapPZFile(path)
			if merr == nil {
				closeMap()
			}
			// Trailing garbage is only detectable by the size-checked mapper
			// (the streaming reader stops at the declared length by design).
			if tc.name != "trailing-garbage" {
				if rerr == nil {
					t.Fatal("ReadPZ accepted corrupt input")
				}
				if !strings.Contains(rerr.Error(), tc.want) {
					t.Fatalf("ReadPZ error %q does not mention %q", rerr, tc.want)
				}
			}
			if tc.mapAccepts {
				// The mapper runs structural checks only (no checksum pass),
				// so a pure payload flip legally maps; TestPZMmapSkipsChecksum
				// pins that trust split.
				if merr != nil {
					t.Fatalf("MapPZFile rejected input its contract accepts: %v", merr)
				}
				return
			}
			if merr == nil {
				t.Fatalf("MapPZFile accepted corrupt input (n=%d)", mc.NumVertices())
			}
			if tc.want != "" {
				if !strings.Contains(merr.Error(), tc.want) {
					t.Fatalf("MapPZFile error %q does not mention %q", merr, tc.want)
				}
			}
		})
	}
}

// TestPZMmapSkipsChecksum pins the documented trust split: a payload flip
// that preserves list structure passes MapPZFile (no checksum pass) but
// fails ReadPZ.
func TestPZMmapSkipsChecksum(t *testing.T) {
	g := gen.Grid2D(4, 4, false, 5)
	c := graph.Compress(g)
	var buf bytes.Buffer
	if err := WritePZ(&buf, c); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip the checksum field itself: payload stays structurally valid.
	b[40] ^= 0xff
	if _, err := ReadPZ(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadPZ ignored a checksum mismatch")
	}
	path := filepath.Join(t.TempDir(), "g.pz")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	mc, closeMap, err := MapPZFile(path)
	if err != nil {
		t.Fatalf("MapPZFile rejected a structurally valid file: %v", err)
	}
	defer closeMap()
	if !graphsEqual(g, mc.Decompress()) {
		t.Fatal("mapped graph differs")
	}
}

// FuzzReadPZ asserts ReadPZ never panics and that anything it accepts
// round-trips canonically. Seeds cover a valid file, cuts at the section
// boundaries (header end, offsets end — the restart-point table — and
// mid-data), and header mutants.
func FuzzReadPZ(f *testing.F) {
	g := gen.AddUniformWeights(gen.SocialRMAT(5, 3, true, 6), 1, 50, 7)
	c := graph.Compress(g)
	var seed bytes.Buffer
	_ = WritePZ(&seed, c)
	full := seed.Bytes()
	f.Add(append([]byte(nil), full...))
	voffEnd := pzHeaderSize + 8*(c.NumVertices()+1)
	f.Add(append([]byte(nil), full[:pzHeaderSize]...)) // header only
	f.Add(append([]byte(nil), full[:voffEnd]...))      // offsets, no data
	if voffEnd+3 < len(full) {
		f.Add(append([]byte(nil), full[:voffEnd+3]...)) // cut mid-list
	}
	hdrMutant := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(hdrMutant[16:], uint64(c.NumVertices()+1))
	f.Add(hdrMutant)
	f.Add([]byte("PASGALZ1"))
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadPZ(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid compressed graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WritePZ(&buf, got); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadPZ(&buf)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if !compressedEqual(got, again) {
			t.Fatal("accepted graph does not round-trip")
		}
	})
}
