package gio

import (
	"bytes"
	"strings"
	"testing"

	"pasgal/internal/gen"
)

// The fuzz targets assert the readers never panic and that anything they
// accept round-trips through the writers. Run with `go test -fuzz` for
// real fuzzing; under plain `go test` they exercise the seed corpus.

func FuzzReadAdj(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteAdj(&seed, gen.Grid2D(4, 4, false, 1))
	f.Add(seed.String())
	f.Add("AdjacencyGraph\n2\n1\n0\n1\n1\n")
	f.Add("WeightedAdjacencyGraph\n1\n0\n0\n")
	f.Add("AdjacencyGraph\n-1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadAdj(strings.NewReader(in), false)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteAdj(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadAdj(&buf, false)
		if err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if !graphsEqual(g, again) {
			t.Fatal("accepted graph does not round-trip")
		}
	})
}

func FuzzReadBin(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBin(&seed, gen.SocialRMAT(5, 2, true, 1))
	f.Add(seed.Bytes())
	f.Add([]byte("PASGAL01"))
	f.Add([]byte("PASGAL01\x00\x00\x00\x00\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, in []byte) {
		// Huge claimed sizes must fail fast, not OOM: cap the input-driven
		// allocation by rejecting absurd headers relative to input length.
		g, err := ReadBin(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("0 1 5\n# c\n")
	f.Add("x y\n")
	// 32-bit boundary seeds: ids/weights at and past the uint32 limits.
	// (Valid near-limit ids are deliberately absent: n is inferred as
	// max id + 1, so a legal 4-billion id would make the fuzzer allocate a
	// 4-billion-vertex CSR.)
	f.Add("0 4294967295\n")
	f.Add("4294967296 1\n")
	f.Add("0 1 4294967296\n")
	f.Add("0 1 4294967295\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), -1, true)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteDIMACS(&seed, gen.AddUniformWeights(gen.Grid2D(3, 3, false, 1), 1, 9, 2))
	f.Add(seed.String())
	f.Add("c x\np sp 2 1\na 1 2 7\n")
	// 32-bit boundary seeds.
	f.Add("p sp 4294967296 1\na 1 2 7\n")
	f.Add("p sp 2 1\na 1 2 4294967296\n")
	f.Add("p sp 2 1\na 1 2 4294967295\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadMTX(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteMTX(&seed, gen.Grid2D(3, 3, false, 1))
	f.Add(seed.String())
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	// 32-bit boundary seeds.
	f.Add("%%MatrixMarket matrix coordinate pattern general\n4294967296 4294967296 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n3 3 1\n1 2 4294967296\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMTX(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}
