package gio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pasgal/internal/graph"
)

// ReadMTX parses a MatrixMarket coordinate file as a graph: rows/columns
// are vertices (the matrix must be square), entries are edges, and the
// "symmetric" qualifier selects an undirected graph. Entry values, when
// present and integral, become edge weights; pattern matrices are
// unweighted. MatrixMarket uses 1-based indices.
func ReadMTX(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// Header: %%MatrixMarket matrix coordinate <field> <symmetry>
	if !sc.Scan() {
		return nil, fmt.Errorf("gio: empty mtx file")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" ||
		header[2] != "coordinate" {
		return nil, fmt.Errorf("gio: unsupported mtx header %q", sc.Text())
	}
	field, symmetry := header[3], header[4]
	weighted := field == "integer" || field == "real"
	directed := symmetry == "general"
	if symmetry != "general" && symmetry != "symmetric" {
		return nil, fmt.Errorf("gio: unsupported mtx symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int64
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("gio: mtx line %d: size line: %w", lineNo, err)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("gio: mtx matrix is %dx%d, need square", rows, cols)
	}
	if rows < 0 || nnz < 0 {
		return nil, fmt.Errorf("gio: mtx line %d: implausible sizes", lineNo)
	}
	if rows > maxVertexCount {
		return nil, fmt.Errorf("gio: mtx line %d: %d rows exceeds the 32-bit vertex-id limit %d",
			lineNo, rows, int64(maxVertexCount))
	}
	edges := make([]graph.Edge, 0, nnz)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '%' {
			continue
		}
		var u, v int64
		var w float64 = 1
		var err error
		if weighted {
			_, err = fmt.Sscan(line, &u, &v, &w)
		} else {
			_, err = fmt.Sscan(line, &u, &v)
		}
		if err != nil {
			return nil, fmt.Errorf("gio: mtx line %d: entry %q: %w", lineNo, line, err)
		}
		if u < 1 || u > rows || v < 1 || v > rows {
			return nil, fmt.Errorf("gio: mtx line %d: entry (%d,%d) out of range", lineNo, u, v)
		}
		if w > maxEdgeWeight {
			return nil, fmt.Errorf("gio: mtx line %d: weight %g exceeds the 32-bit limit %d",
				lineNo, w, int64(maxEdgeWeight))
		}
		wt := uint32(w)
		if w < 0 {
			wt = 0
		}
		edges = append(edges, graph.Edge{U: uint32(u - 1), V: uint32(v - 1), W: wt})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if int64(len(edges)) != nnz {
		return nil, fmt.Errorf("gio: mtx has %d entries, header says %d", len(edges), nnz)
	}
	return graph.FromEdges(int(rows), edges, directed,
		graph.BuildOptions{Weighted: weighted}), nil
}

// WriteMTX writes g as a MatrixMarket coordinate file (pattern or integer
// field; general or symmetric depending on g.Directed).
func WriteMTX(w io.Writer, g *graph.Graph) error {
	if g.N > maxVertexCount {
		// The old uint32 loop bound silently wrapped here, emitting a
		// truncated file; same failure class the readers guard against.
		return fmt.Errorf("gio: n = %d exceeds the 32-bit vertex-id limit %d",
			g.N, uint64(maxVertexCount))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	field := "pattern"
	if g.Weighted() {
		field = "integer"
	}
	symmetry := "general"
	if !g.Directed {
		symmetry = "symmetric"
	}
	nnz := len(g.Edges)
	if !g.Directed {
		nnz /= 2
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s %s\n%d %d %d\n",
		field, symmetry, g.N, g.N, nnz); err != nil {
		return err
	}
	for ui := 0; ui < g.N; ui++ {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			v := g.Edges[e]
			if !g.Directed && v < u {
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u+1, v+1, g.Weights[e])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u+1, v+1)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
