package gio

import (
	"bytes"
	"strings"
	"testing"

	"pasgal/internal/gen"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := gen.AddUniformWeights(gen.SampledGrid(10, 10, 0.9, true, 1), 1, 100, 2)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("dimacs round trip mismatch")
	}
}

func TestDIMACSParsing(t *testing.T) {
	in := `c road network
c more comments
p sp 4 3
a 1 2 10
a 2 3 20
a 4 1 5
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 3 || !g.Directed || !g.Weighted() {
		t.Fatalf("parsed %v", g)
	}
	e := g.FindArc(0, 1)
	if e == ^uint64(0) || g.Weights[e] != 10 {
		t.Fatal("arc (1,2,10) lost")
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem":   "a 1 2 3\n",
		"double p":     "p sp 2 0\np sp 2 0\n",
		"wrong kind":   "p max 2 1\na 1 2 3\n",
		"out of range": "p sp 2 1\na 1 5 3\n",
		"count":        "p sp 2 5\na 1 2 3\n",
		"record":       "p sp 2 1\nz 1 2\n",
		"missing":      "c only comments\n",
		"huge":         "p sp 99999999999999999 1\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Unweighted graphs cannot be written.
	if err := WriteDIMACS(&bytes.Buffer{}, gen.Chain(3, true)); err == nil {
		t.Fatal("expected error writing unweighted graph")
	}
}
