package gio

import (
	"os"
	"strconv"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// TestBigPZ is the storage-path smoke at serving scale: synthesize a
// graph of 2^PASGAL_BIG_SHIFT arcs (default 2^26) straight into CSR,
// compress it, write the .pz file, map it back, and BFS the mapped view
// end to end. The HashCSR ring guarantees strong connectivity, so the
// full-coverage check is exact. Direction optimization stays off to keep
// the run transpose-free (one extra graph copy per representation at
// this size is the difference between a smoke test and an OOM).
//
// Skips: -short, or PASGAL_SKIP_BIG=1. Scale up with PASGAL_BIG_SHIFT=28
// for the acceptance-sized run.
func TestBigPZ(t *testing.T) {
	if testing.Short() {
		t.Skip("big-graph smoke; skipped with -short")
	}
	if os.Getenv("PASGAL_SKIP_BIG") == "1" {
		t.Skip("big-graph smoke; skipped with PASGAL_SKIP_BIG=1")
	}
	shift := 26
	if s := os.Getenv("PASGAL_BIG_SHIFT"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 16 || v > 32 {
			t.Fatalf("PASGAL_BIG_SHIFT=%q: want an integer in [16, 32]", s)
		}
		shift = v
	}
	const d = 16
	n := (1 << shift) / d

	start := time.Now()
	g := gen.HashCSR(n, d, 99)
	t.Logf("built n=%d m=%d in %v", g.N, g.M(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	c := graph.Compress(g)
	t.Logf("compressed to %.2f bytes/edge in %v (plain CSR: %.2f)",
		c.BytesPerArc(), time.Since(start).Round(time.Millisecond),
		float64(8*(g.N+1)+4*g.M())/float64(g.M()))

	path := t.TempDir() + "/big.pz"
	start = time.Now()
	if err := WritePZFile(path, c); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d bytes in %v", fi.Size(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	mc, closeMap, err := MapPZFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closeMap(); err != nil {
			t.Fatal(err)
		}
	}()
	mapped := time.Since(start)
	t.Logf("mapped in %v", mapped.Round(time.Microsecond))
	if mc.NumVertices() != g.N || mc.NumArcs() != g.M() {
		t.Fatalf("mapped shape %d/%d, want %d/%d", mc.NumVertices(), mc.NumArcs(), g.N, g.M())
	}

	opt := core.Options{DisableDirectionOpt: true}
	start = time.Now()
	dist, _, err := core.BFS(mc, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BFS over the mapped view in %v", time.Since(start).Round(time.Millisecond))
	for v, dv := range dist {
		if dv == graph.InfDist {
			t.Fatalf("vertex %d unreached; the ring makes that impossible", v)
		}
	}
	want, _, err := core.BFS(g, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d mapped, %d plain", v, dist[v], want[v])
		}
	}
}
