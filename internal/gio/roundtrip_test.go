package gio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// rtShapes is the randomized property-test matrix: directed and undirected,
// dense and disconnected, empty and single-vertex, with and without
// weights.
func rtShapes() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":        graph.FromEdges(0, nil, true, graph.BuildOptions{}),
		"single":       graph.FromEdges(1, nil, false, graph.BuildOptions{}),
		"isolated":     graph.FromEdges(9, nil, true, graph.BuildOptions{}),
		"chain-dir":    gen.Chain(40, true),
		"grid":         gen.Grid2D(7, 9, false, 1),
		"rmat-dir":     gen.SocialRMAT(7, 6, true, 2),
		"er-sparse":    gen.ER(60, 30, true, 3), // disconnected
		"weblike-dir":  gen.WebLike(80, 4, 0.3, 8, 4),
		"tree":         gen.Tree(50, 5),
		"grid-w":       gen.AddUniformWeights(gen.Grid2D(6, 8, false, 6), 1, 99, 7),
		"rmat-dir-w":   gen.AddUniformWeights(gen.SocialRMAT(6, 7, true, 8), 1, 1000, 9),
		"er-sparse-w":  gen.AddUniformWeights(gen.ER(40, 25, true, 10), 1, 7, 11),
		"max-weight-w": gen.AddUniformWeights(gen.Chain(5, true), 1<<30, 1<<30, 12),
	}
}

// TestRoundTripProperty checks, for every shape and every format, the two
// core properties: write→read returns an identical graph, and a second
// write of the reread graph is byte-identical to the first (so the format
// is canonical, not just lossless).
func TestRoundTripProperty(t *testing.T) {
	type format struct {
		write func(*bytes.Buffer, *graph.Graph) error
		read  func(*bytes.Buffer, *graph.Graph) (*graph.Graph, error)
	}
	formats := map[string]format{
		"bin": {
			write: func(b *bytes.Buffer, g *graph.Graph) error { return WriteBin(b, g) },
			read:  func(b *bytes.Buffer, g *graph.Graph) (*graph.Graph, error) { return ReadBin(b) },
		},
		"adj": {
			write: func(b *bytes.Buffer, g *graph.Graph) error { return WriteAdj(b, g) },
			read: func(b *bytes.Buffer, g *graph.Graph) (*graph.Graph, error) {
				return ReadAdj(b, g.Directed)
			},
		},
		"edgelist": {
			write: func(b *bytes.Buffer, g *graph.Graph) error { return WriteEdgeList(b, g) },
			read: func(b *bytes.Buffer, g *graph.Graph) (*graph.Graph, error) {
				return ReadEdgeList(b, g.N, g.Directed)
			},
		},
	}
	for fname, f := range formats {
		for sname, g := range rtShapes() {
			t.Run(fname+"/"+sname, func(t *testing.T) {
				var first bytes.Buffer
				if err := f.write(&first, g); err != nil {
					t.Fatal(err)
				}
				payload := append([]byte(nil), first.Bytes()...)
				got, err := f.read(&first, g)
				if err != nil {
					t.Fatal(err)
				}
				if !graphsEqual(g, got) {
					t.Fatalf("reread graph differs (n=%d m=%d vs n=%d m=%d)",
						g.N, g.M(), got.N, got.M())
				}
				var second bytes.Buffer
				if err := f.write(&second, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(payload, second.Bytes()) {
					t.Fatal("second write is not byte-identical: format is not canonical")
				}
			})
		}
	}
}

// TestBinTruncationExhaustive feeds ReadBin every strict prefix of a valid
// file: each one must return an error — never panic, and never hand back a
// graph built from a silent short read.
func TestBinTruncationExhaustive(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(3, 3, false, 1), 1, 9, 2)
	var buf bytes.Buffer
	if err := WriteBin(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadBin(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("prefix of %d/%d bytes read without error", cut, len(full))
		}
	}
	if _, err := ReadBin(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file failed: %v", err)
	}
}

// TestBinCorruptHeader covers each corrupt-header class: implausible
// counts, counts larger than the payload, a weighted flag with no weight
// data, and offsets that violate CSR monotonicity.
func TestBinCorruptHeader(t *testing.T) {
	g := gen.Grid2D(4, 4, false, 1)
	var buf bytes.Buffer
	if err := WriteBin(&buf, g); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	// Header layout: magic[0:8] flags[8:16] n[16:24] m[24:32].
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), pristine...)
		mutate(b)
		if _, err := ReadBin(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: corrupt file read without error", name)
		}
	}
	corrupt("implausible-n", func(b []byte) {
		binary.LittleEndian.PutUint64(b[16:], 1<<40)
	})
	corrupt("implausible-m", func(b []byte) {
		binary.LittleEndian.PutUint64(b[24:], 1<<42)
	})
	corrupt("n-beyond-payload", func(b []byte) {
		binary.LittleEndian.PutUint64(b[16:], 1<<39)
	})
	corrupt("m-beyond-payload", func(b []byte) {
		binary.LittleEndian.PutUint64(b[24:], 1<<41)
	})
	corrupt("weighted-flag-no-data", func(b []byte) {
		binary.LittleEndian.PutUint64(b[8:], binary.LittleEndian.Uint64(b[8:])|flagWeighted)
	})
	corrupt("offsets-nonmonotone", func(b []byte) {
		binary.LittleEndian.PutUint64(b[32+8:], ^uint64(0)>>16)
	})
	corrupt("edge-out-of-range", func(b []byte) {
		off := 32 + 8*(g.N+1)
		binary.LittleEndian.PutUint32(b[off:], uint32(g.N)+7)
	})
}

// TestAdjTruncationTokens drops whole trailing tokens from a valid .adj
// file one at a time; every such file is missing declared data and must
// error. (Cutting mid-token can silently shorten one number — inherent to
// whitespace-separated text — so only token-boundary cuts are asserted.)
func TestAdjTruncationTokens(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(3, 4, false, 1), 1, 9, 2)
	var buf bytes.Buffer
	if err := WriteAdj(&buf, g); err != nil {
		t.Fatal(err)
	}
	tokens := strings.Fields(buf.String())
	for keep := 1; keep < len(tokens); keep++ {
		in := "WeightedAdjacencyGraph\n" + strings.Join(tokens[1:keep], "\n") + "\n"
		if _, err := ReadAdj(strings.NewReader(in), false); err == nil {
			t.Fatalf("adj with %d/%d tokens read without error", keep, len(tokens))
		}
	}
}

// TestReaderPrefixesNeverPanic sweeps every byte prefix of every format
// through its reader. Text prefixes can legitimately parse (an edge list
// has no declared length), so the only universal property is: no panics.
func TestReaderPrefixesNeverPanic(t *testing.T) {
	g := gen.AddUniformWeights(gen.Grid2D(3, 3, true, 1), 1, 9, 2)
	writers := map[string]func(*bytes.Buffer) error{
		"bin":      func(b *bytes.Buffer) error { return WriteBin(b, g) },
		"adj":      func(b *bytes.Buffer) error { return WriteAdj(b, g) },
		"edgelist": func(b *bytes.Buffer) error { return WriteEdgeList(b, g) },
		"dimacs":   func(b *bytes.Buffer) error { return WriteDIMACS(b, g) },
		"mtx":      func(b *bytes.Buffer) error { return WriteMTX(b, g) },
	}
	readers := map[string]func([]byte) (any, error){
		"bin": func(b []byte) (any, error) { return ReadBin(bytes.NewReader(b)) },
		"adj": func(b []byte) (any, error) { return ReadAdj(bytes.NewReader(b), true) },
		"edgelist": func(b []byte) (any, error) {
			return ReadEdgeList(bytes.NewReader(b), g.N, true)
		},
		"dimacs": func(b []byte) (any, error) { return ReadDIMACS(bytes.NewReader(b)) },
		"mtx":    func(b []byte) (any, error) { return ReadMTX(bytes.NewReader(b)) },
	}
	for name, write := range writers {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		for cut := 0; cut <= len(full); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s reader panicked on %d/%d-byte prefix: %v",
							name, cut, len(full), r)
					}
				}()
				_, _ = readers[name](full[:cut])
			}()
		}
	}
}

// TestEdgeListTruncationAtLines checks the documented partial-read shape:
// an edge list cut at a line boundary parses as exactly the prefix of the
// original edges (the format has no declared length, so that is the best a
// reader can do — but it must never fabricate or reorder edges).
func TestEdgeListTruncationAtLines(t *testing.T) {
	g := gen.SocialRMAT(6, 5, true, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	type arc struct{ u, v uint32 }
	var all []arc
	for u := uint32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			all = append(all, arc{u, v})
		}
	}
	for _, keep := range []int{0, 1, len(lines) / 2, len(lines)} {
		in := strings.Join(lines[:keep], "\n")
		got, err := ReadEdgeList(strings.NewReader(in), g.N, true)
		if err != nil {
			t.Fatalf("%d/%d lines: %v", keep, len(lines), err)
		}
		var gotArcs []arc
		for u := uint32(0); int(u) < got.N; u++ {
			for _, v := range got.Neighbors(u) {
				gotArcs = append(gotArcs, arc{u, v})
			}
		}
		want := all[:keep]
		if fmt.Sprint(gotArcs) != fmt.Sprint(want) {
			t.Fatalf("%d/%d lines: arcs %v, want prefix %v", keep, len(lines), gotArcs, want)
		}
	}
}
