// Package gio reads and writes the graph file formats PASGAL supports: the
// PBBS text adjacency format (.adj), a GBBS-style binary CSR format (.bin),
// and plain edge lists (.el / .txt).
package gio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"pasgal/internal/graph"
)

const (
	adjHeader         = "AdjacencyGraph"
	weightedAdjHeader = "WeightedAdjacencyGraph"
)

// WriteAdj writes g in the PBBS adjacency format:
//
//	AdjacencyGraph\n n\n m\n  <n offsets> <m edges> [<m weights>]
//
// one number per line. Weighted graphs use the WeightedAdjacencyGraph
// header. Undirectedness is not encoded by the format; symmetric graphs
// round-trip as symmetric arc sets (callers track directedness).
func WriteAdj(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := adjHeader
	if g.Weighted() {
		header = weightedAdjHeader
	}
	if _, err := fmt.Fprintf(bw, "%s\n%d\n%d\n", header, g.N, len(g.Edges)); err != nil {
		return err
	}
	var buf []byte
	writeInt := func(v uint64) error {
		buf = strconv.AppendUint(buf[:0], v, 10)
		buf = append(buf, '\n')
		_, err := bw.Write(buf)
		return err
	}
	for v := 0; v < g.N; v++ {
		if err := writeInt(g.Offsets[v]); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if err := writeInt(uint64(e)); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wt := range g.Weights {
			if err := writeInt(uint64(wt)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAdj parses the PBBS adjacency format. directed tells the reader how
// to tag the result (the format itself does not store it).
func ReadAdj(r io.Reader, directed bool) (*graph.Graph, error) {
	tok := newTokenizer(r)
	header, err := tok.word()
	if err != nil {
		return nil, fmt.Errorf("gio: reading header: %w", err)
	}
	weighted := false
	switch header {
	case adjHeader:
	case weightedAdjHeader:
		weighted = true
	default:
		return nil, fmt.Errorf("gio: unknown header %q", header)
	}
	n, err := tok.uint()
	if err != nil {
		return nil, fmt.Errorf("gio: reading n: %w", err)
	}
	m, err := tok.uint()
	if err != nil {
		return nil, fmt.Errorf("gio: reading m: %w", err)
	}
	if n >= 1<<40 || m >= 1<<42 {
		return nil, fmt.Errorf("gio: implausible header (n=%d, m=%d)", n, m)
	}
	if n > maxVertexCount {
		// Vertex ids are stored as uint32; without this guard the edge
		// casts below would alias distinct vertices.
		return nil, fmt.Errorf("gio: n = %d exceeds the 32-bit vertex-id limit %d",
			n, uint64(maxVertexCount))
	}
	g := &graph.Graph{
		N:        int(n),
		Offsets:  make([]uint64, 0, min(n+1, 1<<20)),
		Edges:    make([]uint32, 0, min(m, 1<<20)),
		Directed: directed,
	}
	// Grow-with-the-data parsing: a lying header fails at EOF before any
	// oversized allocation.
	for v := uint64(0); v < n; v++ {
		o, err := tok.uint()
		if err != nil {
			return nil, fmt.Errorf("gio: offset %d: %w", v, err)
		}
		g.Offsets = append(g.Offsets, o)
	}
	g.Offsets = append(g.Offsets, m)
	for i := uint64(0); i < m; i++ {
		e, err := tok.uint()
		if err != nil {
			return nil, fmt.Errorf("gio: edge %d: %w", i, err)
		}
		if e >= n {
			return nil, fmt.Errorf("gio: edge target %d out of range (n=%d)", e, n)
		}
		g.Edges = append(g.Edges, uint32(e))
	}
	if weighted {
		g.Weights = make([]uint32, 0, min(m, 1<<20))
		for i := uint64(0); i < m; i++ {
			wt, err := tok.uint()
			if err != nil {
				return nil, fmt.Errorf("gio: weight %d: %w", i, err)
			}
			if wt > maxEdgeWeight {
				// Weights are stored as uint32; an unchecked cast would
				// silently wrap large values.
				return nil, fmt.Errorf("gio: weight %d value %d exceeds the 32-bit limit %d",
					i, wt, uint64(maxEdgeWeight))
			}
			g.Weights = append(g.Weights, uint32(wt))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("gio: %w", err)
	}
	// The format stores a raw arc set; claiming it is undirected is only
	// sound if every arc has its reverse. Catch the mismatch here rather
	// than letting undirected-only algorithms silently misbehave.
	if !directed && !g.IsSymmetric() {
		return nil, fmt.Errorf("gio: adjacency is not symmetric; load it as directed and symmetrize")
	}
	return g, nil
}

// WriteAdjFile writes g to path in .adj format, atomically (temp file +
// fsync + rename; see WriteFileAtomic).
func WriteAdjFile(path string, g *graph.Graph) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return WriteAdj(w, g) })
}

// ReadAdjFile reads an .adj file.
func ReadAdjFile(path string, directed bool) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAdj(bufio.NewReaderSize(f, 1<<20), directed)
}

// tokenizer scans whitespace-separated tokens without per-token
// allocations.
type tokenizer struct {
	r   *bufio.Reader
	buf []byte
}

func newTokenizer(r io.Reader) *tokenizer {
	return &tokenizer{r: bufio.NewReaderSize(r, 1<<20)}
}

func (t *tokenizer) skipSpace() error {
	for {
		b, err := t.r.ReadByte()
		if err != nil {
			return err
		}
		if b != ' ' && b != '\n' && b != '\t' && b != '\r' {
			return t.r.UnreadByte()
		}
	}
}

func (t *tokenizer) word() (string, error) {
	if err := t.skipSpace(); err != nil {
		return "", err
	}
	t.buf = t.buf[:0]
	for {
		b, err := t.r.ReadByte()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return "", err
		}
		if b == ' ' || b == '\n' || b == '\t' || b == '\r' {
			break
		}
		t.buf = append(t.buf, b)
	}
	return string(t.buf), nil
}

func (t *tokenizer) uint() (uint64, error) {
	if err := t.skipSpace(); err != nil {
		return 0, err
	}
	var v uint64
	seen := false
	for {
		b, err := t.r.ReadByte()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		if b < '0' || b > '9' {
			if b == ' ' || b == '\n' || b == '\t' || b == '\r' {
				break
			}
			return 0, fmt.Errorf("unexpected byte %q in number", b)
		}
		v = v*10 + uint64(b-'0')
		seen = true
	}
	if !seen {
		return 0, io.ErrUnexpectedEOF
	}
	return v, nil
}
