package gio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pasgal/internal/graph"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" or "u v w"
// per line; lines starting with '#' or '%' are comments). n < 0 infers the
// vertex count as max id + 1.
func ReadEdgeList(r io.Reader, n int, directed bool) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	weighted := false
	maxID := uint32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("gio: line %d: need at least 2 fields", lineNo)
		}
		var u, v, w uint64
		if _, err := fmt.Sscan(f[0], &u); err != nil {
			return nil, fmt.Errorf("gio: line %d: %w", lineNo, err)
		}
		if _, err := fmt.Sscan(f[1], &v); err != nil {
			return nil, fmt.Errorf("gio: line %d: %w", lineNo, err)
		}
		if len(f) >= 3 {
			if _, err := fmt.Sscan(f[2], &w); err != nil {
				return nil, fmt.Errorf("gio: line %d: %w", lineNo, err)
			}
			weighted = true
		}
		// Ids MaxUint32 and above collide with the graph.None sentinel (and
		// would push n past the 32-bit limit); weights are stored as uint32.
		if u >= maxVertexCount || v >= maxVertexCount {
			return nil, fmt.Errorf("gio: line %d: vertex id %d exceeds the 32-bit limit %d",
				lineNo, max(u, v), uint64(maxVertexCount-1))
		}
		if w > maxEdgeWeight {
			return nil, fmt.Errorf("gio: line %d: weight %d exceeds the 32-bit limit %d",
				lineNo, w, uint64(maxEdgeWeight))
		}
		e := graph.Edge{U: uint32(u), V: uint32(v), W: uint32(w)}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		if len(edges) == 0 {
			n = 0
		} else {
			n = int(maxID) + 1
		}
	}
	return graph.FromEdges(n, edges, directed, graph.BuildOptions{Weighted: weighted}), nil
}

// WriteEdgeList writes each arc once as "u v" (or "u v w"), in CSR order.
// For symmetric graphs each undirected edge is written once (u < v).
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	if g.N > maxVertexCount {
		// The old uint32 loop bound silently wrapped here, emitting a
		// truncated file; same failure class the readers guard against.
		return fmt.Errorf("gio: n = %d exceeds the 32-bit vertex-id limit %d",
			g.N, uint64(maxVertexCount))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	for ui := 0; ui < g.N; ui++ {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			v := g.Edges[e]
			if !g.Directed && v < u {
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, g.Weights[e])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
