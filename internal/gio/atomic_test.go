package gio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// interruptWriter fails after passing through a fixed byte budget —
// the shape of a crash or full disk mid-write.
type interruptWriter struct {
	w      io.Writer
	budget int
}

var errInterrupted = errors.New("interrupted")

func (iw *interruptWriter) Write(p []byte) (int, error) {
	if len(p) > iw.budget {
		n, _ := iw.w.Write(p[:iw.budget])
		iw.budget = 0
		return n, errInterrupted
	}
	iw.budget -= len(p)
	return iw.w.Write(p)
}

// residue lists directory entries other than the expected file — any
// leftover temp files from failed atomic writes.
func residue(t *testing.T, dir, keep string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var extra []string
	for _, e := range ents {
		if e.Name() != keep {
			extra = append(extra, e.Name())
		}
	}
	return extra
}

// TestWritePZFileInterrupted is the satellite regression test: before
// the atomic write, WritePZFile opened the destination with os.Create —
// truncating the existing graph BEFORE writing, so any failure destroyed
// the old file. Now an interrupted write must leave the previous bytes
// untouched and no temp residue behind.
func TestWritePZFileInterrupted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.pz")
	g1 := graph.Compress(gen.Chain(50, true))
	if err := WritePZFile(path, g1); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt a rewrite partway through the payload.
	err = WriteFileAtomic(path, func(w io.Writer) error {
		return WritePZ(&interruptWriter{w: w, budget: 100}, graph.Compress(gen.Chain(500, true)))
	})
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("want interruption error, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination gone after failed write: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("failed write corrupted the existing file")
	}
	if extra := residue(t, dir, "g.pz"); len(extra) != 0 {
		t.Fatalf("temp residue after failed write: %v", extra)
	}
	// And the old file still parses.
	c, err := ReadPZFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 50 {
		t.Fatalf("n = %d after failed overwrite", c.NumVertices())
	}

	// A successful rewrite replaces the bytes and leaves no residue.
	if err := WritePZFile(path, graph.Compress(gen.Chain(500, true))); err != nil {
		t.Fatal(err)
	}
	c, err = ReadPZFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 500 {
		t.Fatalf("n = %d after successful overwrite", c.NumVertices())
	}
	if extra := residue(t, dir, "g.pz"); len(extra) != 0 {
		t.Fatalf("temp residue after successful write: %v", extra)
	}
}

// TestWriteFileAtomicNewFile: a failed write of a NEW path must not
// create the path at all.
func TestWriteFileAtomicNewFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.bin")
	err := WriteFileAtomic(path, func(w io.Writer) error { return errInterrupted })
	if !errors.Is(err, errInterrupted) {
		t.Fatalf("want write error, got %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed write created the destination: %v", err)
	}
	if extra := residue(t, dir, ""); len(extra) != 0 {
		t.Fatalf("temp residue: %v", extra)
	}
}

// TestWriteFileAtomicAdjBin: the adj and bin file writers route through
// the same helper and survive interruption identically.
func TestWriteFileAtomicAdjBin(t *testing.T) {
	for _, ext := range []string{"adj", "bin"} {
		t.Run(ext, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "g."+ext)
			g := gen.Chain(40, true)
			write := func(gg *graph.Graph) error {
				if ext == "adj" {
					return WriteAdjFile(path, gg)
				}
				return WriteBinFile(path, gg)
			}
			if err := write(g); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			err = WriteFileAtomic(path, func(w io.Writer) error {
				iw := &interruptWriter{w: w, budget: 16}
				if ext == "adj" {
					return WriteAdj(iw, gen.Chain(900, true))
				}
				return WriteBin(iw, gen.Chain(900, true))
			})
			if !errors.Is(err, errInterrupted) {
				t.Fatalf("want interruption, got %v", err)
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, after) {
				t.Fatal("interrupted write corrupted the file")
			}
			if extra := residue(t, dir, "g."+ext); len(extra) != 0 {
				t.Fatalf("temp residue: %v", extra)
			}
		})
	}
}

// TestWriteFileAtomicBadDir: a nonexistent directory errors cleanly.
func TestWriteFileAtomicBadDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing", "g.bin")
	err := WriteFileAtomic(path, func(w io.Writer) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want directory error, got %v", err)
	}
}
