package msbfs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/graph"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("msbfs: coalescer closed")

// DefaultMaxWait is the Coalescer's default flush latency bound.
const DefaultMaxWait = 2 * time.Millisecond

// CoalescerOptions tunes a Coalescer. The zero value selects defaults.
type CoalescerOptions struct {
	// MaxBatch flushes a batch as soon as this many requests are queued;
	// <= 0 selects LaneWidth (64), one full lane group. Values above 64
	// are allowed — the batch just spans multiple groups.
	MaxBatch int

	// MaxWait bounds how long a queued request waits for lane-mates before
	// a timer flushes a partial batch; <= 0 selects DefaultMaxWait.
	MaxWait time.Duration

	// Opt is threaded into every batch run. Opt.Ctx applies to the batch
	// as a whole; per-request deadlines go through Submit's ctx (which
	// only abandons the wait — the batch itself keeps running for the
	// lane-mates).
	Opt core.Options

	// Gate, when non-nil, brackets every batch run: it is called right
	// before the engine run and must return the matching release
	// function, which runs right after. A serving daemon uses it to
	// charge one scheduler admission slot per flushed batch rather than
	// one per queued query — the whole point of coalescing under
	// admission control. The gate takes no context and may block: a
	// flushed batch must run for its lane-mates regardless of any one
	// submitter's cancellation.
	Gate func() (release func())
}

// Coalescer is the batching front door for single-source callers: it
// queues concurrent BFS requests against one graph and flushes them as
// lane groups through Run, so independent callers share edge scans
// without coordinating. It is the admission path a serving daemon would
// put in front of the engine.
//
// Batching is group-commit: while the engine is idle, a batch flushes
// when it reaches MaxBatch requests or when the oldest queued request has
// waited MaxWait, whichever comes first. While a batch run is in flight,
// arrivals are NOT time-sliced into further small batches — they
// accumulate, and the finishing run drains the whole accumulated queue as
// its successor (spanning multiple lane groups if more than MaxBatch
// piled up). Under sustained concurrent load this drives the achieved
// batch width toward the client concurrency instead of toward
// arrival-rate x MaxWait. The flush runs on the goroutine that completed
// the batch (or the timer goroutine for partial batches); lane-mates
// block in Submit until their row is ready.
type Coalescer struct {
	g    graph.Adjacency
	opts CoalescerOptions

	mu      sync.Mutex
	queue   []request
	timer   *time.Timer
	timerOn bool
	running int // batch runs in flight; arrivals accumulate while > 0
	closed  bool

	// inflight tracks running flushes so Close can wait them out.
	inflight sync.WaitGroup

	statMu  sync.Mutex
	queries int64
	batches int64
}

type request struct {
	src  uint32
	done chan result
}

type result struct {
	dist []uint32
	err  error
}

// NewCoalescer returns a Coalescer serving BFS queries against g (either
// graph representation).
func NewCoalescer(g graph.Adjacency, opts CoalescerOptions) *Coalescer {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = LaneWidth
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = DefaultMaxWait
	}
	return &Coalescer{g: g, opts: opts}
}

// Submit queues one BFS source and blocks until its distance row is ready
// (hop distances from src; graph.InfDist marks unreachable vertices). A
// done ctx abandons the wait with ctx's cause; the batch itself still
// completes for the other lanes. Safe for concurrent use.
func (c *Coalescer) Submit(ctx context.Context, src uint32) ([]uint32, error) {
	if n := c.g.NumVertices(); int(src) >= n {
		return nil, fmt.Errorf("msbfs: source %d out of range [0, %d)", src, n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	done := make(chan result, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.queue = append(c.queue, request{src: src, done: done})
	var batch []request
	switch {
	case c.running > 0:
		// Group-commit: a batch is running; the request rides the queue
		// and the finishing run drains it. No timer needed — the drain
		// is triggered by completion, not by time.
	case len(c.queue) >= c.opts.MaxBatch:
		batch = c.takeLocked()
	case !c.timerOn:
		c.timerOn = true
		if c.timer == nil {
			c.timer = time.AfterFunc(c.opts.MaxWait, c.flushTimer)
		} else {
			c.timer.Reset(c.opts.MaxWait)
		}
	}
	c.mu.Unlock()
	if batch != nil {
		// The request that filled the batch runs it: no handoff latency,
		// and back-pressure lands on the caller generating the load.
		c.runBatch(batch)
	}
	select {
	case r := <-done:
		return r.dist, r.err
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// Close flushes any queued requests, waits for in-flight batches, and
// fails all future Submits with ErrClosed.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	batch := c.takeLocked()
	c.mu.Unlock()
	if batch != nil {
		c.runBatch(batch)
	}
	c.inflight.Wait()
}

// Stats reports how many queries were accepted and how many batch runs
// served them; queries/batches is the achieved scan-sharing factor.
func (c *Coalescer) Stats() (queries, batches int64) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.queries, c.batches
}

// takeLocked claims the queued requests (nil if none), disarms the
// pending timer, and marks a run in flight. Caller holds c.mu and must
// runBatch any non-nil return.
func (c *Coalescer) takeLocked() []request {
	if c.timerOn {
		c.timer.Stop() // best effort; a fired flushTimer finds an empty queue
		c.timerOn = false
	}
	if len(c.queue) == 0 {
		return nil
	}
	batch := c.queue
	c.queue = nil
	c.running++
	c.inflight.Add(1)
	return batch
}

func (c *Coalescer) flushTimer() {
	c.mu.Lock()
	c.timerOn = false
	var batch []request
	// While a run is in flight its completion drains the queue; flushing
	// here would time-slice the accumulating group.
	if c.running == 0 {
		batch = c.takeLocked()
	}
	c.mu.Unlock()
	if batch != nil {
		c.runBatch(batch)
	}
}

// runBatch runs batch and then, group-commit style, any requests that
// accumulated while it was running — as one successor batch each round,
// until the queue drains.
func (c *Coalescer) runBatch(batch []request) {
	for batch != nil {
		c.runOne(batch)
		c.mu.Lock()
		c.running--
		batch = nil
		if !c.closed {
			batch = c.takeLocked()
		}
		c.mu.Unlock()
	}
}

func (c *Coalescer) runOne(batch []request) {
	defer c.inflight.Done()
	srcs := make([]uint32, len(batch))
	for i, r := range batch {
		srcs[i] = r.src
	}
	if c.opts.Gate != nil {
		release := c.opts.Gate()
		defer release()
	}
	rows, _, err := Run(c.g, srcs, c.opts.Opt)
	c.statMu.Lock()
	c.queries += int64(len(batch))
	c.batches++
	c.statMu.Unlock()
	for i, r := range batch {
		if err != nil {
			r.done <- result{err: err}
		} else {
			r.done <- result{dist: rows[i]}
		}
	}
}
