package msbfs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/seq"
)

func TestCoalescerSingleQuery(t *testing.T) {
	g := gen.Chain(500, true)
	c := NewCoalescer(g, CoalescerOptions{MaxWait: time.Millisecond})
	defer c.Close()
	dist, err := c.Submit(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.BFS(g, 3)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

// TestCoalescerBatchesConcurrentQueries pins the whole point of the
// Coalescer: many concurrent submitters share far fewer engine runs, and
// every one still gets its own correct row.
func TestCoalescerBatchesConcurrentQueries(t *testing.T) {
	g := gen.ER(800, 4000, true, 33)
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 16, MaxWait: 50 * time.Millisecond})
	defer c.Close()
	const queries = 64
	var wg sync.WaitGroup
	errs := make([]error, queries)
	dists := make([][]uint32, queries)
	for i := 0; i < queries; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			dists[i], errs[i] = c.Submit(context.Background(), uint32(i*11%g.N))
		}()
	}
	wg.Wait()
	for i := 0; i < queries; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want := seq.BFS(g, uint32(i*11%g.N))
		for v := range want {
			if dists[i][v] != want[v] {
				t.Fatalf("query %d: dist[%d] = %d, want %d", i, v, dists[i][v], want[v])
			}
		}
	}
	q, b := c.Stats()
	if q != queries {
		t.Fatalf("Stats queries = %d, want %d", q, queries)
	}
	if b < 1 || b > queries {
		t.Fatalf("Stats batches = %d out of range [1, %d]", b, queries)
	}
}

// TestCoalescerTimerFlush: a lone request must not wait for lane-mates
// that never come — the MaxWait timer flushes it.
func TestCoalescerTimerFlush(t *testing.T) {
	g := gen.Chain(100, false)
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 64, MaxWait: 2 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	dist, err := c.Submit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[99] != 99 {
		t.Fatalf("dist[99] = %d, want 99", dist[99])
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("single query took %v; timer flush did not fire", waited)
	}
	if _, b := c.Stats(); b != 1 {
		t.Fatalf("batches = %d, want 1", b)
	}
}

func TestCoalescerValidatesSource(t *testing.T) {
	g := gen.Chain(10, false)
	c := NewCoalescer(g, CoalescerOptions{})
	defer c.Close()
	if _, err := c.Submit(context.Background(), 10); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	// The bad submit must not have left a queued request behind.
	if q, _ := c.Stats(); q != 0 {
		t.Fatalf("queries = %d after a rejected submit, want 0", q)
	}
}

// TestCoalescerSubmitCtxAbandon: a caller whose ctx dies while waiting
// gets the ctx cause; the coalescer itself stays usable.
func TestCoalescerSubmitCtxAbandon(t *testing.T) {
	g := gen.Chain(100, false)
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 64, MaxWait: time.Hour})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Submit(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A later submit on a live ctx still works (the abandoned request
	// flushes with this batch or the hour timer; MaxBatch 1 forces it now).
	c2 := NewCoalescer(g, CoalescerOptions{MaxBatch: 1})
	defer c2.Close()
	if _, err := c2.Submit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescerBatchCtxCancel: a canceled Opt.Ctx fails the whole batch
// with the engine's typed error, delivered to every submitter.
func TestCoalescerBatchCtxCancel(t *testing.T) {
	g := gen.Chain(100, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 1, Opt: core.Options{Ctx: ctx}})
	defer c.Close()
	if _, err := c.Submit(context.Background(), 0); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
}

// TestCoalescerClose: Close flushes queued work, then fails future
// submits with ErrClosed.
func TestCoalescerClose(t *testing.T) {
	g := gen.Chain(100, false)
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 64, MaxWait: time.Hour})
	var wg sync.WaitGroup
	wg.Add(1)
	var dist []uint32
	var err error
	go func() {
		defer wg.Done()
		dist, err = c.Submit(context.Background(), 1)
	}()
	// Wait until the request is queued, then Close must flush it.
	for {
		time.Sleep(time.Millisecond)
		c.mu.Lock()
		queued := len(c.queue)
		c.mu.Unlock()
		if queued == 1 {
			break
		}
	}
	c.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("queued request failed on Close: %v", err)
	}
	if dist[1] != 0 {
		t.Fatalf("dist[1] = %d, want 0", dist[1])
	}
	if _, err := c.Submit(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v after Close, want ErrClosed", err)
	}
	c.Close() // idempotent
}

// TestStressCoalescer drives the coalescer from many goroutines at small
// MaxBatch/MaxWait for the -race tier: submit path, timer path, and
// stats must all be clean under contention.
func TestStressCoalescer(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.SocialRMAT(8, 8, true, 77)
	c := NewCoalescer(g, CoalescerOptions{MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	defer c.Close()
	want := make(map[uint32][]uint32)
	for s := 0; s < 16; s++ {
		want[uint32(s)] = seq.BFS(g, uint32(s))
	}
	const goroutines = 12
	const perG = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perG; q++ {
				s := uint32((w*perG + q) % 16)
				dist, err := c.Submit(context.Background(), s)
				if err != nil {
					errs <- err
					return
				}
				for v := range want[s] {
					if dist[v] != want[s][v] {
						errs <- errors.New("wrong distance row under stress")
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	for w := 0; w < goroutines; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	q, b := c.Stats()
	if q != goroutines*perG {
		t.Fatalf("queries = %d, want %d", q, goroutines*perG)
	}
	if b < 1 {
		t.Fatal("no batches recorded")
	}
	t.Logf("coalescing factor: %d queries / %d batches = %.1fx", q, b, float64(q)/float64(b))
}

// TestStressBatchedRuns runs concurrent independent multi-group batches
// on a shared graph for the -race tier: the engine's state is per-call,
// so runs must not interfere.
func TestStressBatchedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.ER(2000, 8000, true, 55)
	srcs := pickSources(g, 65)
	want, _, err := Run(g, srcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			rows, _, err := Run(g, srcs, core.Options{})
			if err != nil {
				errs <- err
				return
			}
			for l := range want {
				for v := range want[l] {
					if rows[l][v] != want[l][v] {
						errs <- errors.New("concurrent batched runs interfered")
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoalescerGate: the Gate hook brackets every batch run exactly once
// (acquire before the engine runs, release after), so a daemon charging
// one admission slot per flushed batch sees balanced accounting and a
// concurrency level bounded by the number of concurrent batches — not
// the number of queued queries.
func TestCoalescerGate(t *testing.T) {
	g := gen.Chain(300, true)
	var mu sync.Mutex
	var acquires, releases, inGate int
	maxInGate := 0
	c := NewCoalescer(g, CoalescerOptions{
		MaxBatch: 4,
		MaxWait:  time.Millisecond,
		Gate: func() func() {
			mu.Lock()
			acquires++
			inGate++
			if inGate > maxInGate {
				maxInGate = inGate
			}
			mu.Unlock()
			return func() {
				mu.Lock()
				releases++
				inGate--
				mu.Unlock()
			}
		},
	})
	const queries = 16
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		src := uint32(i % 7)
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist, err := c.Submit(context.Background(), src)
			if err != nil {
				t.Errorf("Submit(%d): %v", src, err)
				return
			}
			want := seq.BFS(g, src)
			for v := range want {
				if dist[v] != want[v] {
					t.Errorf("src %d: dist[%d] = %d, want %d", src, v, dist[v], want[v])
					return
				}
			}
		}()
	}
	wg.Wait()
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if acquires == 0 || acquires != releases {
		t.Fatalf("gate accounting unbalanced: %d acquires, %d releases", acquires, releases)
	}
	if acquires > queries {
		t.Fatalf("gate entered %d times for %d queries: batches did not coalesce", acquires, queries)
	}
	_, batches := c.Stats()
	if int64(acquires) != batches {
		t.Fatalf("gate entered %d times but %d batches ran", acquires, batches)
	}
}
