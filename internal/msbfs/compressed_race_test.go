package msbfs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// The -race tier for the compressed MS-BFS scan specializations: the
// per-chunk decode scratch in the push scan and the cursor state in the
// pull scan are the two places a sharing bug between concurrent lanes
// (or concurrent batched runs) would hide from single-threaded tests.

// TestStressCompressedBatchedRuns fires several batched runs at one
// shared compressed graph concurrently — each a full 65-source batch so
// both lane groups and both scan directions execute — and checks every
// lane against the sequential oracle.
func TestStressCompressedBatchedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.SocialRMAT(11, 8, true, 77)
	c := graph.Compress(g)
	srcs := make([]uint32, 65)
	for i := range srcs {
		srcs[i] = uint32((i * 37) % g.N)
	}
	oracle := make(map[uint32][]uint32, len(srcs))
	for _, s := range srcs {
		if _, ok := oracle[s]; !ok {
			oracle[s] = seq.BFS(g, s)
		}
	}
	const runs = 6
	var wg sync.WaitGroup
	errc := make(chan string, runs)
	for r := 0; r < runs; r++ {
		opt := core.Options{}
		if r%2 == 1 {
			opt.DisableDirectionOpt = true
		}
		wg.Add(1)
		go func(opt core.Options) {
			defer wg.Done()
			rows, _, err := Run(c, srcs, opt)
			if err != nil {
				errc <- err.Error()
				return
			}
			for i, s := range srcs {
				want := oracle[s]
				for v := range want {
					if rows[i][v] != want[v] {
						errc <- "lane distance mismatch"
						return
					}
				}
			}
		}(opt)
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestCancelCompressedMidRun cancels concurrent compressed batched runs
// at arbitrary points: every run ends in nil (with oracle-correct rows)
// or the typed cancellation error with no rows.
func TestCancelCompressedMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.Chain(30_000, true)
	c := graph.Compress(g)
	srcs := []uint32{0, 1, 2, 3}
	want, _, err := Run(c, srcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%8) * 200 * time.Microsecond)
				cancel()
			}()
			rows, _, err := Run(c, srcs, core.Options{Ctx: ctx, Tau: 1})
			switch {
			case err == nil:
				for l := range want {
					for v := range want[l] {
						if rows[l][v] != want[l][v] {
							errs <- errors.New("completed run returned wrong rows")
							return
						}
					}
				}
				errs <- nil
			case errors.Is(err, core.ErrCanceled):
				if rows != nil {
					errs <- errors.New("canceled run returned rows")
					return
				}
				errs <- nil
			default:
				errs <- err
			}
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
