package msbfs

import (
	"testing"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
	"pasgal/internal/trace"
)

// testShapes is the package-local shape matrix: small enough for oracle
// sweeps, varied enough to exercise push, pull, cycles, disconnection, and
// directed asymmetry. The big cross-shape sweep lives in internal/bench.
func testShapes() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"chain-directed":   gen.Chain(300, true),
		"chain-undirected": gen.Chain(300, false),
		"cycle":            gen.Cycle(257, true),
		"star":             gen.Star(200),
		"tree":             gen.CompleteBinaryTree(255),
		"er-sparse":        gen.ER(400, 800, true, 7),
		"er-dense":         gen.ER(150, 3000, false, 8), // dense => pull rounds
		"rmat":             gen.SocialRMAT(8, 8, true, 9),
		"grid":             gen.Grid2D(17, 19, false, 12),
		"islands":          gen.ER(300, 260, false, 10), // likely disconnected
		"single-vertex":    gen.Chain(1, false),
	}
}

// batchSizes are the lane-boundary widths the engine must get right: a
// single lane, a partial group, a full group, one lane past it, and two
// lanes past two groups.
var batchSizes = []int{1, 3, 64, 65, 130}

// pickSources returns b deterministic source ids on g, deliberately
// including duplicates once b exceeds a handful.
func pickSources(g *graph.Graph, b int) []uint32 {
	srcs := make([]uint32, b)
	for i := range srcs {
		srcs[i] = uint32((i * 37) % g.N)
	}
	if b > 4 {
		srcs[b-1] = srcs[0] // explicit duplicate across the batch
	}
	return srcs
}

func TestRunMatchesSequentialOracle(t *testing.T) {
	for name, g := range testShapes() {
		t.Run(name, func(t *testing.T) {
			for _, b := range batchSizes {
				srcs := pickSources(g, b)
				rows, met, err := Run(g, srcs, core.Options{})
				if err != nil {
					t.Fatalf("B=%d: %v", b, err)
				}
				if len(rows) != b {
					t.Fatalf("B=%d: got %d rows", b, len(rows))
				}
				for i, s := range srcs {
					want := seq.BFS(g, s)
					for v := range want {
						if rows[i][v] != want[v] {
							t.Fatalf("B=%d lane %d (src %d): dist[%d] = %d, want %d",
								b, i, s, v, rows[i][v], want[v])
						}
					}
				}
				if met == nil {
					t.Fatalf("B=%d: nil Metrics", b)
				}
			}
		})
	}
}

func TestRunReachableMatchesOracle(t *testing.T) {
	for name, g := range testShapes() {
		t.Run(name, func(t *testing.T) {
			for _, b := range batchSizes {
				srcs := pickSources(g, b)
				rows, _, err := RunReachable(g, srcs, core.Options{})
				if err != nil {
					t.Fatalf("B=%d: %v", b, err)
				}
				for i, s := range srcs {
					want := seq.BFS(g, s)
					for v := range want {
						if rows[i][v] != (want[v] != graph.InfDist) {
							t.Fatalf("B=%d lane %d (src %d): reach[%d] = %v, want %v",
								b, i, s, v, rows[i][v], want[v] != graph.InfDist)
						}
					}
				}
			}
		})
	}
}

func TestRunPointToPointMatchesOracle(t *testing.T) {
	for name, g := range testShapes() {
		t.Run(name, func(t *testing.T) {
			for _, b := range batchSizes {
				pairs := make([][2]uint32, b)
				for i := range pairs {
					pairs[i] = [2]uint32{
						uint32((i * 37) % g.N),
						uint32((i*53 + 11) % g.N),
					}
				}
				if b > 2 {
					pairs[1][1] = pairs[1][0] // src == dst lane: distance 0
				}
				dists, _, err := RunPointToPoint(g, pairs, core.Options{})
				if err != nil {
					t.Fatalf("B=%d: %v", b, err)
				}
				for i, p := range pairs {
					want := seq.BFS(g, p[0])[p[1]]
					if dists[i] != want {
						t.Fatalf("B=%d pair %d (%d->%d): dist = %d, want %d",
							b, i, p[0], p[1], dists[i], want)
					}
				}
			}
		})
	}
}

// TestRunDirectionOptEquivalence pins that the pull route is a pure
// optimization: forcing all-push (DisableDirectionOpt) and favoring pull
// (tiny DenseFrac) must produce identical rows.
func TestRunDirectionOptEquivalence(t *testing.T) {
	g := gen.SocialRMAT(9, 8, true, 21)
	srcs := pickSources(g, 65)
	push, _, err := Run(g, srcs, core.Options{DisableDirectionOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	pull, met, err := Run(g, srcs, core.Options{DenseFrac: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if met.BottomUp == 0 {
		t.Fatal("DenseFrac=1e-9 run took no bottom-up rounds; pull route untested")
	}
	for i := range push {
		for v := range push[i] {
			if push[i][v] != pull[i][v] {
				t.Fatalf("lane %d vertex %d: push %d != pull %d", i, v, push[i][v], pull[i][v])
			}
		}
	}
}

func TestRunSourceValidation(t *testing.T) {
	g := gen.Chain(10, false)
	if _, _, err := Run(g, []uint32{0, 10}, core.Options{}); err == nil {
		t.Fatal("out-of-range source accepted by Run")
	}
	if _, _, err := RunReachable(g, []uint32{99}, core.Options{}); err == nil {
		t.Fatal("out-of-range source accepted by RunReachable")
	}
	if _, _, err := RunPointToPoint(g, [][2]uint32{{0, 10}}, core.Options{}); err == nil {
		t.Fatal("out-of-range destination accepted by RunPointToPoint")
	}
	if _, _, err := RunPointToPoint(g, [][2]uint32{{10, 0}}, core.Options{}); err == nil {
		t.Fatal("out-of-range source accepted by RunPointToPoint")
	}
}

func TestRunEmptyBatch(t *testing.T) {
	g := gen.Chain(10, false)
	rows, met, err := Run(g, nil, core.Options{})
	if err != nil || len(rows) != 0 || met == nil {
		t.Fatalf("empty batch: rows=%v met=%v err=%v", rows, met, err)
	}
	reach, _, err := RunReachable(g, []uint32{}, core.Options{})
	if err != nil || len(reach) != 0 {
		t.Fatalf("empty reachable batch: rows=%v err=%v", reach, err)
	}
	ptp, _, err := RunPointToPoint(g, nil, core.Options{})
	if err != nil || len(ptp) != 0 {
		t.Fatalf("empty ptp batch: dists=%v err=%v", ptp, err)
	}
}

// TestRunTraceAccounting pins the observability contract: one phase per
// lane group, round events labeled "msbfs" matching Metrics.Rounds, and a
// non-zero CtrLaneScans on any graph with edges.
func TestRunTraceAccounting(t *testing.T) {
	g := gen.ER(500, 2000, false, 11)
	tr := trace.New()
	srcs := pickSources(g, 130) // three groups: 64 + 64 + 2
	_, met, err := Run(g, srcs, core.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if met.Phases != 3 {
		t.Fatalf("Phases = %d for a 130-source batch, want 3 groups", met.Phases)
	}
	if got := tr.CounterValue(trace.CtrPhases); got != met.Phases {
		t.Fatalf("CtrPhases = %d, Metrics.Phases = %d", got, met.Phases)
	}
	if got := tr.CounterValue(trace.CtrRounds); got != met.Rounds {
		t.Fatalf("CtrRounds = %d, Metrics.Rounds = %d", got, met.Rounds)
	}
	if scans := tr.CounterValue(trace.CtrLaneScans); scans == 0 {
		t.Fatal("CtrLaneScans = 0 on a graph with edges")
	}
	if met.EdgesVisited == 0 {
		t.Fatal("EdgesVisited = 0 on a graph with edges")
	}
	for _, ev := range tr.EventsFor("msbfs") {
		if ev.Kind == trace.KindRound && ev.B <= 0 {
			t.Fatalf("round event with non-positive frontier: %+v", ev)
		}
	}
}

// TestPushIntrinsicRegression pins the exact shape that exposed a
// miscompile of the atomic.Uint64.Or-with-result intrinsic inside the
// push loop on go1.24.0/amd64: an 8-vertex digraph, a 15-source batch
// with duplicates, all-push routing. Before the engine switched to a
// Load/CAS loop, lanes 7+ silently lost every vertex past their source
// (only at full optimization — -N or -l masked it). Keep this test even
// after toolchain upgrades; it is nearly free.
func TestPushIntrinsicRegression(t *testing.T) {
	edges := []graph.Edge{
		{U: 4, V: 0}, {U: 0, V: 6}, {U: 2, V: 4},
		{U: 7, V: 0}, {U: 6, V: 3}, {U: 1, V: 0},
	}
	g := graph.FromEdges(8, edges, true, graph.BuildOptions{})
	srcs := []uint32{4, 2, 3, 2, 4, 7, 3, 0, 5, 5, 1, 0, 5, 4, 0}
	for _, opt := range []core.Options{{DisableDirectionOpt: true}, {}} {
		rows, _, err := Run(g, srcs, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range srcs {
			want := seq.BFS(g, s)
			for v := range want {
				if rows[i][v] != want[v] {
					t.Fatalf("lane %d (src %d): dist[%d] = %d, want %d (DisableDirectionOpt=%v)",
						i, s, v, rows[i][v], want[v], opt.DisableDirectionOpt)
				}
			}
		}
	}
}

// TestRunSelfLoopsAndMultiEdges feeds the engine a raw (unmerged) graph.
func TestRunSelfLoopsAndMultiEdges(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 0}, {U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 2},
		{U: 2, V: 2}, {U: 2, V: 3}, {U: 3, V: 1}, {U: 3, V: 1},
	}
	g := graph.FromEdges(5, edges, true, graph.BuildOptions{KeepSelfLoops: true, KeepDuplicates: true})
	rows, _, err := Run(g, []uint32{0, 4, 0}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []uint32{0, 4, 0} {
		want := seq.BFS(g, s)
		for v := range want {
			if rows[i][v] != want[v] {
				t.Fatalf("lane %d: dist[%d] = %d, want %d", i, v, rows[i][v], want[v])
			}
		}
	}
}
