// Package msbfs is the batched multi-source traversal engine (MS-BFS): it
// runs up to 64 breadth-first searches simultaneously over one shared edge
// scan, which is the query shape of a serving system — thousands of
// point-to-point / reachability / distance queries per second against the
// same in-memory graph — rather than the single-run latency shape the rest
// of the library optimizes.
//
// # Lane layout
//
// Sources are split into groups of 64 lanes. Within a group every vertex
// carries one uint64 word per state array: bit l of seen[v] means "lane l
// has reached v", bit l of cur[v] means "v is on lane l's current
// frontier". A push round advances the whole group with a single scan of
// the frontier's out-edges:
//
//	next[w] |= cur[u] &^ seen[w]   // one OR advances up to 64 traversals
//
// and a pull (bottom-up) round — taken past the same DenseFrac frontier
// heuristic scalar BFS uses — has every unreached vertex union its
// in-neighbors' frontier words instead, with no atomics at all. Rounds are
// level-synchronous: distances settle at the round barrier, so hop d of
// every lane is final before hop d+1 starts.
//
// The engine plugs into the library substrate end to end: loops run on
// internal/parallel with chunk-claim cancellation (ForRangeCancel),
// core.Options is normalized on entry, Options.Ctx cancels at every
// round and group boundary, and the run reports core.Metrics plus trace
// counters (CtrLaneScans counts shared edge scans; each advanced up to 64
// lanes). See docs/BATCHED.md.
//
// The batching front door for single-source callers is the Coalescer.
package msbfs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// LaneWidth is the number of traversals one group word advances at once.
const LaneWidth = 64

// Run performs a batched BFS: it returns one hop-distance row per source
// (row i is the distances from sources[i]; graph.InfDist marks unreachable
// vertices), exactly as if core.BFS had been looped over the sources.
// Duplicate sources are allowed (each occupies its own lane and gets its
// own row). A source id at or past the vertex count is reported as an
// error before any work. Both graph representations are accepted.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation Run returns
// (nil, partial Metrics, ErrCanceled/ErrDeadline) — never a partial batch.
func Run(a graph.Adjacency, sources []uint32, opt core.Options) ([][]uint32, *core.Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := core.NewMetrics(opt, "msbfs")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	if err := validateSources(a, sources); err != nil {
		return nil, met, err
	}
	out := make([][]uint32, len(sources))
	if len(sources) == 0 {
		return out, met, cl.Poll()
	}
	n := a.NumVertices()
	// One flat backing array: B rows land contiguously, one allocation.
	flat := make([]uint32, len(sources)*n)
	parallel.Fill(flat, graph.InfDist)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	st := newState(n)
	for base := 0; base < len(sources); base += LaneWidth {
		// Group boundary: stop between lane groups, not just between rounds.
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.AddPhase()
		hi := min(base+LaneWidth, len(sources))
		if base > 0 {
			st.reset()
		}
		sk := &sink{dist: out[base:hi]}
		if err := runGroup(a, st, sources[base:hi], sk, opt, met, cl); err != nil {
			return nil, met, err
		}
	}
	// Final check before handing the batch back; see core.BFS.
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	return out, met, nil
}

// RunReachable is the reachability form of Run: row i marks every vertex
// reachable from sources[i], matching a looped core.Reachable with a
// single source per call. It skips distance bookkeeping, so it is the
// cheapest batched query.
func RunReachable(a graph.Adjacency, sources []uint32, opt core.Options) ([][]bool, *core.Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := core.NewMetrics(opt, "msbfs")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	if err := validateSources(a, sources); err != nil {
		return nil, met, err
	}
	out := make([][]bool, len(sources))
	if len(sources) == 0 {
		return out, met, cl.Poll()
	}
	n := a.NumVertices()
	flat := make([]bool, len(sources)*n)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	st := newState(n)
	for base := 0; base < len(sources); base += LaneWidth {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.AddPhase()
		hi := min(base+LaneWidth, len(sources))
		if base > 0 {
			st.reset()
		}
		sk := &sink{reach: out[base:hi]}
		if err := runGroup(a, st, sources[base:hi], sk, opt, met, cl); err != nil {
			return nil, met, err
		}
	}
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	return out, met, nil
}

// RunPointToPoint answers a batch of (src, dst) hop-distance queries:
// result i is the number of edges on a shortest src->dst path of pairs[i]
// (graph.InfDist when dst is unreachable). It is the unweighted, batched
// counterpart of core.PointToPoint: a lane stops spreading the round after
// its destination settles, and a group stops as soon as every lane is done.
func RunPointToPoint(a graph.Adjacency, pairs [][2]uint32, opt core.Options) ([]uint32, *core.Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := core.NewMetrics(opt, "msbfs")
	cl := core.NewCanceler(opt, met)
	defer cl.Close()
	n := a.NumVertices()
	for i, p := range pairs {
		if int(p[0]) >= n {
			return nil, met, fmt.Errorf("msbfs: pair %d source %d out of range [0, %d)", i, p[0], n)
		}
		if int(p[1]) >= n {
			return nil, met, fmt.Errorf("msbfs: pair %d destination %d out of range [0, %d)", i, p[1], n)
		}
	}
	out := make([]uint32, len(pairs))
	parallel.Fill(out, graph.InfDist)
	if len(pairs) == 0 {
		return out, met, cl.Poll()
	}
	st := newState(n)
	srcs := make([]uint32, 0, LaneWidth)
	dsts := make([]uint32, 0, LaneWidth)
	for base := 0; base < len(pairs); base += LaneWidth {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		met.AddPhase()
		hi := min(base+LaneWidth, len(pairs))
		if base > 0 {
			st.reset()
		}
		srcs, dsts = srcs[:0], dsts[:0]
		for _, p := range pairs[base:hi] {
			srcs = append(srcs, p[0])
			dsts = append(dsts, p[1])
		}
		sk := &sink{targets: dsts, ptp: out[base:hi]}
		if err := runGroup(a, st, srcs, sk, opt, met, cl); err != nil {
			return nil, met, err
		}
	}
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	return out, met, nil
}

func validateSources(a graph.Adjacency, sources []uint32) error {
	n := a.NumVertices()
	for i, s := range sources {
		if int(s) >= n {
			return fmt.Errorf("msbfs: source %d (index %d) out of range [0, %d)", s, i, n)
		}
	}
	return nil
}

// attachRuntimeTracer mirrors core's entry-point hook: install opt.Tracer
// as the parallel runtime's tracer for the duration of the call when
// opt.TraceScheduler asks for it.
func attachRuntimeTracer(opt core.Options) func() {
	if !opt.TraceScheduler || opt.Tracer == nil {
		return func() {}
	}
	prev := parallel.SetTracer(opt.Tracer)
	return func() { parallel.SetTracer(prev) }
}

// state is the per-group lane storage, reused across a run's groups.
// seen and cur are plain words: both are written only at round barriers
// (settle runs each vertex in exactly one chunk) and read-only inside the
// scan loops, so the rounds' join is the only synchronization they need.
// next is the one cross-task accumulator and is routed through atomics.
type state struct {
	n    int
	seen []uint64
	cur  []uint64
	next []atomic.Uint64
}

func newState(n int) *state {
	return &state{
		n:    n,
		seen: make([]uint64, n),
		cur:  make([]uint64, n),
		next: make([]atomic.Uint64, n),
	}
}

// reset clears the lane words for the next group. next is already zero on
// every completed round's exit, but an early-terminated point-to-point
// group (or a cancellation mid-settle) can leave bits behind in any of the
// three arrays, so all of them are wiped.
func (st *state) reset() {
	parallel.Fill(st.seen, 0)
	parallel.Fill(st.cur, 0)
	parallel.ForRange(st.n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st.next[i].Store(0)
		}
	})
}

// sink receives settled (vertex, lane bits, hop distance) triples. Exactly
// one of dist/reach/ptp is active per run kind.
type sink struct {
	dist    [][]uint32 // distance rows, one per lane
	reach   [][]bool   // reachability rows, one per lane
	targets []uint32   // point-to-point: destination per lane
	ptp     []uint32   // point-to-point: result per lane

	// remaining holds the lanes still searching in point-to-point mode;
	// settle workers clear bits concurrently, so it is atomic.
	remaining atomic.Uint64
}

// settle records that the lanes in bs reached v at hop distance d. Called
// exactly once per (group, vertex, round), from a single settle-loop chunk.
func (sk *sink) settle(v uint32, bs uint64, d uint32) {
	switch {
	case sk.dist != nil:
		for b := bs; b != 0; b &= b - 1 {
			sk.dist[bits.TrailingZeros64(b)][v] = d
		}
	case sk.reach != nil:
		for b := bs; b != 0; b &= b - 1 {
			sk.reach[bits.TrailingZeros64(b)][v] = true
		}
	}
	if sk.targets != nil {
		for b := bs; b != 0; b &= b - 1 {
			l := bits.TrailingZeros64(b)
			if sk.targets[l] == v {
				sk.ptp[l] = d
				// CAS rather than the go1.23 And intrinsic; see the push
				// loop's note on the Or intrinsic miscompile.
				for {
					old := sk.remaining.Load()
					if sk.remaining.CompareAndSwap(old, old&^(uint64(1)<<l)) {
						break
					}
				}
			}
		}
	}
}

// runGroup runs one <= 64-lane group to completion (or cancellation). st
// must be zeroed on entry.
//
// Like core.BFS, the group loop is representation-free and the two lane
// scans (push over out-edges, pull over in-edges) are built once per group
// by a type switch, so each representation keeps a monomorphic inner loop:
// plain CSR slices stay plain slice ranges, and the compressed form
// bulk-decodes push lists into task scratch while pull walks a decode
// cursor that stops as soon as every missing lane found a parent.
func runGroup(a graph.Adjacency, st *state, srcs []uint32, sk *sink, opt core.Options,
	met *core.Metrics, cl *core.Canceler) error {
	n := a.NumVertices()
	full := ^uint64(0) >> (LaneWidth - len(srcs))
	sk.remaining.Store(full)
	denseCut := opt.DenseCut(n)
	tr := opt.Tracer

	bag := hashbag.New(max(64, 2*len(srcs)))
	bag.SetTracer(tr)

	var pull func(active uint64)
	var push func(front []uint32, active uint64)
	switch g := a.(type) {
	case *graph.Graph:
		var in *graph.Graph
		if denseCut != math.MaxInt64 {
			in = g.Transpose() // in-neighbors for pull rounds; == g if undirected
		}
		pull = func(active uint64) {
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var scans int64
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					want := active &^ st.seen[v]
					if want == 0 {
						continue
					}
					var acc uint64
					for _, u := range in.Neighbors(v) {
						scans++
						acc |= st.cur[u]
						if acc&want == want {
							break // every missing lane found a parent
						}
					}
					if nb := acc & want; nb != 0 {
						st.next[v].Store(nb)
						bag.Insert(v)
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
		push = func(front []uint32, active uint64) {
			parallel.ForRangeCancel(cl.Token(), len(front), 16, func(lo, hi int) {
				var scans int64
				for i := lo; i < hi; i++ {
					u := front[i]
					fu := st.cur[u] & active
					if fu == 0 {
						continue
					}
					for _, w := range g.Neighbors(u) {
						scans++
						diff := fu &^ st.seen[w]
						if diff == 0 {
							continue
						}
						// Cheap pre-check dodges the contended RMW when every
						// new bit is already accumulated.
						if diff&^st.next[w].Load() == 0 {
							continue
						}
						// Keep this a Load/CAS loop, not st.next[w].Or(diff):
						// the go1.23 Or-with-result intrinsic miscompiles
						// inside this loop on the pinned go1.24.0/amd64
						// toolchain (lane words silently vanish; see
						// TestPushIntrinsicRegression), and CAS keeps the
						// module's language floor at go1.22.
						for {
							old := st.next[w].Load()
							if st.next[w].CompareAndSwap(old, old|diff) {
								if old == 0 {
									bag.Insert(w) // first setter owns the list entry
								}
								break
							}
						}
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
	case *graph.Compressed:
		var in *graph.Compressed
		if denseCut != math.MaxInt64 {
			in = g.Transpose()
		}
		pull = func(active uint64) {
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var scans int64
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					want := active &^ st.seen[v]
					if want == 0 {
						continue
					}
					var acc uint64
					it := in.Arcs(v)
					for {
						u, ok := it.Next()
						if !ok {
							break
						}
						scans++
						acc |= st.cur[u]
						if acc&want == want {
							break
						}
					}
					if nb := acc & want; nb != 0 {
						st.next[v].Store(nb)
						bag.Insert(v)
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
		push = func(front []uint32, active uint64) {
			parallel.ForRangeCancel(cl.Token(), len(front), 16, func(lo, hi int) {
				var scans int64
				nbuf := make([]uint32, 0, 256)
				for i := lo; i < hi; i++ {
					u := front[i]
					fu := st.cur[u] & active
					if fu == 0 {
						continue
					}
					nbuf = g.AppendNeighbors(u, nbuf[:0])
					for _, w := range nbuf {
						scans++
						diff := fu &^ st.seen[w]
						if diff == 0 {
							continue
						}
						if diff&^st.next[w].Load() == 0 {
							continue
						}
						for {
							old := st.next[w].Load()
							if st.next[w].CompareAndSwap(old, old|diff) {
								if old == 0 {
									bag.Insert(w)
								}
								break
							}
						}
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
	case *graph.Overlay:
		// Overlay snapshots from internal/delta. Both directions use the
		// merged bulk scan into task scratch: the patch merge walks the
		// base list regardless, so a streaming early-exit pull would not
		// skip any work the way the compressed cursor does. The CAS loop
		// (not atomic Or) is deliberate — see the plain-CSR case.
		var in *graph.Overlay
		if denseCut != math.MaxInt64 {
			in = g.Transpose()
		}
		pull = func(active uint64) {
			parallel.ForRangeCancel(cl.Token(), n, 0, func(lo, hi int) {
				var scans int64
				nbuf := make([]uint32, 0, 256)
				for vi := lo; vi < hi; vi++ {
					v := uint32(vi)
					want := active &^ st.seen[v]
					if want == 0 {
						continue
					}
					var acc uint64
					nbuf = in.AppendNeighbors(v, nbuf[:0])
					for _, u := range nbuf {
						scans++
						acc |= st.cur[u]
						if acc&want == want {
							break
						}
					}
					if nb := acc & want; nb != 0 {
						st.next[v].Store(nb)
						bag.Insert(v)
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
		push = func(front []uint32, active uint64) {
			parallel.ForRangeCancel(cl.Token(), len(front), 16, func(lo, hi int) {
				var scans int64
				nbuf := make([]uint32, 0, 256)
				for i := lo; i < hi; i++ {
					u := front[i]
					fu := st.cur[u] & active
					if fu == 0 {
						continue
					}
					nbuf = g.AppendNeighbors(u, nbuf[:0])
					for _, w := range nbuf {
						scans++
						diff := fu &^ st.seen[w]
						if diff == 0 {
							continue
						}
						if diff&^st.next[w].Load() == 0 {
							continue
						}
						for {
							old := st.next[w].Load()
							if st.next[w].CompareAndSwap(old, old|diff) {
								if old == 0 {
									bag.Insert(w)
								}
								break
							}
						}
					}
				}
				met.AddEdges(scans)
				tr.LaneScans(scans)
			})
		}
	}

	// Round 0: sources settle at distance 0. Duplicates share a frontier
	// word, so the frontier list stays duplicate-free.
	var front []uint32
	for l, s := range srcs {
		if st.cur[s] == 0 {
			front = append(front, s)
		}
		st.cur[s] |= uint64(1) << l
	}
	for _, v := range front {
		st.seen[v] = st.cur[v]
		sk.settle(v, st.cur[v], 0)
	}

	d := uint32(0)
	for len(front) > 0 {
		// Round boundary: a canceled round may have drained scan or settle
		// chunks, so the lane words no longer describe a consistent level —
		// stop before trusting them.
		if err := cl.Poll(); err != nil {
			return err
		}
		// active masks the lanes that still propagate: all of them, except
		// point-to-point lanes whose destination already settled.
		active := full
		if sk.targets != nil {
			active = sk.remaining.Load() & full
			if active == 0 {
				break
			}
		}
		d++
		met.Round(len(front))

		if int64(len(front)) >= denseCut {
			// Pull (bottom-up): every vertex missing active lanes unions its
			// in-neighbors' frontier words — no atomics, v is the sole
			// writer of next[v] this round.
			met.AddBottomUp()
			pull(active)
		} else {
			// Push (top-down): one scan of the frontier's out-edges advances
			// every active lane at once.
			push(front, active)
		}

		newFront := bag.Extract()
		// Settle barrier, two joins: clear the old frontier words first (a
		// vertex can be in both lists on a cycle), then fold next into
		// seen/cur and record distances — each vertex in exactly one chunk,
		// so the writes are plain.
		parallel.ForCancel(cl.Token(), len(front), 0, func(i int) {
			st.cur[front[i]] = 0
		})
		parallel.ForRangeCancel(cl.Token(), len(newFront), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := newFront[i]
				bs := st.next[v].Load()
				st.next[v].Store(0)
				st.seen[v] |= bs
				st.cur[v] = bs
				sk.settle(v, bs, d)
			}
		})
		front = newFront
	}
	return nil
}
