package msbfs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/trace"
)

// cancelCase wraps one batched entry point for the cancellation
// conformance sweep, mirroring internal/core's suite: the contract is
// "typed error, Metrics so far, never a result".
type cancelCase struct {
	name string
	run  func(t *testing.T, opt core.Options) (*core.Metrics, error)
}

// cancelCases enumerates every batched entry point. The 65-lane batches
// span two groups, so cancellation is exercised at both the group and the
// round boundary.
func cancelCases(g *graph.Graph) []cancelCase {
	srcs := pickSources(g, 65)
	pairs := make([][2]uint32, 65)
	for i := range pairs {
		pairs[i] = [2]uint32{srcs[i], uint32(g.N - 1)}
	}
	return []cancelCase{
		{"Run", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			rows, met, err := Run(g, srcs, opt)
			if err != nil && rows != nil {
				t.Error("Run returned rows alongside its error")
			}
			return met, err
		}},
		{"RunReachable", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			rows, met, err := RunReachable(g, srcs, opt)
			if err != nil && rows != nil {
				t.Error("RunReachable returned rows alongside its error")
			}
			return met, err
		}},
		{"RunPointToPoint", func(t *testing.T, opt core.Options) (*core.Metrics, error) {
			dists, met, err := RunPointToPoint(g, pairs, opt)
			if err != nil && dists != nil {
				t.Error("RunPointToPoint returned distances alongside its error")
			}
			return met, err
		}},
	}
}

// TestCancelPreCanceled: an already-canceled context fails every batched
// entry point with ErrCanceled, non-nil Metrics, and no rows.
func TestCancelPreCanceled(t *testing.T) {
	g := gen.Chain(2000, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range cancelCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			met, err := tc.run(t, core.Options{Ctx: ctx})
			if !errors.Is(err, core.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if errors.Is(err, core.ErrDeadline) {
				t.Fatalf("err = %v claims a deadline on a plain cancel", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
		})
	}
}

// TestCancelDeadlineExpired: an expired deadline maps to ErrDeadline, not
// ErrCanceled, at every batched entry point.
func TestCancelDeadlineExpired(t *testing.T) {
	g := gen.Chain(2000, true)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	for _, tc := range cancelCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			met, err := tc.run(t, core.Options{Ctx: ctx})
			if !errors.Is(err, core.ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the deadline error")
			}
		})
	}
}

// TestCancelCustomCause: a context.WithCancelCause cause is wrapped into
// the returned error together with the typed sentinel.
func TestCancelCustomCause(t *testing.T) {
	g := gen.Chain(2000, true)
	because := errors.New("operator pulled the plug")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(because)
	_, _, err := Run(g, []uint32{0, 1}, core.Options{Ctx: ctx})
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, because) {
		t.Fatalf("err = %v does not wrap the cancellation cause", err)
	}
}

// TestCancelNilCtxCompletes: the zero Options still mean "run to
// completion, nil error" — cancellation is strictly opt-in.
func TestCancelNilCtxCompletes(t *testing.T) {
	g := gen.Chain(500, true)
	for _, tc := range cancelCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.run(t, core.Options{}); err != nil {
				t.Fatalf("unexpected error without a Ctx: %v", err)
			}
		})
	}
}

// TestCancelMidRun cancels each batched entry point while it is
// demonstrably in flight: a watcher goroutine waits for the tracer to
// record enough rounds, then cancels. On a 200k-vertex chain every lane
// has vastly more work left at that point, so the run must come back with
// the typed error and a cancel trace event rather than rows.
func TestCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-run cancellation sweep; skipped with -short")
	}
	g := gen.Chain(200_000, true)
	for _, tc := range cancelCases(g) {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			go func() {
				for {
					select {
					case <-done:
						return
					default:
					}
					if tr.CounterValue(trace.CtrRounds) >= 16 {
						cancel()
						return
					}
					runtime.Gosched()
				}
			}()
			met, err := tc.run(t, core.Options{Ctx: ctx, Tau: 1, Tracer: tr})
			close(done)
			if !errors.Is(err, core.ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
			if c := tr.CounterValue(trace.CtrCancels); c < 1 {
				t.Fatalf("CtrCancels = %d, want >= 1", c)
			}
			foundEvent := false
			for _, ev := range tr.Events() {
				if ev.Kind == trace.KindCancel {
					foundEvent = true
					break
				}
			}
			// If the watcher was starved long enough for the run to fill
			// the event ring before the cancel landed, the KindCancel
			// event is among the dropped tail; the counter above already
			// proved the cancel was recorded.
			if !foundEvent && tr.Dropped() == 0 {
				t.Fatal("no KindCancel event in the trace")
			}
		})
	}
}

// TestCancelEmitsOneTraceEvent: group-boundary polls after the
// cancellation must not duplicate the cancel trace event.
func TestCancelEmitsOneTraceEvent(t *testing.T) {
	g := gen.Chain(2000, true)
	tr := trace.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := pickSources(g, 130) // three groups, three boundary polls
	if _, _, err := Run(g, srcs, core.Options{Ctx: ctx, Tracer: tr}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if c := tr.CounterValue(trace.CtrCancels); c != 1 {
		t.Fatalf("CtrCancels = %d after one canceled run, want exactly 1", c)
	}
}

// TestCancelNoGoroutineLeak: canceled batched runs leave no watcher
// goroutines behind; the goroutine count settles back to its pre-run
// baseline.
func TestCancelNoGoroutineLeak(t *testing.T) {
	g := gen.Chain(50_000, true)
	srcs := pickSources(g, 65)
	// Warm up the worker pool so its persistent goroutines are part of the
	// baseline.
	if _, _, err := Run(g, srcs, core.Options{}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, _, err := Run(g, srcs, core.Options{Ctx: ctx, Tau: 1})
		if err != nil && !errors.Is(err, core.ErrCanceled) {
			t.Fatalf("run %d: unexpected error kind: %v", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before the canceled runs",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStressCancelMidRun hammers the batched cancellation path for the
// -race tier: concurrent multi-group runs, each canceled at an arbitrary
// point. Every run must end in nil or ErrCanceled — never a partial
// result, a panic, or a hang.
func TestStressCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.Chain(20_000, true)
	srcs := pickSources(g, 65)
	want, _, err := Run(g, srcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 16
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%8) * 200 * time.Microsecond)
				cancel()
			}()
			rows, _, err := Run(g, srcs, core.Options{Ctx: ctx, Tau: 1})
			switch {
			case err == nil:
				for l := range want {
					for v := range want[l] {
						if rows[l][v] != want[l][v] {
							errs <- errors.New("completed run returned wrong distances")
							return
						}
					}
				}
				errs <- nil
			case errors.Is(err, core.ErrCanceled):
				if rows != nil {
					errs <- errors.New("canceled run returned rows")
					return
				}
				errs <- nil
			default:
				errs <- err
			}
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
