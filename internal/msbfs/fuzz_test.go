package msbfs

import (
	"testing"

	"pasgal/internal/core"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// fuzzGraph decodes a fuzz payload into a graph and a source batch.
// Layout: n is clamped to [1, 256]; edgeData is consumed two bytes per
// edge (u, v taken mod n); srcData one byte per source (mod n), capped at
// 130 lanes so runs stay within three lane groups. Every byte string is a
// valid input — the engine has no parse-failure escape hatch to hide in.
func fuzzGraph(n uint16, directed bool, edgeData, srcData []byte) (*graph.Graph, []uint32) {
	nv := int(n)%256 + 1
	var edges []graph.Edge
	for i := 0; i+1 < len(edgeData) && i < 4096; i += 2 {
		edges = append(edges, graph.Edge{
			U: uint32(int(edgeData[i]) % nv),
			V: uint32(int(edgeData[i+1]) % nv),
		})
	}
	g := graph.FromEdges(nv, edges, directed, graph.BuildOptions{})
	if len(srcData) > 130 {
		srcData = srcData[:130]
	}
	srcs := make([]uint32, len(srcData))
	for i, b := range srcData {
		srcs[i] = uint32(int(b) % nv)
	}
	return g, srcs
}

// FuzzMSBFS fuzzes the batched engine against the sequential queue oracle:
// random edge lists, random source batches (duplicates arise naturally),
// both routing extremes, distances and reachability. The seed corpus pins
// the lane-boundary batch sizes (1, 63/64/65, 128/129/130) and the empty
// batch, plus the 8-vertex digraph that exposed the push-loop atomic
// intrinsic miscompile.
func FuzzMSBFS(f *testing.F) {
	laneSrcs := func(b int) []byte {
		s := make([]byte, b)
		for i := range s {
			s[i] = byte(i * 37)
		}
		return s
	}
	chain := func(n int) []byte {
		e := make([]byte, 0, 2*n)
		for i := 0; i+1 < n; i++ {
			e = append(e, byte(i), byte(i+1))
		}
		return e
	}
	// Lane-boundary widths on a 64-vertex chain, directed and undirected.
	for _, b := range []int{1, 3, 63, 64, 65, 128, 129, 130} {
		f.Add(uint16(63), true, chain(64), laneSrcs(b))
		f.Add(uint16(63), false, chain(64), laneSrcs(b))
	}
	// Empty batch, empty graph, single vertex.
	f.Add(uint16(63), true, chain(64), []byte{})
	f.Add(uint16(0), true, []byte{}, []byte{0})
	// The intrinsic-miscompile repro (see TestPushIntrinsicRegression).
	f.Add(uint16(7), true,
		[]byte{4, 0, 0, 6, 2, 4, 7, 0, 6, 3, 1, 0},
		[]byte{4, 2, 3, 2, 4, 7, 3, 0, 5, 5, 1, 0, 5, 4, 0})

	f.Fuzz(func(t *testing.T, n uint16, directed bool, edgeData, srcData []byte) {
		g, srcs := fuzzGraph(n, directed, edgeData, srcData)
		oracle := map[uint32][]uint32{}
		dist := func(s uint32) []uint32 {
			d, ok := oracle[s]
			if !ok {
				d = seq.BFS(g, s)
				oracle[s] = d
			}
			return d
		}
		for _, opt := range []core.Options{{}, {DisableDirectionOpt: true}, {DenseFrac: 0.01}} {
			rows, met, err := Run(g, srcs, opt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(rows) != len(srcs) || met == nil {
				t.Fatalf("Run: %d rows for %d sources, met=%v", len(rows), len(srcs), met)
			}
			for i, s := range srcs {
				want := dist(s)
				for v := range want {
					if rows[i][v] != want[v] {
						t.Fatalf("lane %d (src %d) opt=%+v: dist[%d] = %d, oracle %d",
							i, s, opt, v, rows[i][v], want[v])
					}
				}
			}
		}
		reach, _, err := RunReachable(g, srcs, core.Options{})
		if err != nil {
			t.Fatalf("RunReachable: %v", err)
		}
		for i, s := range srcs {
			want := dist(s)
			for v := range want {
				if reach[i][v] != (want[v] != graph.InfDist) {
					t.Fatalf("lane %d (src %d): reach[%d] = %v, oracle dist %d",
						i, s, v, reach[i][v], want[v])
				}
			}
		}
	})
}
