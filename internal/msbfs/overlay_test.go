package msbfs

import (
	"math/rand"
	"testing"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// Functional twins for the overlay lane-scan specialization (epoch
// snapshots from internal/delta): batched runs over the overlay must
// match batched runs over a plain rebuild of the same post-edit graph,
// in both scan directions and across lane-group widths.

// overlayTwin applies a deterministic random edit batch and returns the
// overlay plus a plain CSR of the identical post-edit graph.
func overlayTwin(t *testing.T, g *graph.Graph, seed int64) (*graph.Overlay, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var dels, adds []graph.Edge
	for u := uint32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if (g.Directed || u < v) && rng.Intn(6) == 0 {
				dels = append(dels, graph.Edge{U: u, V: v})
			}
		}
	}
	n := uint32(g.N)
	for i := 0; i < g.N/3; i++ {
		u, v := rng.Uint32()%n, rng.Uint32()%n
		if u == v {
			continue
		}
		adds = append(adds, graph.Edge{U: u, V: v})
	}
	o := graph.OverlayFromEdits(g, dels, adds)
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}
	return o, o.Materialize()
}

// TestOverlayRunMatchesPlain sweeps batch widths across the 64-lane group
// boundary on directed and undirected overlays. The "pull" row forces a
// bottom-up cut of one so the lazy overlay transpose merge runs; the
// default row keeps the push route for the sparse phases.
func TestOverlayRunMatchesPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"rmat-directed": gen.SocialRMAT(9, 8, true, 81),
		"grid":          gen.Grid2D(20, 20, false, 82),
	} {
		o, mat := overlayTwin(t, g, 83)
		rng := rand.New(rand.NewSource(84))
		for _, b := range []int{1, 3, 64, 100} {
			srcs := make([]uint32, b)
			for i := range srcs {
				srcs[i] = rng.Uint32() % uint32(g.N)
			}
			for oname, opt := range map[string]core.Options{
				"default": {},
				"pull":    {DenseFrac: 0.0001},
			} {
				want, _, err := Run(mat, srcs, opt)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := Run(o, srcs, opt)
				if err != nil {
					t.Fatal(err)
				}
				for s := range want {
					for v := range want[s] {
						if got[s][v] != want[s][v] {
							t.Fatalf("%s/%s B=%d: dist[src %d][%d] = %d overlay, %d plain",
								name, oname, b, s, v, got[s][v], want[s][v])
						}
					}
				}
			}
		}
	}
}

// TestOverlayBatchedQueriesMatchPlain drives the derived batched entry
// points (reachability lanes, point-to-point early exit) through the
// overlay scan branch.
func TestOverlayBatchedQueriesMatchPlain(t *testing.T) {
	o, mat := overlayTwin(t, gen.ER(700, 1100, true, 91), 92) // disconnected
	n := uint32(mat.N)
	srcs := []uint32{0, n / 4, n / 2, n - 1}
	wantR, _, err := RunReachable(mat, srcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotR, _, err := RunReachable(o, srcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := range wantR {
		for v := range wantR[s] {
			if gotR[s][v] != wantR[s][v] {
				t.Fatalf("reach[src %d][%d] = %v overlay, %v plain", s, v, gotR[s][v], wantR[s][v])
			}
		}
	}
	pairs := [][2]uint32{{0, n - 1}, {n / 2, 1}, {7, 7}}
	wantP, _, err := RunPointToPoint(mat, pairs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotP, _, err := RunPointToPoint(o, pairs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Fatalf("p2p %v: %d overlay, %d plain", pairs[i], gotP[i], wantP[i])
		}
	}
}
