// Package ldd implements low-diameter decomposition (Miller–Peng–Xu) and
// the LDD-contraction connectivity algorithm built on it — the approach
// GBBS uses for connectivity. It is the level-synchronous, BFS-flavored
// counterpart to internal/conn's union–find: each decomposition is a
// multi-source BFS whose round count is O(log n / beta) w.h.p., so the
// contraction hierarchy pays Θ(log² n)-ish global synchronizations where
// the union–find pays none. The benchmark harness contrasts the two as a
// connectivity ablation.
package ldd

import (
	"math"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// hash64 is the splitmix64 finalizer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Decompose partitions the vertices of a symmetric graph into clusters of
// diameter O(log n / beta) w.h.p. with ~beta*m inter-cluster edges: every
// vertex draws an exponential shift with rate beta and joins the cluster
// whose shifted BFS reaches it first. Returns the cluster label (a cluster
// center's id) per vertex and the number of BFS rounds used.
func Decompose(g *graph.Graph, beta float64, seed uint64) ([]uint32, int) {
	if g.Directed {
		panic("ldd: Decompose requires an undirected graph")
	}
	if beta <= 0 || beta > 1 {
		panic("ldd: beta must be in (0, 1]")
	}
	n := g.N
	cluster := make([]atomic.Uint32, n)
	parallel.For(n, 0, func(i int) { cluster[i].Store(graph.None) })

	// Exponential shifts, discretized: vertex v becomes an active center
	// at round floor(maxShift - delta_v) if still unclaimed.
	shifts := make([]int, n)
	maxShift := 0
	for v := 0; v < n; v++ {
		u := float64(hash64(seed^uint64(v))>>11) / float64(1<<53)
		if u <= 0 {
			u = 0.5
		}
		s := int(-math.Log(u) / beta)
		shifts[v] = s
		if s > maxShift {
			maxShift = s
		}
	}
	start := make([]int, n)
	for v := 0; v < n; v++ {
		start[v] = maxShift - shifts[v]
	}
	// Bucket vertices by start round.
	starters := make([][]uint32, maxShift+1)
	for v := 0; v < n; v++ {
		starters[start[v]] = append(starters[start[v]], uint32(v))
	}

	var frontier []uint32
	rounds := 0
	for t := 0; ; t++ {
		// Activate new centers whose start time arrived and that are
		// still unclaimed.
		if t <= maxShift {
			for _, v := range starters[t] {
				if cluster[v].CompareAndSwap(graph.None, v) {
					frontier = append(frontier, v)
				}
			}
		}
		if len(frontier) == 0 {
			if t > maxShift {
				break
			}
			continue
		}
		rounds++
		// One BFS step from the whole frontier.
		offs := make([]int64, len(frontier))
		parallel.For(len(frontier), 0, func(i int) {
			offs[i] = int64(g.Degree(frontier[i]))
		})
		total := parallel.Scan(offs)
		outv := make([]uint32, total)
		parallel.For(len(frontier), 1, func(i int) {
			u := frontier[i]
			cu := cluster[u].Load()
			at := offs[i]
			for _, w := range g.Neighbors(u) {
				outv[at] = graph.None
				if cluster[w].Load() == graph.None &&
					cluster[w].CompareAndSwap(graph.None, cu) {
					outv[at] = w
				}
				at++
			}
		})
		frontier = parallel.Pack(outv, func(i int) bool { return outv[i] != graph.None })
	}
	labels := make([]uint32, n)
	parallel.For(n, 0, func(i int) { labels[i] = cluster[i].Load() })
	return labels, rounds
}

// Components computes connected components by iterated LDD + contraction
// (the GBBS connectivity recipe): decompose, contract each cluster to a
// single vertex, repeat on the inter-cluster graph until it has no edges,
// then propagate labels back down. Returns canonical labels (each
// component labeled by one of its member ids), the component count, and
// the total number of BFS rounds across all levels (the synchronization
// bill the harness reports).
func Components(g *graph.Graph, beta float64, seed uint64) ([]uint32, int, int) {
	if g.Directed {
		panic("ldd: Components requires an undirected graph")
	}
	n := g.N
	labels := make([]uint32, n)
	parallel.For(n, 0, func(i int) { labels[i] = uint32(i) })
	cur := g
	totalRounds := 0
	level := 0
	// map from current-graph vertex to original representative
	rep := make([]uint32, n)
	parallel.For(n, 0, func(i int) { rep[i] = uint32(i) })

	for len(cur.Edges) > 0 {
		cl, rounds := Decompose(cur, beta, seed+uint64(level)*0x9e37)
		totalRounds += rounds
		level++
		// Compact cluster ids.
		isCenter := make([]uint32, cur.N)
		parallel.ForRange(cur.N, 0, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if cl[v] == uint32(v) {
					isCenter[v] = 1
				}
			}
		})
		newID := make([]uint32, cur.N)
		parallel.Copy(newID, isCenter)
		newN := int(parallel.Scan(newID))
		clOf := func(v uint32) uint32 { return newID[cl[v]] }
		if newN == cur.N {
			// Every cluster was a singleton (possible with unlucky
			// shifts): grow the clusters by halving beta and retry, which
			// guarantees progress as beta -> 0.
			beta /= 2
		}
		// Build the contracted inter-cluster edge list.
		var edges []graph.Edge
		for u := uint32(0); u < uint32(cur.N); u++ {
			cu := clOf(u)
			for _, w := range cur.Neighbors(u) {
				cw := clOf(w)
				if cu < cw {
					edges = append(edges, graph.Edge{U: cu, V: cw})
				}
			}
		}
		// Re-point every original vertex to its cluster's contracted id.
		parallel.For(n, 0, func(i int) {
			rep[i] = clOf(rep[i])
		})
		cur = graph.FromEdges(newN, edges, false, graph.BuildOptions{})
	}
	// cur has no edges: each remaining vertex is a component root. Label
	// original vertices by the minimum original id in their component.
	compMin := make([]uint32, cur.N)
	parallel.Fill(compMin, graph.None)
	for i := 0; i < n; i++ {
		r := rep[i]
		if compMin[r] == graph.None || uint32(i) < compMin[r] {
			compMin[r] = uint32(i)
		}
	}
	parallel.For(n, 0, func(i int) { labels[i] = compMin[rep[i]] })
	count := parallel.Count(n, func(i int) bool { return labels[i] == uint32(i) })
	return labels, count, totalRounds
}
