package ldd

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

func TestDecomposeCoversAllVertices(t *testing.T) {
	g := gen.Grid2D(40, 40, false, 1)
	labels, rounds := Decompose(g, 0.2, 7)
	for v, l := range labels {
		if l == graph.None {
			t.Fatalf("vertex %d unclustered", v)
		}
		// Cluster label is a center that labels itself.
		if labels[l] != l {
			t.Fatalf("cluster label %d of %d is not a center", l, v)
		}
	}
	if rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestDecomposeClustersAreConnected(t *testing.T) {
	// Every cluster must induce a connected subgraph: check by BFS within
	// the cluster from its center.
	g := gen.SampledGrid(30, 30, 0.85, false, 3)
	labels, _ := Decompose(g, 0.3, 11)
	reached := make(map[uint32]int)
	sizes := make(map[uint32]int)
	for _, l := range labels {
		sizes[l]++
	}
	for center := range sizes {
		queue := []uint32{center}
		seen := map[uint32]bool{center: true}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(u) {
				if labels[w] == center && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		reached[center] = len(seen)
	}
	for center, sz := range sizes {
		if reached[center] != sz {
			t.Fatalf("cluster %d: %d of %d vertices reachable within cluster",
				center, reached[center], sz)
		}
	}
}

func TestDecomposeBetaTradeoff(t *testing.T) {
	// Larger beta => more clusters (smaller diameter each).
	g := gen.Grid2D(50, 50, false, 2)
	count := func(beta float64) int {
		labels, _ := Decompose(g, beta, 5)
		set := map[uint32]bool{}
		for _, l := range labels {
			set[l] = true
		}
		return len(set)
	}
	small, large := count(0.05), count(0.8)
	if small*2 >= large {
		t.Fatalf("beta=0.05 gives %d clusters, beta=0.8 gives %d — no trade-off", small, large)
	}
}

func TestComponentsMatchesUnionFind(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(400)
		g := gen.ER(n, rng.IntN(3*n+1), false, uint64(trial))
		want, wantCount := conn.Components(g)
		got, gotCount, rounds := Components(g, 0.2, uint64(100+trial))
		if gotCount != wantCount {
			t.Fatalf("trial %d: %d components, want %d", trial, gotCount, wantCount)
		}
		for v := range want {
			// Both label components by their minimum member.
			if got[v] != want[v] {
				t.Fatalf("trial %d: label[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
		if len(g.Edges) > 0 && rounds == 0 {
			t.Fatalf("trial %d: no rounds", trial)
		}
	}
}

func TestComponentsStructuredGraphs(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid":  gen.Grid2D(30, 30, false, 1),
		"chain": gen.Chain(5000, false),
		"star":  gen.Star(1000),
		"knn":   gen.KNN(2000, 4, 8, false, 2),
		"empty": graph.FromEdges(10, nil, false, graph.BuildOptions{}),
	} {
		want, wantCount := conn.Components(g)
		got, gotCount, _ := Components(g, 0.2, 9)
		if gotCount != wantCount {
			t.Fatalf("%s: %d components, want %d", name, gotCount, wantCount)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: label mismatch at %d", name, v)
			}
		}
	}
}

// The synchronization story: LDD connectivity pays BFS rounds where the
// union–find pays none; on a long chain the round count is substantial.
func TestComponentsRoundsOnChain(t *testing.T) {
	g := gen.Chain(20000, false)
	_, count, rounds := Components(g, 0.1, 3)
	if count != 1 {
		t.Fatalf("chain components = %d", count)
	}
	if rounds < 10 {
		t.Fatalf("expected many BFS rounds on a chain, got %d", rounds)
	}
}

func TestDecomposeBadBetaPanics(t *testing.T) {
	g := gen.Chain(10, false)
	for _, beta := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for beta=%v", beta)
				}
			}()
			Decompose(g, beta, 1)
		}()
	}
}

// TestDirectedGraphPanics: both entry points refuse directed graphs — the
// exponential-shift argument only bounds diameter on symmetric adjacency.
func TestDirectedGraphPanics(t *testing.T) {
	dg := gen.Chain(10, true)
	for _, tc := range []struct {
		name string
		call func()
	}{
		{"Decompose", func() { Decompose(dg, 0.2, 1) }},
		{"Components", func() { Components(dg, 0.2, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("directed graph accepted")
				}
			}()
			tc.call()
		})
	}
}

// TestDecomposeDeterministicPerSeed pins the (graph, beta, seed) ->
// labeling contract across a shape table: the same inputs must reproduce
// the same clustering (the bench harness and the contraction levels both
// rely on it), while different seeds are allowed to differ.
func TestDecomposeDeterministicPerSeed(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		beta float64
	}{
		{"grid", gen.Grid2D(25, 25, false, 4), 0.2},
		{"chain", gen.Chain(3000, false), 0.1},
		{"star", gen.Star(500), 0.5},
		{"er", gen.ER(800, 2400, false, 6), 0.3},
		{"singleton", gen.Chain(1, false), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, roundsA := Decompose(tc.g, tc.beta, 42)
			b, roundsB := Decompose(tc.g, tc.beta, 42)
			if roundsA != roundsB {
				t.Fatalf("rounds %d vs %d across identical runs", roundsA, roundsB)
			}
			for v := range a {
				if a[v] != b[v] {
					t.Fatalf("label[%d] = %d vs %d across identical runs", v, a[v], b[v])
				}
			}
		})
	}
}
