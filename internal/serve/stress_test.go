package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// TestStressServeMixedTraffic is the end-to-end serving conformance
// gate (and rides the -race stress tier): many concurrent clients fire
// a mixed algorithm workload, every 200 body must match the sequential
// oracle, and afterwards the admission high-water mark must respect the
// configured bound while the counters balance.
func TestStressServeMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("serving stress sweep; skipped with -short")
	}
	g := gen.SocialRMAT(10, 8, true, 31)
	const maxConc = 2
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{MaxConcurrent: maxConc})

	// Oracles, precomputed for the source space the clients draw from.
	const numSrc = 16
	bfsWant := make([][]uint32, numSrc)
	for i := range bfsWant {
		bfsWant[i] = seq.BFS(g, uint32(i))
	}
	wg := oracleWeighted(g)
	dijWant := make([][]uint64, numSrc)
	for i := range dijWant {
		dijWant[i] = seq.Dijkstra(wg, uint32(i))
	}
	sccLabels, sccCount := seq.TarjanSCC(g)
	coreWant, degWant := seq.KCore(g.Symmetrized())

	const clients = 16
	const perClient = 12
	var wgrp sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		c := c
		wgrp.Add(1)
		go func() {
			defer wgrp.Done()
			rng := rand.New(rand.NewSource(int64(c) * 1337))
			for i := 0; i < perClient; i++ {
				src := rng.Intn(numSrc)
				var err error
				switch rng.Intn(6) {
				case 0, 1: // bfs rides the coalescer: weight it up
					err = checkBFS(hs.URL, src, bfsWant[src])
				case 2:
					err = checkSSSP(hs.URL, src, dijWant[src])
				case 3:
					err = checkReachable(hs.URL, src, bfsWant[src])
				case 4:
					err = checkSCC(hs.URL, sccLabels, sccCount)
				case 5:
					err = checkKCore(hs.URL, coreWant, degWant)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
			}
		}()
	}
	wgrp.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if p := s.adm.peak.Load(); p > maxConc {
		t.Fatalf("admission peak %d exceeded the bound %d", p, maxConc)
	}
	if in := s.adm.inflight.Load(); in != 0 {
		t.Fatalf("inflight = %d after the storm", in)
	}
	if f := s.failures.Load(); f != 0 {
		t.Fatalf("%d queries failed during clean mixed traffic", f)
	}
	if total := s.queries.Load(); total != clients*perClient {
		t.Fatalf("query counter %d, want %d", total, clients*perClient)
	}
}

func fetchOK(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %.120s", resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func checkBFS(base string, src int, want []uint32) error {
	var br BFSResponse
	if err := fetchOK(fmt.Sprintf("%s/query/bfs?graph=g&src=%d", base, src), &br); err != nil {
		return fmt.Errorf("bfs: %w", err)
	}
	for v := range want {
		if br.Dist[v] != want[v] {
			return fmt.Errorf("bfs src %d: dist[%d] = %d, oracle %d", src, v, br.Dist[v], want[v])
		}
	}
	return nil
}

func checkSSSP(base string, src int, want []uint64) error {
	var sr SSSPResponse
	if err := fetchOK(fmt.Sprintf("%s/query/sssp?graph=g&src=%d", base, src), &sr); err != nil {
		return fmt.Errorf("sssp: %w", err)
	}
	for v := range want {
		if sr.Dist[v] != want[v] {
			return fmt.Errorf("sssp src %d: dist[%d] = %d, oracle %d", src, v, sr.Dist[v], want[v])
		}
	}
	return nil
}

func checkReachable(base string, src int, bfsWant []uint32) error {
	var rr ReachableResponse
	if err := fetchOK(fmt.Sprintf("%s/query/reachable?graph=g&src=%d", base, src), &rr); err != nil {
		return fmt.Errorf("reachable: %w", err)
	}
	for v := range bfsWant {
		if rr.Reachable[v] != (bfsWant[v] != graph.InfDist) {
			return fmt.Errorf("reachable src %d: vertex %d disagrees with the bfs oracle", src, v)
		}
	}
	return nil
}

func checkSCC(base string, wantLabels []uint32, wantCount int) error {
	var cr SCCResponse
	if err := fetchOK(base+"/query/scc?graph=g", &cr); err != nil {
		return fmt.Errorf("scc: %w", err)
	}
	if cr.Components != wantCount {
		return fmt.Errorf("scc: %d components, oracle %d", cr.Components, wantCount)
	}
	if !samePartition(cr.Labels, wantLabels) {
		return fmt.Errorf("scc: labels do not partition like the oracle")
	}
	return nil
}

func checkKCore(base string, want []uint32, wantDeg int) error {
	var kr KCoreResponse
	if err := fetchOK(base+"/query/kcore?graph=g", &kr); err != nil {
		return fmt.Errorf("kcore: %w", err)
	}
	if kr.Degeneracy != wantDeg {
		return fmt.Errorf("kcore: degeneracy %d, oracle %d", kr.Degeneracy, wantDeg)
	}
	for v := range want {
		if kr.Core[v] != want[v] {
			return fmt.Errorf("kcore: core[%d] = %d, oracle %d", v, kr.Core[v], want[v])
		}
	}
	return nil
}

// TestStressServeCacheChurn hammers one small cache from many goroutines
// with overlapping key sets: the bound must hold and every response must
// stay correct whether it came from the cache or a fresh run.
func TestStressServeCacheChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("cache churn sweep; skipped with -short")
	}
	g := gen.ER(200, 800, true, 23)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{CacheEntries: 8})
	const numSrc = 24
	want := make([][]uint32, numSrc)
	for i := range want {
		want[i] = seq.BFS(g, uint32(i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7))
			for i := 0; i < 40; i++ {
				src := rng.Intn(numSrc)
				if err := checkBFS(hs.URL, src, want[src]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c := s.cache.len(); c > 8 {
		t.Fatalf("cache holds %d entries, bound is 8", c)
	}
}
