package serve

import (
	"context"
	"sync/atomic"
)

// admission is the semaphore-based admission controller: at most cap
// queries run their parallel computation at once, so p concurrent HTTP
// requests cannot oversubscribe the p-worker scheduler. Requests past the
// bound queue on the semaphore channel; a queued request whose context
// dies (client disconnect, ?timeout=) abandons the wait without ever
// holding a slot.
//
// Two acquisition paths exist on purpose. Direct queries acquire with
// their request context. Coalesced batches acquire through acquireBatch —
// no context, because a flushed batch must run for all its lane-mates
// regardless of any single submitter's fate — and charge ONE slot for up
// to 64 queries, which is exactly why coalescing multiplies throughput
// under admission control.
type admission struct {
	cap int
	sem chan struct{}

	// Gauges and counters, all exported on /metrics. inflight/peak are
	// the live and high-water occupancy — the serving conformance suite
	// asserts peak never exceeds cap.
	inflight  atomic.Int64
	peak      atomic.Int64
	admitted  atomic.Int64
	waited    atomic.Int64
	abandoned atomic.Int64
}

func newAdmission(capacity int) *admission {
	return &admission{cap: capacity, sem: make(chan struct{}, capacity)}
}

// acquire claims one slot, blocking while the controller is full. It
// returns ctx's cause if the context dies first (the slot is then NOT
// held and release must not be called).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
	default:
		// Full: queue on the semaphore, racing the context.
		a.waited.Add(1)
		select {
		case a.sem <- struct{}{}:
		case <-ctx.Done():
			a.abandoned.Add(1)
			return context.Cause(ctx)
		}
	}
	a.admit()
	return nil
}

// acquireBatch claims one slot for a coalescer batch flush, blocking
// unconditionally: the batch aggregates many submitters and must run.
func (a *admission) acquireBatch() {
	select {
	case a.sem <- struct{}{}:
	default:
		a.waited.Add(1)
		a.sem <- struct{}{}
	}
	a.admit()
}

func (a *admission) admit() {
	a.admitted.Add(1)
	in := a.inflight.Add(1)
	for {
		cur := a.peak.Load()
		if in <= cur || a.peak.CompareAndSwap(cur, in) {
			return
		}
	}
}

// release returns a slot claimed by a successful acquire/acquireBatch.
func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}
