package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig drives one load-generation run against a live daemon. It is
// the engine behind cmd/pasgal-loadgen, the `-exp serve` bench experiment,
// and the end-to-end serving tests.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string

	// Graph names the served graph to query ("" picks one from /graphs).
	Graph string

	// Clients is the number of concurrent request loops; <= 0 selects 8.
	Clients int

	// Requests is the total request budget across all clients; <= 0
	// selects Clients * 32. Duration, when positive, stops the run early.
	Requests int
	Duration time.Duration

	// Mix weights the traffic per algorithm, e.g. {"bfs": 8, "p2p": 2}.
	// Empty selects DefaultMix. Unknown algo names are an error.
	Mix map[string]int

	// Coalesce=false appends coalesce=off to bfs/reachable queries — the
	// A/B switch the serve bench experiment flips.
	Coalesce bool

	// Cache=false appends cache=off to every query, so the run measures
	// compute throughput rather than cache-replay throughput.
	Cache bool

	// Summary appends summary=1 to every query: responses carry the
	// aggregate fields only, not the n-entry result arrays, so the run
	// measures algorithm throughput rather than JSON encoding.
	Summary bool

	// NumSources bounds the source-id space queries draw from; <= 0
	// selects min(n, 4096).
	NumSources int

	// Timeout is the per-request ?timeout= sent to the server (0 sends
	// none); the HTTP client allows an extra grace period on top.
	Timeout time.Duration

	// Seed makes the traffic deterministic.
	Seed uint64
}

// DefaultMix is the standard mixed workload: traversal-heavy with a spread
// over every endpoint, the shape a social-graph query tier sees.
var DefaultMix = map[string]int{
	"bfs": 8, "reachable": 4, "p2p": 4, "sssp": 2, "scc": 1, "kcore": 1,
}

// Report is the outcome of a load run. Latencies are seconds.
type Report struct {
	Graph    string  `json:"graph"`
	Clients  int     `json:"clients"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`

	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`

	ByAlgo   map[string]int64 `json:"by_algo"`
	ByStatus map[string]int64 `json:"by_status"`

	// Server-side counters snapshotted from /metrics after the run.
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	CoalescedQueries int64 `json:"coalesced_queries"`
	CoalescedBatches int64 `json:"coalesced_batches"`
	AdmissionPeak    int64 `json:"admission_peak"`
}

// RunLoad drives cfg.Requests mixed queries at cfg.Clients concurrency
// and reports throughput and latency percentiles. The context cancels the
// run early (the report covers what completed).
func RunLoad(ctx context.Context, cfg LoadConfig) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	base := strings.TrimRight(cfg.BaseURL, "/")
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	total := cfg.Requests
	if total <= 0 {
		total = clients * 32
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	picker, err := newMixPicker(mix)
	if err != nil {
		return nil, err
	}
	httpc := &http.Client{Timeout: cfg.Timeout + DefaultMaxTimeout}

	graphName, n, err := pickGraph(ctx, httpc, base, cfg.Graph)
	if err != nil {
		return nil, err
	}
	numSrc := cfg.NumSources
	if numSrc <= 0 || numSrc > n {
		numSrc = min(n, 4096)
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Pre-run counter snapshot, so the report covers THIS run's server
	// activity even against a long-lived daemon (best-effort: a missing
	// /metrics just zeroes the baseline).
	before, _ := fetchMetrics(ctx, httpc, base)

	type clientResult struct {
		lats     []float64
		requests int64
		errors   int64
		byAlgo   map[string]int64
		byStatus map[string]int64
	}
	results := make([]clientResult, clients)
	next := make(chan int) // request tickets
	go func() {
		defer close(next)
		for i := 0; i < total; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(c)*7919))
			res := clientResult{
				byAlgo:   make(map[string]int64),
				byStatus: make(map[string]int64),
			}
			for range next {
				algo := picker.pick(rng)
				u := queryURL(base, graphName, algo, rng, numSrc, cfg)
				t0 := time.Now()
				status, err := fetch(ctx, httpc, u)
				lat := time.Since(t0).Seconds()
				if ctx.Err() != nil {
					break
				}
				res.requests++
				res.byAlgo[algo]++
				if err != nil {
					res.errors++
					res.byStatus["transport"]++
					continue
				}
				res.byStatus[fmt.Sprintf("%d", status)]++
				if status != http.StatusOK {
					res.errors++
					continue
				}
				res.lats = append(res.lats, lat)
			}
			results[c] = res
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := &Report{
		Graph: graphName, Clients: clients, Seconds: elapsed,
		ByAlgo: make(map[string]int64), ByStatus: make(map[string]int64),
	}
	var lats []float64
	for _, res := range results {
		rep.Requests += res.requests
		rep.Errors += res.errors
		for k, v := range res.byAlgo {
			rep.ByAlgo[k] += v
		}
		for k, v := range res.byStatus {
			rep.ByStatus[k] += v
		}
		lats = append(lats, res.lats...)
	}
	if elapsed > 0 {
		rep.QPS = float64(rep.Requests) / elapsed
	}
	sort.Float64s(lats)
	rep.P50 = percentile(lats, 0.50)
	rep.P90 = percentile(lats, 0.90)
	rep.P99 = percentile(lats, 0.99)
	if len(lats) > 0 {
		rep.Max = lats[len(lats)-1]
	}
	// Best-effort server-side snapshot, as deltas against the pre-run
	// state; a dead server just leaves zeros. AdmissionPeak is a
	// server-lifetime high-water mark, not a delta.
	if m, err := fetchMetrics(context.Background(), httpc, base); err == nil {
		var b MetricsResponse
		if before != nil {
			b = *before
		}
		rep.CacheHits = m.Cache.Hits - b.Cache.Hits
		rep.CacheMisses = m.Cache.Misses - b.Cache.Misses
		rep.CoalescedQueries = m.Coalescer.Queries - b.Coalescer.Queries
		rep.CoalescedBatches = m.Coalescer.Batches - b.Coalescer.Batches
		rep.AdmissionPeak = m.Admission.Peak
	}
	return rep, nil
}

// mixPicker draws algorithms from a weighted mix.
type mixPicker struct {
	algos   []string
	cumsum  []int
	totalWt int
}

func newMixPicker(mix map[string]int) (*mixPicker, error) {
	known := make(map[string]bool, len(Algos))
	for _, a := range Algos {
		known[a] = true
	}
	p := &mixPicker{}
	// Deterministic order: iterate the canonical algo list.
	for _, algo := range Algos {
		wt, ok := mix[algo]
		if !ok || wt <= 0 {
			continue
		}
		p.totalWt += wt
		p.algos = append(p.algos, algo)
		p.cumsum = append(p.cumsum, p.totalWt)
	}
	for algo := range mix {
		if !known[algo] {
			return nil, fmt.Errorf("loadgen: unknown algo %q in mix", algo)
		}
	}
	if p.totalWt == 0 {
		return nil, errors.New("loadgen: empty traffic mix")
	}
	return p, nil
}

func (p *mixPicker) pick(rng *rand.Rand) string {
	x := rng.Intn(p.totalWt)
	for i, c := range p.cumsum {
		if x < c {
			return p.algos[i]
		}
	}
	return p.algos[len(p.algos)-1]
}

// queryURL builds one request URL for the drawn algorithm.
func queryURL(base, graphName, algo string, rng *rand.Rand, numSrc int, cfg LoadConfig) string {
	v := url.Values{}
	v.Set("graph", graphName)
	switch algo {
	case "bfs", "sssp":
		v.Set("src", fmt.Sprintf("%d", rng.Intn(numSrc)))
	case "reachable":
		v.Set("src", fmt.Sprintf("%d", rng.Intn(numSrc)))
	case "p2p":
		v.Set("src", fmt.Sprintf("%d", rng.Intn(numSrc)))
		v.Set("dst", fmt.Sprintf("%d", rng.Intn(numSrc)))
	case "scc", "kcore":
		// Whole-graph queries carry no vertex arguments.
	}
	if !cfg.Coalesce {
		v.Set("coalesce", "off")
	}
	if !cfg.Cache {
		v.Set("cache", "off")
	}
	if cfg.Summary {
		v.Set("summary", "1")
	}
	if cfg.Timeout > 0 {
		v.Set("timeout", cfg.Timeout.String())
	}
	return base + "/query/" + algo + "?" + v.Encode()
}

// fetch issues one GET and fully drains the body (keep-alive reuse).
func fetch(ctx context.Context, httpc *http.Client, u string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, err
	}
	_, err = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, err
}

// pickGraph resolves the graph to target and its vertex count via /graphs.
func pickGraph(ctx context.Context, httpc *http.Client, base, want string) (string, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/graphs", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("loadgen: %s unreachable: %w", base, err)
	}
	defer resp.Body.Close()
	var gr GraphsResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		return "", 0, fmt.Errorf("loadgen: bad /graphs response: %w", err)
	}
	if want != "" {
		info, ok := gr.Graphs[want]
		if !ok {
			return "", 0, fmt.Errorf("loadgen: server does not serve graph %q", want)
		}
		return want, info.N, nil
	}
	// Deterministic pick: smallest name wins.
	names := make([]string, 0, len(gr.Graphs))
	for name := range gr.Graphs {
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", 0, errors.New("loadgen: server serves no graphs")
	}
	sort.Strings(names)
	return names[0], gr.Graphs[names[0]].N, nil
}

func fetchMetrics(ctx context.Context, httpc *http.Client, base string) (*MetricsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// percentile returns the pth percentile (0 < p <= 1) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteReport renders rep as an aligned human-readable summary.
func WriteReport(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs over %d clients on graph %q\n",
		rep.Requests, rep.Seconds, rep.Clients, rep.Graph)
	fmt.Fprintf(w, "  throughput  %.0f queries/sec (%d errors)\n", rep.QPS, rep.Errors)
	fmt.Fprintf(w, "  latency     p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		rep.P50*1e3, rep.P90*1e3, rep.P99*1e3, rep.Max*1e3)
	if rep.CoalescedBatches > 0 {
		fmt.Fprintf(w, "  coalescing  %d queries over %d batches (%.1fx scan sharing)\n",
			rep.CoalescedQueries, rep.CoalescedBatches,
			float64(rep.CoalescedQueries)/float64(rep.CoalescedBatches))
	}
	if rep.CacheHits+rep.CacheMisses > 0 {
		fmt.Fprintf(w, "  cache       %d hits / %d misses\n", rep.CacheHits, rep.CacheMisses)
	}
	fmt.Fprintf(w, "  admission   peak %d in flight\n", rep.AdmissionPeak)
	algos := make([]string, 0, len(rep.ByAlgo))
	for a := range rep.ByAlgo {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	var parts []string
	for _, a := range algos {
		parts = append(parts, fmt.Sprintf("%s=%d", a, rep.ByAlgo[a]))
	}
	fmt.Fprintf(w, "  mix         %s\n", strings.Join(parts, " "))
}
