package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// testShapes are the serving conformance graphs: one per structural
// regime the library's algorithms branch on (deep chain, power-law
// social, sparse grid, hub-and-spoke, random directed).
func testShapes() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"chain":  gen.Chain(300, true),
		"social": gen.SocialRMAT(10, 8, true, 42),
		"grid":   gen.Grid2D(20, 20, false, 7),
		"star":   gen.Star(128),
		"er":     gen.ER(400, 1600, true, 99),
	}
}

// newTestServer stands up a Server over graphs behind an httptest
// listener and tears both down with the test.
func newTestServer(t *testing.T, graphs map[string]*graph.Graph, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(graphs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// getJSON issues one GET and decodes the response body into out,
// reporting the status code and the raw body.
func getJSON(t *testing.T, url string, out any) (status int, body []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decode: %v\nbody: %.200s", url, err, body)
		}
	}
	return resp.StatusCode, body
}

// wantStatus fails unless the URL answers with the expected status.
func wantStatus(t *testing.T, url string, want int) {
	t.Helper()
	status, body := getJSON(t, url, nil)
	if status != want {
		t.Fatalf("GET %s: status %d, want %d\nbody: %.200s", url, status, want, body)
	}
}

// oracleWeighted mirrors the server's lazy weighting: the graph itself
// when weighted, else the same deterministic uniform weights New attaches
// (WeightSeed defaults to 1).
func oracleWeighted(g *graph.Graph) *graph.Graph {
	if g.Weighted() {
		return g
	}
	return gen.AddUniformWeights(g, 1, 1<<8, 1)
}

// samePartition reports whether two labelings induce the same partition.
func samePartition(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[uint32]uint32)
	rev := make(map[uint32]uint32)
	for i := range a {
		if l, ok := fwd[a[i]]; ok && l != b[i] {
			return false
		}
		if l, ok := rev[b[i]]; ok && l != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// TestServeDifferential runs every endpoint over every conformance shape
// and checks each response against the sequential oracle.
func TestServeDifferential(t *testing.T) {
	shapes := testShapes()
	_, hs := newTestServer(t, shapes, Config{})
	for name, g := range shapes {
		g := g
		t.Run(name, func(t *testing.T) {
			srcs := []uint32{0, uint32(g.N / 2), uint32(g.N - 1)}
			wg := oracleWeighted(g)

			for _, src := range srcs {
				var br BFSResponse
				u := fmt.Sprintf("%s/query/bfs?graph=%s&src=%d", hs.URL, name, src)
				if st, _ := getJSON(t, u, &br); st != http.StatusOK {
					t.Fatalf("bfs src %d: status %d", src, st)
				}
				want := seq.BFS(g, src)
				for v := range want {
					if br.Dist[v] != want[v] {
						t.Fatalf("bfs src %d: dist[%d] = %d, oracle %d", src, v, br.Dist[v], want[v])
					}
				}

				var sr SSSPResponse
				u = fmt.Sprintf("%s/query/sssp?graph=%s&src=%d", hs.URL, name, src)
				if st, _ := getJSON(t, u, &sr); st != http.StatusOK {
					t.Fatalf("sssp src %d: status %d", src, st)
				}
				wantD := seq.Dijkstra(wg, src)
				for v := range wantD {
					if sr.Dist[v] != wantD[v] {
						t.Fatalf("sssp src %d: dist[%d] = %d, oracle %d", src, v, sr.Dist[v], wantD[v])
					}
				}

				var rr ReachableResponse
				u = fmt.Sprintf("%s/query/reachable?graph=%s&src=%d", hs.URL, name, src)
				if st, _ := getJSON(t, u, &rr); st != http.StatusOK {
					t.Fatalf("reachable src %d: status %d", src, st)
				}
				for v := range want {
					if rr.Reachable[v] != (want[v] != graph.InfDist) {
						t.Fatalf("reachable src %d: vertex %d = %t, oracle %t",
							src, v, rr.Reachable[v], want[v] != graph.InfDist)
					}
				}

				dst := uint32(g.N-1) - src%uint32(g.N)
				var pr P2PResponse
				u = fmt.Sprintf("%s/query/p2p?graph=%s&src=%d&dst=%d", hs.URL, name, src, dst)
				if st, _ := getJSON(t, u, &pr); st != http.StatusOK {
					t.Fatalf("p2p %d->%d: status %d", src, dst, st)
				}
				if pr.Dist != wantD[dst] {
					t.Fatalf("p2p %d->%d: dist %d, oracle %d", src, dst, pr.Dist, wantD[dst])
				}
				if pr.Reachable != (wantD[dst] != core.InfWeight) {
					t.Fatalf("p2p %d->%d: reachable %t disagrees with dist %d", src, dst, pr.Reachable, pr.Dist)
				}
			}

			u := fmt.Sprintf("%s/query/scc?graph=%s", hs.URL, name)
			if !g.Directed {
				// SCC is defined on directed graphs only; the daemon
				// must refuse rather than panic the connection.
				wantStatus(t, u, http.StatusBadRequest)
			} else {
				var cr SCCResponse
				if st, _ := getJSON(t, u, &cr); st != http.StatusOK {
					t.Fatalf("scc: status %d", st)
				}
				wantLabels, wantCount := seq.TarjanSCC(g)
				if cr.Components != wantCount {
					t.Fatalf("scc: %d components, oracle %d", cr.Components, wantCount)
				}
				if !samePartition(cr.Labels, wantLabels) {
					t.Fatal("scc: labels do not partition like the oracle")
				}
			}

			var kr KCoreResponse
			u = fmt.Sprintf("%s/query/kcore?graph=%s", hs.URL, name)
			if st, _ := getJSON(t, u, &kr); st != http.StatusOK {
				t.Fatalf("kcore: status %d", st)
			}
			sym := g
			if g.Directed {
				sym = g.Symmetrized()
			}
			wantCore, wantDeg := seq.KCore(sym)
			if kr.Degeneracy != wantDeg {
				t.Fatalf("kcore: degeneracy %d, oracle %d", kr.Degeneracy, wantDeg)
			}
			for v := range wantCore {
				if kr.Core[v] != wantCore[v] {
					t.Fatalf("kcore: core[%d] = %d, oracle %d", v, kr.Core[v], wantCore[v])
				}
			}
		})
	}
}

// TestServeMultiSourceReachable checks the comma-separated source form
// against a per-source oracle union.
func TestServeMultiSourceReachable(t *testing.T) {
	g := gen.ER(300, 900, true, 5)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	srcs := []uint32{3, 77, 250}
	want := make([]bool, g.N)
	for _, s := range srcs {
		for v, d := range seq.BFS(g, s) {
			if d != graph.InfDist {
				want[v] = true
			}
		}
	}
	var rr ReachableResponse
	u := fmt.Sprintf("%s/query/reachable?graph=g&src=3,77,250", hs.URL)
	if st, _ := getJSON(t, u, &rr); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	for v := range want {
		if rr.Reachable[v] != want[v] {
			t.Fatalf("vertex %d: %t, oracle %t", v, rr.Reachable[v], want[v])
		}
	}
}

// TestServeCoalesceOffMatchesOn: ?coalesce=off must answer identically to
// the coalesced path — same oracle distances either way.
func TestServeCoalesceOffMatchesOn(t *testing.T) {
	g := gen.SocialRMAT(10, 8, true, 17)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	for _, src := range []uint32{0, 9, 300} {
		var on, off BFSResponse
		getJSON(t, fmt.Sprintf("%s/query/bfs?graph=g&src=%d&cache=off", hs.URL, src), &on)
		getJSON(t, fmt.Sprintf("%s/query/bfs?graph=g&src=%d&cache=off&coalesce=off", hs.URL, src), &off)
		want := seq.BFS(g, src)
		for v := range want {
			if on.Dist[v] != want[v] || off.Dist[v] != want[v] {
				t.Fatalf("src %d vertex %d: coalesced %d, direct %d, oracle %d",
					src, v, on.Dist[v], off.Dist[v], want[v])
			}
		}
	}
}

// TestServeSummaryMode: ?summary=1 ships the aggregates without the
// per-vertex array, agrees with the full response, and keys the cache
// separately from it.
func TestServeSummaryMode(t *testing.T) {
	g := gen.ER(300, 1200, true, 13)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	var full, sum BFSResponse
	getJSON(t, hs.URL+"/query/bfs?graph=g&src=4", &full)
	status, body := getJSON(t, hs.URL+"/query/bfs?graph=g&src=4&summary=1", &sum)
	if status != http.StatusOK {
		t.Fatalf("summary query: status %d", status)
	}
	if len(sum.Dist) != 0 {
		t.Fatalf("summary response carries %d dist entries", len(sum.Dist))
	}
	if sum.Reached != full.Reached || sum.Ecc != full.Ecc {
		t.Fatalf("summary %+v disagrees with full response (reached %d, ecc %d)",
			sum, full.Reached, full.Ecc)
	}
	if len(body) > 200 {
		t.Fatalf("summary body is %d bytes; the array leaked into it", len(body))
	}
	// The second summary query must hit its own cache entry, not the
	// full response's.
	resp, err := http.Get(hs.URL + "/query/bfs?graph=g&src=4&summary=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m := resp.Header.Get("X-Pasgal-Cache"); m != "hit" {
		t.Fatalf("repeat summary query: cache marker %q, want hit", m)
	}
}

// TestServeErrorPaths covers the client-error surface: bad methods,
// unknown graphs, missing/garbage/out-of-range vertices, bad overrides.
func TestServeErrorPaths(t *testing.T) {
	g := gen.Chain(50, true)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})

	wantStatus(t, hs.URL+"/query/bfs?graph=nope&src=0", http.StatusNotFound)
	wantStatus(t, hs.URL+"/query/bfs?graph=g", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=banana", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=50", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/p2p?graph=g&src=0", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/reachable?graph=g&src=1,banana", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0&tau=banana", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0&densefrac=x", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0&timeout=banana", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0&timeout=-1s", http.StatusBadRequest)

	resp, err := http.Post(hs.URL+"/query/bfs?graph=g&src=0", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}

	var er ErrorResponse
	status, body := getJSON(t, hs.URL+"/query/bfs?graph=nope&src=0", nil)
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not ErrorResponse JSON: %v", err)
	}
	if er.Status != status || er.Error == "" {
		t.Fatalf("error body %+v does not echo status %d", er, status)
	}
}

// TestServeGraphsAndHealth covers the inventory and liveness endpoints.
func TestServeGraphsAndHealth(t *testing.T) {
	shapes := map[string]*graph.Graph{
		"a": gen.Chain(10, true),
		"b": gen.Star(5),
	}
	_, hs := newTestServer(t, shapes, Config{})

	var gr GraphsResponse
	if st, _ := getJSON(t, hs.URL+"/graphs", &gr); st != http.StatusOK {
		t.Fatalf("/graphs status %d", st)
	}
	if len(gr.Graphs) != 2 || gr.Graphs["a"].N != 10 || gr.Graphs["b"].Directed {
		t.Fatalf("bad inventory: %+v", gr.Graphs)
	}

	var hr HealthResponse
	if st, _ := getJSON(t, hs.URL+"/healthz", &hr); st != http.StatusOK {
		t.Fatalf("/healthz status %d", st)
	}
	if hr.Status != "ok" || hr.Graphs != 2 {
		t.Fatalf("bad health: %+v", hr)
	}
}

// TestServeDrain: after Close, queries and health answer 503 and the
// response says draining; Close is idempotent.
func TestServeDrain(t *testing.T) {
	g := gen.Chain(50, true)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0", http.StatusOK)
	s.Close()
	s.Close() // idempotent
	wantStatus(t, hs.URL+"/query/bfs?graph=g&src=0", http.StatusServiceUnavailable)
	var hr HealthResponse
	status, body := getJSON(t, hs.URL+"/healthz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while draining: status %d", status)
	}
	if err := json.Unmarshal(body, &hr); err != nil || hr.Status != "draining" {
		t.Fatalf("bad draining health body %q (err %v)", body, err)
	}
	var mr MetricsResponse
	if st, _ := getJSON(t, hs.URL+"/metrics", &mr); st != http.StatusOK || !mr.Draining {
		t.Fatalf("/metrics while draining: status %d, draining %t", st, mr.Draining)
	}
}

// TestServeNewValidation: New rejects empty maps, nil graphs, empty
// names, and invalid graphs.
func TestServeNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("New(nil) succeeded")
	}
	if _, err := New(map[string]*graph.Graph{"g": nil}, Config{}); err == nil {
		t.Fatal("New with a nil graph succeeded")
	}
	if _, err := New(map[string]*graph.Graph{"": gen.Chain(4, true)}, Config{}); err == nil {
		t.Fatal("New with an empty name succeeded")
	}
	bad := &graph.Graph{N: 2, Offsets: []uint64{0, 1}} // truncated offsets
	if _, err := New(map[string]*graph.Graph{"g": bad}, Config{}); err == nil {
		t.Fatal("New with an invalid graph succeeded")
	}
}

// TestServeMetricsAccounting: the per-algo counters and totals track the
// traffic exactly on a quiet server.
func TestServeMetricsAccounting(t *testing.T) {
	g := gen.Chain(60, true)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	for i := 0; i < 3; i++ {
		wantStatus(t, fmt.Sprintf("%s/query/bfs?graph=g&src=%d", hs.URL, i), http.StatusOK)
	}
	wantStatus(t, hs.URL+"/query/scc?graph=g", http.StatusOK)
	wantStatus(t, hs.URL+"/query/bfs?graph=nope&src=0", http.StatusNotFound) // not counted: no graph

	var mr MetricsResponse
	if st, _ := getJSON(t, hs.URL+"/metrics", &mr); st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	if mr.Queries.Total != 4 || mr.Queries.ByAlgo["bfs"] != 3 || mr.Queries.ByAlgo["scc"] != 1 {
		t.Fatalf("bad accounting: %+v", mr.Queries)
	}
	if mr.Queries.Failures != 0 {
		t.Fatalf("failures = %d on clean traffic", mr.Queries.Failures)
	}
	if mr.Admission.Capacity < 1 || mr.Admission.Peak > int64(mr.Admission.Capacity) {
		t.Fatalf("admission peak %d exceeds capacity %d", mr.Admission.Peak, mr.Admission.Capacity)
	}
	if mr.Tracer["rounds"] == 0 {
		t.Fatal("tracer rounds counter never moved")
	}
}

// TestServeCompressedGraph serves the same graph twice — plain CSR and
// compressed — through NewAdj and checks that every compressed-capable
// endpoint answers byte-equivalently on both, that scc/kcore refuse the
// compressed representation with a clear 400, and that /graphs marks the
// representation.
func TestServeCompressedGraph(t *testing.T) {
	g := gen.SocialRMAT(10, 8, true, 42)
	s, err := NewAdj(map[string]graph.Adjacency{
		"plain": g,
		"zc":    graph.Compress(g),
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})

	// Coalescing makes bfs/reachable answers identical by construction on
	// one graph but the two names have separate coalescers, so this also
	// exercises the compressed MS-BFS path end to end.
	for _, src := range []uint32{0, uint32(g.N / 2), uint32(g.N - 1)} {
		for _, ep := range []string{
			fmt.Sprintf("/query/bfs?graph=%%s&src=%d", src),
			fmt.Sprintf("/query/bfs?graph=%%s&src=%d&coalesce=off", src),
			fmt.Sprintf("/query/sssp?graph=%%s&src=%d", src),
			fmt.Sprintf("/query/reachable?graph=%%s&src=%d", src),
			fmt.Sprintf("/query/p2p?graph=%%s&src=%d&dst=%d", src, uint32(g.N-1)-src),
		} {
			stP, bodyP := getJSON(t, hs.URL+fmt.Sprintf(ep, "plain"), nil)
			stZ, bodyZ := getJSON(t, hs.URL+fmt.Sprintf(ep, "zc"), nil)
			if stP != http.StatusOK || stZ != http.StatusOK {
				t.Fatalf("%s: plain %d, compressed %d", ep, stP, stZ)
			}
			// Bodies differ only in the graph name; normalize it out.
			norm := func(b []byte, name string) string {
				return strings.Replace(string(b), `"graph":"`+name+`"`, `"graph":"G"`, 1)
			}
			if norm(bodyP, "plain") != norm(bodyZ, "zc") {
				t.Fatalf("%s: plain and compressed answers differ\nplain: %.200s\nzc:    %.200s",
					ep, bodyP, bodyZ)
			}
		}
	}

	// Unsupported on compressed: clear client error, not a 500.
	for _, ep := range []string{"/query/scc?graph=zc", "/query/kcore?graph=zc"} {
		st, body := getJSON(t, hs.URL+ep, nil)
		if st != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400\nbody: %.200s", ep, st, body)
		}
		if !strings.Contains(string(body), "not supported on compressed graph") {
			t.Fatalf("%s: error body %.200s does not explain the refusal", ep, body)
		}
	}
	// ...and still fine on the plain twin.
	wantStatus(t, hs.URL+"/query/scc?graph=plain", http.StatusOK)
	wantStatus(t, hs.URL+"/query/kcore?graph=plain", http.StatusOK)

	var gr GraphsResponse
	if st, _ := getJSON(t, hs.URL+"/graphs", &gr); st != http.StatusOK {
		t.Fatalf("/graphs status %d", st)
	}
	if gr.Graphs["plain"].Compressed || !gr.Graphs["zc"].Compressed {
		t.Fatalf("representation flags wrong: %+v", gr.Graphs)
	}
	if gr.Graphs["zc"].N != g.N || gr.Graphs["zc"].M != g.M() {
		t.Fatalf("compressed inventory wrong: %+v", gr.Graphs["zc"])
	}
}
