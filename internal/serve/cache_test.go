package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// getRaw issues one GET and returns status, body, and the cache marker.
func getRaw(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Pasgal-Cache")
}

// TestServeCacheByteIdentical: a repeat query replays the exact bytes of
// the first response, marked as a hit.
func TestServeCacheByteIdentical(t *testing.T) {
	g := gen.ER(300, 1200, true, 11)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	for _, target := range []string{
		"/query/bfs?graph=g&src=7",
		"/query/sssp?graph=g&src=7",
		"/query/scc?graph=g",
		"/query/kcore?graph=g",
		"/query/reachable?graph=g&src=7",
		"/query/p2p?graph=g&src=7&dst=200",
	} {
		st1, body1, mark1 := getRaw(t, hs.URL+target)
		st2, body2, mark2 := getRaw(t, hs.URL+target)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: statuses %d, %d", target, st1, st2)
		}
		if mark1 != "miss" || mark2 != "hit" {
			t.Fatalf("%s: cache markers %q, %q; want miss, hit", target, mark1, mark2)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("%s: cache hit is not byte-identical\nfirst:  %.120q\nsecond: %.120q",
				target, body1, body2)
		}
	}
	hits, misses := s.cache.stats()
	if hits != 6 || misses != 6 {
		t.Fatalf("cache stats: %d hits / %d misses, want 6/6", hits, misses)
	}
}

// TestServeCacheKeyNormalization: sentinel spellings of the same
// effective options share one cache entry — tau=0 is tau=512,
// densefrac=0 is densefrac=0.05 after Options.Normalized.
func TestServeCacheKeyNormalization(t *testing.T) {
	g := gen.ER(200, 800, true, 3)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	variants := []string{
		"/query/bfs?graph=g&src=5",
		"/query/bfs?graph=g&src=5&tau=512",
		"/query/bfs?graph=g&src=5&tau=0",
		"/query/bfs?graph=g&src=5&densefrac=0.05",
		"/query/bfs?graph=g&src=5&tau=512&densefrac=0.05",
	}
	_, first, mark := getRaw(t, hs.URL+variants[0])
	if mark != "miss" {
		t.Fatalf("first query: marker %q", mark)
	}
	for _, v := range variants[1:] {
		_, body, mark := getRaw(t, hs.URL+v)
		if mark != "hit" {
			t.Fatalf("%s: marker %q, want hit — sentinel spelling missed the shared key", v, mark)
		}
		if !bytes.Equal(body, first) {
			t.Fatalf("%s: body differs from the canonical spelling", v)
		}
	}
	// A genuinely different option must NOT share the entry.
	if _, _, mark := getRaw(t, hs.URL+"/query/bfs?graph=g&src=5&tau=64"); mark != "miss" {
		t.Fatal("tau=64 hit the tau=512 entry")
	}
	if c := s.cache.len(); c != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per distinct normalized key)", c)
	}
}

// TestServeCacheOptOut: cache=off neither reads nor writes the cache.
func TestServeCacheOptOut(t *testing.T) {
	g := gen.Chain(100, true)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	for i := 0; i < 2; i++ {
		_, _, mark := getRaw(t, hs.URL+"/query/bfs?graph=g&src=9&cache=off")
		if mark != "miss" {
			t.Fatalf("round %d: marker %q, want miss", i, mark)
		}
	}
	if c := s.cache.len(); c != 0 {
		t.Fatalf("cache holds %d entries after cache=off traffic", c)
	}
	if got := s.cacheBypass.Load(); got != 2 {
		t.Fatalf("cacheBypass = %d, want 2", got)
	}
	// The opt-out body still matches the cached path's body.
	_, direct, _ := getRaw(t, hs.URL+"/query/bfs?graph=g&src=9&cache=off")
	_, cached, _ := getRaw(t, hs.URL+"/query/bfs?graph=g&src=9")
	if !bytes.Equal(direct, cached) {
		t.Fatal("cache=off body differs from the cacheable body")
	}
}

// TestServeCacheEviction: the entry bound holds under churn and evicts
// least-recently-used first.
func TestServeCacheEviction(t *testing.T) {
	g := gen.Chain(100, true)
	s, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{CacheEntries: 4})
	for src := 0; src < 10; src++ {
		getRaw(t, fmt.Sprintf("%s/query/bfs?graph=g&src=%d", hs.URL, src))
	}
	if c := s.cache.len(); c != 4 {
		t.Fatalf("cache holds %d entries, bound is 4", c)
	}
	// The four most recent (6..9) are in; the oldest (0) was evicted.
	if _, _, mark := getRaw(t, hs.URL+"/query/bfs?graph=g&src=9"); mark != "hit" {
		t.Fatal("most recent entry evicted")
	}
	if _, _, mark := getRaw(t, hs.URL+"/query/bfs?graph=g&src=0"); mark != "miss" {
		t.Fatal("oldest entry survived a full churn")
	}
	if c := s.cache.len(); c != 4 {
		t.Fatalf("cache holds %d entries after refill, bound is 4", c)
	}
}

// TestServeCacheDisabled: a negative CacheEntries turns caching off
// entirely; /metrics reports it disabled.
func TestServeCacheDisabled(t *testing.T) {
	g := gen.Chain(50, true)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{CacheEntries: -1})
	for i := 0; i < 2; i++ {
		_, _, mark := getRaw(t, hs.URL+"/query/bfs?graph=g&src=3")
		if mark != "miss" {
			t.Fatalf("round %d: marker %q with caching disabled", i, mark)
		}
	}
	var mr MetricsResponse
	if st, _ := getJSON(t, hs.URL+"/metrics", &mr); st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	if mr.Cache.Enabled || mr.Cache.Entries != 0 || mr.Cache.Hits != 0 {
		t.Fatalf("disabled cache reports %+v", mr.Cache)
	}
}

// Unit tests for the LRU itself.

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatalf("get a = %q, %t", body, ok)
	}
	c.put("c", []byte("C")) // evicts b (a was refreshed by the get)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived; LRU order ignores recency of use")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
	c.put("a", []byte("A2")) // refresh in place
	if body, _ := c.get("a"); string(body) != "A2" {
		t.Fatalf("refresh did not replace the body: %q", body)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	hits, misses := c.stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats %d/%d, want 3 hits / 1 miss", hits, misses)
	}
}

func TestResultCacheNil(t *testing.T) {
	var c *resultCache
	if c := newResultCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	c.put("k", []byte("v")) // must not panic
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m := c.stats(); h != 0 || m != 0 {
		t.Fatal("nil cache has stats")
	}
}
