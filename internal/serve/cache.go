package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is the server's bounded LRU result cache. Values are fully
// marshaled response bodies, so a hit replays the exact bytes the first
// computation produced — the cache-coherence tests assert byte identity.
// Keys are built by cacheKey from (graph, algo, sources, normalized
// options): two requests spelling the same effective options differently
// (tau=0 vs tau=512, the sentinel encodings core.Options.Normalized
// resolves) share one entry.
//
// A nil *resultCache is the "caching disabled" representation: get always
// misses and put is a no-op, so the handlers thread it unconditionally.
type resultCache struct {
	capacity int

	mu      sync.Mutex
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded to capacity entries, or nil
// (caching disabled) when capacity <= 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached body for key and refreshes its recency. The
// returned slice is shared — callers must not modify it.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	c.mu.Unlock()
	c.hits.Add(1)
	return body, true
}

// put stores body under key, evicting the least recently used entry once
// the bound is hit. Storing an existing key refreshes its body and
// recency.
func (c *resultCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// len reports the current entry count (0 when disabled).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// stats reports cumulative hit/miss counts (zeros when disabled).
func (c *resultCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
