package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionBound: under heavy concurrent acquire/release churn the
// in-flight count never exceeds the capacity, measured both by the
// controller's own peak gauge and by an external counter.
func TestAdmissionBound(t *testing.T) {
	const capacity = 3
	a := newAdmission(capacity)
	var wg sync.WaitGroup
	var external sync.Mutex
	inUse, peak := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			external.Lock()
			inUse++
			if inUse > peak {
				peak = inUse
			}
			external.Unlock()
			time.Sleep(time.Millisecond)
			external.Lock()
			inUse--
			external.Unlock()
			a.release()
		}()
	}
	wg.Wait()
	if peak > capacity {
		t.Fatalf("external peak %d exceeds capacity %d", peak, capacity)
	}
	if p := a.peak.Load(); p > capacity {
		t.Fatalf("gauge peak %d exceeds capacity %d", p, capacity)
	}
	if in := a.inflight.Load(); in != 0 {
		t.Fatalf("inflight = %d after all released", in)
	}
	if got := a.admitted.Load(); got != 64 {
		t.Fatalf("admitted = %d, want 64", got)
	}
}

// TestAdmissionAbandon: a queued acquire whose context dies returns the
// context's cause, counts as abandoned, and leaves the slot untouched.
func TestAdmissionAbandon(t *testing.T) {
	a := newAdmission(1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("client walked away")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := a.acquire(ctx); !errors.Is(err, cause) {
		t.Fatalf("acquire on dead context: %v, want the cancellation cause", err)
	}
	if got := a.abandoned.Load(); got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}
	a.release()
	// The abandoned wait must not have consumed or corrupted the slot.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("slot corrupted after abandon: %v", err)
	}
	a.release()
}

// TestAdmissionBatchBlocks: acquireBatch has no context and waits out a
// full controller rather than failing.
func TestAdmissionBatchBlocks(t *testing.T) {
	a := newAdmission(1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		a.acquireBatch()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("acquireBatch succeeded while the controller was full")
	case <-time.After(20 * time.Millisecond):
	}
	a.release()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("acquireBatch never woke after the release")
	}
	a.release()
	if w := a.waited.Load(); w != 1 {
		t.Fatalf("waited = %d, want 1", w)
	}
}
