package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// TestLoadgenEndToEnd drives the load generator against an in-process
// daemon and checks the report accounting.
func TestLoadgenEndToEnd(t *testing.T) {
	g := gen.SocialRMAT(9, 8, true, 77)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  hs.URL,
		Clients:  4,
		Requests: 48,
		Cache:    true,
		Coalesce: true,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 48 {
		t.Fatalf("requests = %d, want 48", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d on clean traffic (statuses %v)", rep.Errors, rep.ByStatus)
	}
	if rep.Graph != "g" {
		t.Fatalf("graph = %q", rep.Graph)
	}
	if rep.QPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("implausible latency stats: %+v", rep)
	}
	var byAlgo int64
	for _, v := range rep.ByAlgo {
		byAlgo += v
	}
	if byAlgo != rep.Requests {
		t.Fatalf("by_algo sums to %d, requests %d", byAlgo, rep.Requests)
	}
	if rep.ByStatus["200"] != 48 {
		t.Fatalf("statuses %v, want all 200", rep.ByStatus)
	}
	// The mixed workload repeats sources, so the server-side snapshot
	// must show cache activity; coalescing must have batched something.
	if rep.CacheHits+rep.CacheMisses == 0 {
		t.Fatal("no cache activity visible in the report")
	}
	if rep.CoalescedBatches == 0 {
		t.Fatal("no coalesced batches visible in the report")
	}
	if rep.AdmissionPeak < 1 {
		t.Fatal("admission peak never moved")
	}
}

// TestLoadgenCoalesceOff: the A/B switch reaches the server — with
// Coalesce false, zero queries ride the coalescer.
func TestLoadgenCoalesceOff(t *testing.T) {
	g := gen.SocialRMAT(9, 8, true, 78)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  hs.URL,
		Clients:  4,
		Requests: 24,
		Mix:      map[string]int{"bfs": 1},
		Cache:    false,
		Coalesce: false,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (statuses %v)", rep.Errors, rep.ByStatus)
	}
	if rep.CoalescedQueries != 0 {
		t.Fatalf("%d queries coalesced despite coalesce=off", rep.CoalescedQueries)
	}
	if rep.CacheHits != 0 {
		t.Fatalf("%d cache hits despite cache=off", rep.CacheHits)
	}
	if rep.ByAlgo["bfs"] != rep.Requests {
		t.Fatalf("single-algo mix leaked: %v", rep.ByAlgo)
	}
}

// TestLoadgenValidation: bad configurations fail fast with clear errors.
func TestLoadgenValidation(t *testing.T) {
	g := gen.Chain(20, true)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})

	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	_, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Mix: map[string]int{"pagerank": 1},
	})
	if err == nil || !strings.Contains(err.Error(), "pagerank") {
		t.Fatalf("unknown algo accepted: %v", err)
	}
	_, err = RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Mix: map[string]int{"bfs": 0},
	})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("all-zero mix accepted: %v", err)
	}
	_, err = RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Graph: "nope", Requests: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown graph accepted: %v", err)
	}
	if _, err := RunLoad(context.Background(), LoadConfig{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

// TestLoadgenDurationStop: a duration bound ends the run early without
// reporting a failure.
func TestLoadgenDurationStop(t *testing.T) {
	g := gen.Chain(50_000, true)
	_, hs := newTestServer(t, map[string]*graph.Graph{"g": g}, Config{})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  hs.URL,
		Clients:  2,
		Requests: 1 << 20, // far more than the window allows
		Duration: 150 * time.Millisecond,
		Mix:      map[string]int{"sssp": 1},
		Cache:    false,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests >= 1<<20 {
		t.Fatal("duration bound did not stop the run")
	}
}

// TestPercentile pins the percentile picker on a known distribution.
func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 9}, {1.0, 10}, {0.01, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %g", got)
	}
	if got := percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("percentile(single) = %g", got)
	}
}

// TestMixPickerDeterministic: the weighted picker covers exactly the
// requested algorithms in canonical order.
func TestMixPickerDeterministic(t *testing.T) {
	p, err := newMixPicker(map[string]int{"p2p": 1, "bfs": 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.algos) != 2 || p.algos[0] != "bfs" || p.algos[1] != "p2p" {
		t.Fatalf("picker order %v, want canonical [bfs p2p]", p.algos)
	}
	if p.totalWt != 4 {
		t.Fatalf("total weight %d, want 4", p.totalWt)
	}
}
