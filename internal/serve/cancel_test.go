package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/trace"
)

// slowServer builds a server over a deep chain with Tau 1: a worst-case
// round count, so queries stay in flight long enough to cancel.
func slowServer(t *testing.T, n int) *Server {
	t.Helper()
	s, err := New(map[string]*graph.Graph{"chain": gen.Chain(n, true)},
		Config{Opt: core.Options{Tau: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do serves one request against the handler directly with the given
// context (the recorder path models a client disconnect precisely: the
// request context dies, the handler still gets to write its status).
func do(s *Server, ctx context.Context, target string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// decodeErr unwraps the ErrorResponse body of a failed query.
func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.NewDecoder(rec.Body).Decode(&er); err != nil {
		t.Fatalf("error body does not decode: %v (body %.120q)", err, rec.Body.String())
	}
	return er
}

// TestCancelServeDisconnect: a client disconnect mid-query maps to the
// 499 status, bumps the canceled counter, and frees the admission slot.
// Both the coalesced path (bfs) and the direct path (sssp) must comply.
func TestCancelServeDisconnect(t *testing.T) {
	s := slowServer(t, 150_000)
	for _, target := range []string{
		"/query/bfs?graph=chain&src=0",
		"/query/sssp?graph=chain&src=0",
	} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			// Cancel once the computation is demonstrably in flight.
			for s.tracer.CounterValue(trace.CtrRounds) < 8 {
				runtime.Gosched()
			}
			cancel()
		}()
		rec := do(s, ctx, target)
		cancel()
		if rec.Code != StatusClientClosedRequest {
			t.Fatalf("%s: status %d, want %d (body %.120q)",
				target, rec.Code, StatusClientClosedRequest, rec.Body.String())
		}
		if er := decodeErr(t, rec); er.Status != StatusClientClosedRequest {
			t.Fatalf("%s: error body %+v", target, er)
		}
	}
	if got := s.canceledQ.Load(); got != 2 {
		t.Fatalf("canceled counter = %d, want 2", got)
	}
	// The canceled bfs submitter returns before its coalesced batch
	// finishes running for potential lane-mates, so the batch's admission
	// slot may still be charged for a moment; it must settle to zero.
	waitInflightZero(t, s)
}

// waitInflightZero polls the admission gauge back to zero — a leaked
// slot stays pinned forever and fails the deadline.
func waitInflightZero(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.adm.inflight.Load() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission slot leaked: inflight = %d did not settle", s.adm.inflight.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelServeTimeout: an expired ?timeout= maps to 504 with the
// deadline counter bumped, on the coalesced and direct paths.
func TestCancelServeTimeout(t *testing.T) {
	s := slowServer(t, 150_000)
	for _, target := range []string{
		"/query/bfs?graph=chain&src=0&timeout=1ms",
		"/query/scc?graph=chain&timeout=1ms",
	} {
		rec := do(s, context.Background(), target)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d, want 504 (body %.120q)", target, rec.Code, rec.Body.String())
		}
		if er := decodeErr(t, rec); er.Status != http.StatusGatewayTimeout {
			t.Fatalf("%s: error body %+v", target, er)
		}
	}
	if got := s.deadlinedQ.Load(); got != 2 {
		t.Fatalf("deadline counter = %d, want 2", got)
	}
	waitInflightZero(t, s)
}

// TestCancelServePreCanceled: a request whose context is already dead
// fails typed without ever admitting work.
func TestCancelServePreCanceled(t *testing.T) {
	s := slowServer(t, 5_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := do(s, ctx, "/query/sssp?graph=chain&src=0")
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

// TestCancelServeSlotFreed: after a storm of canceled queries the
// admission controller must be back to empty and a fresh query must
// succeed — the slot is recycled, not leaked.
func TestCancelServeSlotFreed(t *testing.T) {
	s := slowServer(t, 100_000)
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		do(s, ctx, fmt.Sprintf("/query/sssp?graph=chain&src=%d", i))
		cancel()
	}
	waitInflightZero(t, s)
	rec := do(s, context.Background(), "/query/bfs?graph=chain&src=99999&timeout=30s")
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up query: status %d (body %.120q)", rec.Code, rec.Body.String())
	}
}

// TestCancelServeNoGoroutineLeak: canceled and deadlined queries leave no
// goroutines behind; the count settles back to its warm baseline (the
// settle loop mirrors internal/msbfs's cancellation suite).
func TestCancelServeNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("goroutine settle sweep; skipped with -short")
	}
	s := slowServer(t, 100_000)
	// Warm up: worker pool, coalescer loop, lazy weighted variant.
	if rec := do(s, context.Background(), "/query/bfs?graph=chain&src=0"); rec.Code != http.StatusOK {
		t.Fatalf("warmup: status %d", rec.Code)
	}
	if rec := do(s, context.Background(), "/query/sssp?graph=chain&src=0&timeout=5ms"); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("warmup timeout: status %d", rec.Code)
	}
	base := runtime.NumGoroutine()
	// Direct (uncoalesced) queries only: a canceled coalesced submit
	// still flushes its batch for potential lane-mates, which would keep
	// the coalescer loop busy long past this test's settle window.
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		do(s, ctx, "/query/bfs?graph=chain&src=1&coalesce=off&cache=off")
		cancel()
		do(s, context.Background(), "/query/sssp?graph=chain&src=2&timeout=2ms&cache=off")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d baseline",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelServeTimeoutCapped: a ?timeout= beyond MaxTimeout is capped,
// not rejected — the effective deadline is the server's.
func TestCancelServeTimeoutCapped(t *testing.T) {
	g := gen.Chain(200_000, true)
	s, err := New(map[string]*graph.Graph{"chain": g},
		Config{MaxTimeout: 5 * time.Millisecond, Opt: core.Options{Tau: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := do(s, context.Background(), "/query/sssp?graph=chain&src=0&timeout=1h")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: MaxTimeout must cap ?timeout=", rec.Code)
	}
}

// TestCancelServeImplicitDeadline: even without ?timeout=, a query cannot
// outlive MaxTimeout.
func TestCancelServeImplicitDeadline(t *testing.T) {
	g := gen.Chain(200_000, true)
	s, err := New(map[string]*graph.Graph{"chain": g},
		Config{MaxTimeout: 5 * time.Millisecond, Opt: core.Options{Tau: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := do(s, context.Background(), "/query/sssp?graph=chain&src=0")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 from the implicit deadline", rec.Code)
	}
}
