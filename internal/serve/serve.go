// Package serve is the PASGAL graph query daemon: a stdlib-only HTTP/JSON
// server that loads one or more graphs into memory once and answers
// concurrent bfs / sssp / scc / kcore / reachable / p2p queries against
// them under heavy load. It is the serving layer the ROADMAP's north star
// asks for, assembled from parts earlier PRs built:
//
//   - Options.Ctx + typed ErrCanceled/ErrDeadline bind every query to its
//     HTTP request context: a client disconnect cancels the parallel run
//     mid-flight (status 499), an expired ?timeout= maps to 504.
//   - A semaphore-based admission controller bounds concurrent parallel
//     computations so p queries do not oversubscribe the p-worker
//     scheduler; queued requests abandon the wait when their context dies.
//   - Single-source BFS and reachability route through the msbfs.Coalescer:
//     concurrent submitters group-commit into shared MS-BFS lane runs, and
//     each flushed batch charges ONE admission slot for up to 64 queries.
//   - A bounded LRU cache keyed on (graph, algo, sources, normalized
//     options) replays byte-identical response bodies on hits.
//   - trace.Tracer counters, cache hit/miss rates, and admission gauges
//     surface on /metrics; /healthz flips to 503 while draining.
//   - With Config.Mutable, graphs are served through delta.Store epoch
//     snapshots: POST /update applies insert/delete batches, every query
//     pins the epoch it answers from, and cache keys carry the graph
//     identity token plus the epoch so stale bodies can never replay.
//
// See docs/SERVING.md for the HTTP API and docs/UPDATES.md for the
// mutation contract.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/delta"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/msbfs"
	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when a query dies because its client disconnected. The typed
// core.ErrCanceled maps here; core.ErrDeadline maps to 504.
const StatusClientClosedRequest = 499

// DefaultCacheEntries is the default result-cache bound.
const DefaultCacheEntries = 256

// DefaultMaxTimeout caps per-request ?timeout= values and is the implicit
// deadline for requests that do not send one.
const DefaultMaxTimeout = 30 * time.Second

// Algos lists the query endpoints, in the order /metrics reports them.
var Algos = []string{"bfs", "sssp", "scc", "kcore", "reachable", "p2p"}

// Config tunes a Server. The zero value selects defaults.
type Config struct {
	// MaxConcurrent bounds concurrently executing parallel computations
	// (the admission controller's capacity); <= 0 selects the worker-team
	// size, so admitted queries never oversubscribe the scheduler.
	MaxConcurrent int

	// CacheEntries bounds the LRU result cache; 0 selects
	// DefaultCacheEntries, negative disables caching.
	CacheEntries int

	// MaxTimeout caps ?timeout= and is the implicit per-query deadline;
	// <= 0 selects DefaultMaxTimeout.
	MaxTimeout time.Duration

	// CoalesceWait is the coalescer's flush latency bound; <= 0 selects
	// msbfs.DefaultMaxWait.
	CoalesceWait time.Duration

	// DisableCoalesce turns off the coalesced single-source BFS /
	// reachability path: every query runs its own traversal under its
	// own admission slot (the ?coalesce=off A/B, server-wide).
	DisableCoalesce bool

	// Opt is the base algorithm configuration. Its Ctx is ignored (each
	// query binds its own request context); its Tracer, when nil, is
	// replaced by a server-private tracer that feeds /metrics.
	Opt core.Options

	// WeightSeed seeds the deterministic uniform weights attached to
	// unweighted graphs for sssp/p2p queries; 0 selects 1. The generated
	// weight of an edge depends only on (seed, endpoints), so per-epoch
	// weighted rebuilds of a mutable graph keep surviving edges' weights
	// stable across mutations.
	WeightSeed uint64

	// Mutable serves every plain-CSR graph through a delta.Store: queries
	// pin an immutable epoch snapshot, and POST /update applies
	// insert/delete batches that publish new epochs. Mutable serving
	// requires the plain representation (compressed and mmap-backed
	// graphs are rejected) and disables the coalescer — its lane batches
	// would otherwise mix sources from different epochs into one scan.
	Mutable bool

	// CompactFraction forwards to delta.Options for mutable graphs.
	CompactFraction float64
}

// graphIdent hands out process-unique graph identity tokens. Cache keys
// embed the token (plus the epoch) so entries can never outlive the
// exact graph value they were computed from — a second server, or the
// same name re-registered over different data, gets fresh keys.
var graphIdent atomic.Uint64

// servedGraph is one loaded graph plus its lazily built serving variants.
// The graph may be either representation: plain CSR or compressed
// (possibly a read-only mmap view). pg is the plain form when there is
// one — the algorithms without a compressed specialization (scc, kcore)
// require it and refuse compressed graphs instead of silently inflating
// a multi-gigabyte decompressed copy inside a request handler.
type servedGraph struct {
	name  string
	ident uint64 // process-unique identity token (cache key component)
	g     graph.Adjacency
	pg    *graph.Graph     // non-nil iff g is a plain *graph.Graph
	coal  *msbfs.Coalescer // nil when coalescing is disabled
	store *delta.Store     // non-nil iff the graph is served mutable

	weightSeed uint64
	wOnce      sync.Once
	weighted   graph.Adjacency // g, or g + deterministic uniform weights
	sOnce      sync.Once
	sym        *graph.Graph // pg, or pg.Symmetrized() for kcore

	// Per-epoch weighted variant for mutable graphs: rebuilt when a
	// query's pinned epoch moves past the cached one. Weight generation
	// keys on (seed, endpoints), so edges surviving a mutation keep
	// their weights across rebuilds.
	wMu     sync.Mutex
	wEpoch  uint64
	wForEp  graph.Adjacency
	updates atomic.Int64 // /update batches accepted
}

// wg returns the weighted serving variant (for sssp/p2p): the graph
// itself when it carries weights, otherwise a deterministically weighted
// copy built on first use. A compressed unweighted graph round-trips
// through decompression so the weighted variant keeps the compressed
// memory profile.
func (sg *servedGraph) wg() graph.Adjacency {
	sg.wOnce.Do(func() {
		if sg.g.HasWeights() {
			sg.weighted = sg.g
			return
		}
		if sg.pg != nil {
			sg.weighted = gen.AddUniformWeights(sg.pg, 1, 1<<8, sg.weightSeed)
			return
		}
		c := sg.g.(*graph.Compressed)
		sg.weighted = graph.Compress(
			gen.AddUniformWeights(c.Decompress(), 1, 1<<8, sg.weightSeed))
	})
	return sg.weighted
}

// wgAt returns the weighted variant of a mutable graph's pinned view.
// The last epoch's build is cached: steady query traffic between
// updates pays the materialize+weight cost once.
func (sg *servedGraph) wgAt(view graph.Adjacency, epoch uint64) graph.Adjacency {
	if view.HasWeights() {
		return view
	}
	sg.wMu.Lock()
	defer sg.wMu.Unlock()
	if sg.wForEp != nil && sg.wEpoch == epoch {
		return sg.wForEp
	}
	var pg *graph.Graph
	switch v := view.(type) {
	case *graph.Graph:
		pg = v
	case *graph.Overlay:
		pg = v.Materialize()
	default:
		panic(fmt.Sprintf("serve: unexpected mutable view %T", view))
	}
	sg.wEpoch = epoch
	sg.wForEp = gen.AddUniformWeights(pg, 1, 1<<8, sg.weightSeed)
	return sg.wForEp
}

// plain returns the plain-CSR form, or a client error for algorithms
// that only run on it. Mutable graphs are refused too: scc and kcore
// memoize per-graph derived structures (the symmetrized variant) that
// cannot be keyed to a moving epoch.
func (sg *servedGraph) plain(algo string) (*graph.Graph, error) {
	if sg.store != nil {
		return nil, fmt.Errorf(
			"algo %s is not supported on mutable graph %q; serve it without -mutable for this query",
			algo, sg.name)
	}
	if sg.pg == nil {
		return nil, fmt.Errorf(
			"algo %s is not supported on compressed graph %q; serve the plain representation for this query",
			algo, sg.name)
	}
	return sg.pg, nil
}

// symmetrized returns the undirected serving variant (for kcore). Only
// valid after plain() succeeded.
func (sg *servedGraph) symmetrized() *graph.Graph {
	sg.sOnce.Do(func() {
		if !sg.pg.Directed {
			sg.sym = sg.pg
			return
		}
		sg.sym = sg.pg.Symmetrized()
	})
	return sg.sym
}

// Server is the query daemon. Create with New, mount Handler on an
// http.Server (or httptest.Server), and Close to drain.
type Server struct {
	graphs   map[string]*servedGraph
	tracer   *trace.Tracer
	baseOpt  core.Options // normalized, Ctx stripped, Tracer attached
	baseNorm core.Options // baseOpt with Tracer stripped too (comparisons)
	maxWait  time.Duration
	adm      *admission
	cache    *resultCache
	cacheCap int
	mux      *http.ServeMux
	started  time.Time

	// drainMu orders the draining flip against in-flight registration:
	// handlers take the read side to check-and-join, Close takes the
	// write side to flip, so no query joins after the drain began.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	queries      atomic.Int64
	failures     atomic.Int64
	canceledQ    atomic.Int64
	deadlinedQ   atomic.Int64
	byAlgo       map[string]*atomic.Int64
	coalesced    atomic.Int64 // queries answered through the coalescer
	cacheBypass  atomic.Int64 // queries that opted out of the cache
	drainStarted atomic.Int64 // unix nanos, 0 while serving
}

// New returns a Server over the named plain-CSR graphs. Do not mutate
// the graphs after this call. NewAdj additionally accepts compressed
// representations.
func New(graphs map[string]*graph.Graph, cfg Config) (*Server, error) {
	adj := make(map[string]graph.Adjacency, len(graphs))
	for name, g := range graphs {
		if g == nil {
			return nil, fmt.Errorf("serve: graph %q is nil", name)
		}
		adj[name] = g
	}
	return NewAdj(adj, cfg)
}

// NewAdj returns a Server over the named graphs in either representation:
// plain *graph.Graph or *graph.Compressed (including read-only mmap views
// from gio.MapPZFile — the server never writes to a graph). bfs, sssp,
// reachable, and p2p run on both representations; scc and kcore require
// plain CSR and answer 400 on a compressed graph. Do not mutate the
// graphs after this call.
func NewAdj(graphs map[string]graph.Adjacency, cfg Config) (*Server, error) {
	if len(graphs) == 0 {
		return nil, errors.New("serve: no graphs to serve")
	}
	opt := cfg.Opt
	opt.Ctx = nil
	if opt.Tracer == nil {
		opt.Tracer = trace.New()
	}
	opt = opt.Normalized()
	norm := opt
	norm.Tracer = nil

	maxConc := cfg.MaxConcurrent
	if maxConc <= 0 {
		maxConc = parallel.Workers()
	}
	cacheCap := cfg.CacheEntries
	if cacheCap == 0 {
		cacheCap = DefaultCacheEntries
	}
	maxWait := cfg.MaxTimeout
	if maxWait <= 0 {
		maxWait = DefaultMaxTimeout
	}
	s := &Server{
		graphs:   make(map[string]*servedGraph, len(graphs)),
		tracer:   opt.Tracer,
		baseOpt:  opt,
		baseNorm: norm,
		maxWait:  maxWait,
		adm:      newAdmission(maxConc),
		cache:    newResultCache(cacheCap),
		cacheCap: cacheCap,
		byAlgo:   make(map[string]*atomic.Int64, len(Algos)),
		started:  time.Now(),
	}
	seed := cfg.WeightSeed
	if seed == 0 {
		seed = 1
	}
	for name, g := range graphs {
		if name == "" {
			return nil, errors.New("serve: empty graph name")
		}
		sg := &servedGraph{name: name, ident: graphIdent.Add(1), g: g, weightSeed: seed}
		switch t := g.(type) {
		case *graph.Graph:
			if t == nil {
				return nil, fmt.Errorf("serve: graph %q is nil", name)
			}
			if err := t.Validate(); err != nil {
				return nil, fmt.Errorf("serve: graph %q: %w", name, err)
			}
			sg.pg = t
		case *graph.Compressed:
			if t == nil {
				return nil, fmt.Errorf("serve: graph %q is nil", name)
			}
			if cfg.Mutable {
				return nil, fmt.Errorf(
					"serve: graph %q: mutable serving requires the plain representation", name)
			}
			// No full Validate here: it decodes every adjacency list, which
			// would fault the whole file in for an mmap-backed graph and
			// destroy the O(page-in) startup. gio.ReadPZ already validated
			// untrusted input; only the O(1) structural subset runs here.
			voff := t.VOff()
			if len(voff) != t.NumVertices()+1 ||
				voff[0] != 0 || voff[t.NumVertices()] != uint64(len(t.Data())) {
				return nil, fmt.Errorf("serve: graph %q: inconsistent compressed offsets", name)
			}
		default:
			return nil, fmt.Errorf("serve: graph %q: unsupported representation %T", name, g)
		}
		if cfg.Mutable {
			sg.store = delta.NewStore(sg.pg, delta.Options{CompactFraction: cfg.CompactFraction})
		}
		// The coalescer group-commits concurrent sources into one lane
		// scan; on a mutable graph two coalesced queries could be pinned
		// to different epochs, so the shared scan is unsound there.
		if !cfg.DisableCoalesce && sg.store == nil {
			sg.coal = msbfs.NewCoalescer(g, msbfs.CoalescerOptions{
				MaxWait: cfg.CoalesceWait,
				Opt:     opt,
				// One admission slot per flushed batch: up to 64
				// coalesced queries ride a single scheduler admission.
				Gate: func() func() {
					s.adm.acquireBatch()
					return s.adm.release
				},
			})
		}
		s.graphs[name] = sg
	}
	for _, algo := range Algos {
		s.byAlgo[algo] = new(atomic.Int64)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query/bfs", s.handleBFS)
	s.mux.HandleFunc("/query/sssp", s.handleSSSP)
	s.mux.HandleFunc("/query/scc", s.handleSCC)
	s.mux.HandleFunc("/query/kcore", s.handleKCore)
	s.mux.HandleFunc("/query/reachable", s.handleReachable)
	s.mux.HandleFunc("/query/p2p", s.handleP2P)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/graphs", s.handleGraphs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Tracer returns the tracer feeding /metrics (the server-private one
// unless Config.Opt.Tracer was set).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Close drains the server: new queries are refused with 503, queued
// coalescer batches flush, and Close returns once every in-flight query
// handler has finished. Safe to call more than once.
func (s *Server) Close() {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return
	}
	s.drainStarted.Store(time.Now().UnixNano())
	for _, sg := range s.graphs {
		if sg.coal != nil {
			sg.coal.Close()
		}
	}
	s.inflight.Wait()
	// Stores close after the last in-flight query released its snapshot.
	for _, sg := range s.graphs {
		if sg.store != nil {
			sg.store.Close()
		}
	}
}

// join registers an in-flight query handler, or reports false when the
// server is draining. The returned leave must run when the handler ends.
func (s *Server) join() (leave func(), ok bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	return s.inflight.Done, true
}

// bindCtx wraps the request context with the effective per-query
// deadline: ?timeout= when present (capped at MaxTimeout), MaxTimeout
// otherwise. The request context already dies on client disconnect.
func (s *Server) bindCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.maxWait
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		td, err := time.ParseDuration(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("bad timeout %q: %v", raw, err)
		}
		if td <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q: must be positive", raw)
		}
		if td < d {
			d = td
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// typedErr normalizes raw context causes (from admission waits and
// coalescer submits abandoned mid-queue) into the library's typed
// sentinels, so every failure path maps to one status code table.
func typedErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, core.ErrCanceled) || errors.Is(err, core.ErrDeadline):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", core.ErrDeadline, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", core.ErrCanceled, err)
	default:
		return err
	}
}

// statusOf maps a query error to its HTTP status: client disconnects to
// 499, expired deadlines to 504, drain refusals to 503.
func statusOf(err error) int {
	switch {
	case errors.Is(err, core.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, core.ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, msbfs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
