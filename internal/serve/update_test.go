package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// postUpdate issues one POST /update and decodes the response.
func postUpdate(t *testing.T, base, name string, req UpdateRequest) (int, UpdateResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/update?graph="+name, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out UpdateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

// TestUpdateInvalidatesCache is the satellite-1 regression test: before
// the identity/epoch key component, the result cache replayed a body
// computed from the pre-mutation graph because the key was the graph's
// NAME, which the mutation does not change. The sequence is exactly the
// bug report: query (fills cache), mutate, re-query (must recompute).
func TestUpdateInvalidatesCache(t *testing.T) {
	graphs := map[string]*graph.Graph{"chain": gen.Chain(64, false)}
	_, hs := newTestServer(t, graphs, Config{Mutable: true, CompactFraction: -1})

	var before BFSResponse
	if st, _ := getJSON(t, hs.URL+"/query/bfs?graph=chain&src=0", &before); st != http.StatusOK {
		t.Fatalf("seed query failed: %d", st)
	}
	// Same query again: a cache hit (same epoch, nothing changed).
	resp, err := http.Get(hs.URL + "/query/bfs?graph=chain&src=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Pasgal-Cache"); got != "hit" {
		t.Fatalf("pre-mutation re-query: cache %q, want hit", got)
	}

	// Shortcut the chain: 0-63 collapses all distances.
	st, ur := postUpdate(t, hs.URL, "chain", UpdateRequest{Inserts: []UpdateEdge{{U: 0, V: 63}}})
	if st != http.StatusOK || ur.Applied == 0 || ur.Epoch == 0 {
		t.Fatalf("update failed: status %d resp %+v", st, ur)
	}

	resp, err = http.Get(hs.URL + "/query/bfs?graph=chain&src=0")
	if err != nil {
		t.Fatal(err)
	}
	var after BFSResponse
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Pasgal-Cache"); got != "miss" {
		t.Fatalf("post-mutation query replayed from cache (%q): the stale-key bug", got)
	}
	if after.Ecc >= before.Ecc {
		t.Fatalf("mutation not visible: ecc %d -> %d", before.Ecc, after.Ecc)
	}
	if after.Dist[63] != 1 {
		t.Fatalf("inserted edge missing: dist[63] = %d", after.Dist[63])
	}

	// Deleting the shortcut publishes another epoch; the answer reverts
	// but must NOT replay the pre-mutation body either (different epoch,
	// different key) — it recomputes and re-caches.
	if st, _ := postUpdate(t, hs.URL, "chain", UpdateRequest{Deletes: []UpdateEdge{{U: 0, V: 63}}}); st != http.StatusOK {
		t.Fatalf("delete failed: %d", st)
	}
	resp, err = http.Get(hs.URL + "/query/bfs?graph=chain&src=0")
	if err != nil {
		t.Fatal(err)
	}
	var reverted BFSResponse
	if err := json.NewDecoder(resp.Body).Decode(&reverted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Pasgal-Cache") != "miss" {
		t.Fatal("post-delete query must recompute under its new epoch key")
	}
	if !reflect.DeepEqual(reverted.Dist, before.Dist) {
		t.Fatal("delete did not restore the original answers")
	}
}

// TestUpdateEndpointContract covers the /update surface: method and
// body validation, immutable and unknown graphs, no-op batches, weighted
// queries across epochs, and the metrics/graphs reporting.
func TestUpdateEndpointContract(t *testing.T) {
	graphs := map[string]*graph.Graph{"grid": gen.Grid2D(8, 8, false, 3)}
	_, hs := newTestServer(t, graphs, Config{Mutable: true, CompactFraction: -1})

	// GET /update is a method error.
	wantStatus(t, hs.URL+"/update?graph=grid", http.StatusMethodNotAllowed)
	// Unknown graph.
	if st, _ := postUpdate(t, hs.URL, "nope", UpdateRequest{}); st != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", st)
	}
	// Bad body.
	resp, err := http.Post(hs.URL+"/update?graph=grid", "application/json",
		bytes.NewReader([]byte(`{"bogus": true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}
	// Out-of-range endpoint.
	if st, _ := postUpdate(t, hs.URL, "grid", UpdateRequest{Inserts: []UpdateEdge{{U: 0, V: 9999}}}); st != http.StatusBadRequest {
		t.Fatalf("out-of-range: %d", st)
	}
	// No-op batch: epoch stays 0.
	st, ur := postUpdate(t, hs.URL, "grid", UpdateRequest{Deletes: []UpdateEdge{{U: 0, V: 63}}})
	if st != http.StatusOK || ur.Epoch != 0 || ur.Applied != 0 {
		t.Fatalf("no-op batch: status %d resp %+v", st, ur)
	}

	// scc/kcore refuse mutable graphs.
	wantStatus(t, hs.URL+"/query/kcore?graph=grid", http.StatusBadRequest)
	wantStatus(t, hs.URL+"/query/scc?graph=grid", http.StatusBadRequest)

	// sssp works across epochs: surviving edges keep their generated
	// weights, so distances only change where the structure did.
	var ssspBefore SSSPResponse
	if st, _ := getJSON(t, hs.URL+"/query/sssp?graph=grid&src=0", &ssspBefore); st != http.StatusOK {
		t.Fatalf("sssp: %d", st)
	}
	if st, _ := postUpdate(t, hs.URL, "grid", UpdateRequest{Inserts: []UpdateEdge{{U: 0, V: 63, W: 1}}}); st != http.StatusOK {
		t.Fatalf("weighted insert: %d", st)
	}
	var ssspAfter SSSPResponse
	if st, _ := getJSON(t, hs.URL+"/query/sssp?graph=grid&src=0", &ssspAfter); st != http.StatusOK {
		t.Fatalf("sssp after: %d", st)
	}
	if ssspAfter.Dist[63] >= ssspBefore.Dist[63] {
		t.Fatalf("weighted shortcut not applied: %d -> %d", ssspBefore.Dist[63], ssspAfter.Dist[63])
	}
	if ssspAfter.Dist[1] != ssspBefore.Dist[1] {
		t.Fatalf("surviving edge weight moved across epochs: %d -> %d",
			ssspBefore.Dist[1], ssspAfter.Dist[1])
	}

	// Metrics and inventory reflect the mutation.
	var met MetricsResponse
	if st, _ := getJSON(t, hs.URL+"/metrics", &met); st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	us, ok := met.Updates["grid"]
	if !ok {
		t.Fatal("metrics missing updates section for mutable graph")
	}
	if us.Batches != 2 || us.Epoch == 0 || us.AppliedArcs == 0 {
		t.Fatalf("update stats wrong: %+v", us)
	}
	gi := met.Graphs["grid"]
	if !gi.Mutable || gi.Epoch != us.Epoch {
		t.Fatalf("graph info wrong: %+v", gi)
	}
}

// TestUpdateRejectedOnImmutableServer: without Config.Mutable the
// endpoint exists but refuses every graph.
func TestUpdateRejectedOnImmutableServer(t *testing.T) {
	graphs := map[string]*graph.Graph{"chain": gen.Chain(16, false)}
	_, hs := newTestServer(t, graphs, Config{})
	if st, _ := postUpdate(t, hs.URL, "chain", UpdateRequest{Inserts: []UpdateEdge{{U: 0, V: 5}}}); st != http.StatusBadRequest {
		t.Fatalf("immutable update: %d", st)
	}
}

// TestMutableRejectsCompressed: mutable serving requires plain CSR.
func TestMutableRejectsCompressed(t *testing.T) {
	c := graph.Compress(gen.Chain(32, false))
	if _, err := NewAdj(map[string]graph.Adjacency{"c": c}, Config{Mutable: true}); err == nil {
		t.Fatal("compressed graph must be rejected under Mutable")
	}
}

// TestStressHTTPSnapshotIsolation hammers a mutable server with
// concurrent updaters and queriers (run under -race by check.sh). Every
// BFS answer must be computed from ONE pinned epoch, never from a view
// that mutated mid-traversal. The base is a wheel — a cycle plus a
// spoke from 0 to every rim vertex — and updaters only churn rim edges,
// so every epoch's graph is connected with eccentricity 2 from vertex 1
// no matter how many rim edges happen to be missing: any torn or stale
// view shows up as reached < n or an impossible distance.
func TestStressHTTPSnapshotIsolation(t *testing.T) {
	const n = 64
	var edges []graph.Edge
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v}) // spoke
		if v < n-1 {
			edges = append(edges, graph.Edge{U: v, V: v + 1}) // rim
		}
	}
	wheel := graph.FromEdges(n, edges, false, graph.BuildOptions{})
	graphs := map[string]*graph.Graph{"wheel": wheel}
	s, hs := newTestServer(t, graphs, Config{Mutable: true, CompactFraction: 0.25})

	var wg sync.WaitGroup
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < 25; i++ {
				v := uint32(1 + rng.Intn(n-2))
				e := UpdateEdge{U: v, V: v + 1} // rim edge; spokes stay
				if st, _ := postUpdate(t, hs.URL, "wheel", UpdateRequest{Deletes: []UpdateEdge{e}}); st != http.StatusOK {
					t.Errorf("delete: %d", st)
					return
				}
				if st, _ := postUpdate(t, hs.URL, "wheel", UpdateRequest{Inserts: []UpdateEdge{e}}); st != http.StatusOK {
					t.Errorf("insert: %d", st)
					return
				}
			}
		}(u)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var br BFSResponse
				st, _ := getJSON(t, hs.URL+fmt.Sprintf("/query/bfs?graph=wheel&src=1&cache=%s",
					[]string{"off", "on"}[i%2]), &br)
				if st != http.StatusOK {
					t.Errorf("querier %d: status %d", id, st)
					return
				}
				if br.Reached != n {
					t.Errorf("querier %d: reached %d, want %d (torn epoch view?)", id, br.Reached, n)
					return
				}
				// Spokes never mutate: 0 is adjacent to 1, and every other
				// vertex is at most 2 away (through 0), in EVERY epoch.
				if br.Dist[0] != 1 || br.Ecc > 2 {
					t.Errorf("querier %d: dist[0]=%d ecc=%d, not from any single epoch",
						id, br.Dist[0], br.Ecc)
					return
				}
				// dist[2] is 1 exactly when rim edge (1,2) is present — it
				// may be either across epochs, but never anything else.
				if d := br.Dist[2]; d != 1 && d != 2 {
					t.Errorf("querier %d: dist[2] = %d", id, d)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// All pins released: exactly the current epoch stays live.
	var met MetricsResponse
	if st, _ := getJSON(t, hs.URL+"/metrics", &met); st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	if us := met.Updates["wheel"]; us.LiveEpochs != 1 {
		t.Fatalf("epochs leaked after quiesce: %+v", us)
	}
	s.Close()
}
