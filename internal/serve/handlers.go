package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/delta"
	"pasgal/internal/graph"
	"pasgal/internal/trace"
)

// The response bodies. Exported so the load generator and the serving
// conformance suite decode exactly what the daemon encodes (uint64
// distances round-trip losslessly through Go's encoding/json into typed
// fields; InfDist/InfWeight sentinels mark unreachable).

// BFSResponse answers /query/bfs. With ?summary=1 the Dist array is
// omitted — only the aggregate fields ship, which matters when the
// serving cost is dominated by encoding an n-entry array.
type BFSResponse struct {
	Graph   string   `json:"graph"`
	Algo    string   `json:"algo"`
	Src     uint32   `json:"src"`
	Reached int      `json:"reached"`
	Ecc     uint32   `json:"ecc"`
	Dist    []uint32 `json:"dist,omitempty"`
}

// SSSPResponse answers /query/sssp (distances on the weighted variant).
// ?summary=1 omits the Dist array.
type SSSPResponse struct {
	Graph   string   `json:"graph"`
	Algo    string   `json:"algo"`
	Src     uint32   `json:"src"`
	Reached int      `json:"reached"`
	Dist    []uint64 `json:"dist,omitempty"`
}

// SCCResponse answers /query/scc. ?summary=1 omits the Labels array.
type SCCResponse struct {
	Graph      string   `json:"graph"`
	Algo       string   `json:"algo"`
	Components int      `json:"components"`
	Labels     []uint32 `json:"labels,omitempty"`
}

// KCoreResponse answers /query/kcore (on the symmetrized variant).
// ?summary=1 omits the Core array.
type KCoreResponse struct {
	Graph      string   `json:"graph"`
	Algo       string   `json:"algo"`
	Degeneracy int      `json:"degeneracy"`
	Core       []uint32 `json:"core,omitempty"`
}

// ReachableResponse answers /query/reachable. ?summary=1 omits the
// per-vertex Reachable array.
type ReachableResponse struct {
	Graph     string   `json:"graph"`
	Algo      string   `json:"algo"`
	Srcs      []uint32 `json:"srcs"`
	Count     int      `json:"count"`
	Reachable []bool   `json:"reachable,omitempty"`
}

// P2PResponse answers /query/p2p (weighted point-to-point distance;
// Dist holds core.InfWeight when dst is unreachable).
type P2PResponse struct {
	Graph     string `json:"graph"`
	Algo      string `json:"algo"`
	Src       uint32 `json:"src"`
	Dst       uint32 `json:"dst"`
	Reachable bool   `json:"reachable"`
	Dist      uint64 `json:"dist"`
}

// UpdateEdge is one edge in an /update batch. W is ignored on deletes
// and on unweighted graphs.
type UpdateEdge struct {
	U uint32 `json:"u"`
	V uint32 `json:"v"`
	W uint32 `json:"w,omitempty"`
}

// UpdateRequest is the POST /update body. Inserts and deletes apply as
// one atomic batch (inserts after deletes for the same edge win — the
// batch is canonicalized last-op-wins in request order, with all
// deletes ordered before all inserts).
type UpdateRequest struct {
	Inserts []UpdateEdge `json:"inserts,omitempty"`
	Deletes []UpdateEdge `json:"deletes,omitempty"`
}

// UpdateResponse answers POST /update. Epoch is the epoch queries see
// after this batch (unchanged when the batch was a no-op); Applied
// counts the arcs whose effective state actually changed.
type UpdateResponse struct {
	Graph   string `json:"graph"`
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
}

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// GraphInfo describes one served graph on /graphs and /metrics.
// Compressed marks graphs served from the difference-encoded
// representation (loaded from .pz, possibly mmap-backed); scc and kcore
// are unavailable on those. Mutable marks graphs served through a
// delta.Store (POST /update applies; scc and kcore are unavailable);
// Epoch is their currently published epoch and M their current arc
// count — both move under updates.
type GraphInfo struct {
	N          int    `json:"n"`
	M          int    `json:"m"`
	Directed   bool   `json:"directed"`
	Weighted   bool   `json:"weighted"`
	Compressed bool   `json:"compressed,omitempty"`
	Mutable    bool   `json:"mutable,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// GraphsResponse answers /graphs.
type GraphsResponse struct {
	Graphs map[string]GraphInfo `json:"graphs"`
}

// MetricsResponse answers /metrics. Updates is present only when the
// server runs mutable graphs, keyed by graph name.
type MetricsResponse struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Draining      bool                   `json:"draining"`
	Queries       QueryStats             `json:"queries"`
	Cache         CacheStats             `json:"cache"`
	Admission     AdmissionStats         `json:"admission"`
	Coalescer     CoalescerStats         `json:"coalescer"`
	Updates       map[string]UpdateStats `json:"updates,omitempty"`
	Tracer        map[string]int64       `json:"tracer"`
	Graphs        map[string]GraphInfo   `json:"graphs"`
}

// UpdateStats reports one mutable graph's delta store.
type UpdateStats struct {
	Batches     int64  `json:"batches"`      // /update requests accepted
	Epoch       uint64 `json:"epoch"`        // currently published epoch
	LiveEpochs  int    `json:"live_epochs"`  // current + pinned by queries
	AppliedArcs uint64 `json:"applied_arcs"` // arcs changed across all batches
	Compactions uint64 `json:"compactions"`  // overlay folds into fresh CSR
	PatchArcs   int    `json:"patch_arcs"`   // overlay size right now
}

// QueryStats aggregates request outcomes.
type QueryStats struct {
	Total           int64            `json:"total"`
	Failures        int64            `json:"failures"`
	Canceled        int64            `json:"canceled"`
	DeadlineExpired int64            `json:"deadline_expired"`
	Coalesced       int64            `json:"coalesced"`
	CacheBypassed   int64            `json:"cache_bypassed"`
	ByAlgo          map[string]int64 `json:"by_algo"`
}

// CacheStats reports the result cache.
type CacheStats struct {
	Enabled  bool  `json:"enabled"`
	Capacity int   `json:"capacity"`
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// AdmissionStats reports the admission controller. Peak is the high-water
// in-flight count — the conformance suite asserts Peak <= Capacity.
type AdmissionStats struct {
	Capacity  int   `json:"capacity"`
	Inflight  int64 `json:"inflight"`
	Peak      int64 `json:"peak"`
	Admitted  int64 `json:"admitted"`
	Waited    int64 `json:"waited"`
	Abandoned int64 `json:"abandoned"`
}

// CoalescerStats aggregates batching across all served graphs;
// Queries/Batches is the achieved scan-sharing factor.
type CoalescerStats struct {
	Enabled bool  `json:"enabled"`
	Queries int64 `json:"queries"`
	Batches int64 `json:"batches"`
}

// HealthResponse answers /healthz.
type HealthResponse struct {
	Status        string  `json:"status"`
	Graphs        int     `json:"graphs"`
	Inflight      int64   `json:"inflight"`
	Rounds        int64   `json:"rounds"`
	Cancels       int64   `json:"cancels"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// query carries one parsed request through a handler.
type query struct {
	s        *Server
	sg       *servedGraph
	algo     string
	ctx      context.Context
	stop     context.CancelFunc
	leave    func()
	opt      core.Options // per-request options, Ctx bound
	norm     core.Options // normalized, Ctx+Tracer stripped (cache key basis)
	useCache bool
	coalesce bool // eligible for the coalesced single-source path
	summary  bool // ?summary=1: omit the per-vertex result array

	// Mutable graphs: the pinned epoch snapshot the whole query answers
	// from. sn stays nil for immutable graphs, where view == sg.g and
	// epoch is 0 forever.
	sn    *delta.Snapshot
	view  graph.Adjacency
	epoch uint64
}

// begin does the work every query endpoint shares: method check, drain
// check, graph lookup, option/timeout parsing, and per-algo accounting.
// On a false return the response has been written. Callers must defer
// q.end() on success.
func (s *Server) begin(w http.ResponseWriter, r *http.Request, algo string) (*query, bool) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return nil, false
	}
	leave, ok := s.join()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	q := &query{s: s, algo: algo, leave: leave}
	params := r.URL.Query()
	name := params.Get("graph")
	q.sg = s.graphs[name]
	if q.sg == nil {
		q.end()
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
		return nil, false
	}
	// Pin the epoch for the query's whole lifetime: every read (range
	// checks, the traversal, the cache key) sees one immutable view even
	// while /update batches publish new epochs concurrently.
	if q.sg.store != nil {
		q.sn = q.sg.store.Snapshot()
		q.view = q.sn.Adj()
		q.epoch = q.sn.Epoch()
	} else {
		q.view = q.sg.g
	}
	opt, err := s.parseOptions(params)
	if err != nil {
		q.end()
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	q.norm = opt.Normalized()
	q.norm.Ctx = nil
	q.norm.Tracer = nil
	q.useCache = params.Get("cache") != "off"
	if !q.useCache {
		s.cacheBypass.Add(1)
	}
	q.summary = params.Get("summary") == "1" || params.Get("summary") == "true"
	q.coalesce = q.sg.coal != nil && params.Get("coalesce") != "off" && q.norm == s.baseNorm
	ctx, cancel, err := s.bindCtx(r)
	if err != nil {
		q.end()
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	q.ctx, q.stop = ctx, cancel
	opt.Ctx = ctx
	opt.Tracer = s.tracer
	q.opt = opt
	s.queries.Add(1)
	s.byAlgo[algo].Add(1)
	return q, true
}

// end releases the query's snapshot pin, context binding, and in-flight
// registration.
func (q *query) end() {
	if q.sn != nil {
		q.sn.Release()
	}
	if q.stop != nil {
		q.stop()
	}
	q.leave()
}

// wgv returns the weighted variant of the query's pinned view.
func (q *query) wgv() graph.Adjacency {
	if q.sn != nil {
		return q.sg.wgAt(q.view, q.epoch)
	}
	return q.sg.wg()
}

// parseOptions builds the per-request algorithm options from the base
// configuration plus the recognized override parameters.
func (s *Server) parseOptions(params map[string][]string) (core.Options, error) {
	opt := s.baseOpt
	get := func(key string) string {
		if vs := params[key]; len(vs) > 0 {
			return vs[0]
		}
		return ""
	}
	if raw := get("tau"); raw != "" {
		tau, err := strconv.Atoi(raw)
		if err != nil {
			return opt, fmt.Errorf("bad tau %q", raw)
		}
		opt.Tau = tau
	}
	if raw := get("densefrac"); raw != "" {
		df, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return opt, fmt.Errorf("bad densefrac %q", raw)
		}
		opt.DenseFrac = df
	}
	if raw := get("nobag"); raw == "1" || raw == "true" {
		opt.DisableHashBag = true
	}
	if raw := get("nodir"); raw == "1" || raw == "true" {
		opt.DisableDirectionOpt = true
	}
	return opt, nil
}

// key builds the cache key for this query: graph identity and epoch,
// algo, the query's vertex arguments, and the normalized option fields
// that can change the response body. Requests spelling the same
// effective options differently (tau=0 vs tau=512, densefrac=0 vs
// densefrac=0.05) land on one key because Options.Normalized resolved
// the sentinels in q.norm.
//
// The key deliberately does NOT start with the graph's name alone: a
// name identifies a slot, not a value. The identity token pins the key
// to the exact registered graph, and the epoch advances with every
// /update batch, so a body cached before a mutation can never replay
// after it.
func (q *query) key(args ...uint32) string {
	var b strings.Builder
	b.WriteString(q.sg.name)
	fmt.Fprintf(&b, "#%d@%d", q.sg.ident, q.epoch)
	b.WriteByte('|')
	b.WriteString(q.algo)
	for _, a := range args {
		b.WriteByte('|')
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	fmt.Fprintf(&b, "|tau=%d,df=%g,bag=%t,dir=%t,trim=%d,sum=%t",
		q.norm.Tau, q.norm.DenseFrac, q.norm.DisableHashBag,
		q.norm.DisableDirectionOpt, q.norm.TrimRounds, q.summary)
	return b.String()
}

// vertex parses one vertex-id parameter and range-checks it against the
// query's graph.
func (q *query) vertex(params map[string][]string, key string) (uint32, error) {
	vs := params[key]
	if len(vs) == 0 || vs[0] == "" {
		return 0, fmt.Errorf("missing %s", key)
	}
	v, err := strconv.ParseUint(vs[0], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, vs[0])
	}
	if n := q.view.NumVertices(); v >= uint64(n) {
		return 0, fmt.Errorf("%s %d out of range [0, %d)", key, v, n)
	}
	return uint32(v), nil
}

// vertexList parses a comma-separated vertex-id list.
func (q *query) vertexList(params map[string][]string, key string) ([]uint32, error) {
	vs := params[key]
	if len(vs) == 0 || vs[0] == "" {
		return nil, fmt.Errorf("missing %s", key)
	}
	parts := strings.Split(vs[0], ",")
	out := make([]uint32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q", key, p)
		}
		if n := q.view.NumVertices(); v >= uint64(n) {
			return nil, fmt.Errorf("%s %d out of range [0, %d)", key, v, n)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

// fail writes the error response and bumps the failure counters.
func (q *query) fail(w http.ResponseWriter, err error) {
	err = typedErr(err)
	q.s.failures.Add(1)
	switch {
	case errors.Is(err, core.ErrDeadline):
		q.s.deadlinedQ.Add(1)
	case errors.Is(err, core.ErrCanceled):
		q.s.canceledQ.Add(1)
	}
	writeError(w, statusOf(err), err.Error())
}

// finish marshals resp, stores it in the cache under key (when the query
// participates), and writes it with a cache-miss marker.
func (q *query) finish(w http.ResponseWriter, key string, resp any) {
	body, err := json.Marshal(resp)
	if err != nil {
		q.fail(w, err)
		return
	}
	body = append(body, '\n')
	if q.useCache {
		q.s.cache.put(key, body)
	}
	writeBody(w, body, false)
}

// run executes fn under an admission slot bound to the query's context.
func (q *query) run(fn func() error) error {
	if err := q.s.adm.acquire(q.ctx); err != nil {
		return err
	}
	defer q.s.adm.release()
	return fn()
}

// cached consults the result cache; on a hit the body is replayed
// byte-identically with a cache-hit marker.
func (q *query) cached(w http.ResponseWriter, key string) bool {
	if !q.useCache {
		return false
	}
	body, ok := q.s.cache.get(key)
	if !ok {
		return false
	}
	writeBody(w, body, true)
	return true
}

func writeBody(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Pasgal-Cache", "hit")
	} else {
		w.Header().Set("X-Pasgal-Cache", "miss")
	}
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Status: status})
}

// handleBFS serves /query/bfs?graph=G&src=V: hop distances from src.
// Default-option single-source queries ride the coalescer — concurrent
// submitters group-commit into one MS-BFS lane run charging one admission
// slot — unless ?coalesce=off asks for a dedicated traversal.
func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "bfs")
	if !ok {
		return
	}
	defer q.end()
	src, err := q.vertex(r.URL.Query(), "src")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.key(src)
	if q.cached(w, key) {
		return
	}
	var dist []uint32
	if q.coalesce {
		s.coalesced.Add(1)
		dist, err = q.sg.coal.Submit(q.ctx, src)
		err = typedErr(err)
	} else {
		err = q.run(func() error {
			var runErr error
			dist, _, runErr = core.BFS(q.view, src, q.opt)
			return runErr
		})
	}
	if err != nil {
		q.fail(w, err)
		return
	}
	reached, ecc := distSummary(dist)
	if q.summary {
		dist = nil
	}
	q.finish(w, key, BFSResponse{
		Graph: q.sg.name, Algo: "bfs", Src: src,
		Reached: reached, Ecc: ecc, Dist: dist,
	})
}

// handleSSSP serves /query/sssp?graph=G&src=V: shortest-path distances on
// the weighted variant (unweighted graphs get deterministic uniform
// weights at first use).
func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "sssp")
	if !ok {
		return
	}
	defer q.end()
	src, err := q.vertex(r.URL.Query(), "src")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.key(src)
	if q.cached(w, key) {
		return
	}
	var dist []uint64
	err = q.run(func() error {
		var runErr error
		dist, _, runErr = core.SSSP(q.wgv(), src, nil, q.opt)
		return runErr
	})
	if err != nil {
		q.fail(w, err)
		return
	}
	reached := 0
	for _, d := range dist {
		if d != core.InfWeight {
			reached++
		}
	}
	if q.summary {
		dist = nil
	}
	q.finish(w, key, SSSPResponse{
		Graph: q.sg.name, Algo: "sssp", Src: src, Reached: reached, Dist: dist,
	})
}

// handleSCC serves /query/scc?graph=G: per-vertex strongly-connected-
// component labels and the component count.
func (s *Server) handleSCC(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "scc")
	if !ok {
		return
	}
	defer q.end()
	pg, err := q.sg.plain("scc")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if !pg.Directed {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("graph %q is undirected; scc requires a directed graph", q.sg.name))
		return
	}
	key := q.key()
	if q.cached(w, key) {
		return
	}
	var labels []uint32
	var count int
	err = q.run(func() error {
		var runErr error
		labels, count, _, runErr = core.SCC(pg, q.opt)
		return runErr
	})
	if err != nil {
		q.fail(w, err)
		return
	}
	if q.summary {
		labels = nil
	}
	q.finish(w, key, SCCResponse{
		Graph: q.sg.name, Algo: "scc", Components: count, Labels: labels,
	})
}

// handleKCore serves /query/kcore?graph=G: coreness per vertex and the
// degeneracy, on the symmetrized variant.
func (s *Server) handleKCore(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "kcore")
	if !ok {
		return
	}
	defer q.end()
	if _, err := q.sg.plain("kcore"); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.key()
	if q.cached(w, key) {
		return
	}
	var coreness []uint32
	var degeneracy int
	err := q.run(func() error {
		var runErr error
		coreness, degeneracy, _, runErr = core.KCore(q.sg.symmetrized(), q.opt)
		return runErr
	})
	if err != nil {
		q.fail(w, err)
		return
	}
	if q.summary {
		coreness = nil
	}
	q.finish(w, key, KCoreResponse{
		Graph: q.sg.name, Algo: "kcore", Degeneracy: degeneracy, Core: coreness,
	})
}

// handleReachable serves /query/reachable?graph=G&src=V[,V2,...]: the
// vertices reachable from any source. Default-option single-source
// queries derive the answer from a coalesced BFS row, sharing edge scans
// with concurrent bfs traffic.
func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "reachable")
	if !ok {
		return
	}
	defer q.end()
	srcs, err := q.vertexList(r.URL.Query(), "src")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.key(srcs...)
	if q.cached(w, key) {
		return
	}
	var reach []bool
	if q.coalesce && len(srcs) == 1 {
		s.coalesced.Add(1)
		var dist []uint32
		dist, err = q.sg.coal.Submit(q.ctx, srcs[0])
		err = typedErr(err)
		if err == nil {
			reach = make([]bool, len(dist))
			for v, d := range dist {
				reach[v] = d != graph.InfDist
			}
		}
	} else {
		err = q.run(func() error {
			var runErr error
			reach, _, runErr = core.Reachable(q.view, srcs, q.opt)
			return runErr
		})
	}
	if err != nil {
		q.fail(w, err)
		return
	}
	count := 0
	for _, r := range reach {
		if r {
			count++
		}
	}
	if q.summary {
		reach = nil
	}
	q.finish(w, key, ReachableResponse{
		Graph: q.sg.name, Algo: "reachable", Srcs: srcs, Count: count, Reachable: reach,
	})
}

// handleP2P serves /query/p2p?graph=G&src=U&dst=V: the shortest-path
// distance from src to dst on the weighted variant, with goal-directed
// pruning.
func (s *Server) handleP2P(w http.ResponseWriter, r *http.Request) {
	q, ok := s.begin(w, r, "p2p")
	if !ok {
		return
	}
	defer q.end()
	params := r.URL.Query()
	src, err := q.vertex(params, "src")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	dst, err := q.vertex(params, "dst")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := q.key(src, dst)
	if q.cached(w, key) {
		return
	}
	var dist uint64
	err = q.run(func() error {
		var runErr error
		dist, _, runErr = core.PointToPoint(q.wgv(), src, dst, nil, q.opt)
		return runErr
	})
	if err != nil {
		q.fail(w, err)
		return
	}
	q.finish(w, key, P2PResponse{
		Graph: q.sg.name, Algo: "p2p", Src: src, Dst: dst,
		Reachable: dist != core.InfWeight, Dist: dist,
	})
}

// handleUpdate serves POST /update?graph=G: one atomic insert/delete
// batch against a mutable graph. The response reports the epoch queries
// observe once the batch is published; in-flight queries keep answering
// from their pinned epochs. Deletes order before inserts, so a batch
// that deletes and re-inserts the same edge nets to the insert.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	leave, ok := s.join()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer leave()
	name := r.URL.Query().Get("graph")
	sg := s.graphs[name]
	if sg == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown graph %q", name))
		return
	}
	if sg.store == nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("graph %q is not served mutable; restart with -mutable to accept updates", name))
		return
	}
	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad update body: %v", err))
		return
	}
	batch := make([]delta.Update, 0, len(req.Inserts)+len(req.Deletes))
	for _, e := range req.Deletes {
		batch = append(batch, delta.Update{U: e.U, V: e.V, Op: delta.Delete})
	}
	for _, e := range req.Inserts {
		batch = append(batch, delta.Update{U: e.U, V: e.V, W: e.W, Op: delta.Insert})
	}
	res, err := sg.store.Apply(batch)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, delta.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	sg.updates.Add(1)
	writeJSON(w, UpdateResponse{Graph: name, Epoch: res.Epoch, Applied: res.Applied})
}

// handleGraphs serves /graphs: the loaded graph inventory.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, GraphsResponse{Graphs: s.graphInfos()})
}

func (s *Server) graphInfos() map[string]GraphInfo {
	infos := make(map[string]GraphInfo, len(s.graphs))
	for name, sg := range s.graphs {
		info := GraphInfo{
			N: sg.g.NumVertices(), M: sg.g.NumArcs(),
			Directed: sg.g.IsDirected(), Weighted: sg.g.HasWeights(),
			Compressed: sg.pg == nil,
		}
		if sg.store != nil {
			sn := sg.store.Snapshot()
			info.Mutable = true
			info.Epoch = sn.Epoch()
			info.M = sn.Adj().NumArcs()
			sn.Release()
		}
		infos[name] = info
	}
	return infos
}

// metricsTracerCounters lists the tracer counters /metrics exports.
var metricsTracerCounters = []trace.Counter{
	trace.CtrRounds, trace.CtrBottomUp, trace.CtrPhases, trace.CtrCancels,
	trace.CtrLaneScans, trace.CtrLoops, trace.CtrForks, trace.CtrSteals,
	trace.CtrParks, trace.CtrWakes,
}

// handleMetrics serves /metrics: query outcomes, cache and admission
// statistics, coalescer batching, and the tracer counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	byAlgo := make(map[string]int64, len(s.byAlgo))
	for algo, ctr := range s.byAlgo {
		byAlgo[algo] = ctr.Load()
	}
	hits, misses := s.cache.stats()
	var coalQ, coalB int64
	coalesceOn := false
	for _, sg := range s.graphs {
		if sg.coal != nil {
			coalesceOn = true
			cq, cb := sg.coal.Stats()
			coalQ += cq
			coalB += cb
		}
	}
	tr := make(map[string]int64, len(metricsTracerCounters))
	for _, c := range metricsTracerCounters {
		tr[c.Name()] = s.tracer.CounterValue(c)
	}
	var updates map[string]UpdateStats
	for name, sg := range s.graphs {
		if sg.store == nil {
			continue
		}
		if updates == nil {
			updates = make(map[string]UpdateStats)
		}
		st := sg.store.Stats()
		updates[name] = UpdateStats{
			Batches: sg.updates.Load(), Epoch: st.Epoch,
			LiveEpochs: st.LiveEpochs, AppliedArcs: st.AppliedArcs,
			Compactions: st.Compactions, PatchArcs: st.PatchArcs,
		}
	}
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	writeJSON(w, MetricsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      draining,
		Queries: QueryStats{
			Total:           s.queries.Load(),
			Failures:        s.failures.Load(),
			Canceled:        s.canceledQ.Load(),
			DeadlineExpired: s.deadlinedQ.Load(),
			Coalesced:       s.coalesced.Load(),
			CacheBypassed:   s.cacheBypass.Load(),
			ByAlgo:          byAlgo,
		},
		Cache: CacheStats{
			Enabled: s.cache != nil, Capacity: max(s.cacheCap, 0),
			Entries: s.cache.len(), Hits: hits, Misses: misses,
		},
		Admission: AdmissionStats{
			Capacity: s.adm.cap, Inflight: s.adm.inflight.Load(),
			Peak: s.adm.peak.Load(), Admitted: s.adm.admitted.Load(),
			Waited: s.adm.waited.Load(), Abandoned: s.adm.abandoned.Load(),
		},
		Coalescer: CoalescerStats{Enabled: coalesceOn, Queries: coalQ, Batches: coalB},
		Updates:   updates,
		Tracer:    tr,
		Graphs:    s.graphInfos(),
	})
}

// handleHealthz serves /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.drainMu.RLock()
	draining := s.draining
	s.drainMu.RUnlock()
	resp := HealthResponse{
		Status:        "ok",
		Graphs:        len(s.graphs),
		Inflight:      s.adm.inflight.Load(),
		Rounds:        s.tracer.CounterValue(trace.CtrRounds),
		Cancels:       s.tracer.CounterValue(trace.CtrCancels),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if draining {
		resp.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// distSummary returns the reached count and eccentricity of a BFS row.
func distSummary(dist []uint32) (reached int, ecc uint32) {
	for _, d := range dist {
		if d != graph.InfDist {
			reached++
			if d > ecc {
				ecc = d
			}
		}
	}
	return reached, ecc
}
