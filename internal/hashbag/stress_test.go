package hashbag

import (
	"runtime"
	"sync"
	"testing"
)

// TestStressHashBagConcurrentInsertResize hammers a deliberately tiny bag
// from many goroutines so that inserts race with chunk growth across many
// levels. Run under the race tier (`go test -race -run Stress -count=3`)
// this exercises the publish-then-bump protocol in grow() and the
// CAS-insert path concurrently. Every inserted value must come back out of
// Extract exactly once.
func TestStressHashBagConcurrentInsertResize(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	for round, workers := range []int{4, 8, 16} {
		b := New(64) // minimum chunk: growth is immediate and frequent
		per := 120000 / workers
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					b.Insert(uint32(w*per + i))
					if i%1024 == 0 {
						runtime.Gosched() // shuffle interleavings
					}
				}
			}(w)
		}
		wg.Wait()
		n := workers * per
		if b.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, b.Len(), n)
		}
		got := sorted(b.Extract())
		if len(got) != n {
			t.Fatalf("round %d: extracted %d values, want %d", round, len(got), n)
		}
		for i := range got {
			if got[i] != uint32(i) {
				t.Fatalf("round %d: value %d missing or duplicated (found %d)", round, i, got[i])
			}
		}
	}
}

// TestStressHashBagReuseUnderContention interleaves contended insert
// phases with extract/reset phases, reusing one bag across rounds the way
// frontier-based algorithms do.
func TestStressHashBagReuseUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	b := New(64)
	const workers = 8
	const per = 4000
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				base := uint32(round*workers*per + w*per)
				for i := 0; i < per; i++ {
					b.Insert(base + uint32(i))
				}
			}(w)
		}
		wg.Wait()
		got := sorted(b.Extract())
		if len(got) != workers*per {
			t.Fatalf("round %d: got %d, want %d", round, len(got), workers*per)
		}
		lo := uint32(round * workers * per)
		for i, v := range got {
			if v != lo+uint32(i) {
				t.Fatalf("round %d: slot %d = %d, want %d", round, i, v, lo+uint32(i))
			}
		}
	}
}
