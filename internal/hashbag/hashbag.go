// Package hashbag implements the parallel hash bag of Wang et al.
// ("Parallel Strong Connectivity Based on Faster Reachability", and the
// PASGAL paper's frontier structure): a concurrent set of vertex ids that
// supports lock-free parallel insertion and a parallel extract-all.
//
// The bag is a sequence of geometrically growing chunks of slots. Inserts
// hash into the active chunk and linearly probe; when a sampled counter
// estimates the chunk is ~half full (or a probe sequence gets long),
// insertion moves on to the next (twice as large) chunk. Extraction packs
// all occupied slots across chunks and resets them. Compared to a flat
// dense boolean array over all n vertices, the bag costs O(inserted) rather
// than O(n) per round, which is what makes tiny frontiers on large-diameter
// graphs affordable.
package hashbag

import (
	"sync/atomic"

	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

const (
	empty = ^uint32(0) // slot sentinel; vertex ids must be < 2^32-1

	// One in 2^sampleShift inserts bumps the shared occupancy counter; the
	// estimate is counter << sampleShift. Sampling keeps the counter from
	// becoming a contention hot spot, as in the paper.
	sampleShift = 3

	defaultChunk = 1 << 9

	// maxLevels chunk levels cover 64 * 2^maxLevels slots, far beyond any
	// uint32 vertex universe.
	maxLevels = 28
)

// Bag is a concurrent growable set of uint32 ids. The zero value is not
// usable; call New. Insert may be called concurrently from many
// goroutines; Extract/Reset must not race with Insert.
type Bag struct {
	levels   [maxLevels]atomic.Pointer[[]uint32]
	active   atomic.Int32
	est      atomic.Int64
	inserted atomic.Int64
	initLen  int
	tracer   *trace.Tracer
}

// SetTracer attaches a tracer to the bag (nil detaches). Resizes emit
// trace events; insert probe retries are batched per Insert call and
// recorded as a counter. Must not race with Insert.
func (b *Bag) SetTracer(t *trace.Tracer) { b.tracer = t }

// New returns a bag whose first chunk holds initSlots slots (rounded up to
// a power of two, minimum 64). initSlots <= 0 selects a default.
func New(initSlots int) *Bag {
	if initSlots <= 0 {
		initSlots = defaultChunk
	}
	sz := 64
	for sz < initSlots {
		sz *= 2
	}
	b := &Bag{initLen: sz}
	c := newChunk(sz)
	b.levels[0].Store(&c)
	return b
}

func newChunk(sz int) []uint32 {
	c := make([]uint32, sz)
	for i := range c {
		c[i] = empty
	}
	return c
}

// hash64 is the splitmix64 finalizer; good avalanche, cheap.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Insert adds v to the bag. Duplicate values are allowed (the bag is a
// multiset of inserts; callers dedupe via their own claimed/visited flags,
// as the PASGAL algorithms do). Safe for concurrent use.
func (b *Bag) Insert(v uint32) {
	var retries int64 // batched: one tracer flush per Insert, not per probe
	for {
		ai := int(b.active.Load())
		cp := b.levels[ai].Load()
		if cp == nil {
			continue // chunk being published; retry
		}
		c := *cp
		mask := uint64(len(c) - 1)
		h := hash64(uint64(v) ^ uint64(ai)<<32)
		probes := 0
		for {
			slot := int(h & mask)
			if atomic.LoadUint32(&c[slot]) == empty &&
				atomic.CompareAndSwapUint32(&c[slot], empty, v) {
				b.inserted.Add(1)
				b.tracer.BagRetries(retries)
				if h&((1<<sampleShift)-1) == 0 &&
					b.est.Add(1)<<sampleShift >= int64(len(c)/2) {
					b.grow(ai)
				}
				return
			}
			h = hash64(h)
			probes++
			retries++
			if probes >= 16 || probes >= len(c) {
				// This probe path is saturated: advance to the next chunk
				// and retry there.
				b.grow(ai)
				break
			}
		}
	}
}

// grow publishes chunk level ai+1 (if needed) and advances the active
// counter past ai. Safe to race: exactly one CAS on each field wins.
func (b *Bag) grow(ai int) {
	if ai+1 >= maxLevels {
		panic("hashbag: exceeded maximum capacity")
	}
	if b.levels[ai+1].Load() == nil {
		c := newChunk(b.initLen << (ai + 1))
		b.levels[ai+1].CompareAndSwap(nil, &c)
	}
	// Publish-then-bump: once active reads ai+1, the chunk is visible.
	// Only the winning CAS reports the resize, so each level traces once.
	if b.active.CompareAndSwap(int32(ai), int32(ai+1)) {
		b.tracer.BagResize(int64(ai+1), int64(b.initLen<<(ai+1)))
	}
	b.est.Store(0)
}

// Len returns the number of successful inserts since the last reset.
func (b *Bag) Len() int { return int(b.inserted.Load()) }

// seqCutoff is the chunk size below which extraction and reset run
// sequentially: spawning a parallel loop over a few thousand slots costs
// more than the scan itself, and small-chunk extraction is the hot path of
// frontier-based algorithms on large-diameter graphs.
const seqCutoff = 1 << 13

// Extract returns all values currently in the bag (in arbitrary order) and
// resets it to empty. Not safe to run concurrently with Insert.
func (b *Bag) Extract() []uint32 {
	ai := int(b.active.Load())
	var out []uint32
	for ci := 0; ci <= ai; ci++ {
		cp := b.levels[ci].Load()
		if cp == nil {
			continue
		}
		c := *cp
		if len(c) <= seqCutoff {
			for i, v := range c {
				if v != empty {
					out = append(out, v)
					c[i] = empty
				}
			}
			continue
		}
		part := parallel.Pack(c, func(i int) bool { return c[i] != empty })
		if out == nil {
			out = part
		} else {
			out = append(out, part...)
		}
		parallel.Fill(c, empty)
	}
	b.active.Store(0)
	b.est.Store(0)
	b.inserted.Store(0)
	return out
}

// Reset empties the bag without returning its contents.
func (b *Bag) Reset() {
	ai := int(b.active.Load())
	for ci := 0; ci <= ai; ci++ {
		cp := b.levels[ci].Load()
		if cp == nil {
			continue
		}
		c := *cp
		if len(c) <= seqCutoff {
			for i := range c {
				c[i] = empty
			}
			continue
		}
		parallel.Fill(c, empty)
	}
	b.active.Store(0)
	b.est.Store(0)
	b.inserted.Store(0)
}
