package hashbag

import (
	"encoding/binary"
	"testing"
)

// FuzzHashBag drives insert/extract round-trips against a map-based
// multiset oracle. The input is parsed as a sequence of 5-byte operations:
// an opcode byte followed by a little-endian uint32 value. Opcode 0xff
// extracts and cross-checks the full contents; every other opcode inserts
// the value (masked below the empty sentinel). Run with
// `go test -fuzz FuzzHashBag ./internal/hashbag`.
func FuzzHashBag(f *testing.F) {
	// Seed corpus: empty, single insert, duplicate inserts, an
	// insert/extract/insert round-trip, and a growth-forcing burst.
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0})
	f.Add([]byte{0, 42, 0, 0, 0, 1, 42, 0, 0, 0, 2, 42, 0, 0, 0})
	f.Add([]byte{0, 7, 0, 0, 0, 0xff, 0, 0, 0, 0, 0, 9, 0, 0, 0})
	burst := make([]byte, 0, 5*300)
	for i := 0; i < 300; i++ {
		var op [5]byte
		op[0] = byte(i % 3)
		binary.LittleEndian.PutUint32(op[1:], uint32(i*2654435761))
		burst = append(burst, op[:]...)
	}
	f.Add(burst)

	f.Fuzz(func(t *testing.T, data []byte) {
		b := New(64)
		oracle := map[uint32]int{} // multiset: inserted value -> count
		size := 0
		check := func(stage string) {
			got := b.Extract()
			if len(got) != size {
				t.Fatalf("%s: extracted %d values, oracle has %d", stage, len(got), size)
			}
			counts := map[uint32]int{}
			for _, v := range got {
				counts[v]++
			}
			for v, n := range oracle {
				if counts[v] != n {
					t.Fatalf("%s: value %d extracted %d times, oracle has %d", stage, v, counts[v], n)
				}
			}
			oracle = map[uint32]int{}
			size = 0
		}
		for len(data) >= 5 {
			op := data[0]
			v := binary.LittleEndian.Uint32(data[1:5])
			data = data[5:]
			if op == 0xff {
				check("mid-stream extract")
				continue
			}
			v &= 1<<31 - 1 // stay clear of the empty sentinel
			b.Insert(v)
			oracle[v]++
			size++
			if b.Len() != size {
				t.Fatalf("Len = %d after %d inserts", b.Len(), size)
			}
		}
		check("final extract")
		// The bag must remain usable after a full drain.
		b.Insert(3)
		if got := b.Extract(); len(got) != 1 || got[0] != 3 {
			t.Fatalf("reuse after drain: got %v", got)
		}
	})
}
