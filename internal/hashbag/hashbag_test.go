package hashbag

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"pasgal/internal/parallel"
)

func sorted(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestInsertExtractSequential(t *testing.T) {
	b := New(64)
	want := []uint32{5, 1, 9, 123456, 0, 7}
	for _, v := range want {
		b.Insert(v)
	}
	if b.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(want))
	}
	got := sorted(b.Extract())
	if len(got) != len(want) {
		t.Fatalf("Extract returned %d values, want %d", len(got), len(want))
	}
	ws := sorted(want)
	for i := range ws {
		if got[i] != ws[i] {
			t.Fatalf("Extract[%d] = %d, want %d", i, got[i], ws[i])
		}
	}
	if got := b.Extract(); len(got) != 0 {
		t.Fatalf("second Extract returned %d values", len(got))
	}
}

func TestGrowthBeyondFirstChunk(t *testing.T) {
	b := New(64)
	n := uint32(100000)
	for v := uint32(0); v < n; v++ {
		b.Insert(v)
	}
	got := sorted(b.Extract())
	if len(got) != int(n) {
		t.Fatalf("Extract returned %d values, want %d", len(got), n)
	}
	for i := uint32(0); i < n; i++ {
		if got[i] != i {
			t.Fatalf("missing value %d (got %d)", i, got[i])
		}
	}
}

func TestConcurrentInsert(t *testing.T) {
	b := New(128)
	const workers = 8
	const per = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Insert(uint32(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	got := sorted(b.Extract())
	if len(got) != workers*per {
		t.Fatalf("got %d values, want %d", len(got), workers*per)
	}
	for i := range got {
		if got[i] != uint32(i) {
			t.Fatalf("value %d missing (found %d)", i, got[i])
		}
	}
}

func TestDuplicatesAreKept(t *testing.T) {
	b := New(64)
	for i := 0; i < 10; i++ {
		b.Insert(42)
	}
	got := b.Extract()
	if len(got) != 10 {
		t.Fatalf("got %d copies, want 10 (bag is a multiset)", len(got))
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("unexpected value %d", v)
		}
	}
}

func TestReset(t *testing.T) {
	b := New(64)
	for v := uint32(0); v < 1000; v++ {
		b.Insert(v)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	if got := b.Extract(); len(got) != 0 {
		t.Fatalf("Extract after Reset returned %d values", len(got))
	}
	// Bag remains usable.
	b.Insert(7)
	if got := b.Extract(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("reuse after Reset failed: %v", got)
	}
}

func TestReuseAcrossRounds(t *testing.T) {
	b := New(64)
	rng := rand.New(rand.NewPCG(1, 1))
	for round := 0; round < 20; round++ {
		n := 1 + rng.IntN(5000)
		vals := make(map[uint32]bool, n)
		for i := 0; i < n; i++ {
			v := rng.Uint32N(1 << 30)
			for vals[v] {
				v++
			}
			vals[v] = true
			b.Insert(v)
		}
		got := b.Extract()
		if len(got) != len(vals) {
			t.Fatalf("round %d: got %d, want %d", round, len(got), len(vals))
		}
		for _, v := range got {
			if !vals[v] {
				t.Fatalf("round %d: unexpected value %d", round, v)
			}
		}
	}
}

// Property: extracting after inserting any set of distinct values returns
// exactly that set.
func TestQuickSetSemantics(t *testing.T) {
	f := func(raw []uint32) bool {
		b := New(64)
		set := make(map[uint32]bool)
		for _, v := range raw {
			v &= 1<<31 - 1 // avoid the sentinel
			if !set[v] {
				set[v] = true
				b.Insert(v)
			}
		}
		got := b.Extract()
		if len(got) != len(set) {
			return false
		}
		for _, v := range got {
			if !set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelInsertViaRuntime(t *testing.T) {
	// Insert through the parallel runtime, as the algorithms do.
	b := New(256)
	n := 150000
	parallel.For(n, 0, func(i int) { b.Insert(uint32(i)) })
	got := sorted(b.Extract())
	if len(got) != n {
		t.Fatalf("got %d, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != uint32(i) {
			t.Fatalf("missing %d", i)
		}
	}
}
