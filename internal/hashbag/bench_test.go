package hashbag

import (
	"testing"

	"pasgal/internal/parallel"
)

func BenchmarkInsertSequential(b *testing.B) {
	bag := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag.Insert(uint32(i))
		if i&0xffff == 0xffff {
			bag.Reset()
		}
	}
}

func BenchmarkInsertParallel(b *testing.B) {
	bag := New(1 << 16)
	const batch = 1 << 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel.For(batch, 0, func(j int) { bag.Insert(uint32(j)) })
		bag.Reset()
	}
}

func BenchmarkExtract(b *testing.B) {
	for _, fill := range []int{64, 1 << 12, 1 << 16} {
		name := "64"
		if fill > 64 {
			name = "4K"
		}
		if fill > 1<<12 {
			name = "64K"
		}
		b.Run(name, func(b *testing.B) {
			bag := New(1 << 10)
			for i := 0; i < b.N; i++ {
				for v := 0; v < fill; v++ {
					bag.Insert(uint32(v))
				}
				if got := bag.Extract(); len(got) != fill {
					b.Fatalf("lost values: %d", len(got))
				}
			}
		})
	}
}
