package delta

import (
	"context"
	"errors"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/gen"
)

// TestCancelQueryOnSnapshot ensures cancellation propagates through the
// overlay scan path exactly as it does for the plain and compressed
// representations: a pre-canceled context fails fast with ErrCanceled,
// an expired deadline with ErrDeadline, and the snapshot stays usable
// afterwards (cancellation must not poison the pinned epoch).
func TestCancelQueryOnSnapshot(t *testing.T) {
	s := NewStore(gen.ER(400, 1200, false, 0xCA11), Options{CompactFraction: -1})
	defer s.Close()
	if _, err := s.Apply([]Update{{U: 0, V: 399, Op: Insert}, {U: 1, V: 2, Op: Delete}}); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	defer sn.Release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := core.BFS(sn.Adj(), 0, core.Options{Ctx: ctx}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled ctx: got %v, want ErrCanceled", err)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := core.BFS(sn.Adj(), 0, core.Options{Ctx: dctx}); !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("expired deadline: got %v, want ErrDeadline", err)
	}

	// The pinned snapshot survives a canceled run.
	if _, _, err := core.BFS(sn.Adj(), 0, core.Options{}); err != nil {
		t.Fatalf("snapshot unusable after cancellation: %v", err)
	}
}
