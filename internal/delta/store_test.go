package delta

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pasgal/internal/core"
	"pasgal/internal/graph"
)

func mustApply(t *testing.T, s *Store, batch []Update) Result {
	t.Helper()
	res, err := s.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// viewEdges flattens an Adjacency into a sorted CSR Graph for
// comparison.
func viewCSR(t *testing.T, a graph.Adjacency) *graph.Graph {
	t.Helper()
	switch g := a.(type) {
	case *graph.Graph:
		return g
	case *graph.Overlay:
		return g.Materialize()
	default:
		t.Fatalf("unexpected view type %T", a)
		return nil
	}
}

func TestStoreCanonicalization(t *testing.T) {
	base := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()

	// Inserting a present edge, deleting an absent one, a self-loop, and
	// a within-batch insert+delete pair must all cancel to nothing.
	res := mustApply(t, s, []Update{
		{U: 0, V: 1, Op: Insert},
		{U: 3, V: 4, Op: Delete},
		{U: 2, V: 2, Op: Insert},
		{U: 4, V: 5, Op: Insert},
		{U: 4, V: 5, Op: Delete},
	})
	if res.Epoch != 0 || res.Applied != 0 {
		t.Fatalf("no-op batch published epoch %d applied %d", res.Epoch, res.Applied)
	}

	// Last-op-wins inside a batch.
	res = mustApply(t, s, []Update{
		{U: 4, V: 5, Op: Delete},
		{U: 4, V: 5, Op: Insert},
		{U: 0, V: 1, Op: Delete},
	})
	if res.Epoch != 1 || res.Applied != 2 {
		t.Fatalf("got epoch %d applied %d, want 1/2", res.Epoch, res.Applied)
	}
	sn := s.Snapshot()
	ov := sn.Adj().(*graph.Overlay)
	if err := ov.Validate(); err != nil {
		t.Fatal(err)
	}
	if !ov.HasArc(4, 5) || ov.HasArc(0, 1) || !ov.HasArc(1, 2) {
		t.Fatal("effective arcs wrong after batch")
	}
	sn.Release()

	// Re-inserting the deleted base arc must clear its tombstone (patch
	// shrinks back).
	mustApply(t, s, []Update{{U: 0, V: 1, Op: Insert}, {U: 4, V: 5, Op: Delete}})
	sn = s.Snapshot()
	ov = sn.Adj().(*graph.Overlay)
	if ov.PatchArcs() != 0 {
		t.Fatalf("patch should be empty after round trip, has %d arcs", ov.PatchArcs())
	}
	sn.Release()
}

func TestStoreWeightChange(t *testing.T) {
	base := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}}, true, graph.BuildOptions{Weighted: true})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()

	// Same-weight insert is a no-op; new weight is tombstone+add.
	res := mustApply(t, s, []Update{{U: 0, V: 1, W: 5, Op: Insert}})
	if res.Applied != 0 {
		t.Fatalf("same-weight insert applied %d", res.Applied)
	}
	mustApply(t, s, []Update{{U: 0, V: 1, W: 9, Op: Insert}})
	sn := s.Snapshot()
	ov := sn.Adj().(*graph.Overlay)
	if err := ov.Validate(); err != nil {
		t.Fatal(err)
	}
	nbrs, wts := ov.AppendArcs(0, nil, nil)
	if len(nbrs) != 1 || nbrs[0] != 1 || wts[0] != 9 {
		t.Fatalf("weight change lost: %v/%v", nbrs, wts)
	}
	sn.Release()

	// Back to the base weight: patch must clear.
	mustApply(t, s, []Update{{U: 0, V: 1, W: 5, Op: Insert}})
	sn = s.Snapshot()
	if ov := sn.Adj().(*graph.Overlay); ov.PatchArcs() != 0 {
		t.Fatalf("patch not cleared on base-weight restore: %d arcs", ov.PatchArcs())
	}
	sn.Release()
}

func TestStoreUndirectedExpansion(t *testing.T) {
	base := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}}, false, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()
	res := mustApply(t, s, []Update{{U: 2, V: 3, Op: Insert}})
	if res.Applied != 2 {
		t.Fatalf("undirected insert applied %d arcs, want 2", res.Applied)
	}
	sn := s.Snapshot()
	defer sn.Release()
	ov := sn.Adj().(*graph.Overlay)
	if !ov.HasArc(2, 3) || !ov.HasArc(3, 2) {
		t.Fatal("undirected insert must add both arcs")
	}
}

func TestSnapshotIsolationAndRetirement(t *testing.T) {
	base := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()

	old := s.Snapshot()
	oldDist, _, err := core.BFS(old.Adj(), 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	mustApply(t, s, []Update{{U: 2, V: 3, Op: Insert}})
	// The old snapshot must still answer from its pinned epoch.
	again, _, err := core.BFS(old.Adj(), 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldDist, again) {
		t.Fatal("pinned snapshot changed under an update")
	}
	cur := s.Snapshot()
	curDist, _, err := core.BFS(cur.Adj(), 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if curDist[3] == graph.InfDist {
		t.Fatal("new epoch missing the inserted edge")
	}
	cur.Release()

	if st := s.Stats(); st.LiveEpochs != 2 {
		t.Fatalf("want 2 live epochs (pinned old + current), have %d", st.LiveEpochs)
	}
	old.Release()
	if st := s.Stats(); st.LiveEpochs != 1 || st.Retired == 0 {
		t.Fatalf("old epoch did not retire: %+v", st)
	}
	old.Release() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Adj after Release must panic")
		}
	}()
	old.Adj()
}

func TestCompactFoldsPatch(t *testing.T) {
	base := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, false, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()
	mustApply(t, s, []Update{{U: 3, V: 4, Op: Insert}, {U: 0, V: 1, Op: Delete}})

	sn := s.Snapshot()
	want := viewCSR(t, sn.Adj())
	sn.Release()

	epoch, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("compaction epoch = %d, want 2", epoch)
	}
	sn = s.Snapshot()
	defer sn.Release()
	got, ok := sn.Adj().(*graph.Graph)
	if !ok {
		t.Fatalf("compacted view is %T, want *graph.Graph", sn.Adj())
	}
	if !reflect.DeepEqual(got.Offsets, want.Offsets) || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatal("compacted CSR differs from overlay materialization")
	}
	if st := s.Stats(); st.Compactions != 1 || st.PatchArcs != 0 {
		t.Fatalf("stats after compact: %+v", st)
	}
	// Compacting an empty patch is a no-op.
	if e2, err := s.Compact(); err != nil || e2 != epoch {
		t.Fatalf("empty compact: epoch %d err %v", e2, err)
	}
}

func TestStoreErrors(t *testing.T) {
	base := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, true, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	if _, err := s.Apply([]Update{{U: 0, V: 7, Op: Insert}}); err == nil {
		t.Fatal("out-of-range update must fail")
	}
	s.Close()
	if _, err := s.Apply([]Update{{U: 0, V: 2, Op: Insert}}); err != ErrClosed {
		t.Fatalf("apply after close: %v", err)
	}
	if _, err := s.Compact(); err != ErrClosed {
		t.Fatalf("compact after close: %v", err)
	}
	s.Close() // idempotent
}

func TestAutoCompaction(t *testing.T) {
	base := graph.FromEdges(64, []graph.Edge{{U: 0, V: 1}}, true, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: 0.5})
	// One small base arc: any real batch trips the threshold.
	mustApply(t, s, []Update{{U: 1, V: 2, Op: Insert}, {U: 2, V: 3, Op: Insert}})
	// A Close racing in could drop the background compaction by design,
	// so give it time to land first.
	for i := 0; i < 2000 && s.Stats().Compactions == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
	if st.PatchArcs != 0 {
		t.Fatalf("patch not folded: %+v", st)
	}
}

func TestStoreLargeBatchRadixPath(t *testing.T) {
	// Push the batch over the CountSortByKey cutoff (4096 recs) and
	// check the result against a map-model rebuild.
	n := 3000
	base := graph.FromEdges(n, nil, true, graph.BuildOptions{})
	s := NewStore(base, Options{CompactFraction: -1})
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	truth := map[[2]uint32]bool{}
	batch := make([]Update, 0, 6000)
	for i := 0; i < 6000; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u == v {
			continue
		}
		if rng.Intn(5) == 0 {
			batch = append(batch, Update{U: u, V: v, Op: Delete})
			delete(truth, [2]uint32{u, v})
		} else {
			batch = append(batch, Update{U: u, V: v, Op: Insert})
			truth[[2]uint32{u, v}] = true
		}
	}
	mustApply(t, s, batch)
	var edges []graph.Edge
	for k := range truth {
		edges = append(edges, graph.Edge{U: k[0], V: k[1]})
	}
	want := graph.FromEdges(n, edges, true, graph.BuildOptions{})
	sn := s.Snapshot()
	defer sn.Release()
	got := viewCSR(t, sn.Adj())
	if !reflect.DeepEqual(want.Offsets, got.Offsets) || !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatal("radix-path batch disagrees with map model")
	}
}
