package delta

import (
	"fmt"
	"sync"

	"pasgal/internal/conn"
	"pasgal/internal/parallel"
)

// IncrementalConnectivity maintains connected components of an
// undirected mutable store across update batches. Insert-only batches
// are absorbed into a live union–find without recomputation — the
// incremental fast path, since a union–find only ever coarsens.
// Deletes can split components, which a union–find cannot express, so
// any batch with an effective delete marks the structure dirty and the
// next Components call rebuilds from a fresh snapshot via
// conn.Components.
//
// All updates to the underlying store must flow through Apply; batches
// applied directly to the store are invisible here and would desync
// the labeling.
type IncrementalConnectivity struct {
	store *Store

	mu    sync.Mutex
	uf    *conn.UnionFind
	dirty bool
}

// NewIncrementalConnectivity wraps an undirected store. The first
// Components call performs the initial full computation.
func NewIncrementalConnectivity(s *Store) (*IncrementalConnectivity, error) {
	if s.IsDirected() {
		return nil, fmt.Errorf("delta: incremental connectivity requires an undirected store")
	}
	return &IncrementalConnectivity{store: s, dirty: true}, nil
}

// Apply forwards the batch to the store and folds its effective
// changes into the maintained components: effective inserts union
// their endpoints; any effective delete falls back by marking the
// structure for a full rebuild.
func (ic *IncrementalConnectivity) Apply(batch []Update) (Result, error) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	res, changes, err := ic.store.ApplyChanges(batch)
	if err != nil {
		return res, err
	}
	for _, c := range changes {
		if !c.Present {
			ic.dirty = true
			break
		}
	}
	if !ic.dirty && ic.uf != nil {
		for _, c := range changes {
			ic.uf.Union(c.U, c.V)
		}
	}
	return res, nil
}

// Components returns the canonical min-id component labeling and the
// component count, exactly as conn.Components would report on the
// current state: the incremental union–find links larger roots under
// smaller ones, so its roots are component minima too.
func (ic *IncrementalConnectivity) Components() ([]uint32, int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	n := ic.store.NumVertices()
	if ic.dirty || ic.uf == nil {
		sn := ic.store.Snapshot()
		labels, count := conn.Components(sn.Adj())
		sn.Release()
		uf := conn.NewUnionFind(n)
		parallel.For(n, 64, func(i int) {
			if labels[i] != uint32(i) {
				uf.Union(uint32(i), labels[i])
			}
		})
		ic.uf = uf
		ic.dirty = false
		return labels, count
	}
	labels := make([]uint32, n)
	parallel.For(n, 64, func(i int) { labels[i] = ic.uf.Find(uint32(i)) })
	count := parallel.Count(n, func(i int) bool { return labels[i] == uint32(i) })
	return labels, count
}

// Connected reports whether a and b are currently in the same
// component (one find pair on the fast path, a rebuild when dirty).
func (ic *IncrementalConnectivity) Connected(a, b uint32) bool {
	labels, _ := ic.Components()
	return labels[a] == labels[b]
}
