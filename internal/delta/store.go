// Package delta adds mutation to the otherwise-immutable graph
// representations: a Store accepts batched edge inserts and deletes,
// folds them into a per-vertex patch overlay (graph.Overlay) over an
// untouched base CSR, and publishes each new state as an immutable
// epoch. Queries pin an epoch with Snapshot — a refcount, not a lock —
// and keep a perfectly consistent view for as long as they hold it,
// while writers keep publishing newer epochs. Background compaction
// folds a grown patch into a fresh base CSR through the FromEdges radix
// pipeline and retires old epochs once their last snapshot releases.
//
// The single-writer, many-reader design mirrors the rest of the
// library: Apply and Compact serialize on a writer mutex, but Snapshot
// and Release only touch a refcount under a fast mutex, so queries
// never wait for an in-flight batch or compaction.
package delta

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// ErrClosed is returned by mutating calls after Close.
var ErrClosed = errors.New("delta: store closed")

// Op distinguishes the two update kinds.
type Op uint8

const (
	// Insert adds edge (U,V) (with weight W on weighted stores); on an
	// edge that already exists it is a weight change (or a no-op when
	// the weight matches).
	Insert Op = iota
	// Delete removes edge (U,V); deleting an absent edge is a no-op.
	Delete
)

// Update is one edge mutation. On undirected stores it applies to the
// {U,V} edge (both arcs); self-loops are dropped, matching the builder
// invariants of package graph.
type Update struct {
	U, V uint32
	W    uint32
	Op   Op
}

// Result summarizes one applied batch.
type Result struct {
	// Epoch is the epoch that holds the batch's effects. A batch that
	// canonicalized to nothing publishes no new epoch and returns the
	// current one.
	Epoch uint64
	// Applied counts the arcs whose effective state changed (presence
	// or weight). Undirected edges count both arcs.
	Applied int
}

// Change records one effective arc-state change, in the arc direction
// it applies to. Present reports the post-batch state.
type Change struct {
	U, V    uint32
	W       uint32
	Present bool
}

// Options configures a Store. The zero value selects defaults.
type Options struct {
	// CompactFraction triggers background compaction when the patch
	// holds more than CompactFraction × base arcs. 0 selects the
	// default (0.25); negative disables auto-compaction (Compact can
	// still be called explicitly).
	CompactFraction float64
}

// DefaultCompactFraction is the auto-compaction threshold: patch arcs
// as a fraction of base arcs.
const DefaultCompactFraction = 0.25

// epochState is one published graph version. refs counts pinned
// snapshots; the current epoch is additionally kept alive by being
// current. An epoch retires — drops out of the live set, freeing its
// overlay for collection — when it is no longer current and its last
// snapshot releases.
type epochState struct {
	epoch uint64
	view  graph.Adjacency // *graph.Graph (post-build/compaction) or *graph.Overlay
	refs  int
}

// Store is the mutable graph: an immutable base CSR, a patch overlay,
// and the epoch list. All methods are safe for concurrent use.
type Store struct {
	n        int
	directed bool
	weighted bool

	// writeMu serializes the writers (Apply, Compact) and guards the
	// writer-owned state base and ov.
	writeMu sync.Mutex
	base    *graph.Graph
	ov      *graph.Overlay // current patch over base (possibly empty)

	// mu guards the published view and the bookkeeping below; it is
	// never held while building, so Snapshot/Release stay O(1).
	mu         sync.Mutex
	cur        *epochState
	live       map[uint64]*epochState
	closed     bool
	compacting bool

	batches     uint64
	appliedArcs uint64
	compactions uint64
	retired     uint64

	compactFrac float64
	bgWG        sync.WaitGroup
}

// NewStore wraps g as epoch 0 of a mutable store. The store captures
// g — per the package graph immutability contract the caller must not
// modify it afterwards (the store itself never does: every later epoch
// is an overlay over it or a freshly built CSR).
func NewStore(g *graph.Graph, opt Options) *Store {
	frac := opt.CompactFraction
	if frac == 0 {
		frac = DefaultCompactFraction
	}
	s := &Store{
		n:           g.N,
		directed:    g.Directed,
		weighted:    g.Weighted(),
		base:        g,
		ov:          graph.EmptyOverlay(g),
		live:        map[uint64]*epochState{},
		compactFrac: frac,
	}
	s.cur = &epochState{epoch: 0, view: g}
	s.live[0] = s.cur
	return s
}

// NumVertices returns the (fixed) vertex count.
func (s *Store) NumVertices() int { return s.n }

// IsDirected reports the store's arc orientation.
func (s *Store) IsDirected() bool { return s.directed }

// HasWeights reports whether edges carry weights.
func (s *Store) HasWeights() bool { return s.weighted }

// Snapshot pins the current epoch and returns a handle to its
// immutable view. Every Snapshot must be paired with exactly one
// Release; pasgal-vet's epoch-misuse rule flags handles used after
// their Release.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	es := s.cur
	es.refs++
	s.mu.Unlock()
	return &Snapshot{store: s, es: es}
}

// Snapshot is a pinned epoch: an immutable graph view that stays valid
// (and identical) until Release, regardless of concurrent Apply or
// Compact calls.
type Snapshot struct {
	store    *Store
	es       *epochState
	released atomic.Bool
}

// Adj returns the epoch's graph view. It panics if the snapshot was
// already released — a released epoch may have retired.
func (sn *Snapshot) Adj() graph.Adjacency {
	if sn.released.Load() {
		panic("delta: snapshot used after Release")
	}
	return sn.es.view
}

// Epoch returns the pinned epoch number.
func (sn *Snapshot) Epoch() uint64 { return sn.es.epoch }

// Release unpins the epoch; when the last pin on a non-current epoch
// drops, the epoch retires and its memory becomes collectible. Release
// is idempotent.
func (sn *Snapshot) Release() {
	if !sn.released.CompareAndSwap(false, true) {
		return
	}
	s := sn.store
	s.mu.Lock()
	sn.es.refs--
	if sn.es.refs == 0 && sn.es != s.cur {
		delete(s.live, sn.es.epoch)
		s.retired++
	}
	s.mu.Unlock()
}

// rec is one normalized arc-level operation.
type rec struct {
	u, v uint32
	w    uint32
	ins  bool
}

// cell is the canonical patch state desired for one (u,v) after a
// batch: del tombstones a base arc, add contributes a patch arc. The
// five reachable combinations encode exactly the effective states
// expressible over a fixed base (see desiredCell).
type cell struct {
	u, v     uint32
	del, add bool
	w        uint32
	present  bool
}

// Apply canonicalizes batch against the current state, folds the
// effective changes into a new patch overlay, and publishes it as a
// new epoch. Updates that change nothing (inserting a present edge,
// deleting an absent one, within-batch cancellation) are dropped; a
// batch that drops entirely publishes no epoch. Out-of-range vertex
// ids fail the whole batch.
func (s *Store) Apply(batch []Update) (Result, error) {
	res, _, err := s.apply(batch)
	return res, err
}

// ApplyChanges is Apply, additionally reporting the per-arc effective
// changes (in canonicalized order). Incremental algorithms consume the
// change list.
func (s *Store) ApplyChanges(batch []Update) (Result, []Change, error) {
	return s.apply(batch)
}

func (s *Store) apply(batch []Update) (Result, []Change, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	epoch := s.cur.epoch
	s.mu.Unlock()
	if closed {
		return Result{}, nil, ErrClosed
	}
	for _, u := range batch {
		if u.U >= uint32(s.n) || u.V >= uint32(s.n) {
			return Result{Epoch: epoch}, nil, fmt.Errorf("delta: update (%d,%d) out of range n=%d", u.U, u.V, s.n)
		}
	}

	cells := s.canonicalize(batch)
	changes := make([]Change, len(cells))
	for i, c := range cells {
		changes[i] = Change{U: c.u, V: c.v, W: c.w, Present: c.present}
	}
	s.mu.Lock()
	s.batches++
	s.mu.Unlock()
	if len(cells) == 0 {
		return Result{Epoch: epoch}, nil, nil
	}

	s.ov = s.mergePatch(cells)
	newEpoch := s.publish(s.ov)
	s.mu.Lock()
	s.appliedArcs += uint64(len(cells))
	s.mu.Unlock()
	s.maybeCompact()
	return Result{Epoch: newEpoch, Applied: len(cells)}, changes, nil
}

// canonicalize normalizes a batch to the per-arc cells that actually
// change effective state: undirected edges expand to both arcs,
// self-loops drop, within-batch conflicts resolve last-op-wins, and
// each survivor is diffed against the current base+patch state. The
// result is sorted by (u,v) — large batches go through the
// CountSortByKey radix pipeline — and duplicate-free.
func (s *Store) canonicalize(batch []Update) []cell {
	recs := make([]rec, 0, 2*len(batch))
	for _, up := range batch {
		if up.U == up.V {
			continue
		}
		w := up.W
		if !s.weighted {
			w = 0
		}
		recs = append(recs, rec{u: up.U, v: up.V, w: w, ins: up.Op == Insert})
		if !s.directed {
			recs = append(recs, rec{u: up.V, v: up.U, w: w, ins: up.Op == Insert})
		}
	}
	if len(recs) == 0 {
		return nil
	}
	key := func(r rec) uint64 { return uint64(r.u)<<32 | uint64(r.v) }
	if len(recs) >= 4096 {
		maxKey := uint64(s.n-1)<<32 | uint64(s.n-1)
		recs = parallel.CountSortByKey(recs, key, maxKey)
	} else {
		sort.SliceStable(recs, func(i, j int) bool { return key(recs[i]) < key(recs[j]) })
	}
	// Last op per key wins (the sort is stable, so the last element of
	// each equal-key run is the batch's last word on that arc).
	uniq := recs[:0]
	for i, r := range recs {
		if i+1 < len(recs) && key(recs[i+1]) == key(r) {
			continue
		}
		uniq = append(uniq, r)
	}

	// Diff each survivor against the current effective state; keep only
	// real changes.
	changed := make([]bool, len(uniq))
	cells := make([]cell, len(uniq))
	parallel.For(len(uniq), 64, func(i int) {
		r := uniq[i]
		c := s.desiredCell(r)
		cells[i] = c
		curDel, curAdd, curW := s.patchCell(r.u, r.v)
		changed[i] = c.del != curDel || c.add != curAdd || (c.add && c.w != curW)
	})
	out := cells[:0]
	for i, c := range cells {
		if changed[i] {
			out = append(out, c)
		}
	}
	return out
}

// desiredCell maps one normalized op to the canonical patch cell for
// its arc, given the base: a present arc matching the base (same
// weight) is cell (del=false, add=false); a present arc differing from
// the base is tombstone+add; an arc absent from the base is a bare
// add; a deleted base arc is a bare tombstone; deleting a non-base arc
// clears the cell.
func (s *Store) desiredCell(r rec) cell {
	idx := s.base.FindArc(r.u, r.v)
	inBase := idx != ^uint64(0)
	c := cell{u: r.u, v: r.v, present: r.ins, w: r.w}
	if !r.ins {
		c.del = inBase
		c.w = 0
		return c
	}
	if inBase && (!s.weighted || s.base.Weights[idx] == r.w) {
		return c // present via the base untouched
	}
	c.del = inBase
	c.add = true
	return c
}

// patchCell reads the current patch state of (u,v).
func (s *Store) patchCell(u, v uint32) (del, add bool, w uint32) {
	dels := s.ov.Deleted(u)
	adds, addW := s.ov.Added(u)
	del = containsSorted(dels, v)
	if i := searchSorted(adds, v); i < len(adds) && adds[i] == v {
		add = true
		if addW != nil {
			w = addW[i]
		}
	}
	return del, add, w
}

func searchSorted(s []uint32, x uint32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func containsSorted(s []uint32, x uint32) bool {
	i := searchSorted(s, x)
	return i < len(s) && s[i] == x
}

// mergePatch builds the next overlay: the current patch arrays with
// the changed cells overriding their keys. Both inputs are sorted per
// vertex, so each vertex is one linear merge; the count and fill
// passes run vertex-parallel over disjoint output ranges.
func (s *Store) mergePatch(cells []cell) *graph.Overlay {
	n := s.n
	cOff := make([]uint64, n+1)
	for _, c := range cells {
		cOff[c.u+1]++
	}
	for v := 0; v < n; v++ {
		cOff[v+1] += cOff[v]
	}

	addDeg := make([]int64, n+1)
	delDeg := make([]int64, n+1)
	parallel.For(n, 256, func(vi int) {
		v := uint32(vi)
		adds, _ := s.ov.Added(v)
		dels := s.ov.Deleted(v)
		vc := cells[cOff[v]:cOff[v+1]]
		a, d := int64(len(adds)), int64(len(dels))
		for _, c := range vc {
			if containsSorted(adds, c.v) {
				a--
			}
			if c.add {
				a++
			}
			if containsSorted(dels, c.v) {
				d--
			}
			if c.del {
				d++
			}
		}
		addDeg[vi], delDeg[vi] = a, d
	})
	addTotal := parallel.Scan(addDeg[:n])
	delTotal := parallel.Scan(delDeg[:n])
	addOff := make([]uint64, n+1)
	delOff := make([]uint64, n+1)
	parallel.For(n, 0, func(v int) {
		addOff[v] = uint64(addDeg[v])
		delOff[v] = uint64(delDeg[v])
	})
	addOff[n] = uint64(addTotal)
	delOff[n] = uint64(delTotal)
	newAdds := make([]uint32, addTotal)
	var newAddW []uint32
	if s.weighted {
		newAddW = make([]uint32, addTotal)
	}
	newDels := make([]uint32, delTotal)

	parallel.For(n, 64, func(vi int) {
		v := uint32(vi)
		adds, addW := s.ov.Added(v)
		dels := s.ov.Deleted(v)
		vc := cells[cOff[v]:cOff[v+1]]

		at := addOff[v]
		ai, ci := 0, 0
		for ai < len(adds) || ci < len(vc) {
			switch {
			case ci == len(vc) || (ai < len(adds) && adds[ai] < vc[ci].v):
				newAdds[at] = adds[ai]
				if newAddW != nil {
					newAddW[at] = addW[ai]
				}
				at++
				ai++
			case ai == len(adds) || vc[ci].v < adds[ai]:
				if vc[ci].add {
					newAdds[at] = vc[ci].v
					if newAddW != nil {
						newAddW[at] = vc[ci].w
					}
					at++
				}
				ci++
			default: // equal: the cell overrides the old entry
				if vc[ci].add {
					newAdds[at] = vc[ci].v
					if newAddW != nil {
						newAddW[at] = vc[ci].w
					}
					at++
				}
				ai++
				ci++
			}
		}

		dt := delOff[v]
		di, ci := 0, 0
		for di < len(dels) || ci < len(vc) {
			switch {
			case ci == len(vc) || (di < len(dels) && dels[di] < vc[ci].v):
				newDels[dt] = dels[di]
				dt++
				di++
			case di == len(dels) || vc[ci].v < dels[di]:
				if vc[ci].del {
					newDels[dt] = vc[ci].v
					dt++
				}
				ci++
			default:
				if vc[ci].del {
					newDels[dt] = vc[ci].v
					dt++
				}
				di++
				ci++
			}
		}
	})
	return graph.NewOverlay(s.base, addOff, newAdds, newAddW, delOff, newDels)
}

// publish installs view as the next epoch and retires the previous one
// if nothing pins it.
func (s *Store) publish(view graph.Adjacency) uint64 {
	s.mu.Lock()
	old := s.cur
	es := &epochState{epoch: old.epoch + 1, view: view}
	s.cur = es
	s.live[es.epoch] = es
	if old.refs == 0 {
		delete(s.live, old.epoch)
		s.retired++
	}
	s.mu.Unlock()
	return es.epoch
}

// Compact folds the current patch into a fresh base CSR through the
// graph.FromEdges radix pipeline and publishes it as a new epoch.
// Snapshots pinned on older epochs keep their overlay views — the old
// base is captured inside them and is never modified. With an empty
// patch it is a no-op.
func (s *Store) Compact() (uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	closed := s.closed
	epoch := s.cur.epoch
	s.mu.Unlock()
	if closed {
		return 0, ErrClosed
	}
	if s.ov.PatchArcs() == 0 {
		return epoch, nil
	}
	newBase := graph.FromEdges(s.n, s.ov.Arcs(), s.directed, graph.BuildOptions{Weighted: s.weighted})
	s.base = newBase
	s.ov = graph.EmptyOverlay(newBase)
	newEpoch := s.publish(newBase)
	s.mu.Lock()
	s.compactions++
	s.mu.Unlock()
	return newEpoch, nil
}

// maybeCompact starts a background compaction when the patch outgrew
// the configured fraction of the base. At most one runs at a time.
func (s *Store) maybeCompact() {
	if s.compactFrac <= 0 {
		return
	}
	baseArcs := s.base.M()
	if baseArcs == 0 {
		baseArcs = 1
	}
	if float64(s.ov.PatchArcs()) <= s.compactFrac*float64(baseArcs) {
		return
	}
	s.mu.Lock()
	if s.closed || s.compacting {
		s.mu.Unlock()
		return
	}
	s.compacting = true
	s.bgWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.bgWG.Done()
		//pasgal:vet ignore=escape-to-parallel -- the flagged writes build the brand-new CSR inside graph.FromEdges, local to this goroutine until published under s.mu
		_, _ = s.Compact() // a close racing in drops the compaction by design
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
}

// Close rejects further mutation and waits for any background
// compaction to finish. Outstanding snapshots stay valid — readers
// finish on their pinned epochs.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.bgWG.Wait()
}

// Stats is a point-in-time snapshot of store bookkeeping.
type Stats struct {
	Epoch       uint64 // current epoch number
	LiveEpochs  int    // epochs not yet retired (current included)
	Batches     uint64 // Apply calls accepted
	AppliedArcs uint64 // effective arc changes across all batches
	Compactions uint64 // compactions completed
	Retired     uint64 // epochs retired
	BaseArcs    int    // arcs in the current epoch's base CSR
	PatchArcs   int    // adds+tombstones in the current epoch's patch
}

// Stats reports current bookkeeping. It reads only published state, so
// it is safe (and non-blocking) alongside writers.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Epoch:       s.cur.epoch,
		LiveEpochs:  len(s.live),
		Batches:     s.batches,
		AppliedArcs: s.appliedArcs,
		Compactions: s.compactions,
		Retired:     s.retired,
	}
	switch v := s.cur.view.(type) {
	case *graph.Overlay:
		st.BaseArcs = v.Base().M()
		st.PatchArcs = v.PatchArcs()
	default:
		st.BaseArcs = s.cur.view.NumArcs()
	}
	return st
}
