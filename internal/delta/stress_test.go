package delta

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// TestStressConcurrentUpdatesQueries is the snapshot-isolation stress
// test run under -race by scripts/check.sh: writer goroutines apply
// random batches (with auto-compaction enabled, so background Compact
// races the appliers and the readers), while reader goroutines pin
// snapshots and check that a pinned epoch's answers are internally
// consistent — two BFS runs on the same pinned snapshot must agree
// even while the store churns underneath.
func TestStressConcurrentUpdatesQueries(t *testing.T) {
	base := gen.ER(256, 512, false, 0x57BE55)
	s := NewStore(base, Options{CompactFraction: 0.25})
	defer s.Close()

	const (
		writers        = 3
		readers        = 4
		batchesPerW    = 30
		queriesPerRead = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for b := 0; b < batchesPerW; b++ {
				batch := make([]Update, 0, 16)
				for i := 0; i < 16; i++ {
					u := uint32(rng.Intn(base.N))
					v := uint32(rng.Intn(base.N))
					op := Insert
					if rng.Intn(3) == 0 {
						op = Delete
					}
					batch = append(batch, Update{U: u, V: v, Op: op})
				}
				if _, err := s.Apply(batch); err != nil {
					t.Errorf("writer %d: %v", id, err)
					return
				}
				if b%10 == 9 {
					if _, err := s.Compact(); err != nil {
						t.Errorf("writer %d compact: %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + id)))
			for q := 0; q < queriesPerRead; q++ {
				sn := s.Snapshot()
				src := uint32(rng.Intn(base.N))
				d1, _, err := core.BFS(sn.Adj(), src, core.Options{})
				if err != nil {
					t.Errorf("reader %d: %v", id, err)
					sn.Release()
					return
				}
				// Same pinned epoch: a second run (and a re-read of the
				// view) must see the identical graph.
				d2, _, err := core.BFS(sn.Adj(), src, core.Options{})
				if err != nil {
					t.Errorf("reader %d: %v", id, err)
					sn.Release()
					return
				}
				if !reflect.DeepEqual(d1, d2) {
					t.Errorf("reader %d: pinned snapshot epoch %d answered differently across runs", id, sn.Epoch())
					sn.Release()
					return
				}
				sn.Release()
			}
		}(r)
	}
	wg.Wait()

	// Quiesced store must satisfy the differential guarantee: the final
	// overlay view equals a from-scratch rebuild of its own arc set.
	sn := s.Snapshot()
	defer sn.Release()
	var want *graph.Graph
	switch v := sn.Adj().(type) {
	case *graph.Graph:
		want = v
	case *graph.Overlay:
		if err := v.Validate(); err != nil {
			t.Fatal(err)
		}
		want = v.Materialize()
	}
	var edges []graph.Edge
	for u := 0; u < want.N; u++ {
		for _, v := range want.Neighbors(uint32(u)) {
			if uint32(u) < v {
				edges = append(edges, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	rebuilt := graph.FromEdges(want.N, edges, want.Directed, graph.BuildOptions{Weighted: want.Weighted()})
	if !reflect.DeepEqual(want.Offsets, rebuilt.Offsets) || !reflect.DeepEqual(want.Edges, rebuilt.Edges) {
		t.Fatal("final state differs from from-scratch rebuild")
	}
	st := s.Stats()
	if st.Batches == 0 {
		t.Fatalf("no batches recorded: %+v", st)
	}
	if st.LiveEpochs != 1 {
		t.Fatalf("leaked epochs after all releases: %+v", st)
	}
}

// TestStressIncrementalConnectivityConcurrent hammers the incremental
// connectivity wrapper from several goroutines: appliers push
// insert-only and mixed batches while queriers call Components and
// Connected. Correctness of the final labeling is checked against a
// from-scratch recompute once everything quiesces.
func TestStressIncrementalConnectivityConcurrent(t *testing.T) {
	base := gen.Grid2D(16, 16, false, 0xC0FFEE)
	s := NewStore(base, Options{CompactFraction: 0.5})
	defer s.Close()
	ic, err := NewIncrementalConnectivity(s)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + id)))
			for b := 0; b < 20; b++ {
				batch := make([]Update, 0, 8)
				for i := 0; i < 8; i++ {
					u := uint32(rng.Intn(base.N))
					v := uint32(rng.Intn(base.N))
					op := Insert
					if rng.Intn(4) == 0 {
						op = Delete
					}
					batch = append(batch, Update{U: u, V: v, Op: op})
				}
				if _, err := ic.Apply(batch); err != nil {
					t.Errorf("applier %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + id)))
			for q := 0; q < 15; q++ {
				labels, count := ic.Components()
				if count <= 0 || len(labels) != base.N {
					t.Errorf("querier %d: bad components (%d labels, count %d)", id, len(labels), count)
					return
				}
				a := uint32(rng.Intn(base.N))
				b := uint32(rng.Intn(base.N))
				ic.Connected(a, b) // must not race or panic
			}
		}(r)
	}
	wg.Wait()

	sn := s.Snapshot()
	view := viewCSR(t, sn.Adj())
	sn.Release()
	wantLabels, wantCount := conn.Components(view)
	gotLabels, gotCount := ic.Components()
	if wantCount != gotCount || !reflect.DeepEqual(wantLabels, gotLabels) {
		t.Fatalf("quiesced labeling differs: %d vs %d components", gotCount, wantCount)
	}
}
