package delta

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/core"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/msbfs"
)

// deltaShape is one entry of the mutation differential matrix: a base
// graph whose structural regime stresses a different part of the
// overlay/canonicalization machinery.
type deltaShape struct {
	name string
	g    *graph.Graph
}

// deltaShapes mirrors the library's differential-matrix convention:
// every structural regime the algorithms branch on, at sizes small
// enough to batch-schedule quickly.
func deltaShapes(seed uint64) []deltaShape {
	w := func(g *graph.Graph) *graph.Graph { return gen.AddUniformWeights(g, 1, 64, seed) }
	return []deltaShape{
		{"empty", graph.FromEdges(16, nil, false, graph.BuildOptions{})},
		{"single-edge", graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, false, graph.BuildOptions{})},
		{"chain", gen.Chain(300, false)},
		{"chain-dir", gen.Chain(300, true)},
		{"cycle", gen.Cycle(128, false)},
		{"cycle-dir", gen.Cycle(128, true)},
		{"star", gen.Star(256)},
		{"binary-tree", gen.CompleteBinaryTree(255)},
		{"random-tree", gen.Tree(200, seed)},
		{"er-sparse", gen.ER(400, 600, false, seed)},
		{"er-sparse-dir", gen.ER(400, 600, true, seed)},
		{"er-dense", gen.ER(80, 1600, false, seed)},
		{"er-dense-dir", gen.ER(80, 1600, true, seed)},
		{"grid", gen.Grid2D(16, 16, false, seed)},
		{"grid-dir", gen.Grid2D(16, 16, true, seed)},
		{"sampled-grid", gen.SampledGrid(20, 20, 0.6, false, seed)},
		{"tri-grid", gen.TriGrid(12, 12)},
		{"perforated", gen.PerforatedGrid(20, 20, 5, 2, seed)},
		{"hypercube", gen.Hypercube(7)},
		{"rmat", gen.RMAT(8, 6, 0.57, 0.19, 0.19, false, seed)},
		{"rmat-dir", gen.RMAT(8, 6, 0.57, 0.19, 0.19, true, seed)},
		{"ba", gen.BarabasiAlbert(250, 3, seed)},
		{"ws", gen.WattsStrogatz(200, 6, 0.1, seed)},
		{"knn-dir", gen.KNN(200, 4, 3, true, seed)},
		{"weblike", gen.WebLike(300, 4, 0.2, 5, seed)},
		{"er-weighted", w(gen.ER(300, 900, false, seed))},
		{"er-weighted-dir", w(gen.ER(300, 900, true, seed))},
		{"chain-weighted-dir", w(gen.Chain(200, true))},
	}
}

func TestDeltaShapeInventory(t *testing.T) {
	if n := len(deltaShapes(1)); n < 26 {
		t.Fatalf("delta differential matrix has %d shapes, want >= 26", n)
	}
}

// truthModel tracks the effective edge multiset alongside the store —
// the from-scratch rebuild oracle.
type truthModel struct {
	n        int
	directed bool
	weighted bool
	edges    map[[2]uint32]uint32 // arc -> weight
}

func newTruthModel(g *graph.Graph) *truthModel {
	m := &truthModel{n: g.N, directed: g.Directed, weighted: g.Weighted(), edges: map[[2]uint32]uint32{}}
	for u := 0; u < g.N; u++ {
		for i, v := range g.Neighbors(uint32(u)) {
			var w uint32
			if m.weighted {
				w = g.NeighborWeights(uint32(u))[i]
			}
			m.edges[[2]uint32{uint32(u), v}] = w
		}
	}
	return m
}

func (m *truthModel) apply(batch []Update) {
	for _, up := range batch {
		if up.U == up.V {
			continue
		}
		arcs := [][2]uint32{{up.U, up.V}}
		if !m.directed {
			arcs = append(arcs, [2]uint32{up.V, up.U})
		}
		for _, a := range arcs {
			if up.Op == Insert {
				w := up.W
				if !m.weighted {
					w = 0
				}
				m.edges[a] = w
			} else {
				delete(m.edges, a)
			}
		}
	}
}

// rebuild produces the FromEdges oracle graph for the current state.
func (m *truthModel) rebuild() *graph.Graph {
	var edges []graph.Edge
	for a, w := range m.edges {
		if m.directed || a[0] < a[1] {
			edges = append(edges, graph.Edge{U: a[0], V: a[1], W: w})
		}
	}
	return graph.FromEdges(m.n, edges, m.directed, graph.BuildOptions{Weighted: m.weighted})
}

// randomBatch mixes inserts of random pairs, deletes of live edges,
// weight changes, and deliberate no-ops.
func (m *truthModel) randomBatch(rng *rand.Rand, size int) []Update {
	if m.n < 2 {
		return nil
	}
	var live [][2]uint32
	for a := range m.edges {
		live = append(live, a)
	}
	// Map iteration order is random but not rng-seeded; sort for
	// schedule reproducibility.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0; j-- {
			a, b := live[j-1], live[j]
			if a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]) {
				break
			}
			live[j-1], live[j] = b, a
		}
	}
	batch := make([]Update, 0, size)
	for i := 0; i < size; i++ {
		switch r := rng.Intn(10); {
		case r < 4: // random insert (sometimes already present)
			u, v := uint32(rng.Intn(m.n)), uint32(rng.Intn(m.n))
			batch = append(batch, Update{U: u, V: v, W: uint32(1 + rng.Intn(64)), Op: Insert})
		case r < 7 && len(live) > 0: // delete a live edge
			a := live[rng.Intn(len(live))]
			batch = append(batch, Update{U: a[0], V: a[1], Op: Delete})
		case r < 8 && len(live) > 0 && m.weighted: // weight change
			a := live[rng.Intn(len(live))]
			batch = append(batch, Update{U: a[0], V: a[1], W: uint32(1 + rng.Intn(64)), Op: Insert})
		default: // delete an (almost surely) absent edge: a no-op
			u, v := uint32(rng.Intn(m.n)), uint32(rng.Intn(m.n))
			batch = append(batch, Update{U: u, V: v, Op: Delete})
		}
	}
	return batch
}

// checkEquivalent asserts that the snapshot view answers identically to
// the from-scratch rebuild on the structure and a sweep of algorithms.
func checkEquivalent(t *testing.T, name string, view graph.Adjacency, ref *graph.Graph, rng *rand.Rand) {
	t.Helper()
	got := viewCSR(t, view)
	if !reflect.DeepEqual(ref.Offsets, got.Offsets) || !reflect.DeepEqual(ref.Edges, got.Edges) ||
		!reflect.DeepEqual(ref.Weights, got.Weights) {
		t.Fatalf("%s: overlay CSR differs from FromEdges rebuild", name)
	}
	if ref.N == 0 {
		return
	}
	srcs := []uint32{0, uint32(rng.Intn(ref.N)), uint32(rng.Intn(ref.N))}
	for _, src := range srcs {
		wd, _, err := core.BFS(ref, src, core.Options{})
		gd, _, err2 := core.BFS(view, src, core.Options{})
		if err != nil || err2 != nil {
			t.Fatalf("%s: bfs errs %v/%v", name, err, err2)
		}
		if !reflect.DeepEqual(wd, gd) {
			t.Fatalf("%s: BFS(%d) differs on overlay vs rebuild", name, src)
		}
	}
	wr, _, _ := core.Reachable(ref, srcs[:2], core.Options{})
	gr, _, _ := core.Reachable(view, srcs[:2], core.Options{})
	if !reflect.DeepEqual(wr, gr) {
		t.Fatalf("%s: Reachable differs", name)
	}
	wm, _, _ := msbfs.Run(ref, srcs, core.Options{})
	gm, _, _ := msbfs.Run(view, srcs, core.Options{})
	if !reflect.DeepEqual(wm, gm) {
		t.Fatalf("%s: MS-BFS differs", name)
	}
	if ref.Weighted() {
		ws, _, err := core.SSSP(ref, srcs[0], nil, core.Options{})
		gs, _, err2 := core.SSSP(view, srcs[0], nil, core.Options{})
		if err != nil || err2 != nil {
			t.Fatalf("%s: sssp errs %v/%v", name, err, err2)
		}
		if !reflect.DeepEqual(ws, gs) {
			t.Fatalf("%s: SSSP differs", name)
		}
	}
	if !ref.Directed {
		wl, wc := conn.Components(ref)
		gl, gc := conn.Components(view)
		if wc != gc || !reflect.DeepEqual(wl, gl) {
			t.Fatalf("%s: Components differ", name)
		}
	}
}

// TestDifferentialBatchSchedules is the acceptance-criterion suite:
// random insert/delete batch schedules over the shape matrix, with the
// overlay snapshot checked against a from-scratch FromEdges rebuild
// after every batch, and compaction interleaved on half the schedules.
func TestDifferentialBatchSchedules(t *testing.T) {
	for si, sh := range deltaShapes(0xDE17A) {
		sh := sh
		si := si
		t.Run(sh.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(0xBEEF + si)))
			model := newTruthModel(sh.g)
			s := NewStore(sh.g, Options{CompactFraction: -1})
			defer s.Close()
			batchSize := sh.g.N/4 + 4
			for round := 0; round < 4; round++ {
				batch := model.randomBatch(rng, batchSize)
				model.apply(batch)
				if _, err := s.Apply(batch); err != nil {
					t.Fatal(err)
				}
				if si%2 == 0 && round == 2 {
					if _, err := s.Compact(); err != nil {
						t.Fatal(err)
					}
				}
				sn := s.Snapshot()
				if ov, ok := sn.Adj().(*graph.Overlay); ok {
					if err := ov.Validate(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				checkEquivalent(t, fmt.Sprintf("%s/round%d", sh.name, round), sn.Adj(), model.rebuild(), rng)
				sn.Release()
			}
		})
	}
}

// TestDifferentialIncrementalConnectivity drives random schedules
// through IncrementalConnectivity on every undirected shape and checks
// the labeling against recompute-from-scratch after each batch —
// including insert-only stretches (the union-find fast path) and
// deleting batches (the rebuild fallback).
func TestDifferentialIncrementalConnectivity(t *testing.T) {
	for si, sh := range deltaShapes(0xC0114) {
		if sh.g.Directed {
			continue
		}
		sh := sh
		si := si
		t.Run(sh.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(0xFACE + si)))
			model := newTruthModel(sh.g)
			s := NewStore(sh.g, Options{CompactFraction: -1})
			defer s.Close()
			ic, err := NewIncrementalConnectivity(s)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 6; round++ {
				var batch []Update
				if round < 3 && sh.g.N >= 2 {
					// Insert-only: exercises the no-recompute path.
					for i := 0; i < sh.g.N/8+2; i++ {
						u, v := uint32(rng.Intn(sh.g.N)), uint32(rng.Intn(sh.g.N))
						batch = append(batch, Update{U: u, V: v, Op: Insert})
					}
				} else {
					batch = model.randomBatch(rng, sh.g.N/6+3)
				}
				model.apply(batch)
				if _, err := ic.Apply(batch); err != nil {
					t.Fatal(err)
				}
				wantLabels, wantCount := conn.Components(model.rebuild())
				gotLabels, gotCount := ic.Components()
				if wantCount != gotCount || !reflect.DeepEqual(wantLabels, gotLabels) {
					t.Fatalf("round %d: components differ (%d vs %d)", round, gotCount, wantCount)
				}
			}
		})
	}
}

func TestIncrementalConnectivityRequiresUndirected(t *testing.T) {
	s := NewStore(gen.Chain(4, true), Options{CompactFraction: -1})
	defer s.Close()
	if _, err := NewIncrementalConnectivity(s); err == nil {
		t.Fatal("directed store must be rejected")
	}
}
