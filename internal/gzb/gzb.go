// Package gzb implements the byte codec behind PASGAL's compressed CSR
// representation (graph.Compressed): GBBS-style difference-encoded
// adjacency lists in base-128 varints.
//
// One vertex's adjacency list encodes independently of every other —
// each list is its own restart point, so whole-graph encoding and
// decode-on-scan traversal parallelize per vertex with no shared decoder
// state. The layout of one list for vertex v with sorted neighbors
// v0 <= v1 <= ... is:
//
//	uvarint(deg)
//	zigzag(v0 - v)   [uvarint(w0)]
//	uvarint(v1 - v0) [uvarint(w1)]
//	uvarint(v2 - v1) [uvarint(w2)]
//	...
//
// The first neighbor is a signed delta from the owning vertex (zigzag
// encoded: most neighbors of v sit near v in a locality-friendly
// ordering), and every later neighbor is an unsigned gap from its
// predecessor — legal because builders keep adjacency sorted, and gaps
// of zero encode duplicate arcs exactly. Weights, when present, are
// interleaved after each target so a weighted scan stays one forward
// pass.
//
// The package has two decoding modes: trusted (DecodeList, DecodeDegree
// — no validation, used on data that passed CheckList once) and checked
// (CheckList — bounds- and range-validates one list and reports the
// exact byte offset of the first corruption, used by the gio readers on
// untrusted bytes).
package gzb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MaxDeltaSize is the worst-case encoded size in bytes of one uvarint
// this codec emits. Gaps and weights fit in 32 bits (5 bytes); the
// zigzag first delta spans [-2^32, 2^32) (also 5 bytes); degrees are at
// most 2^32 (5 bytes).
const MaxDeltaSize = 5

// Zigzag folds a signed delta into an unsigned varint payload with small
// magnitudes small: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
func Zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// Unzigzag inverts Zigzag. Streaming decoders (graph.ArcCursor) apply it
// to the first delta of a list themselves.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// EncodedListSize returns the exact number of bytes AppendList would
// emit for vertex v's list. wts is nil for unweighted graphs.
func EncodedListSize(v uint32, nbrs, wts []uint32) int {
	size := uvarintSize(uint64(len(nbrs)))
	prev := int64(v)
	for i, w := range nbrs {
		if i == 0 {
			size += uvarintSize(Zigzag(int64(w) - prev))
		} else {
			size += uvarintSize(uint64(int64(w) - prev))
		}
		prev = int64(w)
		if wts != nil {
			size += uvarintSize(uint64(wts[i]))
		}
	}
	return size
}

// AppendList appends the encoding of vertex v's sorted adjacency list to
// dst and returns the extended slice. wts must be nil (unweighted) or
// len(nbrs) long.
func AppendList(dst []byte, v uint32, nbrs, wts []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(nbrs)))
	prev := int64(v)
	for i, w := range nbrs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, Zigzag(int64(w)-prev))
		} else {
			dst = binary.AppendUvarint(dst, uint64(int64(w)-prev))
		}
		prev = int64(w)
		if wts != nil {
			dst = binary.AppendUvarint(dst, uint64(wts[i]))
		}
	}
	return dst
}

// DecodeDegree reads the degree field at the start of a trusted list
// encoding and returns it with the number of header bytes consumed.
func DecodeDegree(data []byte) (deg uint32, headerLen int) {
	u, k := Uvarint(data, 0)
	return uint32(u), k
}

// DecodeList appends vertex v's neighbors (and weights, when wts is
// non-nil) decoded from the trusted list encoding at the start of data,
// returning the extended slices. weighted states whether the encoding
// interleaves weights — an unweighted scan of a weighted list passes
// weighted=true with wts=nil and the weight bytes are skipped. data must
// have passed CheckList; corrupt trusted data panics via slice bounds
// rather than decoding silently wrong.
func DecodeList(data []byte, v uint32, weighted bool, nbrs, wts []uint32) ([]uint32, []uint32) {
	u, pos := Uvarint(data, 0)
	deg := int(u)
	if deg == 0 {
		return nbrs, wts
	}
	// The first delta is the only signed one; peeling it keeps the per-arc
	// loops free of the zigzag branch.
	u, pos = Uvarint(data, pos)
	prev := uint32(int64(v) + Unzigzag(u))
	nbrs = append(nbrs, prev)
	if weighted {
		u, pos = Uvarint(data, pos)
		if wts != nil {
			wts = append(wts, uint32(u))
		}
		for i := 1; i < deg; i++ {
			u, pos = Uvarint(data, pos)
			prev += uint32(u)
			nbrs = append(nbrs, prev)
			u, pos = Uvarint(data, pos)
			if wts != nil {
				wts = append(wts, uint32(u))
			}
		}
		return nbrs, wts
	}
	// Unweighted gap loop — the BFS push scan's inner decode. The varint
	// fast path is open-coded so the one-byte case (the overwhelming
	// majority after relabeling) runs branch+add with no call.
	for i := 1; i < deg; i++ {
		if b := data[pos]; b < 0x80 {
			prev += uint32(b)
			pos++
		} else {
			u, pos = uvarintSlow(data, pos)
			prev += uint32(u)
		}
		nbrs = append(nbrs, prev)
	}
	return nbrs, wts
}

// Uvarint decodes one base-128 varint from data at pos and returns the
// value with the position just past it. The one-byte case — the vast
// majority of gaps after degree-ordered relabeling — stays on a branch
// the compiler can inline; longer varints take the outlined slow path.
func Uvarint(data []byte, pos int) (uint64, int) {
	if b := data[pos]; b < 0x80 {
		return uint64(b), pos + 1
	}
	return uvarintSlow(data, pos)
}

func uvarintSlow(data []byte, pos int) (uint64, int) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
	}
}

func uvarintSize(x uint64) int {
	size := 1
	for x >= 0x80 {
		x >>= 7
		size++
	}
	return size
}

// CheckList validates one list encoding against untrusted bytes: every
// varint must terminate inside data, every decoded neighbor must be in
// [0, n), the implied neighbor order must be
// non-decreasing (guaranteed by construction: gaps are unsigned), and
// the list must occupy exactly len(data) bytes. It returns the decoded
// degree and, on corruption, an error naming the byte offset (relative
// to the start of the list) of the first bad field.
func CheckList(data []byte, v, n uint32, weighted bool) (deg uint32, err error) {
	u, pos, ok := checkedUvarint(data, 0)
	if !ok {
		return 0, fmt.Errorf("byte 0: truncated degree varint")
	}
	// Duplicate arcs can push a degree past n, but never past the payload
	// length: every arc costs at least one byte.
	if u > uint64(len(data)) {
		return 0, fmt.Errorf("byte 0: degree %d exceeds the %d-byte list payload", u, len(data))
	}
	deg = uint32(u)
	prev := int64(v)
	for i := uint32(0); i < deg; i++ {
		at := pos
		u, pos, ok = checkedUvarint(data, pos)
		if !ok {
			return 0, fmt.Errorf("byte %d: truncated delta varint (arc %d of %d)", at, i, deg)
		}
		if i == 0 {
			d := Unzigzag(u)
			if d < -int64(v) || d > math.MaxUint32 {
				return 0, fmt.Errorf("byte %d: first delta %d leaves [0, 2^32)", at, d)
			}
			prev += d
		} else {
			if u > math.MaxUint32 {
				return 0, fmt.Errorf("byte %d: gap %d exceeds the 32-bit id space", at, u)
			}
			prev += int64(u)
		}
		if prev >= int64(n) {
			return 0, fmt.Errorf("byte %d: neighbor %d out of range (n=%d)", at, prev, n)
		}
		if weighted {
			at = pos
			u, pos, ok = checkedUvarint(data, pos)
			if !ok {
				return 0, fmt.Errorf("byte %d: truncated weight varint (arc %d of %d)", at, i, deg)
			}
			if u > math.MaxUint32 {
				return 0, fmt.Errorf("byte %d: weight %d exceeds the 32-bit limit", at, u)
			}
		}
	}
	if pos != len(data) {
		return 0, fmt.Errorf("byte %d: %d trailing bytes after %d arcs", pos, len(data)-pos, deg)
	}
	return deg, nil
}

// checkedUvarint is Uvarint against untrusted bytes: it refuses to read
// past data and rejects varints longer than binary.MaxVarintLen64.
func checkedUvarint(data []byte, pos int) (uint64, int, bool) {
	v, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return 0, pos, false
	}
	return v, pos + k, true
}
