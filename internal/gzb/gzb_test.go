package gzb

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randSortedList builds a sorted (possibly duplicated) neighbor list in
// [0, n).
func randSortedList(rng *rand.Rand, n, deg int) []uint32 {
	nbrs := make([]uint32, deg)
	for i := range nbrs {
		nbrs[i] = uint32(rng.Intn(n))
	}
	for i := 1; i < len(nbrs); i++ {
		for j := i; j > 0 && nbrs[j] < nbrs[j-1]; j-- {
			nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
		}
	}
	return nbrs
}

func TestListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 1 << 16
	for trial := 0; trial < 2000; trial++ {
		v := uint32(rng.Intn(n))
		deg := rng.Intn(40)
		nbrs := randSortedList(rng, n, deg)
		var wts []uint32
		if trial%2 == 1 {
			wts = make([]uint32, deg)
			for i := range wts {
				wts[i] = rng.Uint32()
			}
		}
		enc := AppendList(nil, v, nbrs, wts)
		if got, want := len(enc), EncodedListSize(v, nbrs, wts); got != want {
			t.Fatalf("trial %d: encoded %d bytes, EncodedListSize says %d", trial, got, want)
		}
		cdeg, err := CheckList(enc, v, uint32(n), wts != nil)
		if err != nil {
			t.Fatalf("trial %d: CheckList rejected valid encoding: %v", trial, err)
		}
		if int(cdeg) != deg {
			t.Fatalf("trial %d: CheckList degree %d, want %d", trial, cdeg, deg)
		}
		if d, _ := DecodeDegree(enc); int(d) != deg {
			t.Fatalf("trial %d: DecodeDegree %d, want %d", trial, d, deg)
		}
		var wbuf []uint32
		if wts != nil {
			wbuf = make([]uint32, 0, deg)
		}
		gotN, gotW := DecodeList(enc, v, wts != nil, make([]uint32, 0, deg), wbuf)
		if len(gotN) != deg {
			t.Fatalf("trial %d: decoded %d neighbors, want %d", trial, len(gotN), deg)
		}
		for i := range nbrs {
			if gotN[i] != nbrs[i] {
				t.Fatalf("trial %d: nbr[%d] = %d, want %d", trial, i, gotN[i], nbrs[i])
			}
			if wts != nil && gotW[i] != wts[i] {
				t.Fatalf("trial %d: wt[%d] = %d, want %d", trial, i, gotW[i], wts[i])
			}
		}
	}
}

// TestListExtremes pins the boundary encodings: empty lists, the extreme
// first deltas (neighbor 0 from the last vertex and vice versa), maximal
// weights, and runs of zero gaps (duplicate arcs).
func TestListExtremes(t *testing.T) {
	last := uint32(math.MaxUint32 - 1)
	n := uint32(math.MaxUint32)
	cases := []struct {
		name string
		v    uint32
		nbrs []uint32
		wts  []uint32
	}{
		{name: "empty", v: 7, nbrs: nil},
		{name: "self-loop", v: 9, nbrs: []uint32{9}},
		{name: "max-negative-delta", v: last, nbrs: []uint32{0}},
		{name: "max-positive-delta", v: 0, nbrs: []uint32{last}},
		{name: "full-span", v: last, nbrs: []uint32{0, last}},
		{name: "duplicates", v: 3, nbrs: []uint32{5, 5, 5, 5}},
		{name: "max-weight", v: 0, nbrs: []uint32{1}, wts: []uint32{math.MaxUint32}},
	}
	for _, tc := range cases {
		enc := AppendList(nil, tc.v, tc.nbrs, tc.wts)
		if _, err := CheckList(enc, tc.v, n, tc.wts != nil); err != nil {
			t.Fatalf("%s: CheckList: %v", tc.name, err)
		}
		gotN, gotW := DecodeList(enc, tc.v, tc.wts != nil, nil, nil)
		if len(gotN) != len(tc.nbrs) {
			t.Fatalf("%s: decoded %d neighbors, want %d", tc.name, len(gotN), len(tc.nbrs))
		}
		for i := range tc.nbrs {
			if gotN[i] != tc.nbrs[i] {
				t.Fatalf("%s: nbr[%d] = %d, want %d", tc.name, i, gotN[i], tc.nbrs[i])
			}
		}
		if tc.wts != nil {
			_, gotW = DecodeList(enc, tc.v, true, nil, make([]uint32, 0, 1))
			for i := range tc.wts {
				if gotW[i] != tc.wts[i] {
					t.Fatalf("%s: wt[%d] = %d, want %d", tc.name, i, gotW[i], tc.wts[i])
				}
			}
		}
	}
}

// TestCheckListRejects feeds CheckList corrupt encodings and demands an
// error naming a byte offset for each.
func TestCheckListRejects(t *testing.T) {
	good := AppendList(nil, 5, []uint32{2, 8, 8, 900}, nil)
	n := uint32(1000)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{name: "empty-input", data: nil, want: "truncated degree"},
		{name: "truncated-mid-list", data: good[:len(good)-1], want: "truncated delta"},
		{name: "trailing-garbage", data: append(append([]byte{}, good...), 0x01), want: "trailing"},
		{name: "degree-too-big", data: AppendList(nil, 5, make([]uint32, 0, 0), nil)[:0], want: ""},
		{name: "unterminated-varint", data: []byte{0x80, 0x80, 0x80}, want: "truncated degree"},
		{name: "neighbor-out-of-range", data: AppendList(nil, 5, []uint32{uint32(n)}, nil), want: "out of range"},
	}
	for _, tc := range cases {
		if tc.name == "degree-too-big" {
			// A degree claiming more arcs than vertices exist.
			tc.data = AppendList(nil, 0, nil, nil)
			tc.data[0] = 0xff // degree varint prefix, then truncation
			tc.want = "truncated degree"
		}
		_, err := CheckList(tc.data, 5, n, false)
		if err == nil {
			t.Fatalf("%s: corrupt list accepted", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), "byte ") {
			t.Fatalf("%s: error %q carries no byte offset", tc.name, err)
		}
	}
	// A degree claiming more arcs than the payload could hold is its own
	// rejection class.
	big := binaryAppendDegree(nil, uint64(n)+1)
	if _, err := CheckList(big, 0, n, false); err == nil || !strings.Contains(err.Error(), "degree") {
		t.Fatalf("oversized degree not rejected: %v", err)
	}
}

func binaryAppendDegree(dst []byte, deg uint64) []byte {
	for deg >= 0x80 {
		dst = append(dst, byte(deg)|0x80)
		deg >>= 7
	}
	return append(dst, byte(deg))
}

func TestUvarintAgreesWithSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		x := rng.Uint64() >> uint(rng.Intn(64))
		enc := AppendList(nil, 0, nil, nil) // placeholder, rebuilt below
		enc = binaryAppendDegree(enc[:0], x)
		v, pos := Uvarint(enc, 0)
		if v != x || pos != len(enc) {
			t.Fatalf("Uvarint(%x) = (%d, %d), want (%d, %d)", enc, v, pos, x, len(enc))
		}
	}
}
