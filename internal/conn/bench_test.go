package conn

import (
	"testing"

	"pasgal/internal/gen"
)

func BenchmarkComponentsGrid(b *testing.B) {
	g := gen.Grid2D(300, 300, false, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g)
	}
}

func BenchmarkComponentsRMAT(b *testing.B) {
	g := gen.SocialRMAT(15, 8, false, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(g)
	}
}

func BenchmarkSpanningForest(b *testing.B) {
	g := gen.Grid2D(300, 300, false, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpanningForest(g)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	n := 1 << 18
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uf := NewUnionFind(n)
		for v := 0; v < n-1; v++ {
			uf.Union(uint32(v), uint32(v+1))
		}
	}
}
