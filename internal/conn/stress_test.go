package conn

import (
	"math/rand/v2"
	"sync"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/parallel"
)

// seqDSU is a minimal sequential disjoint-set oracle.
type seqDSU struct{ parent []uint32 }

func newSeqDSU(n int) *seqDSU {
	d := &seqDSU{parent: make([]uint32, n)}
	for i := range d.parent {
		d.parent[i] = uint32(i)
	}
	return d
}

func (d *seqDSU) find(v uint32) uint32 {
	for d.parent[v] != v {
		d.parent[v] = d.parent[d.parent[v]]
		v = d.parent[v]
	}
	return v
}

func (d *seqDSU) union(a, b uint32) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		d.parent[rb] = ra
	}
}

// TestStressUnionFindConcurrent unions a random edge multiset from many
// goroutines — edges deliberately overlap across workers so the same pair
// of roots is contended — and checks the resulting partition against a
// sequential oracle processing the same edges. Under -race this stresses
// the CAS linking in Union and the path-halving writes in Find.
func TestStressUnionFindConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 5; trial++ {
		n := 2000 + rng.IntN(8000)
		m := n + rng.IntN(3*n)
		edges := make([][2]uint32, m)
		for i := range edges {
			edges[i] = [2]uint32{rng.Uint32N(uint32(n)), rng.Uint32N(uint32(n))}
		}

		uf := NewUnionFind(n)
		const workers = 8
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				// Overlapping striding: every edge is processed by two
				// workers, maximizing CAS contention on the same roots.
				for i := w / 2; i < m; i += workers / 2 {
					uf.Union(edges[i][0], edges[i][1])
				}
			}(w)
		}
		wg.Wait()

		oracle := newSeqDSU(n)
		for _, e := range edges {
			oracle.union(e[0], e[1])
		}
		got := make([]uint32, n)
		want := make([]uint32, n)
		for v := 0; v < n; v++ {
			got[v] = uf.Find(uint32(v))
			want[v] = oracle.find(uint32(v))
		}
		if !samePartition(got, want) {
			t.Fatalf("trial %d: concurrent union-find partition differs from sequential oracle", trial)
		}
		// Min-id linking means every root is the minimum of its set; the
		// oracle uses the same convention, so labels must match exactly.
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d: Find(%d) = %d, oracle has %d", trial, v, got[v], want[v])
			}
		}
	}
}

// TestStressComponentsUnderRace runs whole-graph Components (which layers
// parallel.For over the union-find) on random graphs with the worker team
// oversized relative to the machine, checking only internal consistency:
// labels must be a valid partition rooted at component minima.
func TestStressComponentsUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := parallel.SetWorkers(16)
	defer parallel.SetWorkers(old)
	rng := rand.New(rand.NewPCG(3, 5))
	for trial := 0; trial < 4; trial++ {
		n := 1000 + rng.IntN(4000)
		g := gen.ER(n, 2*n, false, uint64(trial)+100)
		labels, count := Components(g)
		want, wantCount := bruteComponents(g)
		if count != wantCount {
			t.Fatalf("trial %d: %d components, oracle has %d", trial, count, wantCount)
		}
		if !samePartition(labels, want) {
			t.Fatalf("trial %d: Components partition differs from BFS oracle", trial)
		}
	}
}
