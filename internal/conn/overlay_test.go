package conn

import (
	"math/rand"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// Functional twins for the overlay edge-scan specialization (epoch
// snapshots from internal/delta): same partition, same canonical labels,
// same forest shape as a plain rebuild of the post-edit graph.

// overlayTwin applies a deterministic random edit batch to the undirected
// base and returns the overlay plus a plain CSR of the same graph.
func overlayTwin(t *testing.T, g *graph.Graph, seed int64) (*graph.Overlay, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var dels, adds []graph.Edge
	for u := uint32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v && rng.Intn(5) == 0 {
				dels = append(dels, graph.Edge{U: u, V: v})
			}
		}
	}
	n := uint32(g.N)
	for i := 0; i < g.N/4; i++ {
		u, v := rng.Uint32()%n, rng.Uint32()%n
		if u == v {
			continue
		}
		adds = append(adds, graph.Edge{U: u, V: v})
	}
	o := graph.OverlayFromEdits(g, dels, adds)
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}
	return o, o.Materialize()
}

// TestOverlayComponentsMatchPlain pins the overlay chunked merge scan:
// deletions split components, patch arcs join them, and the canonical
// min-vertex labels must match a plain rebuild exactly.
func TestOverlayComponentsMatchPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid":  gen.Grid2D(25, 25, false, 3),
		"er":    gen.ER(500, 800, false, 4), // disconnected
		"chain": gen.Chain(400, false),
		"star":  gen.Star(100),
	} {
		o, mat := overlayTwin(t, g, 7)
		wantL, wantN := Components(mat)
		gotL, gotN := Components(o)
		if gotN != wantN {
			t.Fatalf("%s: %d components overlay, %d plain", name, gotN, wantN)
		}
		for v := range wantL {
			if gotL[v] != wantL[v] {
				t.Fatalf("%s: label[%d] = %d overlay, %d plain", name, v, gotL[v], wantL[v])
			}
		}
	}
}

// TestOverlaySpanningForest checks the forest built from the overlay
// scan: right size, acyclic, spanning the same components.
func TestOverlaySpanningForest(t *testing.T) {
	o, mat := overlayTwin(t, gen.ER(600, 900, false, 9), 11)
	_, wantL, wantN := SpanningForest(mat)
	edges, labels, count := SpanningForest(o)
	n := mat.N
	if count != wantN || len(edges) != n-wantN {
		t.Fatalf("forest: %d comps / %d edges, want %d / %d", count, len(edges), wantN, n-wantN)
	}
	uf := NewUnionFind(n)
	for _, e := range edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) closes a cycle", e.U, e.V)
		}
	}
	for v := range labels {
		if labels[v] != wantL[v] {
			t.Fatalf("label[%d] = %d, plain %d", v, labels[v], wantL[v])
		}
	}
}

// TestOverlayDirectedPanics: the directed-graph guard fires for overlay
// snapshots too.
func TestOverlayDirectedPanics(t *testing.T) {
	o := graph.OverlayFromEdits(gen.Chain(10, true), nil, []graph.Edge{{U: 5, V: 2}})
	for name, call := range map[string]func(){
		"components": func() { Components(o) },
		"forest":     func() { SpanningForest(o) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on a directed overlay", name)
				}
			}()
			call()
		}()
	}
}
