package conn

import (
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// TestCompressedComponentsMatchPlain pins the compressed edge-scan
// specialization: the same graph must yield the same component partition
// and count through both representations.
func TestCompressedComponentsMatchPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"grid":     gen.Grid2D(25, 25, false, 3),
		"er":       gen.ER(500, 800, false, 4), // disconnected
		"chain":    gen.Chain(400, false),
		"star":     gen.Star(100),
		"isolated": graph.FromEdges(40, nil, false, graph.BuildOptions{}),
	} {
		c := graph.Compress(g)
		wantL, wantN := Components(g)
		gotL, gotN := Components(c)
		if gotN != wantN {
			t.Fatalf("%s: %d components compressed, %d plain", name, gotN, wantN)
		}
		for v := range wantL {
			if gotL[v] != wantL[v] {
				// Labels are canonical (component minima), so they must be
				// identical, not merely partition-equivalent.
				t.Fatalf("%s: label[%d] = %d compressed, %d plain", name, v, gotL[v], wantL[v])
			}
		}
	}
}

// TestCompressedSpanningForest checks the forest built from the
// compressed scan: right size, acyclic, spanning the same components.
func TestCompressedSpanningForest(t *testing.T) {
	g := gen.ER(600, 900, false, 9)
	c := graph.Compress(g)
	_, wantL, wantN := SpanningForest(g)
	edges, labels, count := SpanningForest(c)
	if count != wantN || len(edges) != g.N-wantN {
		t.Fatalf("forest: %d comps / %d edges, want %d / %d", count, len(edges), wantN, g.N-wantN)
	}
	uf := NewUnionFind(g.N)
	for _, e := range edges {
		if !uf.Union(e.U, e.V) {
			t.Fatalf("forest edge (%d,%d) closes a cycle", e.U, e.V)
		}
	}
	for v := range labels {
		if labels[v] != wantL[v] {
			t.Fatalf("label[%d] = %d, plain %d", v, labels[v], wantL[v])
		}
	}
}

// TestCompressedDirectedPanics: the directed-graph guard fires for the
// compressed representation too.
func TestCompressedDirectedPanics(t *testing.T) {
	c := graph.Compress(gen.Chain(10, true))
	for name, call := range map[string]func(){
		"components": func() { Components(c) },
		"forest":     func() { SpanningForest(c) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on a directed compressed graph", name)
				}
			}()
			call()
		}()
	}
}
