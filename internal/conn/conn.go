// Package conn provides the BFS-free parallel connectivity substrate used
// by FAST-BCC and Tarjan–Vishkin: a lock-free concurrent union–find, whole-
// graph connected components, and spanning forests (a tree edge is recorded
// exactly when its union wins).
package conn

import (
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// UnionFind is a lock-free concurrent disjoint-set structure. Roots are
// linked by id order (larger root under smaller) with CAS, so concurrent
// unions converge without locks; finds compress paths with benign atomic
// writes.
type UnionFind struct {
	parent []atomic.Uint32
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]atomic.Uint32, n)}
	parallel.For(n, 0, func(i int) { uf.parent[i].Store(uint32(i)) })
	return uf
}

// Find returns the current root of v, halving the path along the way.
func (uf *UnionFind) Find(v uint32) uint32 {
	for {
		p := uf.parent[v].Load()
		if p == v {
			return v
		}
		gp := uf.parent[p].Load()
		if gp == p {
			return p
		}
		// Path halving; racing writes only ever re-point to an ancestor.
		uf.parent[v].CompareAndSwap(p, gp)
		v = gp
	}
}

// Union merges the sets of a and b. It returns true iff this call performed
// the merge (the sets were distinct and this CAS won) — the property
// spanning-forest construction relies on.
func (uf *UnionFind) Union(a, b uint32) bool {
	for {
		ra, rb := uf.Find(a), uf.Find(b)
		if ra == rb {
			return false
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		// Link the larger root under the smaller.
		if uf.parent[rb].CompareAndSwap(rb, ra) {
			return true
		}
	}
}

// Connected reports whether a and b are currently in the same set.
func (uf *UnionFind) Connected(a, b uint32) bool {
	for {
		ra, rb := uf.Find(a), uf.Find(b)
		if ra == rb {
			return true
		}
		// Re-check stability: if ra is still a root, the answer is firm.
		if uf.parent[ra].Load() == ra {
			return false
		}
	}
}

// forEachForwardEdge applies visit to every undirected edge {u, v} with
// u < v, fully in parallel. It is the shared edge-scan of Components and
// SpanningForest, specialized per graph representation: the plain loop
// indexes the CSR arrays directly, the compressed loop walks an
// allocation-free decode cursor (see graph.ArcCursor), and the overlay
// loop bulk-merges each patched list into chunk-local scratch.
func forEachForwardEdge(a graph.Adjacency, visit func(u, v uint32)) {
	switch g := a.(type) {
	case *graph.Graph:
		parallel.For(g.N, 64, func(ui int) {
			u := uint32(ui)
			for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
				v := g.Edges[e]
				if u < v { // each undirected edge once
					visit(u, v)
				}
			}
		})
	case *graph.Compressed:
		parallel.For(g.NumVertices(), 64, func(ui int) {
			u := uint32(ui)
			it := g.Arcs(u)
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if u < v {
					visit(u, v)
				}
			}
		})
	case *graph.Overlay:
		// Chunked so the merge scratch is allocated per chunk, not per
		// vertex (the grain-64 For closure above would).
		parallel.ForRange(g.NumVertices(), 64, func(lo, hi int) {
			nbuf := make([]uint32, 0, 256)
			for ui := lo; ui < hi; ui++ {
				u := uint32(ui)
				nbuf = g.AppendNeighbors(u, nbuf[:0])
				for _, v := range nbuf {
					if u < v {
						visit(u, v)
					}
				}
			}
		})
	}
}

// Components returns, for every vertex of g, the minimum vertex id of its
// connected component (a canonical labeling) together with the component
// count. Edges are processed fully in parallel; no BFS, no rounds — the
// point of the FAST-BCC design. Both graph representations are accepted.
func Components(a graph.Adjacency) ([]uint32, int) {
	if a.IsDirected() {
		panic("conn: Components requires an undirected graph")
	}
	n := a.NumVertices()
	uf := NewUnionFind(n)
	forEachForwardEdge(a, func(u, v uint32) { uf.Union(u, v) })
	labels := make([]uint32, n)
	parallel.For(n, 0, func(i int) { labels[i] = uf.Find(uint32(i)) })
	// Roots are minima because unions always link larger roots under
	// smaller ones.
	count := parallel.Count(n, func(i int) bool { return labels[i] == uint32(i) })
	return labels, count
}

// SpanningForest returns a spanning forest of g as a list of tree edges
// (n - #components of them) plus the component labeling. Which forest is
// produced depends on the parallel schedule; all are valid. Both graph
// representations are accepted.
func SpanningForest(a graph.Adjacency) ([]graph.Edge, []uint32, int) {
	if a.IsDirected() {
		panic("conn: SpanningForest requires an undirected graph")
	}
	n := a.NumVertices()
	uf := NewUnionFind(n)
	treeEdges := make([]graph.Edge, n) // at most n-1 used
	var cursor atomic.Int64
	forEachForwardEdge(a, func(u, v uint32) {
		if uf.Union(u, v) {
			at := cursor.Add(1) - 1
			treeEdges[at] = graph.Edge{U: u, V: v}
		}
	})
	labels := make([]uint32, n)
	parallel.For(n, 0, func(i int) { labels[i] = uf.Find(uint32(i)) })
	count := parallel.Count(n, func(i int) bool { return labels[i] == uint32(i) })
	return treeEdges[:cursor.Load()], labels, count
}
