package conn

import (
	"math/rand/v2"
	"sync"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// bruteComponents labels components by BFS (oracle).
func bruteComponents(g *graph.Graph) ([]uint32, int) {
	labels := make([]uint32, g.N)
	for i := range labels {
		labels[i] = graph.None
	}
	count := 0
	for s := 0; s < g.N; s++ {
		if labels[s] != graph.None {
			continue
		}
		count++
		stack := []uint32{uint32(s)}
		labels[s] = uint32(s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if labels[v] == graph.None {
					labels[v] = uint32(s)
					stack = append(stack, v)
				}
			}
		}
	}
	return labels, count
}

func samePartition(a, b []uint32) bool {
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Connected(0, 1) {
		t.Fatal("fresh sets connected")
	}
	if !uf.Union(0, 1) || uf.Union(1, 0) {
		t.Fatal("union return values wrong")
	}
	if !uf.Connected(0, 1) {
		t.Fatal("union did not connect")
	}
	uf.Union(2, 3)
	uf.Union(1, 3)
	for _, v := range []uint32{0, 1, 2, 3} {
		if uf.Find(v) != 0 {
			t.Fatalf("Find(%d) = %d, want 0 (min-id root)", v, uf.Find(v))
		}
	}
	if uf.Connected(0, 4) {
		t.Fatal("spurious connection")
	}
}

func TestUnionFindConcurrent(t *testing.T) {
	// A chain union'd concurrently from many goroutines must collapse to
	// one set rooted at 0.
	n := 50000
	uf := NewUnionFind(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n-1; i += 8 {
				uf.Union(uint32(i), uint32(i+1))
			}
		}(w)
	}
	wg.Wait()
	for v := 0; v < n; v += 997 {
		if uf.Find(uint32(v)) != 0 {
			t.Fatalf("Find(%d) = %d", v, uf.Find(uint32(v)))
		}
	}
}

func TestComponentsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(400)
		g := gen.ER(n, rng.IntN(2*n+1), false, uint64(trial))
		got, gotCount := Components(g)
		want, wantCount := bruteComponents(g)
		if gotCount != wantCount {
			t.Fatalf("trial %d: count %d, want %d", trial, gotCount, wantCount)
		}
		if !samePartition(got, want) {
			t.Fatalf("trial %d: partitions differ", trial)
		}
		// Labels are component minima.
		for v := 0; v < n; v++ {
			if got[v] > uint32(v) {
				t.Fatalf("trial %d: label[%d]=%d not a minimum", trial, v, got[v])
			}
		}
	}
}

func TestSpanningForest(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(300)
		g := gen.ER(n, rng.IntN(3*n+1), false, uint64(100+trial))
		tree, labels, count := SpanningForest(g)
		if len(tree) != n-count {
			t.Fatalf("trial %d: %d tree edges, want %d", trial, len(tree), n-count)
		}
		// Every tree edge is a real edge connecting same-component
		// vertices.
		for _, e := range tree {
			if g.FindArc(e.U, e.V) == ^uint64(0) {
				t.Fatalf("trial %d: tree edge (%d,%d) not in graph", trial, e.U, e.V)
			}
			if labels[e.U] != labels[e.V] {
				t.Fatalf("trial %d: tree edge across components", trial)
			}
		}
		// The forest alone must reproduce the same components (i.e. it
		// spans): run brute components on the forest-only graph.
		fg := graph.FromEdges(n, tree, false, graph.BuildOptions{})
		fl, fc := bruteComponents(fg)
		if fc != count {
			t.Fatalf("trial %d: forest has %d components, graph has %d", trial, fc, count)
		}
		if !samePartition(fl, labels) {
			t.Fatalf("trial %d: forest spans different partition", trial)
		}
		// Acyclicity is implied by |E| = n - count with equal components.
	}
}

func TestComponentsLargeGrid(t *testing.T) {
	g := gen.Grid2D(100, 100, false, 1)
	labels, count := Components(g)
	if count != 1 {
		t.Fatalf("grid components = %d", count)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("grid label not 0")
		}
	}
}
