package gen

import (
	"testing"

	"pasgal/internal/graph"
)

func TestWattsStrogatz(t *testing.T) {
	// beta = 0: pure ring lattice, diameter ~ n/(2k).
	g := WattsStrogatz(1000, 2, 0, 1)
	validate(t, g, "ws0")
	if g.UndirectedM() != 2000 {
		t.Fatalf("ws M = %d", g.UndirectedM())
	}
	d0 := graph.EstimateDiameter(g, 2, 1)
	if d0 < 200 {
		t.Fatalf("ring lattice diameter %d, want ~250", d0)
	}
	// Small beta: small world; diameter collapses.
	gs := WattsStrogatz(1000, 2, 0.1, 2)
	validate(t, gs, "ws0.1")
	ds := graph.EstimateDiameter(gs, 2, 1)
	if ds*5 >= d0 {
		t.Fatalf("rewiring did not shrink diameter: %d vs %d", ds, d0)
	}
	// Invalid parameters panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WattsStrogatz(10, 5, 0, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(5000, 3, 7)
	validate(t, g, "ba")
	if g.N != 5000 {
		t.Fatalf("N = %d", g.N)
	}
	// Heavy-tailed: max degree far above average.
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("BA skew too small: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Low diameter.
	if d := graph.EstimateDiameter(g, 2, 1); d > 12 {
		t.Fatalf("BA diameter = %d", d)
	}
	// Deterministic.
	if BarabasiAlbert(5000, 3, 7).M() != g.M() {
		t.Fatal("not deterministic")
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(5, 6, 7)
	validate(t, g, "grid3d")
	if g.N != 210 {
		t.Fatalf("N = %d", g.N)
	}
	want := 4*6*7 + 5*5*7 + 5*6*6
	if g.UndirectedM() != want {
		t.Fatalf("M = %d, want %d", g.UndirectedM(), want)
	}
	if d := graph.EstimateDiameter(g, 3, 1); d != 4+5+6 {
		t.Fatalf("3d grid diameter %d, want 15", d)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(8)
	validate(t, g, "hypercube")
	if g.N != 256 || g.UndirectedM() != 256*8/2 {
		t.Fatalf("hypercube shape n=%d m=%d", g.N, g.UndirectedM())
	}
	for v := uint32(0); v < 256; v++ {
		if g.Degree(v) != 8 {
			t.Fatalf("degree[%d] = %d", v, g.Degree(v))
		}
	}
	if d := graph.EstimateDiameter(g, 3, 1); d != 8 {
		t.Fatalf("hypercube diameter %d, want 8", d)
	}
}

func TestTree(t *testing.T) {
	g := Tree(2000, 5)
	validate(t, g, "tree")
	if g.UndirectedM() != 1999 {
		t.Fatalf("tree M = %d", g.UndirectedM())
	}
	// Acyclic and connected: m = n-1 with one component is enough.
	if d := graph.EstimateDiameter(g, 3, 1); d < 5 || d > 200 {
		t.Fatalf("random recursive tree diameter %d", d)
	}
}
