package gen

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// Chain returns the path graph 0-1-...-n-1 (directed: i -> i+1). The
// adversarial worst case for frontier-based algorithms discussed in §3 of
// the paper ("may still be unable to eliminate the issue on adversarial
// graphs (e.g., a chain)").
func Chain(n int, directed bool) *graph.Graph {
	edges := parallel.Tabulate(max(n-1, 0), func(i int) graph.Edge {
		return graph.Edge{U: uint32(i), V: uint32(i + 1)}
	})
	return graph.FromEdges(n, edges, directed, graph.BuildOptions{})
}

// Cycle returns the n-cycle.
func Cycle(n int, directed bool) *graph.Graph {
	edges := parallel.Tabulate(n, func(i int) graph.Edge {
		return graph.Edge{U: uint32(i), V: uint32((i + 1) % n)}
	})
	return graph.FromEdges(n, edges, directed, graph.BuildOptions{})
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	edges := parallel.Tabulate(max(n-1, 0), func(i int) graph.Edge {
		return graph.Edge{U: 0, V: uint32(i + 1)}
	})
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// CompleteBinaryTree returns the complete binary tree on n vertices
// (children of i are 2i+1 and 2i+2).
func CompleteBinaryTree(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: uint32((i - 1) / 2), V: uint32(i)})
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// ER returns an Erdős–Rényi-style G(n, m) multigraph sample (m edge slots
// drawn uniformly; self loops and duplicates are removed by the builder, so
// the realized edge count is slightly below m).
func ER(n, m int, directed bool, seed uint64) *graph.Graph {
	edges := parallel.Tabulate(m, func(i int) graph.Edge {
		return graph.Edge{
			U: uint32(rnd(seed, uint64(i), 0) % uint64(n)),
			V: uint32(rnd(seed, uint64(i), 1) % uint64(n)),
		}
	})
	return graph.FromEdges(n, edges, directed, graph.BuildOptions{})
}
