package gen

import (
	"slices"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// HashCSR synthesizes a directed d-regular multigraph straight into CSR
// arrays — no edge list, no sort/dedup pipeline — so graphs far past the
// FromEdges working-set budget (the 2^26–2^28-arc storage smoke tests)
// build in one pass over the output. Every vertex's first arc is the ring
// successor (v+1 mod n), making the graph strongly connected so a BFS
// from any source reaches all n vertices; the remaining d-1 arcs are
// hashed uniformly from (seed, v, j). Per-vertex lists are sorted, as the
// compressed representation requires; self loops and duplicates are kept
// (the codec encodes them as zero gaps).
func HashCSR(n, d int, seed uint64) *graph.Graph {
	if n < 1 || d < 1 {
		panic("gen: HashCSR needs n >= 1 and d >= 1")
	}
	offs := make([]uint64, n+1)
	parallel.For(n+1, 1<<12, func(v int) { offs[v] = uint64(v) * uint64(d) })
	edges := make([]uint32, n*d)
	parallel.For(n, 1<<8, func(vi int) {
		lst := edges[vi*d : (vi+1)*d]
		lst[0] = uint32((vi + 1) % n)
		for j := 1; j < d; j++ {
			lst[j] = uint32(rnd(seed, uint64(vi), uint64(j)) % uint64(n))
		}
		slices.Sort(lst)
	})
	return &graph.Graph{N: n, Offsets: offs, Edges: edges, Directed: true}
}
