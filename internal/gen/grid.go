package gen

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// Grid2D returns the rows x cols grid graph — the paper's REC input
// (a 10^3 x 10^5 grid) at configurable scale. Diameter = rows+cols-2.
// Directed grids orient each edge both ways except a deterministic fraction,
// matching REC's m' < m; for simplicity directed=true keeps both directions
// for a random 75% of edges and one direction otherwise.
func Grid2D(rows, cols int, directed bool, seed uint64) *graph.Graph {
	n := rows * cols
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []graph.Edge
	horiz := rows * max(cols-1, 0)
	vert := max(rows-1, 0) * cols
	edges = make([]graph.Edge, horiz+vert)
	parallel.For(horiz, 0, func(i int) {
		r := i / max(cols-1, 1)
		c := i % max(cols-1, 1)
		edges[i] = graph.Edge{U: id(r, c), V: id(r, c+1)}
	})
	parallel.For(vert, 0, func(i int) {
		r := i / cols
		c := i % cols
		edges[horiz+i] = graph.Edge{U: id(r, c), V: id(r+1, c)}
	})
	if !directed {
		return graph.FromEdges(n, edges, false, graph.BuildOptions{})
	}
	// Directed variant: each undirected edge yields both arcs with
	// probability 3/4, else a single arc in a random direction.
	arcs := make([]graph.Edge, 0, 2*len(edges))
	for i, e := range edges {
		r := rnd(seed, uint64(i), 99)
		switch {
		case r%4 != 0:
			arcs = append(arcs, e, graph.Edge{U: e.V, V: e.U})
		case r%8 == 0:
			arcs = append(arcs, e)
		default:
			arcs = append(arcs, graph.Edge{U: e.V, V: e.U})
		}
	}
	return graph.FromEdges(n, arcs, true, graph.BuildOptions{})
}

// SampledGrid returns a grid with each edge kept independently with
// probability keepProb — the paper's SREC ("sampled REC"). Sampling pushes
// the diameter even higher than the full grid's.
func SampledGrid(rows, cols int, keepProb float64, directed bool, seed uint64) *graph.Graph {
	full := Grid2D(rows, cols, false, seed)
	n := full.N
	var kept []graph.Edge
	for u := uint32(0); u < uint32(n); u++ {
		for e := full.Offsets[u]; e < full.Offsets[u+1]; e++ {
			v := full.Edges[e]
			if v < u {
				continue // canonical direction only
			}
			if rndFloat(seed, uint64(u), uint64(v)) < keepProb {
				kept = append(kept, graph.Edge{U: u, V: v})
			}
		}
	}
	if directed {
		arcs := make([]graph.Edge, 0, 2*len(kept))
		for i, e := range kept {
			r := rnd(seed+1, uint64(i), 7)
			switch {
			case r%4 != 0:
				arcs = append(arcs, e, graph.Edge{U: e.V, V: e.U})
			case r%8 == 0:
				arcs = append(arcs, e)
			default:
				arcs = append(arcs, graph.Edge{U: e.V, V: e.U})
			}
		}
		return graph.FromEdges(n, arcs, true, graph.BuildOptions{})
	}
	return graph.FromEdges(n, kept, false, graph.BuildOptions{})
}

// TriGrid returns a triangulated grid (grid plus one diagonal per cell) —
// the analogue of the "huge traces" (TRCE) planar mesh: planar,
// degree-bounded, diameter Θ(rows+cols).
func TriGrid(rows, cols int) *graph.Graph {
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges, false, graph.BuildOptions{})
}

// PerforatedGrid returns a grid graph with square holes punched out on a
// coarse lattice — the analogue of the "huge bubbles" (BBL) mesh: a planar
// mesh whose holes force traversals around obstacles, inflating the
// diameter beyond the plain grid's.
func PerforatedGrid(rows, cols, holePeriod, holeSize int, seed uint64) *graph.Graph {
	if holePeriod <= holeSize {
		panic("gen: holePeriod must exceed holeSize")
	}
	inHole := func(r, c int) bool {
		hr, hc := r%holePeriod, c%holePeriod
		if hr >= holePeriod-holeSize || hc >= holePeriod-holeSize {
			return false
		}
		// Offset each hole block pseudo-randomly so holes are irregular.
		br, bc := r/holePeriod, c/holePeriod
		off := int(rnd(seed, uint64(br), uint64(bc)) % uint64(holePeriod-holeSize))
		return hr >= off && hr < off+holeSize && hc >= off && hc < off+holeSize
	}
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if inHole(r, c) {
				continue
			}
			if c+1 < cols && !inHole(r, c+1) {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows && !inHole(r+1, c) {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges, false, graph.BuildOptions{})
}
