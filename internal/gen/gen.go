// Package gen provides deterministic, seeded graph generators. They stand
// in for the 22 public datasets the paper evaluates (social, web, road,
// k-NN, and synthetic graphs up to 226B edges), which are not available in
// this environment: each generator reproduces the structural property the
// paper keys on — primarily the diameter class and the degree profile — at
// a configurable scale. See DESIGN.md §3 for the mapping.
//
// All generators are deterministic functions of their parameters and seed:
// randomness is derived by hashing (seed, index), so results are identical
// regardless of the parallel schedule.
package gen

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// hash64 is the splitmix64 finalizer used for index-addressable randomness.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rnd returns a uniform uint64 for (seed, i, j).
func rnd(seed, i, j uint64) uint64 {
	return hash64(seed ^ hash64(i+0x632be59bd9b4e019) ^ hash64(j+0xd1b54a32d192ed03))
}

// rndFloat returns a uniform float64 in [0,1) for (seed, i, j).
func rndFloat(seed, i, j uint64) float64 {
	return float64(rnd(seed, i, j)>>11) / float64(1<<53)
}

// AddUniformWeights returns a copy of g with uniform integer weights in
// [lo, hi] assigned deterministically per arc; both arcs of an undirected
// edge receive the same weight.
func AddUniformWeights(g *graph.Graph, lo, hi uint32, seed uint64) *graph.Graph {
	if hi < lo {
		panic("gen: AddUniformWeights with hi < lo")
	}
	span := uint64(hi-lo) + 1
	w := make([]uint32, len(g.Edges))
	parallel.For(g.N, 64, func(ui int) {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			v := g.Edges[e]
			// Key on the unordered pair so both arcs agree.
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			w[e] = lo + uint32(rnd(seed, uint64(a), uint64(b))%span)
		}
	})
	return &graph.Graph{
		N: g.N, Offsets: g.Offsets, Edges: g.Edges,
		Weights: w, Directed: g.Directed,
	}
}
