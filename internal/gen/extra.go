package gen

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// WattsStrogatz returns a small-world ring lattice: n vertices each linked
// to their k nearest ring neighbors, with each edge's far endpoint rewired
// to a random vertex with probability beta. beta = 0 is a large-diameter
// ring lattice; small beta > 0 collapses the diameter to O(log n) while
// keeping local clustering — a useful diameter-class dial for ablations.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k < 1 || k >= n/2 {
		panic("gen: WattsStrogatz requires 1 <= k < n/2")
	}
	edges := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if rndFloat(seed, uint64(v), uint64(j)) < beta {
				// Rewire: pick a random endpoint distinct from v.
				w = int(rnd(seed+1, uint64(v), uint64(j)) % uint64(n))
				if w == v {
					w = (w + 1) % n
				}
			}
			edges = append(edges, graph.Edge{U: uint32(v), V: uint32(w)})
		}
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches m edges to earlier vertices chosen proportionally to their
// degree (implemented by sampling uniform positions of the running
// endpoint list, the standard trick). Power-law degrees, low diameter.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 || n <= m {
		panic("gen: BarabasiAlbert requires 1 <= m < n")
	}
	// endpoint list: every edge contributes both endpoints, so sampling a
	// uniform element is degree-proportional sampling.
	targets := make([]uint32, 0, 2*n*m)
	edges := make([]graph.Edge, 0, n*m)
	// Seed clique-ish core: vertex i in [0, m] links to all previous.
	for v := 1; v <= m; v++ {
		for w := 0; w < v; w++ {
			edges = append(edges, graph.Edge{U: uint32(v), V: uint32(w)})
			targets = append(targets, uint32(v), uint32(w))
		}
	}
	for v := m + 1; v < n; v++ {
		for j := 0; j < m; j++ {
			w := targets[rnd(seed, uint64(v), uint64(j))%uint64(len(targets))]
			edges = append(edges, graph.Edge{U: uint32(v), V: w})
			targets = append(targets, uint32(v), w)
		}
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// Grid3D returns the x*y*z three-dimensional grid graph — a mid-diameter
// mesh (Θ(n^(1/3)) rather than the 2-D grid's Θ(n^(1/2))).
func Grid3D(x, y, z int) *graph.Graph {
	n := x * y * z
	id := func(i, j, k int) uint32 { return uint32((i*y+j)*z + k) }
	var edges []graph.Edge
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i+1, j, k)})
				}
				if j+1 < y {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j+1, k)})
				}
				if k+1 < z {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j, k+1)})
				}
			}
		}
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// Hypercube returns the dim-dimensional hypercube graph on 2^dim vertices:
// log-diameter, uniform degree dim — the classic low-diameter sparse
// topology.
func Hypercube(dim int) *graph.Graph {
	n := 1 << dim
	edges := make([]graph.Edge, 0, n*dim/2)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			w := v ^ (1 << b)
			if v < w {
				edges = append(edges, graph.Edge{U: uint32(v), V: uint32(w)})
			}
		}
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// Tree returns a random recursive tree on n vertices (each vertex attaches
// to a uniform earlier vertex) with shuffled labels — O(log n) expected
// diameter but no cycles at all, the extreme sparse case.
func Tree(n int, seed uint64) *graph.Graph {
	perm := parallel.RandomPermutation(n, seed^0x5bf03635)
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := int(rnd(seed, uint64(v), 0) % uint64(v))
		edges = append(edges, graph.Edge{U: perm[u], V: perm[v]})
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}
