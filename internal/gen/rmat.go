package gen

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// RMAT samples n = 2^scale vertices and edgeFactor*n edges from the
// recursive-matrix distribution with quadrant probabilities (a,b,c,
// 1-a-b-c), with per-level noise. With the classic (0.57,0.19,0.19)
// parameters it produces the skewed-degree, small-diameter graphs that
// stand in for the paper's social networks (LJ, OK, TW, FS, FB).
// Vertex ids are scrambled by a fixed permutation so locality artifacts of
// the quadrant recursion do not leak into CSR layout.
func RMAT(scale int, edgeFactor int, a, b, c float64, directed bool, seed uint64) *graph.Graph {
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]graph.Edge, m)
	parallel.For(m, 0, func(i int) {
		var u, v uint64
		for lvl := 0; lvl < scale; lvl++ {
			// Noise keeps repeated quadrants from collapsing onto v0.
			r := rndFloat(seed, uint64(i), uint64(lvl))
			noise := 0.9 + 0.2*rndFloat(seed+1, uint64(i), uint64(lvl))
			aa := a * noise
			bb := b * (2 - noise)
			cc := c * (2 - noise)
			u <<= 1
			v <<= 1
			switch {
			case r < aa:
				// quadrant (0,0)
			case r < aa+bb:
				v |= 1
			case r < aa+bb+cc:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		// Scramble ids.
		u = hash64(u^seed) % uint64(n)
		v = hash64(v^(seed+17)) % uint64(n)
		edges[i] = graph.Edge{U: uint32(u), V: uint32(v)}
	})
	return graph.FromEdges(n, edges, directed, graph.BuildOptions{})
}

// SocialRMAT is RMAT with the Graph500 parameters — the social-network
// analogue used for LJ/OK/TW/FS/FB.
func SocialRMAT(scale, edgeFactor int, directed bool, seed uint64) *graph.Graph {
	return RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, directed, seed)
}

// WebLike models the bow-tie structure of web crawls (WK, SD, CW, HL14,
// HL12): a dense RMAT core plus long directed "tendril" paths hanging off
// random core pages. The tendrils raise the diameter to the hundreds (as in
// CW/HL14) or thousands (HL12) while the core stays power-law — exactly the
// regime where level-synchronous systems start paying Θ(D) synchronizations.
//
// n is the total vertex count; tendrilFrac the fraction of vertices living
// in tendrils; tendrilLen the length of each tendril path.
func WebLike(n int, edgeFactor int, tendrilFrac float64, tendrilLen int, seed uint64) *graph.Graph {
	if tendrilLen < 1 {
		tendrilLen = 1
	}
	tn := int(float64(n) * tendrilFrac)
	tn -= tn % tendrilLen // whole tendrils only
	coreN := n - tn
	scale := 0
	for 1<<scale < coreN {
		scale++
	}
	coreM := edgeFactor * coreN
	numTendrils := tn / tendrilLen

	edges := make([]graph.Edge, 0, coreM+tn+numTendrils)
	// Core: RMAT sampled directly into [0, coreN).
	core := make([]graph.Edge, coreM)
	parallel.For(coreM, 0, func(i int) {
		var u, v uint64
		for lvl := 0; lvl < scale; lvl++ {
			r := rndFloat(seed, uint64(i), uint64(lvl))
			u <<= 1
			v <<= 1
			switch {
			case r < 0.57:
			case r < 0.76:
				v |= 1
			case r < 0.95:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		u = hash64(u^seed) % uint64(coreN)
		v = hash64(v^(seed+17)) % uint64(coreN)
		core[i] = graph.Edge{U: uint32(u), V: uint32(v)}
	})
	edges = append(edges, core...)
	// Tendrils: path t attached to a random core vertex; orientation of
	// the whole tendril is random (in-tendril vs out-tendril, as in the
	// web bow-tie).
	for t := 0; t < numTendrils; t++ {
		anchor := uint32(rnd(seed, uint64(t), 3) % uint64(coreN))
		base := uint32(coreN + t*tendrilLen)
		outward := rnd(seed, uint64(t), 4)&1 == 0
		prev := anchor
		for k := 0; k < tendrilLen; k++ {
			cur := base + uint32(k)
			if outward {
				edges = append(edges, graph.Edge{U: prev, V: cur})
			} else {
				edges = append(edges, graph.Edge{U: cur, V: prev})
			}
			prev = cur
		}
		// Occasionally close the tendril back into the core so directed
		// reachability (and SCC structure) crosses tendrils too.
		if rnd(seed, uint64(t), 5)%4 == 0 {
			back := uint32(rnd(seed, uint64(t), 6) % uint64(coreN))
			if outward {
				edges = append(edges, graph.Edge{U: prev, V: back})
			} else {
				edges = append(edges, graph.Edge{U: back, V: prev})
			}
		}
	}
	return graph.FromEdges(n, edges, true, graph.BuildOptions{})
}
