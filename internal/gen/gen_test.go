package gen

import (
	"testing"

	"pasgal/internal/graph"
)

func validate(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !g.Directed && !g.IsSymmetric() {
		t.Fatalf("%s: undirected graph is not symmetric", name)
	}
}

func TestChain(t *testing.T) {
	g := Chain(100, false)
	validate(t, g, "chain")
	if g.UndirectedM() != 99 {
		t.Fatalf("M = %d", g.UndirectedM())
	}
	if d := graph.EstimateDiameter(g, 2, 1); d != 99 {
		t.Fatalf("diameter = %d, want 99", d)
	}
	dg := Chain(100, true)
	validate(t, dg, "directed chain")
	if dg.M() != 99 {
		t.Fatalf("directed M = %d", dg.M())
	}
}

func TestCycleStarTree(t *testing.T) {
	c := Cycle(50, true)
	validate(t, c, "cycle")
	if c.M() != 50 {
		t.Fatalf("cycle M = %d", c.M())
	}
	s := Star(10)
	validate(t, s, "star")
	if s.Degree(0) != 9 {
		t.Fatalf("star center degree = %d", s.Degree(0))
	}
	b := CompleteBinaryTree(31)
	validate(t, b, "tree")
	if b.UndirectedM() != 30 {
		t.Fatalf("tree M = %d", b.UndirectedM())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(10, 20, false, 1)
	validate(t, g, "grid")
	if g.N != 200 {
		t.Fatalf("N = %d", g.N)
	}
	// 10*19 + 9*20 = 370 undirected edges.
	if g.UndirectedM() != 370 {
		t.Fatalf("M = %d, want 370", g.UndirectedM())
	}
	if d := graph.EstimateDiameter(g, 3, 1); d != 28 {
		t.Fatalf("grid diameter = %d, want 28", d)
	}
	dg := Grid2D(10, 20, true, 1)
	validate(t, dg, "directed grid")
	if dg.M() <= 370 || dg.M() > 740 {
		t.Fatalf("directed grid arcs = %d", dg.M())
	}
}

func TestSampledGrid(t *testing.T) {
	g := SampledGrid(30, 30, 0.7, false, 2)
	validate(t, g, "sampled grid")
	full := 30 * 29 * 2
	if g.UndirectedM() >= full || g.UndirectedM() < full/3 {
		t.Fatalf("sampled M = %d (full %d)", g.UndirectedM(), full)
	}
	// Determinism.
	g2 := SampledGrid(30, 30, 0.7, false, 2)
	if g2.UndirectedM() != g.UndirectedM() {
		t.Fatal("sampled grid not deterministic")
	}
	d := SampledGrid(20, 20, 0.8, true, 3)
	validate(t, d, "sampled grid directed")
}

func TestTriAndPerforatedGrid(t *testing.T) {
	tg := TriGrid(12, 12)
	validate(t, tg, "trigrid")
	// grid edges + diagonals = 12*11*2 + 11*11
	if tg.UndirectedM() != 12*11*2+11*11 {
		t.Fatalf("trigrid M = %d", tg.UndirectedM())
	}
	pg := PerforatedGrid(40, 40, 8, 3, 5)
	validate(t, pg, "perforated")
	if pg.UndirectedM() >= 40*39*2 {
		t.Fatal("perforated grid lost no edges")
	}
}

func TestRMAT(t *testing.T) {
	g := SocialRMAT(12, 8, true, 42)
	validate(t, g, "rmat")
	if g.N != 4096 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() < 4096*4 { // dedup removes some, but most survive
		t.Fatalf("M = %d, too few edges", g.M())
	}
	// Power-law-ish: max degree far above average.
	if float64(g.MaxDegree()) < 4*g.AvgDegree() {
		t.Fatalf("degree skew too small: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Small diameter on the symmetrized graph.
	if d := graph.EstimateDiameter(g.Symmetrized(), 2, 1); d > 15 {
		t.Fatalf("rmat diameter = %d, want small", d)
	}
	// Determinism.
	g2 := SocialRMAT(12, 8, true, 42)
	if g2.M() != g.M() {
		t.Fatal("rmat not deterministic")
	}
	if SocialRMAT(12, 8, true, 43).M() == g.M() && false {
		t.Fatal("unreachable")
	}
}

func TestWebLike(t *testing.T) {
	g := WebLike(20000, 8, 0.3, 200, 7)
	validate(t, g, "weblike")
	if !g.Directed {
		t.Fatal("weblike should be directed")
	}
	if g.N != 20000 {
		t.Fatalf("N = %d", g.N)
	}
	// Diameter of the symmetrized graph should be in the hundreds thanks
	// to the tendrils.
	d := graph.EstimateDiameter(g.Symmetrized(), 3, 1)
	if d < 100 {
		t.Fatalf("weblike diameter = %d, want >= 100", d)
	}
}

func TestRGG(t *testing.T) {
	// Average degree 6 is above the 2-D continuum percolation threshold
	// (~4.5), so a giant component with Θ(sqrt n) diameter exists.
	g := RGG(5000, 6.0, 11)
	validate(t, g, "rgg")
	avg := g.AvgDegree()
	if avg < 4 || avg > 8 {
		t.Fatalf("rgg avg degree = %.2f, want ~6", avg)
	}
	// Large diameter: Θ(sqrt(n)/r-ish); just require clearly super-log.
	if d := graph.EstimateDiameter(g, 3, 1); d < 20 {
		t.Fatalf("rgg diameter = %d, want large", d)
	}
}

func TestKNN(t *testing.T) {
	g := KNN(3000, 5, 16, false, 13)
	validate(t, g, "knn")
	if g.N != 3000 {
		t.Fatalf("N = %d", g.N)
	}
	avg := g.AvgDegree()
	if avg < 5 || avg > 12 {
		t.Fatalf("knn avg degree = %.2f, want in [5,12]", avg)
	}
	dg := KNN(1000, 5, 8, true, 13)
	validate(t, dg, "knn directed")
	// Every vertex has out-degree exactly k in the directed k-NN graph.
	for v := uint32(0); v < uint32(dg.N); v++ {
		if dg.Degree(v) != 5 {
			t.Fatalf("vertex %d out-degree %d, want 5", v, dg.Degree(v))
		}
	}
}

func TestER(t *testing.T) {
	g := ER(1000, 5000, true, 99)
	validate(t, g, "er")
	if g.M() < 4000 || g.M() > 5000 {
		t.Fatalf("er M = %d", g.M())
	}
}

func TestAddUniformWeights(t *testing.T) {
	g := Grid2D(10, 10, false, 1)
	w := AddUniformWeights(g, 1, 100, 5)
	if !w.Weighted() {
		t.Fatal("not weighted")
	}
	for u := uint32(0); u < uint32(w.N); u++ {
		for e := w.Offsets[u]; e < w.Offsets[u+1]; e++ {
			wt := w.Weights[e]
			if wt < 1 || wt > 100 {
				t.Fatalf("weight %d out of range", wt)
			}
			// Both arcs of an undirected edge share the weight.
			r := w.ReverseArc(u, e)
			if w.Weights[r] != wt {
				t.Fatal("asymmetric weights on undirected edge")
			}
		}
	}
	// Determinism.
	w2 := AddUniformWeights(g, 1, 100, 5)
	for i := range w.Weights {
		if w.Weights[i] != w2.Weights[i] {
			t.Fatal("weights not deterministic")
		}
	}
}
