package gen

import (
	"math"
	"sort"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// point is a 2-D point in the unit square.
type point struct{ x, y float64 }

// cellIndex buckets points into a sqrt-decomposition grid of cell width w.
type cellIndex struct {
	w     float64
	cols  int
	start []int32 // CSR over cells
	ids   []int32 // point ids grouped by cell
	pts   []point
}

func buildCellIndex(pts []point, w float64) *cellIndex {
	cols := int(1/w) + 1
	nc := cols * cols
	ci := &cellIndex{w: w, cols: cols, pts: pts}
	count := make([]int32, nc+1)
	cell := func(p point) int {
		cx := int(p.x / w)
		cy := int(p.y / w)
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= cols {
			cy = cols - 1
		}
		return cy*cols + cx
	}
	for _, p := range pts {
		count[cell(p)+1]++
	}
	for i := 1; i <= nc; i++ {
		count[i] += count[i-1]
	}
	ci.start = count
	ci.ids = make([]int32, len(pts))
	cursor := make([]int32, nc)
	copy(cursor, count[:nc])
	for i, p := range pts {
		c := cell(p)
		ci.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	return ci
}

// forNeighborhood calls f for every point id in the (2r+1)x(2r+1) cell
// neighborhood of p.
func (ci *cellIndex) forNeighborhood(p point, r int, f func(id int32)) {
	cx := int(p.x / ci.w)
	cy := int(p.y / ci.w)
	for dy := -r; dy <= r; dy++ {
		yy := cy + dy
		if yy < 0 || yy >= ci.cols {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			xx := cx + dx
			if xx < 0 || xx >= ci.cols {
				continue
			}
			c := yy*ci.cols + xx
			for k := ci.start[c]; k < ci.start[c+1]; k++ {
				f(ci.ids[k])
			}
		}
	}
}

func dist2(a, b point) float64 {
	dx, dy := a.x-b.x, a.y-b.y
	return dx*dx + dy*dy
}

// uniformPoints returns n deterministic uniform points in the unit square.
func uniformPoints(n int, seed uint64) []point {
	return parallel.Tabulate(n, func(i int) point {
		return point{rndFloat(seed, uint64(i), 0), rndFloat(seed, uint64(i), 1)}
	})
}

// clusteredPoints returns n points drawn around k cluster centers with the
// given Gaussian-ish spread — the distribution shape of the paper's k-NN
// inputs (Chem sensor readings, GeoLife GPS traces, Cosmo simulation
// particles are all heavily clustered).
func clusteredPoints(n, k int, spread float64, seed uint64) []point {
	centers := uniformPoints(k, seed^0xabcdef)
	return parallel.Tabulate(n, func(i int) point {
		c := centers[int(rnd(seed, uint64(i), 2)%uint64(k))]
		// Box-Muller-lite: sum of uniforms approximates a Gaussian.
		gx := (rndFloat(seed, uint64(i), 3) + rndFloat(seed, uint64(i), 4) +
			rndFloat(seed, uint64(i), 5) - 1.5) * spread
		gy := (rndFloat(seed, uint64(i), 6) + rndFloat(seed, uint64(i), 7) +
			rndFloat(seed, uint64(i), 8) - 1.5) * spread
		return point{clamp01(c.x + gx), clamp01(c.y + gy)}
	})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RGG returns a random geometric graph: n uniform points, edge between
// points within distance r where r is chosen for the given average degree.
// With avgDeg ≈ 2.5–3 this is the road-network analogue (AF, NA, AS, EU):
// sparse, near-planar, diameter Θ(sqrt n). Edge weights, if requested later
// via AddUniformWeights, model road lengths.
func RGG(n int, avgDeg float64, seed uint64) *graph.Graph {
	// Expected degree = n * pi * r^2  =>  r = sqrt(avgDeg/(pi*n)).
	r := math.Sqrt(avgDeg / (math.Pi * float64(n)))
	pts := uniformPoints(n, seed)
	ci := buildCellIndex(pts, r)
	r2 := r * r
	edgeLists := make([][]graph.Edge, n)
	parallel.For(n, 16, func(i int) {
		p := pts[i]
		var out []graph.Edge
		ci.forNeighborhood(p, 1, func(j int32) {
			if int32(i) < j && dist2(p, pts[j]) <= r2 {
				out = append(out, graph.Edge{U: uint32(i), V: uint32(j)})
			}
		})
		edgeLists[i] = out
	})
	var edges []graph.Edge
	for _, l := range edgeLists {
		edges = append(edges, l...)
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}

// KNN returns the symmetrized k-nearest-neighbor graph of n clustered
// points — the analogue of the paper's CH5/GL5/GL10/COS5 inputs. The
// directed variant (each point -> its k nearest) is what the paper calls
// m'; the built graph is its symmetrization when directed=false.
func KNN(n, k int, clusters int, directed bool, seed uint64) *graph.Graph {
	if k < 1 {
		panic("gen: KNN requires k >= 1")
	}
	pts := clusteredPoints(n, clusters, 0.05, seed)
	// Cell width targets ~2k points per neighborhood on average.
	w := math.Sqrt(float64(2*k)/float64(n)) / 2
	if w <= 0 || w > 0.5 {
		w = 0.25
	}
	ci := buildCellIndex(pts, w)
	type cand struct {
		d  float64
		id int32
	}
	edgeLists := make([][]graph.Edge, n)
	parallel.For(n, 8, func(i int) {
		p := pts[i]
		var cands []cand
		// Expand the search ring until at least k candidates are found,
		// then once more so no closer point outside the ring is missed.
		r := 1
		for {
			cands = cands[:0]
			ci.forNeighborhood(p, r, func(j int32) {
				if int(j) != i {
					cands = append(cands, cand{dist2(p, pts[j]), j})
				}
			})
			if len(cands) >= k {
				// Check the kth distance fits inside the searched radius;
				// if not, widen once more.
				sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
				kth := math.Sqrt(cands[k-1].d)
				if kth <= float64(r)*ci.w || r >= ci.cols {
					break
				}
			} else if r >= ci.cols {
				sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
				break
			}
			r *= 2
		}
		kk := k
		if kk > len(cands) {
			kk = len(cands)
		}
		out := make([]graph.Edge, kk)
		for t := 0; t < kk; t++ {
			out[t] = graph.Edge{U: uint32(i), V: uint32(cands[t].id)}
		}
		edgeLists[i] = out
	})
	var edges []graph.Edge
	for _, l := range edgeLists {
		edges = append(edges, l...)
	}
	if directed {
		return graph.FromEdges(n, edges, true, graph.BuildOptions{})
	}
	return graph.FromEdges(n, edges, false, graph.BuildOptions{})
}
