package gen

import (
	"testing"

	"pasgal/internal/graph"
)

func TestHashCSR(t *testing.T) {
	const n, d = 1000, 8
	g := HashCSR(n, d, 7)
	validate(t, g, "hashcsr")
	if g.N != n || g.M() != n*d {
		t.Fatalf("shape %d/%d, want %d/%d", g.N, g.M(), n, n*d)
	}
	for v := uint32(0); v < n; v++ {
		if g.Degree(v) != d {
			t.Fatalf("degree(%d) = %d, want %d", v, g.Degree(v), d)
		}
		nbrs := g.Neighbors(v)
		ring := false
		for j, u := range nbrs {
			if j > 0 && nbrs[j-1] > u {
				t.Fatalf("vertex %d: unsorted list", v)
			}
			if u == (v+1)%n {
				ring = true
			}
		}
		if !ring {
			t.Fatalf("vertex %d: ring successor missing", v)
		}
	}
	// The ring makes the graph strongly connected: one BFS reaches all n.
	dist := bfsAll(g, 0)
	for v, dv := range dist {
		if dv == graph.InfDist {
			t.Fatalf("vertex %d unreached", v)
		}
	}
	// Determinism: same parameters, same arrays.
	h := HashCSR(n, d, 7)
	for e := range g.Edges {
		if h.Edges[e] != g.Edges[e] {
			t.Fatal("non-deterministic output")
		}
	}
}

// bfsAll is a minimal queue BFS; package gen cannot import the algorithm
// packages (they import gen's fixtures in their tests).
func bfsAll(g *graph.Graph, src uint32) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == graph.InfDist {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
