package graph

import (
	"fmt"
	"strings"
	"testing"
)

// adjTestGraph builds a small weighted directed graph with a mix of
// degrees (including a sink) for the interface-surface checks.
func adjTestGraph() *Graph {
	return FromEdges(6, []Edge{
		{U: 0, V: 1, W: 3}, {U: 0, V: 2, W: 1}, {U: 0, V: 5, W: 7},
		{U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 4}, {U: 4, V: 0, W: 9},
	}, true, BuildOptions{Weighted: true})
}

// TestAdjacencySurface pins the shared interface on both representations:
// every accessor must agree with the plain CSR ground truth.
func TestAdjacencySurface(t *testing.T) {
	g := adjTestGraph()
	c := Compress(g)
	for name, a := range map[string]Adjacency{"plain": Adjacency(g), "compressed": Adjacency(c)} {
		if a.NumVertices() != g.N {
			t.Fatalf("%s: NumVertices = %d, want %d", name, a.NumVertices(), g.N)
		}
		if a.NumArcs() != g.M() {
			t.Fatalf("%s: NumArcs = %d, want %d", name, a.NumArcs(), g.M())
		}
		if !a.IsDirected() || !a.HasWeights() {
			t.Fatalf("%s: directed/weighted flags lost", name)
		}
		for v := 0; v < g.N; v++ {
			if got, want := a.DegreeOf(uint32(v)), g.Degree(uint32(v)); got != want {
				t.Fatalf("%s: DegreeOf(%d) = %d, want %d", name, v, got, want)
			}
		}
	}
}

// TestCompressedAccessors covers the raw-section accessors the storage
// layer serializes (VOff, Data) and the reporting helpers.
func TestCompressedAccessors(t *testing.T) {
	g := adjTestGraph()
	c := Compress(g)
	voff := c.VOff()
	if len(voff) != g.N+1 || voff[0] != 0 {
		t.Fatalf("VOff has %d entries starting at %d", len(voff), voff[0])
	}
	for v := 0; v < g.N; v++ {
		if voff[v] > voff[v+1] {
			t.Fatalf("VOff decreases at %d", v)
		}
	}
	if voff[g.N] != uint64(len(c.Data())) {
		t.Fatalf("VOff ends at %d, data has %d bytes", voff[g.N], len(c.Data()))
	}
	// BytesPerArc charges the payload plus the restart-point array.
	if bpa, want := c.BytesPerArc(), float64(len(c.Data())+8*len(voff))/float64(g.M()); bpa != want {
		t.Fatalf("BytesPerArc = %g, want %g", bpa, want)
	}
	s := c.String()
	for _, sub := range []string{fmt.Sprint(g.N), fmt.Sprint(g.M())} {
		if !strings.Contains(s, sub) {
			t.Fatalf("String %q omits %q", s, sub)
		}
	}
	// Empty graph: defined BytesPerArc (no divide-by-zero).
	if e := Compress(FromEdges(0, nil, true, BuildOptions{})); e.BytesPerArc() != 0 {
		t.Fatalf("empty BytesPerArc = %g", e.BytesPerArc())
	}
}

// TestAppendArcsMatchesCSR pins the bulk weighted decode against the
// plain arrays, reusing one scratch pair across vertices the way the
// kernels do.
func TestAppendArcsMatchesCSR(t *testing.T) {
	g := adjTestGraph()
	c := Compress(g)
	var nbuf, wbuf []uint32
	for v := uint32(0); int(v) < g.N; v++ {
		nbuf, wbuf = c.AppendArcs(v, nbuf[:0], wbuf[:0])
		nbrs, wts := g.Neighbors(v), g.NeighborWeights(v)
		if len(nbuf) != len(nbrs) || len(wbuf) != len(wts) {
			t.Fatalf("vertex %d: decoded %d/%d arcs, want %d", v, len(nbuf), len(wbuf), len(nbrs))
		}
		for j := range nbrs {
			if nbuf[j] != nbrs[j] || wbuf[j] != wts[j] {
				t.Fatalf("vertex %d arc %d: (%d,%d), want (%d,%d)",
					v, j, nbuf[j], wbuf[j], nbrs[j], wts[j])
			}
		}
	}
}

// TestNewCompressedRejects covers the constructor's structural guards.
func TestNewCompressedRejects(t *testing.T) {
	g := adjTestGraph()
	c := Compress(g)
	cases := map[string]func() error{
		"negative n": func() error {
			_, err := NewCompressed(-1, 0, true, false, []uint64{0}, nil)
			return err
		},
		"short voff": func() error {
			_, err := NewCompressed(g.N, g.M(), true, true, c.VOff()[:g.N], c.Data())
			return err
		},
		"data mismatch": func() error {
			_, err := NewCompressed(g.N, g.M(), true, true, c.VOff(), c.Data()[:len(c.Data())-1])
			return err
		},
	}
	for name, build := range cases {
		if build() == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
