package graph

import (
	"math/rand/v2"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	// Directed triangle 0-1-2 plus tail 3->4.
	edges := []Edge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 6}, {U: 2, V: 0, W: 7},
		{U: 3, V: 4, W: 8}, {U: 0, V: 3, W: 9}}
	g := FromEdges(5, edges, true, BuildOptions{Weighted: true})
	sub, orig := InducedSubgraph(g, []uint32{0, 2, 1})
	if sub.N != 3 || sub.M() != 3 {
		t.Fatalf("sub: n=%d m=%d", sub.N, sub.M())
	}
	if orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Fatalf("origOf = %v", orig)
	}
	// Weights preserved.
	e := sub.FindArc(0, 1)
	if e == ^uint64(0) || sub.Weights[e] != 5 {
		t.Fatal("weight lost in subgraph")
	}
	// Edges leaving the vertex set are dropped.
	if sub.FindArc(0, 2) == ^uint64(0) { // 2->0 means FindArc(2,0)
		_ = e
	}
	if got := sub.FindArc(2, 0); got == ^uint64(0) {
		t.Fatal("edge 2->0 missing")
	}
}

func TestInducedSubgraphUndirected(t *testing.T) {
	g := FromEdges(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}},
		false, BuildOptions{})
	sub, _ := InducedSubgraph(g, []uint32{1, 2, 3})
	if sub.N != 3 || sub.UndirectedM() != 2 {
		t.Fatalf("sub: n=%d m=%d", sub.N, sub.UndirectedM())
	}
	if !sub.IsSymmetric() {
		t.Fatal("induced subgraph lost symmetry")
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}}, false, BuildOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicates")
		}
	}()
	InducedSubgraph(g, []uint32{1, 1})
}

func TestLargestComponent(t *testing.T) {
	// Two components: a 4-path and a 2-edge.
	edges := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}}
	g := FromEdges(7, edges, false, BuildOptions{}) // vertex 6 isolated
	lc, orig := LargestComponent(g)
	if lc.N != 4 {
		t.Fatalf("largest component n = %d, want 4", lc.N)
	}
	for i, v := range orig {
		if v != uint32(i) {
			t.Fatalf("orig mapping %v", orig)
		}
	}
	// Directed input goes through the symmetrized view.
	dg := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 2, V: 1}, {U: 3, V: 4}}, true, BuildOptions{})
	lc, orig = LargestComponent(dg)
	if lc.N != 3 || !lc.Directed {
		t.Fatalf("directed largest component: n=%d directed=%v", lc.N, lc.Directed)
	}
	if orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Fatalf("orig = %v", orig)
	}
	// Empty graph.
	eg := FromEdges(0, nil, false, BuildOptions{})
	if lc, _ := LargestComponent(eg); lc.N != 0 {
		t.Fatal("empty graph largest component")
	}
}

func TestLargestComponentRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.IntN(200)
		m := rng.IntN(n)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{U: uint32(rng.IntN(n)), V: uint32(rng.IntN(n))}
		}
		g := FromEdges(n, edges, false, BuildOptions{})
		lc, orig := LargestComponent(g)
		if lc.N != len(orig) {
			t.Fatal("mapping length mismatch")
		}
		// The extracted subgraph must be connected.
		if lc.N > 0 {
			if _, count := componentsSimple(lc); count != 1 {
				t.Fatalf("trial %d: largest component not connected (%d comps)", trial, count)
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star: center degree n-1, leaves degree 1.
	edges := make([]Edge, 9)
	for i := range edges {
		edges[i] = Edge{U: 0, V: uint32(i + 1)}
	}
	g := FromEdges(10, edges, false, BuildOptions{})
	h := DegreeHistogram(g)
	if h[1] != 9 || h[9] != 1 {
		t.Fatalf("histogram %v", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram total %d", total)
	}
	if got := DegreeHistogram(FromEdges(0, nil, false, BuildOptions{})); len(got) != 1 {
		t.Fatal("empty graph histogram")
	}
}
