package graph

import (
	"fmt"
	"sort"
	"sync"

	"pasgal/internal/parallel"
)

// Overlay is the third Adjacency representation: an immutable base CSR
// plus a per-vertex edge patch. The patch is itself CSR-shaped — two
// small sorted arrays per vertex, additions and tombstones — so a scan
// of v's effective adjacency is a three-way sorted merge: base arcs with
// the tombstoned ones skipped, interleaved with the added arcs. The
// delta store (package internal/delta) builds one Overlay per epoch;
// queries that pinned an epoch keep scanning that Overlay while newer
// epochs accumulate fresh patches over the same base.
//
// Invariants (established by the delta store's batch canonicalization,
// checked by Validate):
//
//   - every tombstone names an arc present in the base;
//   - an added arc is never also a live base arc — a weight change is
//     represented as tombstone + add of the same (u,v), so adds may
//     intersect the tombstone set but never base∖tombstones;
//   - per-vertex adds and tombstones are strictly sorted by destination
//     and contain no self-loops.
//
// Like Graph and Compressed, an Overlay is immutable after construction
// and safe for concurrent readers. It never writes through to its base:
// the base pointer is captured at construction and compaction always
// builds a *new* base Graph, so an Overlay snapshot can never observe —
// or trigger — state from an epoch that closed after it was taken. Its
// lazy transpose is an Overlay over base.Transpose() with the patch
// arrays reversed, which is safe for exactly that reason.
type Overlay struct {
	base   *Graph
	addOff []uint64 // length N+1; adds[addOff[v]:addOff[v+1]] is v's additions
	adds   []uint32
	addW   []uint32 // nil iff base is unweighted, else parallel to adds
	delOff []uint64 // length N+1; dels[delOff[v]:delOff[v+1]] is v's tombstones
	dels   []uint32
	m      int // effective arc count: base.M() + len(adds) - len(dels)

	trOnce sync.Once
	tr     *Overlay // cached transpose, built once under trOnce
}

// NewOverlay assembles an Overlay from a base graph and patch arrays.
// The slices are captured, not copied: the caller must not modify them
// afterwards. addW must be non-nil exactly when base carries weights.
func NewOverlay(base *Graph, addOff []uint64, adds, addW []uint32, delOff []uint64, dels []uint32) *Overlay {
	if base.Weighted() != (addW != nil) {
		panic("graph: overlay weight arrays must match the base")
	}
	if len(addOff) != base.N+1 || len(delOff) != base.N+1 {
		panic("graph: overlay patch offsets must have N+1 entries")
	}
	return &Overlay{
		base:   base,
		addOff: addOff,
		adds:   adds,
		addW:   addW,
		delOff: delOff,
		dels:   dels,
		m:      base.M() + len(adds) - len(dels),
	}
}

// EmptyOverlay returns an Overlay with no patches over base (a
// zero-delta epoch view; scans fall through to the base arrays).
func EmptyOverlay(base *Graph) *Overlay {
	off := make([]uint64, base.N+1)
	var addW []uint32
	if base.Weighted() {
		addW = make([]uint32, 0)
	}
	return NewOverlay(base, off, nil, addW, off, nil)
}

// Base returns the immutable base graph the patch applies to.
func (o *Overlay) Base() *Graph { return o.base }

// PatchArcs returns the patch size (additions plus tombstones) — the
// quantity the delta store's compaction policy thresholds on.
func (o *Overlay) PatchArcs() int { return len(o.adds) + len(o.dels) }

// Added returns v's added arcs and their weights (nil when unweighted).
// Callers must not modify the slices.
func (o *Overlay) Added(v uint32) (nbrs, wts []uint32) {
	lo, hi := o.addOff[v], o.addOff[v+1]
	if o.addW != nil {
		wts = o.addW[lo:hi]
	}
	return o.adds[lo:hi], wts
}

// Deleted returns v's tombstoned destinations. Callers must not modify
// the slice.
func (o *Overlay) Deleted(v uint32) []uint32 {
	return o.dels[o.delOff[v]:o.delOff[v+1]]
}

// NumVertices implements Adjacency.
func (o *Overlay) NumVertices() int { return o.base.N }

// NumArcs implements Adjacency.
func (o *Overlay) NumArcs() int { return o.m }

// IsDirected implements Adjacency.
func (o *Overlay) IsDirected() bool { return o.base.Directed }

// HasWeights implements Adjacency.
func (o *Overlay) HasWeights() bool { return o.base.Weighted() }

// DegreeOf implements Adjacency: base degree, patched.
func (o *Overlay) DegreeOf(v uint32) int {
	return o.base.Degree(v) +
		int(o.addOff[v+1]-o.addOff[v]) -
		int(o.delOff[v+1]-o.delOff[v])
}

func (o *Overlay) sealed() {}

func (o *Overlay) String() string {
	kind := "undirected"
	m := o.m / 2
	if o.base.Directed {
		kind = "directed"
		m = o.m
	}
	w := ""
	if o.HasWeights() {
		w = " weighted"
	}
	return fmt.Sprintf("overlay %s%s graph: n=%d m=%d (+%d/-%d patch arcs)",
		kind, w, o.base.N, m, len(o.adds), len(o.dels))
}

// AppendNeighbors appends v's effective neighbors to buf (usually
// buf[:0] of a reused scratch slice) and returns the extended slice —
// the same bulk-decode contract as Compressed.AppendNeighbors, so the
// kernels' overlay scan closures mirror their compressed ones. Patch-
// free vertices cost one bulk append of the base list.
func (o *Overlay) AppendNeighbors(v uint32, buf []uint32) []uint32 {
	base := o.base.Neighbors(v)
	dels := o.Deleted(v)
	adds, _ := o.Added(v)
	if len(dels) == 0 && len(adds) == 0 {
		return append(buf, base...)
	}
	di, ai := 0, 0
	for _, x := range base {
		for ai < len(adds) && adds[ai] < x {
			buf = append(buf, adds[ai])
			ai++
		}
		if di < len(dels) && dels[di] == x {
			di++
			// A matching add is a weight override riding on this
			// tombstone; emit it in place of the base arc.
			if ai < len(adds) && adds[ai] == x {
				buf = append(buf, x)
				ai++
			}
			continue
		}
		buf = append(buf, x)
	}
	for ; ai < len(adds); ai++ {
		buf = append(buf, adds[ai])
	}
	return buf
}

// AppendArcs appends v's effective neighbors and weights to the two
// scratch slices and returns both extended. It panics on unweighted
// overlays, mirroring Compressed.AppendArcs.
func (o *Overlay) AppendArcs(v uint32, nbrs, wts []uint32) ([]uint32, []uint32) {
	if o.addW == nil {
		panic("graph: AppendArcs on an unweighted overlay")
	}
	base := o.base.Neighbors(v)
	baseW := o.base.NeighborWeights(v)
	dels := o.Deleted(v)
	adds, addW := o.Added(v)
	if len(dels) == 0 && len(adds) == 0 {
		return append(nbrs, base...), append(wts, baseW...)
	}
	di, ai := 0, 0
	for i, x := range base {
		for ai < len(adds) && adds[ai] < x {
			nbrs = append(nbrs, adds[ai])
			wts = append(wts, addW[ai])
			ai++
		}
		if di < len(dels) && dels[di] == x {
			di++
			if ai < len(adds) && adds[ai] == x {
				nbrs = append(nbrs, x)
				wts = append(wts, addW[ai])
				ai++
			}
			continue
		}
		nbrs = append(nbrs, x)
		wts = append(wts, baseW[i])
	}
	for ; ai < len(adds); ai++ {
		nbrs = append(nbrs, adds[ai])
		wts = append(wts, addW[ai])
	}
	return nbrs, wts
}

// HasArc reports whether (u,v) is an effective arc of the overlay.
func (o *Overlay) HasArc(u, v uint32) bool {
	adds, _ := o.Added(u)
	if sortedContains(adds, v) {
		return true
	}
	if o.base.FindArc(u, v) == ^uint64(0) {
		return false
	}
	return !sortedContains(o.Deleted(u), v)
}

// OverlayFromEdits builds an Overlay over base from edge-level edits,
// with the same batch semantics as the delta store and the serving
// /update contract: deletes apply first, then adds; undirected edits
// expand to both arcs; self-loops, out-of-range endpoints, deletes of
// absent edges, and adds of already-identical live arcs are no-ops; on
// weighted bases an add over a live arc with a different weight becomes
// tombstone + re-add. It is a convenience constructor for tests and
// tools — the delta store builds its patches through the radix
// primitives and an explicit diff instead.
func OverlayFromEdits(base *Graph, dels, adds []Edge) *Overlay {
	type arcKey struct{ u, v uint32 }
	tomb := map[arcKey]bool{}
	addM := map[arcKey]uint32{}
	inRange := func(e Edge) bool {
		return e.U != e.V && e.U < uint32(base.N) && e.V < uint32(base.N)
	}
	eachArc := func(e Edge, f func(u, v uint32)) {
		f(e.U, e.V)
		if !base.Directed {
			f(e.V, e.U)
		}
	}
	for _, e := range dels {
		if !inRange(e) {
			continue
		}
		eachArc(e, func(u, v uint32) {
			if base.FindArc(u, v) != ^uint64(0) {
				tomb[arcKey{u, v}] = true
			}
			delete(addM, arcKey{u, v})
		})
	}
	for _, e := range adds {
		if !inRange(e) {
			continue
		}
		w := e.W
		eachArc(e, func(u, v uint32) {
			k := arcKey{u, v}
			if i := base.FindArc(u, v); i != ^uint64(0) && !tomb[k] {
				if base.Weighted() && base.Weights[i] != w {
					tomb[k] = true
					addM[k] = w
				}
				return // live identical arc: no-op
			}
			addM[k] = w
		})
	}

	sortKeys := func(keys []arcKey) {
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			return a.u < b.u || (a.u == b.u && a.v < b.v)
		})
	}
	addKeys := make([]arcKey, 0, len(addM))
	for k := range addM {
		addKeys = append(addKeys, k)
	}
	sortKeys(addKeys)
	delKeys := make([]arcKey, 0, len(tomb))
	for k := range tomb {
		delKeys = append(delKeys, k)
	}
	sortKeys(delKeys)

	addOff := make([]uint64, base.N+1)
	delOff := make([]uint64, base.N+1)
	addDst := make([]uint32, len(addKeys))
	delDst := make([]uint32, len(delKeys))
	var addW []uint32
	if base.Weighted() {
		addW = make([]uint32, len(addKeys))
	}
	for i, k := range addKeys {
		addOff[k.u+1]++
		addDst[i] = k.v
		if addW != nil {
			addW[i] = addM[k]
		}
	}
	for i, k := range delKeys {
		delOff[k.u+1]++
		delDst[i] = k.v
	}
	for v := 0; v < base.N; v++ {
		addOff[v+1] += addOff[v]
		delOff[v+1] += delOff[v]
	}
	return NewOverlay(base, addOff, addDst, addW, delOff, delDst)
}

// sortedContains reports whether x occurs in the sorted slice s.
func sortedContains(s []uint32, x uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Transpose returns the reverse overlay, built lazily on first use and
// cached: an Overlay over base.Transpose() with the patch arrays
// reversed. Undirected overlays are their own transpose. The build
// never consults any state newer than this overlay's epoch — the base
// transpose is a pure function of the (immutable) base, and a
// compaction that closes the epoch installs a fresh base Graph with its
// own transpose cache rather than touching this one.
func (o *Overlay) Transpose() *Overlay {
	if !o.base.Directed {
		return o
	}
	o.trOnce.Do(func() {
		tb := o.base.Transpose()
		raddOff, radds, raddW := reversePatch(o.base.N, o.addOff, o.adds, o.addW)
		rdelOff, rdels, _ := reversePatch(o.base.N, o.delOff, o.dels, nil)
		tr := NewOverlay(tb, raddOff, radds, raddW, rdelOff, rdels)
		tr.trOnce.Do(func() { tr.tr = o })
		o.tr = tr
	})
	return o.tr
}

// reversePatch reverses a CSR-shaped patch: arcs (u,v) become (v,u).
// One stable counting scatter in (u,v) order leaves every reversed list
// grouped by its new source and sorted by its new destination. Patches
// are small relative to the base, so the pass is sequential.
func reversePatch(n int, off []uint64, dst []uint32, w []uint32) ([]uint64, []uint32, []uint32) {
	roff := make([]uint64, n+1)
	for _, v := range dst {
		roff[v+1]++
	}
	for v := 0; v < n; v++ {
		roff[v+1] += roff[v]
	}
	rdst := make([]uint32, len(dst))
	var rw []uint32
	if w != nil {
		rw = make([]uint32, len(dst))
	}
	cur := make([]uint64, n)
	copy(cur, roff[:n])
	for u := 0; u < n; u++ {
		for i := off[u]; i < off[u+1]; i++ {
			v := dst[i]
			at := cur[v]
			cur[v]++
			rdst[at] = uint32(u)
			if rw != nil {
				rw[at] = w[i]
			}
		}
	}
	return roff, rdst, rw
}

// Materialize builds a fresh plain CSR graph with the overlay's
// effective arc set — the flat form compaction installs as the next
// base. The merged per-vertex scans emit sorted deduplicated lists, so
// the result satisfies every Graph invariant without a sort pass.
func (o *Overlay) Materialize() *Graph {
	n := o.base.N
	deg := make([]int64, n+1)
	parallel.For(n, 256, func(v int) { deg[v] = int64(o.DegreeOf(uint32(v))) })
	total := parallel.Scan(deg[:n])
	g := &Graph{
		N:        n,
		Offsets:  make([]uint64, n+1),
		Edges:    make([]uint32, total),
		Directed: o.base.Directed,
	}
	weighted := o.HasWeights()
	if weighted {
		g.Weights = make([]uint32, total)
	}
	parallel.For(n, 0, func(v int) { g.Offsets[v] = uint64(deg[v]) })
	g.Offsets[n] = uint64(total)
	parallel.For(n, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if weighted {
			nbrs, wts := o.AppendArcs(uint32(v), g.Edges[lo:lo:hi], g.Weights[lo:lo:hi])
			if uint64(len(nbrs)) != hi-lo || uint64(len(wts)) != hi-lo {
				panic("graph: overlay degree/scan mismatch")
			}
		} else {
			nbrs := o.AppendNeighbors(uint32(v), g.Edges[lo:lo:hi])
			if uint64(len(nbrs)) != hi-lo {
				panic("graph: overlay degree/scan mismatch")
			}
		}
	})
	return g
}

// Arcs collects the overlay's effective arc set as an edge list. For
// undirected overlays each edge is emitted once (u < v), the form
// FromEdges expects; directed overlays emit every arc. Compaction feeds
// this straight into the FromEdges radix pipeline.
func (o *Overlay) Arcs() []Edge {
	g := o.Materialize()
	arcs := make([]Edge, len(g.Edges))
	parallel.For(g.N, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			var w uint32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			arcs[i] = Edge{U: uint32(u), V: g.Edges[i], W: w}
		}
	})
	if o.base.Directed {
		return arcs
	}
	return parallel.Pack(arcs, func(i int) bool { return arcs[i].U < arcs[i].V })
}

// Validate checks the patch invariants against the base (test helper;
// O(patch · log(degree))).
func (o *Overlay) Validate() error {
	n := o.base.N
	if len(o.addOff) != n+1 || len(o.delOff) != n+1 {
		return fmt.Errorf("graph: overlay offsets must have %d entries", n+1)
	}
	if o.addOff[0] != 0 || o.addOff[n] != uint64(len(o.adds)) {
		return fmt.Errorf("graph: add offsets span [%d,%d], want [0,%d]", o.addOff[0], o.addOff[n], len(o.adds))
	}
	if o.delOff[0] != 0 || o.delOff[n] != uint64(len(o.dels)) {
		return fmt.Errorf("graph: del offsets span [%d,%d], want [0,%d]", o.delOff[0], o.delOff[n], len(o.dels))
	}
	if o.base.Weighted() != (o.addW != nil) || (o.addW != nil && len(o.addW) != len(o.adds)) {
		return fmt.Errorf("graph: overlay weight array mismatch")
	}
	for v := 0; v < n; v++ {
		if o.addOff[v] > o.addOff[v+1] || o.delOff[v] > o.delOff[v+1] {
			return fmt.Errorf("graph: overlay offsets decrease at vertex %d", v)
		}
		adds, _ := o.Added(uint32(v))
		dels := o.Deleted(uint32(v))
		for i, x := range adds {
			if x >= uint32(n) || x == uint32(v) {
				return fmt.Errorf("graph: invalid add (%d,%d)", v, x)
			}
			if i > 0 && adds[i-1] >= x {
				return fmt.Errorf("graph: adds of %d not strictly sorted", v)
			}
			if o.base.FindArc(uint32(v), x) != ^uint64(0) && !sortedContains(dels, x) {
				return fmt.Errorf("graph: add (%d,%d) duplicates a live base arc", v, x)
			}
		}
		for i, x := range dels {
			if i > 0 && dels[i-1] >= x {
				return fmt.Errorf("graph: dels of %d not strictly sorted", v)
			}
			if o.base.FindArc(uint32(v), x) == ^uint64(0) {
				return fmt.Errorf("graph: tombstone (%d,%d) names no base arc", v, x)
			}
		}
	}
	return nil
}
