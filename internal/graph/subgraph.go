package graph

import (
	"pasgal/internal/parallel"
)

// InducedSubgraph returns the subgraph of g induced by verts (which must
// contain no duplicates), together with the mapping from new vertex ids to
// the original ids (origOf[i] = original id of new vertex i). Vertices are
// renumbered in the sorted order of verts. Weights are preserved.
func InducedSubgraph(g *Graph, verts []uint32) (*Graph, []uint32) {
	origOf := append([]uint32(nil), verts...)
	parallel.SortFunc(origOf, func(a, b uint32) bool { return a < b })
	for i := 1; i < len(origOf); i++ {
		if origOf[i] == origOf[i-1] {
			panic("graph: InducedSubgraph with duplicate vertices")
		}
	}
	newID := make(map[uint32]uint32, len(origOf))
	for i, v := range origOf {
		newID[v] = uint32(i)
	}
	var edges []Edge
	for i, v := range origOf {
		wts := []uint32(nil)
		if g.Weighted() {
			wts = g.NeighborWeights(v)
		}
		for j, w := range g.Neighbors(v) {
			if nw, ok := newID[w]; ok {
				var wt uint32
				if wts != nil {
					wt = wts[j]
				}
				if g.Directed || origOf[i] <= w {
					edges = append(edges, Edge{U: uint32(i), V: nw, W: wt})
				}
			}
		}
	}
	sub := FromEdges(len(origOf), edges, g.Directed, BuildOptions{Weighted: g.Weighted()})
	return sub, origOf
}

// ComponentsOf labels the connected components of the symmetrized view of
// g with a simple sequential union-free BFS (a helper for extraction
// utilities; the parallel labeling lives in internal/conn). Returns labels
// (representative = smallest id in the component) and component count.
func componentsSimple(g *Graph) ([]uint32, int) {
	sym := g
	if g.Directed {
		sym = g.Symmetrized()
	}
	labels := make([]uint32, sym.N)
	for i := range labels {
		labels[i] = None
	}
	count := 0
	queue := make([]uint32, 0, 1024)
	for s := 0; s < sym.N; s++ {
		if labels[s] != None {
			continue
		}
		count++
		labels[s] = uint32(s)
		queue = append(queue[:0], uint32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range sym.Neighbors(u) {
				if labels[v] == None {
					labels[v] = uint32(s)
					queue = append(queue, v)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the subgraph induced by the largest (weakly)
// connected component of g, plus the original-id mapping. Useful for
// benchmarking traversals on generated graphs that leave isolated
// vertices.
func LargestComponent(g *Graph) (*Graph, []uint32) {
	if g.N == 0 {
		return g, nil
	}
	labels, _ := componentsSimple(g)
	sizes := map[uint32]int{}
	for _, l := range labels {
		sizes[l]++
	}
	best, bestSize := uint32(0), -1
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < best) {
			best, bestSize = l, s
		}
	}
	verts := parallel.PackIndex(g.N, func(v int) bool { return labels[v] == best })
	return InducedSubgraph(g, verts)
}

// DegreeHistogram returns counts[d] = number of vertices with out-degree
// d, for d in [0, MaxDegree].
func DegreeHistogram(g *Graph) []int64 {
	maxDeg := g.MaxDegree()
	counts := make([]int64, maxDeg+1)
	if g.N == 0 {
		return counts
	}
	keys := parallel.Tabulate(g.N, func(v int) uint32 {
		return uint32(g.Degree(uint32(v)))
	})
	return parallel.Histogram(keys, maxDeg+1)
}
