package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasicDirected(t *testing.T) {
	edges := []Edge{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}, {2, 0, 0}}
	g := FromEdges(3, edges, true, BuildOptions{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("M = %d", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("bad degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	if nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors of 0: %v", nb)
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}}, true, BuildOptions{})
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (self loops dropped)", g.M())
	}
	gk := FromEdges(3, []Edge{{0, 0, 0}, {0, 1, 0}}, true, BuildOptions{KeepSelfLoops: true})
	if gk.M() != 2 {
		t.Fatalf("M = %d, want 2 with KeepSelfLoops", gk.M())
	}
}

func TestDuplicatesDeduped(t *testing.T) {
	edges := []Edge{{0, 1, 9}, {0, 1, 3}, {0, 1, 7}, {0, 2, 1}}
	g := FromEdges(3, edges, true, BuildOptions{Weighted: true})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	// Min weight wins on dedup.
	if g.NeighborWeights(0)[0] != 3 {
		t.Fatalf("weight = %d, want 3", g.NeighborWeights(0)[0])
	}
	gk := FromEdges(3, edges, true, BuildOptions{Weighted: true, KeepDuplicates: true})
	if gk.M() != 4 {
		t.Fatalf("M = %d, want 4 with KeepDuplicates", gk.M())
	}
}

func TestUndirectedBuildSymmetric(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {1, 2, 6}, {3, 0, 7}}
	g := FromEdges(4, edges, false, BuildOptions{Weighted: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Fatalf("M = %d, want 6", g.M())
	}
	if !g.IsSymmetric() {
		t.Fatal("undirected build is not symmetric")
	}
	if g.UndirectedM() != 3 {
		t.Fatalf("UndirectedM = %d", g.UndirectedM())
	}
	// Weight preserved on both arcs.
	e := g.FindArc(1, 0)
	if e == ^uint64(0) || g.Weights[e] != 5 {
		t.Fatal("reverse arc weight lost")
	}
}

func TestTranspose(t *testing.T) {
	edges := []Edge{{0, 1, 2}, {0, 2, 3}, {2, 1, 4}}
	g := FromEdges(3, edges, true, BuildOptions{Weighted: true})
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Degree(1) != 2 || tr.Degree(0) != 0 || tr.Degree(2) != 1 {
		t.Fatalf("transpose degrees wrong: %d %d %d", tr.Degree(0), tr.Degree(1), tr.Degree(2))
	}
	e := tr.FindArc(1, 2)
	if e == ^uint64(0) || tr.Weights[e] != 4 {
		t.Fatal("transpose weight lost")
	}
	// Cached and involutive.
	if g.Transpose() != tr || tr.Transpose() != g {
		t.Fatal("transpose caching broken")
	}
	// Undirected graphs are their own transpose.
	ug := FromEdges(3, edges, false, BuildOptions{})
	if ug.Transpose() != ug {
		t.Fatal("undirected transpose should be identity")
	}
}

func TestSymmetrized(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 0}, {1, 0, 0}, {2, 3, 0}}, true, BuildOptions{})
	sym := g.Symmetrized()
	if sym.Directed {
		t.Fatal("symmetrized graph marked directed")
	}
	if !sym.IsSymmetric() {
		t.Fatal("not symmetric")
	}
	// (0,1)+(1,0) collapse to one undirected edge; (2,3) becomes one.
	if sym.UndirectedM() != 2 {
		t.Fatalf("UndirectedM = %d, want 2", sym.UndirectedM())
	}
}

func TestReverseArcAndFindArc(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 4, 0}, {4, 0, 0}}, false, BuildOptions{})
	for u := uint32(0); u < 5; u++ {
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			r := g.ReverseArc(u, e)
			if r == ^uint64(0) {
				t.Fatalf("missing reverse arc for (%d,%d)", u, g.Edges[e])
			}
			if g.Edges[r] != u {
				t.Fatalf("reverse arc of (%d,%d) points to %d", u, g.Edges[e], g.Edges[r])
			}
		}
	}
	if g.FindArc(0, 3) != ^uint64(0) {
		t.Fatal("FindArc found a non-edge")
	}
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: uint32(rng.IntN(n)),
			V: uint32(rng.IntN(n)),
			W: rng.Uint32N(100) + 1,
		}
	}
	return edges
}

func TestRandomBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(500)
		m := rng.IntN(4 * n)
		edges := randomEdges(rng, n, m)
		directed := trial%2 == 0
		g := FromEdges(n, edges, directed, BuildOptions{Weighted: true})
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !directed && !g.IsSymmetric() {
			t.Fatalf("trial %d: undirected graph not symmetric", trial)
		}
		if directed {
			tr := g.Transpose()
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d transpose: %v", trial, err)
			}
			if tr.M() != g.M() {
				t.Fatalf("trial %d: transpose arc count mismatch", trial)
			}
		}
	}
}

// Property: every input edge (modulo self loops / duplicates) is findable in
// the built graph.
func TestQuickEdgesPresent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(100)
		edges := randomEdges(rng, n, rng.IntN(300))
		g := FromEdges(n, edges, true, BuildOptions{})
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			if g.FindArc(e.U, e.V) == ^uint64(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateDiameterPath(t *testing.T) {
	// A path of n vertices has diameter n-1; double sweep finds it exactly.
	n := 200
	edges := make([]Edge, n-1)
	for i := range edges {
		edges[i] = Edge{U: uint32(i), V: uint32(i + 1)}
	}
	g := FromEdges(n, edges, false, BuildOptions{})
	if d := EstimateDiameter(g, 3, 1); d != n-1 {
		t.Fatalf("path diameter estimate %d, want %d", d, n-1)
	}
}

func TestComputeStats(t *testing.T) {
	// Directed 4-cycle.
	edges := []Edge{{0, 1, 0}, {1, 2, 0}, {2, 3, 0}, {3, 0, 0}}
	g := FromEdges(4, edges, true, BuildOptions{})
	st := ComputeStats(g, 4, 7)
	if st.N != 4 || st.MDirected != 4 || st.MSymmetric != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if st.DiamLBDir != 3 { // farthest pair along the directed cycle
		t.Fatalf("D' = %d, want 3", st.DiamLBDir)
	}
	if st.DiamLB != 2 { // undirected 4-cycle
		t.Fatalf("D = %d, want 2", st.DiamLB)
	}
	if st.MaxDeg != 1 || st.AvgDeg != 1 {
		t.Fatalf("degree stats: %+v", st)
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g := FromEdges(0, nil, true, BuildOptions{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph degree stats")
	}
	g1 := FromEdges(1, nil, false, BuildOptions{})
	if d := EstimateDiameter(g1, 2, 1); d != 0 {
		t.Fatalf("singleton diameter %d", d)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	FromEdges(2, []Edge{{0, 5, 0}}, true, BuildOptions{})
}
