package graph

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pasgal/internal/gzb"
	"pasgal/internal/parallel"
)

// Compressed is the byte-compressed CSR representation: every vertex's
// sorted adjacency list is difference-encoded into varints (see package
// gzb), and an (n+1)-entry byte-offset array — the per-vertex restart
// points — locates each list, so scans decode lists independently and
// in parallel. On the power-law graphs the library targets this costs
// roughly half the bytes of plain CSR (less after degree-ordered
// relabeling, see RelabelByDegree) at a modest decode cost per scanned
// arc, and the two flat arrays map 1:1 onto the on-disk .pz layout so a
// file can be mmap'd straight into a usable graph.
//
// A Compressed is immutable after construction, like Graph, and safe
// for concurrent readers; the lazy transpose cached under trOnce
// depends on that immutability (a mutated payload would leave an
// already-built transpose describing a graph that no longer exists —
// mutation must go through internal/delta, which never touches a
// published representation). Instances backed by an mmap'd file are
// only valid until the mapping is closed (see gio.MapPZFile).
type Compressed struct {
	n        int
	m        int
	directed bool
	weighted bool
	voff     []uint64 // n+1 byte offsets into data; voff[v]:voff[v+1] is v's list
	data     []byte

	trOnce sync.Once
	tr     *Compressed // cached transpose, built once under trOnce
}

// Compress encodes g into the compressed representation. The encoding
// is exact: Decompress returns a graph with identical arrays.
func Compress(g *Graph) *Compressed {
	n := g.N
	sizes := make([]int64, n+1)
	weighted := g.Weighted()
	parallel.For(n, 64, func(v int) {
		var wts []uint32
		if weighted {
			wts = g.NeighborWeights(uint32(v))
		}
		sizes[v] = int64(gzb.EncodedListSize(uint32(v), g.Neighbors(uint32(v)), wts))
	})
	total := parallel.Scan(sizes[:n])
	voff := make([]uint64, n+1)
	parallel.For(n, 0, func(v int) { voff[v] = uint64(sizes[v]) })
	voff[n] = uint64(total)
	data := make([]byte, total)
	parallel.For(n, 64, func(v int) {
		lo, hi := voff[v], voff[v+1]
		var wts []uint32
		if weighted {
			wts = g.NeighborWeights(uint32(v))
		}
		// Append into the exact sub-slice; a size mismatch would make
		// append silently reallocate and drop the bytes, so trap it.
		out := gzb.AppendList(data[lo:lo:hi], uint32(v), g.Neighbors(uint32(v)), wts)
		if uint64(len(out)) != hi-lo {
			panic("graph: compressed list size mismatch")
		}
	})
	return &Compressed{
		n:        n,
		m:        len(g.Edges),
		directed: g.Directed,
		weighted: weighted,
		voff:     voff,
		data:     data,
	}
}

// NewCompressed assembles a Compressed from its stored parts (the .pz
// reader's entry point). It performs the O(n) structural checks — voff
// monotone, anchored at 0, and ending exactly at len(data) — but does
// not decode the payload; call Validate for the O(m) full check.
func NewCompressed(n, m int, directed, weighted bool, voff []uint64, data []byte) (*Compressed, error) {
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative dimensions (n=%d, m=%d)", n, m)
	}
	if len(voff) != n+1 {
		return nil, fmt.Errorf("graph: offset array has %d entries, want n+1 = %d", len(voff), n+1)
	}
	if n > 0 && voff[0] != 0 {
		return nil, fmt.Errorf("graph: first list starts at byte %d, want 0", voff[0])
	}
	for v := 0; v < n; v++ {
		if voff[v] > voff[v+1] {
			return nil, fmt.Errorf("graph: offsets decrease at vertex %d (%d > %d)", v, voff[v], voff[v+1])
		}
	}
	if n > 0 && voff[n] != uint64(len(data)) {
		return nil, fmt.Errorf("graph: offsets end at byte %d, data has %d bytes", voff[n], len(data))
	}
	return &Compressed{n: n, m: m, directed: directed, weighted: weighted, voff: voff, data: data}, nil
}

// NumVertices implements Adjacency.
func (c *Compressed) NumVertices() int { return c.n }

// NumArcs implements Adjacency.
func (c *Compressed) NumArcs() int { return c.m }

// IsDirected implements Adjacency.
func (c *Compressed) IsDirected() bool { return c.directed }

// HasWeights implements Adjacency.
func (c *Compressed) HasWeights() bool { return c.weighted }

// DegreeOf implements Adjacency: one varint decode at v's restart point.
func (c *Compressed) DegreeOf(v uint32) int {
	deg, _ := gzb.DecodeDegree(c.data[c.voff[v]:])
	return int(deg)
}

func (c *Compressed) sealed() {}

// VOff exposes the per-vertex byte-offset array for serialization.
// Callers must not modify it.
func (c *Compressed) VOff() []uint64 { return c.voff }

// Data exposes the encoded adjacency bytes for serialization. Callers
// must not modify them.
func (c *Compressed) Data() []byte { return c.data }

// BytesPerArc reports the storage cost of the representation in bytes
// per stored arc: encoded payload plus the restart-point array. It is
// the number the compress benchmark compares against plain CSR's
// (8(n+1) + 4m [+ 4m weighted]) / m.
func (c *Compressed) BytesPerArc() float64 {
	if c.m == 0 {
		return 0
	}
	return float64(len(c.data)+8*len(c.voff)) / float64(c.m)
}

func (c *Compressed) String() string {
	kind := "undirected"
	m := c.m / 2
	if c.directed {
		kind = "directed"
		m = c.m
	}
	w := ""
	if c.weighted {
		w = " weighted"
	}
	return fmt.Sprintf("compressed %s%s graph: n=%d m=%d (%.2f B/arc)", kind, w, c.n, m, c.BytesPerArc())
}

// listBytes returns the encoded list of v.
func (c *Compressed) listBytes(v uint32) []byte {
	return c.data[c.voff[v]:c.voff[v+1]]
}

// AppendNeighbors appends v's neighbors to buf (usually buf[:0] of a
// reused scratch slice) and returns the extended slice. This is the
// bulk decode the push-direction kernels use: decode once into scratch,
// then run the same tight loop as plain CSR over the result.
func (c *Compressed) AppendNeighbors(v uint32, buf []uint32) []uint32 {
	nbrs, _ := gzb.DecodeList(c.listBytes(v), v, c.weighted, buf, nil)
	return nbrs
}

// AppendArcs appends v's neighbors and weights to the two scratch
// slices and returns both extended. It panics on unweighted graphs.
func (c *Compressed) AppendArcs(v uint32, nbrs, wts []uint32) ([]uint32, []uint32) {
	if !c.weighted {
		panic("graph: AppendArcs on an unweighted compressed graph")
	}
	if wts == nil {
		wts = make([]uint32, 0, len(nbrs))
	}
	return gzb.DecodeList(c.listBytes(v), v, true, nbrs, wts)
}

// ArcCursor streams one vertex's neighbors without materializing the
// list — the pull-direction kernels use it because they abandon a scan
// early (first useful parent wins), where a bulk decode would pay for
// arcs never looked at. The zero cursor is exhausted. Cursors are
// values: copying one is cheap and the graph is never mutated.
type ArcCursor struct {
	data     []byte
	pos      int
	rem      int
	prev     uint32
	first    bool
	weighted bool
}

// Arcs opens a cursor over v's adjacency list.
func (c *Compressed) Arcs(v uint32) ArcCursor {
	lo := c.voff[v]
	deg, k := gzb.DecodeDegree(c.data[lo:])
	return ArcCursor{
		data:     c.data,
		pos:      int(lo) + k,
		rem:      int(deg),
		prev:     v,
		first:    true,
		weighted: c.weighted,
	}
}

// Next returns the next neighbor, or ok=false when the list is done.
// On weighted graphs the interleaved weight is skipped.
func (it *ArcCursor) Next() (uint32, bool) {
	if it.rem == 0 {
		return 0, false
	}
	it.rem--
	u, pos := gzb.Uvarint(it.data, it.pos)
	if it.first {
		it.first = false
		it.prev = uint32(int64(it.prev) + gzb.Unzigzag(u))
	} else {
		it.prev += uint32(u)
	}
	if it.weighted {
		_, pos = gzb.Uvarint(it.data, pos)
	}
	it.pos = pos
	return it.prev, true
}

// NextW returns the next neighbor and its weight. It must only be used
// on weighted graphs.
func (it *ArcCursor) NextW() (uint32, uint32, bool) {
	if it.rem == 0 {
		return 0, 0, false
	}
	it.rem--
	u, pos := gzb.Uvarint(it.data, it.pos)
	if it.first {
		it.first = false
		it.prev = uint32(int64(it.prev) + gzb.Unzigzag(u))
	} else {
		it.prev += uint32(u)
	}
	w, pos := gzb.Uvarint(it.data, pos)
	it.pos = pos
	return it.prev, uint32(w), true
}

// Decompress expands c back into a plain CSR graph.
func (c *Compressed) Decompress() *Graph {
	n := c.n
	deg := make([]int64, n+1)
	parallel.For(n, 64, func(v int) { deg[v] = int64(c.DegreeOf(uint32(v))) })
	total := parallel.Scan(deg[:n])
	if total != int64(c.m) {
		panic(fmt.Sprintf("graph: compressed degrees sum to %d, header says %d arcs", total, c.m))
	}
	g := &Graph{
		N:        n,
		Offsets:  make([]uint64, n+1),
		Edges:    make([]uint32, c.m),
		Directed: c.directed,
	}
	if c.weighted {
		g.Weights = make([]uint32, c.m)
	}
	parallel.For(n, 0, func(v int) { g.Offsets[v] = uint64(deg[v]) })
	g.Offsets[n] = uint64(total)
	parallel.For(n, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		var wb []uint32
		if c.weighted {
			wb = g.Weights[lo:lo:hi]
		}
		gzb.DecodeList(c.listBytes(uint32(v)), uint32(v), c.weighted, g.Edges[lo:lo:hi], wb)
	})
	return g
}

// Transpose returns the compressed reverse graph, built lazily on first
// use (decompress → transpose → recompress) and cached. Undirected
// graphs are their own transpose. Kernels running push-only routes on
// directed graphs never trigger the build — important for mmap-backed
// graphs, where the transpose is a fresh in-memory allocation, not part
// of the mapping.
func (c *Compressed) Transpose() *Compressed {
	if !c.directed {
		return c
	}
	c.trOnce.Do(func() {
		tr := Compress(c.Decompress().Transpose())
		tr.trOnce.Do(func() { tr.tr = c })
		c.tr = tr
	})
	return c.tr
}

// Validate decodes and checks every list against the untrusted-input
// rules (each varint terminates in its list, neighbors in range and
// sorted, lists sized exactly) plus the cross-list invariants: degrees
// sum to the stored arc count. Errors name the vertex and the absolute
// byte offset of the corruption inside the payload. The per-list checks
// run in parallel; the first failing vertex (lowest id) wins.
func (c *Compressed) Validate() error {
	if c.n < 0 || c.m < 0 {
		return fmt.Errorf("graph: negative dimensions (n=%d, m=%d)", c.n, c.m)
	}
	if len(c.voff) != c.n+1 {
		return fmt.Errorf("graph: offset array has %d entries, want n+1 = %d", len(c.voff), c.n+1)
	}
	if c.n == 0 {
		if c.m != 0 || len(c.data) != 0 {
			return fmt.Errorf("graph: empty graph with %d arcs, %d bytes", c.m, len(c.data))
		}
		return nil
	}
	if c.voff[0] != 0 || c.voff[c.n] != uint64(len(c.data)) {
		return fmt.Errorf("graph: offsets span [%d, %d], data has %d bytes", c.voff[0], c.voff[c.n], len(c.data))
	}
	var firstBad atomic.Int64
	firstBad.Store(int64(c.n))
	var arcs atomic.Int64
	parallel.ForRange(c.n, 256, func(lo, hi int) {
		var local int64
		for v := lo; v < hi; v++ {
			if c.voff[v] > c.voff[v+1] {
				for {
					cur := firstBad.Load()
					if int64(v) >= cur || firstBad.CompareAndSwap(cur, int64(v)) {
						break
					}
				}
				return
			}
			deg, err := gzb.CheckList(c.listBytes(uint32(v)), uint32(v), uint32(c.n), c.weighted)
			if err != nil {
				for {
					cur := firstBad.Load()
					if int64(v) >= cur || firstBad.CompareAndSwap(cur, int64(v)) {
						break
					}
				}
				return
			}
			local += int64(deg)
		}
		arcs.Add(local)
	})
	if bad := firstBad.Load(); bad < int64(c.n) {
		v := uint32(bad)
		if c.voff[v] > c.voff[v+1] {
			return fmt.Errorf("graph: offsets decrease at vertex %d (%d > %d)", v, c.voff[v], c.voff[v+1])
		}
		_, err := gzb.CheckList(c.listBytes(v), v, uint32(c.n), c.weighted)
		return fmt.Errorf("graph: vertex %d (list at byte %d): %w", v, c.voff[v], err)
	}
	if got := arcs.Load(); got != int64(c.m) {
		return fmt.Errorf("graph: degrees sum to %d, header says %d arcs", got, c.m)
	}
	return nil
}
