package graph

import (
	"slices"

	"pasgal/internal/parallel"
)

// RelabelByDegree returns an isomorphic copy of g with vertices
// renumbered in nonincreasing out-degree order (ties by original id, so
// the permutation is deterministic), plus the permutation applied:
// perm[old] = new.
//
// High-degree vertices land on the smallest ids, which is what makes
// the compressed representation earn its keep on power-law graphs: most
// arcs point at hubs, so after relabeling most encoded neighbor ids are
// small, most gaps between consecutive neighbors are small, and the
// varints shrink to one or two bytes. The same clustering helps plain
// scans too — hub adjacency stays hot in cache. Distances, components,
// and reachability on the relabeled graph equal the originals modulo
// the permutation.
func RelabelByDegree(g *Graph) (*Graph, []uint32) {
	n := g.N
	if n == 0 {
		return &Graph{N: 0, Offsets: []uint64{0}, Directed: g.Directed}, []uint32{}
	}
	maxDeg := g.MaxDegree()
	ids := make([]uint32, n)
	parallel.For(n, 0, func(v int) { ids[v] = uint32(v) })
	// Stable counting sort by descending degree: key maxDeg-deg keeps
	// equal-degree vertices in id order.
	order := parallel.CountSortByKey(ids, func(v uint32) uint64 {
		return uint64(maxDeg - g.Degree(v))
	}, uint64(maxDeg))
	perm := make([]uint32, n)
	parallel.For(n, 0, func(i int) { perm[order[i]] = uint32(i) })

	newDeg := make([]int64, n)
	parallel.For(n, 0, func(i int) { newDeg[i] = int64(g.Degree(order[i])) })
	total := parallel.Scan(newDeg)
	ng := &Graph{
		N:        n,
		Offsets:  make([]uint64, n+1),
		Edges:    make([]uint32, total),
		Directed: g.Directed,
	}
	weighted := g.Weighted()
	if weighted {
		ng.Weights = make([]uint32, total)
	}
	parallel.For(n, 0, func(i int) { ng.Offsets[i] = uint64(newDeg[i]) })
	ng.Offsets[n] = uint64(total)
	parallel.For(n, 16, func(i int) {
		u := order[i]
		lo := ng.Offsets[i]
		nbrs := g.Neighbors(u)
		out := ng.Edges[lo : lo+uint64(len(nbrs))]
		if !weighted {
			for j, w := range nbrs {
				out[j] = perm[w]
			}
			slices.Sort(out)
			return
		}
		// Weighted lists sort as packed (neighbor, weight) pairs so the
		// weights travel with their arcs; duplicate arcs order by weight,
		// which is deterministic and preserves the multiset.
		wts := g.NeighborWeights(u)
		packed := make([]uint64, len(nbrs))
		for j, w := range nbrs {
			packed[j] = uint64(perm[w])<<32 | uint64(wts[j])
		}
		slices.Sort(packed)
		wout := ng.Weights[lo : lo+uint64(len(nbrs))]
		for j, p := range packed {
			out[j] = uint32(p >> 32)
			wout[j] = uint32(p)
		}
	})
	return ng, perm
}
