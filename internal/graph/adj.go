package graph

// Adjacency is the representation seam between the plain CSR Graph,
// the byte-compressed Compressed variant, and the patched Overlay: the
// read-only facts every consumer needs before it picks a scan strategy.
// It deliberately does NOT abstract the adjacency scan itself —
// virtualizing the inner edge loop behind an interface call (or a
// generic instantiation, which Go's gcshape stenciling would collapse
// into the same dictionary-dispatched code for the pointer types) would
// cost the plain-CSR path its current codegen. Kernels instead
// type-switch on the concrete representations and keep a specialized
// loop body per representation; the unexported marker method seals the
// interface so that switch is exhaustive by construction.
//
// Every implementation is immutable once published: that is what makes
// lock-free concurrent queries, the lazy transpose caches, and epoch
// snapshots sound. Mutation happens elsewhere — internal/delta layers
// Overlay patches over an untouched base and compaction installs a
// brand-new Graph.
type Adjacency interface {
	// NumVertices returns the vertex count n.
	NumVertices() int
	// NumArcs returns the stored arc count (each undirected edge counts
	// twice).
	NumArcs() int
	// IsDirected reports whether arcs are one-directional.
	IsDirected() bool
	// HasWeights reports whether arcs carry weights.
	HasWeights() bool
	// DegreeOf returns the out-degree of v. Plain CSR answers from the
	// offset array; the compressed form decodes one varint.
	DegreeOf(v uint32) int

	// sealed restricts implementations to this package: kernels
	// type-switch over exactly {*Graph, *Compressed, *Overlay}.
	sealed()
}

// NumVertices implements Adjacency.
func (g *Graph) NumVertices() int { return g.N }

// NumArcs implements Adjacency.
func (g *Graph) NumArcs() int { return len(g.Edges) }

// IsDirected implements Adjacency.
func (g *Graph) IsDirected() bool { return g.Directed }

// HasWeights implements Adjacency.
func (g *Graph) HasWeights() bool { return g.Weighted() }

// DegreeOf implements Adjacency.
func (g *Graph) DegreeOf(v uint32) int { return g.Degree(v) }

func (g *Graph) sealed() {}

var (
	_ Adjacency = (*Graph)(nil)
	_ Adjacency = (*Compressed)(nil)
	_ Adjacency = (*Overlay)(nil)
)
