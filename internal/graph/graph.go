// Package graph provides the compressed-sparse-row graph representation
// shared by every algorithm in the library, together with parallel builders
// (edge list -> CSR), transforms (transpose, symmetrize), and statistics
// (including the sampled diameter estimates reported in the paper's
// Table 1).
//
// Vertices are uint32 ids in [0, N). Edge weights, when present, are uint32
// and stored parallel to the adjacency array. Adjacency lists are sorted and
// deduplicated, and self-loops are dropped by the builders; several
// algorithms (biconnectivity in particular) rely on these invariants.
package graph

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pasgal/internal/parallel"
)

// atomicAddInt64 is a shorthand for atomic.AddInt64 on a slice element.
func atomicAddInt64(p *int64, delta int64) int64 {
	return atomic.AddInt64(p, delta)
}

// None is the "no vertex" sentinel.
const None = ^uint32(0)

// InfDist is the "unreached" distance sentinel used by the traversal
// algorithms in this module tree.
const InfDist = ^uint32(0)

// Edge is a directed (or, in symmetric graphs, canonical) edge with an
// optional weight.
type Edge struct {
	U, V uint32
	W    uint32
}

// Graph is a CSR graph. For directed graphs, Edges holds out-neighbors;
// in-neighbors are available through Transpose. For undirected graphs every
// edge appears as two arcs and Transpose returns the graph itself.
type Graph struct {
	N        int
	Offsets  []uint64 // length N+1
	Edges    []uint32 // length M
	Weights  []uint32 // nil if unweighted, else length M
	Directed bool

	trOnce sync.Once
	tr     *Graph // cached transpose, built once under trOnce
}

// M returns the number of arcs (directed edges) stored.
func (g *Graph) M() int { return len(g.Edges) }

// UndirectedM returns the number of undirected edges in a symmetric graph
// (M/2). It panics on directed graphs.
func (g *Graph) UndirectedM() int {
	if g.Directed {
		panic("graph: UndirectedM on a directed graph")
	}
	return len(g.Edges) / 2
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbor slice of v (do not modify).
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v).
func (g *Graph) NeighborWeights(v uint32) []uint32 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

func (g *Graph) String() string {
	kind := "undirected"
	m := len(g.Edges) / 2
	if g.Directed {
		kind = "directed"
		m = len(g.Edges)
	}
	w := ""
	if g.Weighted() {
		w = " weighted"
	}
	return fmt.Sprintf("%s%s graph: n=%d m=%d", kind, w, g.N, m)
}

// BuildOptions controls FromEdges.
type BuildOptions struct {
	// Symmetrize adds the reverse of every edge and marks the graph
	// undirected.
	Symmetrize bool
	// KeepSelfLoops retains u->u edges (dropped by default).
	KeepSelfLoops bool
	// KeepDuplicates retains parallel edges (deduplicated by default; for
	// weighted graphs the copy with the smallest weight wins).
	KeepDuplicates bool
	// Weighted stores edge weights.
	Weighted bool
}

// FromEdges builds a CSR graph from an edge list in parallel: count degrees,
// scan offsets, scatter, then sort + dedup each adjacency list and compact.
func FromEdges(n int, edges []Edge, directed bool, opt BuildOptions) *Graph {
	if directed && opt.Symmetrize {
		panic("graph: Symmetrize requires directed=false")
	}
	arcs := edges
	if opt.Symmetrize || !directed {
		// Undirected: materialize both arcs.
		arcs = make([]Edge, 0, 2*len(edges))
		arcs = arcs[:2*len(edges)]
		parallel.For(len(edges), 0, func(i int) {
			arcs[2*i] = edges[i]
			arcs[2*i+1] = Edge{U: edges[i].V, V: edges[i].U, W: edges[i].W}
		})
	}

	// Degree count.
	deg := make([]int64, n)
	parallel.ForRange(len(arcs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs[i]
			if e.U >= uint32(n) || e.V >= uint32(n) {
				panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n))
			}
			if !opt.KeepSelfLoops && e.U == e.V {
				continue
			}
			atomicAddInt64(&deg[e.U], 1)
		}
	})
	offsets := make([]uint64, n+1)
	var running int64
	for v := 0; v < n; v++ {
		offsets[v] = uint64(running)
		running += deg[v]
	}
	offsets[n] = uint64(running)

	dst := make([]uint32, running)
	var wts []uint32
	if opt.Weighted {
		wts = make([]uint32, running)
	}
	cursor := make([]int64, n)
	parallel.Copy(cursor, offsetsToInt64(offsets[:n]))
	parallel.ForRange(len(arcs), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := arcs[i]
			if !opt.KeepSelfLoops && e.U == e.V {
				continue
			}
			at := atomicAddInt64(&cursor[e.U], 1) - 1
			dst[at] = e.V
			if wts != nil {
				wts[at] = e.W
			}
		}
	})

	g := &Graph{N: n, Offsets: offsets, Edges: dst, Weights: wts,
		Directed: directed && !opt.Symmetrize}
	g.sortAdjacency()
	if !opt.KeepDuplicates {
		g.dedup()
	}
	return g
}

func offsetsToInt64(off []uint64) []int64 {
	out := make([]int64, len(off))
	parallel.For(len(off), 0, func(i int) { out[i] = int64(off[i]) })
	return out
}

// sortAdjacency sorts each adjacency list (with weights permuted along).
func (g *Graph) sortAdjacency() {
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if hi-lo < 2 {
			return
		}
		adj := g.Edges[lo:hi]
		if g.Weights == nil {
			insertionSortU32(adj, nil)
		} else {
			insertionSortU32(adj, g.Weights[lo:hi])
		}
	})
}

// insertionSortU32 sorts adj ascending, permuting w alongside. Adjacency
// lists are short on the sparse graphs this library targets; for long lists
// it falls back to a simple binary-insertion-free heapsort-style approach is
// unnecessary — we shell sort to keep worst cases tame.
func insertionSortU32(adj []uint32, w []uint32) {
	// Shell sort with Ciura-ish gaps; O(n^(4/3))-ish, fine for adjacency
	// lists and allocation-free (important inside a parallel loop).
	n := len(adj)
	gaps := [...]int{57, 23, 10, 4, 1}
	for _, gap := range gaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			a := adj[i]
			var wi uint32
			if w != nil {
				wi = w[i]
			}
			j := i
			for j >= gap && adj[j-gap] > a {
				adj[j] = adj[j-gap]
				if w != nil {
					w[j] = w[j-gap]
				}
				j -= gap
			}
			adj[j] = a
			if w != nil {
				w[j] = wi
			}
		}
	}
}

// dedup removes duplicate neighbors (keeping the minimum weight) and
// rebuilds the CSR arrays compactly.
func (g *Graph) dedup() {
	newDeg := make([]int64, g.N)
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		var d int64
		var prev uint32 = None
		for i := lo; i < hi; i++ {
			if g.Edges[i] != prev {
				d++
				prev = g.Edges[i]
			}
		}
		newDeg[v] = d
	})
	total := parallel.Sum(g.N, func(v int) int64 { return newDeg[v] })
	if total == int64(len(g.Edges)) {
		return // nothing to do
	}
	newOff := make([]uint64, g.N+1)
	var running int64
	for v := 0; v < g.N; v++ {
		newOff[v] = uint64(running)
		running += newDeg[v]
	}
	newOff[g.N] = uint64(running)
	newEdges := make([]uint32, running)
	var newW []uint32
	if g.Weights != nil {
		newW = make([]uint32, running)
	}
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		at := newOff[v]
		var prev uint32 = None
		for i := lo; i < hi; i++ {
			if g.Edges[i] != prev {
				prev = g.Edges[i]
				newEdges[at] = prev
				if newW != nil {
					newW[at] = g.Weights[i]
				}
				at++
			} else if newW != nil && g.Weights[i] < newW[at-1] {
				newW[at-1] = g.Weights[i] // min weight wins
			}
		}
	})
	g.Offsets, g.Edges, g.Weights = newOff, newEdges, newW
}

// Transpose returns the reverse graph (in-neighbors). For undirected graphs
// it returns g itself. The result is cached.
func (g *Graph) Transpose() *Graph {
	if !g.Directed {
		return g
	}
	// Concurrent queries sharing one graph may all demand the transpose;
	// the Once makes the lazy build safe (and single) under contention.
	g.trOnce.Do(func() { g.tr = g.buildTranspose() })
	return g.tr
}

func (g *Graph) buildTranspose() *Graph {
	deg := make([]int64, g.N)
	parallel.ForRange(len(g.Edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomicAddInt64(&deg[g.Edges[i]], 1)
		}
	})
	off := make([]uint64, g.N+1)
	var running int64
	for v := 0; v < g.N; v++ {
		off[v] = uint64(running)
		running += deg[v]
	}
	off[g.N] = uint64(running)
	edges := make([]uint32, running)
	var wts []uint32
	if g.Weights != nil {
		wts = make([]uint32, running)
	}
	cursor := make([]int64, g.N)
	parallel.Copy(cursor, offsetsToInt64(off[:g.N]))
	parallel.For(g.N, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			v := g.Edges[i]
			at := atomicAddInt64(&cursor[v], 1) - 1
			edges[at] = uint32(u)
			if wts != nil {
				wts[at] = g.Weights[i]
			}
		}
	})
	tr := &Graph{N: g.N, Offsets: off, Edges: edges, Weights: wts, Directed: true}
	tr.sortAdjacency()
	// Point the transpose's own cache back at g so the round trip is
	// free; firing its Once here keeps a later tr.Transpose() from
	// rebuilding.
	tr.trOnce.Do(func() { tr.tr = g })
	return tr
}

// Symmetrized returns the undirected version of g (u~v iff u->v or v->u).
// For undirected graphs it returns g itself.
func (g *Graph) Symmetrized() *Graph {
	if !g.Directed {
		return g
	}
	edges := make([]Edge, len(g.Edges))
	parallel.For(g.N, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			var w uint32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			edges[i] = Edge{U: uint32(u), V: g.Edges[i], W: w}
		}
	})
	return FromEdges(g.N, edges, false, BuildOptions{
		Symmetrize: false, Weighted: g.Weights != nil,
	})
}

// ReverseArc returns the arc index of (v,u) given the arc index e of (u,v)
// in a symmetric deduplicated graph, using binary search in v's sorted
// adjacency list. Returns ^uint64(0) if absent.
func (g *Graph) ReverseArc(u uint32, e uint64) uint64 {
	v := g.Edges[e]
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Edges[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.Offsets[v+1] && g.Edges[lo] == u {
		return lo
	}
	return ^uint64(0)
}

// FindArc returns the arc index of edge (u,v), or ^uint64(0) if absent.
func (g *Graph) FindArc(u, v uint32) uint64 {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Edges[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.Offsets[u+1] && g.Edges[lo] == v {
		return lo
	}
	return ^uint64(0)
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	if g.N == 0 {
		return 0
	}
	return int(parallel.Max(g.N, func(v int) int64 {
		return int64(g.Offsets[v+1] - g.Offsets[v])
	}))
}

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.N)
}

// Validate checks structural invariants (monotone offsets, in-range
// neighbors, sorted adjacency). Used by tests and the IO layer.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != uint64(len(g.Edges)) {
		return fmt.Errorf("graph: offset endpoints invalid")
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: weights length mismatch")
	}
	var bad int64
	bad = parallel.Sum(g.N, func(v int) int64 {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if lo > hi || hi > uint64(len(g.Edges)) {
			return 1
		}
		for i := lo; i < hi; i++ {
			if g.Edges[i] >= uint32(g.N) {
				return 1
			}
			if i > lo && g.Edges[i-1] > g.Edges[i] {
				return 1
			}
		}
		return 0
	})
	if bad != 0 {
		return fmt.Errorf("graph: %d vertices with invalid adjacency", bad)
	}
	return nil
}

// IsSymmetric verifies that every arc has a reverse arc (expensive; test
// helper).
func (g *Graph) IsSymmetric() bool {
	bad := parallel.Sum(g.N, func(u int) int64 {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			if g.ReverseArc(uint32(u), i) == ^uint64(0) {
				return 1
			}
		}
		return 0
	})
	return bad == 0
}
