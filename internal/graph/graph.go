// Package graph provides the compressed-sparse-row graph representation
// shared by every algorithm in the library, together with parallel builders
// (edge list -> CSR), transforms (transpose, symmetrize), and statistics
// (including the sampled diameter estimates reported in the paper's
// Table 1).
//
// Vertices are uint32 ids in [0, N). Edge weights, when present, are uint32
// and stored parallel to the adjacency array. Adjacency lists are sorted and
// deduplicated, and self-loops are dropped by the builders; several
// algorithms (biconnectivity in particular) rely on these invariants.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"pasgal/internal/parallel"
)

// None is the "no vertex" sentinel.
const None = ^uint32(0)

// InfDist is the "unreached" distance sentinel used by the traversal
// algorithms in this module tree.
const InfDist = ^uint32(0)

// Edge is a directed (or, in symmetric graphs, canonical) edge with an
// optional weight.
type Edge struct {
	U, V uint32
	W    uint32
}

// Graph is a CSR graph. For directed graphs, Edges holds out-neighbors;
// in-neighbors are available through Transpose. For undirected graphs every
// edge appears as two arcs and Transpose returns the graph itself.
//
// A Graph is immutable once published to readers: concurrent queries,
// the lazily built transpose cached under trOnce, and the epoch
// snapshots in internal/delta all rely on the arrays never changing
// after construction. Code that needs a different arc set must build a
// new Graph (or layer an Overlay patch on top) — mutating Offsets,
// Edges, or Weights in place would race every reader and desynchronize
// any transpose already handed out.
type Graph struct {
	N        int
	Offsets  []uint64 // length N+1
	Edges    []uint32 // length M
	Weights  []uint32 // nil if unweighted, else length M
	Directed bool

	trOnce sync.Once
	tr     *Graph // cached transpose, built once under trOnce
}

// M returns the number of arcs (directed edges) stored.
func (g *Graph) M() int { return len(g.Edges) }

// UndirectedM returns the number of undirected edges in a symmetric graph
// (M/2). It panics on directed graphs.
func (g *Graph) UndirectedM() int {
	if g.Directed {
		panic("graph: UndirectedM on a directed graph")
	}
	return len(g.Edges) / 2
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the out-neighbor slice of v (do not modify).
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v).
func (g *Graph) NeighborWeights(v uint32) []uint32 {
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

func (g *Graph) String() string {
	kind := "undirected"
	m := len(g.Edges) / 2
	if g.Directed {
		kind = "directed"
		m = len(g.Edges)
	}
	w := ""
	if g.Weighted() {
		w = " weighted"
	}
	return fmt.Sprintf("%s%s graph: n=%d m=%d", kind, w, g.N, m)
}

// BuildOptions controls FromEdges.
type BuildOptions struct {
	// Symmetrize adds the reverse of every edge and marks the graph
	// undirected.
	Symmetrize bool
	// KeepSelfLoops retains u->u edges (dropped by default).
	KeepSelfLoops bool
	// KeepDuplicates retains parallel edges (deduplicated by default; for
	// weighted graphs the copy with the smallest weight wins).
	KeepDuplicates bool
	// Weighted stores edge weights.
	Weighted bool
}

// seqBuildArcs is the arc-count threshold below which the builders use the
// sequential count–scatter–shellsort path: the radix pipeline's scratch
// buffers and parallel launches don't pay for themselves on tiny inputs
// (unit-test graphs, induced subgraphs, contraction remnants).
const seqBuildArcs = 1 << 12

// smallVertexRadix is the vertex-count cutoff below which the parallel
// build fully sorts arcs by the packed (u,v) key: with so few vertices the
// key is narrow, so CountSortByKey finishes in at most three digit passes
// and the sorted arc array IS the adjacency array. Larger graphs use the
// bucketed pipeline instead, whose cost does not grow with the key width.
const smallVertexRadix = 1 << 12

// topBucketBits sizes the first-level partition of the bucketed build:
// arcs are grouped into about 2^topBucketBits contiguous source ranges, a
// fan-out small enough that the scatter's write streams stay cache- and
// TLB-resident.
const topBucketBits = 10

// packedBuildMaxVBits is the vertex-id width up to which a whole arc —
// source, destination, and weight — packs into one uint64
// (u<<48 | v<<32 | w), letting every build pass move 8-byte words instead
// of 12-byte Edge records. Larger graphs use the Edge-record pipeline.
const packedBuildMaxVBits = 16

// packArc packs an arc for the packed build path.
func packArc(u, v, w uint32) uint64 {
	return uint64(u)<<48 | uint64(v)<<32 | uint64(w)
}

// FromEdges builds a CSR graph from an edge list with a contention-free
// count–scan–scatter pipeline (see DESIGN.md, "Graph construction"): a
// stable radix partition groups arcs into source ranges, per-range local
// histograms place them (and yield the offsets), and an adaptive per-list
// sort orders each adjacency by destination. No hot loop performs an
// atomic operation, so build throughput is independent of degree skew.
// Inputs below seqBuildArcs arcs take a sequential small-graph path
// instead. The input slice is never modified.
func FromEdges(n int, edges []Edge, directed bool, opt BuildOptions) *Graph {
	if directed && opt.Symmetrize {
		panic("graph: Symmetrize requires directed=false")
	}
	undirected := opt.Symmetrize || !directed

	// One read-only sweep: bounds check plus self-loop census (so the
	// common loop-free case skips any filtering work entirely).
	selfLoops := parallel.Sum(len(edges), func(i int) int64 {
		e := edges[i]
		if e.U >= uint32(n) || e.V >= uint32(n) {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n))
		}
		if e.U == e.V {
			return 1
		}
		return 0
	})

	dropLoops := !opt.KeepSelfLoops && selfLoops > 0
	mEff := len(edges)
	if undirected {
		mEff *= 2
	}
	if n > smallVertexRadix && n <= 1<<packedBuildMaxVBits && mEff >= seqBuildArcs {
		// Vertex ids fit in 16 bits: pack each arc into one uint64 (the
		// undirected doubling fused into the packing pass) and run the
		// word-at-a-time pipeline.
		packed := make([]uint64, mEff)
		if undirected {
			parallel.For(len(edges), 0, func(i int) {
				e := edges[i]
				packed[2*i] = packArc(e.U, e.V, e.W)
				packed[2*i+1] = packArc(e.V, e.U, e.W)
			})
		} else {
			parallel.For(len(edges), 0, func(i int) {
				e := edges[i]
				packed[i] = packArc(e.U, e.V, e.W)
			})
		}
		return buildCSRPacked(n, packed, !undirected, opt, dropLoops, false)
	}

	arcs := edges
	if undirected {
		// Undirected: materialize both arcs.
		in := arcs
		arcs = make([]Edge, 2*len(in))
		parallel.For(len(in), 0, func(i int) {
			arcs[2*i] = in[i]
			arcs[2*i+1] = Edge{U: in[i].V, V: in[i].U, W: in[i].W}
		})
	}
	return buildCSR(n, arcs, !undirected, opt, dropLoops)
}

// buildCSR turns a prepared arc list (already symmetrized) into a CSR
// graph. arcs is read-only. dropLoops asks the builder to discard u->u
// arcs: the bucketed path folds the drop into its partition key (no extra
// pass), the small paths filter up front.
func buildCSR(n int, arcs []Edge, directed bool, opt BuildOptions, dropLoops bool) *Graph {
	if n > smallVertexRadix && len(arcs) >= seqBuildArcs {
		return buildCSRBuckets(n, arcs, directed, opt, dropLoops)
	}
	if dropLoops {
		in := arcs
		arcs = parallel.Pack(in, func(i int) bool { return in[i].U != in[i].V })
	}
	if len(arcs) < seqBuildArcs {
		return buildCSRSeq(n, arcs, directed, opt)
	}
	// Few vertices, many arcs (dense multigraphs, contraction quotients):
	// stably sort by the packed (u,v) key — at most ceil(2*vbits/8) digit
	// passes — so adjacency comes out grouped by u, sorted by v, duplicate
	// runs adjacent and in input order.
	vbits := uint(bits.Len(uint(n - 1)))
	maxKey := uint64(n-1)<<vbits | uint64(n-1)
	sorted := parallel.CountSortByKey(arcs, func(e Edge) uint64 {
		return uint64(e.U)<<vbits | uint64(e.V)
	}, maxKey)
	return csrFromSortedArcs(n, sorted, directed, opt)
}

// buildCSRBuckets is the large-graph builder: a two-level stable counting
// scatter followed by an adaptive per-list sort.
//
//  1. One PartitionByKey pass groups arcs by the topBucketBits high bits
//     of the source (self-loops, when dropped, route to a trash group
//     instead of costing a filter pass). ~1K write streams keep the
//     scatter cache-friendly where a direct by-source scatter (one stream
//     per vertex) would miss on every store.
//  2. Per bucket, a local histogram over that bucket's few hundred
//     sources — L1-resident — turns into offsets and cursors with one
//     tiny sequential scan, and the local scatter writes each arc to its
//     final CSR slot. Buckets own disjoint Offsets/Edges ranges, so all
//     stores are plain.
//  3. Each adjacency list is sorted by destination: already-sorted lists
//     (the transpose path's, by stability) cost one scan, short lists
//     shell sort in place, and hub lists take a linear LSD radix over
//     (v,w) packed into uint64 — the step that used to go superlinear on
//     power-law graphs. The duplicate census rides along in the same
//     pass, so dedup needs no extra sweep before its compaction.
//
// Both scatter levels are stable (chunk-ordered cursors, left-to-right
// walks), which is what lets the transpose path skip its sorts entirely.
func buildCSRBuckets(n int, arcs []Edge, directed bool, opt BuildOptions, dropLoops bool) *Graph {
	vbits := uint(bits.Len(uint(n - 1)))
	shift := vbits - topBucketBits // n > smallVertexRadix, so shift >= 3
	k := ((n - 1) >> shift) + 1
	key := func(e Edge) uint32 { return e.U >> shift }
	groups := k
	if dropLoops {
		groups = k + 1
		key = func(e Edge) uint32 {
			if e.U == e.V {
				return uint32(k) // trash group, past every real bucket
			}
			return e.U >> shift
		}
	}
	tmp := make([]Edge, len(arcs))
	topOff := parallel.PartitionByKey(tmp, arcs, groups, key)
	m := int(topOff[k]) // excludes the trash group

	g := &Graph{N: n, Directed: directed}
	g.Offsets = make([]uint64, n+1)
	g.Edges = make([]uint32, m)
	if opt.Weighted {
		g.Weights = make([]uint32, m)
	}
	span := 1 << shift
	parallel.For(k, 1, func(b int) {
		base, end := int(topOff[b]), int(topOff[b+1])
		lowU := b << shift
		localN := span
		if lowU+localN > n {
			localN = n - lowU
		}
		// Degrees from the bucket-local histogram; the exclusive scan
		// yields this source range's CSR offsets and scatter cursors in
		// one go. localN is a few hundred, so cur lives in L1.
		cur := make([]int64, localN)
		for i := base; i < end; i++ {
			cur[int(tmp[i].U)-lowU]++
		}
		run := int64(base)
		for j := 0; j < localN; j++ {
			c := cur[j]
			cur[j] = run
			g.Offsets[lowU+j] = uint64(run)
			run += c
		}
		for i := base; i < end; i++ {
			j := int(tmp[i].U) - lowU
			at := cur[j]
			cur[j]++
			g.Edges[at] = tmp[i].V
			if g.Weights != nil {
				g.Weights[at] = tmp[i].W
			}
		}
	})
	g.Offsets[n] = uint64(m)

	dedup := !opt.KeepDuplicates
	var newDeg []int64
	if dedup {
		newDeg = make([]int64, n)
	}
	parallel.For(n, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		adj := g.Edges[lo:hi]
		var w []uint32
		if g.Weights != nil {
			w = g.Weights[lo:hi]
		}
		sortAdjList(adj, w)
		if dedup {
			var d int64
			var prev = None
			for _, v := range adj {
				if v != prev {
					d++
					prev = v
				}
			}
			newDeg[u] = d
		}
	})
	if dedup {
		g.dedupCompact(newDeg)
	}
	return g
}

// buildCSRPacked is the uint64 variant of the bucketed build for graphs
// whose vertex ids fit in packedBuildMaxVBits bits: each arc travels as
// u<<48 | v<<32 | w, so the top-level partition and the in-bucket digit
// passes all move one machine word instead of a 12-byte Edge record. Per
// bucket, two stable LSD passes over the destination bits leave the
// segment sorted by v; the final digit pass — over the low source bits —
// then completes the (u,v) order, and is fused three ways: its histogram
// is the degree array, the histogram's prefix sums are this range's CSR
// offsets, and its scatter writes destinations and weights straight into
// their final slots. No arc is ever stored sorted in full; the CSR arrays
// are the sort's last pass.
//
// presorted marks arc streams already ordered by destination within each
// source (the transpose path: reversed arcs stream out in old-source
// order, which is the new destination). Those skip the destination passes
// and pay only the final grouping pass — partition stability guarantees
// the order survives.
func buildCSRPacked(n int, packed []uint64, directed bool, opt BuildOptions, dropLoops, presorted bool) *Graph {
	shift := packedBucketShift(n)
	k := ((n - 1) >> shift) + 1
	tmp := make([]uint64, len(packed))
	var topOff []int64
	if dropLoops {
		// Self-loops route to a trash group past every real bucket, so the
		// drop costs nothing beyond this keyed (rather than bit-field)
		// partition.
		topOff = parallel.PartitionByKey(tmp, packed, k+1, func(x uint64) uint32 {
			u := uint32(x >> 48)
			if u == uint32(x>>32)&0xffff {
				return uint32(k)
			}
			return u >> shift
		})
	} else {
		topOff = parallel.PartitionByBits(tmp, packed, k, 48+shift)
	}
	return csrFromPackedBuckets(n, shift, tmp, topOff, directed, opt, presorted)
}

// packedBucketShift returns the source shift that buckets a packed build
// into at most 2^topBucketBits source ranges. n > smallVertexRadix on
// every packed route, so the shift is at least 3.
func packedBucketShift(n int) uint {
	return uint(bits.Len(uint(n-1))) - topBucketBits
}

// csrFromPackedBuckets finalizes a packed build whose arcs have already
// been partitioned into source buckets: tmp[topOff[b]:topOff[b+1]] holds
// bucket b's arcs (source ids in [b<<shift, (b+1)<<shift)), in input order.
// Anything past topOff[k] (the dropped-self-loop trash group) is ignored.
func csrFromPackedBuckets(n int, shift uint, tmp []uint64, topOff []int64, directed bool, opt BuildOptions, presorted bool) *Graph {
	k := ((n - 1) >> shift) + 1
	m := int(topOff[k]) // excludes the trash group

	g := &Graph{N: n, Directed: directed}
	g.Offsets = make([]uint64, n+1)
	g.Edges = make([]uint32, m)
	if opt.Weighted {
		g.Weights = make([]uint32, m)
	}
	span := 1 << shift
	parallel.For(k, 1, func(b int) {
		base, end := int(topOff[b]), int(topOff[b+1])
		lowU := b << shift
		localN := span
		if lowU+localN > n {
			localN = n - lowU
		}
		seg := tmp[base:end]
		if !presorted && len(seg) > 1 {
			// Two stable passes over the 16 destination bits, L2-resident
			// for typical bucket sizes.
			scratch := make([]uint64, len(seg))
			radixPassU64(scratch, seg, 32)
			radixPassU64(seg, scratch, 40)
		}
		cur := make([]int64, localN)
		for _, x := range seg {
			cur[int(x>>48)-lowU]++
		}
		run := int64(base)
		for j := 0; j < localN; j++ {
			c := cur[j]
			cur[j] = run
			g.Offsets[lowU+j] = uint64(run)
			run += c
		}
		for _, x := range seg {
			j := int(x>>48) - lowU
			at := cur[j]
			cur[j]++
			g.Edges[at] = uint32(x>>32) & 0xffff
			if g.Weights != nil {
				g.Weights[at] = uint32(x)
			}
		}
	})
	g.Offsets[n] = uint64(m)
	if !opt.KeepDuplicates {
		g.dedup()
	}
	return g
}

// radixPassU64 is one stable 8-bit counting pass of an LSD radix sort.
func radixPassU64(dst, src []uint64, shift uint) {
	var hist [257]int
	for _, x := range src {
		hist[((x>>shift)&0xff)+1]++
	}
	for d := 0; d < 256; d++ {
		hist[d+1] += hist[d]
	}
	for _, x := range src {
		d := (x >> shift) & 0xff
		dst[hist[d]] = x
		hist[d]++
	}
}

// sortAdjList sorts one adjacency list ascending by destination, permuting
// weights alongside. Already-sorted input costs one scan; short lists use
// the allocation-free shell sort; longer ones (hub lists of skewed graphs)
// use a linear radix sort.
func sortAdjList(adj, w []uint32) {
	n := len(adj)
	if n < 2 {
		return
	}
	sorted := true
	for i := 1; i < n; i++ {
		if adj[i-1] > adj[i] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if n <= 48 {
		shellSortU32(adj, w)
		return
	}
	radixSortAdj(adj, w)
}

// radixSortAdj sorts a long adjacency list with a sequential LSD radix
// over (v,w) packed into uint64. The weight rides in the low half of the
// word, so it permutes along for free; the digit passes only cover the
// destination bits (relative order among equal-destination duplicates is
// unspecified, as everywhere in the builders).
func radixSortAdj(adj, w []uint32) {
	n := len(adj)
	buf := make([]uint64, n)
	var maxV uint32
	for i, v := range adj {
		if v > maxV {
			maxV = v
		}
		buf[i] = uint64(v) << 32
		if w != nil {
			buf[i] |= uint64(w[i])
		}
	}
	tmp := make([]uint64, n)
	for shift := uint(32); shift < 64; shift += 8 {
		if maxV>>(shift-32) == 0 {
			break
		}
		var hist [257]int
		for _, x := range buf {
			hist[((x>>shift)&0xff)+1]++
		}
		for d := 0; d < 256; d++ {
			hist[d+1] += hist[d]
		}
		for _, x := range buf {
			d := (x >> shift) & 0xff
			tmp[hist[d]] = x
			hist[d]++
		}
		buf, tmp = tmp, buf
	}
	for i, x := range buf {
		adj[i] = uint32(x >> 32)
		if w != nil {
			w[i] = uint32(x)
		}
	}
}

// csrFromSortedArcs finalizes a CSR graph from arcs sorted by (source,
// destination): offsets come from the sorted-order boundaries, and when
// deduplicating, the compaction fuses duplicate removal, min-weight
// selection, and the Edges/Weights scatter into one pass over a PackIndex
// of the run heads.
func csrFromSortedArcs(n int, arcs []Edge, directed bool, opt BuildOptions) *Graph {
	m := len(arcs)
	dedup := !opt.KeepDuplicates
	var kept []uint32
	if dedup {
		kept = parallel.PackIndex(m, func(i int) bool {
			return i == 0 || arcs[i].U != arcs[i-1].U || arcs[i].V != arcs[i-1].V
		})
		if len(kept) == m {
			dedup = false // duplicate-free already: skip the indirection
			kept = nil
		}
	}
	var edges, wts []uint32
	var offsets []uint64
	if !dedup {
		edges = make([]uint32, m)
		if opt.Weighted {
			wts = make([]uint32, m)
		}
		parallel.ForRange(m, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				edges[i] = arcs[i].V
				if wts != nil {
					wts[i] = arcs[i].W
				}
			}
		})
		offsets = offsetsFromSorted(n, m, func(i int) uint32 { return arcs[i].U })
	} else {
		k := len(kept)
		edges = make([]uint32, k)
		if opt.Weighted {
			wts = make([]uint32, k)
		}
		parallel.ForRange(k, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := int(kept[i])
				edges[i] = arcs[j].V
				if wts != nil {
					// Min weight over the duplicate run wins; the stable
					// sort made the run adjacent, starting at its head j.
					u, v, w := arcs[j].U, arcs[j].V, arcs[j].W
					for t := j + 1; t < m && arcs[t].U == u && arcs[t].V == v; t++ {
						if arcs[t].W < w {
							w = arcs[t].W
						}
					}
					wts[i] = w
				}
			}
		})
		offsets = offsetsFromSorted(n, k, func(i int) uint32 { return arcs[kept[i]].U })
	}
	return &Graph{N: n, Offsets: offsets, Edges: edges, Weights: wts, Directed: directed}
}

// offsetsFromSorted computes CSR offsets for k arcs sorted by source
// (uAt(i) = source of arc i): offsets[v] = first arc index whose source is
// >= v. Each boundary between consecutive distinct sources fills the
// (prev, u] gap, so all writes are disjoint and the pass needs no atomics;
// indices up to and including uAt(0) keep the zero from make.
func offsetsFromSorted(n, k int, uAt func(i int) uint32) []uint64 {
	offsets := make([]uint64, n+1)
	if k == 0 {
		return offsets
	}
	parallel.ForRange(k, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 {
				continue
			}
			u := uAt(i)
			if prev := uAt(i - 1); prev != u {
				for v := prev + 1; v <= u; v++ {
					offsets[v] = uint64(i)
				}
			}
		}
	})
	last := int(uAt(k - 1))
	parallel.For(n-last, 0, func(i int) {
		offsets[last+1+i] = uint64(k)
	})
	return offsets
}

// buildCSRSeq is the small-input builder: single-threaded counting scatter,
// shell-sorted adjacency lists, then the dedup compaction. It does no
// synchronization at all — below seqBuildArcs arcs that beats any parallel
// plan.
func buildCSRSeq(n int, arcs []Edge, directed bool, opt BuildOptions) *Graph {
	deg := make([]int64, n)
	for _, e := range arcs {
		deg[e.U]++
	}
	offsets := make([]uint64, n+1)
	var running uint64
	for v := 0; v < n; v++ {
		offsets[v] = running
		running += uint64(deg[v])
	}
	offsets[n] = running
	edges := make([]uint32, running)
	var wts []uint32
	if opt.Weighted {
		wts = make([]uint32, running)
	}
	cursor := deg // reuse as the next-write positions
	for v := 0; v < n; v++ {
		cursor[v] = int64(offsets[v])
	}
	for _, e := range arcs {
		at := cursor[e.U]
		cursor[e.U]++
		edges[at] = e.V
		if wts != nil {
			wts[at] = e.W
		}
	}
	g := &Graph{N: n, Offsets: offsets, Edges: edges, Weights: wts, Directed: directed}
	g.sortAdjacency()
	if !opt.KeepDuplicates {
		g.dedup()
	}
	return g
}

// sortAdjacency sorts each adjacency list (with weights permuted along).
// Only the sequential small-graph path needs it; the parallel builds emit
// sorted lists via the packed-key sort or sortAdjList.
func (g *Graph) sortAdjacency() {
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if hi-lo < 2 {
			return
		}
		adj := g.Edges[lo:hi]
		if g.Weights == nil {
			shellSortU32(adj, nil)
		} else {
			shellSortU32(adj, g.Weights[lo:hi])
		}
	})
}

// shellSortU32 sorts adj ascending, permuting w alongside. It is the
// short-list fallback: allocation-free (important inside a parallel loop)
// and fast while the list fits in cache. Long lists — where its
// O(n^(4/3))-ish cost used to dominate skewed builds — go to radixSortAdj
// instead.
func shellSortU32(adj []uint32, w []uint32) {
	// Shell sort with Ciura-ish gaps.
	n := len(adj)
	gaps := [...]int{57, 23, 10, 4, 1}
	for _, gap := range gaps {
		if gap >= n {
			continue
		}
		for i := gap; i < n; i++ {
			a := adj[i]
			var wi uint32
			if w != nil {
				wi = w[i]
			}
			j := i
			for j >= gap && adj[j-gap] > a {
				adj[j] = adj[j-gap]
				if w != nil {
					w[j] = w[j-gap]
				}
				j -= gap
			}
			adj[j] = a
			if w != nil {
				w[j] = wi
			}
		}
	}
}

// dedup removes duplicate neighbors (keeping the minimum weight) and
// rebuilds the CSR arrays compactly. The bucketed build fuses the census
// into its sort pass and calls dedupCompact directly; the packed-key radix
// path fuses the whole thing into csrFromSortedArcs; only the sequential
// small-graph path still needs this standalone sweep.
func (g *Graph) dedup() {
	newDeg := make([]int64, g.N)
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		var d int64
		var prev uint32 = None
		for i := lo; i < hi; i++ {
			if g.Edges[i] != prev {
				d++
				prev = g.Edges[i]
			}
		}
		newDeg[v] = d
	})
	g.dedupCompact(newDeg)
}

// dedupCompact rewrites the CSR arrays keeping newDeg[v] distinct
// neighbors per vertex (minimum weight winning among duplicates).
// newDeg is consumed: the exclusive scan turns it into the new offsets.
func (g *Graph) dedupCompact(newDeg []int64) {
	total := parallel.Scan(newDeg)
	if total == int64(len(g.Edges)) {
		return // nothing to do
	}
	newOff := make([]uint64, g.N+1)
	parallel.For(g.N, 0, func(v int) { newOff[v] = uint64(newDeg[v]) })
	newOff[g.N] = uint64(total)
	newEdges := make([]uint32, total)
	var newW []uint32
	if g.Weights != nil {
		newW = make([]uint32, total)
	}
	parallel.For(g.N, 64, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		at := newOff[v]
		var prev uint32 = None
		for i := lo; i < hi; i++ {
			if g.Edges[i] != prev {
				prev = g.Edges[i]
				newEdges[at] = prev
				if newW != nil {
					newW[at] = g.Weights[i]
				}
				at++
			} else if newW != nil && g.Weights[i] < newW[at-1] {
				newW[at-1] = g.Weights[i] // min weight wins
			}
		}
	})
	g.Offsets, g.Edges, g.Weights = newOff, newEdges, newW
}

// Transpose returns the reverse graph (in-neighbors). For undirected graphs
// it returns g itself. The result is cached.
func (g *Graph) Transpose() *Graph {
	if !g.Directed {
		return g
	}
	// Concurrent queries sharing one graph may all demand the transpose;
	// the Once makes the lazy build safe (and single) under contention.
	g.trOnce.Do(func() { g.tr = g.buildTranspose() })
	return g.tr
}

func (g *Graph) buildTranspose() *Graph {
	// Materialize the reversed arcs and run them through the same
	// contention-free radix pipeline as FromEdges. A built graph's arc set
	// is already filtered the way its BuildOptions asked for, so the
	// transpose preserves it verbatim: keep self-loops and duplicates,
	// carry weights along, no dedup pass. Reversed arcs stream out in
	// old-source order — already sorted by the new destination — so the
	// stable pipeline is told to skip its destination passes (presorted).
	trOpt := BuildOptions{
		Weighted:       g.Weights != nil,
		KeepSelfLoops:  true,
		KeepDuplicates: true,
	}
	if g.N > smallVertexRadix && g.N <= 1<<packedBuildMaxVBits && len(g.Edges) >= seqBuildArcs {
		tr := g.transposePacked(trOpt)
		tr.trOnce.Do(func() { tr.tr = g })
		return tr
	}
	arcs := make([]Edge, len(g.Edges))
	parallel.For(g.N, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			var w uint32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			arcs[i] = Edge{U: g.Edges[i], V: uint32(u), W: w}
		}
	})
	tr := buildCSR(g.N, arcs, true, trOpt, false)
	// Point the transpose's own cache back at g so the round trip is
	// free; firing its Once here keeps a later tr.Transpose() from
	// rebuilding.
	tr.trOnce.Do(func() { tr.tr = g })
	return tr
}

// transposePacked builds the reverse graph through the packed bucket
// pipeline, with the reversed-arc materialization fused into the top-level
// partition: the count pass histograms g.Edges in place (4-byte sequential
// reads, no closure), and the scatter packs each reversed arc the moment
// it lands in its bucket — the arc array that FromEdges has to materialize
// never exists here. ScanChunkCursors supplies the stable cursors between
// the two passes. Reversed arcs stream out in old-source order, which is
// the new destination, so the bucket finisher runs in presorted mode and
// skips its destination passes.
func (g *Graph) transposePacked(opt BuildOptions) *Graph {
	m := len(g.Edges)
	shift := packedBucketShift(g.N)
	k := ((g.N - 1) >> shift) + 1
	p := parallel.Workers()
	maxChunks := 8 * p
	grain := (m + maxChunks - 1) / maxChunks
	if grain < 1 {
		grain = 1
	}
	chunks := (m + grain - 1) / grain
	counts := make([]int64, chunks*k)
	col := make([]int64, chunks*k)
	topOff := make([]int64, k+1)
	parallel.For(chunks, 1, func(c int) {
		lo, hi := c*grain, (c+1)*grain
		if hi > m {
			hi = m
		}
		h := counts[c*k : c*k+k]
		for _, v := range g.Edges[lo:hi] {
			h[v>>shift]++
		}
	})
	parallel.ScanChunkCursors(counts, col, chunks, k, topOff)
	tmp := make([]uint64, m)
	parallel.For(chunks, 1, func(c int) {
		lo, hi := c*grain, (c+1)*grain
		if hi > m {
			hi = m
		}
		h := counts[c*k : c*k+k]
		// Locate the chunk's first source, then walk offsets alongside the
		// arcs so each reversed arc packs with its source attached.
		u := uint32(sort.Search(g.N, func(v int) bool { return g.Offsets[v+1] > uint64(lo) }))
		for i := lo; i < hi; i++ {
			for uint64(i) >= g.Offsets[u+1] {
				u++
			}
			v := g.Edges[i]
			var w uint32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			d := v >> shift
			tmp[h[d]] = packArc(v, u, w)
			h[d]++
		}
	})
	return csrFromPackedBuckets(g.N, shift, tmp, topOff, true, opt, true)
}

// Symmetrized returns the undirected version of g (u~v iff u->v or v->u).
// For undirected graphs it returns g itself.
func (g *Graph) Symmetrized() *Graph {
	if !g.Directed {
		return g
	}
	edges := make([]Edge, len(g.Edges))
	parallel.For(g.N, 64, func(u int) {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			var w uint32
			if g.Weights != nil {
				w = g.Weights[i]
			}
			edges[i] = Edge{U: uint32(u), V: g.Edges[i], W: w}
		}
	})
	return FromEdges(g.N, edges, false, BuildOptions{
		Symmetrize: false, Weighted: g.Weights != nil,
	})
}

// ReverseArc returns the arc index of (v,u) given the arc index e of (u,v)
// in a symmetric deduplicated graph, using binary search in v's sorted
// adjacency list. Returns ^uint64(0) if absent.
func (g *Graph) ReverseArc(u uint32, e uint64) uint64 {
	v := g.Edges[e]
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Edges[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.Offsets[v+1] && g.Edges[lo] == u {
		return lo
	}
	return ^uint64(0)
}

// FindArc returns the arc index of edge (u,v), or ^uint64(0) if absent.
func (g *Graph) FindArc(u, v uint32) uint64 {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Edges[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.Offsets[u+1] && g.Edges[lo] == v {
		return lo
	}
	return ^uint64(0)
}

// MaxDegree returns the largest out-degree.
func (g *Graph) MaxDegree() int {
	if g.N == 0 {
		return 0
	}
	return int(parallel.Max(g.N, func(v int) int64 {
		return int64(g.Offsets[v+1] - g.Offsets[v])
	}))
}

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.N)
}

// Validate checks structural invariants (monotone offsets, in-range
// neighbors, sorted adjacency). Used by tests and the IO layer.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != uint64(len(g.Edges)) {
		return fmt.Errorf("graph: offset endpoints invalid")
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graph: weights length mismatch")
	}
	var bad int64
	bad = parallel.Sum(g.N, func(v int) int64 {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if lo > hi || hi > uint64(len(g.Edges)) {
			return 1
		}
		for i := lo; i < hi; i++ {
			if g.Edges[i] >= uint32(g.N) {
				return 1
			}
			if i > lo && g.Edges[i-1] > g.Edges[i] {
				return 1
			}
		}
		return 0
	})
	if bad != 0 {
		return fmt.Errorf("graph: %d vertices with invalid adjacency", bad)
	}
	return nil
}

// IsSymmetric verifies that every arc has a reverse arc (expensive; test
// helper).
func (g *Graph) IsSymmetric() bool {
	bad := parallel.Sum(g.N, func(u int) int64 {
		lo, hi := g.Offsets[u], g.Offsets[u+1]
		for i := lo; i < hi; i++ {
			if g.ReverseArc(uint32(u), i) == ^uint64(0) {
				return 1
			}
		}
		return 0
	})
	return bad == 0
}
