package graph

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"pasgal/internal/parallel"
)

// Benchmark inputs: a uniform-random edge list and a power-law one whose
// source ids pile up on the low vertices (f^4 skew, matching the hub-heavy
// degree distributions the radix build path is designed for).

const (
	benchN = 1 << 16
	benchM = 1 << 20
)

func benchEdges(powlaw bool) []Edge {
	rng := rand.New(rand.NewPCG(42, 17))
	edges := make([]Edge, benchM)
	for i := range edges {
		var u uint32
		if powlaw {
			f := rng.Float64()
			f = f * f * f * f
			u = uint32(f * float64(benchN-1))
		} else {
			u = uint32(rng.IntN(benchN))
		}
		edges[i] = Edge{U: u, V: uint32(rng.IntN(benchN)), W: 1 + rng.Uint32N(1<<16)}
	}
	return edges
}

func benchWorkerCounts() []int {
	return []int{1, 8}
}

func BenchmarkFromEdges(b *testing.B) {
	for _, shape := range []struct {
		name   string
		powlaw bool
	}{{"uniform", false}, {"powlaw", true}} {
		edges := benchEdges(shape.powlaw)
		for _, p := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/p%d", shape.name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				b.SetBytes(int64(len(edges)) * 12)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := FromEdges(benchN, edges, true, BuildOptions{Weighted: true})
					if g.N != benchN {
						b.Fatal("bad graph")
					}
				}
			})
		}
	}
}

func BenchmarkTranspose(b *testing.B) {
	for _, shape := range []struct {
		name   string
		powlaw bool
	}{{"uniform", false}, {"powlaw", true}} {
		g := FromEdges(benchN, benchEdges(shape.powlaw), true, BuildOptions{Weighted: true})
		for _, p := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/p%d", shape.name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				b.SetBytes(int64(g.M()) * 12)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Call the builder directly: Transpose() memoizes via
					// trOnce, which would time the work exactly once.
					tr := g.buildTranspose()
					if tr.M() != g.M() {
						b.Fatal("bad transpose")
					}
				}
			})
		}
	}
}

func BenchmarkSymmetrized(b *testing.B) {
	for _, shape := range []struct {
		name   string
		powlaw bool
	}{{"uniform", false}, {"powlaw", true}} {
		edges := benchEdges(shape.powlaw)
		for _, p := range benchWorkerCounts() {
			b.Run(fmt.Sprintf("%s/p%d", shape.name, p), func(b *testing.B) {
				old := parallel.SetWorkers(p)
				defer parallel.SetWorkers(old)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := FromEdges(benchN, edges, false, BuildOptions{Weighted: true, Symmetrize: true})
					if g.Directed {
						b.Fatal("bad graph")
					}
				}
			})
		}
	}
}
