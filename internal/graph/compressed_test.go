package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// randomGraph builds a random directed or undirected graph through
// FromEdges, optionally weighted, optionally with self-loops/duplicates
// kept.
func randomGraph(t *testing.T, n, m int, directed, weighted, degenerate bool, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: uint32(rng.Intn(n)),
			V: uint32(rng.Intn(n)),
			W: uint32(rng.Intn(1000) + 1),
		}
	}
	opt := BuildOptions{Weighted: weighted, KeepSelfLoops: degenerate, KeepDuplicates: degenerate}
	g := FromEdges(n, edges, directed, opt)
	if err := g.Validate(); err != nil {
		t.Fatalf("random graph invalid: %v", err)
	}
	return g
}

func graphsEqual(t *testing.T, name string, a, b *Graph) {
	t.Helper()
	if a.N != b.N || a.Directed != b.Directed || a.Weighted() != b.Weighted() {
		t.Fatalf("%s: shape mismatch (n %d/%d, directed %v/%v, weighted %v/%v)",
			name, a.N, b.N, a.Directed, b.Directed, a.Weighted(), b.Weighted())
	}
	for v := 0; v <= a.N; v++ {
		if a.Offsets[v] != b.Offsets[v] {
			t.Fatalf("%s: offsets[%d] = %d, want %d", name, v, b.Offsets[v], a.Offsets[v])
		}
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: edges[%d] = %d, want %d", name, i, b.Edges[i], a.Edges[i])
		}
		if a.Weighted() && a.Weights[i] != b.Weights[i] {
			t.Fatalf("%s: weights[%d] = %d, want %d", name, i, b.Weights[i], a.Weights[i])
		}
	}
}

func TestCompressRoundTrip(t *testing.T) {
	cases := []struct {
		name                           string
		n, m                           int
		directed, weighted, degenerate bool
	}{
		{name: "small-dir", n: 50, m: 300, directed: true},
		{name: "small-undir", n: 50, m: 300},
		{name: "weighted-dir", n: 80, m: 500, directed: true, weighted: true},
		{name: "weighted-undir", n: 80, m: 500, weighted: true},
		{name: "degenerate", n: 40, m: 400, directed: true, degenerate: true},
		{name: "weighted-degenerate", n: 40, m: 400, weighted: true, degenerate: true},
		{name: "sparse", n: 5000, m: 800, directed: true},
		{name: "single", n: 1, m: 0},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGraph(t, tc.n, tc.m, tc.directed, tc.weighted, tc.degenerate, int64(100+i))
			c := Compress(g)
			if err := c.Validate(); err != nil {
				t.Fatalf("compressed graph invalid: %v", err)
			}
			if c.NumVertices() != g.N || c.NumArcs() != len(g.Edges) ||
				c.IsDirected() != g.Directed || c.HasWeights() != g.Weighted() {
				t.Fatalf("header mismatch: %v vs %v", c, g)
			}
			graphsEqual(t, tc.name, g, c.Decompress())

			// Per-vertex APIs agree with the plain representation.
			var buf []uint32
			for v := uint32(0); int(v) < g.N; v++ {
				if c.DegreeOf(v) != g.Degree(v) {
					t.Fatalf("DegreeOf(%d) = %d, want %d", v, c.DegreeOf(v), g.Degree(v))
				}
				buf = c.AppendNeighbors(v, buf[:0])
				want := g.Neighbors(v)
				if len(buf) != len(want) {
					t.Fatalf("AppendNeighbors(%d): %d arcs, want %d", v, len(buf), len(want))
				}
				it := c.Arcs(v)
				for j, w := range want {
					if buf[j] != w {
						t.Fatalf("AppendNeighbors(%d)[%d] = %d, want %d", v, j, buf[j], w)
					}
					if g.Weighted() {
						nb, wt, ok := it.NextW()
						if !ok || nb != w || wt != g.NeighborWeights(v)[j] {
							t.Fatalf("Arcs(%d).NextW()[%d] = (%d,%d,%v), want (%d,%d,true)",
								v, j, nb, wt, ok, w, g.NeighborWeights(v)[j])
						}
					} else {
						nb, ok := it.Next()
						if !ok || nb != w {
							t.Fatalf("Arcs(%d).Next()[%d] = (%d,%v), want (%d,true)", v, j, nb, ok, w)
						}
					}
				}
				if _, ok := it.Next(); ok {
					t.Fatalf("Arcs(%d): cursor yields past the degree", v)
				}
			}
		})
	}
}

// TestCompressedCursorSkipsWeights pins that Next (neighbor-only) still
// advances correctly over interleaved weights.
func TestCompressedCursorSkipsWeights(t *testing.T) {
	g := randomGraph(t, 60, 400, true, true, false, 9)
	c := Compress(g)
	for v := uint32(0); int(v) < g.N; v++ {
		it := c.Arcs(v)
		for _, w := range g.Neighbors(v) {
			nb, ok := it.Next()
			if !ok || nb != w {
				t.Fatalf("weighted skip at vertex %d: got (%d,%v), want (%d,true)", v, nb, ok, w)
			}
		}
	}
}

func TestCompressedTranspose(t *testing.T) {
	g := randomGraph(t, 70, 500, true, true, false, 11)
	c := Compress(g)
	tr := c.Transpose()
	graphsEqual(t, "transpose", g.Transpose(), tr.Decompress())
	if c.Transpose() != tr {
		t.Fatal("transpose is not cached")
	}
	if tr.Transpose() != c {
		t.Fatal("transpose of the transpose is not the original")
	}
	und := Compress(randomGraph(t, 30, 100, false, false, false, 12))
	if und.Transpose() != und {
		t.Fatal("undirected transpose is not the graph itself")
	}
}

func TestCompressedValidateRejects(t *testing.T) {
	g := randomGraph(t, 40, 300, true, false, false, 13)
	c := Compress(g)

	corrupt := func(mutate func(voff []uint64, data []byte) (int, int)) (*Compressed, string) {
		voff := append([]uint64{}, c.voff...)
		data := append([]byte{}, c.data...)
		n, m := mutate(voff, data)
		return &Compressed{n: n, m: m, directed: true, voff: voff, data: data}, ""
	}

	cases := []struct {
		name string
		bad  *Compressed
		want string
	}{}
	b1, _ := corrupt(func(voff []uint64, data []byte) (int, int) {
		voff[10], voff[11] = voff[11], voff[10] // decreasing offsets
		return c.n, c.m
	})
	cases = append(cases, struct {
		name string
		bad  *Compressed
		want string
	}{"decreasing-offsets", b1, "vertex"})
	b2, _ := corrupt(func(voff []uint64, data []byte) (int, int) {
		data[voff[5]] = 0xff // unterminated degree varint for vertex 5
		return c.n, c.m
	})
	cases = append(cases, struct {
		name string
		bad  *Compressed
		want string
	}{"corrupt-list", b2, "vertex 5"})
	b3, _ := corrupt(func(voff []uint64, data []byte) (int, int) {
		return c.n, c.m + 3 // header lies about the arc count
	})
	cases = append(cases, struct {
		name string
		bad  *Compressed
		want string
	}{"arc-count-lie", b3, "degrees sum"})

	for _, tc := range cases {
		err := tc.bad.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNewCompressedStructuralChecks(t *testing.T) {
	g := randomGraph(t, 20, 80, true, false, false, 14)
	c := Compress(g)
	if _, err := NewCompressed(c.n, c.m, true, false, c.voff, c.data); err != nil {
		t.Fatalf("valid parts rejected: %v", err)
	}
	if _, err := NewCompressed(c.n, c.m, true, false, c.voff[:c.n], c.data); err == nil {
		t.Fatal("short offset array accepted")
	}
	if _, err := NewCompressed(c.n, c.m, true, false, c.voff, c.data[:len(c.data)-1]); err == nil {
		t.Fatal("truncated data accepted")
	}
	if _, err := NewCompressed(-1, 0, true, false, nil, nil); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestRelabelByDegree(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(t, 200, 3000, true, weighted, false, 15)
		rg, perm := RelabelByDegree(g)
		if err := rg.Validate(); err != nil {
			t.Fatalf("weighted=%v: relabeled graph invalid: %v", weighted, err)
		}
		// perm is a bijection.
		seen := make([]bool, g.N)
		for _, p := range perm {
			if seen[p] {
				t.Fatalf("weighted=%v: perm maps two vertices to %d", weighted, p)
			}
			seen[p] = true
		}
		// Degrees are nonincreasing in the new order.
		for v := 1; v < rg.N; v++ {
			if rg.Degree(uint32(v)) > rg.Degree(uint32(v-1)) {
				t.Fatalf("weighted=%v: degree rises at %d (%d > %d)",
					weighted, v, rg.Degree(uint32(v)), rg.Degree(uint32(v-1)))
			}
		}
		// Every original arc appears exactly once under the permutation:
		// map each original list and compare as sorted multisets.
		for u := uint32(0); int(u) < g.N; u++ {
			want := append([]uint32{}, g.Neighbors(u)...)
			for i := range want {
				want[i] = perm[want[i]]
			}
			got := append([]uint32{}, rg.Neighbors(perm[u])...)
			if len(got) != len(want) {
				t.Fatalf("weighted=%v: vertex %d degree %d, want %d", weighted, u, len(got), len(want))
			}
			sortU32(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("weighted=%v: vertex %d arc %d: %d, want %d", weighted, u, i, got[i], want[i])
				}
			}
		}
		if weighted {
			// Weight multiset per vertex survives.
			for u := uint32(0); int(u) < g.N; u++ {
				want := append([]uint32{}, g.NeighborWeights(u)...)
				got := append([]uint32{}, rg.NeighborWeights(perm[u])...)
				sortU32(want)
				sortU32(got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("vertex %d weight multiset differs", u)
					}
				}
			}
		}
	}
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestRelabelEmpty pins the n=0 edge case.
func TestRelabelEmpty(t *testing.T) {
	g := &Graph{N: 0, Offsets: []uint64{0}, Directed: true}
	rg, perm := RelabelByDegree(g)
	if rg.N != 0 || len(perm) != 0 {
		t.Fatalf("empty relabel: n=%d perm=%d", rg.N, len(perm))
	}
	c := Compress(g)
	if err := c.Validate(); err != nil {
		t.Fatalf("empty compressed invalid: %v", err)
	}
	if c.Decompress().N != 0 {
		t.Fatal("empty decompress broke")
	}
}
