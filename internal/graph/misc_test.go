package graph

import (
	"strings"
	"testing"
)

func TestString(t *testing.T) {
	g := FromEdges(3, []Edge{{U: 0, V: 1}}, true, BuildOptions{})
	if got := g.String(); !strings.Contains(got, "directed graph: n=3 m=1") {
		t.Fatalf("String() = %q", got)
	}
	ug := FromEdges(3, []Edge{{U: 0, V: 1, W: 2}}, false, BuildOptions{Weighted: true})
	got := ug.String()
	if !strings.Contains(got, "undirected weighted graph: n=3 m=1") {
		t.Fatalf("String() = %q", got)
	}
}

func TestUndirectedMPanicsOnDirected(t *testing.T) {
	g := FromEdges(2, []Edge{{U: 0, V: 1}}, true, BuildOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.UndirectedM()
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Graph {
		return FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, false, BuildOptions{})
	}
	// Baseline valid.
	if err := mk().Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong offsets length.
	g := mk()
	g.Offsets = g.Offsets[:3]
	if g.Validate() == nil {
		t.Fatal("short offsets accepted")
	}
	// Non-monotone offsets.
	g = mk()
	g.Offsets[1], g.Offsets[2] = g.Offsets[2]+1, g.Offsets[1]
	if g.Validate() == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	// Endpoint invariant broken.
	g = mk()
	g.Offsets[g.N] = 99
	if g.Validate() == nil {
		t.Fatal("bad final offset accepted")
	}
	// Out-of-range neighbor.
	g = mk()
	g.Edges[0] = 99
	if g.Validate() == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
	// Unsorted adjacency.
	g = mk()
	lo, hi := g.Offsets[1], g.Offsets[2]
	if hi-lo >= 2 {
		g.Edges[lo], g.Edges[lo+1] = g.Edges[lo+1], g.Edges[lo]
		if g.Validate() == nil {
			t.Fatal("unsorted adjacency accepted")
		}
	}
	// Weight length mismatch.
	g = mk()
	g.Weights = make([]uint32, 1)
	if g.Validate() == nil {
		t.Fatal("weight mismatch accepted")
	}
}
