package graph

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"pasgal/internal/parallel"
)

// This file pins the radix-partitioned build pipeline against a retained,
// deliberately naive reference builder across the full BuildOptions matrix
// and a set of adversarial shapes. The reference shares no code with the
// production pipeline: per-vertex append lists, sort.SliceStable, map-free
// linear dedup.

type refArc struct{ v, w uint32 }

// referenceAdjacency computes, sequentially and obviously, the per-vertex
// adjacency (sorted by destination; deduplicated with min weight unless
// KeepDuplicates) that FromEdges must produce.
func referenceAdjacency(n int, edges []Edge, directed bool, opt BuildOptions) [][]refArc {
	adj := make([][]refArc, n)
	add := func(u, v, w uint32) {
		if !opt.KeepSelfLoops && u == v {
			return
		}
		adj[u] = append(adj[u], refArc{v, w})
	}
	for _, e := range edges {
		add(e.U, e.V, e.W)
		if opt.Symmetrize || !directed {
			add(e.V, e.U, e.W)
		}
	}
	for u := range adj {
		l := adj[u]
		sort.SliceStable(l, func(i, j int) bool { return l[i].v < l[j].v })
		if !opt.KeepDuplicates {
			out := l[:0]
			for _, a := range l {
				if len(out) > 0 && out[len(out)-1].v == a.v {
					if a.w < out[len(out)-1].w {
						out[len(out)-1].w = a.w // min weight wins
					}
					continue
				}
				out = append(out, a)
			}
			adj[u] = out
		}
	}
	return adj
}

// canonical returns a vertex's (v,w) pairs in a comparison-stable order.
// Adjacency is sorted by destination; the relative order of equal-(u,v)
// duplicates' weights is unspecified (the small-input path shell-sorts,
// which is not stable), so ties are broken by weight on both sides. With
// unweighted graphs weights are ignored entirely.
func canonical(arcs []refArc, weighted bool) []refArc {
	out := append([]refArc(nil), arcs...)
	if !weighted {
		for i := range out {
			out[i].w = 0
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v < out[j].v
		}
		return out[i].w < out[j].w
	})
	return out
}

func graphAdjacency(g *Graph, u uint32) []refArc {
	nbs := g.Neighbors(u)
	out := make([]refArc, len(nbs))
	for i, v := range nbs {
		out[i] = refArc{v: v}
		if g.Weighted() {
			out[i].w = g.NeighborWeights(u)[i]
		}
	}
	return out
}

func checkAgainstReference(t *testing.T, label string, n int, edges []Edge, directed bool, opt BuildOptions) {
	t.Helper()
	inputCopy := append([]Edge(nil), edges...)
	g := FromEdges(n, edges, directed, opt)
	for i := range edges {
		if edges[i] != inputCopy[i] {
			t.Fatalf("%s: FromEdges modified its input at %d", label, i)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if wantDirected := directed && !opt.Symmetrize; g.Directed != wantDirected {
		t.Fatalf("%s: Directed=%v, want %v", label, g.Directed, wantDirected)
	}
	if (g.Weights != nil) != opt.Weighted {
		t.Fatalf("%s: weights presence %v, want %v", label, g.Weights != nil, opt.Weighted)
	}
	ref := referenceAdjacency(n, edges, directed, opt)
	for u := 0; u < n; u++ {
		want := canonical(ref[u], opt.Weighted)
		got := canonical(graphAdjacency(g, uint32(u)), opt.Weighted)
		if len(want) != len(got) {
			t.Fatalf("%s: vertex %d degree %d, want %d", label, u, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: vertex %d arc %d = %+v, want %+v", label, u, i, got[i], want[i])
			}
		}
	}
	if g.Directed {
		checkTransposeAgainst(t, label, g)
	}
}

// checkTransposeAgainst verifies that Transpose holds exactly the reversed
// arc multiset of g, weights riding along.
func checkTransposeAgainst(t *testing.T, label string, g *Graph) {
	t.Helper()
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s transpose: %v", label, err)
	}
	if tr.M() != g.M() {
		t.Fatalf("%s transpose: M=%d, want %d", label, tr.M(), g.M())
	}
	fwd := arcMultiset(g, false)
	rev := arcMultiset(tr, true)
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("%s transpose: arc %d = %v, want %v", label, i, rev[i], fwd[i])
		}
	}
}

type arcTriple struct{ u, v, w uint32 }

func arcMultiset(g *Graph, reversed bool) []arcTriple {
	out := make([]arcTriple, 0, g.M())
	for u := uint32(0); int(u) < g.N; u++ {
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			a := arcTriple{u: u, v: g.Edges[i]}
			if reversed {
				a.u, a.v = a.v, a.u
			}
			if g.Weighted() {
				a.w = g.Weights[i]
			}
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].u != out[j].u {
			return out[i].u < out[j].u
		}
		if out[i].v != out[j].v {
			return out[i].v < out[j].v
		}
		return out[i].w < out[j].w
	})
	return out
}

// diffShape is one adversarial input shape for the differential sweep.
type diffShape struct {
	name  string
	n     int
	edges []Edge
}

func differentialShapes() []diffShape {
	rng := rand.New(rand.NewPCG(2024, 8))
	shapes := []diffShape{
		{name: "empty", n: 0},
		{name: "isolated", n: 7},
		{name: "single-self-loop", n: 1, edges: []Edge{{0, 0, 5}, {0, 0, 2}, {0, 0, 9}}},
	}
	// All self-loops.
	loops := make([]Edge, 200)
	for i := range loops {
		u := uint32(rng.IntN(50))
		loops[i] = Edge{U: u, V: u, W: rng.Uint32N(100)}
	}
	shapes = append(shapes, diffShape{name: "all-self-loops", n: 50, edges: loops})
	// Star out of / into a hub: the maximally skewed degree distribution.
	starOut := make([]Edge, 6000)
	starIn := make([]Edge, 6000)
	for i := range starOut {
		leaf := uint32(1 + rng.IntN(1999))
		starOut[i] = Edge{U: 0, V: leaf, W: rng.Uint32N(100)}
		starIn[i] = Edge{U: leaf, V: 0, W: rng.Uint32N(100)}
	}
	shapes = append(shapes,
		diffShape{name: "star-out", n: 2000, edges: starOut},
		diffShape{name: "star-in", n: 2000, edges: starIn})
	// Duplicate-heavy multigraph over a tiny vertex set.
	dups := make([]Edge, 8000)
	for i := range dups {
		dups[i] = Edge{U: uint32(rng.IntN(40)), V: uint32(rng.IntN(40)), W: rng.Uint32N(16)}
	}
	shapes = append(shapes, diffShape{name: "duplicate-heavy", n: 40, edges: dups})
	// Power-law-ish skew: source density piles up on the low ids.
	pow := make([]Edge, 20000)
	for i := range pow {
		f := rng.Float64()
		f = f * f * f * f
		pow[i] = Edge{
			U: uint32(f * 4095),
			V: uint32(rng.IntN(4096)),
			W: rng.Uint32N(1000),
		}
	}
	shapes = append(shapes, diffShape{name: "power-law", n: 4096, edges: pow})
	// Uniform random, sized to cross the radix-path threshold.
	uni := make([]Edge, 9000)
	for i := range uni {
		uni[i] = Edge{U: uint32(rng.IntN(3000)), V: uint32(rng.IntN(3000)), W: rng.Uint32N(1000)}
	}
	shapes = append(shapes, diffShape{name: "uniform", n: 3000, edges: uni})
	// Many vertices: these two cross smallVertexRadix and exercise the
	// bucketed pipelines — packed-route fits its ids in 16 bits (the
	// uint64-word path), bucket-route does not (the Edge-record path).
	// Self-loops are mixed in so the trash-group drop runs on both.
	for _, big := range []struct {
		name string
		n    int
	}{{"packed-route", 9000}, {"bucket-route", 70000}} {
		es := make([]Edge, 24000)
		for i := range es {
			u := uint32(rng.IntN(big.n))
			v := uint32(rng.IntN(big.n))
			if i%97 == 0 {
				v = u // sprinkle self-loops
			}
			if i%11 == 0 {
				u = uint32(rng.IntN(5)) // a few hub sources for long lists
			}
			es[i] = Edge{U: u, V: v, W: rng.Uint32N(1000)}
		}
		shapes = append(shapes, diffShape{name: big.name, n: big.n, edges: es})
	}
	// Tiny inputs that stay on the sequential small-graph path.
	tiny := make([]Edge, 25)
	for i := range tiny {
		tiny[i] = Edge{U: uint32(rng.IntN(10)), V: uint32(rng.IntN(10)), W: rng.Uint32N(9)}
	}
	shapes = append(shapes, diffShape{name: "tiny", n: 10, edges: tiny})
	path := make([]Edge, 63)
	for i := range path {
		path[i] = Edge{U: uint32(i), V: uint32(i + 1), W: uint32(i)}
	}
	shapes = append(shapes, diffShape{name: "path", n: 64, edges: path})
	return shapes
}

// TestBuildDifferential sweeps every shape through the full BuildOptions
// matrix (directedness x Symmetrize x Weighted x KeepSelfLoops x
// KeepDuplicates) against the reference builder.
func TestBuildDifferential(t *testing.T) {
	for _, shape := range differentialShapes() {
		for _, dir := range []struct {
			directed   bool
			symmetrize bool
		}{{true, false}, {false, false}, {false, true}} {
			for _, weighted := range []bool{false, true} {
				for _, keepLoops := range []bool{false, true} {
					for _, keepDups := range []bool{false, true} {
						opt := BuildOptions{
							Symmetrize:     dir.symmetrize,
							Weighted:       weighted,
							KeepSelfLoops:  keepLoops,
							KeepDuplicates: keepDups,
						}
						label := fmt.Sprintf("%s/dir=%v/sym=%v/w=%v/loops=%v/dups=%v",
							shape.name, dir.directed, dir.symmetrize, weighted, keepLoops, keepDups)
						checkAgainstReference(t, label, shape.n, shape.edges, dir.directed, opt)
					}
				}
			}
		}
	}
}

// TestBuildDifferentialParallelPath repeats the sweep's biggest shapes with
// a forced multi-worker team so the chunked count–scan–scatter paths run
// with real chunk counts even on small CI machines.
func TestBuildDifferentialParallelPath(t *testing.T) {
	old := parallel.SetWorkers(8)
	defer parallel.SetWorkers(old)
	for _, shape := range differentialShapes() {
		if len(shape.edges) < 5000 {
			continue
		}
		for _, keepDups := range []bool{false, true} {
			opt := BuildOptions{Weighted: true, KeepDuplicates: keepDups}
			label := fmt.Sprintf("p8/%s/dups=%v", shape.name, keepDups)
			checkAgainstReference(t, label, shape.n, shape.edges, true, opt)
			checkAgainstReference(t, label+"/undirected", shape.n, shape.edges, false, opt)
		}
	}
}
