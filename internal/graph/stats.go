package graph

import (
	"math/rand/v2"
)

// Stats summarizes a graph the way the paper's Table 1 does: vertex count,
// arc count (m' for directed, m for the symmetrized view), and sampled
// diameter lower bounds D' (directed) and D (undirected/symmetrized).
type Stats struct {
	N          int
	MDirected  int // m' — arcs in the directed graph (0 if undirected)
	MSymmetric int // m — arcs in the undirected/symmetrized graph
	DiamLB     int // D — sampled diameter lower bound, symmetrized
	DiamLBDir  int // D' — sampled diameter lower bound, directed (0 if undirected)
	MaxDeg     int
	AvgDeg     float64
}

// bfsEcc runs a simple sequential BFS from src over g and returns the
// eccentricity observed (max finite hop distance) and the farthest vertex.
// It is intentionally self-contained so the graph package has no dependency
// on the algorithm packages built on top of it.
func bfsEcc(g *Graph, src uint32, dist []uint32, queue []uint32) (int, uint32) {
	for i := range dist {
		dist[i] = InfDist
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, src)
	far := src
	ecc := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == InfDist {
				dist[v] = du + 1
				if int(dist[v]) > ecc {
					ecc = int(dist[v])
					far = v
				}
				queue = append(queue, v)
			}
		}
	}
	return ecc, far
}

// EstimateDiameter returns a diameter lower bound obtained by `samples`
// double-sweep BFS runs (pick a vertex, BFS to the farthest vertex, BFS
// again from there — the classic heuristic; the paper's Table 1 numbers are
// likewise sampled lower bounds).
func EstimateDiameter(g *Graph, samples int, seed uint64) int {
	if g.N == 0 {
		return 0
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	dist := make([]uint32, g.N)
	queue := make([]uint32, 0, g.N)
	best := 0
	for s := 0; s < samples; s++ {
		// Sample a non-isolated source (isolated vertices report
		// eccentricity 0 and waste the sweep); give up after a few tries
		// on edgeless graphs.
		src := uint32(rng.IntN(g.N))
		for try := 0; try < 32 && g.Degree(src) == 0; try++ {
			src = uint32(rng.IntN(g.N))
		}
		ecc, far := bfsEcc(g, src, dist, queue)
		// Second sweep from the farthest vertex.
		ecc2, _ := bfsEcc(g, far, dist, queue)
		if ecc > best {
			best = ecc
		}
		if ecc2 > best {
			best = ecc2
		}
	}
	return best
}

// ComputeStats gathers the Table 1 row for g. diamSamples <= 0 skips the
// (BFS-heavy) diameter estimation.
func ComputeStats(g *Graph, diamSamples int, seed uint64) Stats {
	st := Stats{
		N:      g.N,
		MaxDeg: g.MaxDegree(),
		AvgDeg: g.AvgDegree(),
	}
	if g.Directed {
		st.MDirected = len(g.Edges)
		sym := g.Symmetrized()
		st.MSymmetric = len(sym.Edges)
		if diamSamples > 0 {
			st.DiamLBDir = EstimateDiameter(g, diamSamples, seed)
			st.DiamLB = EstimateDiameter(sym, diamSamples, seed)
		}
	} else {
		st.MSymmetric = len(g.Edges)
		if diamSamples > 0 {
			st.DiamLB = EstimateDiameter(g, diamSamples, seed)
		}
	}
	return st
}
