package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildPatch turns per-vertex add/del maps into the CSR-shaped patch
// arrays NewOverlay expects.
func buildPatch(n int, adds map[uint32][]Edge, dels map[uint32][]uint32, weighted bool) ([]uint64, []uint32, []uint32, []uint64, []uint32) {
	addOff := make([]uint64, n+1)
	delOff := make([]uint64, n+1)
	var addDst, addW, delDst []uint32
	for v := 0; v < n; v++ {
		addOff[v] = uint64(len(addDst))
		for _, e := range adds[uint32(v)] {
			addDst = append(addDst, e.V)
			if weighted {
				addW = append(addW, e.W)
			}
		}
		delOff[v] = uint64(len(delDst))
		delDst = append(delDst, dels[uint32(v)]...)
	}
	addOff[n] = uint64(len(addDst))
	delOff[n] = uint64(len(delDst))
	if weighted && addW == nil {
		addW = make([]uint32, 0)
	}
	return addOff, addDst, addW, delOff, delDst
}

func TestOverlayScansAndMaterialize(t *testing.T) {
	// Base: directed path 0->1->2->3 plus 0->2, weighted.
	base := FromEdges(5, []Edge{
		{0, 1, 10}, {1, 2, 20}, {2, 3, 30}, {0, 2, 40},
	}, true, BuildOptions{Weighted: true})

	// Patch: delete 1->2, add 1->3 (w 7), add 3->0 (w 9), and change
	// the weight of 0->2 to 41 (tombstone + add).
	addOff, adds, addW, delOff, dels := buildPatch(5,
		map[uint32][]Edge{1: {{1, 3, 7}}, 3: {{3, 0, 9}}, 0: {{0, 2, 41}}},
		map[uint32][]uint32{1: {2}, 0: {2}},
		true)
	o := NewOverlay(base, addOff, adds, addW, delOff, dels)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}

	if got, want := o.NumArcs(), 5; got != want {
		t.Fatalf("NumArcs = %d, want %d", got, want)
	}
	wantAdj := map[uint32][]uint32{0: {1, 2}, 1: {3}, 2: {3}, 3: {0}, 4: {}}
	wantW := map[uint32][]uint32{0: {10, 41}, 1: {7}, 2: {30}, 3: {9}, 4: {}}
	for v := uint32(0); v < 5; v++ {
		nbrs := o.AppendNeighbors(v, nil)
		if !reflect.DeepEqual(append([]uint32{}, nbrs...), append([]uint32{}, wantAdj[v]...)) {
			t.Fatalf("AppendNeighbors(%d) = %v, want %v", v, nbrs, wantAdj[v])
		}
		if got := o.DegreeOf(v); got != len(wantAdj[v]) {
			t.Fatalf("DegreeOf(%d) = %d, want %d", v, got, len(wantAdj[v]))
		}
		an, aw := o.AppendArcs(v, nil, nil)
		if !reflect.DeepEqual(append([]uint32{}, an...), append([]uint32{}, wantAdj[v]...)) ||
			!reflect.DeepEqual(append([]uint32{}, aw...), append([]uint32{}, wantW[v]...)) {
			t.Fatalf("AppendArcs(%d) = %v/%v, want %v/%v", v, an, aw, wantAdj[v], wantW[v])
		}
	}
	if !o.HasArc(1, 3) || o.HasArc(1, 2) || !o.HasArc(0, 2) || o.HasArc(4, 0) {
		t.Fatal("HasArc answers wrong")
	}

	mat := o.Materialize()
	if err := mat.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 5; v++ {
		if !reflect.DeepEqual(append([]uint32{}, mat.Neighbors(v)...), append([]uint32{}, wantAdj[v]...)) {
			t.Fatalf("materialized Neighbors(%d) = %v, want %v", v, mat.Neighbors(v), wantAdj[v])
		}
	}

	// Rebuild from the collected arc list: must match the materialized CSR.
	re := FromEdges(5, o.Arcs(), true, BuildOptions{Weighted: true})
	if !reflect.DeepEqual(re.Edges, mat.Edges) || !reflect.DeepEqual(re.Weights, mat.Weights) {
		t.Fatalf("FromEdges(Arcs()) disagrees with Materialize")
	}
}

func TestOverlayTranspose(t *testing.T) {
	base := FromEdges(4, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}, true, BuildOptions{})
	addOff, adds, addW, delOff, dels := buildPatch(4,
		map[uint32][]Edge{3: {{3, 1, 0}}},
		map[uint32][]uint32{2: {0}},
		false)
	o := NewOverlay(base, addOff, adds, addW, delOff, dels)
	tr := o.Transpose()
	if tr != o.Transpose() {
		t.Fatal("transpose not cached")
	}
	if tr.Transpose() != o {
		t.Fatal("transpose round trip not free")
	}
	want := o.Materialize().Transpose()
	got := tr.Materialize()
	if !reflect.DeepEqual(got.Offsets, want.Offsets) || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("transpose overlay = %v, want %v", got.Edges, want.Edges)
	}
}

func TestOverlayUndirectedSelfTranspose(t *testing.T) {
	base := FromEdges(3, []Edge{{0, 1, 0}}, false, BuildOptions{})
	o := EmptyOverlay(base)
	if o.Transpose() != o {
		t.Fatal("undirected overlay must be its own transpose")
	}
	if got := o.AppendNeighbors(0, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty overlay scan = %v", got)
	}
}

// TestOverlayFromEdits pins the convenience constructor's batch
// semantics against a from-scratch rebuild of the edited edge set.
func TestOverlayFromEdits(t *testing.T) {
	for _, tc := range []struct {
		name     string
		directed bool
		weighted bool
	}{
		{"undirected", false, false},
		{"directed", true, false},
		{"directed-weighted", true, true},
		{"undirected-weighted", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			n := 60
			present := map[[2]uint32]uint32{}
			var edges []Edge
			for i := 0; i < 4*n; i++ {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				if u == v {
					continue
				}
				if _, dup := present[[2]uint32{u, v}]; dup {
					continue
				}
				w := uint32(0)
				if tc.weighted {
					w = 1 + uint32(rng.Intn(99))
				}
				present[[2]uint32{u, v}] = w
				if !tc.directed {
					present[[2]uint32{v, u}] = w
				}
				edges = append(edges, Edge{U: u, V: v, W: w})
			}
			base := FromEdges(n, edges, tc.directed, BuildOptions{Weighted: tc.weighted})

			// Edits: delete some base edges, add fresh ones, change a
			// weight, and throw in every no-op class the contract names.
			var dels, adds []Edge
			want := map[[2]uint32]uint32{}
			for k, w := range present {
				want[k] = w
			}
			removed := 0
			for _, e := range edges {
				if removed >= len(edges)/4 {
					break
				}
				removed++
				dels = append(dels, Edge{U: e.U, V: e.V})
				delete(want, [2]uint32{e.U, e.V})
				if !tc.directed {
					delete(want, [2]uint32{e.V, e.U})
				}
			}
			for i := 0; i < n; i++ {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				if u == v {
					continue
				}
				if _, live := want[[2]uint32{u, v}]; live {
					continue
				}
				w := uint32(0)
				if tc.weighted {
					w = 1 + uint32(rng.Intn(99))
				}
				adds = append(adds, Edge{U: u, V: v, W: w})
				want[[2]uint32{u, v}] = w
				if !tc.directed {
					want[[2]uint32{v, u}] = w
				}
			}
			if tc.weighted {
				// A pure weight change on a surviving base edge.
				for _, e := range edges[len(edges)-1:] {
					if _, live := want[[2]uint32{e.U, e.V}]; live {
						adds = append(adds, Edge{U: e.U, V: e.V, W: e.W + 1})
						want[[2]uint32{e.U, e.V}] = e.W + 1
						if !tc.directed {
							want[[2]uint32{e.V, e.U}] = e.W + 1
						}
					}
				}
			}
			// No-ops: self-loop, out-of-range, delete of an absent edge,
			// re-add of an identical live arc.
			adds = append(adds, Edge{U: 3, V: 3}, Edge{U: uint32(n), V: 0})
			dels = append(dels, Edge{U: uint32(n + 1), V: 2})
			if len(edges) > 0 {
				if w, live := want[[2]uint32{edges[0].U, edges[0].V}]; live || w != 0 {
					adds = append(adds, Edge{U: edges[0].U, V: edges[0].V, W: w})
				}
				dels = append(dels, Edge{U: edges[0].U, V: edges[0].U})
			}

			o := OverlayFromEdits(base, dels, adds)
			if err := o.Validate(); err != nil {
				t.Fatal(err)
			}
			var wantEdges []Edge
			for k, w := range want {
				if tc.directed || k[0] < k[1] {
					wantEdges = append(wantEdges, Edge{U: k[0], V: k[1], W: w})
				}
			}
			ref := FromEdges(n, wantEdges, tc.directed, BuildOptions{Weighted: tc.weighted})
			got := o.Materialize()
			if !reflect.DeepEqual(ref.Offsets, got.Offsets) || !reflect.DeepEqual(ref.Edges, got.Edges) {
				t.Fatal("OverlayFromEdits disagrees with rebuild")
			}
			if tc.weighted && !reflect.DeepEqual(ref.Weights, got.Weights) {
				t.Fatal("OverlayFromEdits weights disagree with rebuild")
			}
		})
	}
}

func TestOverlayRandomizedAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(40)
		directed := trial%2 == 0
		present := map[[2]uint32]bool{}
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if u == v || present[[2]uint32{u, v}] {
				continue
			}
			present[[2]uint32{u, v}] = true
			if !directed {
				present[[2]uint32{v, u}] = true
			}
			edges = append(edges, Edge{U: u, V: v})
		}
		base := FromEdges(n, edges, directed, BuildOptions{})

		// Random patch: tombstone some base arcs, add some absent arcs.
		dels := map[uint32][]uint32{}
		adds := map[uint32][]Edge{}
		effective := map[[2]uint32]bool{}
		for k := range present {
			effective[k] = true
		}
		for u := 0; u < n; u++ {
			for _, v := range base.Neighbors(uint32(u)) {
				if rng.Intn(4) == 0 && (directed || uint32(u) < v) {
					dels[uint32(u)] = append(dels[uint32(u)], v)
					delete(effective, [2]uint32{uint32(u), v})
					if !directed {
						dels[v] = append(dels[v], uint32(u))
						delete(effective, [2]uint32{v, uint32(u)})
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if u == v || present[[2]uint32{u, v}] || effective[[2]uint32{u, v}] {
				continue
			}
			adds[u] = append(adds[u], Edge{U: u, V: v})
			effective[[2]uint32{u, v}] = true
			if !directed {
				adds[v] = append(adds[v], Edge{U: v, V: u})
				effective[[2]uint32{v, u}] = true
			}
		}
		for u := range adds {
			list := adds[u]
			for i := 1; i < len(list); i++ {
				for j := i; j > 0 && list[j-1].V > list[j].V; j-- {
					list[j-1], list[j] = list[j], list[j-1]
				}
			}
			// Drop within-list duplicates from repeated random picks.
			out := list[:0]
			for i, e := range list {
				if i == 0 || e.V != list[i-1].V {
					out = append(out, e)
				}
			}
			adds[u] = out
		}
		for u := range dels {
			list := dels[u]
			for i := 1; i < len(list); i++ {
				for j := i; j > 0 && list[j-1] > list[j]; j-- {
					list[j-1], list[j] = list[j], list[j-1]
				}
			}
			dels[u] = list
		}

		addOff, addDst, addW, delOff, delDst := buildPatch(n, adds, dels, false)
		o := NewOverlay(base, addOff, addDst, addW, delOff, delDst)
		if err := o.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var want []Edge
		for k := range effective {
			if directed || k[0] < k[1] {
				want = append(want, Edge{U: k[0], V: k[1]})
			}
		}
		ref := FromEdges(n, want, directed, BuildOptions{})
		got := o.Materialize()
		if !reflect.DeepEqual(ref.Offsets, got.Offsets) || !reflect.DeepEqual(ref.Edges, got.Edges) {
			t.Fatalf("trial %d: materialized overlay disagrees with rebuild", trial)
		}
		if directed {
			rt, gt := ref.Transpose(), o.Transpose().Materialize()
			if !reflect.DeepEqual(rt.Offsets, gt.Offsets) || !reflect.DeepEqual(rt.Edges, gt.Edges) {
				t.Fatalf("trial %d: overlay transpose disagrees with rebuild transpose", trial)
			}
		}
	}
}

// TestOverlayAccessors pins the Adjacency surface of the overlay view:
// sizes, direction, weights, patched degrees, and the debug string, on
// directed/undirected and weighted/unweighted bases.
func TestOverlayAccessors(t *testing.T) {
	dbase := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, true, BuildOptions{})
	d := OverlayFromEdits(dbase, []Edge{{U: 1, V: 2}}, []Edge{{U: 0, V: 4}, {U: 3, V: 0}})
	if d.Base() != dbase {
		t.Fatal("Base must return the wrapped graph")
	}
	if d.PatchArcs() != 3 {
		t.Fatalf("PatchArcs = %d, want 3 (2 adds + 1 tombstone)", d.PatchArcs())
	}
	if d.NumVertices() != 5 || d.NumArcs() != 4 || !d.IsDirected() || d.HasWeights() {
		t.Fatalf("surface: n=%d m=%d dir=%v w=%v", d.NumVertices(), d.NumArcs(), d.IsDirected(), d.HasWeights())
	}
	if got := d.DegreeOf(1); got != 0 {
		t.Fatalf("DegreeOf(1) = %d, want 0 after tombstone", got)
	}
	if got := d.String(); got != "overlay directed graph: n=5 m=4 (+2/-1 patch arcs)" {
		t.Fatalf("String() = %q", got)
	}
	d.sealed() // the seam marker is inert by construction

	ubase := FromEdges(4, []Edge{{U: 0, V: 1, W: 7}, {U: 1, V: 2, W: 9}}, false, BuildOptions{Weighted: true})
	u := OverlayFromEdits(ubase, nil, []Edge{{U: 2, V: 3, W: 5}})
	if u.IsDirected() || !u.HasWeights() || u.NumArcs() != 6 {
		t.Fatalf("surface: dir=%v w=%v m=%d", u.IsDirected(), u.HasWeights(), u.NumArcs())
	}
	if got := u.String(); got != "overlay undirected weighted graph: n=4 m=3 (+2/-0 patch arcs)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestNewOverlayPanics pins the constructor preconditions: weight-array
// presence must match the base, and patch offsets must have N+1 entries.
func TestNewOverlayPanics(t *testing.T) {
	base := FromEdges(3, []Edge{{U: 0, V: 1}}, true, BuildOptions{})
	off := make([]uint64, base.N+1)
	for name, call := range map[string]func(){
		"weights-on-unweighted": func() { NewOverlay(base, off, nil, []uint32{}, off, nil) },
		"short-add-offsets":     func() { NewOverlay(base, off[:2], nil, nil, off, nil) },
		"short-del-offsets":     func() { NewOverlay(base, off, nil, nil, off[:1], nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

// TestOverlayValidateErrors drives every invariant Validate enforces by
// corrupting one captured patch array at a time.
func TestOverlayValidateErrors(t *testing.T) {
	base := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}, true, BuildOptions{})
	off := func(vals ...uint64) []uint64 { return vals }
	for name, o := range map[string]*Overlay{
		"bad-off-len":      {base: base, addOff: off(0, 0), delOff: off(0, 0, 0, 0, 0)},
		"add-span":         {base: base, addOff: off(0, 0, 0, 0, 1), delOff: off(0, 0, 0, 0, 0)},
		"del-span":         {base: base, addOff: off(0, 0, 0, 0, 0), delOff: off(0, 0, 0, 0, 3)},
		"weight-mismatch":  {base: base, addOff: off(0, 0, 0, 0, 0), delOff: off(0, 0, 0, 0, 0), addW: []uint32{1}},
		"decreasing-off":   {base: base, addOff: off(0, 1, 0, 1, 1), adds: []uint32{3}, delOff: off(0, 0, 0, 0, 0)},
		"add-out-of-range": {base: base, addOff: off(0, 1, 1, 1, 1), adds: []uint32{9}, delOff: off(0, 0, 0, 0, 0)},
		"add-self-loop":    {base: base, addOff: off(0, 1, 1, 1, 1), adds: []uint32{0}, delOff: off(0, 0, 0, 0, 0)},
		"adds-unsorted":    {base: base, addOff: off(0, 0, 2, 2, 2), adds: []uint32{3, 0}, delOff: off(0, 0, 0, 0, 0)},
		"add-duplicates":   {base: base, addOff: off(0, 1, 1, 1, 1), adds: []uint32{1}, delOff: off(0, 0, 0, 0, 0)},
		"dels-unsorted":    {base: base, addOff: off(0, 0, 0, 0, 0), delOff: off(0, 2, 2, 2, 2), dels: []uint32{2, 1}},
		"phantom-del":      {base: base, addOff: off(0, 0, 0, 0, 0), delOff: off(0, 1, 1, 1, 1), dels: []uint32{3}},
	} {
		if err := o.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a corrupt overlay", name)
		}
	}
	ok := OverlayFromEdits(base, []Edge{{U: 0, V: 2}}, []Edge{{U: 0, V: 3}, {U: 0, V: 2}})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid overlay rejected: %v", err)
	}
}
