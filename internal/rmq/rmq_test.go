package rmq

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func bruteMin(vals []uint32, lo, hi int) uint32 {
	acc := vals[lo]
	for i := lo + 1; i <= hi; i++ {
		if vals[i] < acc {
			acc = vals[i]
		}
	}
	return acc
}

func bruteMax(vals []uint32, lo, hi int) uint32 {
	acc := vals[lo]
	for i := lo + 1; i <= hi; i++ {
		if vals[i] > acc {
			acc = vals[i]
		}
	}
	return acc
}

func TestRMQExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 2, 31, 32, 33, 64, 100, 257} {
		vals := make([]uint32, n)
		for i := range vals {
			vals[i] = rng.Uint32N(1000)
		}
		mn := NewMin(vals)
		mx := NewMax(vals)
		for lo := 0; lo < n; lo++ {
			for hi := lo; hi < n; hi++ {
				if got, want := mn.Query(lo, hi), bruteMin(vals, lo, hi); got != want {
					t.Fatalf("n=%d min[%d,%d] = %d, want %d", n, lo, hi, got, want)
				}
				if got, want := mx.Query(lo, hi), bruteMax(vals, lo, hi); got != want {
					t.Fatalf("n=%d max[%d,%d] = %d, want %d", n, lo, hi, got, want)
				}
			}
		}
	}
}

func TestRMQRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 100000
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	mn := NewMin(vals)
	mx := NewMax(vals)
	for q := 0; q < 2000; q++ {
		lo := rng.IntN(n)
		hi := lo + rng.IntN(n-lo)
		if got, want := mn.Query(lo, hi), bruteMin(vals, lo, hi); got != want {
			t.Fatalf("min[%d,%d] = %d, want %d", lo, hi, got, want)
		}
		if got, want := mx.Query(lo, hi), bruteMax(vals, lo, hi); got != want {
			t.Fatalf("max[%d,%d] = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestRMQQuick(t *testing.T) {
	f := func(raw []uint32, a, b uint16) bool {
		if len(raw) == 0 {
			return true
		}
		lo := int(a) % len(raw)
		hi := int(b) % len(raw)
		if lo > hi {
			lo, hi = hi, lo
		}
		return NewMin(raw).Query(lo, hi) == bruteMin(raw, lo, hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRMQPanicsOutOfRange(t *testing.T) {
	r := NewMin([]uint32{1, 2, 3})
	for _, q := range [][2]int{{2, 1}, {-1, 0}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for query %v", q)
				}
			}()
			r.Query(q[0], q[1])
		}()
	}
}

// TestRMQStructuredTable sweeps adversarial value patterns that random
// fills never produce — sorted runs, plateaus of duplicates, sawtooth
// block boundaries — at the query extremes (point, prefix, suffix, full
// range) for both the min and max structures.
func TestRMQStructuredTable(t *testing.T) {
	patterns := []struct {
		name string
		gen  func(n int) []uint32
	}{
		{"ascending", func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i)
			}
			return v
		}},
		{"descending", func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(n - i)
			}
			return v
		}},
		{"constant", func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = 7
			}
			return v
		}},
		{"sawtooth", func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				v[i] = uint32(i % 13)
			}
			return v
		}},
		{"extremes", func(n int) []uint32 {
			v := make([]uint32, n)
			for i := range v {
				if i%2 == 0 {
					v[i] = 0
				} else {
					v[i] = ^uint32(0)
				}
			}
			return v
		}},
	}
	for _, p := range patterns {
		for _, n := range []int{1, 2, 33, 64, 129} {
			vals := p.gen(n)
			mn, mx := NewMin(vals), NewMax(vals)
			queries := [][2]int{
				{0, 0}, {n - 1, n - 1}, {0, n - 1},
				{0, n / 2}, {n / 2, n - 1},
			}
			for _, q := range queries {
				lo, hi := q[0], q[1]
				if got, want := mn.Query(lo, hi), bruteMin(vals, lo, hi); got != want {
					t.Fatalf("%s n=%d min[%d,%d] = %d, want %d", p.name, n, lo, hi, got, want)
				}
				if got, want := mx.Query(lo, hi), bruteMax(vals, lo, hi); got != want {
					t.Fatalf("%s n=%d max[%d,%d] = %d, want %d", p.name, n, lo, hi, got, want)
				}
			}
		}
	}
}
