// Package rmq provides a static range-min/max structure over a uint32
// array with O(n) space and O(1)-ish queries: a block decomposition
// (per-block prefix/suffix aggregates plus a sparse table over block
// aggregates; in-block partial ranges fall back to a bounded scan).
// FAST-BCC uses it to evaluate subtree low/high values — subtrees are
// contiguous preorder ranges on the Euler tour — within the paper's O(n)
// auxiliary-space budget (a full sparse table would be O(n log n)).
package rmq

import (
	"math/bits"

	"pasgal/internal/parallel"
)

const blockShift = 5 // 32-element blocks
const blockSize = 1 << blockShift

// RMQ answers combine-queries (min or max) over ranges of a fixed array.
type RMQ struct {
	vals    []uint32
	prefix  []uint32 // per-block running aggregate from block start
	suffix  []uint32 // per-block running aggregate to block end
	table   []uint32 // sparse table over block aggregates, row-major
	rows    int
	nblocks int
	combine func(a, b uint32) uint32
}

// NewMin builds a range-minimum structure over vals (which must not be
// modified afterwards).
func NewMin(vals []uint32) *RMQ {
	return build(vals, func(a, b uint32) uint32 {
		if a < b {
			return a
		}
		return b
	})
}

// NewMax builds a range-maximum structure over vals.
func NewMax(vals []uint32) *RMQ {
	return build(vals, func(a, b uint32) uint32 {
		if a > b {
			return a
		}
		return b
	})
}

func build(vals []uint32, combine func(a, b uint32) uint32) *RMQ {
	n := len(vals)
	nblocks := (n + blockSize - 1) / blockSize
	r := &RMQ{
		vals:    vals,
		prefix:  make([]uint32, n),
		suffix:  make([]uint32, n),
		nblocks: nblocks,
		combine: combine,
	}
	parallel.For(nblocks, 4, func(b int) {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		acc := vals[lo]
		for i := lo; i < hi; i++ {
			acc = combine(acc, vals[i])
			r.prefix[i] = acc
		}
		acc = vals[hi-1]
		for i := hi - 1; i >= lo; i-- {
			acc = combine(acc, vals[i])
			r.suffix[i] = acc
		}
	})
	if nblocks > 0 {
		rows := bits.Len(uint(nblocks)) // log2(nblocks)+1
		r.rows = rows
		r.table = make([]uint32, rows*nblocks)
		parallel.For(nblocks, 0, func(b int) {
			lo := b * blockSize
			hi := min(lo+blockSize, n)
			r.table[b] = r.suffix[lo] // whole-block aggregate
			_ = hi
		})
		for row := 1; row < rows; row++ {
			span := 1 << row
			prev := r.table[(row-1)*nblocks:]
			cur := r.table[row*nblocks:]
			parallel.For(nblocks, 0, func(b int) {
				if b+span <= nblocks {
					cur[b] = combine(prev[b], prev[b+span/2])
				} else if b+span/2 <= nblocks {
					cur[b] = prev[b]
				} else {
					cur[b] = prev[b]
				}
			})
		}
	}
	return r
}

// Query returns the aggregate of vals[lo..hi] inclusive. lo <= hi required.
func (r *RMQ) Query(lo, hi int) uint32 {
	if lo > hi || lo < 0 || hi >= len(r.vals) {
		panic("rmq: query out of range")
	}
	bl, bh := lo>>blockShift, hi>>blockShift
	if bl == bh {
		// In-block partial range: bounded scan (<= 32 elements).
		acc := r.vals[lo]
		for i := lo + 1; i <= hi; i++ {
			acc = r.combine(acc, r.vals[i])
		}
		return acc
	}
	acc := r.combine(r.suffix[lo], r.prefix[hi])
	if bh-bl >= 2 {
		// Whole blocks bl+1 .. bh-1 via the sparse table.
		a, b := bl+1, bh-1
		k := bits.Len(uint(b-a+1)) - 1
		row := r.table[k*r.nblocks:]
		acc = r.combine(acc, r.combine(row[a], row[b-(1<<k)+1]))
	}
	return acc
}
