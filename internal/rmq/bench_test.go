package rmq

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	vals := make([]uint32, 1<<20)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMin(vals)
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 1 << 20
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = rng.Uint32()
	}
	r := NewMin(vals)
	// Pre-draw query ranges so the RNG is out of the hot loop.
	qs := make([][2]int, 4096)
	for i := range qs {
		lo := rng.IntN(n)
		qs[i] = [2]int{lo, lo + rng.IntN(n-lo)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i&4095]
		r.Query(q[0], q[1])
	}
}
