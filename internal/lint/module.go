package lint

import (
	"go/ast"
	"path/filepath"
	"sort"
	"time"

	"pasgal/internal/parallel"
)

// Module is the interprocedural analysis unit: the packages matched by the
// run's patterns plus every in-module dependency they pull in, a call
// graph spanning all of them, and the propagated function summaries.
// Findings are only reported inside the matched packages; facts flow in
// from dependencies regardless.
type Module struct {
	Loader *Loader
	// Pkgs are the analysis targets (pattern-matched), in path order.
	Pkgs []*Package
	// All is every loaded package, targets and dependencies, path order.
	All []*Package
	// Graph and Sums are the interprocedural substrate shared by rules.
	Graph *CallGraph
	Sums  *SummarySet
	// Timings records the engine phases and per-package rule runtimes of
	// the last Analyze call.
	Timings []Timing
}

// Timing is one named duration from an analysis run: engine phases
// ("load", "callgraph", "facts", "interprocedural") and one entry per
// analyzed package.
type Timing struct {
	Name string
	Dur  time.Duration
}

// LoadModule expands patterns, loads and type-checks the matched packages
// (plus their in-module dependencies) and builds the interprocedural
// substrate over everything loaded.
func LoadModule(patterns []string, opts Options) (*Module, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = opts.IncludeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs := make([]string, len(patterns))
	for i, p := range patterns {
		abs[i] = p
		if p != "..." && !isAbs(p) {
			abs[i] = dir + "/" + p
		}
	}
	start := time.Now()
	pkgs, err := loader.Load(abs)
	if err != nil {
		return nil, err
	}
	m := NewModule(loader, pkgs)
	m.Timings = append([]Timing{{Name: "load", Dur: time.Since(start)}}, m.Timings...)
	return m, nil
}

// NewModule builds the interprocedural substrate (call graph + summaries)
// for the given target packages over everything their loader has loaded.
func NewModule(loader *Loader, pkgs []*Package) *Module {
	m := &Module{Loader: loader, Pkgs: pkgs, All: loader.Loaded()}
	start := time.Now()
	m.Graph = buildCallGraph(m.All)
	m.Timings = append(m.Timings, Timing{Name: "callgraph", Dur: time.Since(start)})
	start = time.Now()
	m.Sums = buildSummaries(m.Graph)
	m.Timings = append(m.Timings, Timing{Name: "facts", Dur: time.Since(start)})
	return m
}

// Loaded returns every package the loader has parsed and type-checked —
// targets and dependencies — sorted by import path.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		if len(p.Files) > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// isTarget reports whether pkg is one of the module's analysis targets.
func (m *Module) isTarget(pkg *Package) bool {
	for _, p := range m.Pkgs {
		if p == pkg {
			return true
		}
	}
	return false
}

// Analyze runs the selected rules (all when rules is empty) over the
// module: package-local rules over each target package — in parallel,
// through the library's own runtime — and interprocedural rules once over
// the whole module. Findings are sorted, deduplicated against the
// //pasgal:vet ignore= allowlist, and annotated with their enclosing
// function and module-relative file path.
func (m *Module) Analyze(rules []string) []Finding {
	enabled := map[string]bool{}
	for _, r := range rules {
		enabled[r] = true
	}
	on := func(a *Analyzer) bool { return len(enabled) == 0 || enabled[a.Name] }

	// Package-local rules: one task per target package.
	perPkg := make([][]Finding, len(m.Pkgs))
	pkgDur := make([]time.Duration, len(m.Pkgs))
	parallel.For(len(m.Pkgs), 1, func(i int) {
		pkg := m.Pkgs[i]
		start := time.Now()
		var out []Finding
		for _, a := range Analyzers() {
			if a.Run == nil || !on(a) {
				continue
			}
			out = append(out, a.Run(pkg)...)
		}
		perPkg[i] = out
		pkgDur[i] = time.Since(start)
	})
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}

	// Interprocedural rules: once, over the whole module.
	start := time.Now()
	for _, a := range Analyzers() {
		if a.RunModule == nil || !on(a) {
			continue
		}
		findings = append(findings, a.RunModule(m)...)
	}
	interDur := time.Since(start)

	// Suppression: merge the allowlists of every loaded package, since an
	// interprocedural finding may land in any of them.
	ig := &ignoreSet{byLine: map[string]map[int]map[string]bool{}}
	for _, pkg := range m.All {
		ig.merge(collectIgnores(pkg))
	}
	kept := findings[:0]
	for _, f := range findings {
		if !ig.suppressed(f) {
			kept = append(kept, f)
		}
	}
	findings = kept

	m.annotate(findings)
	sortFindings(findings)

	for i, pkg := range m.Pkgs {
		m.Timings = append(m.Timings, Timing{Name: pkg.Path, Dur: pkgDur[i]})
	}
	m.Timings = append(m.Timings, Timing{Name: "interprocedural", Dur: interDur})
	return findings
}

// annotate fills each finding's module-relative file path and, when the
// rule did not set it, the name of the enclosing function.
func (m *Module) annotate(findings []Finding) {
	for i := range findings {
		f := &findings[i]
		if rel, err := filepath.Rel(m.Loader.ModuleRoot, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.File = filepath.ToSlash(rel)
		} else {
			f.File = f.Pos.Filename
		}
		f.Line = f.Pos.Line
		f.Col = f.Pos.Column
		if f.Function == "" {
			f.Function = m.enclosingFunc(f)
		}
	}
}

// enclosingFunc names the function declaration containing the finding.
func (m *Module) enclosingFunc(f *Finding) string {
	for _, pkg := range m.All {
		for _, file := range pkg.Files {
			pos := pkg.Fset.Position(file.Pos())
			if pos.Filename != f.Pos.Filename {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				from := pkg.Fset.Position(fd.Pos())
				to := pkg.Fset.Position(fd.End())
				if f.Pos.Line >= from.Line && f.Pos.Line <= to.Line {
					return funcDisplayName(fd)
				}
			}
		}
	}
	return ""
}

// merge folds other's allowlist lines into ig.
func (ig *ignoreSet) merge(other *ignoreSet) {
	for file, lines := range other.byLine {
		dst := ig.byLine[file]
		if dst == nil {
			ig.byLine[file] = lines
			continue
		}
		for line, rules := range lines {
			if dst[line] == nil {
				dst[line] = rules
				continue
			}
			for r := range rules {
				dst[line][r] = true
			}
		}
	}
}
