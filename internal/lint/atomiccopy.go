package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCopyAnalyzer reports sync/atomic values (atomic.Int64, atomic.Uint32,
// atomic.Pointer[T], ...) that are copied by value: assigned, passed or
// returned by value, ranged over, or declared as value parameters. A copy
// forks the counter — subsequent atomic operations hit two different memory
// cells and every invariant built on the original silently breaks. Atomic
// values must be shared by pointer (or embedded in a struct that is).
func AtomicCopyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomic-copy",
		Doc:  "sync/atomic value copied by value instead of shared by pointer",
		Run:  runAtomicCopy,
	}
}

var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicValue reports whether t is (or is an array of) one of the
// sync/atomic struct types, by value.
func isAtomicValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if arr, ok := t.(*types.Array); ok {
		return isAtomicValue(arr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}

func runAtomicCopy(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []Finding
	seen := map[token.Pos]bool{}
	report := func(pos token.Pos, what string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{
			Pos:     pkg.position(pos),
			Rule:    "atomic-copy",
			Message: fmt.Sprintf("sync/atomic value %s; share it by pointer instead", what),
		})
	}
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := pkg.Info.Types[e]; ok {
			return tv.Type
		}
		// Bare identifiers (range variables, some operands) live in
		// Defs/Uses rather than Types.
		if id, ok := unparen(e).(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				return obj.Type()
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	// copiesAtomic reports whether evaluating e produces a by-value copy of
	// an existing atomic. Composite literals construct a fresh value
	// in place (the idiomatic zero-value initialization), so they are
	// exempt.
	copiesAtomic := func(e ast.Expr) bool {
		e = unparen(e)
		if _, isLit := e.(*ast.CompositeLit); isLit {
			return false
		}
		// Type expressions — the T in new(T) or a conversion — name the
		// type without evaluating a value, so nothing is copied.
		if tv, ok := pkg.Info.Types[e]; ok && !tv.IsValue() {
			return false
		}
		return isAtomicValue(typeOf(e))
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true // tuple from a call; flagged at the callee's return
				}
				for i, rhs := range n.Rhs {
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if copiesAtomic(rhs) {
						report(rhs.Pos(), "copied by assignment")
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if copiesAtomic(v) {
						report(v.Pos(), "copied by assignment")
					}
				}
			case *ast.CallExpr:
				// Conversions like atomic.Int64(x) don't exist; every arg
				// of atomic value type is a by-value pass.
				for _, arg := range n.Args {
					if copiesAtomic(arg) {
						report(arg.Pos(), "passed by value")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if copiesAtomic(res) {
						report(res.Pos(), "returned by value")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && isAtomicValue(typeOf(n.Value)) {
					report(n.Value.Pos(), "copied by range; iterate by index")
				}
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, f := range n.Recv.List {
						if isAtomicValue(typeOf(f.Type)) {
							report(f.Type.Pos(), "used as a value receiver")
						}
					}
				}
			case *ast.FuncType:
				for _, fl := range [...]*ast.FieldList{n.Params, n.Results} {
					if fl == nil {
						continue
					}
					for _, f := range fl.List {
						if isAtomicValue(typeOf(f.Type)) {
							report(f.Type.Pos(), "declared as a by-value parameter or result")
						}
					}
				}
			}
			return true
		})
	}
	return out
}
