package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// WaitGroupAnalyzer reports the two classic sync.WaitGroup mistakes:
//
//  1. wg.Add called *inside* the spawned goroutine. The launcher can reach
//     wg.Wait before the goroutine is scheduled, see a zero counter, and
//     return while work is still running — Add must happen-before the
//     launch.
//  2. A WaitGroup that is Add-ed but never waited on in the declaring
//     function (and whose address never escapes to a helper that could
//     wait), which leaks goroutines past the function's return.
func WaitGroupAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wait-group-misuse",
		Doc:  "wg.Add inside the spawned goroutine, or Add without a matching Wait",
		Run:  runWaitGroup,
	}
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func runWaitGroup(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		concurrent := concurrentLits(pkg, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkWaitGroups(pkg, fd, concurrent)...)
		}
	}
	return out
}

// wgState tracks, for one WaitGroup object inside one function, everything
// the two checks need.
type wgState struct {
	decl      *ast.Ident // declaring identifier (nil if not declared here)
	hasAdd    bool
	hasWait   bool
	escapes   bool // address taken outside a method call / passed along
	localDecl bool
}

func checkWaitGroups(pkg *Package, fd *ast.FuncDecl, concurrent map[*ast.FuncLit]bool) []Finding {
	states := map[types.Object]*wgState{}
	get := func(obj types.Object) *wgState {
		s := states[obj]
		if s == nil {
			s = &wgState{}
			states[obj] = s
		}
		return s
	}
	var out []Finding
	walkStack(fd, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.Ident:
			obj := pkg.Info.Defs[n]
			if obj != nil && isWaitGroup(obj.Type()) {
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					s := get(obj)
					s.decl = n
					s.localDecl = true
				}
				return true
			}
			// A use that is not the receiver of a method call marks the
			// WaitGroup as escaping (passed to a helper, stored, etc.):
			// the Wait may legitimately happen elsewhere.
			useObj := pkg.Info.Uses[n]
			if useObj == nil || !isWaitGroup(useObj.Type()) {
				return true
			}
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.X == n {
					return true // receiver position; handled via CallExpr below
				}
			}
			get(useObj).escapes = true
		case *ast.CallExpr:
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[recv]
			if obj == nil || !isWaitGroup(obj.Type()) {
				return true
			}
			s := get(obj)
			switch sel.Sel.Name {
			case "Add":
				s.hasAdd = true
				if lit := nearestConcurrentLit(stack, concurrent); lit != nil &&
					(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
					out = append(out, Finding{
						Pos:  pkg.position(n.Pos()),
						Rule: "wait-group-misuse",
						Message: fmt.Sprintf(
							"%s.Add is called inside the spawned goroutine; call Add before launching so Wait cannot observe a zero counter early",
							recv.Name),
					})
				}
			case "Wait":
				s.hasWait = true
			}
		}
		return true
	})
	for obj, s := range states {
		if s.localDecl && s.hasAdd && !s.hasWait && !s.escapes {
			out = append(out, Finding{
				Pos:  pkg.position(s.decl.Pos()),
				Rule: "wait-group-misuse",
				Message: fmt.Sprintf(
					"%s is Add-ed but %s.Wait is never called in %s; goroutines may outlive the function",
					obj.Name(), obj.Name(), fd.Name.Name),
			})
		}
	}
	return out
}
