package lint

import (
	"go/types"
	"sort"

	"pasgal/internal/parallel"
)

// SummarySet holds the direct summary of every declared function plus the
// bottom-up transitive closure of plain writes over the call graph. The
// closure is computed once, on the condensation of the graph (Tarjan
// strongly-connected components, processed in reverse topological order),
// so mutual recursion converges in one pass.
type SummarySet struct {
	Direct map[*types.Func]*Summary

	sccOf  map[*types.Func]int
	sccs   [][]*types.Func
	trans  []map[types.Object]writeSite // per SCC
	spawns []bool                       // per SCC: any member (or callee) spawns
}

// buildSummaries computes direct summaries for every declared function —
// in parallel, one task per function batch, dogfooding the library the
// engine vets — then runs the bottom-up propagation sequentially (it is a
// linear pass over the condensation).
func buildSummaries(g *CallGraph) *SummarySet {
	fns := make([]*types.Func, 0, len(g.Decls))
	for fn := range g.Decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	sums := make([]*Summary, len(fns))
	parallel.For(len(fns), 8, func(i int) {
		fn := fns[i]
		sums[i] = buildDirectSummary(g.DeclPkg[fn], fn, g.Decls[fn])
	})

	set := &SummarySet{Direct: make(map[*types.Func]*Summary, len(fns))}
	for i, fn := range fns {
		set.Direct[fn] = sums[i]
	}
	set.condense(g, fns)
	set.propagate(g)
	return set
}

// condense runs iterative Tarjan over the call graph restricted to
// declared functions, filling sccOf and sccs in reverse topological order
// (callees' components are assigned before their callers' — exactly the
// order propagation wants).
func (s *SummarySet) condense(g *CallGraph, fns []*types.Func) {
	s.sccOf = make(map[*types.Func]int, len(fns))
	index := map[*types.Func]int{}
	lowlink := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next := 0

	type frame struct {
		fn   *types.Func
		edge int
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			edges := g.Edges[f.fn]
			advanced := false
			for f.edge < len(edges) {
				callee := edges[f.edge].Callee
				f.edge++
				if _, isDecl := g.Decls[callee]; !isDecl {
					continue
				}
				if _, seen := index[callee]; !seen {
					index[callee] = next
					lowlink[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{fn: callee})
					advanced = true
					break
				}
				if onStack[callee] && index[callee] < lowlink[f.fn] {
					lowlink[f.fn] = index[callee]
				}
			}
			if advanced {
				continue
			}
			// f.fn is finished.
			if lowlink[f.fn] == index[f.fn] {
				var scc []*types.Func
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					s.sccOf[m] = len(s.sccs)
					scc = append(scc, m)
					if m == f.fn {
						break
					}
				}
				s.sccs = append(s.sccs, scc)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				caller := &frames[len(frames)-1]
				if lowlink[f.fn] < lowlink[caller.fn] {
					lowlink[caller.fn] = lowlink[f.fn]
				}
			}
		}
	}
	for _, fn := range fns {
		if _, seen := index[fn]; !seen {
			visit(fn)
		}
	}
}

// propagate fills the per-SCC transitive write sets. Tarjan emits SCCs in
// reverse topological order of the condensation, so by the time a
// component is processed every component it calls into is already final.
func (s *SummarySet) propagate(g *CallGraph) {
	s.trans = make([]map[types.Object]writeSite, len(s.sccs))
	s.spawns = make([]bool, len(s.sccs))
	for i, scc := range s.sccs {
		acc := map[types.Object]writeSite{}
		spawns := false
		merge := func(m map[types.Object]writeSite) {
			for obj, w := range m {
				if old, ok := acc[obj]; !ok || (w.Via == ViaGlobal && old.Via == ViaPointer) {
					acc[obj] = w
				}
			}
		}
		for _, fn := range scc {
			sum := s.Direct[fn]
			merge(sum.PlainWrites)
			spawns = spawns || sum.Spawns
			for _, e := range g.Edges[fn] {
				j, ok := s.sccOf[e.Callee]
				if !ok || j == i {
					continue
				}
				merge(s.trans[j])
				spawns = spawns || s.spawns[j]
			}
		}
		s.trans[i] = acc
		s.spawns[i] = spawns
	}
}

// TransWrites returns every shared object that calling fn may plainly
// write, through any chain of module functions, mapped to the site and
// function of one such write. The map is shared — callers must not
// mutate it.
func (s *SummarySet) TransWrites(fn *types.Func) map[types.Object]writeSite {
	i, ok := s.sccOf[fn]
	if !ok {
		return nil
	}
	return s.trans[i]
}

// TransSpawns reports whether calling fn may launch parallelism.
func (s *SummarySet) TransSpawns(fn *types.Func) bool {
	i, ok := s.sccOf[fn]
	if !ok {
		return false
	}
	return s.spawns[i]
}
