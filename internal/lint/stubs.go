package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// The loader type-checks without compiled export data (none is shipped for
// the standard library since Go 1.20, and x/tools is off-limits). Instead,
// the two packages whose types the analyzers actually reason about —
// sync/atomic and sync — are stubbed from embedded declaration-only source,
// so atomic.Int64, sync.WaitGroup, atomic.AddInt64, etc. resolve to real
// types.Objects with the correct package path. Every other import resolves
// to an empty placeholder package; expressions using them get invalid types
// and the tolerant type-checker carries on.

const atomicStubSrc = `package atomic

type Bool struct{ v uint32 }

func (x *Bool) Load() bool
func (x *Bool) Store(val bool)
func (x *Bool) Swap(new bool) (old bool)
func (x *Bool) CompareAndSwap(old, new bool) (swapped bool)

type Int32 struct{ v int32 }

func (x *Int32) Load() int32
func (x *Int32) Store(val int32)
func (x *Int32) Add(delta int32) (new int32)
func (x *Int32) And(mask int32) (old int32)
func (x *Int32) Or(mask int32) (old int32)
func (x *Int32) Swap(new int32) (old int32)
func (x *Int32) CompareAndSwap(old, new int32) (swapped bool)

type Int64 struct{ v int64 }

func (x *Int64) Load() int64
func (x *Int64) Store(val int64)
func (x *Int64) Add(delta int64) (new int64)
func (x *Int64) And(mask int64) (old int64)
func (x *Int64) Or(mask int64) (old int64)
func (x *Int64) Swap(new int64) (old int64)
func (x *Int64) CompareAndSwap(old, new int64) (swapped bool)

type Uint32 struct{ v uint32 }

func (x *Uint32) Load() uint32
func (x *Uint32) Store(val uint32)
func (x *Uint32) Add(delta uint32) (new uint32)
func (x *Uint32) And(mask uint32) (old uint32)
func (x *Uint32) Or(mask uint32) (old uint32)
func (x *Uint32) Swap(new uint32) (old uint32)
func (x *Uint32) CompareAndSwap(old, new uint32) (swapped bool)

type Uint64 struct{ v uint64 }

func (x *Uint64) Load() uint64
func (x *Uint64) Store(val uint64)
func (x *Uint64) Add(delta uint64) (new uint64)
func (x *Uint64) And(mask uint64) (old uint64)
func (x *Uint64) Or(mask uint64) (old uint64)
func (x *Uint64) Swap(new uint64) (old uint64)
func (x *Uint64) CompareAndSwap(old, new uint64) (swapped bool)

type Uintptr struct{ v uintptr }

func (x *Uintptr) Load() uintptr
func (x *Uintptr) Store(val uintptr)
func (x *Uintptr) Add(delta uintptr) (new uintptr)
func (x *Uintptr) Swap(new uintptr) (old uintptr)
func (x *Uintptr) CompareAndSwap(old, new uintptr) (swapped bool)

type Pointer[T any] struct{ v *T }

func (x *Pointer[T]) Load() *T
func (x *Pointer[T]) Store(val *T)
func (x *Pointer[T]) Swap(new *T) (old *T)
func (x *Pointer[T]) CompareAndSwap(old, new *T) (swapped bool)

type Value struct{ v any }

func (v *Value) Load() (val any)
func (v *Value) Store(val any)
func (v *Value) Swap(new any) (old any)
func (v *Value) CompareAndSwap(old, new any) (swapped bool)

func AddInt32(addr *int32, delta int32) (new int32)
func AddInt64(addr *int64, delta int64) (new int64)
func AddUint32(addr *uint32, delta uint32) (new uint32)
func AddUint64(addr *uint64, delta uint64) (new uint64)
func AddUintptr(addr *uintptr, delta uintptr) (new uintptr)
func CompareAndSwapInt32(addr *int32, old, new int32) (swapped bool)
func CompareAndSwapInt64(addr *int64, old, new int64) (swapped bool)
func CompareAndSwapUint32(addr *uint32, old, new uint32) (swapped bool)
func CompareAndSwapUint64(addr *uint64, old, new uint64) (swapped bool)
func CompareAndSwapUintptr(addr *uintptr, old, new uintptr) (swapped bool)
func LoadInt32(addr *int32) (val int32)
func LoadInt64(addr *int64) (val int64)
func LoadUint32(addr *uint32) (val uint32)
func LoadUint64(addr *uint64) (val uint64)
func LoadUintptr(addr *uintptr) (val uintptr)
func StoreInt32(addr *int32, val int32)
func StoreInt64(addr *int64, val int64)
func StoreUint32(addr *uint32, val uint32)
func StoreUint64(addr *uint64, val uint64)
func StoreUintptr(addr *uintptr, val uintptr)
func SwapInt32(addr *int32, new int32) (old int32)
func SwapInt64(addr *int64, new int64) (old int64)
func SwapUint32(addr *uint32, new uint32) (old uint32)
func SwapUint64(addr *uint64, new uint64) (old uint64)
func SwapUintptr(addr *uintptr, new uintptr) (old uintptr)
`

const syncStubSrc = `package sync

type Mutex struct {
	state int32
	sema  uint32
}

func (m *Mutex) Lock()
func (m *Mutex) TryLock() bool
func (m *Mutex) Unlock()

type RWMutex struct {
	w           Mutex
	writerSem   uint32
	readerSem   uint32
	readerCount int32
	readerWait  int32
}

func (rw *RWMutex) Lock()
func (rw *RWMutex) TryLock() bool
func (rw *RWMutex) Unlock()
func (rw *RWMutex) RLock()
func (rw *RWMutex) TryRLock() bool
func (rw *RWMutex) RUnlock()
func (rw *RWMutex) RLocker() Locker

type Locker interface {
	Lock()
	Unlock()
}

type WaitGroup struct {
	state uint64
	sema  uint32
}

func (wg *WaitGroup) Add(delta int)
func (wg *WaitGroup) Done()
func (wg *WaitGroup) Wait()

type Once struct {
	done uint32
	m    Mutex
}

func (o *Once) Do(f func())

func OnceFunc(f func()) func()

type Pool struct {
	New func() any
}

func (p *Pool) Put(x any)
func (p *Pool) Get() any

type Map struct{}

func (m *Map) Load(key any) (value any, ok bool)
func (m *Map) Store(key, value any)
func (m *Map) LoadOrStore(key, value any) (actual any, loaded bool)
func (m *Map) LoadAndDelete(key any) (value any, loaded bool)
func (m *Map) Delete(key any)
func (m *Map) Swap(key, value any) (previous any, loaded bool)
func (m *Map) Range(f func(key, value any) bool)

type Cond struct {
	L Locker
}

func NewCond(l Locker) *Cond
func (c *Cond) Wait()
func (c *Cond) Signal()
func (c *Cond) Broadcast()
`

var stubSources = map[string]string{
	"sync/atomic": atomicStubSrc,
	"sync":        syncStubSrc,
}

// buildStub type-checks one embedded stub source into a real types.Package
// under its true import path.
func buildStub(fset *token.FileSet, importPath, src string, imp types.Importer) (*types.Package, error) {
	file, err := parser.ParseFile(fset, importPath+"/stub.go", src, 0)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // tolerant
	}
	pkg, err := conf.Check(importPath, fset, []*ast.File{file}, nil)
	if pkg != nil {
		pkg.MarkComplete()
		return pkg, nil
	}
	return nil, err
}

// placeholderName guesses a package name from an import path. It is only
// used for placeholder (empty) packages, where a wrong guess merely means a
// few more swallowed type errors.
func placeholderName(importPath string) string {
	base := path.Base(importPath)
	// Strip major-version suffixes (".../v2") and hyphens ("go-foo").
	if strings.HasPrefix(base, "v") && len(base) > 1 && base[1] >= '0' && base[1] <= '9' {
		base = path.Base(path.Dir(importPath))
	}
	if i := strings.LastIndexByte(base, '-'); i >= 0 {
		base = base[i+1:]
	}
	return base
}
