// Package lint implements pasgal-vet, a PASGAL-specific concurrency
// static-analysis pass built only on the standard library's go/ast,
// go/parser, and go/types (no golang.org/x/tools dependency, preserving the
// repo's stdlib-only rule).
//
// Every headline result in PASGAL rests on lock-free shared-memory
// primitives — the hash-bag frontier, CAS-based union–find, and the
// fork-join runtime in internal/parallel — exactly the code where a single
// non-atomic access silently corrupts results under contention. The
// analyzers here encode the concurrency idioms those primitives rely on:
//
//   - mixed-access: a struct field or package-level variable accessed via
//     sync/atomic in one place and by a plain write (or a plain read inside
//     a goroutine/parallel closure) elsewhere in the same package.
//   - atomic-copy: an atomic.Int64/Int32/Uint32/... value copied by value
//     (assigned, passed, returned, or ranged over) instead of by pointer.
//   - parallel-capture: a closure passed to parallel.For / parallel.ForRange /
//     parallel.Do (or launched with `go`) that assigns to a variable declared
//     outside the closure without atomics.
//   - wait-group-misuse: wg.Add called inside the spawned goroutine rather
//     than before the launch, or a WaitGroup that is Add-ed but never waited
//     on.
//   - cancel-poll: a round/phase-boundary loop (one that records
//     Metrics.Round/AddPhase/AddBottomUp) inside a function holding a
//     core.Canceler that never calls Poll — a canceled context could not
//     stop that loop.
//
// Findings on provably safe hot paths are suppressed with an allowlist
// comment on the flagged line or the line above it:
//
//	//pasgal:vet ignore=<rule>[,<rule>...]  -- justification
//
// See docs/VETTING.md for each rule with minimal bad/good examples.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer. File/Line/Col are
// the stable machine-readable position (File is module-root-relative, so
// output is reproducible across checkouts); Pos keeps the absolute
// position for human-facing text output. Function names the declaration
// containing the finding; CallPath, set only on interprocedural findings,
// walks from the reported site to the function that performs the racy
// access, one "func (file:line)" hop per element.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Rule     string         `json:"rule"`
	Message  string         `json:"message"`
	Function string         `json:"function,omitempty"`
	CallPath []string       `json:"callPath,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
	if len(f.CallPath) > 0 {
		s += "\n\tcall path: " + strings.Join(f.CallPath, " -> ")
	}
	return s
}

// sortFindings orders findings by position, then rule, for stable output.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Package is one loaded, type-checked package unit ready for analysis.
// Type-checking is tolerant: unresolved imports (most of the standard
// library is stubbed or faked) leave the affected expressions with invalid
// types, and the analyzers fall back to syntactic matching there.
type Package struct {
	Dir   string
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one vet rule. Package-local rules set Run and see one
// type-checked package at a time; interprocedural rules set RunModule and
// see the whole module — call graph and propagated summaries included.
// Exactly one of the two is non-nil.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(pkg *Package) []Finding
	RunModule func(mod *Module) []Finding
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MixedAccessAnalyzer(),
		AtomicCopyAnalyzer(),
		ParallelCaptureAnalyzer(),
		WaitGroupAnalyzer(),
		CancelPollAnalyzer(),
		EpochMisuseAnalyzer(),
		SentinelErrorAnalyzer(),
		EscapeToParallelAnalyzer(),
		XPkgMixedAccessAnalyzer(),
	}
}

// funcDisplayName renders a function declaration's name the way findings
// report it: plain for functions, "(T).M" / "(*T).M" for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// typeText renders the syntactic forms receiver types take.
func typeText(t ast.Expr) string {
	switch t := unparen(t).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	case *ast.IndexListExpr:
		return typeText(t.X)
	case *ast.SelectorExpr:
		return typeText(t.X) + "." + t.Sel.Name
	}
	return "?"
}

// AnalyzerNames returns the names of all registered rules.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Analyze runs the selected package-local analyzers (all of them when
// rules is empty) over pkg and returns the surviving findings sorted by
// position, with //pasgal:vet ignore= suppressions already applied.
// Interprocedural rules need a whole module and only run through
// Module.Analyze.
func Analyze(pkg *Package, rules []string) []Finding {
	enabled := map[string]bool{}
	for _, r := range rules {
		enabled[r] = true
	}
	ig := collectIgnores(pkg)
	var out []Finding
	for _, a := range Analyzers() {
		if a.Run == nil {
			continue
		}
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		for _, f := range a.Run(pkg) {
			if ig.suppressed(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}
