package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// XPkgMixedAccessAnalyzer is mixed-access lifted across package
// boundaries: a field or package-level variable accessed through
// sync/atomic in one package and plainly in another. The per-package rule
// cannot see this split — a field stored atomically in internal/trace and
// written plainly in internal/core is invisible to both packages'
// intra-package passes — but the facts layer records every function's
// atomic targets and plain writes module-wide, and object identity is
// shared across the whole load, so the pairing is a join over summaries.
//
// The reporting policy mirrors the local rule: plain writes are always
// flagged, plain reads only inside goroutine/parallel closures. Objects
// with an atomic site in the *same* package as the plain access are left
// to the local rule (one finding per bug, not two). Plain writes whose
// root is local to the writing function (a fresh instance that never
// escaped) are not in the summaries and so never flagged — the
// cross-package rule is about shared instances by construction.
func XPkgMixedAccessAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "xpkg-mixed-access",
		Doc:       "variable accessed via sync/atomic in one package and plainly in another",
		RunModule: runXPkgMixedAccess,
	}
}

func runXPkgMixedAccess(m *Module) []Finding {
	// Join key: the shared object. Value: the packages that access it
	// atomically, with one representative site each.
	type atomicSite struct {
		pos     token.Pos
		pkgPath string
	}
	atomics := map[types.Object]map[string]token.Pos{}

	fns := make([]*types.Func, 0, len(m.Sums.Direct))
	for fn := range m.Sums.Direct {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		sum := m.Sums.Direct[fn]
		pkg := m.Graph.DeclPkg[fn]
		for obj, pos := range sum.Atomics {
			sites := atomics[obj]
			if sites == nil {
				sites = map[string]token.Pos{}
				atomics[obj] = sites
			}
			if old, ok := sites[pkg.Path]; !ok || pos < old {
				sites[pkg.Path] = pos
			}
		}
	}
	if len(atomics) == 0 {
		return nil
	}

	// firstForeign picks the representative atomic site for an access from
	// accessPkg: deterministic (smallest path), and nil when the only
	// atomic sites are in accessPkg itself (the local rule's case).
	firstForeign := func(obj types.Object, accessPkg string) (atomicSite, bool) {
		sites := atomics[obj]
		if sites == nil {
			return atomicSite{}, false
		}
		if _, local := sites[accessPkg]; local {
			return atomicSite{}, false
		}
		paths := make([]string, 0, len(sites))
		for p := range sites {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		return atomicSite{pos: sites[paths[0]], pkgPath: paths[0]}, true
	}

	var out []Finding
	for _, fn := range fns {
		pkg := m.Graph.DeclPkg[fn]
		if !m.isTarget(pkg) {
			continue
		}
		sum := m.Sums.Direct[fn]
		for obj, w := range sum.PlainWrites {
			site, ok := firstForeign(obj, pkg.Path)
			if !ok {
				continue
			}
			out = append(out, Finding{
				Pos:      m.Loader.Fset().Position(w.Pos),
				Rule:     "xpkg-mixed-access",
				Function: m.shortFuncName(fn),
				Message: fmt.Sprintf(
					"%s is accessed atomically in %s (%s) but plainly written here; the packages race through the shared object",
					obj.Name(), site.pkgPath, m.relPos(site.pos)),
			})
		}
		for obj, pos := range sum.ConcReads {
			site, ok := firstForeign(obj, pkg.Path)
			if !ok {
				continue
			}
			out = append(out, Finding{
				Pos:      m.Loader.Fset().Position(pos),
				Rule:     "xpkg-mixed-access",
				Function: m.shortFuncName(fn),
				Message: fmt.Sprintf(
					"%s is accessed atomically in %s (%s) but plainly read here inside a goroutine/parallel closure",
					obj.Name(), site.pkgPath, m.relPos(site.pos)),
			})
		}
	}
	return out
}
