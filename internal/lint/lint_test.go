package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures loads every package under testdata/src and checks the
// analyzer output exactly against the `// want:<rule>` markers in the
// fixture sources: each marked line must be flagged with that rule, and no
// unmarked line may be flagged. Allowlisted lines carry an ignore comment
// and no marker, so suppression is verified by the same equality.
func TestFixtures(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{filepath.Join(loader.ModuleRoot, "internal", "lint", "testdata", "src") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("expected at least 10 fixture packages, got %d", len(pkgs))
	}

	want := map[string]bool{}
	got := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "want:")
					if i < 0 {
						continue
					}
					rule := strings.TrimSpace(c.Text[i+len("want:"):])
					if j := strings.IndexAny(rule, " \t"); j >= 0 {
						rule = rule[:j]
					}
					pos := pkg.Fset.Position(c.Pos())
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(pos.Filename), pos.Line, rule)] = true
				}
			}
		}
	}
	// Module-based analysis: the interprocedural rules need the call graph
	// and summaries, and the package-local rules run through the same path
	// in production (Module.Analyze), so the fixtures exercise exactly it.
	mod := NewModule(loader, pkgs)
	for _, f := range mod.Analyze(nil) {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
	}
	if len(want) == 0 {
		t.Fatal("no want markers found in fixtures")
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
	// Every rule must be exercised by at least one positive fixture case.
	for _, name := range AnalyzerNames() {
		found := false
		for k := range want {
			if strings.HasSuffix(k, ":"+name) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rule %s has no positive fixture case", name)
		}
	}
}

// TestRuleSelection checks that restricting Rules drops other analyzers'
// findings.
func TestRuleSelection(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModuleRoot, "internal", "lint", "testdata", "src", "mixed")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(Analyze(pkg, []string{"atomic-copy"})); n != 0 {
		t.Fatalf("mixed fixture should have no atomic-copy findings, got %d", n)
	}
	if n := len(Analyze(pkg, []string{"mixed-access"})); n == 0 {
		t.Fatal("mixed fixture should have mixed-access findings")
	}
}

// TestRepoIsClean runs the full suite over the module itself: every real
// finding must be fixed or explicitly allowlisted with a justification.
// This is the same gate `pasgal-vet ./...` enforces in scripts/check.sh.
func TestRepoIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]string{"./..."}, Options{Dir: loader.ModuleRoot})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestIgnoreParsing covers the comment-parsing corner cases directly.
func TestIgnoreParsing(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModuleRoot, "internal", "lint", "testdata", "src", "mixed")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ig := collectIgnores(pkg)
	if len(ig.byLine) == 0 {
		t.Fatal("expected at least one ignore comment in the mixed fixture")
	}
}
