package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadCallGraphFixture builds the call graph over the cg fixture package.
func loadCallGraphFixture(t *testing.T) *CallGraph {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModuleRoot, "internal", "lint", "testdata", "src", "cg")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return buildCallGraph([]*Package{pkg})
}

// fnByName finds the declared function whose FullName ends in suffix.
func fnByName(t *testing.T, g *CallGraph, suffix string) *types.Func {
	t.Helper()
	var found *types.Func
	for fn := range g.Decls {
		if strings.HasSuffix(fn.FullName(), suffix) {
			if found != nil {
				t.Fatalf("suffix %q matches both %s and %s", suffix, found.FullName(), fn.FullName())
			}
			found = fn
		}
	}
	if found == nil {
		t.Fatalf("no declared function matches %q", suffix)
	}
	return found
}

// edgeTo returns the edge from caller to callee, if present.
func edgeTo(g *CallGraph, caller, callee *types.Func) (CallEdge, bool) {
	for _, e := range g.Edges[caller] {
		if e.Callee == callee {
			return e, true
		}
	}
	return CallEdge{}, false
}

// TestCallGraphInterfaceCall checks that a call through an interface method
// fans out to every module implementation, pointer and value receivers
// alike, with EdgeInterface kind.
func TestCallGraphInterfaceCall(t *testing.T) {
	g := loadCallGraphFixture(t)
	launch := fnByName(t, g, "cg.Launch")
	aRun := fnByName(t, g, "cg.A).Run")
	bRun := fnByName(t, g, "cg.B).Run")

	for _, callee := range []*types.Func{aRun, bRun} {
		e, ok := edgeTo(g, launch, callee)
		if !ok {
			t.Fatalf("Launch has no edge to %s; edges: %v", callee.FullName(), g.Edges[launch])
		}
		if e.Kind != EdgeInterface {
			t.Errorf("Launch -> %s: kind = %v, want interface", callee.FullName(), e.Kind)
		}
	}
}

// TestCallGraphMethodValue checks that a method value escaping as a return
// value produces a may-call edge of EdgeFuncValue kind.
func TestCallGraphMethodValue(t *testing.T) {
	g := loadCallGraphFixture(t)
	handoff := fnByName(t, g, "cg.Handoff")
	aRun := fnByName(t, g, "cg.A).Run")

	e, ok := edgeTo(g, handoff, aRun)
	if !ok {
		t.Fatalf("Handoff has no edge to (*A).Run; edges: %v", g.Edges[handoff])
	}
	if e.Kind != EdgeFuncValue {
		t.Errorf("Handoff -> (*A).Run: kind = %v, want func-value", e.Kind)
	}
}

// TestCallGraphPathTo checks BFS reachability through a direct call plus an
// interface hop, and unreachability in the reverse direction.
func TestCallGraphPathTo(t *testing.T) {
	g := loadCallGraphFixture(t)
	chain := fnByName(t, g, "cg.Chain")
	launch := fnByName(t, g, "cg.Launch")
	aRun := fnByName(t, g, "cg.A).Run")
	bRun := fnByName(t, g, "cg.B).Run")

	path := g.PathTo([]*types.Func{chain}, aRun)
	if len(path) != 2 {
		t.Fatalf("PathTo(Chain, (*A).Run) = %v, want 2 hops", path)
	}
	if path[0].Callee != launch || path[1].Callee != aRun {
		t.Errorf("path hops = %s, %s; want Launch, (*A).Run",
			path[0].Callee.FullName(), path[1].Callee.FullName())
	}
	if p := g.PathTo([]*types.Func{bRun}, chain); p != nil {
		t.Errorf("PathTo((B).Run, Chain) = %v, want nil (unreachable)", p)
	}
	if len(g.Edges[bRun]) != 0 {
		t.Errorf("(B).Run should have no outgoing edges, got %v", g.Edges[bRun])
	}
}
