package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call-graph edge was established. The engine is
// a may-analysis: every kind means "the callee may run when the caller
// does", with decreasing syntactic directness.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call: f(), pkg.F(), recv.M().
	EdgeCall EdgeKind = iota
	// EdgeInterface is a call through an interface method, resolved to a
	// concrete method of a module type implementing the interface.
	EdgeInterface
	// EdgeFuncValue is a reference to a declared function or method as a
	// value (assigned, passed, stored); the engine assumes it may be
	// invoked by whoever receives it.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeInterface:
		return "interface"
	default:
		return "func-value"
	}
}

// CallEdge is one outgoing edge of the call graph: the caller may invoke
// Callee; Pos is the call or reference site in the caller's body.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// CallGraph is a whole-module static call graph over declared functions
// and methods. Function literals are not nodes: a literal's calls are
// attributed to the declaration enclosing it (for summaries), and rules
// that care about specific literals (escape-to-parallel) re-walk the
// literal body with calleesIn.
type CallGraph struct {
	// Decls maps every module-declared function object to its syntax.
	Decls map[*types.Func]*ast.FuncDecl
	// DeclPkg maps a declared function to its loaded package.
	DeclPkg map[*types.Func]*Package
	// Edges maps a caller to its outgoing edges, deduplicated per callee
	// (first site wins) in source order.
	Edges map[*types.Func][]CallEdge

	named []*types.Named                // all module named types, for interface resolution
	impls map[*types.Func][]*types.Func // interface method -> concrete implementations
}

// buildCallGraph constructs the graph over every loaded package (analysis
// targets and their in-module dependencies alike: a helper one package
// away must still be a node, or facts cannot propagate across the import
// edge).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Decls:   map[*types.Func]*ast.FuncDecl{},
		DeclPkg: map[*types.Func]*Package{},
		Edges:   map[*types.Func][]CallEdge{},
		impls:   map[*types.Func][]*types.Func{},
	}
	// Pass 1: nodes, and the named-type universe for interface resolution.
	for _, pkg := range pkgs {
		if pkg.Info == nil || pkg.Types == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					g.Decls[fn] = fd
					g.DeclPkg[fn] = pkg
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				g.named = append(g.named, named)
			}
		}
	}
	// Pass 2: edges.
	for fn, fd := range g.Decls {
		g.Edges[fn] = g.calleesIn(g.DeclPkg[fn], fd.Body)
	}
	return g
}

// calleesIn collects every edge out of root: static calls, interface calls
// (resolved to module implementations), and references to declared
// functions as values. Edges are deduplicated per callee keeping the
// earliest site, and returned in source order.
func (g *CallGraph) calleesIn(pkg *Package, root ast.Node) []CallEdge {
	if pkg.Info == nil {
		return nil
	}
	seen := map[*types.Func]int{} // callee -> index in out
	var out []CallEdge
	add := func(callee *types.Func, pos token.Pos, kind EdgeKind) {
		if callee == nil {
			return
		}
		if i, ok := seen[callee]; ok {
			// Keep the strongest kind (a direct call beats a value ref)
			// and the earliest position.
			if kind < out[i].Kind {
				out[i].Kind = kind
			}
			if pos < out[i].Pos {
				out[i].Pos = pos
			}
			return
		}
		seen[callee] = len(out)
		out = append(out, CallEdge{Callee: callee, Pos: pos, Kind: kind})
	}
	// funIdents marks identifiers consumed as the operator of a direct
	// call, so the value-reference pass below does not double-count them.
	funIdents := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
					funIdents[fun] = true
					add(fn, n.Pos(), EdgeCall)
				}
			case *ast.SelectorExpr:
				if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
					funIdents[fun.Sel] = true
					if isInterfaceMethod(fn) {
						for _, impl := range g.implementations(fn) {
							add(impl, n.Pos(), EdgeInterface)
						}
					} else {
						add(fn, n.Pos(), EdgeCall)
					}
				}
			}
		case *ast.Ident:
			if funIdents[n] {
				return true
			}
			if _, isDecl := pkg.Info.Defs[n]; isDecl {
				return true
			}
			fn, ok := pkg.Info.Uses[n].(*types.Func)
			if !ok {
				return true
			}
			// A method value (x.M) or function value (f) escaping into a
			// variable, argument, or field: assume it may be invoked.
			if isInterfaceMethod(fn) {
				for _, impl := range g.implementations(fn) {
					add(impl, n.Pos(), EdgeFuncValue)
				}
			} else {
				add(fn, n.Pos(), EdgeFuncValue)
			}
		}
		return true
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	// Re-index after sorting is unnecessary: seen is discarded.
	return out
}

// isInterfaceMethod reports whether fn is declared on an interface type
// (an abstract method with no body of its own).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// implementations resolves an interface method to the concrete methods of
// module types that implement the interface (memoized). This is the
// standard sound over-approximation: every implementing type's method may
// be the dynamic callee.
func (g *CallGraph) implementations(m *types.Func) []*types.Func {
	if impls, ok := g.impls[m]; ok {
		return impls
	}
	var out []*types.Func
	sig, _ := m.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, named := range g.named {
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				out = append(out, impl)
			}
		}
	}
	g.impls[m] = out
	return out
}

// PathTo returns a call path from one of roots to target as positions and
// functions, using breadth-first search (shortest path), or nil if target
// is unreachable. The returned slice alternates caller sites: element i
// describes the call made by the i-th function on the path.
func (g *CallGraph) PathTo(roots []*types.Func, target *types.Func) []CallEdge {
	type queued struct {
		fn   *types.Func
		path []CallEdge
	}
	visited := map[*types.Func]bool{}
	var queue []queued
	for _, r := range roots {
		if !visited[r] {
			visited[r] = true
			queue = append(queue, queued{fn: r})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.fn == target {
			return cur.path
		}
		for _, e := range g.Edges[cur.fn] {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			next := make([]CallEdge, len(cur.path), len(cur.path)+1)
			copy(next, cur.path)
			queue = append(queue, queued{fn: e.Callee, path: append(next, e)})
		}
	}
	return nil
}
