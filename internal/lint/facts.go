package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The facts layer gives every declared function a summary of the
// concurrency-relevant effects of running it, computed from its own body
// (the "direct" summary here) and then propagated bottom-up over the call
// graph (summary.go), so rules can ask "does calling f — through any
// chain of module functions — plainly write shared state?" without
// re-walking any body.

// WriteVia records how a plain write reaches shared memory, which decides
// whether a call site must supply shared state for the write to be racy.
type WriteVia uint8

const (
	// ViaPointer: the write dereferences a receiver or parameter — it only
	// touches memory the caller handed in, so it is racy exactly when the
	// caller passes shared (captured) state.
	ViaPointer WriteVia = iota
	// ViaGlobal: the write targets a package-level variable (or a field
	// reached from one) — racy from any concurrent context, no argument
	// needed.
	ViaGlobal
)

// writeSite is one plain write to a shared object.
type writeSite struct {
	Pos token.Pos
	Via WriteVia
	Fn  *types.Func // function whose body contains the write
}

// Summary captures the direct facts of one function body. Nested function
// literals are included: their effects happen under a call to the
// declaration (a may-analysis does not care on which goroutine).
type Summary struct {
	Fn *types.Func
	// PlainWrites maps shared objects (struct fields, package-level vars)
	// to the first plain (non-atomic, non-element) write in the body.
	// Writes whose root is a variable local to the body are excluded: they
	// touch function-private memory.
	PlainWrites map[types.Object]writeSite
	// Atomics maps shared objects to the first sync/atomic function-form
	// access (atomic.AddInt64(&x, ...) and friends) in the body.
	Atomics map[types.Object]token.Pos
	// ConcReads maps shared objects to the first plain read inside a
	// goroutine or parallel closure in the body.
	ConcReads map[types.Object]token.Pos
	// Spawns reports whether the body launches parallelism (a go statement
	// or a parallel.For/ForRange/Do/ForCancel/ForRangeCancel call).
	Spawns bool
}

// sharedVar resolves obj to a *types.Var that denotes shared memory — a
// struct field (shared across all instances, the engine's granularity) or
// a package-level variable — or nil.
func sharedVar(obj types.Object) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// rootIdent unwraps selector / index / star / paren chains to the base
// identifier: x.f[i].g -> x. Returns nil for rootless expressions
// (composite literals, call results).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// rootVar resolves the base identifier of e to its variable object.
func rootVar(pkg *Package, e ast.Expr) *types.Var {
	id := rootIdent(e)
	if id == nil || pkg.Info == nil {
		return nil
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// localTo reports whether v is declared inside fd's body — memory no
// caller can see, so writes through it are not shared effects. Parameters
// and receivers are declared in fd's signature, before Body.Pos(), so they
// correctly do not count as local.
func localTo(v *types.Var, fd *ast.FuncDecl) bool {
	return fd.Body != nil && v.Pos() >= fd.Body.Pos() && v.Pos() <= fd.Body.End()
}

// exprType returns the type recorded for e, falling back to the object
// type for bare identifiers. Nil when type information is missing.
func exprType(pkg *Package, e ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// crossesShared reports whether the selector chain of a field write passes
// through a pointer dereference or a slice/map index on the way from the
// root variable to the written field. If it never does, the write mutates
// the root variable's own storage; if the root is then a by-value
// parameter or receiver, the write is function-private. Unknown prefix
// types (tolerant checking near stubs) count as crossing — the
// conservative direction for a may-analysis is to keep the write.
func crossesShared(pkg *Package, target ast.Expr) bool {
	e := unparen(target)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		base := unparen(sel.X)
		switch base.(type) {
		case *ast.StarExpr, *ast.IndexExpr:
			return true
		}
		t := exprType(pkg, base)
		if t == nil {
			return true
		}
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			return true
		}
		e = base
	}
}

// onceGuarded reports whether the write sits inside a function literal
// passed directly to a value's Do method — the sync.Once pattern
// (`once.Do(func() { ... })`): the runtime guarantees the body runs once
// with a happens-before edge to every Do return, so its writes are
// synchronized by construction. Matching is by method name on a non-package
// receiver, which deliberately excludes parallel.Do (package-qualified).
func onceGuarded(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 1; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" || pkgOf(pkg, sel.X) != "" {
			continue
		}
		for _, arg := range call.Args {
			if unparen(arg) == lit {
				return true
			}
		}
	}
	return false
}

// buildDirectSummary walks one function body and records its direct facts.
func buildDirectSummary(pkg *Package, fn *types.Func, fd *ast.FuncDecl) *Summary {
	s := &Summary{
		Fn:          fn,
		PlainWrites: map[types.Object]writeSite{},
		Atomics:     map[types.Object]token.Pos{},
		ConcReads:   map[types.Object]token.Pos{},
	}
	if pkg.Info == nil || fd.Body == nil {
		return s
	}

	// lockPositions are the sites of mu.Lock()/mu.RLock() calls in the
	// body: a plain write after one is following a declared lock
	// discipline, which is the callee's synchronization contract — lock
	// *correctness* is the race tier's job, not this engine's.
	var lockPositions []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && pkgOf(pkg, sel.X) == "" {
				lockPositions = append(lockPositions, call.Pos())
			}
		}
		return true
	})
	lockedBefore := func(pos token.Pos) bool {
		for _, lp := range lockPositions {
			if lp < pos {
				return true
			}
		}
		return false
	}

	recordWrite := func(stack []ast.Node, target ast.Expr) {
		target = unparen(target)
		// Element writes (a[i] = ...) are the sanctioned index-disjoint
		// pattern; writes through an explicit deref (*p = ...) have no
		// trackable object.
		switch target.(type) {
		case *ast.IndexExpr, *ast.StarExpr:
			return
		}
		obj := sharedVar(accessKey(pkg, target))
		if obj == nil {
			return
		}
		root := rootVar(pkg, target)
		if root == nil {
			return
		}
		if lockedBefore(target.Pos()) || onceGuarded(pkg, stack) {
			return
		}
		if !obj.IsField() {
			// Package-level variable written directly.
			if _, ok := s.PlainWrites[obj]; !ok {
				s.PlainWrites[obj] = writeSite{Pos: target.Pos(), Via: ViaGlobal, Fn: fn}
			}
			return
		}
		via := ViaPointer
		rootGlobal := sharedVar(root) != nil && !root.IsField()
		if rootGlobal {
			via = ViaGlobal // field reached from a package-level root
		} else if localTo(root, fd) {
			return // field of body-local state: function-private memory
		}
		if !rootGlobal && !crossesShared(pkg, target) {
			// The selector chain never dereferences a pointer or indexes a
			// slice/map, so the write lands in the root variable's own
			// storage — and a non-pointer root that is not body-local is a
			// value parameter or receiver: the callee's private copy,
			// invisible to callers.
			if _, isPtr := root.Type().Underlying().(*types.Pointer); !isPtr {
				return
			}
		}
		if old, ok := s.PlainWrites[obj]; !ok || (via == ViaGlobal && old.Via == ViaPointer) {
			s.PlainWrites[obj] = writeSite{Pos: target.Pos(), Via: via, Fn: fn}
		}
	}

	atomicArgs := map[ast.Node]bool{}
	var concurrent map[*ast.FuncLit]bool
	// Collect the concurrent literals of the whole file once; membership
	// tests below only ever see literals inside fd.
	for _, file := range pkg.Files {
		if file.Pos() <= fd.Pos() && fd.Pos() <= file.End() {
			concurrent = concurrentLits(pkg, file)
			break
		}
	}

	walkStack(fd.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				recordWrite(stack, lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(stack, n.X)
		case *ast.GoStmt:
			s.Spawns = true
		case *ast.CallExpr:
			if isParallelLaunch(pkg, n) {
				s.Spawns = true
			}
			if target, ok := atomicCallTarget(pkg, n); ok {
				atomicArgs[n.Args[0]] = true
				if obj := sharedVar(accessKey(pkg, target)); obj != nil {
					if _, seen := s.Atomics[obj]; !seen {
						s.Atomics[obj] = target.Pos()
					}
				}
			}
		case *ast.SelectorExpr:
			if atomicArgs[stack[len(stack)-1]] {
				return false
			}
			s.recordConcRead(pkg, stack, n, concurrent)
		case *ast.Ident:
			if len(stack) >= 2 {
				if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true // handled at the selector
				}
			}
			if _, isDecl := pkg.Info.Defs[n]; isDecl {
				return true
			}
			s.recordConcRead(pkg, stack, n, concurrent)
		case *ast.UnaryExpr:
			if atomicArgs[n] {
				return false // the &target of an atomic op is not a plain access
			}
		}
		return true
	})
	return s
}

// recordConcRead records a plain read of a shared object inside a
// goroutine/parallel closure.
func (s *Summary) recordConcRead(pkg *Package, stack []ast.Node, e ast.Expr, concurrent map[*ast.FuncLit]bool) {
	if classifyAccess(stack) != accessRead {
		return // writes are recorded by the assignment pass
	}
	if !enclosingConcurrent(stack, concurrent) {
		return
	}
	obj := sharedVar(accessKey(pkg, e))
	if obj == nil {
		return
	}
	if _, seen := s.ConcReads[obj]; !seen {
		s.ConcReads[obj] = e.Pos()
	}
}
