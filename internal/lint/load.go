package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module. It
// resolves module-internal imports by recursively loading the imported
// directory, serves sync and sync/atomic from embedded stubs, and hands out
// empty placeholder packages for everything else (see stubs.go). All of
// this is stdlib-only; no export data or x/tools machinery is required.
type Loader struct {
	ModuleRoot   string
	ModulePath   string
	IncludeTests bool

	fset    *token.FileSet
	pkgs    map[string]*Package       // keyed by absolute directory
	stubs   map[string]*types.Package // sync, sync/atomic
	fakes   map[string]*types.Package // everything else
	loading map[string]bool           // import-cycle guard, keyed by dir
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		pkgs:       map[string]*Package{},
		stubs:      map[string]*types.Package{},
		fakes:      map[string]*types.Package{},
		loading:    map[string]bool{},
	}, nil
}

// Fset exposes the loader's shared file set (needed to render positions).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return d, "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps an absolute in-module directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module-internal import path to its absolute directory, or
// "" if the path is not inside this module.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if pkg, ok := l.stubs[importPath]; ok {
		return pkg, nil
	}
	if src, ok := stubSources[importPath]; ok {
		pkg, err := buildStub(l.fset, importPath, src, l)
		if err != nil {
			return nil, err
		}
		l.stubs[importPath] = pkg
		return pkg, nil
	}
	if dir := l.dirFor(importPath); dir != "" && !l.loading[dir] {
		p, err := l.LoadDir(dir)
		if err == nil && p.Types != nil {
			return p.Types, nil
		}
	}
	if pkg, ok := l.fakes[importPath]; ok {
		return pkg, nil
	}
	pkg := types.NewPackage(importPath, placeholderName(importPath))
	pkg.MarkComplete()
	l.fakes[importPath] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the package in dir (memoized). Test files
// are included only when IncludeTests is set, and external-test
// ("package foo_test") files are always skipped: the analyzers target the
// library code itself.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue // external test package
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	p := &Package{
		Dir:   dir,
		Path:  l.importPathFor(dir),
		Fset:  l.fset,
		Files: files,
	}
	l.pkgs[dir] = p
	if len(files) == 0 {
		return p, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    l,
		Error:       func(error) {}, // tolerate unresolved stdlib members
		FakeImportC: true,
	}
	l.loading[dir] = true
	tpkg, _ := conf.Check(p.Path, l.fset, files, info) // best-effort
	delete(l.loading, dir)
	p.Types = tpkg
	p.Info = info
	return p, nil
}

// Load expands the given patterns (a directory, or dir/... for the
// recursive form; "./..." covers the whole module) into package directories
// and loads each. Directories named testdata, vendor, or starting with "."
// or "_" are skipped by ... expansion unless the pattern root itself lies
// inside them, so `pasgal-vet ./...` ignores analyzer fixtures while
// `pasgal-vet ./internal/lint/testdata/...` vets them deliberately.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(p.Files) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: not a directory: %s", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		insideSkipped := strings.Contains(base, string(filepath.Separator)+"testdata")
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || (name == "testdata" && !insideSkipped)) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}
