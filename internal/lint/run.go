package lint

// Options configures a vet run.
type Options struct {
	// Dir anchors module discovery and relative patterns; "" means the
	// current working directory.
	Dir string
	// IncludeTests adds in-package _test.go files to each analyzed unit.
	IncludeTests bool
	// Rules selects a subset of analyzers by name; empty runs all.
	Rules []string
}

// Run loads the packages matched by patterns (e.g. "./...") and returns all
// findings, sorted, with allowlist suppressions applied.
func Run(patterns []string, opts Options) ([]Finding, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	loader.IncludeTests = opts.IncludeTests
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs := make([]string, len(patterns))
	for i, p := range patterns {
		abs[i] = p
		if p != "..." && !isAbs(p) {
			abs[i] = dir + "/" + p
		}
	}
	pkgs, err := loader.Load(abs)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, Analyze(pkg, opts.Rules)...)
	}
	return out, nil
}

func isAbs(p string) bool {
	return len(p) > 0 && p[0] == '/'
}
