package lint

// Options configures a vet run.
type Options struct {
	// Dir anchors module discovery and relative patterns; "" means the
	// current working directory.
	Dir string
	// IncludeTests adds in-package _test.go files to each analyzed unit.
	IncludeTests bool
	// Rules selects a subset of analyzers by name; empty runs all.
	Rules []string
}

// Result is the outcome of a vet run: findings plus the engine's phase
// and per-package timings.
type Result struct {
	Findings []Finding
	Timings  []Timing
}

// Run loads the packages matched by patterns (e.g. "./...") into a module
// and returns all findings, sorted, with allowlist suppressions applied.
func Run(patterns []string, opts Options) ([]Finding, error) {
	res, err := RunResult(patterns, opts)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunResult is Run with the engine timings attached.
func RunResult(patterns []string, opts Options) (*Result, error) {
	mod, err := LoadModule(patterns, opts)
	if err != nil {
		return nil, err
	}
	findings := mod.Analyze(opts.Rules)
	return &Result{Findings: findings, Timings: mod.Timings}, nil
}

func isAbs(p string) bool {
	return len(p) > 0 && p[0] == '/'
}
