package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentinelErrorAnalyzer reports ==/!= comparisons (and switch cases)
// against sentinel error values: ErrCanceled, ErrDeadline, io.EOF, and
// anything else following the ErrXxx / EOF naming convention. The
// robustness contract (docs/ROBUSTNESS.md) wraps causes — a run canceled
// with a custom cause returns an error that wraps ErrCanceled, so
// `err == ErrCanceled` silently misses it. `errors.Is` unwraps and is the
// only comparison the typed-error contract supports.
//
// Matching is name-based with a type veto: an operand named ErrXxx or EOF
// counts only when it resolves to a variable of error type (or does not
// resolve at all — stdlib sentinels like io.EOF live in placeholder
// packages under the stub loader). Comparisons against nil are the
// sanctioned "any error at all?" test and are never flagged.
func SentinelErrorAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "sentinel-error-compare",
		Doc:  "==/!= against a sentinel error (ErrCanceled, io.EOF, ...); use errors.Is",
		Run:  runSentinelError,
	}
}

func runSentinelError(pkg *Package) []Finding {
	var out []Finding
	report := func(pos token.Pos, name, op string) {
		out = append(out, Finding{
			Pos:  pkg.position(pos),
			Rule: "sentinel-error-compare",
			Message: fmt.Sprintf(
				"%s compared with %s; wrapped causes make this miss — use errors.Is(err, %s)",
				name, op, name),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				x, y := unparen(n.X), unparen(n.Y)
				if isNilIdent(x) || isNilIdent(y) {
					return true
				}
				if name, ok := sentinelErrorName(pkg, x); ok {
					report(n.Pos(), name, n.Op.String())
				} else if name, ok := sentinelErrorName(pkg, y); ok {
					report(n.Pos(), name, n.Op.String())
				}
			case *ast.SwitchStmt:
				// switch err { case ErrCanceled: ... } is the same
				// comparison in disguise.
				if n.Tag == nil || isNilIdent(unparen(n.Tag)) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, v := range cc.List {
						if name, ok := sentinelErrorName(pkg, unparen(v)); ok {
							report(v.Pos(), name, "switch case")
						}
					}
				}
			}
			return true
		})
	}
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// sentinelErrorName reports whether e denotes a sentinel error value by
// the ErrXxx / EOF naming convention, returning its display name. A
// resolved object must be a variable of error-ish type; unresolved names
// (placeholder-package members like io.EOF) pass on syntax alone.
func sentinelErrorName(pkg *Package, e ast.Expr) (string, bool) {
	var id *ast.Ident
	display := ""
	switch e := e.(type) {
	case *ast.Ident:
		id = e
		display = e.Name
	case *ast.SelectorExpr:
		id = e.Sel
		if base, ok := unparen(e.X).(*ast.Ident); ok {
			display = base.Name + "." + e.Sel.Name
		} else {
			return "", false // x.y.Err: a field chain, not a package sentinel
		}
		if pkg.Info != nil {
			// Only package-qualified selectors count: comparing a struct
			// field that happens to be named ErrSomething is out of scope.
			if pkgOf(pkg, e.X) == "" {
				return "", false
			}
		}
	default:
		return "", false
	}
	name := id.Name
	if !isSentinelName(name) {
		return "", false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok && obj != nil {
			v, isVar := obj.(*types.Var)
			if !isVar || !errorish(v.Type()) {
				return "", false
			}
		}
	}
	return display, true
}

// isSentinelName matches the convention: EOF, or Err followed by an
// upper-case letter (ErrCanceled, ErrDeadline, ErrNotExist, ...).
func isSentinelName(name string) bool {
	if name == "EOF" {
		return true
	}
	if !strings.HasPrefix(name, "Err") || len(name) < 4 {
		return false
	}
	c := name[3]
	return c >= 'A' && c <= 'Z'
}

// errorish accepts the universe error type, any type implementing it, and
// invalid/unknown types (tolerant checking leaves those on expressions
// touching stubbed imports).
func errorish(t types.Type) bool {
	if t == nil {
		return true
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.Invalid {
		return true
	}
	errType := types.Universe.Lookup("error").Type()
	iface, ok := errType.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
