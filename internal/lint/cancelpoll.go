package lint

import (
	"fmt"
	"go/ast"
)

// CancelPollAnalyzer reports round/phase-boundary loops that never poll
// the run's cancellation token. The cancellation contract (see
// docs/ROBUSTNESS.md) requires every algorithm driver to check its
// core.Canceler at each round boundary: a loop that records rounds or
// phases but never calls Poll keeps running arbitrarily long after the
// context is done — exactly the bug the contract exists to prevent, and
// one no dynamic test catches unless it happens to cancel inside that
// specific loop.
//
// The rule fires only inside functions that hold a Canceler (a parameter
// of type *Canceler / *core.Canceler, or a local obtained from
// NewCanceler), so non-cancellable code is never flagged. Within such a
// function, any for/range loop whose body records a round or phase
// boundary (Metrics.Round, Metrics.AddPhase, Metrics.AddBottomUp) must
// also contain a Poll call. Matching is syntactic on method names, so it
// keeps working where cross-package type information is stubbed.
func CancelPollAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "cancel-poll",
		Doc:  "a round/phase loop in a function holding a Canceler must poll it",
		Run:  runCancelPoll,
	}
}

// boundaryMethods are the Metrics methods that mark a loop as a
// round/phase boundary loop.
var boundaryMethods = map[string]bool{
	"Round": true, "AddPhase": true, "AddBottomUp": true,
}

func runCancelPoll(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !holdsCanceler(fd) {
				continue
			}
			out = append(out, checkCancelPoll(pkg, fd)...)
		}
	}
	return out
}

// holdsCanceler reports whether fd has a cancellation token to poll: a
// parameter of (syntactic) type *Canceler or *core.Canceler, or a body
// that calls NewCanceler.
func holdsCanceler(fd *ast.FuncDecl) bool {
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if isCancelerType(field.Type) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if fun.Name == "NewCanceler" {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "NewCanceler" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isCancelerType matches the syntactic forms *Canceler and *pkg.Canceler.
func isCancelerType(t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch e := unparen(star.X).(type) {
	case *ast.Ident:
		return e.Name == "Canceler"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Canceler"
	}
	return false
}

// checkCancelPoll attributes each boundary call to its nearest enclosing
// loop and flags loops that contain a boundary call but no Poll call.
func checkCancelPoll(pkg *Package, fd *ast.FuncDecl) []Finding {
	type loopInfo struct {
		node     ast.Node // *ast.ForStmt or *ast.RangeStmt
		boundary string   // first boundary method seen, "" if none
		polled   bool
	}
	loops := map[ast.Node]*loopInfo{}
	var order []ast.Node

	nearestLoop := func(stack []ast.Node) ast.Node {
		// stack[len-1] is the call; skip it and find the closest loop.
		for i := len(stack) - 2; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return stack[i]
			}
		}
		return nil
	}

	walkStack(fd.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if loops[n] == nil {
				loops[n] = &loopInfo{node: n}
				order = append(order, n)
			}
		case *ast.CallExpr:
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Poll" && !boundaryMethods[name] {
				return true
			}
			loop := nearestLoop(stack)
			if loop == nil {
				return true
			}
			info := loops[loop]
			if name == "Poll" {
				// A poll anywhere inside the loop body satisfies every
				// boundary call attributed to that loop — and, since an
				// outer loop's body contains its inner loops, polling the
				// outer round loop does not excuse an un-polled inner one.
				info.polled = true
			} else if info.boundary == "" {
				info.boundary = name
			}
		}
		return true
	})

	var out []Finding
	for _, node := range order {
		info := loops[node]
		if info.boundary == "" || info.polled {
			continue
		}
		// An inner boundary loop inherits a poll from an enclosing loop
		// only if the poll is syntactically inside that inner loop — which
		// it is not, or polled would be set. Flag it.
		out = append(out, Finding{
			Pos:  pkg.position(node.Pos()),
			Rule: "cancel-poll",
			Message: fmt.Sprintf(
				"loop records a round/phase boundary (%s) but never polls the Canceler; a canceled context cannot stop it — add cl.Poll() at the loop top (docs/ROBUSTNESS.md)",
				info.boundary),
		})
	}
	return out
}
