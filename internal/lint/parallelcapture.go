package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ParallelCaptureAnalyzer reports assignments, inside closures that run on
// other goroutines (bodies passed to parallel.For / parallel.ForRange /
// parallel.Do, or launched with `go`), to variables declared outside the
// closure. Two loop iterations scheduled on different workers then race on
// the same memory cell: the classic `sum += x` / `out = append(out, x)`
// reduction bug that a sequential run never exposes.
//
// Index-disjoint writes (`out[i] = ...`) are the sanctioned pattern and are
// not flagged — each iteration owns its own element. Writes through
// sync/atomic are calls, not assignments, so they never trigger the rule.
func ParallelCaptureAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "parallel-capture",
		Doc:  "closure passed to parallel.For/Do or go-launched mutates a captured variable",
		Run:  runParallelCapture,
	}
}

func runParallelCapture(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		concurrent := concurrentLits(pkg, file)
		if len(concurrent) == 0 {
			continue
		}
		walkStack(file, func(stack []ast.Node) bool {
			n := stack[len(stack)-1]
			lit := nearestConcurrentLit(stack, concurrent)
			if lit == nil {
				return true
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					// `x := ...` declares a fresh variable — only flag
					// identifiers that resolve to an existing (captured)
					// one.
					obj := pkg.Info.Uses[id]
					if v, ok := obj.(*types.Var); ok && capturedBy(v, lit) {
						out = append(out, capturedFinding(pkg, id, v))
					}
				}
			case *ast.IncDecStmt:
				if id, ok := unparen(st.X).(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok && capturedBy(v, lit) {
						out = append(out, capturedFinding(pkg, id, v))
					}
				}
			}
			return true
		})
	}
	return out
}

// nearestConcurrentLit returns the innermost ancestor function literal on
// the stack that runs concurrently, or nil.
func nearestConcurrentLit(stack []ast.Node, set map[*ast.FuncLit]bool) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok && set[lit] {
			return lit
		}
	}
	return nil
}

// capturedBy reports whether v is declared outside lit (and therefore
// captured by reference). Package-level variables count: mutating one from
// a parallel body is just as racy.
func capturedBy(v *types.Var, lit *ast.FuncLit) bool {
	if v.IsField() {
		return false // field writes go through a captured *pointer*; out of scope
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

func capturedFinding(pkg *Package, id *ast.Ident, v *types.Var) Finding {
	return Finding{
		Pos:  pkg.position(id.Pos()),
		Rule: "parallel-capture",
		Message: fmt.Sprintf(
			"captured variable %s (declared at %s) is assigned inside a goroutine/parallel closure; use an atomic, a per-chunk slot, or a post-join reduction",
			id.Name, pkg.position(v.Pos())),
	}
}
