// Package cg is a pure call-graph fixture: no rule flags anything here, it
// exists so callgraph_test.go can assert the edge structure — direct
// calls, interface-call resolution, and method values — on stable syntax.
package cg

// Runner is implemented by both A (pointer receiver) and B (value
// receiver); an interface call must fan out to both.
type Runner interface{ Run() }

// A implements Runner with a pointer receiver.
type A struct{ n int }

func (a *A) Run() { a.n++ }

// B implements Runner with a value receiver.
type B struct{}

func (B) Run() {}

// Launch makes an interface call: every implementation is a may-callee.
func Launch(r Runner) { r.Run() }

// Handoff returns a method value; whoever receives it may invoke it.
func Handoff(a *A) func() { return a.Run }

// Chain reaches (*A).Run in two hops through the interface call.
func Chain() { Launch(&A{}) }
