// Package sentinel exercises the sentinel-error-compare analyzer: sentinel
// errors must be tested with errors.Is, never ==/!= or switch equality,
// because the typed-error contract wraps causes.
package sentinel

import (
	"errors"
	"fmt"
	"io"
)

// ErrTooBig is a package sentinel following the ErrXxx convention.
var ErrTooBig = errors.New("sentinel: too big")

// bad compares sentinels directly; wrapped causes slip through.
func bad(err error) string {
	if err == io.EOF { // want:sentinel-error-compare
		return "eof"
	}
	if err != ErrTooBig { // want:sentinel-error-compare
		return "other"
	}
	return ""
}

// badSwitch is the same comparison in disguise.
func badSwitch(err error) string {
	switch err {
	case io.EOF: // want:sentinel-error-compare
		return "eof"
	case ErrTooBig: // want:sentinel-error-compare
		return "big"
	}
	return ""
}

// good uses errors.Is, nil tests, and names the type veto rejects.
func good(err error) string {
	if errors.Is(err, io.EOF) { // ok: unwrapping comparison
		return "eof"
	}
	if err == nil { // ok: nil test is the "any error at all?" check
		return "none"
	}
	const ErrName = "x"
	if fmt.Sprint(err) == ErrName { // ok: Err-named constant of string type
		return "named"
	}
	return ""
}

// result carries an error field that happens to follow the convention.
type result struct{ ErrFirst error }

// goodField compares against a struct field, not a package sentinel.
func goodField(r result, err error) bool {
	return err == r.ErrFirst // ok: field access, not a sentinel
}
