// Package pool exercises the analyzers against the work-stealing
// scheduler's ownership conventions (internal/parallel): a chunk range
// packed into one uint64 that its owner pops from the front (CAS) while
// thieves halve it from the back (CAS), and an owner-only deposit that is
// a plain store by design. The positive cases show the idioms the
// conventions forbid; the negative cases are the real pool patterns, which
// must stay clean — a false positive here would force blanket suppressions
// in the runtime.
package pool

import "sync/atomic"

// deque is the fixture analogue of the pool's participant slot: head/tail
// chunk indices packed lo<<32|hi into one CAS word.
type deque struct {
	bounds uint64
	// stats is owner-local bookkeeping, never shared.
	stats int64
}

func pack(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

// takeOne is the owner's pop: CAS the front chunk off the packed range.
// Consistently atomic — must not be flagged.
func takeOne(d *deque) (uint32, bool) {
	for {
		b := atomic.LoadUint64(&d.bounds)
		lo, hi := uint32(b>>32), uint32(b)
		if lo >= hi {
			return 0, false
		}
		if atomic.CompareAndSwapUint64(&d.bounds, b, pack(lo+1, hi)) {
			return lo, true
		}
	}
}

// stealHalf is the thief's half-steal from the back. Same word, same
// discipline — must not be flagged.
func stealHalf(d *deque) (uint32, uint32, bool) {
	for {
		b := atomic.LoadUint64(&d.bounds)
		lo, hi := uint32(b>>32), uint32(b)
		if lo >= hi {
			return 0, 0, false
		}
		mid := lo + (hi-lo+1)/2
		if atomic.CompareAndSwapUint64(&d.bounds, b, pack(lo, mid)) {
			return mid, hi, true
		}
	}
}

// deposit is the pool's owner-only store: only the slot's owner writes a
// non-empty range into its own emptied slot, so the store needs no CAS —
// but it stays an *atomic* store because thieves load concurrently. The
// straight-line plain read before it is permitted (plain reads are flagged
// only inside concurrent closures).
func deposit(d *deque, lo, hi uint32) {
	if d.bounds != 0 {
		return
	}
	atomic.StoreUint64(&d.bounds, pack(lo, hi))
}

// watcher shows the allowlist in the pool's own terms: a monitoring
// goroutine reads the CAS word plainly, vetted because a stale value only
// delays it one iteration.
func watcher(d *deque, stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if d.bounds == 0 { //pasgal:vet ignore=mixed-access -- monitoring only; stale reads are benign
				return
			}
		}
	}()
}

// badPlainPush breaks the convention: a plain write to the CAS word races
// with every thief's CAS.
func badPlainPush(d *deque) {
	d.bounds = 1 << 32 // want:mixed-access
}

// badConcurrentPeek reads the word plainly from a goroutine without a
// justification comment.
func badConcurrentPeek(d *deque) {
	go func() {
		b := d.bounds // want:mixed-access
		_ = b
	}()
}

// ownerLocal touches owner-local state plainly only — no atomics anywhere,
// nothing to flag.
func ownerLocal(d *deque) {
	d.stats++
}
