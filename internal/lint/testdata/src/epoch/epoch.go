// Package epoch exercises the epoch-misuse analyzer: a snapshot pinned
// from a delta store must not be used after Release, and must not be
// held open across an explicit Compact in the same block. The types
// mirror internal/delta's Store/Snapshot shapes; the analyzer matches
// method names syntactically, exactly as it must against stubbed
// imports.
package epoch

type Adj struct{ N int }

type Snapshot struct{ view *Adj }

func (s *Snapshot) Adj() *Adj  { return s.view }
func (s *Snapshot) Epoch() int { return 0 }
func (s *Snapshot) Release()   {}

type Store struct{}

func (st *Store) Snapshot() *Snapshot { return &Snapshot{view: &Adj{}} }
func (st *Store) Compact()            {}

func use(a *Adj) {}

// badUseAfterRelease is the use-after-free the rule exists for: once
// Release runs the pin is gone, the epoch can retire, and the late
// Epoch call reads a snapshot whose view may already be recycled.
func badUseAfterRelease(st *Store) int {
	sn := st.Snapshot()
	n := sn.Adj().N
	sn.Release()
	return n + sn.Epoch() // want:epoch-misuse
}

// badHeldAcrossCompact pins an epoch across the compaction barrier:
// the pinned view never observes the compaction, and the pin keeps the
// whole pre-compaction CSR alive for the duration.
func badHeldAcrossCompact(st *Store) {
	sn := st.Snapshot()
	st.Compact() // want:epoch-misuse
	use(sn.Adj())
	sn.Release()
}

// goodReleaseAfterUse is the canonical shape: pin, read, release.
func goodReleaseAfterUse(st *Store) int {
	sn := st.Snapshot()
	n := sn.Adj().N
	sn.Release()
	return n
}

// goodDeferRelease: a deferred Release runs at function exit, after
// every use — the idiomatic query shape, never a finding.
func goodDeferRelease(st *Store) int {
	sn := st.Snapshot()
	defer sn.Release()
	return sn.Adj().N
}

// goodReacquire: releasing and re-pinning resets the variable — uses
// after the second Snapshot are against the fresh pin.
func goodReacquire(st *Store) int {
	sn := st.Snapshot()
	a := sn.Adj().N
	sn.Release()
	sn = st.Snapshot()
	b := sn.Adj().N
	sn.Release()
	return a + b
}

// goodCompactAfterRelease: compacting once every pin in the block has
// been dropped is exactly how callers are meant to sequence it.
func goodCompactAfterRelease(st *Store) {
	sn := st.Snapshot()
	use(sn.Adj())
	sn.Release()
	st.Compact()
}

// goodBranchRelease: an early-return cleanup releases inside a nested
// block; the analyzer treats nested blocks as independent scopes, so
// the straight-line path's later use is not a use-after-release.
func goodBranchRelease(st *Store, fail bool) int {
	sn := st.Snapshot()
	if fail {
		sn.Release()
		return 0
	}
	n := sn.Adj().N
	sn.Release()
	return n
}

// goodFuncLitScope: a function literal is its own scope — capturing
// the snapshot inside a closure that runs before Release is fine, and
// the closure body is analyzed independently.
func goodFuncLitScope(st *Store) int {
	sn := st.Snapshot()
	read := func() int { return sn.Adj().N }
	n := read()
	sn.Release()
	return n
}
