// Package xb owns an atomically-maintained counter type: every mutation in
// this package goes through sync/atomic. The xpkg-mixed-access fixtures in
// package xa break the discipline from the other side of the import edge.
package xb

import "sync/atomic"

// Stats is shared between goroutines; N must only be touched atomically.
type Stats struct{ N int64 }

// Inc is the sanctioned mutation.
func Inc(s *Stats) { atomic.AddInt64(&s.N, 1) }

// Load is the sanctioned read.
func Load(s *Stats) int64 { return atomic.LoadInt64(&s.N) }
