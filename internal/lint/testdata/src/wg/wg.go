// Package wg exercises the wait-group-misuse analyzer.
package wg

import "sync"

// badAddInside calls Add from within the spawned goroutine: Wait can run
// before the goroutine is scheduled and return immediately.
func badAddInside(work func()) {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want:wait-group-misuse
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// badMissingWait launches but never joins.
func badMissingWait(work func()) {
	var wg sync.WaitGroup // want:wait-group-misuse
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// goodClassic is the correct pattern: Add before launch, Wait at the end.
func goodClassic(work func(i int)) {
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

// goodEscapes hands the WaitGroup to a helper; the Wait legitimately
// happens elsewhere, so no missing-Wait diagnostic.
func goodEscapes(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	join(&wg)
}

func join(wg *sync.WaitGroup) {
	wg.Wait()
}
