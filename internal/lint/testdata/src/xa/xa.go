// Package xa exercises the xpkg-mixed-access analyzer: it touches xb.Stats
// plainly while xb maintains the same field through sync/atomic — a split
// neither package's intra-package pass can see.
package xa

import (
	"pasgal/internal/lint/testdata/src/xb"
)

// badReset plainly writes the field xb increments atomically.
func badReset(s *xb.Stats) {
	s.N = 0 // want:xpkg-mixed-access
}

// badPeek reads the field plainly inside a goroutine.
func badPeek(s *xb.Stats, done chan struct{}) {
	go func() {
		_ = s.N // want:xpkg-mixed-access
		close(done)
	}()
}

// goodAtomic stays inside xb's accessors.
func goodAtomic(s *xb.Stats) int64 {
	xb.Inc(s)
	return xb.Load(s)
}
