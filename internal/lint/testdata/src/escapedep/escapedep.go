// Package escapedep is the cross-package half of the escape fixtures: its
// helpers write shared state on behalf of closures in package escape, so
// the escape-to-parallel analyzer only catches them by propagating write
// summaries across the import edge.
package escapedep

// Total is bumped plainly — racy from any concurrent context.
var Total int64

// Bump plainly increments the package counter.
func Bump() { Total++ }
