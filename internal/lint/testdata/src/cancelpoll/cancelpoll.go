// Package cancelpoll exercises the cancel-poll analyzer: round/phase
// loops in functions holding a Canceler must poll it. The types mirror
// internal/core's Canceler/Metrics shapes; the analyzer matches method
// names syntactically, exactly as it must against stubbed imports.
package cancelpoll

type Metrics struct{}

func (m *Metrics) Round(frontier int) {}
func (m *Metrics) AddPhase()          {}
func (m *Metrics) AddBottomUp()       {}

type Canceler struct{}

func (c *Canceler) Poll() error { return nil }

type Options struct{}

func NewCanceler(opt Options, met *Metrics) *Canceler { return &Canceler{} }

// badUnpolledRoundLoop is the bug the rule exists for: the driver builds
// a Canceler but its round loop never checks it, so cancellation cannot
// stop the run.
func badUnpolledRoundLoop(n int, opt Options) {
	met := &Metrics{}
	cl := NewCanceler(opt, met)
	_ = cl
	for i := 0; i < n; i++ { // want:cancel-poll
		met.Round(i)
	}
}

// badUnpolledPhaseLoop: same for phase boundaries, with the Canceler
// arriving as a parameter.
func badUnpolledPhaseLoop(n int, met *Metrics, cl *Canceler) {
	for i := 0; i < n; i++ { // want:cancel-poll
		met.AddPhase()
	}
}

// badInnerLoopNotExcusedByOuterPoll: polling the outer loop does not make
// the inner round loop cancellable — the run can spend arbitrarily long
// inside the inner loop between outer polls.
func badInnerLoopNotExcusedByOuterPoll(n int, met *Metrics, cl *Canceler) error {
	for p := 0; p < n; p++ {
		if err := cl.Poll(); err != nil {
			return err
		}
		for i := 0; i < n; i++ { // want:cancel-poll
			met.Round(i)
		}
	}
	return nil
}

// goodPolledRoundLoop is the contract's canonical shape: poll at the loop
// top, record the round after.
func goodPolledRoundLoop(n int, opt Options) error {
	met := &Metrics{}
	cl := NewCanceler(opt, met)
	for i := 0; i < n; i++ {
		if err := cl.Poll(); err != nil {
			return err
		}
		met.Round(i)
	}
	return nil
}

// goodRangeLoop: range loops are checked the same way.
func goodRangeLoop(frontier []int, met *Metrics, cl *Canceler) error {
	for range frontier {
		if err := cl.Poll(); err != nil {
			return err
		}
		met.AddBottomUp()
	}
	return nil
}

// goodNoCanceler: a function without a Canceler in scope is out of the
// rule's jurisdiction — it has nothing to poll.
func goodNoCanceler(n int) {
	met := &Metrics{}
	for i := 0; i < n; i++ {
		met.Round(i)
	}
}

// goodLoopWithoutBoundary: loops that record no round/phase boundary
// (result materialization, counting) need no poll.
func goodLoopWithoutBoundary(xs []int, cl *Canceler) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// goodAllowlisted shows the escape hatch: a deliberate exception carries
// the ignore comment and a justification.
func goodAllowlisted(n int, met *Metrics, cl *Canceler) {
	//pasgal:vet ignore=cancel-poll -- bounded to 3 iterations, cheaper than the poll
	for i := 0; i < 3; i++ {
		met.AddPhase()
	}
	_ = n
}
