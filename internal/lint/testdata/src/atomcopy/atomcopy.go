// Package atomcopy exercises the atomic-copy analyzer: sync/atomic values
// must be shared by pointer; copying one forks the counter.
package atomcopy

import "sync/atomic"

type stats struct {
	n atomic.Int64 // ok: embedding an atomic in a struct is the idiom
}

// badAssign copies an atomic value into a second variable.
func badAssign() int64 {
	var a atomic.Int64
	a.Store(1)
	b := a // want:atomic-copy
	return b.Load()
}

// badPass passes an atomic by value; badParam declares the by-value
// parameter that receives it.
func badPass() int64 {
	var a atomic.Int64
	return badParam(a) // want:atomic-copy
}

func badParam(v atomic.Int64) int64 { // want:atomic-copy
	return v.Load()
}

// badReturn returns an atomic by value (result type and return site).
func badReturn() atomic.Int64 { // want:atomic-copy
	var a atomic.Int64
	return a // want:atomic-copy
}

// badRange copies each element out of a slice of atomics.
func badRange(xs []atomic.Uint32) uint32 {
	var sum uint32
	for _, v := range xs { // want:atomic-copy
		sum += v.Load()
	}
	return sum
}

// goodPointer shares the atomic by pointer everywhere.
func goodPointer() int64 {
	a := &atomic.Int64{} // ok: composite literal constructs in place
	goodParam(a)
	return a.Load()
}

func goodParam(v *atomic.Int64) {
	v.Add(1)
}

// goodNew allocates an atomic with new: the argument is a type
// expression, not a value — nothing is copied.
func goodNew() int64 {
	a := new(atomic.Int64)
	a.Add(2)
	return a.Load()
}

// goodIndex iterates a slice of atomics by index, never copying.
func goodIndex(xs []atomic.Uint32) uint32 {
	var sum uint32
	for i := range xs {
		sum += xs[i].Load()
	}
	return sum
}

// goodField uses the embedded atomic through the enclosing pointer.
func goodField(s *stats) int64 {
	s.n.Add(1)
	return s.n.Load()
}
