// Package mixed exercises the mixed-access analyzer: positive cases mix
// sync/atomic and plain accesses on the same field or package variable;
// negative cases are either consistently atomic or read plainly only after
// the join. Lines carrying an expectation marker must be flagged; every
// other line must stay clean.
package mixed

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits   int64
	misses int64
	clean  int64
}

// bad mixes an atomic add with plain writes on the same field.
func bad(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	c.hits++   // want:mixed-access
	c.hits = 5 // want:mixed-access
}

var global int64

// badConcurrentRead reads an atomically-updated package variable plainly
// from inside a goroutine.
func badConcurrentRead() int64 {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := global // want:mixed-access
		_ = v
	}()
	atomic.AddInt64(&global, 1)
	wg.Wait()
	return atomic.LoadInt64(&global)
}

// goodConsistent touches a field only through sync/atomic.
func goodConsistent(c *counters) int64 {
	atomic.AddInt64(&c.clean, 1)
	return atomic.LoadInt64(&c.clean)
}

// goodPostJoinRead reads the field plainly, but in straight-line code after
// all concurrent updates have joined — the standard result-collection
// pattern, deliberately not flagged.
func goodPostJoinRead(c *counters) int64 {
	atomic.AddInt64(&c.clean, 1)
	return c.clean
}

// allowlisted shows the suppression mechanism: a provably safe plain write
// vetted with a justification. It must produce no finding.
func allowlisted(c *counters) {
	atomic.AddInt64(&c.misses, 1)
	c.misses = 0 //pasgal:vet ignore=mixed-access -- reset runs after every worker has joined
}
