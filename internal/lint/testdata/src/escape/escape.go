// Package escape exercises the escape-to-parallel analyzer: a closure
// handed to the fork-join runtime (or a go statement) calls a helper —
// here and in package escapedep — whose transitive summary plainly writes
// shared state the closure can reach. The intra-procedural parallel-capture
// rule cannot see any of these: the closure bodies contain only calls.
package escape

import (
	"pasgal/internal/lint/testdata/src/escapedep"
	"pasgal/internal/parallel"
)

// acc is a shared accumulator whose method plainly writes a field.
type acc struct{ n int64 }

func (a *acc) bump(v int64) { a.n += v }

func (a *acc) work() { a.n = 42 }

// relay hides the cross-package write one hop deeper.
func relay() { escapedep.Bump() }

// badMethod hands the captured receiver to a helper that plainly writes a
// field through it.
func badMethod(xs []int64) int64 {
	var a acc
	parallel.For(len(xs), 0, func(i int) {
		a.bump(xs[i]) // want:escape-to-parallel
	})
	return a.n
}

// badCrossPackage calls a helper in another package that bumps a
// package-level variable — racy from any concurrent context, no captured
// argument needed.
func badCrossPackage(n int) {
	parallel.For(n, 0, func(i int) {
		escapedep.Bump() // want:escape-to-parallel
	})
}

// badChained reaches the same write two hops away: closure -> relay ->
// escapedep.Bump. Only transitive summaries see it.
func badChained(n int) {
	parallel.For(n, 0, func(i int) {
		relay() // want:escape-to-parallel
	})
}

// badGoNamed launches a named function with go; package-level writes are
// flagged even without a closure.
func badGoNamed() {
	go escapedep.Bump() // want:escape-to-parallel
}

// goodLocalState passes state the closure created itself: the helper's
// pointer write cannot reach caller-visible memory.
func goodLocalState(n int) []int64 {
	out := make([]int64, n)
	parallel.For(n, 0, func(i int) {
		var local acc
		local.bump(int64(i)) // ok: receiver is closure-local
		out[i] = local.n
	})
	return out
}

// stat's value receiver mutates its own copy — not a shared write.
type stat struct{ n int64 }

func (s stat) observe() stat { s.n++; return s }

// goodValueReceiver calls a value-receiver helper: the write lands in the
// callee's private copy.
func goodValueReceiver(xs []stat) {
	parallel.For(len(xs), 0, func(i int) {
		xs[i] = xs[i].observe() // ok: value receiver writes a private copy
	})
}

// goodHandoff hands each privately-owned receiver's method to Do — the
// sanctioned ownership-transfer pattern; pointer-routed writes are not
// flagged for non-literal arms.
func goodHandoff() int64 {
	l, r := &acc{}, &acc{}
	parallel.Do(l.work, r.work)
	return l.n + r.n
}
