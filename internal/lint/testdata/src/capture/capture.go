// Package capture exercises the parallel-capture analyzer: closures handed
// to the fork-join runtime (or launched with go) must not assign to
// variables declared outside themselves.
package capture

import (
	"sync"
	"sync/atomic"

	"pasgal/internal/parallel"
)

// badSum is the classic racy reduction: every worker bumps the same cell.
func badSum(xs []int64) int64 {
	var sum int64
	parallel.For(len(xs), 0, func(i int) {
		sum += xs[i] // want:parallel-capture
	})
	return sum
}

// badAppend races on both the slice header and the backing array.
func badAppend(xs []int64) []int64 {
	var out []int64
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		out = append(out, xs[lo:hi]...) // want:parallel-capture
	})
	return out
}

// badGo mutates a captured counter from a plain goroutine.
func badGo() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++ // want:parallel-capture
	}()
	wg.Wait()
	return n
}

// goodIndexDisjoint writes only to the element owned by this iteration.
func goodIndexDisjoint(xs []int64) []int64 {
	out := make([]int64, len(xs))
	parallel.For(len(xs), 0, func(i int) {
		out[i] = xs[i] * 2 // ok: index-disjoint
	})
	return out
}

// goodAtomic reduces through an atomic.
func goodAtomic(xs []int64) int64 {
	var sum atomic.Int64
	parallel.For(len(xs), 0, func(i int) {
		sum.Add(xs[i]) // ok: atomic method call, not a plain assignment
	})
	return sum.Load()
}

// goodLocal accumulates into a variable owned by the closure.
func goodLocal(xs []int64) []int64 {
	chunks := make([]int64, len(xs))
	parallel.ForRange(len(xs), 0, func(lo, hi int) {
		acc := int64(0)
		for i := lo; i < hi; i++ {
			acc += xs[i] // ok: acc and i are declared inside the closure
		}
		chunks[lo] = acc // ok: lo-disjoint slot
	})
	return chunks
}

// allowlisted shows a vetted capture: the write is guarded by a sync.Once
// and only read after the join, so it is suppressed with a justification.
func allowlisted(xs []int64) int64 {
	var first int64
	var once sync.Once
	parallel.For(len(xs), 0, func(i int) {
		once.Do(func() {
			first = xs[i] //pasgal:vet ignore=parallel-capture -- sync.Once guards the single write; read after join
		})
	})
	return first
}
