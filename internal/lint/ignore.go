package lint

import (
	"go/token"
	"strings"
)

// ignoreSet records //pasgal:vet ignore=rule1,rule2 allowlist comments. A
// comment suppresses matching findings on its own line and on the line
// directly below it, so both trailing and leading placement work:
//
//	x++ //pasgal:vet ignore=parallel-capture -- guarded by once+Wait
//
//	//pasgal:vet ignore=mixed-access -- read happens after the join
//	x++
type ignoreSet struct {
	// byLine maps filename -> line -> set of ignored rules ("all" wildcard
	// allowed).
	byLine map[string]map[int]map[string]bool
}

const ignoreMarker = "pasgal:vet ignore="

func collectIgnores(pkg *Package) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, ignoreMarker)
				if i < 0 {
					continue
				}
				spec := text[i+len(ignoreMarker):]
				// Everything up to whitespace or "--" is the rule list.
				if j := strings.IndexAny(spec, " \t"); j >= 0 {
					spec = spec[:j]
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ig.byLine[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				for _, r := range strings.Split(spec, ",") {
					if r = strings.TrimSpace(r); r != "" {
						rules[r] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig *ignoreSet) suppressed(f Finding) bool {
	lines := ig.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if rules := lines[line]; rules != nil && (rules[f.Rule] || rules["all"]) {
			return true
		}
	}
	return false
}

// position is a small helper converting a token.Pos to a Finding position.
func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
