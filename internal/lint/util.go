package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walkStack traverses root in source order keeping the ancestor stack; fn
// sees the stack with the current node on top and returns false to prune
// the subtree.
func walkStack(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pkgOf resolves a selector base identifier to the import path of the
// package it names, or "" if it is not a package qualifier. Falls back to
// the identifier's own name when type information is missing, so fixture
// code still matches syntactically.
func pkgOf(pkg *Package, x ast.Expr) string {
	id, ok := unparen(x).(*ast.Ident)
	if !ok {
		return ""
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return "" // a real value, not a package qualifier
		}
	}
	return id.Name // untyped fallback: best-effort by name
}

// isAtomicPkg reports whether an import path (or syntactic fallback name)
// denotes sync/atomic.
func isAtomicPkg(path string) bool {
	return path == "sync/atomic" || path == "atomic"
}

// atomicCallTarget reports whether call is a sync/atomic package-level
// operation (atomic.AddInt64 & co.) and returns the expression whose
// address is taken as the first argument.
func atomicCallTarget(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isAtomicPkg(pkgOf(pkg, sel.X)) {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op.String() != "&" {
		return nil, false
	}
	return unparen(addr.X), true
}

// accessKey resolves an lvalue-ish expression to the object whose memory it
// denotes: a struct field (shared across all instances — the granularity
// the mixed-access rule wants) or a declared variable. Index expressions
// return the indexed object's key only for package-level slices; element
// identity is otherwise untrackable and yields nil.
func accessKey(pkg *Package, e ast.Expr) types.Object {
	if pkg.Info == nil {
		return nil
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e]; ok {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
		if obj, ok := pkg.Info.Defs[e]; ok {
			if v, ok := obj.(*types.Var); ok {
				return v
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		// Qualified package-level var (pkg.Var).
		if obj, ok := pkg.Info.Uses[e.Sel]; ok {
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				return v
			}
		}
	}
	return nil
}

// concurrentLits returns the set of function literals in file that run
// concurrently with their enclosing function: bodies of `go func(){...}()`
// statements and literals passed to the fork-join runtime
// (parallel.For/ForRange/Do and the internal/parallel package generally).
// Literals nested inside such a literal are concurrent too; callers test
// membership over the whole ancestor stack.
func concurrentLits(pkg *Package, file *ast.File) map[*ast.FuncLit]bool {
	set := map[*ast.FuncLit]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
				set[lit] = true
			}
		case *ast.CallExpr:
			if isParallelLaunch(pkg, n) {
				for _, arg := range n.Args {
					if lit, ok := unparen(arg).(*ast.FuncLit); ok {
						set[lit] = true
					}
				}
			}
		}
		return true
	})
	return set
}

// parallelLaunchFuncs are the internal/parallel entry points that execute
// their function-literal arguments on other goroutines. The cancellable
// variants run their bodies on exactly the same workers.
var parallelLaunchFuncs = map[string]bool{
	"For": true, "ForRange": true, "Do": true,
	"ForCancel": true, "ForRangeCancel": true,
}

// isParallelLaunch reports whether call invokes one of the fork-join
// runtime's launch functions (matched by the imported package path ending
// in "internal/parallel", or a package literally named parallel as the
// untyped fallback).
func isParallelLaunch(pkg *Package, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if !parallelLaunchFuncs[fun.Sel.Name] {
			return false
		}
		path := pkgOf(pkg, fun.X)
		return path == "parallel" || strings.HasSuffix(path, "/parallel")
	case *ast.Ident:
		// Unqualified call from inside the runtime package itself.
		return parallelLaunchFuncs[fun.Name] && pkg.Types != nil && pkg.Types.Name() == "parallel"
	}
	return false
}

// enclosingConcurrent reports whether any ancestor on the stack is a
// concurrent function literal from set.
func enclosingConcurrent(stack []ast.Node, set map[*ast.FuncLit]bool) bool {
	for _, n := range stack {
		if lit, ok := n.(*ast.FuncLit); ok && set[lit] {
			return true
		}
	}
	return false
}

// writeKind classifies how the expression at the top of the stack is
// accessed: "" for a plain read, "assigned" / "incremented" / "compound"
// for writes. The stack's last element must be the expression itself.
type accessKind int

const (
	accessRead accessKind = iota
	accessWrite
)

func classifyAccess(stack []ast.Node) accessKind {
	if len(stack) < 2 {
		return accessRead
	}
	expr := stack[len(stack)-1]
	switch parent := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if unparen(lhs) == expr {
				return accessWrite
			}
		}
	case *ast.IncDecStmt:
		if unparen(parent.X) == expr {
			return accessWrite
		}
	}
	return accessRead
}

// innermostFuncLit returns the nearest enclosing function literal on the
// stack, or nil.
func innermostFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}
