package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// EscapeToParallelAnalyzer is the interprocedural generalization of
// parallel-capture: a closure handed to the fork-join runtime (or a go
// statement) calls a helper — possibly in another package — whose
// transitive summary says it plainly writes shared state the closure can
// reach. The intra-procedural rule sees `sum += x` inside the closure; this
// rule sees `acc.bump(x)` where bump, three calls and one package away,
// does the same plain write.
//
// Precision comes from the facts layer (facts.go): a helper's write counts
// only if its root escapes the helper (receiver/parameter or package-level
// variable — writes to helper-local state are invisible side effects), and
// a pointer-routed write (ViaPointer) is reported only when the closure's
// call site actually passes captured state as the receiver or an argument.
// Package-level writes (ViaGlobal) are racy from any concurrent context
// and always reported. Non-literal arms (method values handed to
// parallel.Do, `go f()` on a named function) are held to the ViaGlobal bar
// only: handing a privately-owned receiver to one goroutine is the
// sanctioned ownership-transfer pattern.
func EscapeToParallelAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "escape-to-parallel",
		Doc:       "closure passed to parallel.For/Do or go calls a helper that plainly writes shared state",
		RunModule: runEscapeToParallel,
	}
}

func runEscapeToParallel(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			concurrent := concurrentLits(pkg, file)
			// Literal closures: full check, captured-root aware.
			for lit := range concurrent {
				out = append(out, m.checkConcurrentLit(pkg, lit, concurrent)...)
			}
			// Non-literal concurrent arms: go f(...) and function/method
			// values passed to the runtime.
			out = append(out, m.checkConcurrentValues(pkg, file)...)
		}
	}
	return out
}

// checkConcurrentLit walks one concurrent closure body and checks every
// direct call against the callee's transitive write summary.
func (m *Module) checkConcurrentLit(pkg *Package, lit *ast.FuncLit, concurrent map[*ast.FuncLit]bool) []Finding {
	var out []Finding
	reported := map[*ast.CallExpr]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit && concurrent[inner] {
			return false // processed as its own root
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call] {
			return true
		}
		var recv ast.Expr
		var callees []*types.Func
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				callees = append(callees, fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if isInterfaceMethod(fn) {
					callees = m.Graph.implementations(fn)
				} else {
					callees = append(callees, fn)
				}
				if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
					recv = fun.X
				}
			}
		}
		if len(callees) == 0 {
			return true
		}
		capturedArg := callSitePassesCaptured(pkg, lit, recv, call.Args)
		for _, fn := range callees {
			if f, ok := m.escapeFinding(pkg, call, fn, capturedArg); ok {
				out = append(out, f)
				reported[call] = true
				break // one finding per call site is enough signal
			}
		}
		return true
	})
	return out
}

// checkConcurrentValues flags `go f(...)` on named functions and
// function/method values handed to the parallel runtime, against the
// ViaGlobal bar.
func (m *Module) checkConcurrentValues(pkg *Package, file *ast.File) []Finding {
	var out []Finding
	check := func(site ast.Node, e ast.Expr) {
		var fns []*types.Func
		switch fun := unparen(e).(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
				fns = append(fns, fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if isInterfaceMethod(fn) {
					fns = m.Graph.implementations(fn)
				} else {
					fns = append(fns, fn)
				}
			}
		}
		for _, fn := range fns {
			if f, ok := m.escapeFinding(pkg, site, fn, false); ok {
				out = append(out, f)
				return
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, isLit := unparen(n.Call.Fun).(*ast.FuncLit); !isLit {
				check(n, n.Call.Fun)
			}
		case *ast.CallExpr:
			if isParallelLaunch(pkg, n) {
				for _, arg := range n.Args {
					if _, isLit := unparen(arg).(*ast.FuncLit); !isLit {
						check(arg, arg)
					}
				}
			}
		}
		return true
	})
	return out
}

// callSitePassesCaptured reports whether the receiver or any argument of a
// call inside lit is rooted at a variable declared outside lit — the state
// a pointer-routed write in the callee would reach.
func callSitePassesCaptured(pkg *Package, lit *ast.FuncLit, recv ast.Expr, args []ast.Expr) bool {
	exprs := args
	if recv != nil {
		exprs = append([]ast.Expr{recv}, args...)
	}
	for _, e := range exprs {
		e = unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = u.X
		}
		v := rootVar(pkg, e)
		if v == nil {
			continue
		}
		if sharedVar(v) != nil {
			return true // package-level or field root: shared by definition
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			return true // captured from outside the closure
		}
	}
	return false
}

// escapeFinding checks one resolved callee against its transitive writes
// and builds the finding — call path included — if it fires.
func (m *Module) escapeFinding(pkg *Package, site ast.Node, fn *types.Func, capturedArg bool) (Finding, bool) {
	trans := m.Sums.TransWrites(fn)
	if len(trans) == 0 {
		return Finding{}, false
	}
	var bestObj types.Object
	var best writeSite
	for obj, w := range trans {
		if w.Via == ViaPointer && !capturedArg {
			continue
		}
		if bestObj == nil || w.Pos < best.Pos {
			bestObj, best = obj, w
		}
	}
	if bestObj == nil {
		return Finding{}, false
	}
	kind := "shared state"
	if v, ok := bestObj.(*types.Var); ok {
		if v.IsField() {
			kind = "field " + v.Name()
		} else {
			kind = "package variable " + v.Name()
		}
	}
	msg := fmt.Sprintf(
		"call to %s inside a goroutine/parallel closure plainly writes %s (%s); route the write through sync/atomic, keep the state closure-local, or reduce after the join",
		m.shortFuncName(fn), kind, m.relPos(best.Pos))
	f := Finding{
		Pos:      m.Loader.Fset().Position(site.Pos()),
		Rule:     "escape-to-parallel",
		Message:  msg,
		CallPath: m.callPathStrings(site.Pos(), fn, best.Fn),
	}
	return f, true
}

// callPathStrings renders the chain from the concurrent call site to the
// function containing the write: each element is "func (call site)".
func (m *Module) callPathStrings(sitePos token.Pos, first, writer *types.Func) []string {
	path := []string{fmt.Sprintf("%s (%s)", m.shortFuncName(first), m.relPos(sitePos))}
	if first == writer {
		return path
	}
	for _, e := range m.Graph.PathTo([]*types.Func{first}, writer) {
		path = append(path, fmt.Sprintf("%s (%s)", m.shortFuncName(e.Callee), m.relPos(e.Pos)))
	}
	return path
}

// shortFuncName renders fn with module-path noise stripped:
// "(*trace.Tracer).bump" instead of "(*pasgal/internal/trace.Tracer).bump".
func (m *Module) shortFuncName(fn *types.Func) string {
	name := fn.FullName()
	mp := m.Loader.ModulePath
	name = strings.ReplaceAll(name, mp+"/internal/", "")
	name = strings.ReplaceAll(name, mp+"/", "")
	name = strings.ReplaceAll(name, mp+".", "")
	return name
}

// relPos renders a token.Pos as a module-relative "file:line".
func (m *Module) relPos(pos token.Pos) string {
	p := m.Loader.Fset().Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(m.Loader.ModuleRoot, file); err == nil && !filepath.IsAbs(rel) && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
