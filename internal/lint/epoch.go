package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// EpochMisuseAnalyzer reports misuse of epoch snapshots (the
// internal/delta pinning protocol; see docs/UPDATES.md): a snapshot
// variable used after its Release, or a snapshot held open across an
// explicit Compact call in the same block. The first is a
// use-after-free in epoch clothing — Release drops the pin, the epoch
// can retire, and the view's arrays may be gone by the time the late
// use scans them (the Snapshot type panics on Adj after Release, but
// only when the misuse reaches Adj; a captured view escapes that
// check). The second keeps the pre-compaction epoch's whole CSR alive
// and, more often than not, signals the author expected the pinned
// view to observe the compaction, which it never does.
//
// Matching is syntactic, like cancel-poll: a "snapshot" is any variable
// assigned from a method call named Snapshot that is later Released,
// so the rule needs no cross-package type information. Analysis is
// per-block and statement-ordered — a Release inside a nested branch,
// defer, or function literal does not mark the variable released in
// the enclosing block, which keeps early-return cleanups and deferred
// releases from raising false positives.
func EpochMisuseAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "epoch-misuse",
		Doc:  "an epoch snapshot must not be used after Release or held across Compact",
		Run:  runEpochMisuse,
	}
}

func runEpochMisuse(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, checkEpochBlock(pkg, fn.Body)...)
				}
			case *ast.FuncLit:
				// Each function literal is its own scope (checkEpochBlock
				// does not descend into nested literals, so bodies are
				// analyzed exactly once).
				out = append(out, checkEpochBlock(pkg, fn.Body)...)
			}
			return true
		})
	}
	return out
}

// snapState tracks one snapshot variable inside one block.
type snapState struct {
	released  bool // a same-block, non-deferred Release ran
	reported  bool // one finding per variable per hazard
	compacted bool
}

// checkEpochBlock analyzes one block's statement list in order, then
// recurses into nested blocks as fresh scopes. Statement order within a
// block is the whole analysis: acquire, then Release, then any mention
// is a use-after-release; acquire, then Compact before Release pins the
// old epoch across the barrier.
func checkEpochBlock(pkg *Package, block *ast.BlockStmt) []Finding {
	var out []Finding
	snaps := map[string]*snapState{}

	for _, stmt := range block.List {
		// Nested blocks are independent scopes; a DeferStmt's call runs at
		// function exit, so it neither releases nor uses at this point in
		// statement order.
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			continue
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt, *ast.LabeledStmt:
			ast.Inspect(s, func(n ast.Node) bool {
				if b, ok := n.(*ast.BlockStmt); ok {
					out = append(out, checkEpochBlock(pkg, b)...)
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false // analyzed by runEpochMisuse
				}
				return true
			})
			continue
		}

		// Acquire / reacquire: name := x.Snapshot() or name = x.Snapshot().
		if name, ok := snapshotAcquire(stmt); ok {
			snaps[name] = &snapState{}
			continue
		}

		released, compacts, uses := scanEpochStmt(stmt, snaps)
		for _, name := range compacts {
			// A Compact while any snapshot in this block is still pinned.
			for snapName, st := range snaps {
				if st.released || st.compacted {
					continue
				}
				st.compacted = true
				out = append(out, Finding{
					Pos:  pkg.position(stmt.Pos()),
					Rule: "epoch-misuse",
					Message: fmt.Sprintf(
						"snapshot %q is still pinned across this %s call: the pinned view never observes the compaction and keeps the pre-compaction epoch's CSR alive — Release first, or re-snapshot after compacting (docs/UPDATES.md)",
						snapName, name),
				})
			}
		}
		for _, name := range uses {
			st := snaps[name]
			if st != nil && st.released && !st.reported {
				st.reported = true
				out = append(out, Finding{
					Pos:  pkg.position(stmt.Pos()),
					Rule: "epoch-misuse",
					Message: fmt.Sprintf(
						"snapshot %q used after Release: the pin is gone and its epoch may already be retired — move the Release after the last use, or take a fresh Snapshot (docs/UPDATES.md)",
						name),
				})
			}
		}
		for _, name := range released {
			if st := snaps[name]; st != nil {
				st.released = true
			}
		}
	}
	return out
}

// snapshotAcquire matches `name := x.Snapshot()` / `name = x.Snapshot()`
// with a single plain-identifier LHS.
func snapshotAcquire(stmt ast.Stmt) (string, bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return "", false
	}
	id, ok := unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return "", false
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Snapshot" {
		return "", false
	}
	return id.Name, true
}

// scanEpochStmt walks one statement (skipping nested blocks and function
// literals, which are separate scopes) and classifies what it does to
// tracked snapshot variables: Release calls, Compact calls, and any
// other mention of a tracked variable (a use).
func scanEpochStmt(stmt ast.Stmt, snaps map[string]*snapState) (released, compacts, uses []string) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.CallExpr:
			if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Release":
					if id, ok := unparen(sel.X).(*ast.Ident); ok && snaps[id.Name] != nil {
						released = append(released, id.Name)
						// The receiver ident below would otherwise count as
						// a use; walk only the arguments.
						for _, arg := range e.Args {
							ast.Inspect(arg, func(a ast.Node) bool {
								if id, ok := a.(*ast.Ident); ok && snaps[id.Name] != nil {
									uses = append(uses, id.Name)
								}
								return true
							})
						}
						return false
					}
				case "Compact":
					compacts = append(compacts, "Compact")
				}
			}
		case *ast.Ident:
			if snaps[e.Name] != nil {
				uses = append(uses, e.Name)
			}
		}
		return true
	})
	return released, compacts, uses
}
