package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MixedAccessAnalyzer reports struct fields and variables that are accessed
// through sync/atomic in one place and by plain read/write elsewhere in the
// same package. Mixing the two silently forfeits every atomicity and
// ordering guarantee: the racing plain access can observe torn or stale
// values, and the race detector only catches it on schedules that actually
// interleave.
//
// To stay useful on real coordinator-style code, plain *writes* are always
// reported, while plain *reads* are reported only when they occur inside a
// goroutine or parallel closure — a plain read in straight-line code after
// the join is the standard (safe) way to collect results and would drown
// the signal. Fields are tracked per field object, so any instance of the
// struct matches; locals match within their function.
func MixedAccessAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "mixed-access",
		Doc:  "variable accessed both via sync/atomic and by plain read/write",
		Run:  runMixedAccess,
	}
}

func runMixedAccess(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	// Pass 1: every object that is the target of an atomic.Xxx(&obj, ...)
	// call anywhere in the package, plus the &target argument nodes so pass
	// 2 can skip them.
	atomicSites := map[types.Object]token.Pos{}
	atomicArgs := map[ast.Node]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			target, ok := atomicCallTarget(pkg, call)
			if !ok {
				return true
			}
			atomicArgs[call.Args[0]] = true
			if key := accessKey(pkg, target); key != nil {
				if _, seen := atomicSites[key]; !seen {
					atomicSites[key] = target.Pos()
				}
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return nil
	}
	// Pass 2: find plain accesses to those same objects.
	var out []Finding
	for _, file := range pkg.Files {
		concurrent := concurrentLits(pkg, file)
		walkStack(file, func(stack []ast.Node) bool {
			n := stack[len(stack)-1]
			if atomicArgs[n] {
				return false // the &target of an atomic call is not a plain access
			}
			var key types.Object
			switch e := n.(type) {
			case *ast.SelectorExpr:
				key = accessKey(pkg, e)
			case *ast.Ident:
				// Skip the Sel half of a selector (handled at the selector)
				// and declarations.
				if len(stack) >= 2 {
					if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == e {
						return true
					}
				}
				if _, isDecl := pkg.Info.Defs[e]; isDecl {
					return true
				}
				key = accessKey(pkg, e)
			default:
				return true
			}
			if key == nil {
				return true
			}
			atomicAt, tracked := atomicSites[key]
			if !tracked {
				return true
			}
			kind := classifyAccess(stack)
			inConc := enclosingConcurrent(stack, concurrent)
			if kind == accessWrite || inConc {
				verb := "read"
				if kind == accessWrite {
					verb = "written"
				}
				where := ""
				if inConc {
					where = " inside a goroutine/parallel closure"
				}
				out = append(out, Finding{
					Pos:  pkg.position(n.Pos()),
					Rule: "mixed-access",
					Message: fmt.Sprintf(
						"%s is accessed atomically (e.g. %s) but plainly %s here%s",
						key.Name(), pkg.position(atomicAt), verb, where),
				})
			}
			return true
		})
	}
	return out
}
