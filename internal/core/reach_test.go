package core

import (
	"testing"

	"pasgal/internal/conn"
	"pasgal/internal/euler"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

func TestReachableMatchesBFS(t *testing.T) {
	for name, g := range testGraphs(true) {
		want := seq.BFS(g, 0)
		got, met, _ := Reachable(g, []uint32{0}, Options{})
		for v := range want {
			if got[v] != (want[v] != graph.InfDist) {
				t.Fatalf("%s: reach[%d] = %v, BFS dist %d", name, v, got[v], want[v])
			}
		}
		if g.Degree(0) > 0 && met.Rounds == 0 {
			t.Fatalf("%s: no rounds", name)
		}
	}
}

func TestReachableMultiSource(t *testing.T) {
	g := gen.Chain(100, true)
	got, _, _ := Reachable(g, []uint32{50, 80}, Options{})
	for v := 0; v < 100; v++ {
		if got[v] != (v >= 50) {
			t.Fatalf("reach[%d] = %v", v, got[v])
		}
	}
	// Duplicate sources are fine.
	got, _, _ = Reachable(g, []uint32{0, 0, 0}, Options{})
	for v := 0; v < 100; v++ {
		if !got[v] {
			t.Fatalf("dup-source reach[%d] false", v)
		}
	}
	// No sources / empty graph.
	if r, _, _ := Reachable(g, nil, Options{}); r[0] {
		t.Fatal("no-source reach should be empty")
	}
	eg := graph.FromEdges(0, nil, true, graph.BuildOptions{})
	if r, _, _ := Reachable(eg, nil, Options{}); len(r) != 0 {
		t.Fatal("empty graph reach")
	}
}

func TestReachableVGCReducesRounds(t *testing.T) {
	g := gen.Chain(20000, true)
	_, metVGC, _ := Reachable(g, []uint32{0}, Options{Tau: 512})
	_, metNo, _ := Reachable(g, []uint32{0}, Options{Tau: 1})
	if metVGC.Rounds*10 >= metNo.Rounds {
		t.Fatalf("VGC rounds %d vs %d", metVGC.Rounds, metNo.Rounds)
	}
}

// BCCFromForest with an externally built forest must agree with BCC and
// with Hopcroft–Tarjan, whatever spanning forest it is given.
func TestBCCFromForestDirect(t *testing.T) {
	g := gen.TriGrid(15, 15)
	want := seq.HopcroftTarjanBCC(g)

	direct, _, _ := BCC(g, Options{})
	if direct.NumBCC != want.NumBCC {
		t.Fatalf("NumBCC %d want %d", direct.NumBCC, want.NumBCC)
	}

	tree, _, _ := conn.SpanningForest(g)
	f := euler.Build(g.N, tree)
	viaForest, met, _ := BCCFromForest(g, f, Options{})
	if viaForest.NumBCC != want.NumBCC {
		t.Fatalf("BCCFromForest NumBCC %d want %d", viaForest.NumBCC, want.NumBCC)
	}
	for v := range viaForest.IsArt {
		if viaForest.IsArt[v] != want.IsArtPort[v] {
			t.Fatalf("articulation mismatch at %d", v)
		}
	}
	if met.EdgesVisited == 0 {
		t.Fatal("metrics empty")
	}
	// Empty graph path.
	empty := graph.FromEdges(0, nil, false, graph.BuildOptions{})
	res, _, _ := BCCFromForest(empty, euler.Build(0, nil), Options{})
	if res.NumBCC != 0 {
		t.Fatal("empty BCCFromForest")
	}
}
