package core

import (
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// BFSTree computes hop distances and a BFS tree (a parent per reached
// vertex realizing a shortest hop path) with the VGC BFS.
//
// Distance and parent are packed into one uint64 (dist<<32 | parent) so a
// single CAS updates both atomically — otherwise a racing relaxation could
// pair one writer's distance with another's parent.
//
// Unlike BFS, BFSTree runs purely top-down (a bottom-up round would have
// to synthesize parents for repaired distances); prefer BFS when only
// distances are needed on low-diameter graphs.
func BFSTree(g *graph.Graph, src uint32, opt Options) (dist []uint32, parent []uint32, met *Metrics, err error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met = NewMetrics(opt, "bfs-tree")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	dist = make([]uint32, n)
	parent = make([]uint32, n)
	parallel.For(n, 0, func(i int) {
		dist[i] = graph.InfDist
		parent[i] = graph.None
	})
	if n == 0 {
		return dist, parent, met, cl.Poll()
	}
	tau := opt.tau()
	nBags := 2*tau + 4
	fr := newFrontierSet(n, nBags, opt.DisableHashBag, opt.Tracer)

	const infPacked = ^uint64(0)
	state := make([]atomic.Uint64, n)
	parallel.For(n, 0, func(i int) { state[i].Store(infPacked) })
	pack := func(d, p uint32) uint64 { return uint64(d)<<32 | uint64(p) }
	distOf := func(s uint64) uint32 { return uint32(s >> 32) }

	state[src].Store(pack(0, src))
	fr.insert(0, src)
	var pending atomic.Int64
	pending.Store(1)

	window := 1
	// Same ring-safety cap as BFS: deepest extracted distance + tau + 1
	// hops of local search must stay within nBags buckets of cur.
	maxWindow := tau + 2
	const windowGrowCut = 2048
	cur := 0
	for pending.Load() > 0 {
		// Round boundary: after a canceled round the pending count and the
		// bucket ring invariant are meaningless; stop before scanning.
		if perr := cl.Poll(); perr != nil {
			return nil, nil, met, perr
		}
		for fr.len(cur) == 0 {
			cur++
		}
		var f []uint32
		var bucketOf []int
		for d := cur; d < cur+window; d++ {
			if fr.len(d) == 0 {
				continue
			}
			part := fr.extract(d)
			pending.Add(-(int64(len(part)) + fr.dupDebt()))
			f = append(f, part...)
			for range part {
				bucketOf = append(bucketOf, d)
			}
		}
		met.Round(len(f))
		if int64(len(f)) < windowGrowCut && window < maxWindow {
			window = min(2*window, maxWindow)
		} else if window > 1 {
			window /= 2
		}
		parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				v := f[i]
				if distOf(state[v].Load()) != uint32(bucketOf[i]) {
					continue
				}
				queue = append(queue[:0], v)
				budget := tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					du := distOf(state[u].Load())
					nd := du + 1
					for _, w := range g.Neighbors(u) {
						edgeCount++
						for {
							old := state[w].Load()
							if nd >= distOf(old) {
								break
							}
							if state[w].CompareAndSwap(old, pack(nd, u)) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									fr.insert(int(nd), w)
									pending.Add(1)
								}
								break
							}
						}
					}
					budget -= g.Degree(u)
					if budget <= 0 && head+1 < len(queue) {
						for _, w := range queue[head+1:] {
							fr.insert(int(distOf(state[w].Load())), w)
							pending.Add(1)
						}
						queue = queue[:head+1]
					}
				}
			}
			met.AddEdges(edgeCount)
		})
	}
	// Final check before materializing (see BFS).
	if perr := cl.Poll(); perr != nil {
		return nil, nil, met, perr
	}
	parallel.For(n, 0, func(i int) {
		s := state[i].Load()
		if s != infPacked {
			dist[i] = distOf(s)
			parent[i] = uint32(s)
		}
	})
	parent[src] = graph.None
	return dist, parent, met, nil
}
