package core

import (
	"math/rand"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// Functional twins for the overlay scan specializations in this package
// (epoch snapshots from internal/delta): internal/delta's differential
// suite sweeps the full shape matrix end to end, but these in-package
// tests pin the representative branches — the merged bulk push scan, the
// lazy-transpose pull round, the weighted AppendArcs relaxation, and
// goal-directed pruning — directly against a plain rebuild of the same
// post-edit graph.

// overlayTwin applies a deterministic random edit batch (tombstones on a
// sixth of the base arcs, fresh patch arcs) and returns the overlay next
// to a plain CSR of the identical post-edit graph.
func overlayTwin(t *testing.T, g *graph.Graph, seed int64) (*graph.Overlay, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var dels, adds []graph.Edge
	for u := uint32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if (g.Directed || u < v) && rng.Intn(6) == 0 {
				dels = append(dels, graph.Edge{U: u, V: v})
			}
		}
	}
	n := uint32(g.N)
	for i := 0; i < g.N/3; i++ {
		u, v := rng.Uint32()%n, rng.Uint32()%n
		if u == v {
			continue
		}
		adds = append(adds, graph.Edge{U: u, V: v, W: 1 + rng.Uint32()%40})
	}
	o := graph.OverlayFromEdits(g, dels, adds)
	if err := o.Validate(); err != nil {
		t.Fatalf("overlay invariants: %v", err)
	}
	return o, o.Materialize()
}

// TestOverlayBFSMatchesPlain drives both bfsOverlayScans directions: the
// "pull" row forces a bottom-up cut of one so the lazy overlay transpose
// is exercised on every graph, "push" pins the top-down-only route, and
// "novgc" spills every discovered vertex through the shared frontier.
func TestOverlayBFSMatchesPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"rmat-directed": gen.SocialRMAT(10, 16, true, 41),
		"grid":          gen.Grid2D(22, 22, false, 42),
		"er-sparse":     gen.ER(900, 1400, true, 43), // disconnected
	} {
		o, mat := overlayTwin(t, g, 44)
		src := uint32(g.N / 3)
		for oname, opt := range map[string]Options{
			"default": {},
			"pull":    {DenseFrac: 0.0001},
			"push":    {DisableDirectionOpt: true},
			"novgc":   {Tau: 1},
		} {
			want, _, err := BFS(mat, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := BFS(o, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: dist[%d] = %d overlay, %d plain",
						name, oname, v, got[v], want[v])
				}
			}
		}
	}
}

// TestOverlayReachableMatchesPlain covers the overlay branch of the
// multi-source local search, default and budget-starved.
func TestOverlayReachableMatchesPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"er-sparse": gen.ER(800, 1200, true, 51), // disconnected
		"rmat":      gen.SocialRMAT(9, 8, true, 52),
		"grid":      gen.Grid2D(20, 20, false, 53),
	} {
		o, mat := overlayTwin(t, g, 54)
		srcs := []uint32{0, uint32(g.N / 2)}
		for oname, opt := range map[string]Options{"default": {}, "novgc": {Tau: 1}} {
			want, _, err := Reachable(mat, srcs, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Reachable(o, srcs, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: reach[%d] = %v overlay, %v plain",
						name, oname, v, got[v], want[v])
				}
			}
		}
	}
}

// TestOverlaySSSPMatchesPlain relaxes the merged weighted patch lists
// (AppendArcs) under the default ρ-stepping, Δ-stepping, Bellman–Ford
// (θ = ∞ disables the local budget), and budget-starved configurations.
func TestOverlaySSSPMatchesPlain(t *testing.T) {
	g := gen.AddUniformWeights(gen.ER(700, 2800, true, 61), 1, 50, 62)
	o, mat := overlayTwin(t, g, 63)
	src := uint32(1)
	for pname, policy := range map[string]StepPolicy{
		"rho":   nil,
		"delta": DeltaStepping{Delta: 32},
		"bf":    BellmanFordPolicy{},
	} {
		for oname, opt := range map[string]Options{"default": {}, "novgc": {Tau: 1}} {
			want, _, err := SSSP(mat, src, policy, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := SSSP(o, src, policy, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: dist[%d] = %d overlay, %d plain",
						pname, oname, v, got[v], want[v])
				}
			}
		}
	}
}

// TestOverlayPointToPointMatchesPlain covers the goal-directed overlay
// scan: reachable pairs, the src == dst shortcut, an unreachable pair,
// and the budget-starved configuration.
func TestOverlayPointToPointMatchesPlain(t *testing.T) {
	g := gen.AddUniformWeights(gen.ER(700, 2800, true, 71), 1, 50, 72)
	o, mat := overlayTwin(t, g, 73)
	pairs := [][2]uint32{
		{0, uint32(g.N - 1)},
		{uint32(g.N / 2), 1},
		{5, 5}, // shortcut
	}
	for oname, opt := range map[string]Options{"default": {}, "novgc": {Tau: 1}} {
		for _, p := range pairs {
			want, _, err := PointToPoint(mat, p[0], p[1], nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := PointToPoint(o, p[0], p[1], nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s %d->%d: dist %d overlay, %d plain", oname, p[0], p[1], got, want)
			}
		}
	}
	// An unreachable destination: a sparse two-component graph with no
	// patch arcs (adds could bridge the components).
	iso := gen.AddUniformWeights(gen.ER(200, 100, true, 74), 1, 9, 75)
	var dels []graph.Edge
	for u := uint32(0); int(u) < iso.N && dels == nil; u++ {
		if nb := iso.Neighbors(u); len(nb) > 0 {
			dels = append(dels, graph.Edge{U: u, V: nb[0]})
		}
	}
	io := graph.OverlayFromEdits(iso, dels, nil)
	imat := io.Materialize()
	for dst := uint32(1); dst < uint32(iso.N); dst++ {
		want, _, err := PointToPoint(imat, 0, dst, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := PointToPoint(io, 0, dst, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("0->%d: dist %d overlay, %d plain", dst, got, want)
		}
		if want == InfWeight {
			return // found and verified an unreachable pair; done
		}
	}
	t.Fatal("no unreachable pair in the sparse graph; strengthen the generator seed")
}
