package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"pasgal/internal/parallel"
)

// ErrCanceled is returned when a run stops because Options.Ctx was
// canceled. Test with errors.Is; the returned error additionally wraps a
// non-standard cancellation cause when the context carries one.
var ErrCanceled = errors.New("pasgal: run canceled")

// ErrDeadline is returned when a run stops because Options.Ctx's deadline
// passed. Test with errors.Is.
var ErrDeadline = errors.New("pasgal: deadline exceeded")

// Canceler binds one algorithm run to its Options.Ctx. It owns the
// parallel.Cancel token the run's loops poll at chunk-claim boundaries,
// and translates the context's done signal into that token via
// context.AfterFunc — no watcher goroutine, nothing to leak.
//
// The nil *Canceler (what NewCanceler returns for a nil Ctx) is the
// "cancellation disabled" representation: Poll always returns nil and
// Token returns the nil token, so drivers thread it unconditionally.
//
// Lifecycle at every driver entry point:
//
//	cl := NewCanceler(opt, met)
//	defer cl.Close()
//	...
//	if err := cl.Poll(); err != nil { return <zero>, met, err }
//
// Poll must run at every round/phase boundary AND once more after the
// main loop, before results are materialized: a cancellation that fires
// mid-round makes the chunk drain skip frontier inserts, so the loop can
// terminate looking "converged" while the result is silently partial.
// Only the final Poll distinguishes the two.
type Canceler struct {
	ctx  context.Context
	tok  *parallel.Cancel
	stop func() bool
	met  *Metrics
	seen atomic.Bool // cancel trace event emitted
}

// NewCanceler returns the run's Canceler, or nil when opt.Ctx is nil.
// A context that is already done is detected synchronously, so a
// pre-canceled Ctx deterministically fails the driver's first Poll.
// met (may be nil) supplies the rounds-completed count for the trace
// cancel event, which is emitted through opt.Tracer.
func NewCanceler(opt Options, met *Metrics) *Canceler {
	if opt.Ctx == nil {
		return nil
	}
	c := &Canceler{ctx: opt.Ctx, tok: parallel.NewCancel(), met: met}
	if err := opt.Ctx.Err(); err != nil {
		// Already done: fire now rather than waiting for AfterFunc's
		// asynchronous delivery.
		c.tok.Fire(context.Cause(opt.Ctx))
		return c
	}
	tok := c.tok
	ctx := opt.Ctx
	c.stop = context.AfterFunc(ctx, func() {
		tok.Fire(context.Cause(ctx))
	})
	return c
}

// Token returns the parallel.Cancel token to pass into ForRangeCancel /
// ForCancel for this run's loops (nil on a nil Canceler — which those
// entry points accept as "never cancels").
func (c *Canceler) Token() *parallel.Cancel {
	if c == nil {
		return nil
	}
	return c.tok
}

// Poll is the round/phase-boundary check: it returns nil while the run
// may continue, and the typed error (ErrCanceled or ErrDeadline, wrapping
// any custom cause) once the context is done or the token has fired. The
// first failing Poll emits the trace cancel event with the rounds
// completed so far.
func (c *Canceler) Poll() error {
	if c == nil {
		return nil
	}
	if !c.tok.Canceled() && c.ctx.Err() == nil {
		return nil
	}
	// The direct ctx.Err check above makes cancellation visible even if
	// AfterFunc has not delivered yet; latch the token so in-flight loops
	// stop too.
	c.tok.Fire(context.Cause(c.ctx))
	if c.seen.CompareAndSwap(false, true) && c.met != nil {
		c.met.tracer.Cancel(c.met.algo, atomic.LoadInt64(&c.met.Rounds))
	}
	return c.err()
}

// Close releases the context→token binding. Always defer it: without the
// stop call, a long-lived Ctx would accumulate one AfterFunc registration
// per run.
func (c *Canceler) Close() {
	if c == nil || c.stop == nil {
		return
	}
	c.stop()
}

// err maps the context state to the typed sentinel, attaching a custom
// cancellation cause when one was set via context.WithCancelCause.
func (c *Canceler) err() error {
	cause := context.Cause(c.ctx)
	if cause == nil {
		cause = c.tok.Cause()
	}
	kind := ErrCanceled
	if errors.Is(c.ctx.Err(), context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded) {
		kind = ErrDeadline
	}
	if cause == nil || errors.Is(cause, context.Canceled) ||
		errors.Is(cause, context.DeadlineExceeded) {
		return kind
	}
	return fmt.Errorf("%w: %w", kind, cause)
}
