package core

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

func TestSSSPTreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.IntN(400)
		g := gen.AddUniformWeights(gen.ER(n, 3*n, trial%2 == 0, uint64(trial)), 1, 100, uint64(trial))
		src := uint32(rng.IntN(n))
		dist, parent, _, _ := SSSPTree(g, src, nil, Options{})
		want := seq.Dijkstra(g, src)
		for v := uint32(0); v < uint32(n); v++ {
			if dist[v] != want[v] {
				t.Fatalf("trial %d: dist[%d] = %d, want %d", trial, v, dist[v], want[v])
			}
			if v == src || dist[v] == InfWeight {
				if parent[v] != graph.None {
					t.Fatalf("trial %d: parent[%d] should be None", trial, v)
				}
				continue
			}
			p := parent[v]
			e := g.FindArc(p, v)
			if e == ^uint64(0) {
				t.Fatalf("trial %d: parent edge (%d,%d) not in graph", trial, p, v)
			}
			if dist[p]+uint64(g.Weights[e]) != dist[v] {
				t.Fatalf("trial %d: parent edge not tight at %d", trial, v)
			}
		}
	}
}

func TestPathTo(t *testing.T) {
	g := gen.AddUniformWeights(gen.Chain(10, true), 4, 4, 1)
	dist, parent, _, _ := SSSPTree(g, 0, nil, Options{})
	path := PathTo(parent, 0, 9)
	if len(path) != 10 {
		t.Fatalf("path length %d", len(path))
	}
	for i, v := range path {
		if v != uint32(i) {
			t.Fatalf("path[%d] = %d", i, v)
		}
	}
	if dist[9] != 36 {
		t.Fatalf("dist = %d", dist[9])
	}
	// Path to the root itself.
	if p := PathTo(parent, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("root path %v", p)
	}
	// Unreachable vertex.
	g2 := gen.AddUniformWeights(graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}}, true,
		graph.BuildOptions{Weighted: true}), 1, 1, 1)
	_, parent2, _, _ := SSSPTree(g2, 0, nil, Options{})
	if PathTo(parent2, 0, 2) != nil {
		t.Fatal("unreachable path should be nil")
	}
}

func TestSSSPTreePathWeights(t *testing.T) {
	// Walking any tree path must sum to the distance.
	g := gen.AddUniformWeights(gen.SampledGrid(30, 30, 0.9, false, 3), 1, 50, 4)
	dist, parent, _, _ := SSSPTree(g, 0, nil, Options{})
	for v := uint32(0); v < uint32(g.N); v += 37 {
		if dist[v] == InfWeight {
			continue
		}
		path := PathTo(parent, 0, v)
		if path == nil {
			t.Fatalf("no path to reached vertex %d", v)
		}
		var sum uint64
		for i := 1; i < len(path); i++ {
			e := g.FindArc(path[i-1], path[i])
			if e == ^uint64(0) {
				t.Fatalf("path edge missing at %d", i)
			}
			sum += uint64(g.Weights[e])
		}
		if sum != dist[v] {
			t.Fatalf("path sum %d != dist %d for vertex %d", sum, dist[v], v)
		}
	}
}
