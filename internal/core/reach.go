package core

import (
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// Reachable marks every vertex reachable from any of srcs. This is the
// paper's §2.1 primitive in isolation: a reachability search needs no BFS
// order, so the VGC local search visits vertices in arbitrary multi-hop
// order, each vertex claimed exactly once by a CAS.
//
// Both graph representations are accepted; the compressed form
// bulk-decodes each local-search vertex into task-local scratch (see
// graph.Adjacency).
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation it returns
// (nil, partial Metrics, ErrCanceled/ErrDeadline).
func Reachable(a graph.Adjacency, srcs []uint32, opt Options) ([]bool, *Metrics, error) {
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "reach")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := a.NumVertices()
	out := make([]bool, n)
	if n == 0 || len(srcs) == 0 {
		return out, met, cl.Poll()
	}
	tau := opt.tau()
	visited := make([]atomic.Uint32, n)
	bag := hashbag.New(max(64, 2*len(srcs)))
	bag.SetTracer(opt.Tracer)
	for _, s := range srcs {
		if visited[s].CompareAndSwap(0, 1) {
			bag.Insert(s)
		}
	}
	// Per-representation frontier processors with identical claim logic;
	// only the adjacency scan differs.
	var process func(f []uint32)
	switch g := a.(type) {
	case *graph.Graph:
		process = func(f []uint32) {
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					queue = append(queue[:0], f[i])
					budget := tau
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						for _, w := range g.Neighbors(u) {
							edgeCount++
							if visited[w].Load() == 0 && visited[w].CompareAndSwap(0, 1) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									bag.Insert(w)
								}
							}
						}
						budget -= g.Degree(u)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								bag.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Compressed:
		process = func(f []uint32) {
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					queue = append(queue[:0], f[i])
					budget := tau
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						nbuf = g.AppendNeighbors(u, nbuf[:0])
						for _, w := range nbuf {
							edgeCount++
							if visited[w].Load() == 0 && visited[w].CompareAndSwap(0, 1) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									bag.Insert(w)
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								bag.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Overlay:
		process = func(f []uint32) {
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					queue = append(queue[:0], f[i])
					budget := tau
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						nbuf = g.AppendNeighbors(u, nbuf[:0])
						for _, w := range nbuf {
							edgeCount++
							if visited[w].Load() == 0 && visited[w].CompareAndSwap(0, 1) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									bag.Insert(w)
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								bag.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	}
	for bag.Len() > 0 {
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		f := bag.Extract()
		met.Round(len(f))
		process(f)
	}
	// Final check before materializing; see BFS.
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = visited[i].Load() == 1 })
	return out, met, nil
}
