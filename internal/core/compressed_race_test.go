package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// The -race tier counterpart of the compressed differential suite: the
// compressed scan specializations decode through shared read-only data
// (and, in production, an mmap view), so concurrent queries and mid-run
// cancellations are exactly where a mis-scoped scratch buffer or a decode
// into shared state would surface.

// TestStressCompressedBFSConcurrentQueries mirrors the plain stress test
// on compressed graphs: several BFS queries in flight at once on one
// shared compressed graph, each checked against the sequential oracle.
func TestStressCompressedBFSConcurrentQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := parallel.SetWorkers(16)
	defer parallel.SetWorkers(old)

	graphs := []*graph.Graph{
		gen.Chain(3000, false),
		gen.ER(2500, 7000, false, 11),
		gen.SocialRMAT(11, 8, true, 13),
	}
	for gi, g := range graphs {
		c := graph.Compress(g)
		srcs := []uint32{0, uint32(g.N / 3), uint32(g.N - 1)}
		want := make([][]uint32, len(srcs))
		for i, s := range srcs {
			want[i] = seq.BFS(g, s)
		}
		var wg sync.WaitGroup
		errc := make(chan string, len(srcs)*2)
		for rep := 0; rep < 2; rep++ {
			for i, s := range srcs {
				wg.Add(1)
				go func(i int, s uint32) {
					defer wg.Done()
					dist, _, _ := BFS(c, s, Options{})
					for v := range dist {
						if dist[v] != want[i][v] {
							errc <- "distance mismatch"
							return
						}
					}
				}(i, s)
			}
		}
		wg.Wait()
		close(errc)
		for msg := range errc {
			t.Fatalf("graph %d: %s", gi, msg)
		}
	}
}

// TestStressCompressedSSSPConcurrentQueries does the same for the weighted
// decode path: interleaved (neighbor, weight) varint streams scanned by
// concurrent relaxation rounds.
func TestStressCompressedSSSPConcurrentQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := parallel.SetWorkers(16)
	defer parallel.SetWorkers(old)

	g := gen.AddUniformWeights(gen.ER(2000, 8000, true, 14), 1, 100, 15)
	c := graph.Compress(g)
	srcs := []uint32{0, uint32(g.N / 2), uint32(g.N - 1)}
	want := make([][]uint64, len(srcs))
	for i, s := range srcs {
		want[i] = seq.Dijkstra(g, s)
	}
	var wg sync.WaitGroup
	errc := make(chan string, len(srcs)*2)
	for rep := 0; rep < 2; rep++ {
		for i, s := range srcs {
			wg.Add(1)
			go func(i int, s uint32) {
				defer wg.Done()
				dist, _, _ := SSSP(c, s, nil, Options{})
				for v := range dist {
					if dist[v] != want[i][v] {
						errc <- "distance mismatch"
						return
					}
				}
			}(i, s)
		}
	}
	wg.Wait()
	close(errc)
	for msg := range errc {
		t.Fatal(msg)
	}
}

// TestCancelCompressedMidRun hammers cancellation on the compressed scan
// path: concurrent compressed BFS runs, each canceled at an arbitrary
// point. Every run must end in nil (with correct distances) or
// ErrCanceled with no result — the same contract the plain path pins.
func TestCancelCompressedMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	c := graph.Compress(gen.Chain(50_000, true))
	want, _, err := BFS(c, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 24
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%8) * 200 * time.Microsecond)
				cancel()
			}()
			dist, _, err := BFS(c, 0, Options{Ctx: ctx, Tau: 1})
			switch {
			case err == nil:
				for v := range want {
					if dist[v] != want[v] {
						errs <- errors.New("completed run returned wrong distances")
						return
					}
				}
				errs <- nil
			case errors.Is(err, ErrCanceled):
				if dist != nil {
					errs <- errors.New("canceled run returned a distance slice")
					return
				}
				errs <- nil
			default:
				errs <- err
			}
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCancelCompressedPreCanceled: the compressed entry points honor an
// already-dead context before scanning anything, across every algorithm
// with a compressed specialization.
func TestCancelCompressedPreCanceled(t *testing.T) {
	c := graph.Compress(gen.AddUniformWeights(gen.Chain(500, true), 1, 10, 45))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Ctx: ctx}
	if dist, _, err := BFS(c, 0, opt); !errors.Is(err, ErrCanceled) || dist != nil {
		t.Fatalf("BFS: err = %v, dist nil = %t", err, dist == nil)
	}
	if dist, _, err := SSSP(c, 0, nil, opt); !errors.Is(err, ErrCanceled) || dist != nil {
		t.Fatalf("SSSP: err = %v, dist nil = %t", err, dist == nil)
	}
	if d, _, err := PointToPoint(c, 0, uint32(c.NumVertices()-1), nil, opt); !errors.Is(err, ErrCanceled) || d != InfWeight {
		t.Fatalf("PointToPoint: err = %v, d = %d", err, d)
	}
	if reach, _, err := Reachable(c, []uint32{0}, opt); !errors.Is(err, ErrCanceled) || reach != nil {
		t.Fatalf("Reachable: err = %v, reach nil = %t", err, reach == nil)
	}
}
