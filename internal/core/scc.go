package core

import (
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// SCC computes strongly connected components with PASGAL's VGC SCC
// algorithm (Wang et al.): rounds of multi-pivot forward/backward
// reachability over hash-bag frontiers with VGC local searches.
//
// Each round samples a doubling batch of pivots among live vertices and
// propagates, separately forward and backward, the *minimum pivot index*
// that reaches each live vertex (an atomic write-min — reachability does
// not need BFS order, which is what lets VGC visit vertices in arbitrary
// multi-hop order). Vertices whose forward and backward labels name the
// same pivot form that pivot's SCC and settle; the rest are partitioned by
// their (forward, backward) label pair — two vertices of one SCC always
// share both labels, so an SCC is never split — and edges crossing
// partitions are ignored from then on. Size-1 SCCs are first peeled off by
// trimming passes.
//
// It returns a per-vertex component label (the id of a representative
// vertex) and the component count.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation SCC
// returns (nil, 0, partial Metrics, ErrCanceled/ErrDeadline).
func SCC(g *graph.Graph, opt Options) ([]uint32, int, *Metrics, error) {
	if !g.Directed {
		panic("core: SCC requires a directed graph")
	}
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "scc")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	comp := make([]uint32, n)
	parallel.Fill(comp, graph.None)
	if n == 0 {
		return comp, 0, met, cl.Poll()
	}
	tr := g.Transpose()

	sub := make([]uint64, n) // subproblem id; refined every round
	fwd := make([]atomic.Uint32, n)
	bwd := make([]atomic.Uint32, n)

	live := parallel.PackIndex(n, func(int) bool { return true })

	// Trimming: peel vertices with no live in- or out-neighbor (their SCC
	// is a singleton). Each pass exposes new trimmable vertices.
	for t := 0; t < opt.trimRounds() && len(live) > 0; t++ {
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		trimmed := parallel.Pack(live, func(i int) bool {
			v := live[i]
			return !hasLiveNeighbor(g, comp, sub, v) || !hasLiveNeighbor(tr, comp, sub, v)
		})
		if len(trimmed) == 0 {
			break
		}
		parallel.For(len(trimmed), 0, func(i int) { comp[trimmed[i]] = trimmed[i] })
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
	}

	pivotTarget := 1
	seed := uint64(0x9e3779b97f4a7c15)
	for len(live) > 0 {
		// Phase boundary: a canceled reachability round leaves fwd/bwd
		// labels incomplete, which would settle vertices into wrong
		// components — stop before reading them.
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		// Deterministic pseudo-random pivot choice: order live vertices by
		// a per-round hash and take the first k.
		k := pivotTarget
		if k > len(live) {
			k = len(live)
		}
		parallel.SortFunc(live, func(a, b uint32) bool {
			return pivotHash(seed, a) < pivotHash(seed, b)
		})
		pivots := live[:k]

		parallel.For(len(live), 0, func(i int) {
			fwd[live[i]].Store(graph.None)
			bwd[live[i]].Store(graph.None)
		})
		// A pivot's own labels are its pivot index.
		parallel.For(k, 0, func(i int) {
			fwd[pivots[i]].Store(uint32(i))
			bwd[pivots[i]].Store(uint32(i))
		})

		if err := multiReach(g, comp, sub, fwd, pivots, opt, met, cl); err != nil {
			return nil, 0, met, err
		}
		if err := multiReach(tr, comp, sub, bwd, pivots, opt, met, cl); err != nil {
			return nil, 0, met, err
		}

		// Settle: fwd label == bwd label == some pivot index.
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			fl, bl := fwd[v].Load(), bwd[v].Load()
			if fl != graph.None && fl == bl {
				comp[v] = pivots[fl]
			}
		})
		// Refine subproblems of the survivors by their label pair.
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			if comp[v] == graph.None {
				sub[v] = refineHash(sub[v], fwd[v].Load(), bwd[v].Load())
			}
		})
		live = parallel.Pack(live, func(i int) bool { return comp[live[i]] == graph.None })
		pivotTarget *= 2
		seed = seed*0x2545f4914f6cdd1d + 1
	}

	// Final check before counting; see BFS.
	if err := cl.Poll(); err != nil {
		return nil, 0, met, err
	}
	count := parallel.Count(n, func(v int) bool { return comp[v] == uint32(v) })
	return comp, count, met, nil
}

func hasLiveNeighbor(g *graph.Graph, comp []uint32, sub []uint64, v uint32) bool {
	sv := sub[v]
	for _, w := range g.Neighbors(v) {
		if w != v && comp[w] == graph.None && sub[w] == sv {
			return true
		}
	}
	return false
}

func pivotHash(seed uint64, v uint32) uint64 {
	x := seed ^ (uint64(v)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	return x ^ (x >> 29)
}

func refineHash(old uint64, fl, bl uint32) uint64 {
	x := old ^ 0x9e3779b97f4a7c15
	x = (x + uint64(fl) + 1) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 30) ^ uint64(bl)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// multiReach propagates, within each subproblem, the minimum pivot index
// reaching every live vertex along g's edges. label must be pre-seeded
// with pivot indices at the pivots and graph.None elsewhere. Frontiers are
// hash bags; extraction processes vertices with VGC local searches.
func multiReach(g *graph.Graph, comp []uint32, sub []uint64,
	label []atomic.Uint32, pivots []uint32, opt Options, met *Metrics,
	cl *Canceler) error {

	tau := opt.tau()
	bag := hashbag.New(max(64, 2*len(pivots)))
	bag.SetTracer(opt.Tracer)
	for _, p := range pivots {
		bag.Insert(p)
	}
	for bag.Len() > 0 {
		if err := cl.Poll(); err != nil {
			return err
		}
		f := bag.Extract()
		met.Round(len(f))
		// FIFO local worklist: labels propagate breadth-first within a
		// task, minimizing claim-then-reclaim churn between pivots.
		parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
			queue := make([]uint32, 0, 64)
			var edgeCount int64
			for i := lo; i < hi; i++ {
				queue = append(queue[:0], f[i])
				budget := tau
				for head := 0; head < len(queue); head++ {
					u := queue[head]
					lu := label[u].Load()
					su := sub[u]
					for _, w := range g.Neighbors(u) {
						edgeCount++
						if comp[w] != graph.None || sub[w] != su {
							continue // settled or different subproblem
						}
						for {
							old := label[w].Load()
							if lu >= old {
								break
							}
							if label[w].CompareAndSwap(old, lu) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									bag.Insert(w)
								}
								break
							}
						}
					}
					budget -= g.Degree(u)
					if budget <= 0 && head+1 < len(queue) {
						for _, w := range queue[head+1:] {
							bag.Insert(w)
						}
						queue = queue[:head+1]
					}
				}
			}
			met.AddEdges(edgeCount)
		})
	}
	// The caller reads the propagated labels right after this returns, so
	// a canceled final round must surface here, not at the next phase.
	return cl.Poll()
}
