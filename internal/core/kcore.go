package core

import (
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// KCore computes the coreness of every vertex of an undirected graph by
// parallel peeling with VGC — one of the extensions the paper's conclusion
// names ("k-core and other peeling algorithms").
//
// For k = 0, 1, 2, ... the algorithm peels all vertices whose residual
// degree is <= k. Peeling is frontier-based and has the same
// large-diameter pathology as BFS: removing one vertex can trigger a long
// *chain* of removals (think of a path hanging off a clique), which a
// level-synchronous peeler pays one global round per link for. The VGC
// local search follows such chains in-task, up to τ edges, before touching
// the shared frontier.
//
// Returns the coreness array, the degeneracy (max coreness), and metrics.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation it returns
// (nil, 0, partial Metrics, ErrCanceled/ErrDeadline).
func KCore(g *graph.Graph, opt Options) ([]uint32, int, *Metrics, error) {
	if g.Directed {
		panic("core: KCore requires an undirected graph")
	}
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "kcore")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	core := make([]uint32, n)
	if n == 0 {
		return core, 0, met, cl.Poll()
	}
	tau := opt.tau()

	deg := make([]atomic.Int64, n)
	claimed := make([]atomic.Uint32, n) // coreness+1 when claimed, 0 live
	parallel.For(n, 0, func(v int) { deg[v].Store(int64(g.Degree(uint32(v)))) })

	bag := hashbag.New(1024)
	bag.SetTracer(opt.Tracer)
	live := parallel.PackIndex(n, func(int) bool { return true })

	for k := int64(0); len(live) > 0; k++ {
		// Phase boundary: a canceled peel leaves residual degrees and
		// claims half-applied; stop before seeding the next level.
		if err := cl.Poll(); err != nil {
			return nil, 0, met, err
		}
		met.AddPhase()
		// Seed this level: all live vertices whose degree has fallen to
		// <= k. The claim CAS makes seeding race-free against peeling.
		parallel.For(len(live), 0, func(i int) {
			v := live[i]
			if deg[v].Load() <= k && claimed[v].CompareAndSwap(0, uint32(k)+1) {
				bag.Insert(v)
			}
		})
		for bag.Len() > 0 {
			if err := cl.Poll(); err != nil {
				return nil, 0, met, err
			}
			f := bag.Extract()
			met.Round(len(f))
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					queue = append(queue[:0], f[i])
					budget := tau
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						for _, w := range g.Neighbors(u) {
							edgeCount++
							if claimed[w].Load() != 0 {
								continue
							}
							// One decrement per removed edge endpoint.
							nd := deg[w].Add(-1)
							if nd <= k && claimed[w].CompareAndSwap(0, uint32(k)+1) {
								if budget > 0 {
									queue = append(queue, w)
								} else {
									bag.Insert(w)
								}
							}
						}
						budget -= g.Degree(u)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								bag.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
		live = parallel.Pack(live, func(i int) bool { return claimed[live[i]].Load() == 0 })
	}
	// Final check before materializing; see BFS.
	if err := cl.Poll(); err != nil {
		return nil, 0, met, err
	}
	maxCore := int64(0)
	parallel.For(n, 0, func(v int) { core[v] = claimed[v].Load() - 1 })
	for v := 0; v < n; v++ {
		if int64(core[v]) > maxCore {
			maxCore = int64(core[v])
		}
	}
	return core, int(maxCore), met, nil
}
