package core

import (
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// SSSPTree computes shortest-path distances from src and a shortest-path
// tree: parent[v] is a predecessor of v on some shortest src→v path
// (graph.None for src and unreachable vertices).
//
// Distances come from SSSP; parents are derived afterwards in one parallel
// pass over the in-edges — every reached vertex has a tight predecessor
// (dist[u] + w(u,v) = dist[v]) by the optimality conditions, so the
// derivation cannot fail. Deriving parents after convergence avoids
// widening the relaxation CAS to a double-word (distance, parent) pair.
func SSSPTree(g *graph.Graph, src uint32, policy StepPolicy, opt Options) (dist []uint64, parent []uint32, met *Metrics, err error) {
	dist, met, err = SSSP(g, src, policy, opt)
	if err != nil {
		return nil, nil, met, err
	}
	// The derivation phase gets its own context binding (SSSP's closed with
	// its return); distances are complete here, so cancellation only skips
	// the parent pass.
	cl := NewCanceler(opt, met)
	defer cl.Close()
	if err := cl.Poll(); err != nil {
		return nil, nil, met, err
	}
	parent = make([]uint32, g.N)
	in := g.Transpose()
	parallel.ForCancel(cl.Token(), g.N, 64, func(vi int) {
		v := uint32(vi)
		parent[v] = graph.None
		if v == src || dist[v] == InfWeight {
			return
		}
		wts := in.NeighborWeights(v)
		for i, u := range in.Neighbors(v) {
			if dist[u] != InfWeight && dist[u]+uint64(wts[i]) == dist[v] {
				parent[v] = u
				return
			}
		}
		panic("core: SSSPTree: no tight predecessor (distances inconsistent)")
	})
	if err := cl.Poll(); err != nil {
		return nil, nil, met, err
	}
	return dist, parent, met, nil
}

// PathTo reconstructs the path from the tree's root to v using a parent
// array from SSSPTree or BFSTree. Returns nil if v was unreachable
// (parent[v] == None and v has a parentless ancestor chain of length 0).
// The result starts at the root and ends at v.
func PathTo(parent []uint32, root, v uint32) []uint32 {
	if v != root && parent[v] == graph.None {
		return nil
	}
	var rev []uint32
	for u := v; ; u = parent[u] {
		rev = append(rev, u)
		if u == root {
			break
		}
		if parent[u] == graph.None || len(rev) > len(parent) {
			return nil // disconnected or corrupt parent array
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
