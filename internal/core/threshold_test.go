package core

import (
	"math"
	"testing"

	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// TestDeltaSteppingThresholdSaturates pins the overflow behavior of the
// Δ-stepping band-end computation: (sample[0]/Δ + 1)·Δ wraps in uint64 when
// sample[0] sits within Δ of MaxUint64, which used to return θ < sample[0]
// and stall the phase loop's progress guarantee. The fix saturates to
// InfWeight.
func TestDeltaSteppingThresholdSaturates(t *testing.T) {
	cases := []struct {
		name   string
		delta  uint64
		sample uint64
		want   uint64
	}{
		{"normal band", 10, 25, 30},
		{"band boundary", 10, 30, 40},
		{"zero delta acts as one", 0, 7, 8},
		{"huge delta, small sample", 1 << 63, 42, 1 << 63},
		{"wrap: sample in top band of huge delta", 1 << 63, 1<<63 + 42, InfWeight},
		{"wrap: sample at MaxUint64, delta 1", 1, math.MaxUint64, InfWeight},
		{"wrap: sample near MaxUint64", 10, math.MaxUint64 - 5, InfWeight},
		{"delta MaxUint64", math.MaxUint64, 12345, InfWeight},
	}
	for _, tc := range cases {
		got := DeltaStepping{Delta: tc.delta}.Threshold([]uint64{tc.sample}, 1)
		if got != tc.want {
			t.Errorf("%s: Threshold(%d, delta=%d) = %d, want %d",
				tc.name, tc.sample, tc.delta, got, tc.want)
		}
		if got < tc.sample {
			t.Errorf("%s: θ = %d < sample[0] = %d violates the progress guarantee",
				tc.name, got, tc.sample)
		}
	}
}

// maxWeightTestGraph is a 3-row ladder whose weights are all MaxUint32 —
// the largest weight the readers accept — so tentative distances climb by
// ~4.3e9 per hop and the Δ-band arithmetic runs close to its limits.
func maxWeightTestGraph(cols int) *graph.Graph {
	var edges []graph.Edge
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < 3; r++ {
		for c := 0; c+1 < cols; c++ {
			edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: math.MaxUint32})
		}
	}
	for c := 0; c < cols; c += 2 {
		edges = append(edges, graph.Edge{U: id(0, c), V: id(1, c), W: math.MaxUint32})
		edges = append(edges, graph.Edge{U: id(1, c), V: id(2, c), W: math.MaxUint32})
	}
	return graph.FromEdges(3*cols, edges, true, graph.BuildOptions{Weighted: true})
}

// TestSSSPMaxWeightBoundedPhases runs every stepping policy — including the
// Δ values whose band ends overflow uint64 — on the max-weight graph and
// checks (a) exact agreement with Dijkstra and (b) that the phase count
// stays linear in n, i.e. every phase made progress and none of the
// thresholds wrapped below sample[0].
func TestSSSPMaxWeightBoundedPhases(t *testing.T) {
	g := maxWeightTestGraph(200)
	want := seq.Dijkstra(g, 0)
	policies := []StepPolicy{
		RhoStepping{},
		RhoStepping{Rho: 1},
		DeltaStepping{Delta: 1},
		DeltaStepping{Delta: math.MaxUint32},
		DeltaStepping{Delta: 1 << 63},
		DeltaStepping{Delta: math.MaxUint64},
		BellmanFordPolicy{},
	}
	// Every policy must converge in at most a phase per distinct distance
	// value (plus slack); a wrapped θ would either loop forever or blow far
	// past this.
	maxPhases := int64(4*g.N + 16)
	for _, pol := range policies {
		got, met, err := SSSP(g, 0, pol, Options{})
		if err != nil {
			t.Fatalf("%s: unexpected error: %v", pol.Name(), err)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s(delta/rho variant): dist[%d] = %d, Dijkstra says %d",
					pol.Name(), v, got[v], want[v])
			}
		}
		if met.Phases > maxPhases {
			t.Fatalf("%s: %d phases on a %d-vertex graph (bound %d): threshold not advancing",
				pol.Name(), met.Phases, g.N, maxPhases)
		}
	}
}
