package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pasgal/internal/euler"
	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/trace"
)

// cancelCase wraps one public algorithm entry point for the cancellation
// conformance sweep. run must return the Metrics and error of one call and
// report (via t) any partial result handed back alongside a non-nil error —
// the contract is "typed error, Metrics so far, never a result".
type cancelCase struct {
	name string
	run  func(t *testing.T, opt Options) (*Metrics, error)
}

// cancelCases enumerates every public algorithm entry point in this
// package. dg must be directed and weighted, ug undirected and weighted;
// both must be connected with n >= 2.
func cancelCases(dg, ug *graph.Graph) []cancelCase {
	pol := RhoStepping{}
	return []cancelCase{
		{"BFS", func(t *testing.T, opt Options) (*Metrics, error) {
			dist, met, err := BFS(dg, 0, opt)
			if err != nil && dist != nil {
				t.Error("BFS returned a distance slice alongside its error")
			}
			return met, err
		}},
		{"BFSTree", func(t *testing.T, opt Options) (*Metrics, error) {
			dist, parent, met, err := BFSTree(dg, 0, opt)
			if err != nil && (dist != nil || parent != nil) {
				t.Error("BFSTree returned a result alongside its error")
			}
			return met, err
		}},
		{"SCC", func(t *testing.T, opt Options) (*Metrics, error) {
			comp, count, met, err := SCC(dg, opt)
			if err != nil && (comp != nil || count != 0) {
				t.Error("SCC returned a result alongside its error")
			}
			return met, err
		}},
		{"BCC", func(t *testing.T, opt Options) (*Metrics, error) {
			res, met, err := BCC(ug, opt)
			if err != nil && (res.ArcLabel != nil || res.IsArt != nil || res.NumBCC != 0) {
				t.Error("BCC returned a result alongside its error")
			}
			return met, err
		}},
		{"SSSP", func(t *testing.T, opt Options) (*Metrics, error) {
			dist, met, err := SSSP(ug, 0, pol, opt)
			if err != nil && dist != nil {
				t.Error("SSSP returned a distance slice alongside its error")
			}
			return met, err
		}},
		{"SSSPTree", func(t *testing.T, opt Options) (*Metrics, error) {
			dist, parent, met, err := SSSPTree(ug, 0, pol, opt)
			if err != nil && (dist != nil || parent != nil) {
				t.Error("SSSPTree returned a result alongside its error")
			}
			return met, err
		}},
		{"PointToPoint", func(t *testing.T, opt Options) (*Metrics, error) {
			d, met, err := PointToPoint(ug, 0, uint32(ug.N-1), pol, opt)
			if err != nil && d != InfWeight {
				t.Errorf("PointToPoint returned distance %d alongside its error, want InfWeight", d)
			}
			return met, err
		}},
		{"Reachable", func(t *testing.T, opt Options) (*Metrics, error) {
			reach, met, err := Reachable(dg, []uint32{0}, opt)
			if err != nil && reach != nil {
				t.Error("Reachable returned a result alongside its error")
			}
			return met, err
		}},
		{"KCore", func(t *testing.T, opt Options) (*Metrics, error) {
			core, deg, met, err := KCore(ug, opt)
			if err != nil && (core != nil || deg != 0) {
				t.Error("KCore returned a result alongside its error")
			}
			return met, err
		}},
		{"Bridges", func(t *testing.T, opt Options) (*Metrics, error) {
			br, n, met, err := Bridges(ug, opt)
			if err != nil && (br != nil || n != 0) {
				t.Error("Bridges returned a result alongside its error")
			}
			return met, err
		}},
		{"DensestSubgraph", func(t *testing.T, opt Options) (*Metrics, error) {
			verts, density, met, err := DensestSubgraph(ug, opt)
			if err != nil && (verts != nil || density != 0) {
				t.Error("DensestSubgraph returned a result alongside its error")
			}
			return met, err
		}},
		{"BCCFromForest", func(t *testing.T, opt Options) (*Metrics, error) {
			f := euler.Build(ug.N, spanningTreeOf(ug))
			res, met, err := BCCFromForest(ug, f, opt)
			if err != nil && (res.ArcLabel != nil || res.NumBCC != 0) {
				t.Error("BCCFromForest returned a result alongside its error")
			}
			return met, err
		}},
	}
}

// spanningTreeOf returns the tree edges of a chain-shaped spanning tree
// for the chain test graphs, enough to drive BCCFromForest in the
// conformance sweep.
func spanningTreeOf(g *graph.Graph) []graph.Edge {
	tree := make([]graph.Edge, 0, g.N-1)
	for v := 1; v < g.N; v++ {
		tree = append(tree, graph.Edge{U: uint32(v - 1), V: uint32(v)})
	}
	return tree
}

// TestCancelPreCanceled: a context that is already canceled at the call
// must make every entry point return ErrCanceled without doing the run —
// with non-nil Metrics and no result.
func TestCancelPreCanceled(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(2000, true), 1, 10, 41)
	ug := gen.AddUniformWeights(gen.Chain(2000, false), 1, 10, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range cancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			met, err := tc.run(t, Options{Ctx: ctx})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v claims a deadline on a plain cancel", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
		})
	}
}

// TestCancelDeadlineExpired: an expired deadline maps to ErrDeadline, not
// ErrCanceled, at every entry point.
func TestCancelDeadlineExpired(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(2000, true), 1, 10, 43)
	ug := gen.AddUniformWeights(gen.Chain(2000, false), 1, 10, 44)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	for _, tc := range cancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			met, err := tc.run(t, Options{Ctx: ctx})
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the deadline error")
			}
		})
	}
}

// TestCancelCustomCause: a cause installed via context.WithCancelCause must
// be wrapped into the returned error together with the typed sentinel.
func TestCancelCustomCause(t *testing.T) {
	g := gen.Chain(2000, true)
	because := errors.New("operator pulled the plug")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(because)
	_, _, err := BFS(g, 0, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, because) {
		t.Fatalf("err = %v does not wrap the cancellation cause", err)
	}
}

// TestCancelNilCtxCompletes: the zero Options must still mean "run to
// completion, nil error" — cancellation is strictly opt-in.
func TestCancelNilCtxCompletes(t *testing.T) {
	dg := gen.AddUniformWeights(gen.Chain(500, true), 1, 10, 45)
	ug := gen.AddUniformWeights(gen.Chain(500, false), 1, 10, 46)
	for _, tc := range cancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.run(t, Options{}); err != nil {
				t.Fatalf("unexpected error without a Ctx: %v", err)
			}
		})
	}
}

// TestCancelMidRun cancels each algorithm while it is demonstrably in
// flight: a watcher goroutine waits until the run's tracer has recorded
// enough activity (rounds, or scheduler loop launches for the round-free
// BCC pipeline), then cancels. On the 200k-vertex chains with Tau = 1 every
// algorithm has vastly more work left at that point, so the run must come
// back with the typed error and a cancel trace event rather than a result.
func TestCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-run cancellation sweep; skipped with -short")
	}
	const n = 200_000
	dg := gen.AddUniformWeights(gen.Chain(n, true), 1, 10, 47)
	ug := gen.AddUniformWeights(gen.Chain(n, false), 1, 10, 48)
	for _, tc := range cancelCases(dg, ug) {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			go func() {
				for {
					select {
					case <-done:
						return
					default:
					}
					activity := tr.CounterValue(trace.CtrRounds) +
						tr.CounterValue(trace.CtrLoops) +
						tr.CounterValue(trace.CtrInlineLoops)
					if activity >= 16 {
						cancel()
						return
					}
					runtime.Gosched()
				}
			}()
			met, err := tc.run(t, Options{
				Ctx: ctx, Tau: 1, Tracer: tr, TraceScheduler: true,
			})
			close(done)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if met == nil {
				t.Fatal("nil Metrics alongside the cancellation error")
			}
			if c := tr.CounterValue(trace.CtrCancels); c < 1 {
				t.Fatalf("CtrCancels = %d, want >= 1", c)
			}
			foundEvent := false
			for _, ev := range tr.Events() {
				if ev.Kind == trace.KindCancel {
					foundEvent = true
					break
				}
			}
			// If the watcher was starved long enough for the run to fill
			// the event ring before the cancel landed, the KindCancel
			// event is among the dropped tail; the counter above already
			// proved the cancel was recorded.
			if !foundEvent && tr.Dropped() == 0 {
				t.Fatal("no KindCancel event in the trace")
			}
		})
	}
}

// TestCancelEmitsOneTraceEvent: repeated Polls after the cancellation must
// not duplicate the cancel trace event — the Canceler emits it exactly once
// per run.
func TestCancelEmitsOneTraceEvent(t *testing.T) {
	g := gen.Chain(2000, true)
	tr := trace.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BFS(g, 0, Options{Ctx: ctx, Tracer: tr}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if c := tr.CounterValue(trace.CtrCancels); c != 1 {
		t.Fatalf("CtrCancels = %d after one canceled run, want exactly 1", c)
	}
}

// TestCancelNoGoroutineLeak: canceled runs must not leave watcher
// goroutines behind — the Canceler binds the context with AfterFunc (no
// goroutine while armed) and Close releases the registration, so the
// goroutine count must return to its pre-run baseline.
func TestCancelNoGoroutineLeak(t *testing.T) {
	g := gen.AddUniformWeights(gen.Chain(100_000, true), 1, 10, 49)
	// Warm up the worker pool so its (persistent, expected) goroutines are
	// part of the baseline.
	if _, _, err := BFS(g, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, _, err := BFS(g, 0, Options{Ctx: ctx, Tau: 1})
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("run %d: unexpected error kind: %v", i, err)
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before the canceled runs",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStressCancelMidRun hammers the cancellation path under load for the
// -race tier: concurrent BFS runs, each canceled at an arbitrary point by
// an unsynchronized goroutine. Every run must end in nil or ErrCanceled —
// never a partial result, a panic, or a hang.
func TestStressCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	g := gen.AddUniformWeights(gen.Chain(50_000, true), 1, 10, 50)
	want, _, err := BFS(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 24
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		i := i
		go func() {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				// Stagger the cancels across the run's lifetime.
				time.Sleep(time.Duration(i%8) * 200 * time.Microsecond)
				cancel()
			}()
			dist, _, err := BFS(g, 0, Options{Ctx: ctx, Tau: 1})
			switch {
			case err == nil:
				// Completed before the cancel landed: result must be the
				// real answer.
				for v := range want {
					if dist[v] != want[v] {
						errs <- errors.New("completed run returned wrong distances")
						return
					}
				}
				errs <- nil
			case errors.Is(err, ErrCanceled):
				if dist != nil {
					errs <- errors.New("canceled run returned a distance slice")
					return
				}
				errs <- nil
			default:
				errs <- err
			}
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
