package core

import (
	"testing"
	"testing/quick"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// Property: BFS distances satisfy the exact optimality conditions —
// dist[src] = 0; every edge (u,v) has dist[v] <= dist[u]+1; every reached
// v != src has a tight in-edge (a predecessor u with dist[u]+1 = dist[v]);
// unreached vertices have no reached in-neighbor.
func TestQuickBFSOptimalityConditions(t *testing.T) {
	f := func(seed uint64, nRaw uint16, mRaw uint16) bool {
		n := 2 + int(nRaw)%400
		m := int(mRaw) % (4 * n)
		g := gen.ER(n, m, true, seed)
		dist, _, _ := BFS(g, 0, Options{Tau: 1 + int(seed%100)})
		if dist[0] != 0 {
			return false
		}
		tr := g.Transpose()
		for v := 0; v < n; v++ {
			dv := dist[v]
			for _, w := range g.Neighbors(uint32(v)) {
				if dv != graph.InfDist && dist[w] > dv+1 {
					return false // relaxable edge left
				}
			}
			if v == 0 || dv == graph.InfDist {
				if dv == graph.InfDist {
					for _, u := range tr.Neighbors(uint32(v)) {
						if dist[u] != graph.InfDist {
							return false // reachable but marked unreached
						}
					}
				}
				continue
			}
			tight := false
			for _, u := range tr.Neighbors(uint32(v)) {
				if dist[u] != graph.InfDist && dist[u]+1 == dv {
					tight = true
					break
				}
			}
			if !tight {
				return false // distance not realized by any path
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SSSP distances satisfy the weighted optimality conditions.
func TestQuickSSSPOptimalityConditions(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := 2 + int(nRaw)%300
		g := gen.AddUniformWeights(gen.ER(n, 3*n, true, seed), 1, 50, seed+1)
		dist, _, _ := SSSP(g, 0, RhoStepping{Rho: 1 + int(seed%64)}, Options{})
		if dist[0] != 0 {
			return false
		}
		tr := g.Transpose()
		for v := 0; v < n; v++ {
			dv := dist[v]
			if dv == InfWeight {
				continue
			}
			wts := g.NeighborWeights(uint32(v))
			for i, w := range g.Neighbors(uint32(v)) {
				if dist[w] > dv+uint64(wts[i]) {
					return false
				}
			}
			if v == 0 {
				continue
			}
			tight := false
			twts := tr.NeighborWeights(uint32(v))
			for i, u := range tr.Neighbors(uint32(v)) {
				if dist[u] != InfWeight && dist[u]+uint64(twts[i]) == dv {
					tight = true
					break
				}
			}
			if !tight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the SCC condensation is acyclic, component labels are
// representatives, and cross-edges never point into an earlier... (no
// order claim — just acyclicity via Tarjan on the condensation).
func TestQuickSCCCondensationAcyclic(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := 2 + int(nRaw)%250
		g := gen.ER(n, 3*n, true, seed)
		labels, count, _, _ := SCC(g, Options{})
		// Map representative labels to dense ids.
		dense := map[uint32]uint32{}
		for _, l := range labels {
			if _, ok := dense[l]; !ok {
				dense[l] = uint32(len(dense))
			}
		}
		if len(dense) != count {
			return false
		}
		var condEdges []graph.Edge
		for u := uint32(0); u < uint32(n); u++ {
			for _, w := range g.Neighbors(u) {
				if labels[u] != labels[w] {
					condEdges = append(condEdges, graph.Edge{
						U: dense[labels[u]], V: dense[labels[w]]})
				}
			}
		}
		cond := graph.FromEdges(count, condEdges, true, graph.BuildOptions{})
		// Acyclic iff every condensation vertex is its own SCC.
		_, cc := seq.TarjanSCC(cond)
		return cc == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: BCC arc partition — every arc labeled, reverse arcs agree, and
// two arcs sharing a label are connected through their component (checked
// cheaply: component counts match Hopcroft–Tarjan's).
func TestQuickBCCPartition(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := 2 + int(nRaw)%200
		g := gen.ER(n, 2*n, false, seed)
		res, _, _ := BCC(g, Options{})
		want := seq.HopcroftTarjanBCC(g)
		if res.NumBCC != want.NumBCC {
			return false
		}
		for u := uint32(0); u < uint32(n); u++ {
			for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
				r := g.ReverseArc(u, e)
				if res.ArcLabel[e] != res.ArcLabel[r] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: coreness is monotone under edge addition (adding edges never
// lowers any vertex's coreness).
func TestQuickKCoreMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := 4 + int(nRaw)%150
		base := gen.ER(n, n, false, seed)
		more := gen.ER(n, 2*n, false, seed) // superset sampler: same seed prefix
		// Build a true superset: union of edge sets.
		var edges []graph.Edge
		for u := uint32(0); u < uint32(n); u++ {
			for _, w := range base.Neighbors(u) {
				if w > u {
					edges = append(edges, graph.Edge{U: u, V: w})
				}
			}
			for _, w := range more.Neighbors(u) {
				if w > u {
					edges = append(edges, graph.Edge{U: u, V: w})
				}
			}
		}
		super := graph.FromEdges(n, edges, false, graph.BuildOptions{})
		c1, _, _, _ := KCore(base, Options{})
		c2, _, _, _ := KCore(super, Options{})
		for v := 0; v < n; v++ {
			if c2[v] < c1[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
