package core

import (
	"sort"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// PointToPoint computes the shortest-path distance from src to dst on a
// weighted graph — one of the extensions the paper's conclusion names
// ("point-to-point shortest paths"). It is the stepping framework with
// goal-directed pruning: once a distance to dst is known, relaxations at
// or above it cannot lie on a better src→dst path (weights are
// non-negative) and are skipped, and the search stops as soon as every
// active vertex is at least as far as the best dst distance.
//
// Returns InfWeight if dst is unreachable from src.
//
// Both graph representations are accepted (the compressed one must carry
// weights); like SSSP, only the frontier processor's adjacency scan is
// specialized per representation.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation it returns
// (InfWeight, partial Metrics, ErrCanceled/ErrDeadline).
func PointToPoint(a graph.Adjacency, src, dst uint32, policy StepPolicy, opt Options) (uint64, *Metrics, error) {
	if !a.HasWeights() {
		panic("core: PointToPoint requires a weighted graph")
	}
	if policy == nil {
		policy = RhoStepping{}
	}
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "ptp")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := a.NumVertices()
	if n == 0 {
		return InfWeight, met, cl.Poll()
	}
	if src == dst {
		return 0, met, cl.Poll()
	}
	dist := make([]atomic.Uint64, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(InfWeight) })
	tau := opt.tau()

	near := hashbag.New(1024)
	far := hashbag.New(1024)
	near.SetTracer(opt.Tracer)
	far.SetTracer(opt.Tracer)
	dist[src].Store(0)
	near.Insert(src)
	theta := uint64(0)
	var best atomic.Uint64 // best known distance to dst
	best.Store(InfWeight)

	var processFrontier func(f []uint32)
	switch g := a.(type) {
	case *graph.Graph:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					dv := dist[v].Load()
					if dv >= best.Load() {
						continue // cannot extend a better path to dst
					}
					if dv > theta {
						far.Insert(v)
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						if du >= best.Load() {
							continue
						}
						wts := g.NeighborWeights(u)
						for j, w := range g.Neighbors(u) {
							edgeCount++
							nd := du + uint64(wts[j])
							if nd >= best.Load() {
								continue // pruned
							}
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if w == dst {
										// Track the new best dst distance.
										for {
											b := best.Load()
											if nd >= b || best.CompareAndSwap(b, nd) {
												break
											}
										}
									} else if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= g.Degree(u)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Compressed:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				wbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					dv := dist[v].Load()
					if dv >= best.Load() {
						continue
					}
					if dv > theta {
						far.Insert(v)
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						if du >= best.Load() {
							continue
						}
						nbuf, wbuf = g.AppendArcs(u, nbuf[:0], wbuf[:0])
						for j, w := range nbuf {
							edgeCount++
							nd := du + uint64(wbuf[j])
							if nd >= best.Load() {
								continue
							}
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if w == dst {
										for {
											b := best.Load()
											if nd >= b || best.CompareAndSwap(b, nd) {
												break
											}
										}
									} else if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Overlay:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				wbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					dv := dist[v].Load()
					if dv >= best.Load() {
						continue
					}
					if dv > theta {
						far.Insert(v)
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						if du >= best.Load() {
							continue
						}
						nbuf, wbuf = g.AppendArcs(u, nbuf[:0], wbuf[:0])
						for j, w := range nbuf {
							edgeCount++
							nd := du + uint64(wbuf[j])
							if nd >= best.Load() {
								continue
							}
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if w == dst {
										for {
											b := best.Load()
											if nd >= b || best.CompareAndSwap(b, nd) {
												break
											}
										}
									} else if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	}

	for {
		// Round/phase boundary check; see SSSP.
		if err := cl.Poll(); err != nil {
			return InfWeight, met, err
		}
		if near.Len() > 0 {
			processFrontier(near.Extract())
			continue
		}
		if far.Len() == 0 {
			break
		}
		met.AddPhase()
		f := far.Extract()
		sampleCap := 1024
		sample := make([]uint64, 0, sampleCap)
		stride := len(f)/sampleCap + 1
		for i := 0; i < len(f); i += stride {
			sample = append(sample, dist[f[i]].Load())
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		// Termination needs the true minimum over the active set (the
		// strided sample could miss a closer vertex).
		minActive := parallel.Min(len(f), func(i int) uint64 { return dist[f[i]].Load() })
		if minActive >= best.Load() {
			break // every active vertex is already at or past dst
		}
		theta = policy.Threshold(sample, len(f))
		if theta < sample[0] {
			theta = sample[0]
		}
		parallel.ForRangeCancel(cl.Token(), len(f), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := f[i]
				d := dist[v].Load()
				if d >= best.Load() {
					continue // pruned out of the search
				}
				if d <= theta {
					near.Insert(v)
				} else {
					far.Insert(v)
				}
			}
		})
	}
	// Final check: a canceled last round may have terminated the loop with
	// dst's distance still improvable.
	if err := cl.Poll(); err != nil {
		return InfWeight, met, err
	}
	return dist[dst].Load(), met, nil
}
