package core

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

func TestBridgesKnownCases(t *testing.T) {
	// Path: every edge is a bridge.
	g := gen.Chain(10, false)
	flags, count, _, _ := Bridges(g, Options{})
	if count != 9 {
		t.Fatalf("path bridges = %d", count)
	}
	for e, b := range flags {
		if !b {
			t.Fatalf("path arc %d not marked", e)
		}
	}
	// Cycle: no bridges.
	_, count, _, _ = Bridges(gen.Cycle(10, false), Options{})
	if count != 0 {
		t.Fatalf("cycle bridges = %d", count)
	}
	// Two triangles joined by one edge: exactly that edge is a bridge.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 2, V: 3},
	}
	bg := graph.FromEdges(6, edges, false, graph.BuildOptions{})
	flags, count, _, _ = Bridges(bg, Options{})
	if count != 1 {
		t.Fatalf("barbell bridges = %d", count)
	}
	e := bg.FindArc(2, 3)
	if !flags[e] {
		t.Fatal("the joining edge is not marked as a bridge")
	}
}

// A bridge's removal must disconnect its component (semantic check on
// random graphs).
func TestBridgesSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.IntN(60)
		g := gen.ER(n, rng.IntN(2*n)+1, false, uint64(trial))
		flags, _, _, _ := Bridges(g, Options{})
		_, baseCount := seq.TarjanSCC(g.Symmetrized().Transpose()) // reuse: comps via SCC of sym graph
		_ = baseCount
		comps := countComps(g, graph.None, graph.None)
		for u := uint32(0); u < uint32(g.N); u++ {
			for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
				v := g.Edges[e]
				if v < u {
					continue
				}
				without := countComps(g, u, v)
				isBridge := without > comps
				if flags[e] != isBridge {
					t.Fatalf("trial %d: edge (%d,%d) bridge=%v, removal says %v",
						trial, u, v, flags[e], isBridge)
				}
			}
		}
	}
}

// countComps counts connected components, skipping the edge (su,sv) in
// both directions (graph.None = skip nothing).
func countComps(g *graph.Graph, su, sv uint32) int {
	vis := make([]bool, g.N)
	count := 0
	for s := 0; s < g.N; s++ {
		if vis[s] {
			continue
		}
		count++
		stack := []uint32{uint32(s)}
		vis[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if (u == su && v == sv) || (u == sv && v == su) {
					continue
				}
				if !vis[v] {
					vis[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

func TestDensestSubgraphKnownCases(t *testing.T) {
	// K5 plus a long tail: the densest subgraph is the clique
	// (density 10/5 = 2).
	var edges []graph.Edge
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, graph.Edge{U: i, V: j})
		}
	}
	for i := uint32(5); i < 30; i++ {
		edges = append(edges, graph.Edge{U: i - 1, V: i})
	}
	g := graph.FromEdges(30, edges, false, graph.BuildOptions{})
	verts, density, _, _ := DensestSubgraph(g, Options{})
	if len(verts) != 5 {
		t.Fatalf("densest has %d vertices, want the K5", len(verts))
	}
	for _, v := range verts {
		if v >= 5 {
			t.Fatalf("vertex %d should not be in the densest subgraph", v)
		}
	}
	if density != 2.0 {
		t.Fatalf("density = %v, want 2", density)
	}
	// Empty graph.
	verts, density, _, _ = DensestSubgraph(graph.FromEdges(0, nil, false, graph.BuildOptions{}), Options{})
	if len(verts) != 0 || density != 0 {
		t.Fatal("empty graph densest")
	}
}

// Guarantee check: the returned density is at least half the degeneracy
// (which upper-bounds the optimum density), and at least the whole graph's
// density.
func TestDensestSubgraphGuarantee(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.IntN(300)
		g := gen.ER(n, rng.IntN(6*n)+1, false, uint64(50+trial))
		verts, density, _, _ := DensestSubgraph(g, Options{})
		_, degeneracy := seq.KCore(g)
		if density < float64(degeneracy)/2 {
			t.Fatalf("trial %d: density %.3f below degeneracy/2 = %.1f",
				trial, density, float64(degeneracy)/2)
		}
		whole := float64(g.UndirectedM()) / float64(g.N)
		if density+1e-9 < whole {
			t.Fatalf("trial %d: density %.3f below whole-graph %.3f", trial, density, whole)
		}
		// Returned set induces the reported density.
		sub, _ := graph.InducedSubgraph(g, verts)
		got := float64(sub.UndirectedM()) / float64(sub.N)
		if got != density {
			t.Fatalf("trial %d: reported %.3f, induced %.3f", trial, density, got)
		}
	}
}
