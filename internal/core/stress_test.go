package core

import (
	"math/rand/v2"
	"sync"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/seq"
)

// TestStressBFSConcurrentQueries runs several BFS queries concurrently on
// one shared graph with the worker team oversized, so hash-bag frontiers,
// VGC local searches, and the fork-join runtime from different queries all
// interleave on the same cores. Each query's distances are checked against
// the sequential oracle. Under -race this is the closest approximation of
// the production serving scenario: many traversals in flight at once.
func TestStressBFSConcurrentQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := parallel.SetWorkers(16)
	defer parallel.SetWorkers(old)

	graphs := []*graph.Graph{
		gen.Chain(3000, false),
		gen.ER(2500, 7000, false, 11),
		gen.ER(2000, 4000, true, 12),
	}
	for gi, g := range graphs {
		srcs := []uint32{0, uint32(g.N / 3), uint32(g.N - 1)}
		want := make([][]uint32, len(srcs))
		for i, s := range srcs {
			want[i] = seq.BFS(g, s)
		}
		var wg sync.WaitGroup
		errc := make(chan string, len(srcs)*2)
		for rep := 0; rep < 2; rep++ {
			for i, s := range srcs {
				wg.Add(1)
				go func(i int, s uint32) {
					defer wg.Done()
					dist, _, _ := BFS(g, s, Options{})
					for v := range dist {
						if dist[v] != want[i][v] {
							errc <- "distance mismatch"
							return
						}
					}
				}(i, s)
			}
		}
		wg.Wait()
		close(errc)
		for msg := range errc {
			t.Fatalf("graph %d: %s", gi, msg)
		}
	}
}

// TestStressSCCUnderRace runs SCC with tiny tau (maximum scheduling
// pressure: every discovered vertex goes back through the shared hash bag)
// on random directed graphs and cross-checks the component count against
// the sequential Kosaraju oracle.
func TestStressSCCUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	old := parallel.SetWorkers(16)
	defer parallel.SetWorkers(old)
	rng := rand.New(rand.NewPCG(21, 4))
	for trial := 0; trial < 3; trial++ {
		n := 500 + rng.IntN(1500)
		g := gen.ER(n, 3*n, true, uint64(trial)+40)
		_, gotCount, _, _ := SCC(g, Options{Tau: 1})
		_, wantCount := seq.KosarajuSCC(g)
		if gotCount != wantCount {
			t.Fatalf("trial %d: %d SCCs, oracle has %d", trial, gotCount, wantCount)
		}
	}
}
