package core

import (
	"sync/atomic"

	"pasgal/internal/conn"
	"pasgal/internal/euler"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
	"pasgal/internal/rmq"
)

// BCCResult is a biconnectivity decomposition: a BCC label per arc (both
// arcs of an undirected edge agree), the component count, and articulation
// points. It matches seq.BCCResult's semantics so the two are directly
// comparable.
type BCCResult struct {
	NumBCC   int
	ArcLabel []uint32
	IsArt    []bool
}

// BCC computes biconnected components with the FAST-BCC algorithm (Dong et
// al.), which avoids BFS entirely:
//
//  1. spanning forest by parallel union–find (internal/conn);
//  2. Euler tour + list ranking roots the forest and yields preorder
//     numbers and subtree sizes (internal/euler);
//  3. low/high: the min/max preorder reachable from each subtree through a
//     non-tree edge, via O(n)-space blocked range-min over preorder-ordered
//     per-vertex aggregates (internal/rmq);
//  4. a tree edge (p(v), v) is a *fence* iff v's subtree never escapes the
//     preorder interval of its parent p(v) — fence edges separate BCCs
//     (escaping only as far as p(v) itself still fences: p(v) is the
//     component head, not part of the cluster);
//  5. connectivity over the skeleton: non-fence tree edges plus non-tree
//     edges between *unrelated* vertices (back edges to ancestors
//     contribute through the low/high values instead, exactly as in
//     Tarjan–Vishkin's auxiliary-graph conditions). The BCC of tree edge
//     (p(v), v) is v's skeleton component; a non-tree edge belongs to the
//     component of its deeper endpoint.
//
// Work O(n+m), polylogarithmic span, O(n) auxiliary space — no Θ(D)
// synchronization chains and no Θ(m) auxiliary graph, the two failure modes
// of GBBS-style and Tarjan–Vishkin-style biconnectivity respectively.
// A non-nil opt.Ctx makes the run cancellable: on cancellation BCC
// returns (zero BCCResult, partial Metrics, ErrCanceled/ErrDeadline).
func BCC(g *graph.Graph, opt Options) (BCCResult, *Metrics, error) {
	if g.Directed {
		panic("core: BCC requires an undirected graph (symmetrize first)")
	}
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "bcc")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := g.N
	res := BCCResult{
		ArcLabel: make([]uint32, len(g.Edges)),
		IsArt:    make([]bool, n),
	}
	parallel.Fill(res.ArcLabel, graph.None)
	if n == 0 {
		return res, met, cl.Poll()
	}
	if err := cl.Poll(); err != nil {
		return BCCResult{}, met, err
	}

	// (1) + (2): rooted spanning forest, no BFS.
	tree, _, _ := conn.SpanningForest(g)
	f := euler.Build(n, tree)
	met.SetPhases(2)
	if err := labelFromForest(g, f, &res, met, cl); err != nil {
		return BCCResult{}, met, err
	}
	return res, met, nil
}

// BCCFromForest runs FAST-BCC's labeling stages (low/high, fence
// classification, skeleton connectivity) on top of an already-rooted
// spanning forest of g. The GBBS-style baseline uses it with a BFS-built
// forest; BCC itself uses a union-find forest. The forest must span g.
// opt contributes the cancellation context (opt.Ctx) and observability
// (opt.Tracer / opt.TraceScheduler); the labeling stages have no
// VGC/frontier tunables.
func BCCFromForest(g *graph.Graph, f *euler.Forest, opt Options) (BCCResult, *Metrics, error) {
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "bcc")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	res := BCCResult{
		ArcLabel: make([]uint32, len(g.Edges)),
		IsArt:    make([]bool, g.N),
	}
	parallel.Fill(res.ArcLabel, graph.None)
	if g.N == 0 {
		return res, met, cl.Poll()
	}
	if err := labelFromForest(g, f, &res, met, cl); err != nil {
		return BCCResult{}, met, err
	}
	return res, met, nil
}

// labelFromForest runs stages (3)-(5) plus label compaction, polling cl
// at every stage boundary (each stage is a handful of flat parallel
// passes; the passes themselves drain through cl's token).
func labelFromForest(g *graph.Graph, f *euler.Forest, res *BCCResult, met *Metrics, cl *Canceler) error {
	n := g.N

	// isTree marks arcs that realize a parent/child relation.
	isTree := func(u, w uint32) bool {
		return f.Parent[u] == w || f.Parent[w] == u
	}

	// (3) per-vertex local aggregates in preorder position: the vertex's
	// own preorder plus the preorders of its non-tree neighbors.
	localLow := make([]uint32, n)
	localHigh := make([]uint32, n)
	parallel.ForCancel(cl.Token(), n, 64, func(ui int) {
		u := uint32(ui)
		lo := f.Pre[u]
		hi := f.Pre[u]
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			if isTree(u, w) {
				continue
			}
			pw := f.Pre[w]
			if pw < lo {
				lo = pw
			}
			if pw > hi {
				hi = pw
			}
		}
		localLow[f.Pre[u]] = lo
		localHigh[f.Pre[u]] = hi
	})
	if err := cl.Poll(); err != nil {
		return err
	}
	lowR := rmq.NewMin(localLow)
	highR := rmq.NewMax(localHigh)
	met.AddEdges(int64(len(g.Edges)))

	// (4) fence test per non-root vertex, against the parent's interval.
	fence := make([]bool, n)
	parallel.ForCancel(cl.Token(), n, 256, func(vi int) {
		v := uint32(vi)
		p := f.Parent[v]
		if p == graph.None {
			return
		}
		low := lowR.Query(int(f.First(v)), int(f.Last(v)))
		high := highR.Query(int(f.First(v)), int(f.Last(v)))
		fence[v] = low >= f.First(p) && high <= f.Last(p)
	})

	// (5) skeleton connectivity: unrelated non-tree edges + non-fence tree
	// edges. Ancestor back edges are already accounted for by low/high.
	if err := cl.Poll(); err != nil {
		return err
	}
	uf := conn.NewUnionFind(n)
	parallel.ForCancel(cl.Token(), n, 64, func(ui int) {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			if w <= u || isTree(u, w) {
				continue
			}
			if !f.IsAncestor(u, w) && !f.IsAncestor(w, u) {
				uf.Union(u, w)
			}
		}
	})
	parallel.For(n, 0, func(vi int) {
		v := uint32(vi)
		if p := f.Parent[v]; p != graph.None && !fence[v] {
			uf.Union(v, p)
		}
	})

	// Labels: tree arc (p(v), v) -> skeleton component of v; non-tree arc
	// -> skeleton component of its deeper endpoint (for unrelated
	// endpoints the components coincide). Component ids are skeleton
	// roots, compacted afterwards.
	if err := cl.Poll(); err != nil {
		return err
	}
	parallel.ForCancel(cl.Token(), n, 64, func(ui int) {
		u := uint32(ui)
		for e := g.Offsets[u]; e < g.Offsets[u+1]; e++ {
			w := g.Edges[e]
			switch {
			case f.Parent[w] == u:
				res.ArcLabel[e] = uf.Find(w)
			case f.Parent[u] == w:
				res.ArcLabel[e] = uf.Find(u)
			case f.IsAncestor(u, w): // u above w: w's side owns the edge
				res.ArcLabel[e] = uf.Find(w)
			default:
				res.ArcLabel[e] = uf.Find(u)
			}
		}
	})

	// Compact labels to [0, NumBCC) and detect articulation points
	// (vertices incident to >= 2 distinct BCCs). The compaction reads
	// every arc label, so a canceled labeling pass must surface first.
	if err := cl.Poll(); err != nil {
		return err
	}
	labelUsed := make([]atomic.Uint32, n)
	parallel.ForRange(len(res.ArcLabel), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if l := res.ArcLabel[i]; l != graph.None {
				labelUsed[l].Store(1)
			}
		}
	})
	remap := make([]uint32, n)
	parallel.For(n, 0, func(i int) { remap[i] = labelUsed[i].Load() })
	total := parallel.Scan(remap) // exclusive; remap[l] = compact id
	res.NumBCC = int(total)
	parallel.ForRange(len(res.ArcLabel), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if res.ArcLabel[i] != graph.None {
				res.ArcLabel[i] = remap[res.ArcLabel[i]]
			}
		}
	})
	parallel.For(n, 64, func(vi int) {
		v := uint32(vi)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		if hi-lo < 2 {
			return
		}
		first := res.ArcLabel[lo]
		for e := lo + 1; e < hi; e++ {
			if res.ArcLabel[e] != first {
				res.IsArt[v] = true
				return
			}
		}
	})
	return cl.Poll()
}
