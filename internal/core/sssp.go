package core

import (
	"sort"
	"sync/atomic"

	"pasgal/internal/graph"
	"pasgal/internal/hashbag"
	"pasgal/internal/parallel"
)

// InfWeight is the "unreachable" weighted distance (matches seq.InfWeight).
const InfWeight = ^uint64(0)

// StepPolicy chooses the next processing threshold in the stepping
// framework (Dong et al.): given a sample of the active tentative
// distances (sorted ascending) and the total number of active vertices, it
// returns θ — vertices with dist <= θ are processed this phase.
type StepPolicy interface {
	// Threshold picks θ >= sample[0]. sample is non-empty and sorted.
	Threshold(sample []uint64, active int) uint64
	// Name identifies the policy in benchmark output.
	Name() string
}

// DeltaStepping processes vertices in fixed-width distance bands, like
// Meyer & Sanders' Δ-stepping.
type DeltaStepping struct{ Delta uint64 }

// Threshold implements StepPolicy: the end of sample[0]'s Δ-band,
// (sample[0]/Δ + 1)·Δ, saturated to InfWeight. The saturation matters:
// for tentative distances within Δ of MaxUint64 the band-end product
// wraps in uint64 and would return θ < sample[0], stalling the phase
// loop's progress guarantee.
func (p DeltaStepping) Threshold(sample []uint64, active int) uint64 {
	d := p.Delta
	if d == 0 {
		d = 1
	}
	q := sample[0] / d
	if q >= InfWeight/d {
		// (q+1)*d would exceed (or wrap past) MaxUint64.
		return InfWeight
	}
	return (q + 1) * d
}

// Name implements StepPolicy.
func (DeltaStepping) Name() string { return "delta" }

// RhoStepping aims to process the ~Rho closest active vertices per phase —
// the paper's ρ-stepping, PASGAL's default SSSP configuration.
type RhoStepping struct{ Rho int }

// Threshold implements StepPolicy.
func (p RhoStepping) Threshold(sample []uint64, active int) uint64 {
	rho := p.Rho
	if rho <= 0 {
		rho = 1 << 14
	}
	if rho >= active {
		// Process everything currently active, but not vertices
		// discovered later this phase: an unbounded θ would degrade the
		// phase into asynchronous Bellman–Ford with unbounded re-work.
		return sample[len(sample)-1]
	}
	// Index of the ρ-th smallest active distance, estimated through the
	// sample.
	idx := len(sample) * rho / active
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	return sample[idx]
}

// Name implements StepPolicy.
func (RhoStepping) Name() string { return "rho" }

// BellmanFordPolicy processes every active vertex every phase.
type BellmanFordPolicy struct{}

// Threshold implements StepPolicy.
func (BellmanFordPolicy) Threshold([]uint64, int) uint64 { return InfWeight }

// Name implements StepPolicy.
func (BellmanFordPolicy) Name() string { return "bf" }

// SSSP computes single-source shortest paths on a weighted graph with the
// stepping-algorithm framework: a near/far pair of hash bags, a pluggable
// threshold policy, atomic write-min relaxations, and VGC local searches
// (a relaxation that lands under the current threshold keeps expanding
// in-task instead of round-tripping through the frontier).
//
// policy == nil selects ρ-stepping with its default ρ.
//
// Both graph representations are accepted (the compressed one must carry
// weights); the phase driver is shared and only the frontier processor's
// adjacency scan is specialized per representation.
//
// A non-nil opt.Ctx makes the run cancellable: on cancellation SSSP
// returns (nil, partial Metrics, ErrCanceled/ErrDeadline).
func SSSP(a graph.Adjacency, src uint32, policy StepPolicy, opt Options) ([]uint64, *Metrics, error) {
	if !a.HasWeights() {
		panic("core: SSSP requires a weighted graph")
	}
	if policy == nil {
		policy = RhoStepping{}
	}
	opt = opt.Normalized()
	defer attachRuntimeTracer(opt)()
	met := NewMetrics(opt, "sssp")
	cl := NewCanceler(opt, met)
	defer cl.Close()
	n := a.NumVertices()
	dist := make([]atomic.Uint64, n)
	parallel.For(n, 0, func(i int) { dist[i].Store(InfWeight) })
	out := make([]uint64, n)
	if n == 0 {
		return out, met, cl.Poll()
	}
	tau := opt.tau()

	near := hashbag.New(1024)
	far := hashbag.New(1024)
	near.SetTracer(opt.Tracer)
	far.SetTracer(opt.Tracer)
	dist[src].Store(0)
	near.Insert(src)
	theta := uint64(0) // process dist <= theta; first phase handles src only

	// The frontier processor is the only place the graph is scanned, so it
	// is the per-representation specialization point. Both closures share
	// theta/near/far/dist with the phase driver below.
	var processFrontier func(f []uint32)
	switch g := a.(type) {
	case *graph.Graph:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			// Multi-hop local expansion is only sound under a finite θ: it
			// bounds how wrong an eagerly-expanded tentative distance can be.
			// With θ = ∞ (Bellman–Ford policy) every improvement round-trips
			// through the frontier instead.
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			// FIFO local worklist: the local search relaxes in mini-BFS order,
			// keeping tentative distances close to final (a LIFO order would
			// chase depth-first chains of inflated distances).
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					if dist[v].Load() > theta {
						far.Insert(v) // not ready yet; defer to a later phase
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						wts := g.NeighborWeights(u)
						for j, w := range g.Neighbors(u) {
							edgeCount++
							nd := du + uint64(wts[j])
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= g.Degree(u)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Compressed:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				wbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					if dist[v].Load() > theta {
						far.Insert(v)
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						// Bulk-decode the whole weighted list into the
						// task's scratch: every arc gets relaxed anyway.
						nbuf, wbuf = g.AppendArcs(u, nbuf[:0], wbuf[:0])
						for j, w := range nbuf {
							edgeCount++
							nd := du + uint64(wbuf[j])
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	case *graph.Overlay:
		processFrontier = func(f []uint32) {
			met.Round(len(f))
			localBudget := tau
			if theta == InfWeight {
				localBudget = 0
			}
			parallel.ForRangeCancel(cl.Token(), len(f), 1, func(lo, hi int) {
				queue := make([]uint32, 0, 64)
				nbuf := make([]uint32, 0, 256)
				wbuf := make([]uint32, 0, 256)
				var edgeCount int64
				for i := lo; i < hi; i++ {
					v := f[i]
					if dist[v].Load() > theta {
						far.Insert(v)
						continue
					}
					queue = append(queue[:0], v)
					budget := localBudget
					for head := 0; head < len(queue); head++ {
						u := queue[head]
						du := dist[u].Load()
						// Merge the patched weighted list into the task's
						// scratch: every arc gets relaxed anyway.
						nbuf, wbuf = g.AppendArcs(u, nbuf[:0], wbuf[:0])
						for j, w := range nbuf {
							edgeCount++
							nd := du + uint64(wbuf[j])
							for {
								old := dist[w].Load()
								if nd >= old {
									break
								}
								if dist[w].CompareAndSwap(old, nd) {
									if nd <= theta && budget > 0 {
										queue = append(queue, w)
									} else if nd <= theta {
										near.Insert(w)
									} else {
										far.Insert(w)
									}
									break
								}
							}
						}
						budget -= len(nbuf)
						if budget <= 0 && head+1 < len(queue) {
							for _, w := range queue[head+1:] {
								near.Insert(w)
							}
							queue = queue[:head+1]
						}
					}
				}
				met.AddEdges(edgeCount)
			})
		}
	}

	for {
		// Round/phase boundary: a canceled round drains chunks without
		// re-inserting deferred vertices, so the near/far emptiness test
		// below would read as convergence — stop first.
		if err := cl.Poll(); err != nil {
			return nil, met, err
		}
		if near.Len() > 0 {
			processFrontier(near.Extract())
			continue
		}
		if far.Len() == 0 {
			break
		}
		// New phase: pick θ from the far set and promote the ready part.
		met.AddPhase()
		f := far.Extract()
		// Drop stale entries (already settled below a previous θ and
		// re-processed); keep one representative per improvable vertex.
		sampleCap := 1024
		sample := make([]uint64, 0, sampleCap)
		stride := len(f)/sampleCap + 1
		for i := 0; i < len(f); i += stride {
			sample = append(sample, dist[f[i]].Load())
		}
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		theta = policy.Threshold(sample, len(f))
		if theta < sample[0] {
			theta = sample[0] // guarantee progress
		}
		parallel.ForRangeCancel(cl.Token(), len(f), 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := f[i]
				if dist[v].Load() <= theta {
					near.Insert(v)
				} else {
					far.Insert(v)
				}
			}
		})
	}

	// Final check before materializing: only a clean Poll lets the result
	// be claimed complete (see BFS).
	if err := cl.Poll(); err != nil {
		return nil, met, err
	}
	parallel.For(n, 0, func(i int) { out[i] = dist[i].Load() })
	return out, met, nil
}
