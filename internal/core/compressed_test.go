package core

import (
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
)

// Functional twins for the compressed scan specializations in this
// package: the bench package's differential suite sweeps the full shape
// matrix, but these in-package tests pin the representative branches —
// bulk-decode scans, the VGC budget-exhaustion spill, and goal-directed
// pruning — directly against the plain path.

// TestCompressedReachableMatchesPlain runs the multi-source local search
// on both representations, in the default and the budget-starved (Tau=1,
// every discovered vertex spills to the shared bag) configurations.
func TestCompressedReachableMatchesPlain(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"er-sparse": gen.ER(800, 1200, true, 21), // disconnected
		"rmat":      gen.SocialRMAT(9, 8, true, 22),
		"grid":      gen.Grid2D(20, 20, false, 23),
	} {
		c := graph.Compress(g)
		srcs := []uint32{0, uint32(g.N / 2)}
		for oname, opt := range map[string]Options{"default": {}, "novgc": {Tau: 1}} {
			want, _, err := Reachable(g, srcs, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := Reachable(c, srcs, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: reach[%d] = %v compressed, %v plain",
						name, oname, v, got[v], want[v])
				}
			}
		}
	}
}

// TestCompressedPointToPointMatchesPlain covers the weighted bulk-decode
// scan under goal-directed pruning: reachable pairs, an unreachable pair,
// the src == dst shortcut, and the budget-starved configuration.
func TestCompressedPointToPointMatchesPlain(t *testing.T) {
	g := gen.AddUniformWeights(gen.ER(700, 2800, true, 31), 1, 50, 32)
	c := graph.Compress(g)
	pairs := [][2]uint32{
		{0, uint32(g.N - 1)},
		{uint32(g.N / 2), 1},
		{5, 5}, // shortcut
	}
	for oname, opt := range map[string]Options{"default": {}, "novgc": {Tau: 1}} {
		for _, p := range pairs {
			want, _, err := PointToPoint(g, p[0], p[1], nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := PointToPoint(c, p[0], p[1], nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s %d->%d: dist %d compressed, %d plain", oname, p[0], p[1], got, want)
			}
		}
	}
	// An unreachable destination: two-component graph.
	iso := gen.AddUniformWeights(gen.ER(200, 100, true, 33), 1, 9, 34)
	ic := graph.Compress(iso)
	for dst := uint32(1); dst < uint32(iso.N); dst++ {
		want, _, err := PointToPoint(iso, 0, dst, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := PointToPoint(ic, 0, dst, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("0->%d: dist %d compressed, %d plain", dst, got, want)
		}
		if want == InfWeight {
			return // found and verified an unreachable pair; done
		}
	}
	t.Fatal("no unreachable pair in the sparse graph; strengthen the generator seed")
}

// TestCompressedUnweightedPTPPanics pins the weighted-graph precondition
// on the compressed representation.
func TestCompressedUnweightedPTPPanics(t *testing.T) {
	c := graph.Compress(gen.Chain(10, true))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for an unweighted compressed graph")
		}
	}()
	PointToPoint(c, 0, 5, nil, Options{})
}
