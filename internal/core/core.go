// Package core implements PASGAL's algorithms: BFS, SCC, and SSSP built on
// vertical granularity control (VGC) with hash-bag frontiers, and the
// FAST-BCC biconnectivity algorithm. These are the paper's contribution;
// the competing systems live in internal/baseline and the sequential
// references in internal/seq.
//
// # Vertical granularity control
//
// A frontier-based algorithm that processes one vertex per parallel task
// drowns in scheduling overhead on large-diameter graphs: Θ(D) rounds,
// each paying a fork-join barrier, over frontiers too small to occupy the
// machine. VGC gives each task a *local search*: starting from its frontier
// vertex it keeps exploring — multiple hops deep — until it has visited
// about τ edges, and only the leftovers are pushed into the shared next
// frontier. One round therefore advances many hops and the frontier grows
// multiplicatively, hiding synchronization cost exactly as classic
// (horizontal) granularity control hides it for flat loops.
package core

import (
	"context"
	"math"
	"sync/atomic"

	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

// DefaultTau is the default VGC local-search budget in edges.
const DefaultTau = 512

// MaxTau caps the VGC budget: BFS keeps 2τ+4 distance-indexed frontiers
// alive, so an unbounded τ would turn a tuning typo into a gigantic
// allocation. Budgets past this are clamped (a τ this large already means
// "one local search per round" on any graph we can hold in memory).
const MaxTau = 1 << 20

// DefaultDenseFrac is the default bottom-up switch threshold (fraction of
// n the frontier must reach).
const DefaultDenseFrac = 0.05

// DefaultTrimRounds is the default number of SCC trimming passes.
const DefaultTrimRounds = 2

// Options tunes the PASGAL algorithms. The zero value selects defaults.
type Options struct {
	// Ctx, when non-nil, makes the run cancellable: every algorithm polls
	// it at round/phase boundaries (and the parallel runtime at chunk-claim
	// boundaries) and returns ErrCanceled or ErrDeadline — with the Metrics
	// accumulated so far, but never a partial result — once it is done.
	// nil means the run cannot be interrupted, and polling costs one nil
	// test. See docs/ROBUSTNESS.md for the cancellation contract.
	Ctx context.Context

	// Tau is the VGC local-search budget in edges; <= 0 selects
	// DefaultTau. Tau = 1 effectively disables VGC (every discovered
	// vertex goes back through the shared frontier), which is what the
	// ablation benchmarks use as the "no VGC" configuration.
	Tau int

	// DisableHashBag replaces hash-bag frontiers with flat dense frontier
	// arrays (a full n-sized scan per round) — the ablation the hash bag
	// is measured against.
	DisableHashBag bool

	// DisableDirectionOpt turns off the Beamer-style bottom-up switch in
	// BFS.
	DisableDirectionOpt bool

	// DenseFrac is the frontier fraction (of n) above which BFS switches
	// to a bottom-up round; <= 0 selects 0.05.
	DenseFrac float64

	// TrimRounds is the number of SCC trimming passes; < 0 disables,
	// 0 selects the default (2).
	TrimRounds int

	// RecordFrontiers makes Metrics.FrontierSizes record the size of every
	// extracted frontier, in round order (costs one append per round).
	RecordFrontiers bool

	// Tracer, when non-nil, receives structured per-round events (frontier
	// extractions, direction switches, phases, hash-bag resizes) from the
	// run. nil disables tracing at the cost of one pointer test per round.
	Tracer *trace.Tracer

	// TraceScheduler, when set together with Tracer, additionally mirrors
	// the fork-join runtime's scheduling counters (loop launches, published
	// forks, steals, parks, wakes) into the same Tracer for the duration of
	// the call, so one trace shows both what the algorithm did per round
	// and what that cost the scheduler. The runtime hook is process-global
	// (the worker pool is shared); concurrent runs with different tracers
	// should not both set this.
	TraceScheduler bool
}

// attachRuntimeTracer installs opt.Tracer as the parallel runtime's tracer
// when opt.TraceScheduler asks for it, and returns the function that
// restores the previous hook — intended as `defer attachRuntimeTracer(opt)()`
// at every algorithm entry point.
func attachRuntimeTracer(opt Options) func() {
	if !opt.TraceScheduler || opt.Tracer == nil {
		return func() {}
	}
	prev := parallel.SetTracer(opt.Tracer)
	return func() { parallel.SetTracer(prev) }
}

// Normalized returns o with every field mapped to its canonical effective
// value, resolving the raw fields' sentinel encodings:
//
//   - Tau <= 0 selects DefaultTau; values above MaxTau are clamped.
//   - DenseFrac <= 0 (or NaN) selects DefaultDenseFrac; DenseFrac >= 1 can
//     never trigger (a frontier extraction may exceed n entries only via
//     duplicates, which must not flip direction), so it normalizes to
//     DisableDirectionOpt with the default fraction.
//   - TrimRounds < 0 normalizes to -1 ("no trimming"); 0 selects
//     DefaultTrimRounds. In normalized form TrimRounds is therefore never
//     0 — the raw encoding cannot express "zero passes" directly, which is
//     exactly why the sentinel exists.
//
// Normalization is idempotent, and every algorithm applies it on entry, so
// raw and normalized Options behave identically.
func (o Options) Normalized() Options {
	n := o
	n.Tau = o.tau()
	if math.IsNaN(o.DenseFrac) || o.DenseFrac >= 1 {
		n.DisableDirectionOpt = true
		n.DenseFrac = DefaultDenseFrac
	} else if o.DenseFrac <= 0 {
		n.DenseFrac = DefaultDenseFrac
	}
	switch {
	case o.TrimRounds < 0:
		n.TrimRounds = -1
	case o.TrimRounds == 0:
		n.TrimRounds = DefaultTrimRounds
	}
	return n
}

func (o Options) tau() int {
	if o.Tau <= 0 {
		return DefaultTau
	}
	if o.Tau > MaxTau {
		return MaxTau
	}
	return o.Tau
}

func (o Options) denseFrac() float64 {
	if math.IsNaN(o.DenseFrac) || o.DenseFrac <= 0 || o.DenseFrac >= 1 {
		return DefaultDenseFrac
	}
	return o.DenseFrac
}

// denseCut returns the frontier size at which BFS switches bottom-up, or
// math.MaxInt64 when direction optimization cannot apply (disabled, or a
// fraction >= 1 — extractions can exceed n via duplicate inserts, so a cut
// derived from an impossible fraction must never fire).
func (o Options) denseCut(n int) int64 {
	if o.DisableDirectionOpt || math.IsNaN(o.DenseFrac) || o.DenseFrac >= 1 {
		return math.MaxInt64
	}
	cut := int64(float64(n) * o.denseFrac())
	if cut < 1 {
		cut = 1
	}
	return cut
}

// DenseCut returns the frontier size at which a traversal over an n-vertex
// graph switches to a bottom-up (pull) round, or math.MaxInt64 when
// direction optimization cannot apply. It is the exported form of the
// heuristic BFS uses internally, so batched engines built outside this
// package (internal/msbfs) share the exact same switch point.
func (o Options) DenseCut(n int) int64 { return o.denseCut(n) }

func (o Options) trimRounds() int {
	if o.TrimRounds < 0 {
		return 0
	}
	if o.TrimRounds == 0 {
		return DefaultTrimRounds
	}
	return o.TrimRounds
}

// Metrics reports the machine-independent cost profile of a run. Rounds is
// the headline number: each round is one global synchronization barrier, so
// VGC's claim — collapsing Θ(D) rounds to a small multiple of D/τ-ish —
// shows up here on any machine, regardless of core count.
type Metrics struct {
	Rounds        int64 // frontier extractions = global synchronizations
	BottomUp      int64 // of which bottom-up (direction-optimized) rounds
	EdgesVisited  int64 // total edge relaxations/inspections
	VerticesTaken int64 // frontier entries extracted (incl. stale)
	MaxFrontier   int64 // largest extracted frontier
	Phases        int64 // SCC outer rounds / SSSP threshold phases

	// FrontierSizes is the per-round frontier size series, recorded only
	// when Options.RecordFrontiers is set. The paper's §2.1 claims VGC
	// "quickly accumulates a large frontier size"; this series is the
	// direct evidence.
	FrontierSizes []int64

	record bool
	tracer *trace.Tracer
	algo   string
}

// NewMetrics returns a Metrics wired to opt's tracer under the given algo
// label: every Round/AddBottomUp/AddPhase call is mirrored as a trace
// event, so the tracer sees exactly the series Metrics accumulates (the
// trace invariant tests assert this agreement). The zero Metrics value
// remains valid and trace-free.
func NewMetrics(opt Options, algo string) *Metrics {
	return &Metrics{record: opt.RecordFrontiers, tracer: opt.Tracer, algo: algo}
}

// Round records one frontier extraction of the given size: it bumps
// Rounds and VerticesTaken and folds the size into MaxFrontier. All
// updates are atomic, so algorithm code (here and in internal/baseline)
// never touches the counter fields directly — pasgal-vet's mixed-access
// rule enforces that split.
func (m *Metrics) Round(frontier int) {
	r := atomic.AddInt64(&m.Rounds, 1)
	atomic.AddInt64(&m.VerticesTaken, int64(frontier))
	m.tracer.Round(m.algo, r, int64(frontier))
	if m.record {
		// Rounds are extracted by a single coordinator goroutine; the
		// append does not race with other Round calls.
		m.FrontierSizes = append(m.FrontierSizes, int64(frontier))
	}
	for {
		cur := atomic.LoadInt64(&m.MaxFrontier)
		if int64(frontier) <= cur ||
			atomic.CompareAndSwapInt64(&m.MaxFrontier, cur, int64(frontier)) {
			return
		}
	}
}

// AddEdges adds k edge inspections to EdgesVisited. Safe to call from
// parallel loop bodies.
func (m *Metrics) AddEdges(k int64) {
	atomic.AddInt64(&m.EdgesVisited, k)
}

// AddPhase records one outer phase (SCC peeling round, SSSP threshold
// step, k-core peel, ...).
func (m *Metrics) AddPhase() {
	p := atomic.AddInt64(&m.Phases, 1)
	m.tracer.Phase(m.algo, p, -1)
}

// AddBottomUp records one bottom-up (direction-optimized) round.
func (m *Metrics) AddBottomUp() {
	atomic.AddInt64(&m.BottomUp, 1)
	m.tracer.DirectionSwitch(m.algo, atomic.LoadInt64(&m.Rounds))
}

// SetPhases stores the phase count for algorithms whose structure is fixed
// up front.
func (m *Metrics) SetPhases(k int64) {
	atomic.StoreInt64(&m.Phases, k)
	m.tracer.Phase(m.algo, k, -1)
}
