// Package core implements PASGAL's algorithms: BFS, SCC, and SSSP built on
// vertical granularity control (VGC) with hash-bag frontiers, and the
// FAST-BCC biconnectivity algorithm. These are the paper's contribution;
// the competing systems live in internal/baseline and the sequential
// references in internal/seq.
//
// # Vertical granularity control
//
// A frontier-based algorithm that processes one vertex per parallel task
// drowns in scheduling overhead on large-diameter graphs: Θ(D) rounds,
// each paying a fork-join barrier, over frontiers too small to occupy the
// machine. VGC gives each task a *local search*: starting from its frontier
// vertex it keeps exploring — multiple hops deep — until it has visited
// about τ edges, and only the leftovers are pushed into the shared next
// frontier. One round therefore advances many hops and the frontier grows
// multiplicatively, hiding synchronization cost exactly as classic
// (horizontal) granularity control hides it for flat loops.
package core

import (
	"sync/atomic"
)

// DefaultTau is the default VGC local-search budget in edges.
const DefaultTau = 512

// Options tunes the PASGAL algorithms. The zero value selects defaults.
type Options struct {
	// Tau is the VGC local-search budget in edges; <= 0 selects
	// DefaultTau. Tau = 1 effectively disables VGC (every discovered
	// vertex goes back through the shared frontier), which is what the
	// ablation benchmarks use as the "no VGC" configuration.
	Tau int

	// DisableHashBag replaces hash-bag frontiers with flat dense frontier
	// arrays (a full n-sized scan per round) — the ablation the hash bag
	// is measured against.
	DisableHashBag bool

	// DisableDirectionOpt turns off the Beamer-style bottom-up switch in
	// BFS.
	DisableDirectionOpt bool

	// DenseFrac is the frontier fraction (of n) above which BFS switches
	// to a bottom-up round; <= 0 selects 0.05.
	DenseFrac float64

	// TrimRounds is the number of SCC trimming passes; < 0 disables,
	// 0 selects the default (2).
	TrimRounds int

	// RecordFrontiers makes Metrics.FrontierSizes record the size of every
	// extracted frontier, in round order (costs one append per round).
	RecordFrontiers bool
}

func (o Options) tau() int {
	if o.Tau <= 0 {
		return DefaultTau
	}
	return o.Tau
}

func (o Options) denseFrac() float64 {
	if o.DenseFrac <= 0 {
		return 0.05
	}
	return o.DenseFrac
}

func (o Options) trimRounds() int {
	if o.TrimRounds < 0 {
		return 0
	}
	if o.TrimRounds == 0 {
		return 2
	}
	return o.TrimRounds
}

// Metrics reports the machine-independent cost profile of a run. Rounds is
// the headline number: each round is one global synchronization barrier, so
// VGC's claim — collapsing Θ(D) rounds to a small multiple of D/τ-ish —
// shows up here on any machine, regardless of core count.
type Metrics struct {
	Rounds        int64 // frontier extractions = global synchronizations
	BottomUp      int64 // of which bottom-up (direction-optimized) rounds
	EdgesVisited  int64 // total edge relaxations/inspections
	VerticesTaken int64 // frontier entries extracted (incl. stale)
	MaxFrontier   int64 // largest extracted frontier
	Phases        int64 // SCC outer rounds / SSSP threshold phases

	// FrontierSizes is the per-round frontier size series, recorded only
	// when Options.RecordFrontiers is set. The paper's §2.1 claims VGC
	// "quickly accumulates a large frontier size"; this series is the
	// direct evidence.
	FrontierSizes []int64

	record bool
}

// Round records one frontier extraction of the given size: it bumps
// Rounds and VerticesTaken and folds the size into MaxFrontier. All
// updates are atomic, so algorithm code (here and in internal/baseline)
// never touches the counter fields directly — pasgal-vet's mixed-access
// rule enforces that split.
func (m *Metrics) Round(frontier int) {
	atomic.AddInt64(&m.Rounds, 1)
	atomic.AddInt64(&m.VerticesTaken, int64(frontier))
	if m.record {
		// Rounds are extracted by a single coordinator goroutine; the
		// append does not race with other Round calls.
		m.FrontierSizes = append(m.FrontierSizes, int64(frontier))
	}
	for {
		cur := atomic.LoadInt64(&m.MaxFrontier)
		if int64(frontier) <= cur ||
			atomic.CompareAndSwapInt64(&m.MaxFrontier, cur, int64(frontier)) {
			return
		}
	}
}

// AddEdges adds k edge inspections to EdgesVisited. Safe to call from
// parallel loop bodies.
func (m *Metrics) AddEdges(k int64) {
	atomic.AddInt64(&m.EdgesVisited, k)
}

// AddPhase records one outer phase (SCC peeling round, SSSP threshold
// step, k-core peel, ...).
func (m *Metrics) AddPhase() {
	atomic.AddInt64(&m.Phases, 1)
}

// AddBottomUp records one bottom-up (direction-optimized) round.
func (m *Metrics) AddBottomUp() {
	atomic.AddInt64(&m.BottomUp, 1)
}

// SetPhases stores the phase count for algorithms whose structure is fixed
// up front.
func (m *Metrics) SetPhases(k int64) {
	atomic.StoreInt64(&m.Phases, k)
}
