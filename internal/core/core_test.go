package core

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// testGraphs returns a structurally diverse suite of graphs: low diameter,
// high diameter, disconnected, adversarial chains, meshes.
func testGraphs(directed bool) map[string]*graph.Graph {
	gs := map[string]*graph.Graph{
		"chain":    gen.Chain(2000, directed),
		"cycle":    gen.Cycle(1500, directed),
		"grid":     gen.Grid2D(40, 50, directed, 1),
		"rmat":     gen.SocialRMAT(10, 8, directed, 2),
		"er":       gen.ER(1000, 3000, directed, 3),
		"sparse":   gen.ER(1200, 600, directed, 4), // many components
		"singular": graph.FromEdges(1, nil, directed, graph.BuildOptions{}),
	}
	if directed {
		gs["weblike"] = gen.WebLike(4000, 6, 0.3, 50, 5)
		gs["samplegrid"] = gen.SampledGrid(30, 30, 0.8, true, 6)
	} else {
		gs["knn"] = gen.KNN(1500, 4, 8, false, 7)
		gs["trigrid"] = gen.TriGrid(30, 30)
		gs["perforated"] = gen.PerforatedGrid(30, 30, 8, 3, 8)
		gs["star"] = gen.Star(500)
	}
	return gs
}

// optionMatrix exercises the feature flags: default, tiny tau (VGC off),
// flat frontiers, no direction optimization.
func optionMatrix() map[string]Options {
	return map[string]Options{
		"default":  {},
		"tau1":     {Tau: 1},
		"tau32":    {Tau: 32},
		"flat":     {DisableHashBag: true, Tau: 64},
		"nodiropt": {DisableDirectionOpt: true},
	}
}

// --- BFS ---

func TestBFSMatchesSequential(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range testGraphs(directed) {
			want := seq.BFS(g, 0)
			for oname, opt := range optionMatrix() {
				got, met, _ := BFS(g, 0, opt)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s/%s directed=%v: dist[%d] = %d, want %d",
							name, oname, directed, v, got[v], want[v])
					}
				}
				if met.Rounds == 0 && g.N > 1 && g.Degree(0) > 0 {
					t.Fatalf("%s/%s: no rounds recorded", name, oname)
				}
			}
		}
	}
}

func TestBFSFromRandomSources(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := gen.SampledGrid(50, 50, 0.85, false, 9)
	for trial := 0; trial < 10; trial++ {
		src := uint32(rng.IntN(g.N))
		want := seq.BFS(g, src)
		got, _, _ := BFS(g, src, Options{})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("src=%d: dist[%d] = %d, want %d", src, v, got[v], want[v])
			}
		}
	}
}

// VGC must slash the number of rounds on a high-diameter graph: a chain of
// length L takes L rounds level-synchronously but ~L/tau with VGC.
func TestBFSVGCReducesRounds(t *testing.T) {
	g := gen.Chain(20000, false)
	_, metVGC, _ := BFS(g, 0, Options{Tau: 512, DisableDirectionOpt: true})
	_, metNo, _ := BFS(g, 0, Options{Tau: 1, DisableDirectionOpt: true})
	if metVGC.Rounds*10 >= metNo.Rounds {
		t.Fatalf("VGC rounds %d not far below no-VGC rounds %d",
			metVGC.Rounds, metNo.Rounds)
	}
	if metNo.Rounds < 19000 {
		t.Fatalf("no-VGC rounds %d suspiciously low for a 20k chain", metNo.Rounds)
	}
}

func TestBFSDirectionOptTriggers(t *testing.T) {
	g := gen.SocialRMAT(12, 16, false, 11)
	_, met, _ := BFS(g, 0, Options{DenseFrac: 0.01})
	if met.BottomUp == 0 {
		t.Fatal("expected at least one bottom-up round on a dense social graph")
	}
}

// --- SCC ---

func sccPartitionsEqual(t *testing.T, name string, g *graph.Graph, got []uint32, gotCount int) {
	t.Helper()
	want, wantCount := seq.TarjanSCC(g)
	if gotCount != wantCount {
		t.Fatalf("%s: SCC count = %d, want %d", name, gotCount, wantCount)
	}
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for v := range got {
		if x, ok := fwd[got[v]]; ok && x != want[v] {
			t.Fatalf("%s: partition mismatch at vertex %d", name, v)
		}
		if y, ok := bwd[want[v]]; ok && y != got[v] {
			t.Fatalf("%s: partition mismatch at vertex %d", name, v)
		}
		fwd[got[v]] = want[v]
		bwd[want[v]] = got[v]
	}
}

func TestSCCMatchesTarjan(t *testing.T) {
	for name, g := range testGraphs(true) {
		for oname, opt := range optionMatrix() {
			if oname == "nodiropt" {
				continue // not applicable to SCC
			}
			labels, count, _, _ := SCC(g, opt)
			sccPartitionsEqual(t, name+"/"+oname, g, labels, count)
		}
	}
}

func TestSCCRandomDigraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.IntN(300)
		g := gen.ER(n, rng.IntN(4*n+1), true, uint64(500+trial))
		labels, count, _, _ := SCC(g, Options{Tau: 1 + rng.IntN(64)})
		sccPartitionsEqual(t, "random", g, labels, count)
	}
}

func TestSCCTrimDisabled(t *testing.T) {
	g := gen.WebLike(3000, 6, 0.3, 40, 12)
	labels, count, _, _ := SCC(g, Options{TrimRounds: -1})
	sccPartitionsEqual(t, "notrim", g, labels, count)
}

func TestSCCLabelsAreRepresentatives(t *testing.T) {
	g := gen.SocialRMAT(10, 8, true, 13)
	labels, _, _, _ := SCC(g, Options{})
	for v, l := range labels {
		if labels[l] != l {
			t.Fatalf("label of %d is %d, which has label %d", v, l, labels[l])
		}
	}
}

// --- BCC ---

func bccEquivalent(t *testing.T, name string, g *graph.Graph, got BCCResult) {
	t.Helper()
	want := seq.HopcroftTarjanBCC(g)
	if got.NumBCC != want.NumBCC {
		t.Fatalf("%s: NumBCC = %d, want %d", name, got.NumBCC, want.NumBCC)
	}
	// Same partition of arcs.
	fwd := map[uint32]uint32{}
	bwd := map[uint32]uint32{}
	for e := range got.ArcLabel {
		a, b := got.ArcLabel[e], want.ArcLabel[e]
		if (a == graph.None) != (b == graph.None) {
			t.Fatalf("%s: arc %d labeled-ness differs", name, e)
		}
		if a == graph.None {
			continue
		}
		if x, ok := fwd[a]; ok && x != b {
			t.Fatalf("%s: arc partition mismatch at arc %d", name, e)
		}
		if y, ok := bwd[b]; ok && y != a {
			t.Fatalf("%s: arc partition mismatch at arc %d", name, e)
		}
		fwd[a] = b
		bwd[b] = a
	}
	for v := range got.IsArt {
		if got.IsArt[v] != want.IsArtPort[v] {
			t.Fatalf("%s: articulation[%d] = %v, want %v", name, v, got.IsArt[v], want.IsArtPort[v])
		}
	}
}

func TestBCCMatchesHopcroftTarjan(t *testing.T) {
	for name, g := range testGraphs(false) {
		got, _, _ := BCC(g, Options{})
		bccEquivalent(t, name, g, got)
	}
}

func TestBCCRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(250)
		g := gen.ER(n, rng.IntN(3*n+1), false, uint64(900+trial))
		got, _, _ := BCC(g, Options{})
		bccEquivalent(t, "random", g, got)
	}
}

func TestBCCOnSymmetrizedDirected(t *testing.T) {
	// The paper symmetrizes directed graphs for BCC.
	g := gen.WebLike(3000, 6, 0.25, 40, 14).Symmetrized()
	got, _, _ := BCC(g, Options{})
	bccEquivalent(t, "weblike-sym", g, got)
}

// --- SSSP ---

func TestSSSPMatchesDijkstra(t *testing.T) {
	policies := []StepPolicy{nil, RhoStepping{Rho: 64}, DeltaStepping{Delta: 8},
		BellmanFordPolicy{}}
	for _, directed := range []bool{false, true} {
		for name, g := range testGraphs(directed) {
			wg := gen.AddUniformWeights(g, 1, 100, 21)
			want := seq.Dijkstra(wg, 0)
			for _, pol := range policies {
				got, _, _ := SSSP(wg, 0, pol, Options{})
				pname := "default"
				if pol != nil {
					pname = pol.Name()
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s/%s directed=%v: dist[%d] = %d, want %d",
							name, pname, directed, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestSSSPSmallTau(t *testing.T) {
	g := gen.AddUniformWeights(gen.SampledGrid(40, 40, 0.85, false, 22), 1, 20, 23)
	want := seq.Dijkstra(g, 5)
	got, _, _ := SSSP(g, 5, RhoStepping{Rho: 16}, Options{Tau: 4})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSSSPZeroWeights(t *testing.T) {
	// Zero-weight edges are legal (uint32 weights, no negative cycles).
	g := gen.AddUniformWeights(gen.ER(400, 1600, true, 24), 0, 5, 25)
	want := seq.Dijkstra(g, 0)
	got, _, _ := SSSP(g, 0, nil, Options{})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// VGC's frontier-growth claim (§2.1): with a local-search budget the
// frontier grows much faster than level-synchronous BFS on a sparse
// large-diameter graph.
func TestRecordFrontiersAndGrowth(t *testing.T) {
	g := gen.Grid2D(30, 1000, false, 77)
	src := uint32(0)
	_, metNo, _ := BFS(g, src, Options{Tau: 1, DisableDirectionOpt: true, RecordFrontiers: true})
	_, metVGC, _ := BFS(g, src, Options{Tau: 512, DisableDirectionOpt: true, RecordFrontiers: true})
	if int64(len(metNo.FrontierSizes)) != metNo.Rounds ||
		int64(len(metVGC.FrontierSizes)) != metVGC.Rounds {
		t.Fatal("FrontierSizes length != Rounds")
	}
	sum := func(s []int64, k int) int64 {
		var acc int64
		for i := 0; i < k && i < len(s); i++ {
			acc += s[i]
		}
		return acc
	}
	// Within the first 10 rounds VGC has put far more vertices through the
	// frontier (it advances many hops per round).
	if sum(metVGC.FrontierSizes, 10) < 3*sum(metNo.FrontierSizes, 10) {
		t.Fatalf("VGC frontier growth too slow: %v vs %v",
			metVGC.FrontierSizes[:min(10, len(metVGC.FrontierSizes))],
			metNo.FrontierSizes[:min(10, len(metNo.FrontierSizes))])
	}
	// Recording off => no series.
	_, metOff, _ := BFS(g, src, Options{})
	if metOff.FrontierSizes != nil {
		t.Fatal("FrontierSizes recorded without the option")
	}
}

// --- metrics sanity ---

func TestMetricsPopulated(t *testing.T) {
	g := gen.Grid2D(60, 60, false, 31)
	_, met, _ := BFS(g, 0, Options{})
	if met.EdgesVisited == 0 || met.VerticesTaken == 0 || met.MaxFrontier == 0 {
		t.Fatalf("BFS metrics empty: %+v", met)
	}
	dg := gen.SocialRMAT(10, 8, true, 32)
	_, _, met, _ = SCC(dg, Options{})
	if met.Phases == 0 {
		t.Fatalf("SCC metrics empty: %+v", met)
	}
}

func TestBFSDenseFracExtremes(t *testing.T) {
	g := gen.SocialRMAT(11, 10, false, 55)
	want := seq.BFS(g, 0)
	// Tiny DenseFrac: nearly every round goes bottom-up.
	gotLow, metLow, _ := BFS(g, 0, Options{DenseFrac: 1e-9})
	// DenseFrac ~1: bottom-up never triggers.
	gotHigh, metHigh, _ := BFS(g, 0, Options{DenseFrac: 0.999999})
	for v := range want {
		if gotLow[v] != want[v] || gotHigh[v] != want[v] {
			t.Fatalf("dist[%d] mismatch under DenseFrac extremes", v)
		}
	}
	if metLow.BottomUp == 0 {
		t.Fatal("tiny DenseFrac never went bottom-up")
	}
	if metHigh.BottomUp != 0 {
		t.Fatal("huge DenseFrac went bottom-up")
	}
}
