package core

import (
	"testing"

	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

func TestBFSTreeInvariants(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for name, g := range testGraphs(directed) {
			want := seq.BFS(g, 0)
			for oname, opt := range optionMatrix() {
				if oname == "nodiropt" {
					continue // BFSTree has no direction optimization
				}
				dist, parent, _, _ := BFSTree(g, 0, opt)
				for v := range want {
					if dist[v] != want[v] {
						t.Fatalf("%s/%s: dist[%d] = %d, want %d",
							name, oname, v, dist[v], want[v])
					}
					if uint32(v) == 0 || dist[v] == graph.InfDist {
						if parent[v] != graph.None {
							t.Fatalf("%s/%s: parent[%d] = %d, want None",
								name, oname, v, parent[v])
						}
						continue
					}
					p := parent[v]
					if p == graph.None {
						t.Fatalf("%s/%s: reached vertex %d has no parent", name, oname, v)
					}
					if dist[p]+1 != dist[v] {
						t.Fatalf("%s/%s: parent[%d]=%d at dist %d, child at %d",
							name, oname, v, p, dist[p], dist[v])
					}
					if g.FindArc(p, uint32(v)) == ^uint64(0) {
						t.Fatalf("%s/%s: parent edge (%d,%d) not in graph",
							name, oname, p, v)
					}
				}
			}
		}
	}
}

func TestBFSTreePathToSource(t *testing.T) {
	// Walking parents from any reached vertex must arrive at the source in
	// exactly dist[v] hops.
	g := testGraphs(true)["weblike"]
	dist, parent, _, _ := BFSTree(g, 0, Options{})
	for v := uint32(0); v < uint32(g.N); v += 97 {
		if dist[v] == graph.InfDist {
			continue
		}
		u, hops := v, 0
		for u != 0 {
			u = parent[u]
			hops++
			if hops > int(dist[v]) {
				t.Fatalf("parent walk from %d exceeded dist %d", v, dist[v])
			}
		}
		if hops != int(dist[v]) {
			t.Fatalf("parent walk from %d took %d hops, dist %d", v, hops, dist[v])
		}
	}
}
