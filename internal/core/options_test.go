package core

import (
	"math"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/parallel"
)

// TestNormalizedTau covers every Tau boundary: negative and zero select the
// default, in-range values pass through, and values past MaxTau clamp.
func TestNormalizedTau(t *testing.T) {
	cases := []struct {
		raw, want int
	}{
		{math.MinInt, DefaultTau},
		{-1, DefaultTau},
		{0, DefaultTau},
		{1, 1},
		{DefaultTau, DefaultTau},
		{MaxTau, MaxTau},
		{MaxTau + 1, MaxTau},
		{math.MaxInt, MaxTau},
	}
	for _, c := range cases {
		got := Options{Tau: c.raw}.Normalized().Tau
		if got != c.want {
			t.Errorf("Normalized Tau(%d) = %d, want %d", c.raw, got, c.want)
		}
		if eff := (Options{Tau: c.raw}).tau(); eff != c.want {
			t.Errorf("tau(%d) = %d, want %d", c.raw, eff, c.want)
		}
	}
}

// TestNormalizedDenseFrac covers the DenseFrac boundaries, in particular
// the >= 1 edge case: a fraction of 1 or more can never trigger a bottom-up
// switch (extractions exceed n only via duplicates), so it must normalize
// to direction-opt disabled rather than a cut that could spuriously fire.
func TestNormalizedDenseFrac(t *testing.T) {
	cases := []struct {
		raw         float64
		want        float64
		wantDisable bool
	}{
		{math.Inf(-1), DefaultDenseFrac, false},
		{-1, DefaultDenseFrac, false},
		{0, DefaultDenseFrac, false},
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64, false},
		{0.05, 0.05, false},
		{0.999, 0.999, false},
		{1, DefaultDenseFrac, true},
		{1.5, DefaultDenseFrac, true},
		{math.Inf(1), DefaultDenseFrac, true},
		{math.NaN(), DefaultDenseFrac, true},
	}
	for _, c := range cases {
		n := Options{DenseFrac: c.raw}.Normalized()
		if n.DenseFrac != c.want || n.DisableDirectionOpt != c.wantDisable {
			t.Errorf("Normalized DenseFrac(%v) = (%v, disable=%v), want (%v, %v)",
				c.raw, n.DenseFrac, n.DisableDirectionOpt, c.want, c.wantDisable)
		}
	}
	// An explicit DisableDirectionOpt must survive normalization even with
	// a valid fraction.
	if n := (Options{DisableDirectionOpt: true, DenseFrac: 0.1}).Normalized(); !n.DisableDirectionOpt {
		t.Error("Normalized dropped DisableDirectionOpt")
	}
}

// TestDenseCut checks the derived switch threshold at its boundaries: the
// impossible-fraction cases return MaxInt64 (never fires) and tiny valid
// fractions floor at 1.
func TestDenseCut(t *testing.T) {
	cases := []struct {
		opt  Options
		n    int
		want int64
	}{
		{Options{}, 1000, 50},             // default 5%
		{Options{DenseFrac: 0.5}, 10, 5},  //
		{Options{DenseFrac: 1e-9}, 10, 1}, // floors at 1
		{Options{DenseFrac: 0.05}, 0, 1},  // empty graph still floors
		{Options{DenseFrac: 1}, 1000, math.MaxInt64},
		{Options{DenseFrac: 2}, 1000, math.MaxInt64},
		{Options{DenseFrac: math.NaN()}, 1000, math.MaxInt64},
		{Options{DisableDirectionOpt: true}, 1000, math.MaxInt64},
	}
	for _, c := range cases {
		if got := c.opt.denseCut(c.n); got != c.want {
			t.Errorf("denseCut(%+v, n=%d) = %d, want %d", c.opt, c.n, got, c.want)
		}
		// The cut computed from the normalized form must agree with the raw
		// form — normalization must not change behavior.
		if got := c.opt.Normalized().denseCut(c.n); got != c.want {
			t.Errorf("normalized denseCut(%+v, n=%d) = %d, want %d", c.opt, c.n, got, c.want)
		}
	}
}

// TestNormalizedTrimRounds covers the TrimRounds sentinel split: negatives
// collapse to -1 (disabled), zero selects the default, and the normalized
// form is never 0.
func TestNormalizedTrimRounds(t *testing.T) {
	cases := []struct {
		raw, want, wantEff int
	}{
		{math.MinInt, -1, 0},
		{-7, -1, 0},
		{-1, -1, 0},
		{0, DefaultTrimRounds, DefaultTrimRounds},
		{1, 1, 1},
		{DefaultTrimRounds, DefaultTrimRounds, DefaultTrimRounds},
		{100, 100, 100},
	}
	for _, c := range cases {
		n := Options{TrimRounds: c.raw}.Normalized()
		if n.TrimRounds != c.want {
			t.Errorf("Normalized TrimRounds(%d) = %d, want %d", c.raw, n.TrimRounds, c.want)
		}
		if n.TrimRounds == 0 {
			t.Errorf("Normalized TrimRounds(%d) produced the raw sentinel 0", c.raw)
		}
		if eff := (Options{TrimRounds: c.raw}).trimRounds(); eff != c.wantEff {
			t.Errorf("trimRounds(%d) = %d, want %d", c.raw, eff, c.wantEff)
		}
		// Effective pass count must be invariant under normalization.
		if eff := n.trimRounds(); eff != c.wantEff {
			t.Errorf("normalized trimRounds(%d) = %d, want %d", c.raw, eff, c.wantEff)
		}
	}
}

// TestNormalizedIdempotent: Normalized must be a fixed point on its own
// output for a matrix of raw values, including the pass-through fields.
func TestNormalizedIdempotent(t *testing.T) {
	raws := []Options{
		{},
		{Tau: -3, DenseFrac: math.NaN(), TrimRounds: -9},
		{Tau: MaxTau + 5, DenseFrac: 2, TrimRounds: 0},
		{Tau: 7, DenseFrac: 0.3, TrimRounds: 4, DisableHashBag: true,
			RecordFrontiers: true},
		{DisableDirectionOpt: true, DenseFrac: 0.2},
	}
	for _, raw := range raws {
		once := raw.Normalized()
		twice := once.Normalized()
		if once != twice {
			t.Errorf("Normalized not idempotent for %+v: %+v vs %+v", raw, once, twice)
		}
		if once.DisableHashBag != raw.DisableHashBag ||
			once.RecordFrontiers != raw.RecordFrontiers ||
			once.Tracer != raw.Tracer {
			t.Errorf("Normalized mutated a pass-through field: %+v -> %+v", raw, once)
		}
	}
}

// TestBFSDenseFracBoundaries runs BFS end-to-end at the DenseFrac
// boundaries: a fraction >= 1 must behave exactly like direction-opt
// disabled (no bottom-up rounds, same distances), and a tiny fraction must
// force bottom-up rounds while preserving correctness.
func TestBFSDenseFracBoundaries(t *testing.T) {
	g := gen.ER(800, 4000, false, 11)
	want, _, _ := BFS(g, 0, Options{DisableDirectionOpt: true})

	for _, frac := range []float64{1, 1.5, math.Inf(1), math.NaN()} {
		got, met, _ := BFS(g, 0, Options{DenseFrac: frac})
		if met.BottomUp != 0 {
			t.Errorf("DenseFrac=%v ran %d bottom-up rounds, want 0", frac, met.BottomUp)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("DenseFrac=%v dist[%d] = %d, want %d", frac, v, got[v], want[v])
			}
		}
	}

	got, met, _ := BFS(g, 0, Options{DenseFrac: math.SmallestNonzeroFloat64})
	if met.BottomUp == 0 {
		t.Error("tiny DenseFrac never switched bottom-up on a dense graph")
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("tiny DenseFrac dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestSCCTrimRoundsBoundaries runs SCC end-to-end across the TrimRounds
// boundaries; all must agree on the component partition.
func TestSCCTrimRoundsBoundaries(t *testing.T) {
	g := gen.WebLike(600, 5, 0.3, 20, 13)
	ref, refCount, _, _ := SCC(g, Options{})
	for _, tr := range []int{math.MinInt, -1, 0, 1, 50} {
		got, count, _, _ := SCC(g, Options{TrimRounds: tr})
		if count != refCount {
			t.Errorf("TrimRounds=%d found %d SCCs, want %d", tr, count, refCount)
			continue
		}
		seen := map[uint32]uint32{}
		for v := range got {
			if r, ok := seen[got[v]]; ok {
				if ref[v] != r {
					t.Fatalf("TrimRounds=%d splits/merges SCCs at vertex %d", tr, v)
				}
			} else {
				seen[got[v]] = ref[v]
			}
		}
	}
}

// TestBFSTauBoundaries runs BFS at the Tau extremes (VGC off, default,
// larger-than-graph) and checks distances agree. The MaxTau clamp itself is
// covered by TestNormalizedTau — running a clamped-τ BFS would allocate
// millions of frontier buckets for no extra coverage.
func TestBFSTauBoundaries(t *testing.T) {
	g := gen.Chain(3000, false)
	want, _, _ := BFS(g, 0, Options{})
	for _, tau := range []int{math.MinInt, 0, 1, 4096} {
		got, met, _ := BFS(g, 0, Options{Tau: tau})
		if met.Rounds <= 0 {
			t.Errorf("Tau=%d recorded %d rounds", tau, met.Rounds)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("Tau=%d dist[%d] = %d, want %d", tau, v, got[v], want[v])
			}
		}
	}
}

// TestBFSSmallTauBottomUpChain is the regression test for a lost-vertex bug:
// a bottom-up round chains pull updates along index-ascending paths (a
// vertex reads an in-neighbor distance stored earlier in the same scan), so
// one round could insert entries many hops past the current distance. With
// a small tau the 2*tau+4 bucket ring wrapped, the deep entries landed in
// wrong-distance buckets, and extraction dropped them as stale — so a deep
// chain vertex was never expanded top-down. The chain's own distances still
// came out right (the pull scan itself settles index-ascending paths), but
// a "hook" vertex whose only parent is deep in the chain AND whose index is
// below the chain (scanned before the chain settles) was left unreached.
// The graph: a hub dense enough to trigger bottom-up, a long
// index-ascending tail, and a hook hanging off the tail's end at a lower
// index than the tail.
func TestBFSSmallTauBottomUpChain(t *testing.T) {
	const hub, tail = 120, 60
	hook := uint32(hub)       // index below every chain vertex
	chain0 := uint32(hub + 1) // chain occupies hub+1 .. hub+tail
	chainEnd := uint32(hub + tail)
	var edges []graph.Edge
	for i := 1; i < hub; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	edges = append(edges, graph.Edge{U: uint32(hub - 1), V: chain0})
	for v := chain0; v < chainEnd; v++ {
		edges = append(edges, graph.Edge{U: v, V: v + 1})
	}
	edges = append(edges, graph.Edge{U: chainEnd, V: hook})
	g := graph.FromEdges(hub+tail+1, edges, false, graph.BuildOptions{Symmetrize: true})
	// The pull scan only chains within one sequentially-scanned chunk, so
	// pin to one worker to make the deep chain (and the bug) deterministic.
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	want, _, _ := BFS(g, 0, Options{DisableDirectionOpt: true})
	// DenseFrac 0.3: only the wide hub frontier goes bottom-up; the later
	// (chain) rounds stay top-down, so a dropped chain entry is never
	// repaired by another bottom-up pull and the hook stays unreached.
	for _, tau := range []int{1, 2, 3, 5, 9} {
		got, met, _ := BFS(g, 0, Options{Tau: tau, DenseFrac: 0.3})
		if met.BottomUp == 0 {
			t.Fatalf("Tau=%d: shape did not trigger a bottom-up round", tau)
		}
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("Tau=%d dist[%d] = %d, want %d", tau, v, got[v], want[v])
			}
		}
	}
}
