package core

import (
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/parallel"
	"pasgal/internal/trace"
)

// traceRounds extracts the (round index, frontier size) series of one algo
// label from a recording.
func traceRounds(tr *trace.Tracer, algo string) (idx, frontier []int64) {
	for _, ev := range tr.EventsFor(algo) {
		if ev.Kind == trace.KindRound {
			idx = append(idx, ev.A)
			frontier = append(frontier, ev.B)
		}
	}
	return idx, frontier
}

// TestTraceMatchesMetricsBFSChain: on a known chain, the traced round
// series must agree event-for-event with core.Metrics — same round count,
// same frontier-size sequence, and (chains never go dense) no direction
// switches. The tracer and Metrics are two independent observers of one
// run; any disagreement means one of them lies.
func TestTraceMatchesMetricsBFSChain(t *testing.T) {
	g := gen.Chain(5000, false)
	tr := trace.New()
	dist, met, _ := BFS(g, 0, Options{Tracer: tr, RecordFrontiers: true})
	if dist[4999] != 4999 {
		t.Fatalf("chain BFS broken: dist[4999] = %d", dist[4999])
	}

	idx, frontier := traceRounds(tr, "bfs")
	if int64(len(idx)) != met.Rounds {
		t.Fatalf("traced %d rounds, Metrics says %d", len(idx), met.Rounds)
	}
	if got := tr.CounterValue(trace.CtrRounds); got != met.Rounds {
		t.Fatalf("rounds counter = %d, Metrics says %d", got, met.Rounds)
	}
	for i := range idx {
		if idx[i] != int64(i+1) {
			t.Fatalf("round event %d has index %d, want %d", i, idx[i], i+1)
		}
		if frontier[i] != met.FrontierSizes[i] {
			t.Fatalf("round %d traced frontier %d, Metrics recorded %d",
				i+1, frontier[i], met.FrontierSizes[i])
		}
	}
	if met.BottomUp != 0 || tr.CounterValue(trace.CtrBottomUp) != 0 {
		t.Fatalf("chain BFS went bottom-up (met=%d, trace=%d)",
			met.BottomUp, tr.CounterValue(trace.CtrBottomUp))
	}
	// The chain's frontier total must cover all n vertices at least once.
	var taken int64
	for _, f := range frontier {
		taken += f
	}
	if taken != met.VerticesTaken {
		t.Fatalf("traced frontier sum %d != VerticesTaken %d", taken, met.VerticesTaken)
	}
}

// TestTraceMatchesMetricsBFSGrid: a dense-ish grid with a tiny DenseFrac
// forces direction switches; every switch must appear both in Metrics and
// as a KindDirSwitch event naming a round that exists.
func TestTraceMatchesMetricsBFSGrid(t *testing.T) {
	g := gen.Grid2D(60, 60, false, 1)
	tr := trace.New()
	_, met, _ := BFS(g, 0, Options{Tracer: tr, RecordFrontiers: true, DenseFrac: 1e-6})
	if met.BottomUp == 0 {
		t.Fatal("grid BFS with tiny DenseFrac never switched bottom-up")
	}

	idx, frontier := traceRounds(tr, "bfs")
	if int64(len(idx)) != met.Rounds {
		t.Fatalf("traced %d rounds, Metrics says %d", len(idx), met.Rounds)
	}
	for i := range frontier {
		if frontier[i] != met.FrontierSizes[i] {
			t.Fatalf("round %d traced frontier %d, Metrics recorded %d",
				i+1, frontier[i], met.FrontierSizes[i])
		}
	}

	var switches int64
	for _, ev := range tr.EventsFor("bfs") {
		if ev.Kind != trace.KindDirSwitch {
			continue
		}
		switches++
		if ev.A < 1 || ev.A > met.Rounds {
			t.Fatalf("direction switch names round %d outside [1,%d]", ev.A, met.Rounds)
		}
	}
	if switches != met.BottomUp {
		t.Fatalf("traced %d direction switches, Metrics says %d", switches, met.BottomUp)
	}
	if got := tr.CounterValue(trace.CtrBottomUp); got != met.BottomUp {
		t.Fatalf("bottom_up counter = %d, Metrics says %d", got, met.BottomUp)
	}
}

// TestTracePhasesSCC: SCC's traced phase events must match Metrics.Phases.
func TestTracePhasesSCC(t *testing.T) {
	g := gen.WebLike(800, 5, 0.3, 20, 9)
	tr := trace.New()
	_, _, met, _ := SCC(g, Options{Tracer: tr})
	if met.Phases == 0 {
		t.Fatal("SCC ran zero phases")
	}
	var phases int64
	for _, ev := range tr.EventsFor("scc") {
		if ev.Kind == trace.KindPhase {
			phases++
			if ev.A != phases {
				t.Fatalf("phase event %d has index %d", phases, ev.A)
			}
		}
	}
	if phases != met.Phases {
		t.Fatalf("traced %d phases, Metrics says %d", phases, met.Phases)
	}
	if got := tr.CounterValue(trace.CtrPhases); got != met.Phases {
		t.Fatalf("phases counter = %d, Metrics says %d", got, met.Phases)
	}
}

// TestTraceSharedAcrossAlgos: one tracer threaded through several runs must
// keep the per-algo series separable and the totals additive.
func TestTraceSharedAcrossAlgos(t *testing.T) {
	tr := trace.New()
	opt := Options{Tracer: tr}
	g := gen.Chain(500, false)
	_, metBFS, _ := BFS(g, 0, opt)
	dg := gen.Cycle(400, true)
	_, _, metSCC, _ := SCC(dg, opt)

	bfsIdx, _ := traceRounds(tr, "bfs")
	sccIdx, _ := traceRounds(tr, "scc")
	if int64(len(bfsIdx)) != metBFS.Rounds {
		t.Fatalf("bfs series has %d rounds, want %d", len(bfsIdx), metBFS.Rounds)
	}
	if int64(len(sccIdx)) != metSCC.Rounds {
		t.Fatalf("scc series has %d rounds, want %d", len(sccIdx), metSCC.Rounds)
	}
	if got := tr.CounterValue(trace.CtrRounds); got != metBFS.Rounds+metSCC.Rounds {
		t.Fatalf("shared rounds counter = %d, want %d",
			got, metBFS.Rounds+metSCC.Rounds)
	}
}

// TestTraceSchedulerCounters: Options.TraceScheduler must mirror the
// fork-join runtime's counters into the run's tracer — the launch counts
// the tracer saw must match the SchedStats delta over the run exactly (the
// same two-independent-observers contract the round tests enforce) — and
// the hook must be restored when the call returns.
func TestTraceSchedulerCounters(t *testing.T) {
	defer parallel.SetWorkers(parallel.SetWorkers(4))
	g := gen.Chain(5000, false)

	tr := trace.New()
	before := parallel.SchedStats()
	_, met, _ := BFS(g, 0, Options{Tracer: tr, TraceScheduler: true})
	after := parallel.SchedStats()
	if met.Rounds == 0 {
		t.Fatal("BFS did no rounds")
	}

	if got := tr.CounterValue(trace.CtrLoops) + tr.CounterValue(trace.CtrInlineLoops); got == 0 {
		t.Fatal("TraceScheduler saw no loop launches during BFS")
	}
	type pair struct {
		name  string
		delta int64
		ctr   trace.Counter
	}
	for _, c := range []pair{
		{"loops", after.Loops - before.Loops, trace.CtrLoops},
		{"inline", after.Inline - before.Inline, trace.CtrInlineLoops},
		{"forks", after.Forks - before.Forks, trace.CtrForks},
		{"steals", after.Steals - before.Steals, trace.CtrSteals},
	} {
		if got := tr.CounterValue(c.ctr); got != c.delta {
			t.Errorf("%s: tracer saw %d, SchedStats delta is %d", c.name, got, c.delta)
		}
	}

	// The hook must be gone after the call: new launches may not count.
	loopsAfter := tr.CounterValue(trace.CtrLoops)
	parallel.For(100000, 16, func(int) {})
	if got := tr.CounterValue(trace.CtrLoops); got != loopsAfter {
		t.Fatalf("runtime tracer leaked past the call: loops %d -> %d", loopsAfter, got)
	}

	// Without TraceScheduler the same run records no scheduler counters.
	tr2 := trace.New()
	BFS(g, 0, Options{Tracer: tr2})
	if got := tr2.CounterValue(trace.CtrLoops) + tr2.CounterValue(trace.CtrSteals); got != 0 {
		t.Fatalf("scheduler counters recorded without TraceScheduler: %d", got)
	}
}

// TestTraceNilIsDefault: a zero Options must behave identically to an
// explicit nil tracer — and produce no events anywhere.
func TestTraceNilIsDefault(t *testing.T) {
	g := gen.Chain(300, false)
	d1, m1, _ := BFS(g, 0, Options{})
	d2, m2, _ := BFS(g, 0, Options{Tracer: nil})
	if m1.Rounds != m2.Rounds {
		t.Fatalf("nil tracer changed round count: %d vs %d", m1.Rounds, m2.Rounds)
	}
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("nil tracer changed dist[%d]", v)
		}
	}
}
