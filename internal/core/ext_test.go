package core

import (
	"math/rand/v2"
	"testing"

	"pasgal/internal/gen"
	"pasgal/internal/graph"
	"pasgal/internal/seq"
)

// --- k-core ---

func TestKCoreKnownCases(t *testing.T) {
	// A path: every vertex has coreness 1.
	core, maxc, _, _ := KCore(gen.Chain(50, false), Options{})
	if maxc != 1 {
		t.Fatalf("path degeneracy = %d", maxc)
	}
	for v, c := range core {
		if c != 1 {
			t.Fatalf("path coreness[%d] = %d", v, c)
		}
	}
	// A cycle: coreness 2 everywhere.
	core, maxc, _, _ = KCore(gen.Cycle(30, false), Options{})
	if maxc != 2 || core[7] != 2 {
		t.Fatalf("cycle coreness wrong: max=%d", maxc)
	}
	// Isolated vertices: coreness 0.
	core, maxc, _, _ = KCore(graph.FromEdges(3, nil, false, graph.BuildOptions{}), Options{})
	if maxc != 0 || core[0] != 0 {
		t.Fatal("isolated coreness wrong")
	}
	// A triangle with a tail: triangle coreness 2, tail 1.
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}}
	core, maxc, _, _ = KCore(graph.FromEdges(5, edges, false, graph.BuildOptions{}), Options{})
	if maxc != 2 || core[0] != 2 || core[1] != 2 || core[2] != 2 || core[3] != 1 || core[4] != 1 {
		t.Fatalf("triangle+tail coreness wrong: %v", core)
	}
}

func TestKCoreMatchesSequential(t *testing.T) {
	suite := map[string]*graph.Graph{
		"rmat":   gen.SocialRMAT(11, 8, false, 1),
		"grid":   gen.Grid2D(40, 40, false, 2),
		"knn":    gen.KNN(2000, 4, 8, false, 3),
		"er":     gen.ER(1000, 4000, false, 4),
		"sparse": gen.ER(1200, 500, false, 5),
		"mesh":   gen.TriGrid(30, 30),
	}
	for name, g := range suite {
		want, wantMax := seq.KCore(g)
		for _, tau := range []int{1, 64, 0} {
			got, gotMax, met, _ := KCore(g, Options{Tau: tau})
			if gotMax != wantMax {
				t.Fatalf("%s tau=%d: degeneracy %d, want %d", name, tau, gotMax, wantMax)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s tau=%d: coreness[%d] = %d, want %d",
						name, tau, v, got[v], want[v])
				}
			}
			if met.Phases == 0 {
				t.Fatalf("%s: no peeling phases recorded", name)
			}
		}
	}
}

// VGC must cut peeling rounds on a long chain reaction: peeling a path
// level-synchronously takes one round per vertex.
func TestKCoreVGCReducesRounds(t *testing.T) {
	g := gen.Chain(20000, false)
	_, _, metVGC, _ := KCore(g, Options{Tau: 512})
	_, _, metNo, _ := KCore(g, Options{Tau: 1})
	if metVGC.Rounds*5 >= metNo.Rounds {
		t.Fatalf("VGC peeling rounds %d not far below %d", metVGC.Rounds, metNo.Rounds)
	}
}

func TestKCoreRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.IntN(300)
		g := gen.ER(n, rng.IntN(5*n+1), false, uint64(trial))
		want, wantMax := seq.KCore(g)
		got, gotMax, _, _ := KCore(g, Options{Tau: 1 + rng.IntN(64)})
		if gotMax != wantMax {
			t.Fatalf("trial %d: degeneracy %d want %d", trial, gotMax, wantMax)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: coreness[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

// --- point-to-point ---

func TestPointToPointMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	suite := []*graph.Graph{
		gen.AddUniformWeights(gen.SampledGrid(40, 40, 0.9, false, 1), 1, 100, 2),
		gen.AddUniformWeights(gen.SocialRMAT(10, 8, true, 3), 1, 50, 4),
		gen.AddUniformWeights(gen.ER(800, 2400, true, 5), 1, 1000, 6),
		gen.AddUniformWeights(gen.ER(600, 300, false, 7), 1, 10, 8), // disconnected
	}
	for gi, g := range suite {
		full := seq.Dijkstra(g, 0)
		for trial := 0; trial < 8; trial++ {
			dst := uint32(rng.IntN(g.N))
			got, _, _ := PointToPoint(g, 0, dst, nil, Options{})
			if got != full[dst] {
				t.Fatalf("graph %d dst %d: got %d, want %d", gi, dst, got, full[dst])
			}
		}
		// Unreachable and trivial cases.
		if d, _, _ := PointToPoint(g, 5, 5, nil, Options{}); d != 0 {
			t.Fatal("src == dst should be 0")
		}
	}
}

func TestPointToPointPrunes(t *testing.T) {
	// On a long weighted grid, a nearby target must touch far fewer edges
	// than the full SSSP.
	g := gen.AddUniformWeights(gen.Grid2D(30, 600, false, 1), 1, 10, 2)
	src := uint32(0)
	dst := uint32(5) // a few columns away
	_, metPTP, _ := PointToPoint(g, src, dst, nil, Options{})
	_, metFull, _ := SSSP(g, src, nil, Options{})
	if metPTP.EdgesVisited*2 >= metFull.EdgesVisited {
		t.Fatalf("PTP visited %d edges, full SSSP %d — pruning ineffective",
			metPTP.EdgesVisited, metFull.EdgesVisited)
	}
}

func TestPointToPointPolicies(t *testing.T) {
	g := gen.AddUniformWeights(gen.SampledGrid(30, 30, 0.9, false, 9), 1, 20, 10)
	want := seq.Dijkstra(g, 0)
	for _, pol := range []StepPolicy{RhoStepping{Rho: 32}, DeltaStepping{Delta: 16},
		BellmanFordPolicy{}} {
		got, _, _ := PointToPoint(g, 0, uint32(g.N-1), pol, Options{})
		if got != want[g.N-1] {
			t.Fatalf("%s: got %d, want %d", pol.Name(), got, want[g.N-1])
		}
	}
}
